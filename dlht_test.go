package dlht_test

import (
	"errors"
	"sync"
	"testing"

	dlht "repro"
)

// These tests exercise the public facade exactly as a downstream user
// would; the deep algorithmic suites live in internal/core.

func TestPublicQuickstartFlow(t *testing.T) {
	tbl, err := dlht.New(dlht.Config{Bins: 1 << 10, Resizable: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := tbl.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert(42, 1000); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(42); !ok || v != 1000 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, ok := h.Put(42, 2000); !ok || old != 1000 {
		t.Fatalf("Put = (%d,%v)", old, ok)
	}
	if v, ok := h.Delete(42); !ok || v != 2000 {
		t.Fatalf("Delete = (%d,%v)", v, ok)
	}
}

func TestPublicErrorsExported(t *testing.T) {
	tbl := dlht.MustNew(dlht.Config{Bins: 4})
	h := tbl.MustHandle()
	h.Insert(1, 1)
	if _, err := h.Insert(1, 2); !errors.Is(err, dlht.ErrExists) {
		t.Fatalf("err = %v", err)
	}
	var full bool
	for k := uint64(0); k < 1000; k++ {
		if _, err := h.Insert(k, k); errors.Is(err, dlht.ErrFull) {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("ErrFull never surfaced on a non-resizable table")
	}
}

func TestPublicModes(t *testing.T) {
	set := dlht.MustNew(dlht.Config{Mode: dlht.HashSet, Bins: 64})
	hs := set.MustHandle()
	hs.Insert(7, 0)
	if !hs.Contains(7) {
		t.Fatal("hashset lost a key")
	}

	kv := dlht.MustNew(dlht.Config{
		Mode: dlht.Allocator, Bins: 64, VariableKV: true, Namespaces: true,
	})
	hk := kv.MustHandle()
	if err := hk.InsertKV(3, []byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	if v, ok := hk.GetKV(3, []byte("key")); !ok || string(v) != "value" {
		t.Fatalf("GetKV = (%q,%v)", v, ok)
	}
	if _, ok := hk.GetKV(4, []byte("key")); ok {
		t.Fatal("namespace isolation broken")
	}
}

func TestPublicBatch(t *testing.T) {
	tbl := dlht.MustNew(dlht.Config{Bins: 256})
	h := tbl.MustHandle()
	ops := []dlht.Op{
		{Kind: dlht.OpInsert, Key: 1, Value: 10},
		{Kind: dlht.OpGet, Key: 1},
		{Kind: dlht.OpDelete, Key: 1},
	}
	if n := h.Exec(ops, true); n != 3 {
		t.Fatalf("executed %d", n)
	}
	if ops[1].Result != 10 {
		t.Fatalf("batch get = %d", ops[1].Result)
	}
}

func TestPublicHashKinds(t *testing.T) {
	for _, kind := range []struct {
		name string
		k    dlht.Config
	}{
		{"modulo", dlht.Config{Bins: 256, Hash: dlht.HashModulo}},
		{"wyhash", dlht.Config{Bins: 256, Hash: dlht.HashWy}},
		{"xxhash", dlht.Config{Bins: 256, Hash: dlht.HashXX}},
		{"murmur3", dlht.Config{Bins: 256, Hash: dlht.HashMurmur3}},
		{"fnv1a", dlht.Config{Bins: 256, Hash: dlht.HashFNV1a}},
	} {
		t.Run(kind.name, func(t *testing.T) {
			h := dlht.MustNew(kind.k).MustHandle()
			for i := uint64(0); i < 300; i++ {
				if _, err := h.Insert(i, i*2); err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 300; i++ {
				if v, ok := h.Get(i); !ok || v != i*2 {
					t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
				}
			}
		})
	}
}

func TestPublicConcurrentUse(t *testing.T) {
	tbl := dlht.MustNew(dlht.Config{Bins: 1 << 8, Resizable: true, MaxThreads: 16})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tbl.MustHandle()
			base := uint64(w) << 32
			for i := uint64(0); i < 5000; i++ {
				h.Insert(base+i, i)
			}
			for i := uint64(0); i < 5000; i++ {
				if v, ok := h.Get(base + i); !ok || v != i {
					t.Errorf("worker %d lost key %d", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestPublicAllocators(t *testing.T) {
	for _, a := range []struct {
		name string
		cfg  dlht.Config
	}{
		{"arena", dlht.Config{Mode: dlht.Allocator, Bins: 64, ValueSize: 16, Alloc: dlht.NewArena()}},
		{"naive", dlht.Config{Mode: dlht.Allocator, Bins: 64, ValueSize: 16, Alloc: dlht.NewNaiveAllocator()}},
	} {
		t.Run(a.name, func(t *testing.T) {
			h := dlht.MustNew(a.cfg).MustHandle()
			if err := h.InsertKV(0, []byte("k"), make([]byte, 16)); err != nil {
				t.Fatal(err)
			}
			if _, ok := h.GetKV(0, []byte("k")); !ok {
				t.Fatal("lost key")
			}
		})
	}
}

func TestPublicStats(t *testing.T) {
	tbl := dlht.MustNew(dlht.Config{Bins: 128})
	h := tbl.MustHandle()
	for i := uint64(0); i < 100; i++ {
		h.Insert(i, i)
	}
	st := tbl.Stats()
	if st.Occupied != 100 || st.Bins != 128 {
		t.Fatalf("stats = %+v", st)
	}
	if tbl.Mode() != dlht.Inlined || tbl.Resizable() {
		t.Fatal("mode/resizable accessors wrong")
	}
}
