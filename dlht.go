// Package dlht is a Go implementation of the Dandelion Hashtable from
// "DLHT: A Non-blocking Resizable Hashtable with Fast Deletes and
// Memory-awareness" (Katsarakis, Gavrielatos, Ntarmos — HPDC 2024).
//
// DLHT is a concurrent, in-memory, closed-addressing hashtable built on
// bounded cache-line chaining. Its headline properties:
//
//   - Lock-free Gets, Inserts and Deletes; Deletes reclaim index slots
//     instantly (no tombstones).
//   - Most requests complete with a single memory access: small keys and
//     values are inlined in 64-byte cache-line buckets.
//   - A batching API overlaps the DRAM latency of many requests with
//     software prefetching while preserving request order. Prefetches run a
//     bounded sliding window ahead of execution (Config.PrefetchWindow,
//     default 16), so arbitrarily deep batches stay cache-resident, and the
//     hash memoized while a bin is in flight is reused at execution (it is
//     recomputed only when a resize redirects the bin).
//   - Resizes are parallel and practically non-blocking: concurrent
//     operations only wait while their own bin (≤15 slots) is migrated.
//   - Three modes: Inlined (8 B keys/values), Allocator (out-of-line
//     variable-size pairs with a pointer API, namespaces, epoch GC), and
//     HashSet (keys only).
//
// # Quick start
//
//	t := dlht.MustNew(dlht.Config{Resizable: true})
//	h := t.MustHandle() // one Handle per goroutine
//	h.Insert(42, 1000)
//	v, ok := h.Get(42)
//	h.Put(42, 2000)
//	h.Delete(42)
//
// # Batching
//
//	ops := []dlht.Op{
//		{Kind: dlht.OpInsert, Key: 1, Value: 10},
//		{Kind: dlht.OpGet, Key: 1},
//	}
//	h.Exec(ops, false)
//
// Exec prefetches each request's bin a bounded distance ahead of executing
// it — Config.PrefetchWindow, default 16 — rather than sweeping the whole
// batch up front, so the lines fetched for a request are still resident
// when it runs no matter how deep the batch is. Tune the window with the
// measured sweep in the README ("Tuning the prefetch window").
//
// # Streaming pipelines
//
// The first-class form of the batching engine is the completion-driven
// Pipeline: requests are issued one at a time and completions are
// delivered through a callback as soon as their prefetched lines land,
// not after a caller-assembled slice finishes.
//
//	p := h.Pipeline(dlht.PipelineOpts{OnComplete: func(op *dlht.Op) {
//		// fires in enqueue order, one window behind the newest enqueue
//	}})
//	p.Insert(1, 10)
//	p.Get(1)
//	p.Flush() // complete the in-flight tail
//
// A long-lived pipeline that is not flushed between bursts keeps the
// prefetch window primed across burst boundaries. Exec and GetKVBatch are
// batch-at-once adapters over the same engine; Allocator-mode tables get
// the matching Handle.KVPipeline for streamed lookups.
//
// # Batching over the network
//
// The pipeline is also the unit of network service: repro/internal/server
// exposes a table over TCP (cmd/dlht-server), feeding every request
// pipelined on a connection straight into a per-connection Pipeline whose
// completions append wire responses — replies stream out while the burst's
// tail is still being decoded. The sliding-window prefetch that hides DRAM
// latency for local batches (§3.3) thereby absorbs network-induced request
// bursts of any depth, and the pipeline's order preservation doubles as
// the protocol's request/response matching rule. Connection-scoped handles
// are recycled via Handle.Close.
//
// # One API over local, remote, sharded, and durable tables
//
// Store is the backend-independent surface: the synchronous ops
// (Get/Put/Insert/Delete) plus the completion-driven pipelined surface
// (Store.Pipe). Four backends implement it, all reachable through one
// spec-string entry point:
//
//	s, _ := dlht.Open("mem:")                        // in-process (a Handle adapter)
//	s, _ := dlht.Open("tcp://host:4040/users")       // one dlht-server (protocol v2)
//	s, _ := dlht.Open("cluster:a:4040,b:4040")       // N servers, consistent-hashed
//	s, _ := dlht.Open("wal:/var/lib/dlht/users")     // durable (group-commit WAL)
//
// Workload drivers written against Store run unmodified whether the table
// is volatile or durable, local, behind one socket, or sharded across a
// cluster; completions preserve enqueue order per backend shard (and
// therefore per-key program order everywhere). Remote errors map back onto
// the same sentinels local tables return, so errors.Is-based handling is
// backend-independent; Open's own failures wrap ErrBadSpec or the
// backend's dial error. The concrete constructors (Table.Store, Dial,
// DialTable, NewCluster, DialCluster, OpenDurable) remain for callers that
// want a wider concrete surface than the Store interface.
//
// The wal: backend executes every mutation in memory first and appends a
// CRC-framed redo record; the synchronous ops return — and pipelined
// completions fire — only once a group commit (one fsync covering
// everything staged while the previous fsync was in flight) covers their
// record. See the README's "Durability" section for the on-disk format and
// recovery semantics.
//
// # Fault tolerance
//
// The cluster: backend can replicate: with ClusterOpts.Replicas = R every
// key lives on R successor shards of the consistent-hash ring, writes
// complete after WriteQuorum acks (default write-all), and reads fail
// over replica by replica on retryable errors. Each shard connection
// transparently redials with capped exponential backoff (ClusterOpts.
// Retry / ClientOpts.Retry), a failure detector sidelines shards after
// consecutive retryable failures and re-admits them via background
// probes, and a dead transport fails every pending pipelined completion
// with its error instead of hanging. IsRetryable is the shared
// classification: transport conditions retry, table refusals do not.
// With W = R an acked write survives any single-shard loss — a kill -9'd
// shard restarted from its WAL rejoins with no client restart. See the
// README's "Fault tolerance" section for the semantics and knobs.
//
// The wire protocol is versioned: Dial and DialCluster speak v2 (a
// handshake with a table selector and variable-length KV frames for
// Allocator-mode tables); v1 clients — the fixed-frame protocol with no
// handshake — are auto-detected by the server from their first frame and
// served unchanged.
//
// The implementation lives in repro/internal/core (table engine),
// repro/internal/server (protocol + network client) and
// repro/internal/cluster (sharding); this package re-exports them as the
// stable public surface.
package dlht

import (
	"repro/internal/alloc"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/server"
)

// Core types, re-exported.
type (
	// Table is a DLHT instance; construct with New.
	Table = core.Table
	// Config configures a Table; the zero value is a usable Inlined table.
	Config = core.Config
	// Handle is the per-goroutine access object.
	Handle = core.Handle
	// Mode selects Inlined, Allocator or HashSet operation.
	Mode = core.Mode
	// Op is one request in a batch.
	Op = core.Op
	// OpKind tags an Op.
	OpKind = core.OpKind
	// Pipeline is the completion-driven streaming form of the batch API:
	// enqueue requests one at a time, receive in-order completions through a
	// callback once each request falls a full prefetch window behind the
	// newest enqueue. Created via Handle.Pipeline.
	Pipeline = core.Pipeline
	// PipelineOpts configures Handle.Pipeline.
	PipelineOpts = core.PipelineOpts
	// KVPipeline is the Allocator-mode streaming lookup pipeline. Created
	// via Handle.KVPipeline.
	KVPipeline = core.KVPipeline
	// KVPipelineOpts configures Handle.KVPipeline.
	KVPipelineOpts = core.KVPipelineOpts
	// KVGet is one request of an Allocator-mode GetKVBatch or KVPipeline.
	KVGet = core.KVGet
	// Entry is an iterator item.
	Entry = core.Entry
	// Stats is the table counter snapshot.
	Stats = core.Stats

	// Store is the backend-independent op surface implemented by local
	// tables ((*Table).Store), network clients (Dial) and sharded clusters
	// (DialCluster). One Store per goroutine.
	Store = core.Store
	// Pipe is a Store's completion-driven pipelined surface.
	Pipe = core.Pipe
	// PipeOpts configures Store.Pipe.
	PipeOpts = core.PipeOpts
	// Completion is the result of one pipelined Store request.
	Completion = core.Completion
	// Cluster consistent-hashes keys across N Stores (one pipelined
	// protocol-v2 connection per shard when built with DialCluster) and is
	// itself a Store.
	Cluster = cluster.Cluster
	// ClusterOpts configures NewCluster/DialCluster.
	ClusterOpts = cluster.Opts
	// Topology is a cluster's shared membership state: online membership
	// changes (AddShard/RemoveShard/ReplaceShard), consistent Members
	// snapshots, and the anti-entropy scrubber. Every Cluster exposes its
	// own via Cluster.Topology(); DialTopology builds one shared by many
	// per-goroutine instances.
	Topology = cluster.Topology
	// ScrubOpts tunes Topology.StartScrub, the background anti-entropy
	// pass that converges diverged replicas without client reads.
	ScrubOpts = cluster.ScrubOpts
	// Client is the pipelined network client returned by Dial; beyond the
	// Store surface it exposes the raw protocol (Send/Flush/Recv), async
	// callbacks, futures, and the KV surface for Allocator-mode tables.
	Client = server.Client
	// ClientOpts configures DialTable.
	ClientOpts = server.ClientOpts
	// RetryPolicy bounds a connection's transparent redial-and-retry
	// behavior on retryable failures: attempt budget plus capped
	// exponential backoff with deterministic jitter. Used by
	// ClientOpts.Retry and ClusterOpts.Retry.
	RetryPolicy = server.RetryPolicy
)

// DefaultRetry is the redial-and-retry policy a replicated cluster uses
// when ClusterOpts.Retry is the zero value: a small bounded budget with
// capped exponential backoff. Set RetryPolicy.Max < 0 to disable retries.
var DefaultRetry = server.DefaultRetry

// IsRetryable classifies an error from any Store backend: true for
// transient transport conditions worth retrying on the same or another
// replica (connection loss, resets, timeouts, ErrBusy), false for
// terminal refusals the table itself issued (ErrExists, ErrWrongMode,
// ErrValueSize, ...) — retrying those would return the same answer.
// Cluster failover, client redial, and the loadgen's error accounting
// all branch on this one predicate.
func IsRetryable(err error) bool { return server.IsRetryable(err) }

// Modes.
const (
	Inlined   = core.Inlined
	Allocator = core.Allocator
	HashSet   = core.HashSet
)

// Batch operation kinds.
const (
	OpGet          = core.OpGet
	OpPut          = core.OpPut
	OpInsert       = core.OpInsert
	OpInsertShadow = core.OpInsertShadow
	OpDelete       = core.OpDelete
	OpCommitShadow = core.OpCommitShadow
)

// Hash function kinds (Config.Hash).
const (
	// HashModulo is the paper's default bin mapping: key % bins.
	HashModulo = hashfn.Modulo
	// HashWy selects wyhash (§3.4.3).
	HashWy = hashfn.WyHash
	// HashXX selects xxHash64.
	HashXX = hashfn.XXHash64
	// HashMurmur3 selects MurmurHash3.
	HashMurmur3 = hashfn.Murmur3
	// HashFNV1a selects 64-bit FNV-1a.
	HashFNV1a = hashfn.FNV1a
)

// Errors, re-exported. Remote backends map wire statuses back onto the
// same sentinels, so errors.Is works identically against every Store.
var (
	ErrExists         = core.ErrExists
	ErrShadow         = core.ErrShadow
	ErrFull           = core.ErrFull
	ErrReservedKey    = core.ErrReservedKey
	ErrWrongMode      = core.ErrWrongMode
	ErrValueSize      = core.ErrValueSize
	ErrNamespace      = core.ErrNamespace
	ErrTooManyHandles = core.ErrTooManyHandles

	// Transport-only conditions (no local counterpart).

	// ErrBusy: the server was out of connection handles.
	ErrBusy = server.ErrBusy
	// ErrBadRequest: the server rejected a malformed frame.
	ErrBadRequest = server.ErrBadRequest
	// ErrUnknownTable: the handshake named a table the server doesn't host.
	ErrUnknownTable = server.ErrUnknownTable
	// ErrBadVersion: the server doesn't speak the requested protocol version.
	ErrBadVersion = server.ErrBadVersion
)

// MaxNamespace is the largest namespace id (4Ki namespaces, §3.4.2).
const MaxNamespace = core.MaxNamespace

// New creates a Table from cfg.
func New(cfg Config) (*Table, error) { return core.New(cfg) }

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Table { return core.MustNew(cfg) }

// NewArena returns the slab allocator used by Allocator-mode tables; pass a
// shared instance via Config.Alloc to pool memory across tables.
func NewArena() alloc.Allocator { return alloc.NewArena() }

// NewNaiveAllocator returns the mutex-guarded baseline allocator (the
// "No mimalloc" configuration of the paper's Fig 14 ablation).
func NewNaiveAllocator() alloc.Allocator { return alloc.NewNaive() }

// Dial connects to a dlht-server at addr (protocol v2, default table) and
// returns it as a Store — an alias of Open("tcp://"+addr). The concrete
// type is *Client; use DialTable for a named table, timeouts, or direct
// access to the client's wider surface.
func Dial(addr string) (Store, error) {
	cl, err := server.DialV2(addr, server.ClientOpts{})
	if err != nil {
		// Return a bare nil interface, not a typed-nil *Client.
		return nil, err
	}
	return cl, nil
}

// DialTable connects to a dlht-server with explicit client options —
// table selector, feature set, read/write deadlines. It is the
// concrete-typed form of Open("tcp://host:port/table",
// WithClientOpts(opts)).
func DialTable(addr string, opts ClientOpts) (*Client, error) {
	return server.DialV2(addr, opts)
}

// NewCluster builds a sharded Store over pre-opened member stores; names
// give the shards their consistent-hash ring identities. Close closes the
// members.
func NewCluster(names []string, stores []Store, opts ClusterOpts) (*Cluster, error) {
	return cluster.New(names, stores, opts)
}

// DialCluster opens one pipelined protocol-v2 connection per address and
// consistent-hashes keys across them; the address list is the ring
// identity, so routing is stable across reconnects. It is the
// concrete-typed form of Open("cluster:a,b,c", WithClusterOpts(opts)).
func DialCluster(addrs []string, opts ClusterOpts) (*Cluster, error) {
	return cluster.Dial(addrs, opts)
}

// DialTopology builds a shared cluster membership over addrs without
// opening data connections: each worker goroutine takes its own Store
// instance with Topology.NewClient, and membership changes published on
// the Topology (AddShard, ...) are observed by every instance with zero
// downtime.
func DialTopology(addrs []string, opts ClusterOpts) (*Topology, error) {
	return cluster.DialTopology(addrs, opts)
}
