// Benchmark harness: one testing.B benchmark per table/figure of the DLHT
// paper's evaluation. Each benchmark runs the corresponding experiment at a
// benchmark-friendly scale and reports the headline figure metric through
// b.ReportMetric, printing the full table with -v. Absolute numbers depend
// on the host; the shapes (who wins, by what factor, where crossovers fall)
// are the reproduction target — see EXPERIMENTS.md.
//
// Usage:
//
//	go test -bench=. -benchmem            # everything
//	go test -bench=BenchmarkFig03 -v      # one figure with its table
package dlht

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/bench"
)

// benchScale sizes experiments for testing.B runs: a memory-resident index
// (beyond cache) but bounded per-iteration cost.
func benchScale(b *testing.B) bench.Scale {
	b.Helper()
	s := bench.DefaultScale()
	s.Keys = 1 << 18
	s.PopKeys = 1 << 20
	s.Dur = 150 * time.Millisecond
	s.Batch = 16
	return s
}

// runExperiment executes the registered experiment once per b.N batch and
// reports its first DLHT column as the metric.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	s := benchScale(b)
	var last bench.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last = e.Run(s)
	}
	b.StopTimer()
	if len(last.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	if v, err := strconv.ParseFloat(firstNumeric(last), 64); err == nil {
		b.ReportMetric(v, "Mreqs/s")
	}
	if testing.Verbose() {
		b.Log("\n" + last.String())
	}
}

// firstNumeric extracts the first parsable cell after the row label from
// the final row (typically the highest-thread-count DLHT figure).
func firstNumeric(r bench.Result) string {
	row := r.Rows[len(r.Rows)-1]
	for _, c := range row[1:] {
		if _, err := strconv.ParseFloat(c, 64); err == nil {
			return c
		}
	}
	return "0"
}

func BenchmarkFig01_Headline(b *testing.B)         { runExperiment(b, "fig1") }
func BenchmarkTable01_Features(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkFig03_GetThroughput(b *testing.B)    { runExperiment(b, "fig3") }
func BenchmarkFig04_PowerEfficiency(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig05_InsDel(b *testing.B)           { runExperiment(b, "fig5") }
func BenchmarkFig06_PutHeavy(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig07_Population(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig08_ResizeTimeline(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkOccupancy(b *testing.B)              { runExperiment(b, "occupancy") }
func BenchmarkFig09_ValueSize(b *testing.B)        { runExperiment(b, "fig9") }
func BenchmarkFig10_KeySize(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11_IndexSize(b *testing.B)        { runExperiment(b, "fig11") }
func BenchmarkFig12_BatchSize(b *testing.B)        { runExperiment(b, "fig12") }
func BenchmarkFig13_Skew(b *testing.B)             { runExperiment(b, "fig13") }
func BenchmarkFig14_Features(b *testing.B)         { runExperiment(b, "fig14") }
func BenchmarkFig15_Latency(b *testing.B)          { runExperiment(b, "fig15") }
func BenchmarkFig16_SingleThread(b *testing.B)     { runExperiment(b, "fig16") }
func BenchmarkCXLEmulation(b *testing.B)           { runExperiment(b, "cxl") }
func BenchmarkFig17_LockManager(b *testing.B)      { runExperiment(b, "fig17") }
func BenchmarkFig18_YCSB(b *testing.B)             { runExperiment(b, "fig18") }
func BenchmarkFig19_OLTP(b *testing.B)             { runExperiment(b, "fig19") }
func BenchmarkFig20_HashJoin(b *testing.B)         { runExperiment(b, "fig20") }
func BenchmarkTable04_OLTPCharacter(b *testing.B)  { runExperiment(b, "table4") }
func BenchmarkTable05_ComparisonSumm(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkAblations(b *testing.B)              { runExperiment(b, "ablations") }

// BenchmarkExec measures the sliding-window batch pipeline on an
// out-of-LLC table (1M keys over a 64 MiB bin array): batch sizes from
// well-inside to far-beyond the window, crossed with window sizes including
// "full" (the unbounded whole-batch prefetch pass that was the previous
// behavior), for both the Inlined Exec engine and the Allocator-mode
// GetKVBatch two-level pipeline. ns/op is per request, not per batch.
func BenchmarkExec(b *testing.B) {
	const keys = 1 << 20
	windows := []struct {
		name string
		w    int
	}{
		{"full", -1}, // prefetch the whole batch up front (old behavior)
		{"8", 8},
		{"16", 16}, // PrefetchWindow=0 default
		{"32", 32},
	}
	batches := []int{8, 64, 512, 4096}

	for _, wc := range windows {
		b.Run("w="+wc.name, func(b *testing.B) {
			// Inlined-mode engine.
			t := MustNew(Config{Bins: keys, PrefetchWindow: wc.w, MaxThreads: 8})
			h := t.MustHandle()
			for k := uint64(0); k < keys; k++ {
				if _, err := h.Insert(k, k+1); err != nil {
					b.Fatal(err)
				}
			}
			for _, bs := range batches {
				b.Run(fmt.Sprintf("inlined/b=%d", bs), func(b *testing.B) {
					ops := make([]Op, bs)
					x := uint64(1)
					b.ResetTimer()
					for i := 0; i < b.N; i += bs {
						for j := range ops {
							x ^= x << 13
							x ^= x >> 7
							x ^= x << 17
							ops[j] = Op{Kind: OpGet, Key: x % keys}
						}
						h.Exec(ops, false)
					}
				})
			}

			// Allocator-mode two-level pipeline.
			kt := MustNew(Config{Mode: Allocator, Bins: keys, PrefetchWindow: wc.w, MaxThreads: 8, ValueSize: 8})
			kh := kt.MustHandle()
			var kb [8]byte
			for k := uint64(0); k < keys; k++ {
				binary.LittleEndian.PutUint64(kb[:], k)
				if err := kh.InsertKV(0, kb[:], kb[:]); err != nil {
					b.Fatal(err)
				}
			}
			for _, bs := range batches {
				b.Run(fmt.Sprintf("kv/b=%d", bs), func(b *testing.B) {
					reqs := make([]KVGet, bs)
					keyBuf := make([]byte, 8*bs)
					x := uint64(1)
					b.ResetTimer()
					for i := 0; i < b.N; i += bs {
						for j := range reqs {
							x ^= x << 13
							x ^= x >> 7
							x ^= x << 17
							kb := keyBuf[8*j : 8*j+8]
							binary.LittleEndian.PutUint64(kb, x%keys)
							reqs[j] = KVGet{Key: kb}
						}
						kh.GetKVBatch(reqs)
					}
				})
			}
		})
	}
}

// BenchmarkPipeline measures the streaming Pipeline API on the same
// out-of-LLC geometry as BenchmarkExec (1M keys, 64 MiB bin array):
// uniform random Gets enter one at a time and complete through OnComplete
// once they fall a window behind the enqueue cursor. Work arrives in
// bursts of 4096 — BenchmarkExec's deepest batch — but the pipeline is
// deliberately NOT flushed between bursts, so the window stays primed
// across burst boundaries. ns/op is per request; staying within 5% of
// BenchmarkExec's inlined ns/op at the same window is the API-overhead
// target, for both the Inlined engine and the Allocator-mode two-level
// pipeline.
func BenchmarkPipeline(b *testing.B) {
	const keys = 1 << 20
	const burst = 4096
	// One table pair serves every window: unlike Config.PrefetchWindow,
	// the pipeline window is per-pipeline state.
	t := MustNew(Config{Bins: keys, MaxThreads: 8})
	h := t.MustHandle()
	for k := uint64(0); k < keys; k++ {
		if _, err := h.Insert(k, k+1); err != nil {
			b.Fatal(err)
		}
	}
	kt := MustNew(Config{Mode: Allocator, Bins: keys, MaxThreads: 8, ValueSize: 8})
	kh := kt.MustHandle()
	var kbuf [8]byte
	for k := uint64(0); k < keys; k++ {
		binary.LittleEndian.PutUint64(kbuf[:], k)
		if err := kh.InsertKV(0, kbuf[:], kbuf[:]); err != nil {
			b.Fatal(err)
		}
	}

	for _, w := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("w=%d/inlined/b=%d", w, burst), func(b *testing.B) {
			misses := 0
			pl := h.Pipeline(PipelineOpts{Window: w, OnComplete: func(op *Op) {
				if !op.OK {
					misses++
				}
			}})
			x := uint64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i += burst {
				for j := 0; j < burst; j++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					pl.Get(x % keys)
				}
			}
			pl.Flush()
			b.StopTimer()
			if misses != 0 {
				b.Fatalf("%d misses on a fully populated table", misses)
			}
		})

		b.Run(fmt.Sprintf("w=%d/kv/b=%d", w, burst), func(b *testing.B) {
			misses := 0
			pl := kh.KVPipeline(KVPipelineOpts{Window: w, OnComplete: func(r *KVGet) {
				if !r.OK {
					misses++
				}
			}})
			// Per-slot key storage: a key must stay valid until its lookup
			// completes, a window (< burst) later.
			keyBuf := make([]byte, 8*burst)
			x := uint64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i += burst {
				for j := 0; j < burst; j++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					kb := keyBuf[8*j : 8*j+8]
					binary.LittleEndian.PutUint64(kb, x%keys)
					pl.Get(0, kb)
				}
			}
			pl.Flush()
			b.StopTimer()
			if misses != 0 {
				b.Fatalf("%d misses on a fully populated table", misses)
			}
		})
	}
}

// Micro-benchmarks of the public API hot paths, complementing the
// figure-level harnesses above.

func BenchmarkOpGet(b *testing.B) {
	t := MustNew(Config{Bins: 1 << 18, MaxThreads: 64})
	h := t.MustHandle()
	const keys = 1 << 17
	for k := uint64(0); k < keys; k++ {
		h.Insert(k, k)
	}
	b.ResetTimer()
	x := uint64(1)
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		h.Get(x % keys)
	}
}

func BenchmarkOpGetBatched(b *testing.B) {
	t := MustNew(Config{Bins: 1 << 18, MaxThreads: 64})
	h := t.MustHandle()
	const keys = 1 << 17
	for k := uint64(0); k < keys; k++ {
		h.Insert(k, k)
	}
	ops := make([]Op, 16)
	b.ResetTimer()
	x := uint64(1)
	for i := 0; i < b.N; i += len(ops) {
		for j := range ops {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			ops[j] = Op{Kind: OpGet, Key: x % keys}
		}
		h.Exec(ops, false)
	}
}

func BenchmarkOpInsertDelete(b *testing.B) {
	t := MustNew(Config{Bins: 1 << 16, MaxThreads: 64})
	h := t.MustHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i)
		h.Insert(k, k)
		h.Delete(k)
	}
}

func BenchmarkOpPut(b *testing.B) {
	t := MustNew(Config{Bins: 1 << 16, MaxThreads: 64})
	h := t.MustHandle()
	const keys = 1 << 14
	for k := uint64(0); k < keys; k++ {
		h.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Put(uint64(i)%keys, uint64(i))
	}
}

func BenchmarkOpGetParallel(b *testing.B) {
	t := MustNew(Config{Bins: 1 << 18, MaxThreads: 4096})
	h := t.MustHandle()
	const keys = 1 << 17
	for k := uint64(0); k < keys; k++ {
		h.Insert(k, k)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		hw := t.MustHandle()
		x := uint64(1)
		for pb.Next() {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			hw.Get(x % keys)
		}
	})
}
