// Command dlht-crash is the two halves of the crash-recovery smoke test
// (scripts/crash_smoke.sh): a writer that hammers a durable dlht-server
// through the pipelined Store surface while keeping a client-side oracle
// of what was issued and what was acknowledged, and a verifier that
// replays the oracle against the restarted server.
//
// The property under test is exactly the WAL's durability contract:
//
//	acked ≤ recovered ≤ issued   (per key)
//
// No acknowledged write may be lost across kill -9 (acked ≤ recovered),
// and nothing may surface that was never sent (recovered ≤ issued).
//
// Writer: every key carries a monotone round counter as its value — round
// 1 is an Insert, later rounds are Puts — so the recovered value of a key
// IS the round the server durably applied, and the oracle needs only two
// numbers per key. When the transport fails (the harness kill -9s the
// server mid-burst) the writer dumps the oracle as JSON and exits 0; a
// writer that is never interrupted exits 0 after -seconds with the oracle
// marked clean.
//
// Usage:
//
//	dlht-crash -mode write  -addr tcp://127.0.0.1:4041 -oracle /tmp/oracle.json
//	dlht-crash -mode verify -addr tcp://127.0.0.1:4041 -oracle /tmp/oracle.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	dlht "repro"
)

// keyState is one key's oracle entry. Rounds are monotone from 1; 0 means
// "never".
type keyState struct {
	// Issued is the highest round submitted (possibly unacknowledged).
	Issued uint64 `json:"issued"`
	// Acked is the highest round whose response arrived. The server must
	// not lose it, ever.
	Acked uint64 `json:"acked"`
}

// oracle is the writer's dump, keyed by decimal key id.
type oracle struct {
	// Clean is true when the writer finished its time budget without a
	// transport error — i.e. the harness never killed the server.
	Clean bool                `json:"clean"`
	Keys  map[string]keyState `json:"keys"`
}

func main() {
	var (
		mode    = flag.String("mode", "", "write or verify")
		addr    = flag.String("addr", "tcp://127.0.0.1:4040", "server spec for dlht.Open")
		oraPath = flag.String("oracle", "", "oracle JSON file (written by -mode write, read by -mode verify)")
		keys    = flag.Int("keys", 512, "distinct keys in the workload")
		window  = flag.Int("window", 64, "pipe window (write mode)")
		seconds = flag.Int("seconds", 60, "write mode gives up cleanly after this long without a crash")
		seed    = flag.Int64("seed", 1, "workload PRNG seed")
	)
	flag.Parse()
	if *oraPath == "" {
		log.Fatal("-oracle is required")
	}
	switch *mode {
	case "write":
		runWrite(*addr, *oraPath, *keys, *window, *seconds, *seed)
	case "verify":
		runVerify(*addr, *oraPath)
	default:
		log.Fatalf("unknown -mode %q (want write or verify)", *mode)
	}
}

func runWrite(addr, oraPath string, keys, window, seconds int, seed int64) {
	s, err := dlht.Open(addr, dlht.WithClientOpts(dlht.ClientOpts{
		ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second,
	}))
	if err != nil {
		log.Fatalf("open %s: %v", addr, err)
	}
	state := make([]keyState, keys+1) // 1-based
	p, err := s.Pipe(dlht.PipeOpts{Window: window, OnComplete: func(c dlht.Completion) {
		if c.Err != nil || !c.OK {
			return // unacknowledged; the oracle's lower bound stays put
		}
		ks := &state[c.Key]
		switch c.Kind {
		case dlht.OpInsert:
			if ks.Acked < 1 {
				ks.Acked = 1
			}
		case dlht.OpPut:
			// Completion.Value is the overwritten (previous) value, so the
			// round just made durable is one past it.
			if r := c.Value + 1; r > ks.Acked {
				ks.Acked = r
			}
		}
	}})
	if err != nil {
		log.Fatalf("pipe: %v", err)
	}

	r := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(time.Duration(seconds) * time.Second)
	clean := false
	ops := 0
	for {
		if time.Now().After(deadline) {
			// Never crashed; flush so acked catches up, then dump clean.
			if err := p.Flush(); err == nil {
				clean = true
			}
			break
		}
		k := uint64(r.Intn(keys)) + 1
		ks := &state[k]
		round := ks.Issued + 1
		// Count the round as issued before touching the transport: an
		// enqueue that fails can still have pushed the op onto the wire, so
		// recording after the fact would undercount the upper bound.
		ks.Issued = round
		var werr error
		if round == 1 {
			werr = p.Insert(k, round)
		} else {
			werr = p.Put(k, round)
		}
		if werr != nil {
			break // transport down: the crash happened mid-burst
		}
		if ops++; ops%499 == 0 {
			if err := p.Flush(); err != nil {
				break
			}
		}
	}

	dump := oracle{Clean: clean, Keys: make(map[string]keyState, keys)}
	for k := 1; k <= keys; k++ {
		if state[k].Issued > 0 {
			dump.Keys[fmt.Sprint(k)] = state[k]
		}
	}
	f, err := os.Create(oraPath)
	if err != nil {
		log.Fatalf("oracle: %v", err)
	}
	if err := json.NewEncoder(f).Encode(&dump); err != nil {
		log.Fatalf("oracle: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("oracle: %v", err)
	}
	log.Printf("writer done: %d ops issued over %d keys (clean=%v)", ops, len(dump.Keys), clean)
}

func runVerify(addr, oraPath string) {
	raw, err := os.ReadFile(oraPath)
	if err != nil {
		log.Fatalf("oracle: %v", err)
	}
	var ora oracle
	if err := json.Unmarshal(raw, &ora); err != nil {
		log.Fatalf("oracle: %v", err)
	}
	s, err := dlht.Open(addr, dlht.WithClientOpts(dlht.ClientOpts{
		ReadTimeout: 5 * time.Second, WriteTimeout: 5 * time.Second,
	}))
	if err != nil {
		log.Fatalf("open %s: %v", addr, err)
	}
	defer s.Close()

	bad := 0
	var checked, ackedTotal, recoveredTotal int
	for id, ks := range ora.Keys {
		var k uint64
		if _, err := fmt.Sscan(id, &k); err != nil {
			log.Fatalf("oracle key %q: %v", id, err)
		}
		v, ok, err := s.Get(k)
		if err != nil {
			log.Fatalf("Get %d: %v", k, err)
		}
		recovered := uint64(0)
		if ok {
			recovered = v
		}
		if recovered < ks.Acked {
			log.Printf("LOST ACKED WRITE: key %d recovered round %d < acked %d", k, recovered, ks.Acked)
			bad++
		}
		if recovered > ks.Issued {
			log.Printf("PHANTOM WRITE: key %d recovered round %d > issued %d", k, recovered, ks.Issued)
			bad++
		}
		checked++
		ackedTotal += int(ks.Acked)
		recoveredTotal += int(recovered)
	}
	if bad > 0 {
		log.Fatalf("verify FAILED: %d violations over %d keys", bad, checked)
	}
	log.Printf("verify OK: %d keys, acked rounds %d, recovered rounds %d (clean=%v)",
		checked, ackedTotal, recoveredTotal, ora.Clean)
}
