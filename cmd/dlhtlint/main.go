// dlhtlint runs the repo's concurrency-contract analyzers (ackgate,
// stripelock, pipebarrier, sentinelcmp, hotpath — see
// internal/analyzers) over go-list package patterns and exits nonzero
// on any finding.
//
// Usage:
//
//	go run ./cmd/dlhtlint [-only pass[,pass]] [packages]
//
// With no patterns it checks ./... . Suppress a finding by putting a
// //dlht:ok:<pass> comment (with a justification) on the flagged line
// or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analyzers"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of passes to run")
	list := flag.Bool("list", false, "list the available passes and exit")
	flag.Parse()

	passes := analyzers.All()
	if *list {
		for _, a := range passes {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		passes = passes[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analyzers.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "dlhtlint: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			passes = append(passes, a)
		}
	}

	pkgs, err := analyzers.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dlhtlint: %v\n", err)
		os.Exit(2)
	}

	n := 0
	for _, pkg := range pkgs {
		for _, a := range passes {
			for _, d := range analyzers.Run(a, pkg) {
				fmt.Fprintf(os.Stderr, "%s: %s [%s]\n",
					pkg.Fset.Position(d.Pos), d.Message, a.Name)
				n++
			}
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "dlhtlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
