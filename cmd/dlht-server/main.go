// Command dlht-server exposes a DLHT table over TCP using the pipelined
// binary protocol of repro/internal/server. Each connection is one
// goroutine holding one table handle; every request is fed, as it is
// decoded, into a per-connection streaming pipeline (§3.3) whose
// completions write the responses — replies stream out while a deep burst
// is still being decoded.
//
// Usage:
//
//	dlht-server -addr :4040 -bins 1048576 -window 16
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	dlht "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":4040", "listen address")
		bins       = flag.Uint64("bins", 1<<20, "initial bin count (3 slots per bin)")
		resizable  = flag.Bool("resizable", true, "enable non-blocking resize")
		maxBatch   = flag.Int("max-batch", 0, "force a pipeline drain+flush every N requests per connection (0 = stream continuously)")
		maxThreads = flag.Int("max-threads", 4096, "max concurrent connections (table handles)")
		hashName   = flag.String("hash", "modulo", "bin hash: modulo|wy|xx|murmur3|fnv1a")
		window     = flag.Int("window", 0, "prefetch window of the per-connection pipeline (0 or <0 = default 16; the full-batch baseline has no streaming analogue)")
	)
	flag.Parse()

	cfg := dlht.Config{Bins: *bins, Resizable: *resizable, MaxThreads: *maxThreads, PrefetchWindow: *window}
	switch *hashName {
	case "modulo":
		cfg.Hash = dlht.HashModulo
	case "wy":
		cfg.Hash = dlht.HashWy
	case "xx":
		cfg.Hash = dlht.HashXX
	case "murmur3":
		cfg.Hash = dlht.HashMurmur3
	case "fnv1a":
		cfg.Hash = dlht.HashFNV1a
	default:
		log.Fatalf("unknown -hash %q", *hashName)
	}
	tbl, err := dlht.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	s := server.New(tbl, server.Options{MaxBatch: *maxBatch})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down")
		s.Close()
	}()

	log.Printf("dlht-server listening on %s (bins=%d resizable=%v max-batch=%d window=%d)",
		*addr, *bins, *resizable, *maxBatch, *window)
	if err := s.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
		log.Fatal(err)
	}
	st := tbl.Stats()
	log.Printf("final: %d/%d slots occupied (%.1f%%), %d resizes",
		st.Occupied, st.Capacity, st.Occupancy*100, st.Resizes)
}
