// Command dlht-server exposes DLHT tables over TCP using the pipelined
// binary protocol of repro/internal/server. Each connection is one
// goroutine holding one table handle; every request is fed, as it is
// decoded, into a per-connection streaming pipeline (§3.3) whose
// completions write the responses — replies stream out while a deep burst
// is still being decoded.
//
// The process hosts one default table (served to protocol-v1 clients and
// handshakes with no table selector) plus any number of named tables
// declared with -tables; protocol-v2 clients pick one in the handshake.
// Tables in kv mode (Allocator, VariableKV, Namespaces) serve the
// variable-length KV frames.
//
// Any table can be durable: -durable DIR backs the default table with a
// group-commit WAL in DIR, and a -tables entry takes a durable=DIR
// segment (name:kv:durable=/path). Durable tables recover their state
// from the directory on startup and withhold each response until a group
// commit covers its mutation, so an acknowledged write survives kill -9.
//
// Requests execute on the shared sharded executor by default (-exec
// shared): connection readers enqueue decoded frames into per-core
// executor shards, each owning one table handle and a long-lived pipeline,
// so the paper's batching win applies across a fleet of synchronous
// clients, not just within one deeply-pipelined connection. -exec
// partitioned routes by key hash instead (per-key serialization, disjoint
// bins per shard), and -exec conn restores the goroutine-per-connection
// model for A/B comparison.
//
// Usage:
//
//	dlht-server -addr :4040 -bins 1048576 -window 16 \
//	    -exec shared -pprof 127.0.0.1:6060 \
//	    -tables users:kv:durable=/var/lib/dlht/users,sessions:inlined \
//	    -idle-timeout 5m
package main

import (
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	dlht "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":4040", "listen address")
		bins       = flag.Uint64("bins", 1<<20, "initial bin count per table (3 slots per bin)")
		resizable  = flag.Bool("resizable", true, "enable non-blocking resize")
		maxBatch   = flag.Int("max-batch", 0, "force a pipeline drain+flush every N requests per connection (0 = stream continuously)")
		maxThreads = flag.Int("max-threads", 4096, "max concurrent connections per table (table handles)")
		hashName   = flag.String("hash", "modulo", "bin hash: modulo|wy|xx|murmur3|fnv1a")
		window     = flag.Int("window", 0, "prefetch window of the per-connection pipeline (0 or <0 = default 16; the full-batch baseline has no streaming analogue)")
		tables     = flag.String("tables", "", "extra named tables, comma-separated name[:mode][:durable=dir] entries with mode inlined (default) or kv (Allocator, variable KV, namespaces); durable=dir backs the table with a group-commit WAL in dir")
		durableDir = flag.String("durable", "", "back the default table with a group-commit WAL in this directory (empty = RAM only)")
		idle       = flag.Duration("idle-timeout", 0, "close connections idle (unreadable or unwritable) for this long; 0 disables")
		trackVers  = flag.Bool("track-versions", false, "maintain a per-key write-version index (serves OpGetVer; cluster resharding and anti-entropy use it for exact last-write-wins ordering)")
		execName   = flag.String("exec", "shared", "execution model: shared (sharded executor), partitioned (executor with key-hash routing), conn (goroutine per connection)")
		execShards = flag.Int("exec-shards", 0, "executor shards per table (0 = GOMAXPROCS; ignored with -exec=conn)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
		respAddr   = flag.String("resp", "", "serve RESP2 (the Redis protocol) on this address (e.g. :6379); empty disables")
		respTable  = flag.String("resp-table", "", "kv-mode table the RESP listener serves (default: a RAM kv table named \"resp\", created if absent)")
	)
	flag.Parse()
	execMode, ok := server.ParseExecMode(*execName)
	if !ok {
		log.Fatalf("unknown -exec %q (want shared|partitioned|conn)", *execName)
	}
	if *maxBatch > 0 && execMode != server.ExecConn {
		log.Printf("warning: -max-batch applies only to -exec=conn; ignored under -exec=%s (executor responses always stream)", execMode)
	}
	if *pprofAddr != "" {
		go func() {
			// DefaultServeMux carries the net/http/pprof handlers; executor
			// shard hotspots are inspectable on the live server via
			// `go tool pprof http://<addr>/debug/pprof/profile?seconds=10`.
			log.Printf("pprof listening on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	cfg := dlht.Config{Bins: *bins, Resizable: *resizable, MaxThreads: *maxThreads, PrefetchWindow: *window, TrackVersions: *trackVers}
	switch *hashName {
	case "modulo":
		cfg.Hash = dlht.HashModulo
	case "wy":
		cfg.Hash = dlht.HashWy
	case "xx":
		cfg.Hash = dlht.HashXX
	case "murmur3":
		cfg.Hash = dlht.HashMurmur3
	case "fnv1a":
		cfg.Hash = dlht.HashFNV1a
	default:
		log.Fatalf("unknown -hash %q", *hashName)
	}
	// Durable stores stay open past server.Close (connections gate their
	// last responses on the log); they are closed, in order, on the way out.
	var durables []*dlht.DurableStore
	openDurable := func(what, dir string, tcfg dlht.Config) *dlht.DurableStore {
		ds, err := dlht.OpenDurable(dir, tcfg, dlht.WALOptions{})
		if err != nil {
			log.Fatalf("%s: open durable dir %s: %v", what, dir, err)
		}
		rs := ds.RecoverStats()
		log.Printf("%s: recovered %s (snapshot: %d records; log: %d segments, %d records; torn tail: %d bytes truncated)",
			what, dir, rs.SnapshotRecords, rs.Segments, rs.Records, rs.TornBytes)
		durables = append(durables, ds)
		return ds
	}

	var tbl *dlht.Table
	var defaultDS *dlht.DurableStore
	if *durableDir != "" {
		defaultDS = openDurable("default table", *durableDir, cfg)
		tbl = defaultDS.Table()
	} else {
		var err error
		tbl, err = dlht.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	respTableName := *respTable
	if *respAddr != "" && respTableName == "" {
		respTableName = "resp"
	}
	s := server.New(tbl, server.Options{
		MaxBatch: *maxBatch, IdleTimeout: *idle,
		Exec: execMode, ExecShards: *execShards,
		RESPTable: respTableName,
	})
	if defaultDS != nil {
		if err := s.AddDurable(server.DefaultTable, defaultDS); err != nil {
			log.Fatal(err)
		}
	}
	names := []string{"(default)"}
	if *tables != "" {
		for _, spec := range strings.Split(*tables, ",") {
			parts := strings.Split(spec, ":")
			name := parts[0]
			if name == "" {
				log.Fatalf("bad -tables entry %q: empty name", spec)
			}
			tcfg, dir := cfg, ""
			for _, p := range parts[1:] {
				switch {
				case p == "inlined":
				case p == "kv":
					tcfg.Mode = dlht.Allocator
					tcfg.VariableKV = true
					tcfg.Namespaces = true
					// Epoch GC keeps a GetKV value view stable while it is
					// copied into a response, even against a concurrent
					// DeleteKV from another connection; the serve loop
					// refreshes each connection's epoch periodically.
					tcfg.EpochGC = true
				case strings.HasPrefix(p, "durable="):
					dir = strings.TrimPrefix(p, "durable=")
				default:
					log.Fatalf("bad -tables entry %q: unknown segment %q (want inlined, kv or durable=dir)", spec, p)
				}
			}
			if dir != "" {
				ds := openDurable("table "+name, dir, tcfg)
				if err := s.AddDurable(name, ds); err != nil {
					log.Fatalf("table %s: %v", name, err)
				}
			} else {
				nt, err := dlht.New(tcfg)
				if err != nil {
					log.Fatalf("table %s: %v", name, err)
				}
				if err := s.AddTable(name, nt); err != nil {
					log.Fatalf("table %s: %v", name, err)
				}
			}
			names = append(names, spec)
		}
	}

	if *respAddr != "" {
		if s.Table(respTableName) == nil {
			rcfg := cfg
			rcfg.Mode = dlht.Allocator
			rcfg.VariableKV = true
			rcfg.Namespaces = true
			rcfg.EpochGC = true
			rt, err := dlht.New(rcfg)
			if err != nil {
				log.Fatalf("resp table %s: %v", respTableName, err)
			}
			if err := s.AddTable(respTableName, rt); err != nil {
				log.Fatalf("resp table %s: %v", respTableName, err)
			}
			names = append(names, respTableName+":kv (resp)")
		}
		go func() {
			if err := s.ListenAndServeRESP(*respAddr); err != nil && !errors.Is(err, server.ErrServerClosed) {
				log.Printf("resp listener: %v", err)
			}
		}()
		log.Printf("resp listening on %s (table=%s)", *respAddr, respTableName)
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the listeners,
	// drains every connection (and the executors), then the main goroutine
	// seals the durable stores. A second signal while that drain is stuck
	// forces the process out.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down (signal again to force exit)")
		go s.Close()
		<-sig
		log.Printf("second signal: forcing exit")
		os.Exit(1)
	}()

	log.Printf("dlht-server listening on %s (bins=%d resizable=%v exec=%s max-batch=%d window=%d idle-timeout=%v tables=%s)",
		*addr, *bins, *resizable, execMode, *maxBatch, *window, *idle, strings.Join(names, ","))
	if err := s.ListenAndServe(*addr); err != nil && !errors.Is(err, server.ErrServerClosed) {
		log.Fatal(err)
	}
	// Server.Close has drained every connection; now seal the logs so the
	// final state is recoverable from a clean tail.
	for _, ds := range durables {
		if err := ds.Close(); err != nil {
			log.Printf("closing durable store: %v", err)
		}
	}
	st := tbl.Stats()
	log.Printf("final: %d/%d slots occupied (%.1f%%), %d resizes",
		st.Occupied, st.Capacity, st.Occupancy*100, st.Resizes)
}
