// Command dlht-server exposes a DLHT table over TCP using the pipelined
// binary protocol of repro/internal/server. Each connection is one
// goroutine holding one table handle; all requests buffered on a
// connection are executed as a single prefetched batch (§3.3).
//
// Usage:
//
//	dlht-server -addr :4040 -bins 1048576 -window 16
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	dlht "repro"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":4040", "listen address")
		bins       = flag.Uint64("bins", 1<<20, "initial bin count (3 slots per bin)")
		resizable  = flag.Bool("resizable", true, "enable non-blocking resize")
		maxBatch   = flag.Int("max-batch", 0, "max requests per Exec batch per connection (0 = bounded by read buffer)")
		maxThreads = flag.Int("max-threads", 4096, "max concurrent connections (table handles)")
		hashName   = flag.String("hash", "modulo", "bin hash: modulo|wy|xx|murmur3|fnv1a")
		window     = flag.Int("window", 0, "prefetch window for batch execution (0 = default, <0 = full batch)")
	)
	flag.Parse()

	cfg := dlht.Config{Bins: *bins, Resizable: *resizable, MaxThreads: *maxThreads, PrefetchWindow: *window}
	switch *hashName {
	case "modulo":
		cfg.Hash = dlht.HashModulo
	case "wy":
		cfg.Hash = dlht.HashWy
	case "xx":
		cfg.Hash = dlht.HashXX
	case "murmur3":
		cfg.Hash = dlht.HashMurmur3
	case "fnv1a":
		cfg.Hash = dlht.HashFNV1a
	default:
		log.Fatalf("unknown -hash %q", *hashName)
	}
	tbl, err := dlht.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	s := server.New(tbl, server.Options{MaxBatch: *maxBatch})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("shutting down")
		s.Close()
	}()

	log.Printf("dlht-server listening on %s (bins=%d resizable=%v max-batch=%d window=%d)",
		*addr, *bins, *resizable, *maxBatch, *window)
	if err := s.ListenAndServe(*addr); err != nil && err != server.ErrServerClosed {
		log.Fatal(err)
	}
	st := tbl.Stats()
	log.Printf("final: %d/%d slots occupied (%.1f%%), %d resizes",
		st.Occupied, st.Capacity, st.Occupancy*100, st.Resizes)
}
