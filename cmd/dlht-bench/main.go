// Command dlht-bench regenerates the DLHT paper's evaluation tables and
// figures (§5). Each experiment prints the same rows/series the paper
// reports, scaled by the flags below.
//
// Usage:
//
//	dlht-bench -list
//	dlht-bench -exp fig3
//	dlht-bench -exp all -keys 1048576 -dur 400ms
//	dlht-bench -exp fig5 -threads 1,2,4 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		keys     = flag.Uint64("keys", 1<<20, "prepopulated key count (paper: 100M)")
		popKeys  = flag.Uint64("pop", 0, "population-experiment keys (default 4x keys; paper: 800M)")
		dur      = flag.Duration("dur", 400*time.Millisecond, "measurement window per data point")
		threads  = flag.String("threads", "", "comma-separated thread sweep (default 1,2,4,..,NumCPU)")
		batch    = flag.Int("batch", 16, "batch size for DLHT's prefetched path")
		window   = flag.Int("window", 0, "prefetch window for DLHT batches (0 = default, <0 = full batch)")
		pipeline = flag.Bool("pipeline", false, "drive DLHT batch paths through the streaming Pipeline API instead of Exec")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	bench.SetPrefetchWindow(*window)
	bench.SetUsePipeline(*pipeline)

	if *list {
		for _, e := range bench.Registry {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	s := bench.DefaultScale()
	s.Keys = *keys
	s.Dur = *dur
	s.Batch = *batch
	if *popKeys != 0 {
		s.PopKeys = *popKeys
	} else {
		s.PopKeys = *keys * 4
	}
	if *threads != "" {
		s.Threads = nil
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad -threads value %q\n", part)
				os.Exit(2)
			}
			s.Threads = append(s.Threads, n)
		}
	}

	run := func(e bench.Experiment) {
		start := time.Now()
		res := e.Run(s)
		if *csv {
			fmt.Printf("# %s — %s\n%s", res.ID, res.Title, res.CSV())
		} else {
			fmt.Println(res.String())
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Registry {
			run(e)
		}
		return
	}
	e, err := bench.Lookup(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	run(e)
}
