package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/resp"
	"repro/internal/workload"
)

// RESP mode (-resp ADDR): drive a dlht-server's RESP2 listener with
// pipelined SET then GET phases through the internal resp.Client — the
// same shape as `redis-benchmark -t set,get -P <pipeline>`, so the smoke
// script can fall back to it when redis-benchmark is not installed. The
// output lines are stable and awk-parseable:
//
//	resp set: 1.23 M reqs/s (1000000 ops in 813ms)
//	resp get: 2.34 M reqs/s (1000000 ops in 427ms)

// respConfig bundles the -resp mode's knobs.
type respConfig struct {
	addr            string
	conns, pipeline int
	totalOps, keys  uint64
}

func runRESP(cfg respConfig) {
	if err := respSanity(cfg.addr); err != nil {
		log.Fatalf("resp sanity: %v", err)
	}
	fmt.Println("resp sanity: ok (SET/GET/DEL, TTL expiry)")
	fmt.Printf("resp run: %d ops/phase over %d conns × pipeline %d (%d keys) against %s\n",
		cfg.totalOps, cfg.conns, cfg.pipeline, cfg.keys, cfg.addr)
	var failed bool
	for _, phase := range []string{"set", "get"} {
		m, errs := respPhase(cfg, phase)
		fmt.Printf("resp %s: %.2f M reqs/s (%d ops in %v)\n",
			phase, m.MReqs(), m.Ops, m.Elapsed.Round(time.Millisecond))
		if errs > 0 {
			fmt.Printf("resp %s errors: %d\n", phase, errs)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// respSanity is the redis-cli-shaped correctness pass the smoke script
// runs before measuring: a SET/GET/DEL round trip and a key SET with a
// TTL that answers as a hit before its deadline and a miss after it.
func respSanity(addr string) error {
	cl, err := resp.Dial(addr)
	if err != nil {
		return err
	}
	defer cl.Close()
	check := func(want string, args ...string) error {
		r, err := cl.Do(args...)
		if err != nil {
			return fmt.Errorf("%v: %v", args, err)
		}
		if r.IsErr() {
			return fmt.Errorf("%v: %s", args, r.Str)
		}
		if got := r.Text(); got != want {
			return fmt.Errorf("%v = %q, want %q", args, got, want)
		}
		return nil
	}
	steps := []func() error{
		func() error { return check("OK", "SET", "smoke:k", "v") },
		func() error { return check("v", "GET", "smoke:k") },
		func() error { return check("1", "DEL", "smoke:k") },
		func() error { return check("OK", "SET", "smoke:ttl", "v", "PX", "150") },
		func() error { return check("v", "GET", "smoke:ttl") },
		func() error {
			if r, err := cl.Do("PTTL", "smoke:ttl"); err != nil || r.Int <= 0 {
				return fmt.Errorf("PTTL = %+v, %v; want positive", r, err)
			}
			time.Sleep(250 * time.Millisecond)
			if r, err := cl.Do("GET", "smoke:ttl"); err != nil || !r.Null {
				return fmt.Errorf("GET after TTL = %+v, %v; want null", r, err)
			}
			return check("-2", "TTL", "smoke:ttl")
		},
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return err
		}
	}
	return nil
}

// respPhase runs one single-command phase ("set" or "get") with every
// connection keeping -pipeline commands in flight.
func respPhase(cfg respConfig, phase string) (bench.Measurement, uint64) {
	var total, errCount atomic.Uint64
	var wg sync.WaitGroup
	per := cfg.totalOps / uint64(cfg.conns)
	begin := time.Now()
	for c := 0; c < cfg.conns; c++ {
		quota := per
		if c == 0 {
			quota += cfg.totalOps % uint64(cfg.conns)
		}
		if quota == 0 {
			continue
		}
		wg.Add(1)
		go func(c int, quota uint64) {
			defer wg.Done()
			cl, err := resp.Dial(cfg.addr)
			if err != nil {
				log.Printf("resp dial: %v", err)
				errCount.Add(quota)
				return
			}
			defer cl.Close()
			stream := workload.NewUniform(uint64(c)*2654435761+7, cfg.keys)
			key := make([]byte, 0, 32)
			val := []byte("xxx") // redis-benchmark's default -d 3 payload
			var sent, recvd uint64
			for recvd < quota {
				topped := false
				for sent < quota && sent-recvd < uint64(cfg.pipeline) {
					key = strconv.AppendUint(append(key[:0], "key:"...), stream.Key(), 10)
					if phase == "set" {
						err = cl.Send([]byte("SET"), key, val)
					} else {
						err = cl.Send([]byte("GET"), key)
					}
					if err != nil {
						errCount.Add(quota - recvd)
						return
					}
					sent++
					topped = true
				}
				if topped {
					if err := cl.Flush(); err != nil {
						errCount.Add(quota - recvd)
						return
					}
				}
				r, err := cl.Recv()
				if err != nil {
					errCount.Add(quota - recvd)
					return
				}
				// GET misses are fine (the SET phase covers an arbitrary
				// subset of the keyspace); protocol errors are not.
				if r.IsErr() {
					errCount.Add(1)
				}
				recvd++
			}
			total.Add(recvd)
		}(c, quota)
	}
	wg.Wait()
	return bench.Measurement{Ops: total.Load(), Elapsed: time.Since(begin)}, errCount.Load()
}
