// Command dlht-loadgen drives a dlht-server with pipelined traffic and
// reports throughput and latency percentiles. It first prepopulates the
// keyspace with INSERTs, then runs a mixed GET/PUT phase in which every
// connection keeps -pipeline requests in flight — the client-side mirror
// of the server's batch execution.
//
// Usage:
//
//	dlht-loadgen -addr localhost:4040 -conns 8 -pipeline 16 \
//	    -ops 1000000 -keys 100000 -read-pct 50 -dist uniform
//
// With -embedded the loadgen starts an in-process dlht-server on a loopback
// port and drives that, making a single binary sufficient for end-to-end
// experiments — in particular sweeping -window (the table's prefetch
// window) against -pipeline (the client-side burst depth it feeds). With
// -async each connection drives the client's callback API (GetAsync/
// PutAsync + RecvOneAsync) instead of explicit Send/Recv pairs.
//
// With -addrs host:p1,host:p2,... the loadgen shards the keyspace across
// several dlht-server processes instead: each worker dials a
// consistent-hashed Cluster (one pipelined protocol-v2 connection per
// shard) and drives it through the backend-independent Store surface —
// synchronous ops by default, the completion-driven Pipe under -async
// with -pipeline requests in flight per shard.
//
// Cluster mode understands replication: -replicas R fans every write to
// R ring-successor shards, -write-quorum W acks once W have applied, and
// shard connections transparently redial with backoff. Errors no longer
// abort a worker — each op's outcome is counted and classified
// (retryable transport failures vs terminal refusals vs misses) and the
// run reports an availability line; -max-error-rate sets the tolerated
// percentage (default 0: any error still fails the run, as before).
// -verify re-reads the whole keyspace afterwards and fails on any
// missing key — the zero-lost-acked-writes check the failover smoke
// leans on.
//
// -churn N performs N online membership changes during the measured run,
// alternating AddShard/RemoveShard of the -spares addresses on a shared
// topology every worker observes live: the availability and -verify
// gates then hold the cluster to its zero-downtime-resharding claim.
//
// With -resp host:port the loadgen instead drives a dlht-server's RESP2
// listener (see dlht-server -resp) through the internal RESP client:
// pipelined SET then GET phases, redis-benchmark-shaped, reported as
// stable `resp set:`/`resp get:` lines the smoke script parses.
//
// In single-server mode any transport error or unexpected response
// status counts as an error; the process exits non-zero if any occurred.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	dlht "repro"
	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:4040", "server address")
		addrs    = flag.String("addrs", "", "comma-separated shard addresses; enables sharded-cluster mode (overrides -addr/-embedded)")
		respAddr = flag.String("resp", "", "RESP2 mode: address of a dlht-server -resp listener; runs pipelined SET then GET phases through the internal RESP client (overrides other modes)")
		conns    = flag.Int("conns", 8, "concurrent connections")
		pipeline = flag.Int("pipeline", 16, "requests kept in flight per connection")
		totalOps = flag.Uint64("ops", 1_000_000, "total measured operations across all connections")
		keys     = flag.Uint64("keys", 100_000, "prepopulated keyspace size")
		readPct  = flag.Int("read-pct", 50, "percentage of GETs (rest are PUTs)")
		dist     = flag.String("dist", "uniform", "key distribution: uniform|zipf|hot")
		skipLoad = flag.Bool("skip-load", false, "skip the INSERT prepopulation phase")
		async    = flag.Bool("async", false, "drive the mixed phase through the async client API (GetAsync/PutAsync callbacks) instead of Send/Recv")
		embedded = flag.Bool("embedded", false, "start an in-process server on a loopback port (ignores -addr)")
		window   = flag.Int("window", 0, "embedded server's prefetch window (0 or <0 = default 16; the server streams, so the full-batch baseline does not apply)")
		bins     = flag.Uint64("bins", 1<<18, "embedded server's initial bin count")
		execName = flag.String("exec", "shared", "embedded server's execution model: shared|partitioned|conn")

		replicas    = flag.Int("replicas", 0, "cluster mode: copies per key (0/1 = no replication)")
		writeQuorum = flag.Int("write-quorum", 0, "cluster mode: acks required per write (0 = replicas)")
		maxErrRate  = flag.Float64("max-error-rate", 0, "cluster mode: tolerated error percentage before exiting non-zero (0 = strict)")
		verify      = flag.Bool("verify", false, "cluster mode: after the run, read back every loaded key and fail on any missing")
		churn       = flag.Int("churn", 0, "cluster mode: online membership changes during the measured run, alternating AddShard/RemoveShard of the -spares addresses (workers observe every ring flip live)")
		spares      = flag.String("spares", "", "cluster mode: comma-separated spare shard addresses -churn cycles in and out of the ring")
	)
	flag.Parse()
	if *conns < 1 || *pipeline < 1 || *readPct < 0 || *readPct > 100 {
		log.Fatal("bad flags: need conns>=1, pipeline>=1, 0<=read-pct<=100")
	}
	if *pipeline > 4096 {
		// Deeper pipelines can deadlock on kernel socket buffers: the
		// server blocks writing responses nobody is reading yet.
		log.Fatal("bad flags: pipeline must be <= 4096")
	}

	if *respAddr != "" {
		runRESP(respConfig{
			addr:     *respAddr,
			conns:    *conns,
			pipeline: *pipeline,
			totalOps: *totalOps,
			keys:     *keys,
		})
		return
	}

	if *addrs != "" {
		runCluster(clusterConfig{
			shards:      strings.Split(*addrs, ","),
			conns:       *conns,
			pipeline:    *pipeline,
			totalOps:    *totalOps,
			keys:        *keys,
			readPct:     *readPct,
			dist:        *dist,
			async:       *async,
			skipLoad:    *skipLoad,
			replicas:    *replicas,
			writeQuorum: *writeQuorum,
			maxErrRate:  *maxErrRate,
			verify:      *verify,
			churn:       *churn,
			spares:      splitNonEmpty(*spares),
		})
		return
	}

	if *embedded {
		execMode, ok := server.ParseExecMode(*execName)
		if !ok {
			log.Fatalf("unknown -exec %q (want shared|partitioned|conn)", *execName)
		}
		tbl, err := dlht.New(dlht.Config{Bins: *bins, Resizable: true, MaxThreads: 4096, PrefetchWindow: *window})
		if err != nil {
			log.Fatal(err)
		}
		srv := server.New(tbl, server.Options{Exec: execMode})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		*addr = ln.Addr().String()
		fmt.Printf("embedded server on %s (bins=%d window=%d exec=%s)\n", *addr, *bins, *window, execMode)
	}

	if !*skipLoad {
		m, errs := load(*addr, *conns, *pipeline, *keys)
		if errs > 0 {
			log.Fatalf("load phase: %d errors", errs)
		}
		fmt.Printf("loaded %d keys in %v (%.2f M inserts/s)\n",
			m.Ops, m.Elapsed.Round(time.Millisecond), m.MReqs())
	}

	api := "send/recv"
	if *async {
		api = "async"
	}
	fmt.Printf("run: %d ops over %d conns × pipeline %d (%d%% GET / %d%% PUT, %s keys, %s API)\n",
		*totalOps, *conns, *pipeline, *readPct, 100-*readPct, *dist, api)
	m, lat, errs := run(*addr, *conns, *pipeline, *totalOps, *keys, *readPct, *dist, *async)
	fmt.Printf("throughput: %.2f M reqs/s (%d ops in %v)\n",
		m.MReqs(), m.Ops, m.Elapsed.Round(time.Millisecond))
	fmt.Println(lat)
	fmt.Printf("errors: %d\n", errs)
	if errs > 0 {
		os.Exit(1)
	}
}

// load prepopulates [0, keys) with INSERTs, striped across connections.
func load(addr string, conns, pipeline int, keys uint64) (bench.Measurement, uint64) {
	var errs atomic.Uint64
	var wg sync.WaitGroup
	begin := time.Now()
	per := (keys + uint64(conns) - 1) / uint64(conns)
	for c := 0; c < conns; c++ {
		lo := uint64(c) * per
		hi := lo + per
		if hi > keys {
			hi = keys
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				errs.Add(1)
				return
			}
			defer cl.Close()
			sent, recvd := lo, lo
			for recvd < hi {
				for sent < hi && sent-recvd < uint64(pipeline) {
					if err := cl.Send(server.Request{Op: server.OpInsert, Key: sent, Value: sent ^ 0xdead}); err != nil {
						errs.Add(1)
						return
					}
					sent++
				}
				if err := cl.Flush(); err != nil {
					errs.Add(1)
					return
				}
				r, err := cl.Recv()
				if err != nil {
					errs.Add(1)
					return
				}
				if r.Status != server.StatusOK && r.Status != server.StatusExists {
					errs.Add(1)
				}
				recvd++
			}
		}(lo, hi)
	}
	wg.Wait()
	return bench.Measurement{Ops: keys, Elapsed: time.Since(begin)}, errs.Load()
}

// keyStream abstracts the three supported distributions.
type keyStream interface{ Key() uint64 }

func newStream(dist string, seed, keys uint64) keyStream {
	switch dist {
	case "uniform":
		return workload.NewUniform(seed, keys)
	case "zipf":
		return workload.NewZipf(seed, keys, 0.99)
	case "hot":
		// §5.2.4 hot set: 90% of accesses over 1000 hot keys.
		return workload.NewSkewed(seed, keys, 1000, 90)
	}
	log.Fatalf("unknown -dist %q (want uniform|zipf|hot)", dist)
	return nil
}

// run executes the measured mixed phase and aggregates throughput, latency
// and error counts across connections. With async=true each connection
// drives the callback API (GetAsync/PutAsync + RecvOneAsync) instead of
// explicit Send/Recv pairs — the client-side mirror of the server's
// completion-driven pipeline; both keep -pipeline requests in flight.
func run(addr string, conns, pipeline int, totalOps, keys uint64, readPct int, dist string, async bool) (bench.Measurement, bench.LatencySummary, uint64) {
	var total, errs atomic.Uint64
	agg := bench.NewSampler(1 << 20)
	var aggMu sync.Mutex
	var wg sync.WaitGroup
	per := totalOps / uint64(conns)
	begin := time.Now()
	for c := 0; c < conns; c++ {
		quota := per
		if c == 0 {
			quota += totalOps % uint64(conns) // remainder rides on conn 0
		}
		wg.Add(1)
		go func(c int, quota uint64) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				errs.Add(quota)
				return
			}
			defer cl.Close()
			stream := newStream(dist, uint64(c)*2654435761+7, keys)
			rng := workload.NewRNG(uint64(c)*7919 + 3)
			sampler := bench.NewSampler(1 << 17)
			times := make([]time.Time, pipeline)
			var sent, recvd uint64
			if async {
				// One callback closure serves every request: responses
				// arrive in request order, so recvd indexes the send-time
				// ring exactly as the Send/Recv loop below does.
				ok := true
				cb := func(r server.Response) {
					sampler.Add(time.Since(times[recvd%uint64(pipeline)]).Nanoseconds())
					if r.Status != server.StatusOK {
						errs.Add(1)
					}
					recvd++
				}
				for recvd < quota {
					topped := false
					for sent < quota && sent-recvd < uint64(pipeline) {
						k := stream.Key()
						var err error
						if int(rng.Uint64n(100)) >= readPct {
							err = cl.PutAsync(k, rng.Next(), cb)
						} else {
							err = cl.GetAsync(k, cb)
						}
						if err != nil {
							errs.Add(quota - recvd)
							ok = false
							break
						}
						times[sent%uint64(pipeline)] = time.Now()
						sent++
						topped = true
					}
					if !ok {
						break
					}
					if topped {
						if err := cl.Flush(); err != nil {
							errs.Add(quota - recvd)
							break
						}
					}
					if err := cl.RecvOneAsync(); err != nil {
						errs.Add(quota - recvd)
						break
					}
				}
				total.Add(recvd)
				aggMu.Lock()
				agg.Merge(sampler)
				aggMu.Unlock()
				return
			}
			for recvd < quota {
				topped := false
				for sent < quota && sent-recvd < uint64(pipeline) {
					k := stream.Key()
					req := server.Request{Op: server.OpGet, Key: k}
					if int(rng.Uint64n(100)) >= readPct {
						req = server.Request{Op: server.OpPut, Key: k, Value: rng.Next()}
					}
					if err := cl.Send(req); err != nil {
						errs.Add(quota - recvd)
						return
					}
					times[sent%uint64(pipeline)] = time.Now()
					sent++
					topped = true
				}
				if topped {
					if err := cl.Flush(); err != nil {
						errs.Add(quota - recvd)
						return
					}
				}
				r, err := cl.Recv()
				if err != nil {
					errs.Add(quota - recvd)
					return
				}
				sampler.Add(time.Since(times[recvd%uint64(pipeline)]).Nanoseconds())
				// Every key is prepopulated and never deleted, so both GET
				// and PUT must answer StatusOK.
				if r.Status != server.StatusOK {
					errs.Add(1)
				}
				recvd++
			}
			total.Add(recvd)
			aggMu.Lock()
			agg.Merge(sampler)
			aggMu.Unlock()
		}(c, quota)
	}
	wg.Wait()
	m := bench.Measurement{Ops: total.Load(), Elapsed: time.Since(begin)}
	return m, agg.Summary(), errs.Load()
}

// clusterConfig bundles the -addrs mode's knobs.
type clusterConfig struct {
	shards                []string
	conns, pipeline       int
	totalOps, keys        uint64
	readPct               int
	dist                  string
	async, skipLoad       bool
	replicas, writeQuorum int
	maxErrRate            float64
	verify                bool
	churn                 int
	spares                []string
}

// splitNonEmpty is strings.Split that maps "" to nil.
func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func (cfg clusterConfig) clusterOpts() dlht.ClusterOpts {
	return dlht.ClusterOpts{Replicas: cfg.replicas, WriteQuorum: cfg.writeQuorum}
}

// errCounts classifies per-op failures. Retryable errors are transport
// blips the retry/failover machinery could not absorb in time, terminal
// errors are semantic refusals (protocol or table level), and misses are
// absent keys — under replication with W < R a read racing a failover
// can legitimately miss until the lagging replica converges.
type errCounts struct {
	retryable, terminal, miss atomic.Uint64
}

// note classifies one op outcome and reports whether it was an error.
// ErrExists is success: a retried Insert finding its key (at-least-once
// delivery after an indeterminate failure) means the data is there.
func (e *errCounts) note(err error, ok bool) bool {
	switch {
	case err == nil && ok:
		return false
	case errors.Is(err, dlht.ErrExists):
		return false
	case err == nil:
		e.miss.Add(1)
	case server.IsRetryable(err):
		e.retryable.Add(1)
	default:
		e.terminal.Add(1)
	}
	return true
}

func (e *errCounts) total() uint64 {
	return e.retryable.Load() + e.terminal.Load() + e.miss.Load()
}

// runCluster is the -addrs mode: the measured phases drive a
// consistent-hashed (optionally replicated) Cluster per worker through
// the Store surface, so the identical workload logic scales from one
// shard to N by changing the address list. Transient errors are counted,
// not fatal: the run reports error-rate and availability lines and exits
// non-zero only when the error rate exceeds -max-error-rate (or, with
// -verify, when a loaded key went missing).
func runCluster(cfg clusterConfig) {
	// With -churn the workers must share one membership view — ring flips
	// published by the churn goroutine reach every worker's next op — so
	// the run uses a shared Topology with one lazy instance per worker.
	var topo *dlht.Topology
	if cfg.churn > 0 {
		if len(cfg.spares) == 0 {
			log.Fatal("-churn needs -spares addresses to cycle in and out")
		}
		var err error
		topo, err = dlht.DialTopology(cfg.shards, cfg.clusterOpts())
		if err != nil {
			log.Fatalf("dial topology: %v", err)
		}
		defer topo.Close()
	}
	if !cfg.skipLoad {
		m, errs := clusterLoad(cfg)
		if n := errs.total(); n > 0 {
			// The load phase seeds the verify oracle; it stays strict.
			log.Fatalf("load phase: %d errors (retryable %d, terminal %d, missing %d)",
				n, errs.retryable.Load(), errs.terminal.Load(), errs.miss.Load())
		}
		fmt.Printf("loaded %d keys across %d shards in %v (%.2f M inserts/s)\n",
			m.Ops, len(cfg.shards), m.Elapsed.Round(time.Millisecond), m.MReqs())
	}
	api := "sync store"
	if cfg.async {
		api = "async pipe"
	}
	rep := ""
	if cfg.replicas > 1 {
		rep = fmt.Sprintf(", R=%d W=%d", cfg.replicas, cfg.writeQuorum)
	}
	fmt.Printf("run: %d ops over %d conns × %d shards (%d%% GET / %d%% PUT, %s keys, %s API, window %d%s)\n",
		cfg.totalOps, cfg.conns, len(cfg.shards), cfg.readPct, 100-cfg.readPct, cfg.dist, api, cfg.pipeline, rep)
	m, lat, errs, churnErr := clusterRun(cfg, topo)
	fmt.Printf("throughput: %.2f M reqs/s (%d ops in %v)\n",
		m.MReqs(), m.Ops, m.Elapsed.Round(time.Millisecond))
	fmt.Println(lat)
	nerr := errs.total()
	rate := 0.0
	if cfg.totalOps > 0 {
		rate = float64(nerr) / float64(cfg.totalOps) * 100
	}
	fmt.Printf("errors: %d (retryable %d, terminal %d, missing %d)\n",
		nerr, errs.retryable.Load(), errs.terminal.Load(), errs.miss.Load())
	fmt.Printf("availability: %.4f%% (%d/%d ops acked)\n", 100-rate, cfg.totalOps-nerr, cfg.totalOps)

	failed := rate > cfg.maxErrRate || (nerr > 0 && cfg.maxErrRate == 0)
	if topo != nil {
		fmt.Printf("reshard: moved %d keys (epoch %d)\n", topo.MovedKeys(), topo.Epoch())
		if churnErr != nil {
			fmt.Printf("reshard: FAILED: %v\n", churnErr)
			failed = true
		}
	}
	if cfg.verify {
		missing := clusterVerify(cfg, topo)
		fmt.Printf("verify: %d/%d loaded keys present, %d missing\n", cfg.keys-missing, cfg.keys, missing)
		if missing > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// clusterVerify reads back every loaded key through one (replicated,
// retrying) cluster connection and returns how many are missing — acked
// inserts that survived neither any replica nor its WAL. Under churn the
// check rides the shared topology: the final ring may include spares.
func clusterVerify(cfg clusterConfig, topo *dlht.Topology) uint64 {
	var clu *dlht.Cluster
	var err error
	if topo != nil {
		clu, err = topo.NewClient()
	} else {
		clu, err = dlht.DialCluster(cfg.shards, cfg.clusterOpts())
	}
	if err != nil {
		log.Fatalf("verify: dial: %v", err)
	}
	defer clu.Close()
	var missing uint64
	for k := uint64(0); k < cfg.keys; k++ {
		if _, ok, err := clu.Get(k); err != nil || !ok {
			missing++
		}
	}
	return missing
}

// churnLoop performs up to n membership changes, cycling each spare into
// and back out of the ring, until the run finishes. Returns how many
// changes completed and the first failure (a failed change also aborts
// the loop — later changes would compound whatever broke).
func churnLoop(topo *dlht.Topology, spares []string, n int, done <-chan struct{}) (int, error) {
	in := false
	si := 0
	for i := 0; i < n; i++ {
		select {
		case <-done:
			return i, nil
		default:
		}
		sp := spares[si%len(spares)]
		var err error
		if in {
			err = topo.RemoveShard(sp)
			si++
		} else {
			err = topo.AddShard(sp)
		}
		if err != nil {
			return i, err
		}
		in = !in
	}
	// Leave the ring as found: a trailing AddShard is cycled back out so
	// post-run tooling sees the original membership.
	if in {
		if err := topo.RemoveShard(spares[si%len(spares)]); err != nil {
			return n, err
		}
	}
	return n, nil
}

// clusterLoad prepopulates [0, keys) through per-worker cluster pipes,
// striped across workers; routing sends each insert to its replica set.
// Insert completions are the acks the -verify pass holds the cluster to.
func clusterLoad(cfg clusterConfig) (bench.Measurement, *errCounts) {
	errs := &errCounts{}
	var wg sync.WaitGroup
	begin := time.Now()
	conns := cfg.conns
	per := (cfg.keys + uint64(conns) - 1) / uint64(conns)
	for c := 0; c < conns; c++ {
		lo := uint64(c) * per
		hi := lo + per
		if hi > cfg.keys {
			hi = cfg.keys
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			clu, err := dlht.DialCluster(cfg.shards, cfg.clusterOpts())
			if err != nil {
				errs.note(err, false)
				return
			}
			defer clu.Close()
			p, err := clu.Pipe(dlht.PipeOpts{Window: cfg.pipeline, OnComplete: func(cp dlht.Completion) {
				errs.note(cp.Err, cp.OK)
			}})
			if err != nil {
				errs.note(err, false)
				return
			}
			for k := lo; k < hi; k++ {
				if err := p.Insert(k, k^0xdead); err != nil {
					errs.note(err, false)
					return
				}
			}
			if err := p.Close(); err != nil {
				errs.note(err, false)
			}
		}(lo, hi)
	}
	wg.Wait()
	return bench.Measurement{Ops: cfg.keys, Elapsed: time.Since(begin)}, errs
}

// clusterRun executes the measured mixed phase against per-worker
// Clusters. The sync path measures one Store round trip per op; the async
// path keeps a window of requests in flight per shard and tracks per-op
// latency through per-shard FIFO timestamp rings — sound because cluster
// completions arrive in per-primary enqueue order (the Pipe contract,
// replicated or not). Errors never abort a worker: each op counts once,
// classified, so a mid-run shard kill shows up as an availability dip
// (and failover latency in the tail percentiles) instead of a dead run.
//
// With a shared topo (the -churn path) every worker is an instance of the
// same Topology, a churn goroutine reshapes the ring mid-run, and async
// latency tracking switches to per-KEY timestamp FIFOs: per-shard rings
// assume a fixed key→shard mapping, per-key program order is the
// invariant that survives a ring flip.
func clusterRun(cfg clusterConfig, topo *dlht.Topology) (bench.Measurement, bench.LatencySummary, *errCounts, error) {
	var total atomic.Uint64
	errs := &errCounts{}
	agg := bench.NewSampler(1 << 20)
	var aggMu sync.Mutex
	var wg sync.WaitGroup
	conns := cfg.conns
	per := cfg.totalOps / uint64(conns)
	begin := time.Now()

	var churnErr error
	churnN := 0
	churnDone := make(chan struct{})
	runDone := make(chan struct{})
	if topo != nil && cfg.churn > 0 {
		go func() {
			defer close(churnDone)
			churnN, churnErr = churnLoop(topo, cfg.spares, cfg.churn, runDone)
		}()
	} else {
		close(churnDone)
	}

	for c := 0; c < conns; c++ {
		quota := per
		if c == 0 {
			quota += cfg.totalOps % uint64(conns) // remainder rides on conn 0
		}
		wg.Add(1)
		go func(c int, quota uint64) {
			defer wg.Done()
			var clu *dlht.Cluster
			var err error
			if topo != nil {
				clu, err = topo.NewClient()
			} else {
				clu, err = dlht.DialCluster(cfg.shards, cfg.clusterOpts())
			}
			if err != nil {
				for i := uint64(0); i < quota; i++ {
					errs.note(err, false)
				}
				return
			}
			defer clu.Close()
			stream := newStream(cfg.dist, uint64(c)*2654435761+7, cfg.keys)
			rng := workload.NewRNG(uint64(c)*7919 + 3)
			sampler := bench.NewSampler(1 << 17)

			if !cfg.async {
				for done := uint64(0); done < quota; done++ {
					k := stream.Key()
					t0 := time.Now()
					var ok bool
					var err error
					if int(rng.Uint64n(100)) >= cfg.readPct {
						_, ok, err = clu.Put(k, rng.Next())
					} else {
						_, ok, err = clu.Get(k)
					}
					sampler.Add(time.Since(t0).Nanoseconds())
					// Every key is prepopulated and never deleted; a miss
					// is a replica that has not converged yet.
					errs.note(err, ok)
				}
				total.Add(quota)
				aggMu.Lock()
				agg.Merge(sampler)
				aggMu.Unlock()
				return
			}

			// Async: FIFO queues of send timestamps, matched to completions
			// by FIFO order. With a fixed ring the queue is per shard (the
			// pipe holds at most window+1 requests in flight per shard, so a
			// small ring suffices); under churn the key→shard mapping moves
			// mid-run, so the queue is per KEY — per-key completion order is
			// the guarantee that survives a ring flip.
			var stamp func(k uint64) // record send time for k
			var unstamp func(k uint64)
			var took func(k uint64) time.Time
			if topo != nil {
				perKey := make(map[uint64][]time.Time)
				stamp = func(k uint64) { perKey[k] = append(perKey[k], time.Now()) }
				unstamp = func(k uint64) { perKey[k] = perKey[k][:len(perKey[k])-1] }
				took = func(k uint64) time.Time {
					q := perKey[k]
					t0 := q[0]
					if len(q) == 1 {
						delete(perKey, k)
					} else {
						perKey[k] = q[1:]
					}
					return t0
				}
			} else {
				nsh := clu.NumShards()
				ring := make([][]time.Time, nsh)
				head := make([]int, nsh)
				tail := make([]int, nsh)
				cap := cfg.pipeline + 2
				for i := range ring {
					ring[i] = make([]time.Time, cap)
				}
				stamp = func(k uint64) {
					sh := clu.ShardFor(k)
					ring[sh][tail[sh]%cap] = time.Now()
					tail[sh]++
				}
				unstamp = func(k uint64) { tail[clu.ShardFor(k)]-- }
				took = func(k uint64) time.Time {
					sh := clu.ShardFor(k)
					t0 := ring[sh][head[sh]%cap]
					head[sh]++
					return t0
				}
			}
			var recvd uint64
			p, err := clu.Pipe(dlht.PipeOpts{Window: cfg.pipeline, OnComplete: func(cp dlht.Completion) {
				sampler.Add(time.Since(took(cp.Key)).Nanoseconds())
				errs.note(cp.Err, cp.OK)
				recvd++
			}})
			if err != nil {
				for i := uint64(0); i < quota; i++ {
					errs.note(err, false)
				}
				return
			}
			for sent := uint64(0); sent < quota; sent++ {
				k := stream.Key()
				stamp(k)
				if int(rng.Uint64n(100)) >= cfg.readPct {
					err = p.Put(k, rng.Next())
				} else {
					err = p.Get(k)
				}
				if err != nil {
					// The frame was never accepted: no completion will
					// come. Count the op once and keep going — the pipe
					// heals on redial.
					unstamp(k)
					errs.note(err, false)
				}
			}
			if err := p.Close(); err != nil {
				errs.note(err, false)
			}
			total.Add(recvd)
			aggMu.Lock()
			agg.Merge(sampler)
			aggMu.Unlock()
		}(c, quota)
	}
	wg.Wait()
	close(runDone)
	<-churnDone
	if churnN > 0 {
		fmt.Printf("churn: %d membership changes completed during run\n", churnN)
	}
	m := bench.Measurement{Ops: total.Load(), Elapsed: time.Since(begin)}
	return m, agg.Summary(), errs, churnErr
}
