// Quickstart: the core DLHT API — Insert/Get/Put/Delete, the streaming
// Pipeline, the batch-slice compat path, the iterator and table
// statistics.
package main

import (
	"fmt"
	"log"

	dlht "repro"
)

func main() {
	// A resizable table with paper-default geometry.
	table, err := dlht.New(dlht.Config{
		Bins:      1 << 16,
		Resizable: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every goroutine gets its own Handle.
	h := table.MustHandle()

	// Inserts reject duplicates and return the existing value.
	if _, err := h.Insert(42, 1000); err != nil {
		log.Fatal(err)
	}
	if _, err := h.Insert(42, 2000); err != nil {
		fmt.Println("duplicate insert rejected:", err)
	}

	// Gets are lock-free and usually one memory access.
	if v, ok := h.Get(42); ok {
		fmt.Println("Get(42) =", v)
	}

	// Puts overwrite with a double-word CAS; the old value comes back.
	old, _ := h.Put(42, 4242)
	fmt.Println("Put(42) replaced", old)

	// Deletes reclaim the slot instantly.
	if v, ok := h.Delete(42); ok {
		fmt.Println("Delete(42) returned", v)
	}

	// Streaming pipeline (§3.3): requests are issued one at a time, each
	// prefetching its bin immediately; completions fire in order, one
	// prefetch window behind the newest enqueue. A long-lived pipeline
	// keeps the window primed across bursts — no batch slices to assemble.
	pipe := h.Pipeline(dlht.PipelineOpts{OnComplete: func(op *dlht.Op) {
		if op.Kind == dlht.OpGet && op.OK {
			fmt.Printf("pipeline: Get(%d)=%d\n", op.Key, op.Result)
		}
	}})
	pipe.Insert(1, 10)
	pipe.Insert(2, 20)
	pipe.Get(1)
	pipe.Put(2, 21)
	pipe.Delete(1)
	pipe.Flush() // complete the in-flight tail

	// Exec is the batch-at-once compat path over the same engine: hand it a
	// slice, read results back out of the mutated elements.
	ops := []dlht.Op{
		{Kind: dlht.OpGet, Key: 2},
	}
	h.Exec(ops, false)
	fmt.Printf("batch: Get(2)=%d\n", ops[0].Result)

	// Weakly consistent iteration.
	h.Range(func(k, v uint64) bool {
		fmt.Printf("entry %d -> %d\n", k, v)
		return true
	})

	// Grow the table across a few resizes and inspect the counters.
	for k := uint64(100); k < 300000; k++ {
		if _, err := h.Insert(k, k); err != nil {
			log.Fatalf("insert %d: %v", k, err)
		}
	}
	st := table.Stats()
	fmt.Printf("stats: bins=%d occupancy=%.1f%% resizes=%d keysMoved=%d\n",
		st.Bins, st.Occupancy*100, st.Resizes, st.KeysMoved)
}
