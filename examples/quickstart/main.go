// Quickstart: the core DLHT API — Insert/Get/Put/Delete on a Handle, the
// streaming Pipeline — and the backend-independent Store surface: the
// same demo function runs unmodified against an in-process table, a
// dlht-server over TCP (protocol v2), and a 3-shard consistent-hashed
// cluster.
package main

import (
	"fmt"
	"log"
	"net"

	dlht "repro"
	"repro/internal/server"
)

// demo drives any Store: sync ops first, then a pipelined burst whose
// completions arrive in enqueue order. This function does not know — and
// cannot tell, except by latency — whether the table is local, behind one
// socket, or sharded across three servers.
func demo(name string, s dlht.Store) {
	if _, inserted, err := s.Insert(42, 1000); err != nil || !inserted {
		log.Fatalf("%s: insert: inserted=%v err=%v", name, inserted, err)
	}
	if existing, inserted, _ := s.Insert(42, 2000); !inserted {
		fmt.Printf("%s: duplicate insert rejected, existing value %d\n", name, existing)
	}
	if v, ok, _ := s.Get(42); ok {
		fmt.Printf("%s: Get(42) = %d\n", name, v)
	}
	old, _, _ := s.Put(42, 4242)
	fmt.Printf("%s: Put(42) replaced %d\n", name, old)
	if v, ok, _ := s.Delete(42); ok {
		fmt.Printf("%s: Delete(42) returned %d\n", name, v)
	}

	// The pipelined surface: enqueue a burst, completions fire in order
	// (per shard — and therefore per key — on a cluster).
	hits := 0
	p, err := s.Pipe(dlht.PipeOpts{OnComplete: func(c dlht.Completion) {
		if c.Kind == dlht.OpGet && c.OK {
			hits++
		}
	}})
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(0); k < 1000; k++ {
		p.Insert(k, k*3)
	}
	for k := uint64(0); k < 1000; k++ {
		p.Get(k)
	}
	if err := p.Close(); err != nil {
		log.Fatalf("%s: pipe: %v", name, err)
	}
	fmt.Printf("%s: pipelined 2000 ops, %d get hits\n", name, hits)
}

// serve starts an in-process dlht-server over a fresh table on a loopback
// port and returns its address.
func serve() string {
	s := server.New(dlht.MustNew(dlht.Config{Bins: 1 << 12, Resizable: true}), server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go s.Serve(ln)
	return ln.Addr().String()
}

func main() {
	// The Handle API: per-goroutine access to an in-process table.
	table := dlht.MustNew(dlht.Config{Bins: 1 << 16, Resizable: true})
	h := table.MustHandle()
	if _, err := h.Insert(1, 10); err != nil {
		log.Fatal(err)
	}
	if v, ok := h.Get(1); ok {
		fmt.Println("handle: Get(1) =", v)
	}
	h.Delete(1)

	// The streaming Pipeline under the Store surface, on the raw Handle
	// (§3.3): completions fire one prefetch window behind the newest
	// enqueue.
	pipe := h.Pipeline(dlht.PipelineOpts{OnComplete: func(op *dlht.Op) {
		if op.Kind == dlht.OpGet && op.OK {
			fmt.Printf("handle pipeline: Get(%d)=%d\n", op.Key, op.Result)
		}
	}})
	pipe.Insert(2, 20)
	pipe.Get(2)
	pipe.Flush()

	// One API, three backends.
	local, err := table.Store()
	if err != nil {
		log.Fatal(err)
	}
	demo("local", local)
	local.Close()

	remote, err := dlht.Dial(serve())
	if err != nil {
		log.Fatal(err)
	}
	demo("remote", remote)
	remote.Close()

	shards := []string{serve(), serve(), serve()}
	clu, err := dlht.DialCluster(shards, dlht.ClusterOpts{})
	if err != nil {
		log.Fatal(err)
	}
	demo("cluster", clu)
	for i := 0; i < clu.NumShards(); i++ {
		fmt.Printf("cluster: shard %d is %s\n", i, clu.Names()[i])
	}
	clu.Close()

	st := table.Stats()
	fmt.Printf("local table stats: bins=%d occupancy=%.1f%%\n", st.Bins, st.Occupancy*100)
}
