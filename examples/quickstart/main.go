// Quickstart: the core DLHT API — Insert/Get/Put/Delete, batching, the
// iterator and table statistics.
package main

import (
	"fmt"
	"log"

	dlht "repro"
)

func main() {
	// A resizable table with paper-default geometry.
	table, err := dlht.New(dlht.Config{
		Bins:      1 << 16,
		Resizable: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Every goroutine gets its own Handle.
	h := table.MustHandle()

	// Inserts reject duplicates and return the existing value.
	if _, err := h.Insert(42, 1000); err != nil {
		log.Fatal(err)
	}
	if _, err := h.Insert(42, 2000); err != nil {
		fmt.Println("duplicate insert rejected:", err)
	}

	// Gets are lock-free and usually one memory access.
	if v, ok := h.Get(42); ok {
		fmt.Println("Get(42) =", v)
	}

	// Puts overwrite with a double-word CAS; the old value comes back.
	old, _ := h.Put(42, 4242)
	fmt.Println("Put(42) replaced", old)

	// Deletes reclaim the slot instantly.
	if v, ok := h.Delete(42); ok {
		fmt.Println("Delete(42) returned", v)
	}

	// Batching (§3.3): one prefetch pass, then in-order execution.
	ops := []dlht.Op{
		{Kind: dlht.OpInsert, Key: 1, Value: 10},
		{Kind: dlht.OpInsert, Key: 2, Value: 20},
		{Kind: dlht.OpGet, Key: 1},
		{Kind: dlht.OpPut, Key: 2, Value: 21},
		{Kind: dlht.OpDelete, Key: 1},
	}
	h.Exec(ops, false)
	fmt.Printf("batch: Get(1)=%d, Put(2) replaced %d\n", ops[2].Result, ops[3].Result)

	// Weakly consistent iteration.
	h.Range(func(k, v uint64) bool {
		fmt.Printf("entry %d -> %d\n", k, v)
		return true
	})

	// Grow the table across a few resizes and inspect the counters.
	for k := uint64(100); k < 300000; k++ {
		if _, err := h.Insert(k, k); err != nil {
			log.Fatalf("insert %d: %v", k, err)
		}
	}
	st := table.Stats()
	fmt.Printf("stats: bins=%d occupancy=%.1f%% resizes=%d keysMoved=%d\n",
		st.Bins, st.Occupancy*100, st.Resizes, st.KeysMoved)
}
