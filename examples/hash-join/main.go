// Hash join: the paper's §5.3.6 OLAP application — a non-partitioned
// build+probe equi-join written directly against the public DLHT API.
// The build relation R is inserted in parallel; the probe relation S
// streams through one long-lived Pipeline per worker, whose software
// prefetching overlaps the memory latency of the probes continuously —
// there are no batch boundaries to assemble slices around, and the
// prefetch window never drains until the worker's chunk ends.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	dlht "repro"
)

const (
	buildN = 1 << 18 // |R|
	probeN = buildN * 16
)

func main() {
	threads := runtime.GOMAXPROCS(0)
	build, probe := generate()

	for _, pipelined := range []bool{true, false} {
		table := dlht.MustNew(dlht.Config{
			Bins:       buildN*2/3 + 64,
			Resizable:  true,
			MaxThreads: 2*threads + 1,
		})

		// Build phase: parallel inserts of R.
		start := time.Now()
		parallelChunks(threads, len(build), func(lo, hi int) {
			h := table.MustHandle()
			for _, t := range build[lo:hi] {
				h.Insert(t[0], t[1])
			}
		})
		buildTime := time.Since(start)

		// Probe phase.
		var matches atomic.Uint64
		start = time.Now()
		parallelChunks(threads, len(probe), func(lo, hi int) {
			h := table.MustHandle()
			found := uint64(0)
			if pipelined {
				pipe := h.Pipeline(dlht.PipelineOpts{OnComplete: func(op *dlht.Op) {
					if op.OK {
						found++
					}
				}})
				for _, k := range probe[lo:hi] {
					pipe.Get(k)
				}
				pipe.Flush()
			} else {
				for _, k := range probe[lo:hi] {
					if _, ok := h.Get(k); ok {
						found++
					}
				}
			}
			matches.Add(found)
		})
		probeTime := time.Since(start)

		total := float64(buildN+probeN) / (buildTime + probeTime).Seconds() / 1e6
		mode := "pipelined"
		if !pipelined {
			mode = "one-by-one"
		}
		fmt.Printf("%-10s: %6.1f M tuples/s (build %v, probe %v, %d matches)\n",
			mode, total, buildTime.Round(time.Millisecond),
			probeTime.Round(time.Millisecond), matches.Load())
		if matches.Load() != probeN {
			panic("join lost matches")
		}
	}
}

// generate builds R (unique shuffled keys with payloads) and S (uniform
// draws over R's key domain, so every probe matches — workload A of the
// paper's §5.3.6).
func generate() (build [][2]uint64, probe []uint64) {
	build = make([][2]uint64, buildN)
	for i := range build {
		build[i] = [2]uint64{uint64(i), uint64(i) * 3}
	}
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := buildN - 1; i > 0; i-- {
		j := next() % uint64(i+1)
		build[i], build[j] = build[j], build[i]
	}
	probe = make([]uint64, probeN)
	for i := range probe {
		probe[i] = next() % buildN
	}
	return build, probe
}

// parallelChunks splits [0,n) across workers.
func parallelChunks(workers, n int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
