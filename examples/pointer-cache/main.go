// Pointer cache: the paper's first Inlined-mode client example (§3.1) — a
// query-processing engine caching 8-byte "pointers" (here: record offsets)
// under 8-byte plan keys, with many worker goroutines hitting the cache and
// using the coroutine-style PrefetchKey to hide miss latency.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	dlht "repro"
)

// fakePlanHash stands in for a query-plan fingerprint.
func fakePlanHash(worker, i int) uint64 {
	x := uint64(worker)<<32 | uint64(i%4096)
	x *= 0x9e3779b97f4a7c15
	return x
}

func main() {
	cache := dlht.MustNew(dlht.Config{
		Bins:       1 << 14,
		Resizable:  true,
		MaxThreads: 64,
	})

	var hits, misses atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := cache.MustHandle()
			for i := 0; i < 50000; i++ {
				key := fakePlanHash(w, i)
				// Coroutine-style prefetch (§3.3): issue the prefetch, do
				// some other work, then perform the lookup.
				h.PrefetchKey(key)
				simulatePlanning()
				if _, ok := h.Get(key); ok {
					hits.Add(1)
					continue
				}
				misses.Add(1)
				// Compute the "pointer" (record offset) and cache it. A
				// racing worker may beat us; either value is valid.
				offset := key ^ 0xabcdef
				h.Insert(key, offset)
			}
		}(w)
	}
	wg.Wait()

	total := hits.Load() + misses.Load()
	fmt.Printf("pointer cache: %d lookups, %.1f%% hit rate, %d cached plans\n",
		total, float64(hits.Load())/float64(total)*100, cache.MustHandle().Len())
}

//go:noinline
func simulatePlanning() {
	// A handful of cycles of "useful work" overlapping the prefetch.
	s := 0
	for i := 0; i < 16; i++ {
		s += i
	}
	_ = s
}
