// KV store: Allocator mode as a storage-engine primary index (§3.1 mode 2)
// — variable-size keys and values in one table (§3.4.1), namespaces
// standing in for database tables (§3.4.2), the pointer API for in-place
// updates, and the opt-in epoch GC reclaiming deleted values (§3.2.3).
package main

import (
	"fmt"
	"log"

	dlht "repro"
)

const (
	nsUsers  = 1
	nsOrders = 2
)

func main() {
	store := dlht.MustNew(dlht.Config{
		Mode:       dlht.Allocator,
		Bins:       1 << 12,
		Resizable:  true,
		VariableKV: true,
		Namespaces: true,
		EpochGC:    true,
		MaxThreads: 8,
	})
	h := store.MustHandle()

	// Same key bytes in two namespaces — no conflict (§3.4.2).
	if err := h.InsertKV(nsUsers, []byte("id-1001"), []byte(`{"name":"ada"}`)); err != nil {
		log.Fatal(err)
	}
	if err := h.InsertKV(nsOrders, []byte("id-1001"), []byte(`{"total":9900}`)); err != nil {
		log.Fatal(err)
	}

	// Mixed sizes in the same index: a 2-byte key with a 5-byte value next
	// to a 128-byte key with a 1 KiB value — the paper's own example.
	bigKey := make([]byte, 128)
	copy(bigKey, "session-blob:")
	bigVal := make([]byte, 1024)
	if err := h.InsertKV(nsUsers, []byte("ab"), []byte("hello")); err != nil {
		log.Fatal(err)
	}
	if err := h.InsertKV(nsUsers, bigKey, bigVal); err != nil {
		log.Fatal(err)
	}

	user, _ := h.GetKV(nsUsers, []byte("id-1001"))
	order, _ := h.GetKV(nsOrders, []byte("id-1001"))
	fmt.Printf("users/id-1001  = %s\n", user)
	fmt.Printf("orders/id-1001 = %s\n", order)

	// The pointer API: mutate the value in place, no Put, no copy (§3.2.1).
	h.UpdateKV(nsOrders, []byte("id-1001"), func(v []byte) {
		copy(v, `{"total":0000}`)
	})
	order, _ = h.GetKV(nsOrders, []byte("id-1001"))
	fmt.Printf("orders/id-1001 = %s (updated in place)\n", order)

	// Delete reclaims the slot instantly; the value block is retired into
	// the epoch GC and freed once the epoch advances.
	h.DeleteKV(nsUsers, []byte("ab"))
	freed := 0
	for i := 0; i < 4; i++ {
		freed += h.AdvanceEpoch()
	}
	st := store.Stats()
	fmt.Printf("epoch GC freed %d block(s); allocator: %d allocs, %d frees, %d B live\n",
		freed, st.AllocatorStats.Allocs, st.AllocatorStats.Frees, st.AllocatorStats.HeapUsed)
}
