// Lock manager: the paper's §5.3.3 client — a database lock manager built
// on DLHT's HashSet mode, using only the public API. Inserting a key locks
// a record; deleting it unlocks. Transactions acquire their lock sets
// through the order-preserving streaming Pipeline, which is what makes
// two-phase locking deadlock free: every transaction attempts its locks in
// sorted order, and the pipeline guarantees completions respect that order
// (DRAMHiT-style reordering batches could deadlock here). One long-lived
// pipeline per session keeps the prefetch window primed across
// transactions instead of restarting cold for every lock set.
package main

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	dlht "repro"
)

// lockTable wraps a HashSet-mode DLHT as a record-lock manager.
type lockTable struct{ t *dlht.Table }

func newLockTable(records uint64, workers int) *lockTable {
	return &lockTable{t: dlht.MustNew(dlht.Config{
		Mode:       dlht.HashSet,
		Bins:       records/2 + 64,
		MaxThreads: workers + 1,
	})}
}

// session is the per-worker view: one handle, one lifetime pipeline whose
// completions record which locks of the current transaction were won.
type session struct {
	h        *dlht.Handle
	pipe     *dlht.Pipeline
	acquired []uint64
	conflict bool
}

func (lt *lockTable) session() *session {
	s := &session{h: lt.t.MustHandle()}
	s.pipe = s.h.Pipeline(dlht.PipelineOpts{OnComplete: func(op *dlht.Op) {
		if op.Kind != dlht.OpInsert {
			return // unlock completions need no bookkeeping
		}
		if op.OK {
			s.acquired = append(s.acquired, op.Key)
		} else {
			s.conflict = true
		}
	}})
	return s
}

// lockAll streams every key's Insert in sorted order; on any conflict it
// rolls the acquired locks back and reports failure.
func (s *session) lockAll(keys []uint64) bool {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s.acquired, s.conflict = s.acquired[:0], false
	for _, k := range keys {
		s.pipe.Insert(k, 0)
	}
	s.pipe.Flush() // the transaction needs its verdict before writing
	if !s.conflict {
		return true
	}
	for _, k := range s.acquired {
		s.pipe.Delete(k)
	}
	s.pipe.Flush()
	return false
}

func (s *session) unlockAll(keys []uint64) {
	for _, k := range keys {
		s.pipe.Delete(k)
	}
	s.pipe.Flush()
}

func main() {
	const (
		records = 1 << 16
		workers = 8
		txPerW  = 20000
	)
	locks := newLockTable(records, workers)

	var committed, aborted atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := locks.session()
			rng := uint64(w)*2654435761 + 1
			keys := make([]uint64, 4)
			for i := 0; i < txPerW; i++ {
				// A transaction touching four random records.
				for j := range keys {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					keys[j] = rng % records
				}
				if !sess.lockAll(keys) {
					aborted.Add(1) // contention: a real system would retry
					continue
				}
				// ... apply the transaction's writes here ...
				sess.unlockAll(keys)
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()

	outstanding := locks.t.MustHandle().Len()
	fmt.Printf("lock manager: %d committed, %d aborted, %d locks outstanding\n",
		committed.Load(), aborted.Load(), outstanding)
	if outstanding != 0 {
		panic("locks leaked")
	}
}
