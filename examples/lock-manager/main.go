// Lock manager: the paper's §5.3.3 client — a database lock manager built
// on DLHT's HashSet mode, using only the public API. Inserting a key locks
// a record; deleting it unlocks. Transactions acquire their lock sets
// through the order-preserving batch API with stop-on-fail, which is what
// makes two-phase locking deadlock free: every transaction attempts its
// locks in sorted order, and the batch engine guarantees that order is
// respected (DRAMHiT-style reordering batches could deadlock here).
package main

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	dlht "repro"
)

// lockTable wraps a HashSet-mode DLHT as a record-lock manager.
type lockTable struct{ t *dlht.Table }

func newLockTable(records uint64, workers int) *lockTable {
	return &lockTable{t: dlht.MustNew(dlht.Config{
		Mode:       dlht.HashSet,
		Bins:       records/2 + 64,
		MaxThreads: workers + 1,
	})}
}

// session is the per-worker view.
type session struct {
	h   *dlht.Handle
	ops []dlht.Op
}

func (lt *lockTable) session() *session { return &session{h: lt.t.MustHandle()} }

// lockAll takes every key in sorted order through one batch; on conflict it
// rolls the acquired prefix back and reports failure.
func (s *session) lockAll(keys []uint64) bool {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	s.ops = s.ops[:0]
	for _, k := range keys {
		s.ops = append(s.ops, dlht.Op{Kind: dlht.OpInsert, Key: k})
	}
	done := s.h.Exec(s.ops, true)
	if done == len(s.ops) && s.ops[done-1].OK {
		return true
	}
	for i := 0; i < done-1; i++ {
		s.h.Delete(s.ops[i].Key)
	}
	return false
}

func (s *session) unlockAll(keys []uint64) {
	s.ops = s.ops[:0]
	for _, k := range keys {
		s.ops = append(s.ops, dlht.Op{Kind: dlht.OpDelete, Key: k})
	}
	s.h.Exec(s.ops, false)
}

func main() {
	const (
		records = 1 << 16
		workers = 8
		txPerW  = 20000
	)
	locks := newLockTable(records, workers)

	var committed, aborted atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := locks.session()
			rng := uint64(w)*2654435761 + 1
			keys := make([]uint64, 4)
			for i := 0; i < txPerW; i++ {
				// A transaction touching four random records.
				for j := range keys {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					keys[j] = rng % records
				}
				if !sess.lockAll(keys) {
					aborted.Add(1) // contention: a real system would retry
					continue
				}
				// ... apply the transaction's writes here ...
				sess.unlockAll(keys)
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()

	outstanding := locks.t.MustHandle().Len()
	fmt.Printf("lock manager: %d committed, %d aborted, %d locks outstanding\n",
		committed.Load(), aborted.Load(), outstanding)
	if outstanding != 0 {
		panic("locks leaked")
	}
}
