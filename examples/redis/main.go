// Redis drop-in: dlht-server's RESP2 front-end serves an Allocator-mode
// (kv) table to unmodified Redis clients. This example starts an
// in-process server with a RESP listener and drives it with the repo's
// internal RESP client — the exact byte protocol redis-cli speaks, so
// the same server works with the real tooling:
//
//	$ dlht-server -resp :6379 &
//	$ redis-cli SET greeting "hello from dlht"
//	OK
//	$ redis-cli GET greeting
//	"hello from dlht"
//	$ redis-cli SET session:42 token EX 1
//	OK
//	$ redis-cli TTL session:42
//	(integer) 1
//	$ sleep 2; redis-cli GET session:42
//	(nil)
//	$ redis-cli INCR hits
//	(integer) 1
//	$ redis-benchmark -t set,get -P 16 -q
//	SET: 412371.12 requests per second
//	GET: 608272.50 requests per second
//
// Pipelined GETs (redis-benchmark -P, redis-cli --pipe, client-side
// pipelining in any library) stream through the table's KVPipeline —
// the paper's batched lookup path — so deep pipelines approach the
// binary protocol's throughput.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	dlht "repro"
	"repro/internal/resp"
	"repro/internal/server"
)

func main() {
	// An Allocator-mode table: out-of-line variable-size keys and values,
	// namespaces (RESP SELECT maps onto them), epoch-based reclamation.
	tbl := dlht.MustNew(dlht.Config{
		Mode: dlht.Allocator, Bins: 1 << 12, Resizable: true,
		VariableKV: true, Namespaces: true, EpochGC: true,
	})
	srv := server.New(tbl, server.Options{})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.ServeRESP(ln)
	addr := ln.Addr().String()
	fmt.Printf("RESP listener on %s (point redis-cli at it)\n", addr)

	cl, err := resp.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	do := func(args ...string) resp.Reply {
		r, err := cl.Do(args...)
		if err != nil {
			log.Fatalf("%v: %v", args, err)
		}
		if r.IsErr() {
			log.Fatalf("%v: %s", args, r.Str)
		}
		return r
	}

	text := func(args ...string) string {
		r := do(args...)
		return r.Text()
	}

	// The redis-cli transcript above, over the wire.
	do("SET", "greeting", "hello from dlht")
	fmt.Printf("GET greeting        -> %q\n", text("GET", "greeting"))

	do("SET", "session:42", "token", "PX", "80")
	fmt.Printf("PTTL session:42     -> %sms\n", text("PTTL", "session:42"))
	time.Sleep(150 * time.Millisecond)
	if r := do("GET", "session:42"); r.Null {
		fmt.Println("GET session:42      -> (nil)   [expired]")
	}

	fmt.Printf("INCR hits           -> %s\n", text("INCR", "hits"))
	fmt.Printf("INCRBY hits 9       -> %s\n", text("INCRBY", "hits", "9"))

	// Pipelining: queue a burst without reading, then drain in order —
	// the GETs stream through the table's KVPipeline.
	const burst = 1000
	for i := 0; i < burst; i++ {
		cl.SendStr("SET", fmt.Sprintf("k%03d", i%100), "v")
		cl.SendStr("GET", fmt.Sprintf("k%03d", i%100))
	}
	if err := cl.Flush(); err != nil {
		log.Fatal(err)
	}
	for cl.Pending > 0 {
		if _, err := cl.Recv(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("pipelined burst     -> %d commands round-tripped in order\n", 2*burst)

	fmt.Printf("DBSIZE              -> %s\n", text("DBSIZE"))
}
