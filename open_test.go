package dlht_test

import (
	"errors"
	"io"
	"net"
	"testing"

	dlht "repro"
	core "repro/internal/core"
	"repro/internal/server"
)

// serveTable exposes a fresh table (and a named Allocator table "users")
// over a loopback listener and returns the address.
func serveTable(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(core.MustNew(core.Config{Bins: 1 << 10, Resizable: true}), server.Options{})
	if err := s.AddTable("users", core.MustNew(core.Config{Bins: 1 << 10, Resizable: true})); err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

// roundTrip drives the minimal Store contract through s.
func roundTrip(t *testing.T, s dlht.Store) {
	t.Helper()
	if _, inserted, err := s.Insert(7, 70); err != nil || !inserted {
		t.Fatalf("Insert = inserted=%v err=%v", inserted, err)
	}
	if v, ok, err := s.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("Get = (%d,%v,%v)", v, ok, err)
	}
	if prev, ok, err := s.Put(7, 71); err != nil || !ok || prev != 70 {
		t.Fatalf("Put = (%d,%v,%v)", prev, ok, err)
	}
	if prev, ok, err := s.Delete(7); err != nil || !ok || prev != 71 {
		t.Fatalf("Delete = (%d,%v,%v)", prev, ok, err)
	}
}

func TestOpenMem(t *testing.T) {
	for _, spec := range []string{"mem:", "mem"} {
		s, err := dlht.Open(spec, dlht.WithConfig(dlht.Config{Bins: 1 << 10, Resizable: true}))
		if err != nil {
			t.Fatalf("Open(%q): %v", spec, err)
		}
		roundTrip(t, s)
		s.Close()
	}
}

func TestOpenTCP(t *testing.T) {
	addr := serveTable(t)

	s, err := dlht.Open("tcp://" + addr)
	if err != nil {
		t.Fatalf("Open default table: %v", err)
	}
	roundTrip(t, s)
	s.Close()

	// A table named in the spec path selects it; the concrete type is the
	// full client.
	s, err = dlht.Open("tcp://" + addr + "/users")
	if err != nil {
		t.Fatalf("Open named table: %v", err)
	}
	if _, ok := s.(*dlht.Client); !ok {
		t.Fatalf("tcp Open returned %T, want *dlht.Client", s)
	}
	roundTrip(t, s)
	s.Close()

	// An unknown table surfaces the transport sentinel through the wrap.
	if _, err := dlht.Open("tcp://" + addr + "/nope"); !errors.Is(err, dlht.ErrUnknownTable) {
		t.Fatalf("unknown table: %v, want ErrUnknownTable", err)
	}
}

func TestOpenCluster(t *testing.T) {
	a, b := serveTable(t), serveTable(t)
	s, err := dlht.Open("cluster:"+a+","+b, dlht.WithClusterOpts(dlht.ClusterOpts{VNodes: 8}))
	if err != nil {
		t.Fatalf("Open cluster: %v", err)
	}
	defer s.Close()
	if _, ok := s.(*dlht.Cluster); !ok {
		t.Fatalf("cluster Open returned %T, want *dlht.Cluster", s)
	}
	for k := uint64(1); k <= 64; k++ {
		if _, inserted, err := s.Insert(k, k*10); err != nil || !inserted {
			t.Fatalf("Insert %d: inserted=%v err=%v", k, inserted, err)
		}
	}
	for k := uint64(1); k <= 64; k++ {
		if v, ok, err := s.Get(k); err != nil || !ok || v != k*10 {
			t.Fatalf("Get %d = (%d,%v,%v)", k, v, ok, err)
		}
	}
}

// TestOpenClusterReplicated: WithReplicas/WithRetry through the spec
// entry point — with R = W = 3 over three shards every write lands
// everywhere, so reads survive any single backend vanishing.
func TestOpenClusterReplicated(t *testing.T) {
	a, b, c := serveTable(t), serveTable(t), serveTable(t)
	s, err := dlht.Open("cluster:"+a+","+b+","+c,
		dlht.WithReplicas(3, 3),
		dlht.WithRetry(dlht.RetryPolicy{Max: 2}))
	if err != nil {
		t.Fatalf("Open replicated cluster: %v", err)
	}
	defer s.Close()
	for k := uint64(1); k <= 64; k++ {
		if _, inserted, err := s.Insert(k, k*10); err != nil || !inserted {
			t.Fatalf("Insert %d: inserted=%v err=%v", k, inserted, err)
		}
	}
	for k := uint64(1); k <= 64; k++ {
		if v, ok, err := s.Get(k); err != nil || !ok || v != k*10 {
			t.Fatalf("Get %d = (%d,%v,%v)", k, v, ok, err)
		}
	}
	// The duplicate-Insert contract holds through replication: the
	// existing value, inserted=false, nil error.
	if v, inserted, err := s.Insert(1, 999); err != nil || inserted || v != 10 {
		t.Fatalf("duplicate Insert = (%d,%v,%v), want (10,false,nil)", v, inserted, err)
	}
	// The facade's retry classification: table refusals are terminal,
	// transport deaths are retryable.
	if dlht.IsRetryable(dlht.ErrExists) {
		t.Fatal("IsRetryable(ErrExists) = true, want false")
	}
	if !dlht.IsRetryable(io.EOF) {
		t.Fatal("IsRetryable(io.EOF) = false, want true")
	}
}

func TestOpenWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := dlht.Config{Bins: 1 << 10, Resizable: true}

	s, err := dlht.Open("wal:"+dir, dlht.WithConfig(cfg))
	if err != nil {
		t.Fatalf("Open wal: %v", err)
	}
	ds, ok := s.(*dlht.DurableStore)
	if !ok {
		t.Fatalf("wal Open returned %T, want *dlht.DurableStore", s)
	}
	for k := uint64(1); k <= 32; k++ {
		if _, inserted, err := s.Insert(k, k); err != nil || !inserted {
			t.Fatalf("Insert %d: inserted=%v err=%v", k, inserted, err)
		}
	}
	if ds.Log() == nil {
		t.Fatal("DurableStore.Log is nil")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen recovers everything acknowledged before Close.
	r, err := dlht.OpenDurable(dir, cfg, dlht.WALOptions{})
	if err != nil {
		t.Fatalf("OpenDurable reopen: %v", err)
	}
	defer r.Close()
	if n := r.RecoverStats().Records; n != 32 {
		t.Fatalf("recovered %d records, want 32", n)
	}
	for k := uint64(1); k <= 32; k++ {
		if v, ok, _ := r.Get(k); !ok || v != k {
			t.Fatalf("recovered Get %d = (%d,%v)", k, v, ok)
		}
	}
}

func TestOpenBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"", "bogus:", "memcache:", "tcp://", "cluster:", "wal:",
		"udp://host:1", "relative/path",
	} {
		if _, err := dlht.Open(spec); !errors.Is(err, dlht.ErrBadSpec) {
			t.Fatalf("Open(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
	// A well-formed spec whose backend fails must NOT be ErrBadSpec, and
	// must keep the dial error visible to errors.As.
	_, err := dlht.Open("tcp://127.0.0.1:1")
	if err == nil || errors.Is(err, dlht.ErrBadSpec) {
		t.Fatalf("dial-refused Open: %v", err)
	}
	var nerr *net.OpError
	if !errors.As(err, &nerr) {
		t.Fatalf("dial error lost through the wrap: %v", err)
	}
}

func TestStatusErr(t *testing.T) {
	cases := []struct {
		s    dlht.Status
		want error
	}{
		{dlht.StatusOK, nil},
		{dlht.StatusNotFound, nil},
		{dlht.StatusExists, dlht.ErrExists},
		{dlht.StatusFull, dlht.ErrFull},
		{dlht.StatusWrongMode, dlht.ErrWrongMode},
		{dlht.StatusBusy, dlht.ErrBusy},
		{dlht.StatusUnknownTable, dlht.ErrUnknownTable},
		{dlht.StatusBadVersion, dlht.ErrBadVersion},
		{dlht.StatusBadRequest, dlht.ErrBadRequest},
	}
	for _, c := range cases {
		if got := dlht.StatusErr(c.s); !errors.Is(got, c.want) {
			t.Fatalf("StatusErr(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}
