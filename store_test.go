package dlht_test

import (
	"errors"
	"net"
	"testing"

	dlht "repro"
	"repro/internal/server"
)

// startServers launches n in-process dlht-servers over fresh tables and
// returns their addresses.
func startServers(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s := server.New(dlht.MustNew(dlht.Config{Bins: 1 << 10, Resizable: true}), server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() { s.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// driveStore runs the same program against any Store: sync ops, sentinel
// behavior, then a pipelined burst.
func driveStore(t *testing.T, s dlht.Store) {
	t.Helper()
	if _, inserted, err := s.Insert(7, 70); err != nil || !inserted {
		t.Fatalf("Insert = inserted=%v err=%v", inserted, err)
	}
	if existing, inserted, err := s.Insert(7, 71); err != nil || inserted || existing != 70 {
		t.Fatalf("dup Insert = (%d,%v,%v)", existing, inserted, err)
	}
	if v, ok, err := s.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("Get = (%d,%v,%v)", v, ok, err)
	}
	if prev, ok, err := s.Put(7, 72); err != nil || !ok || prev != 70 {
		t.Fatalf("Put = (%d,%v,%v)", prev, ok, err)
	}
	if prev, ok, err := s.Delete(7); err != nil || !ok || prev != 72 {
		t.Fatalf("Delete = (%d,%v,%v)", prev, ok, err)
	}

	var completions int
	var bad error
	p, err := s.Pipe(dlht.PipeOpts{Window: 8, OnComplete: func(c dlht.Completion) {
		completions++
		if c.Kind == dlht.OpInsert && c.Err != nil && !errors.Is(c.Err, dlht.ErrExists) {
			bad = c.Err
		}
		if c.Kind == dlht.OpGet && c.OK && c.Value != c.Key*2 {
			bad = errors.New("get observed a foreign value")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for k := uint64(0); k < n; k++ {
		if err := p.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k++ {
		if err := p.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Fatal(bad)
	}
	if completions != 2*n {
		t.Fatalf("completions = %d, want %d", completions, 2*n)
	}
}

// TestStoreFacade runs the same driver against all three backends through
// the public facade only: a local table, one dlht-server, and a 3-shard
// cluster.
func TestStoreFacade(t *testing.T) {
	t.Run("local", func(t *testing.T) {
		tbl := dlht.MustNew(dlht.Config{Bins: 1 << 10, Resizable: true})
		s, err := tbl.Store()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		driveStore(t, s)
	})
	t.Run("remote", func(t *testing.T) {
		addrs := startServers(t, 1)
		s, err := dlht.Dial(addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		driveStore(t, s)
	})
	t.Run("cluster", func(t *testing.T) {
		addrs := startServers(t, 3)
		c, err := dlht.DialCluster(addrs, dlht.ClusterOpts{})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.NumShards() != 3 {
			t.Fatalf("NumShards = %d", c.NumShards())
		}
		driveStore(t, c)
	})
}
