package baselines_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/baselines"
	"repro/internal/baselines/clht"
	"repro/internal/baselines/cuckoo"
	"repro/internal/baselines/dramhit"
	"repro/internal/baselines/folly"
	"repro/internal/baselines/growt"
	"repro/internal/baselines/leapfrog"
	"repro/internal/baselines/mica"
	"repro/internal/baselines/tbb"
	"repro/internal/hashfn"
)

// all returns a fresh instance of every baseline, sized for the tests.
func all() []baselines.Map {
	const n = 1 << 14
	return []baselines.Map{
		clht.New(n, hashfn.WyHash),
		growt.New(n, hashfn.WyHash),
		folly.New(n, hashfn.WyHash),
		mica.New(n, hashfn.WyHash, 8),
		dramhit.New(n, hashfn.WyHash),
		cuckoo.New(n/4, hashfn.WyHash),
		leapfrog.New(n, hashfn.WyHash),
		tbb.New(n, hashfn.WyHash),
	}
}

func TestConformanceBasic(t *testing.T) {
	for _, m := range all() {
		t.Run(m.Name(), func(t *testing.T) {
			if _, ok := m.Get(1); ok {
				t.Fatal("empty map returned a value")
			}
			if !m.Insert(1, 100) {
				t.Fatal("insert failed")
			}
			if v, ok := m.Get(1); !ok || v != 100 {
				t.Fatalf("Get = (%d,%v), want (100,true)", v, ok)
			}
			f := m.Features()
			// Insert of an existing key must fail — except for upsert-only
			// designs (DRAMHiT), where it silently updates.
			again := m.Insert(1, 101)
			if f.Inserts == "upsert-only" {
				if !again {
					t.Fatal("upsert-only insert refused an update")
				}
				if v, _ := m.Get(1); v != 101 {
					t.Fatal("upsert did not update")
				}
			} else if again {
				t.Fatal("duplicate insert succeeded")
			}
			if f.Puts != "none" {
				if !m.Put(1, 102) {
					t.Fatal("put on existing key failed")
				}
				if v, _ := m.Get(1); v != 102 {
					t.Fatal("put did not take effect")
				}
			} else if m.Put(1, 102) {
				t.Fatal("design without Puts accepted one")
			}
			if f.DeletesSupported || f.Addressing == "open" {
				if !m.Delete(1) {
					t.Fatal("delete failed")
				}
				if _, ok := m.Get(1); ok {
					t.Fatal("deleted key visible")
				}
				if m.Delete(1) {
					t.Fatal("double delete succeeded")
				}
			}
		})
	}
}

func TestConformanceBulk(t *testing.T) {
	const n = 4000
	for _, m := range all() {
		t.Run(m.Name(), func(t *testing.T) {
			for i := uint64(1); i <= n; i++ {
				if !m.Insert(i, i*2) {
					t.Fatalf("insert %d failed", i)
				}
			}
			for i := uint64(1); i <= n; i++ {
				if v, ok := m.Get(i); !ok || v != i*2 {
					t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
				}
			}
		})
	}
}

func TestConformanceDeleteThenReuse(t *testing.T) {
	// Designs whose deletes reclaim slots must absorb delete/insert cycles
	// in place; tombstone designs must still answer correctly (though they
	// burn space).
	for _, m := range all() {
		f := m.Features()
		if !f.DeletesSupported && f.Inserts == "upsert-only" {
			continue // DRAMHiT: deletes are not part of its contract
		}
		t.Run(m.Name(), func(t *testing.T) {
			for round := uint64(0); round < 200; round++ {
				k := 1 + round%10
				if !m.Insert(k, round) {
					t.Fatalf("round %d: insert %d failed", round, k)
				}
				if v, ok := m.Get(k); !ok || v != round {
					t.Fatalf("round %d: get = (%d,%v)", round, v, ok)
				}
				if !m.Delete(k) {
					t.Fatalf("round %d: delete %d failed", round, k)
				}
			}
		})
	}
}

func TestConformanceConcurrent(t *testing.T) {
	for _, m := range all() {
		t.Run(m.Name(), func(t *testing.T) {
			const workers = 4
			const per = 2000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(base uint64) {
					defer wg.Done()
					for i := uint64(1); i <= per; i++ {
						k := base*1000000 + i
						if !m.Insert(k, k) {
							t.Errorf("insert %d failed", k)
							return
						}
					}
					for i := uint64(1); i <= per; i++ {
						k := base*1000000 + i
						if v, ok := m.Get(k); !ok || v != k {
							t.Errorf("Get(%d) = (%d,%v)", k, v, ok)
							return
						}
					}
				}(uint64(w + 1))
			}
			wg.Wait()
		})
	}
}

func TestGrowTResizeReclaimsTombstones(t *testing.T) {
	m := growt.New(64, hashfn.WyHash)
	// Insert/delete cycles accumulate tombstones until the 30 % trigger
	// forces a migration that reclaims them — the paper's Figure 5 cost.
	for i := uint64(1); i <= 100000; i++ {
		if !m.Insert(i, i) {
			t.Fatalf("insert %d failed", i)
		}
		if !m.Delete(i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if m.Resizes() == 0 {
		t.Fatal("tombstone pressure never triggered a migration")
	}
}

func TestCLHTSerialBlockingResize(t *testing.T) {
	m := clht.New(16, hashfn.WyHash)
	for i := uint64(1); i <= 5000; i++ {
		if !m.Insert(i, i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if m.Resizes() == 0 {
		t.Fatal("CLHT never resized while overflowing buckets")
	}
	for i := uint64(1); i <= 5000; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = (%d,%v) after resize", i, v, ok)
		}
	}
}

func TestFollyFixedSizeFillsUp(t *testing.T) {
	m := folly.New(16, hashfn.WyHash) // rounds to 16 cells
	failed := false
	for i := uint64(1); i <= 64; i++ {
		if !m.Insert(i, i) {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("non-resizable map absorbed 4x its capacity")
	}
}

func TestDRAMHiTBatchReordersButAnswersCorrectly(t *testing.T) {
	m := dramhit.New(1<<12, hashfn.WyHash)
	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i + 1)
		m.Insert(keys[i], uint64(i+1)*10)
	}
	vals := make([]uint64, len(keys))
	oks := make([]bool, len(keys))
	m.GetBatch(keys, vals, oks)
	for i := range keys {
		if !oks[i] || vals[i] != keys[i]*10 {
			t.Fatalf("batch result %d = (%d,%v)", i, vals[i], oks[i])
		}
	}
}

func TestMICABatch(t *testing.T) {
	m := mica.New(1<<10, hashfn.WyHash, 8)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i + 1)
		if !m.Insert(keys[i], uint64(i)+7) {
			t.Fatalf("insert %d", i)
		}
	}
	vals := make([]uint64, len(keys))
	oks := make([]bool, len(keys))
	m.GetBatch(keys, vals, oks)
	for i := range keys {
		if !oks[i] || vals[i] != uint64(i)+7 {
			t.Fatalf("batch %d = (%d,%v)", i, vals[i], oks[i])
		}
	}
}

func TestFeatureMatrixMatchesPaperTable1(t *testing.T) {
	// Spot-check the feature rows the paper's Table 1 asserts.
	want := map[string]struct {
		addressing     string
		deletesReclaim bool
		resizable      bool
	}{
		"CLHT":     {"closed", true, true},
		"GrowT":    {"open", false, true},
		"Folly":    {"open", false, false},
		"MICA":     {"closed", true, false},
		"DRAMHiT":  {"open", false, false},
		"Cuckoo":   {"open", true, false},
		"Leapfrog": {"open", false, false},
		"TBB":      {"closed", true, true},
	}
	for _, m := range all() {
		w, ok := want[m.Name()]
		if !ok {
			t.Fatalf("unknown baseline %q", m.Name())
		}
		f := m.Features()
		got := fmt.Sprintf("%s/%v/%v", f.Addressing, f.DeletesReclaim, f.Resizable)
		exp := fmt.Sprintf("%s/%v/%v", w.addressing, w.deletesReclaim, w.resizable)
		if got != exp {
			t.Errorf("%s: features %s, want %s", m.Name(), got, exp)
		}
	}
}
