package growt

import (
	"sync"
	"testing"

	"repro/internal/hashfn"
)

func TestTombstoneAccounting(t *testing.T) {
	m := New(1<<10, hashfn.WyHash)
	for i := uint64(1); i <= 10; i++ {
		if !m.Insert(i, i) {
			t.Fatalf("insert %d", i)
		}
	}
	occ, _ := m.Occupancy()
	if occ != 10 {
		t.Fatalf("live = %d, want 10", occ)
	}
	for i := uint64(1); i <= 4; i++ {
		if !m.Delete(i) {
			t.Fatalf("delete %d", i)
		}
	}
	occ, _ = m.Occupancy()
	if occ != 6 {
		t.Fatalf("live after deletes = %d, want 6", occ)
	}
	// Tombstones still occupy cells: used stays at 10.
	if m.Used() != 10 {
		t.Fatalf("used = %d, want 10 (tombstones occupy)", m.Used())
	}
}

func TestDeletedKeysNotFoundButProbeChainsSurvive(t *testing.T) {
	m := New(64, hashfn.Modulo)
	// Force a probe chain: keys that collide under modulo into 64 cells.
	keys := []uint64{1, 65, 129, 193}
	for _, k := range keys {
		if !m.Insert(k, k) {
			t.Fatalf("insert %d", k)
		}
	}
	// Delete the middle of the chain; later chain members must stay
	// reachable (the tombstone preserves the probe path).
	if !m.Delete(65) {
		t.Fatal("delete 65")
	}
	for _, k := range []uint64{1, 129, 193} {
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = (%d,%v) after mid-chain delete", k, v, ok)
		}
	}
	if _, ok := m.Get(65); ok {
		t.Fatal("deleted key visible")
	}
}

func TestMigrationReclaimsTombstonesAndPreservesLive(t *testing.T) {
	m := New(64, hashfn.WyHash)
	// Fill cells with tombstones until the 30% trigger fires.
	live := map[uint64]uint64{}
	for i := uint64(1); m.Resizes() == 0 && i < 1<<20; i++ {
		m.Insert(i, i*2)
		if i%3 == 0 {
			m.Delete(i)
		} else {
			live[i] = i * 2
		}
	}
	if m.Resizes() == 0 {
		t.Fatal("tombstone pressure never triggered a migration")
	}
	for k, v := range live {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("live key %d lost across migration: (%d,%v)", k, got, ok)
		}
	}
	// The new generation starts tombstone free; the loop iteration that
	// triggered the migration may already have planted one new tombstone.
	occ, _ := m.Occupancy()
	if m.Used() > occ+1 {
		t.Fatalf("used %d vs live %d: migration carried tombstones over", m.Used(), occ)
	}
}

func TestPutDuringNormalOperation(t *testing.T) {
	m := New(256, hashfn.WyHash)
	m.Insert(5, 50)
	if !m.Put(5, 51) {
		t.Fatal("put failed")
	}
	if v, _ := m.Get(5); v != 51 {
		t.Fatalf("v = %d", v)
	}
	if m.Put(99, 1) {
		t.Fatal("put on missing key succeeded")
	}
}

func TestConcurrentInsertDeleteWithMigrations(t *testing.T) {
	m := New(64, hashfn.WyHash) // tiny: constant migrations
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 3000; i++ {
				k := base + i
				if !m.Insert(k, k) {
					t.Errorf("insert %d failed", k)
					return
				}
				if !m.Delete(k) {
					t.Errorf("delete %d failed", k)
					return
				}
			}
		}(uint64(w+1) << 32)
	}
	wg.Wait()
	if occ, _ := m.Occupancy(); occ != 0 {
		t.Fatalf("%d live entries left after balanced ins/del", occ)
	}
	if m.Resizes() == 0 {
		t.Fatal("expected migrations under tombstone churn")
	}
}
