// Package growt reproduces the uaGrowT variant of GrowT (Maier, Sanders,
// Dementiev — "Concurrent Hash Tables: Fast and General(?)!", TOPC'19) as
// the DLHT paper evaluates it: open addressing with 16-byte atomic cells,
// tombstone deletes that permanently occupy slots, and a *parallel but
// blocking* resize triggered at 30 % occupancy (the threshold in GrowT's
// codebase per §5.1.5) or when tombstones fill the table. During a resize
// every operation stalls until all live cells have been transferred — the
// behaviour behind the 12.8× InsDel gap in the paper's Figure 5.
package growt

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/baselines"
	"repro/internal/cpuops"
	"repro/internal/hashfn"
)

const (
	emptyKey     = ^uint64(0)     // cells start empty
	tombstoneKey = ^uint64(0) - 1 // deleted cells; never reusable
	maxProbes    = 1024
)

// Table is a uaGrowT-style map. User keys must avoid the two sentinels.
type Table struct {
	hash hashfn.Func64
	cur  atomic.Pointer[generation]

	resizeState atomic.Uint32 // 0 normal, 1 allocating, 2 migrating
	resizes     atomic.Uint64
	// active counters let the migration wait out in-flight operations
	// before copying cells (the blocking resize's stop-the-world step).
	active [64]paddedCounter
}

type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

type generation struct {
	cells []uint64 // 2 words per cell, 16-byte aligned
	mask  uint64
	// used counts occupied cells (live + tombstones): the resize trigger.
	used atomic.Uint64
	// live counts non-tombstone entries.
	live atomic.Uint64

	next        atomic.Pointer[generation]
	chunkCursor atomic.Uint64
	chunksDone  atomic.Uint64
	numChunks   uint64
}

const chunkCells = 4096

func newGeneration(cells uint64) *generation {
	g := &generation{
		cells:     cpuops.AlignedUint64s(int(cells)*2, 16),
		mask:      cells - 1,
		numChunks: (cells + chunkCells - 1) / chunkCells,
	}
	for i := range g.cells {
		if i%2 == 0 {
			g.cells[i] = emptyKey
		}
	}
	return g
}

// New creates a GrowT table with at least the given cell count (rounded up
// to a power of two).
func New(cells uint64, hash hashfn.Kind) *Table {
	n := uint64(16)
	for n < cells {
		n <<= 1
	}
	t := &Table{hash: hashfn.For64(hash)}
	t.cur.Store(newGeneration(n))
	return t
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "GrowT" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "open",
		LockFreeGets:     true,
		Puts:             "lock-free",
		Inserts:          "lock-free",
		DeletesReclaim:   false, // tombstones; reclaim only via full migration
		DeletesSupported: true,
		Resizable:        true,
		ParallelResize:   true,
		Inlined:          true,
	}
}

// Resizes reports completed migrations.
func (t *Table) Resizes() uint64 { return t.resizes.Load() }

func (g *generation) cell(i uint64) *[2]uint64 {
	return (*[2]uint64)(unsafe.Pointer(&g.cells[(i&g.mask)*2]))
}

// enter stalls while a migration runs (GrowT's resize is blocking),
// registers the operation on a striped counter, and returns the active
// generation. The caller must decrement the counter when done.
func (t *Table) enter(key uint64) (*generation, *atomic.Int64) {
	s := &t.active[key&63].v
	for {
		for t.resizeState.Load() != 0 {
			runtime.Gosched()
		}
		s.Add(1)
		if t.resizeState.Load() == 0 {
			return t.cur.Load(), s
		}
		s.Add(-1)
	}
}

// Get implements baselines.Map.
func (t *Table) Get(key uint64) (uint64, bool) {
	g, s := t.enter(key)
	defer s.Add(-1)
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := g.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == emptyKey {
			return 0, false
		}
		if k == key {
			return atomic.LoadUint64(&c[1]), true
		}
	}
	return 0, false
}

// Insert implements baselines.Map.
func (t *Table) Insert(key, val uint64) bool {
	for {
		g, s := t.enter(key)
		if g.used.Load()*10 >= (g.mask+1)*3 { // 30 % occupancy trigger
			s.Add(-1)
			t.grow(g)
			continue
		}
		h := t.hash(key)
		ok, retry := t.tryInsert(g, h, key, val)
		s.Add(-1)
		if retry {
			t.grow(g)
			continue
		}
		return ok
	}
}

func (t *Table) tryInsert(g *generation, h, key, val uint64) (ok, needGrow bool) {
	for p := uint64(0); p < maxProbes; p++ {
		c := g.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == key {
			return false, false
		}
		if k == emptyKey {
			if cpuops.CompareAndSwap128(c, emptyKey, 0, key, val) {
				g.used.Add(1)
				g.live.Add(1)
				return true, false
			}
			p-- // reinspect the cell
			continue
		}
		// Tombstones are NOT reusable (open addressing cannot reclaim
		// without breaking probe chains — §2.2); skip over them.
	}
	return false, true
}

// Put implements baselines.Map: update an existing key's value.
func (t *Table) Put(key, val uint64) bool {
	for {
		g, s := t.enter(key)
		h := t.hash(key)
		for p := uint64(0); p < maxProbes; p++ {
			c := g.cell(h + p)
			k := atomic.LoadUint64(&c[0])
			if k == emptyKey {
				return false
			}
			if k != key {
				continue
			}
			atomic.StoreUint64(&c[1], val)
			s.Add(-1)
			return true
		}
		s.Add(-1)
		return false
	}
}

// Delete implements baselines.Map: plants a tombstone. The slot is lost
// until the next full migration.
func (t *Table) Delete(key uint64) bool {
	for {
		g, s := t.enter(key)
		h := t.hash(key)
		for p := uint64(0); p < maxProbes; p++ {
			c := g.cell(h + p)
			k := atomic.LoadUint64(&c[0])
			if k == emptyKey {
				return false
			}
			if k != key {
				continue
			}
			v := atomic.LoadUint64(&c[1])
			if !cpuops.CompareAndSwap128(c, key, v, tombstoneKey, 0) {
				p-- // value changed; reinspect the cell
				continue
			}
			g.live.Add(^uint64(0))
			s.Add(-1)
			return true
		}
		s.Add(-1)
		return false
	}
}

// grow runs GrowT's parallel blocking migration: the initiating thread
// flips the gate (stalling all operations), threads that also call grow
// help by claiming chunks, and only live (non-tombstone) cells move — this
// is when tombstone space is finally reclaimed.
func (t *Table) grow(old *generation) {
	if t.cur.Load() != old {
		return
	}
	if t.resizeState.CompareAndSwap(0, 1) {
		if t.cur.Load() != old { // lost a race before the gate closed
			t.resizeState.Store(0)
			return
		}
		// Size for live data at ~15 % target occupancy, at least double.
		cells := (old.mask + 1) * 2
		for cells < old.live.Load()*8 {
			cells *= 2
		}
		ng := newGeneration(cells)
		old.next.Store(ng)
		// Stop-the-world: wait for in-flight operations to drain before
		// anyone copies cells.
		for i := range t.active {
			for t.active[i].v.Load() != 0 {
				runtime.Gosched()
			}
		}
		t.resizeState.Store(2)
	} else {
		for t.resizeState.Load() == 1 {
			runtime.Gosched()
		}
		if t.cur.Load() != old {
			return
		}
	}
	ng := old.next.Load()
	if ng == nil {
		return
	}
	// Parallel chunk transfer.
	for {
		c := old.chunkCursor.Add(1) - 1
		if c >= old.numChunks {
			break
		}
		start := c * chunkCells
		end := start + chunkCells
		if end > old.mask+1 {
			end = old.mask + 1
		}
		for i := start; i < end; i++ {
			cell := old.cell(i)
			k := cell[0] // no concurrency: everyone else is gated
			if k == emptyKey || k == tombstoneKey {
				continue
			}
			t.migrate(ng, k, cell[1])
		}
		old.chunksDone.Add(1)
	}
	for old.chunksDone.Load() < old.numChunks {
		runtime.Gosched()
	}
	if t.cur.CompareAndSwap(old, ng) {
		t.resizes.Add(1)
		t.resizeState.Store(0)
	}
}

func (t *Table) migrate(g *generation, key, val uint64) {
	h := t.hash(key)
	for p := uint64(0); ; p++ {
		c := g.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == emptyKey {
			if cpuops.CompareAndSwap128(c, emptyKey, 0, key, val) {
				g.used.Add(1)
				g.live.Add(1)
				return
			}
			p--
		}
	}
}

var _ baselines.Map = (*Table)(nil)

// Occupancy reports live cells over total cells of the current generation.
// GrowT migrates at 30 % used (live + tombstones), so the live occupancy at
// resize sits in the paper's 30-50 % band or below under deletes.
func (t *Table) Occupancy() (occupied, capacity uint64) {
	g := t.cur.Load()
	return g.live.Load(), g.mask + 1
}

// Used reports occupied cells including tombstones.
func (t *Table) Used() uint64 { return t.cur.Load().used.Load() }
