// Package folly reproduces Meta's Folly AtomicHashMap skeleton as the DLHT
// paper classifies it (Table 1): open addressing with lock-free finds and
// inserts, keys and values at most 8 bytes, deletes through tombstones that
// can never be reclaimed, and no resizing — the map is sized once and an
// overflowing insert simply fails.
package folly

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/baselines"
	"repro/internal/cpuops"
	"repro/internal/hashfn"
)

const (
	emptyKey     = ^uint64(0)
	tombstoneKey = ^uint64(0) - 1
	maxProbes    = 4096
)

// Table is a fixed-size open-addressing map.
type Table struct {
	hash  hashfn.Func64
	cells []uint64
	mask  uint64
	used  atomic.Uint64 // live + tombstones; never decreases
}

// New creates a Folly-style map with at least the given cell count.
func New(cells uint64, hash hashfn.Kind) *Table {
	n := uint64(16)
	for n < cells {
		n <<= 1
	}
	t := &Table{
		hash:  hashfn.For64(hash),
		cells: cpuops.AlignedUint64s(int(n)*2, 16),
		mask:  n - 1,
	}
	for i := range t.cells {
		if i%2 == 0 {
			t.cells[i] = emptyKey
		}
	}
	return t
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "Folly" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "open",
		LockFreeGets:     true,
		Puts:             "lock-free",
		Inserts:          "lock-free",
		DeletesReclaim:   false,
		DeletesSupported: true, // tombstones only
		Resizable:        false,
		Inlined:          true,
	}
}

func (t *Table) cell(i uint64) *[2]uint64 {
	return (*[2]uint64)(unsafe.Pointer(&t.cells[(i&t.mask)*2]))
}

// Get implements baselines.Map.
func (t *Table) Get(key uint64) (uint64, bool) {
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := t.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == emptyKey {
			return 0, false
		}
		if k == key {
			return atomic.LoadUint64(&c[1]), true
		}
	}
	return 0, false
}

// Insert implements baselines.Map. Fails when the key exists or the fixed
// index has no reachable empty cell.
func (t *Table) Insert(key, val uint64) bool {
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := t.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == key {
			return false
		}
		if k == emptyKey {
			if cpuops.CompareAndSwap128(c, emptyKey, 0, key, val) {
				t.used.Add(1)
				return true
			}
			p--
		}
	}
	return false
}

// Put implements baselines.Map: in-place value store on an existing key.
func (t *Table) Put(key, val uint64) bool {
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := t.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == emptyKey {
			return false
		}
		if k == key {
			atomic.StoreUint64(&c[1], val)
			return true
		}
	}
	return false
}

// Delete implements baselines.Map: tombstone, slot permanently lost (§2.2:
// "DRAMHiT and Folly do not address that").
func (t *Table) Delete(key uint64) bool {
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := t.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == emptyKey {
			return false
		}
		if k != key {
			continue
		}
		v := atomic.LoadUint64(&c[1])
		if cpuops.CompareAndSwap128(c, key, v, tombstoneKey, 0) {
			return true
		}
		p--
	}
	return false
}

var _ baselines.Map = (*Table)(nil)
