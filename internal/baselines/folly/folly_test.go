package folly

import (
	"testing"

	"repro/internal/hashfn"
)

// The defining Folly limitation (§2.2): tombstones permanently occupy
// cells, so delete/insert cycles consume the fixed index until it dies.
func TestTombstonesPermanentlyConsumeIndex(t *testing.T) {
	m := New(64, hashfn.WyHash) // 64 cells, fixed
	cycles := 0
	for i := uint64(1); i < 10000; i++ {
		if !m.Insert(i, i) {
			break
		}
		if !m.Delete(i) {
			t.Fatalf("delete %d", i)
		}
		cycles++
	}
	// At most ~64 cycles fit before every cell is a tombstone; with probe
	// limits it dies at or before that.
	if cycles == 0 || cycles > 64 {
		t.Fatalf("tombstones should kill a 64-cell map within 64 cycles, lasted %d", cycles)
	}
}

func TestFixedSizeNoResize(t *testing.T) {
	m := New(16, hashfn.WyHash)
	inserted := 0
	for i := uint64(1); i <= 64; i++ {
		if m.Insert(i, i) {
			inserted++
		}
	}
	if inserted > 16 {
		t.Fatalf("fixed map of 16 cells absorbed %d keys", inserted)
	}
	// Everything inserted is retrievable; nothing was evicted.
	found := 0
	for i := uint64(1); i <= 64; i++ {
		if _, ok := m.Get(i); ok {
			found++
		}
	}
	if found != inserted {
		t.Fatalf("found %d, inserted %d", found, inserted)
	}
}

func TestPutInPlace(t *testing.T) {
	m := New(64, hashfn.WyHash)
	m.Insert(1, 10)
	if !m.Put(1, 11) {
		t.Fatal("put")
	}
	if v, _ := m.Get(1); v != 11 {
		t.Fatalf("v = %d", v)
	}
}
