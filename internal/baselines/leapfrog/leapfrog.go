// Package leapfrog reproduces the Leapfrog map from Preshing's Junction
// library as the DLHT paper evaluates it: open addressing where each cell
// carries small delta links that let probes "leapfrog" directly between the
// cells of one hash chain instead of scanning every intermediate cell.
// Deletes blank the value but keep the cell in its chain (no reclamation),
// and the fixed-size variant fails inserts when chains cannot grow.
//
// Skeleton simplification: Gets follow delta chains lock-free exactly as in
// Junction; mutations serialize on a striped lock per home cell instead of
// Junction's lock-free link splicing. Leapfrog sits in the paper's
// sub-250 M req/s tier of Figure 3 (multiple dependent accesses, no
// prefetching), and its comparative standing is unchanged by this.
package leapfrog

import (
	"sync"
	"sync/atomic"

	"repro/internal/baselines"
	"repro/internal/cpuops"
	"repro/internal/hashfn"
)

const (
	emptyKey     = ^uint64(0)
	erasedVal    = ^uint64(0) // reserved value marking a deleted entry
	maxScan      = 512
	muStripes    = 1 << 10
	wordsPerCell = 4 // key, value, firstDelta, nextDelta
)

// Table is a Leapfrog-style map.
type Table struct {
	hash  hashfn.Func64
	cells []uint64
	mask  uint64
	mus   [muStripes]sync.Mutex
}

// New creates a Leapfrog map with at least the given cell count.
func New(cells uint64, hash hashfn.Kind) *Table {
	n := uint64(16)
	for n < cells {
		n <<= 1
	}
	t := &Table{
		hash:  hashfn.For64(hash),
		cells: cpuops.AlignedUint64s(int(n)*wordsPerCell, 64),
		mask:  n - 1,
	}
	for i := uint64(0); i < n; i++ {
		t.cells[i*wordsPerCell] = emptyKey
	}
	return t
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "Leapfrog" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "open",
		LockFreeGets:     true,
		Puts:             "blocking",
		Inserts:          "blocking",
		DeletesReclaim:   false,
		DeletesSupported: true,
		Resizable:        false,
		Inlined:          true,
	}
}

func (t *Table) keyAddr(i uint64) *uint64   { return &t.cells[(i&t.mask)*wordsPerCell] }
func (t *Table) valAddr(i uint64) *uint64   { return &t.cells[(i&t.mask)*wordsPerCell+1] }
func (t *Table) firstAddr(i uint64) *uint64 { return &t.cells[(i&t.mask)*wordsPerCell+2] }
func (t *Table) nextAddr(i uint64) *uint64  { return &t.cells[(i&t.mask)*wordsPerCell+3] }

func (t *Table) mu(home uint64) *sync.Mutex { return &t.mus[home&(muStripes-1)] }

// find walks home's chain and returns the cell index holding key. When the
// key is absent it returns the chain's tail with found=false.
func (t *Table) find(home, key uint64) (idx uint64, found bool) {
	if atomic.LoadUint64(t.keyAddr(home)) == key {
		return home, true
	}
	i := home
	link := t.firstAddr(home)
	for {
		d := atomic.LoadUint64(link)
		if d == 0 {
			return i, false
		}
		i += d
		if atomic.LoadUint64(t.keyAddr(i)) == key {
			return i, true
		}
		link = t.nextAddr(i)
	}
}

// Get implements baselines.Map: lock-free chain walk, each hop a dependent
// memory access.
func (t *Table) Get(key uint64) (uint64, bool) {
	home := t.hash(key) & t.mask
	idx, found := t.find(home, key)
	if !found {
		return 0, false
	}
	v := atomic.LoadUint64(t.valAddr(idx))
	return v, v != erasedVal
}

// Insert implements baselines.Map.
func (t *Table) Insert(key, val uint64) bool {
	if val == erasedVal {
		val = erasedVal - 1
	}
	home := t.hash(key) & t.mask
	mu := t.mu(home)
	mu.Lock()
	defer mu.Unlock()
	// Claim the home cell directly when it is free.
	if atomic.LoadUint64(t.keyAddr(home)) == emptyKey {
		atomic.StoreUint64(t.valAddr(home), val)
		atomic.StoreUint64(t.keyAddr(home), key)
		return true
	}
	tail, found := t.find(home, key)
	if found {
		// Revive an erased entry; fail on a live one.
		if atomic.LoadUint64(t.valAddr(tail)) != erasedVal {
			return false
		}
		atomic.StoreUint64(t.valAddr(tail), val)
		return true
	}
	// Scan forward from the tail for a free cell and splice it in. Cells
	// belong to whichever chain links them; claiming under our stripe lock
	// can race claims from other stripes, so claim with a CAS.
	for d := uint64(1); d < maxScan; d++ {
		cand := tail + d
		if atomic.LoadUint64(t.keyAddr(cand)) != emptyKey {
			continue
		}
		if !atomic.CompareAndSwapUint64(t.keyAddr(cand), emptyKey, key) {
			continue
		}
		atomic.StoreUint64(t.valAddr(cand), val)
		// Publish the link last: the value is in place before readers can
		// reach the cell through the chain. (Readers that guessed the cell
		// by key equality before the link existed still read a full value
		// because the value store precedes... the key claim does not; they
		// cannot guess the cell since probing is chain-based only.)
		link := t.nextAddr(tail)
		if tail == home {
			link = t.firstAddr(home)
		}
		atomic.StoreUint64(link, d)
		return true
	}
	return false
}

// Put implements baselines.Map.
func (t *Table) Put(key, val uint64) bool {
	if val == erasedVal {
		val = erasedVal - 1
	}
	home := t.hash(key) & t.mask
	mu := t.mu(home)
	mu.Lock()
	defer mu.Unlock()
	idx, found := t.find(home, key)
	if !found || atomic.LoadUint64(t.valAddr(idx)) == erasedVal {
		return false
	}
	atomic.StoreUint64(t.valAddr(idx), val)
	return true
}

// Delete implements baselines.Map: erases the value; the cell stays in its
// chain forever (no reclamation).
func (t *Table) Delete(key uint64) bool {
	home := t.hash(key) & t.mask
	mu := t.mu(home)
	mu.Lock()
	defer mu.Unlock()
	idx, found := t.find(home, key)
	if !found || atomic.LoadUint64(t.valAddr(idx)) == erasedVal {
		return false
	}
	atomic.StoreUint64(t.valAddr(idx), erasedVal)
	return true
}

var _ baselines.Map = (*Table)(nil)
