package leapfrog

import (
	"sync"
	"testing"

	"repro/internal/hashfn"
)

func TestChainWalk(t *testing.T) {
	m := New(64, hashfn.Modulo)
	// Force one chain: keys congruent mod 64.
	keys := []uint64{2, 66, 130, 194, 258}
	for _, k := range keys {
		if !m.Insert(k, k*10) {
			t.Fatalf("insert %d", k)
		}
	}
	for _, k := range keys {
		if v, ok := m.Get(k); !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
}

func TestErasedCellsStayInChain(t *testing.T) {
	m := New(64, hashfn.Modulo)
	keys := []uint64{3, 67, 131}
	for _, k := range keys {
		m.Insert(k, k)
	}
	// Delete the middle entry; the chain must still reach the tail.
	if !m.Delete(67) {
		t.Fatal("delete")
	}
	if _, ok := m.Get(67); ok {
		t.Fatal("erased key visible")
	}
	if v, ok := m.Get(131); !ok || v != 131 {
		t.Fatalf("tail lost after mid-chain erase: (%d,%v)", v, ok)
	}
	// Re-inserting the erased key revives the same cell.
	if !m.Insert(67, 670) {
		t.Fatal("revive failed")
	}
	if v, _ := m.Get(67); v != 670 {
		t.Fatalf("revived value = %d", v)
	}
}

func TestPutOnErasedFails(t *testing.T) {
	m := New(64, hashfn.WyHash)
	m.Insert(5, 50)
	m.Delete(5)
	if m.Put(5, 51) {
		t.Fatal("Put succeeded on an erased entry")
	}
}

func TestConcurrentDisjointChains(t *testing.T) {
	// 8000 keys need headroom: cells are never reclaimed in Leapfrog.
	m := New(1<<15, hashfn.WyHash)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 2000; i++ {
				k := base + i
				if !m.Insert(k, k) {
					t.Errorf("insert %d", k)
					return
				}
			}
			for i := uint64(1); i <= 2000; i++ {
				k := base + i
				if v, ok := m.Get(k); !ok || v != k {
					t.Errorf("get %d = (%d,%v)", k, v, ok)
					return
				}
			}
		}(uint64(w+1) << 40)
	}
	wg.Wait()
}
