package mica

import (
	"sync"
	"testing"

	"repro/internal/hashfn"
)

// MICA's defining property: values live out of line, so every Get pays a
// second access and every Insert/Delete an (de)allocation.
func TestValuesOutOfLine(t *testing.T) {
	m := New(64, hashfn.WyHash, 8)
	if !m.Insert(1, 100) {
		t.Fatal("insert")
	}
	before := m.values.Stats()
	if before.Allocs != 1 {
		t.Fatalf("allocs = %d, want 1 per insert", before.Allocs)
	}
	if v, ok := m.Get(1); !ok || v != 100 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if !m.Delete(1) {
		t.Fatal("delete")
	}
	after := m.values.Stats()
	if after.Frees != 1 {
		t.Fatalf("frees = %d, want 1 per delete (MICA reclaims)", after.Frees)
	}
}

func TestPutOverwritesOutOfLine(t *testing.T) {
	m := New(64, hashfn.WyHash, 8)
	m.Insert(2, 20)
	before := m.values.Stats().Allocs
	if !m.Put(2, 21) {
		t.Fatal("put")
	}
	if m.values.Stats().Allocs != before {
		t.Fatal("Put must update in place, not reallocate")
	}
	if v, _ := m.Get(2); v != 21 {
		t.Fatalf("v = %d", v)
	}
}

func TestLosslessBucketFull(t *testing.T) {
	m := New(1, hashfn.Modulo, 8) // rounds to 1 bucket, 7 entries
	inserted := 0
	for i := uint64(0); i < 20; i++ {
		if m.Insert(i, i) {
			inserted++
		}
	}
	if inserted != bucketEntries {
		t.Fatalf("lossless bucket took %d, want %d", inserted, bucketEntries)
	}
}

func TestSeqlockReadsUnderWriters(t *testing.T) {
	m := New(1<<8, hashfn.WyHash, 8)
	for i := uint64(0); i < 64; i++ {
		m.Insert(i, i<<32|i)
	}
	var wg sync.WaitGroup
	stopC := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopC:
				return
			default:
			}
			for i := uint64(0); i < 64; i++ {
				m.Put(i, i<<32|i) // rewrite the same value
			}
		}
	}()
	for round := 0; round < 20000; round++ {
		k := uint64(round % 64)
		if v, ok := m.Get(k); ok && v != k<<32|k {
			t.Fatalf("torn read: %#x", v)
		}
	}
	close(stopC)
	wg.Wait()
}
