// Package mica reproduces the CRCW store variant of MICA2 (Lim et al.,
// NSDI'14 / MICA2) as the DLHT paper evaluates it: closed addressing with
// lossless 7-entry buckets, a per-bucket version lock (seqlock — reads are
// optimistic, updates *block*), and values stored out of line so that every
// request costs at least two memory accesses plus (de)allocation on
// Inserts/Deletes. MICA prefetches both the bucket and the value in its
// batched path, which this skeleton mirrors via GetBatch. No resizing.
package mica

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/alloc"
	"repro/internal/baselines"
	"repro/internal/cpuops"
	"repro/internal/hashfn"
)

const bucketEntries = 7

// Bucket layout (16 words = 2 cache lines, as MICA2's 15-entry variant is
// scaled down): word 0 = version lock, word 1 = occupancy bitmap,
// words 2..15 = 7 × (key, value-ref).
const wordsPerBucket = 16

// Table is a MICA2-style store.
type Table struct {
	hash    hashfn.Func64
	words   []uint64
	mask    uint64
	values  alloc.Allocator
	valSize int
}

// New creates a table with at least the given bucket count (rounded to a
// power of two). valSize is the out-of-line value size in bytes (≥8).
func New(buckets uint64, hash hashfn.Kind, valSize int) *Table {
	n := uint64(1)
	for n < buckets {
		n <<= 1
	}
	if valSize < 8 {
		valSize = 8
	}
	return &Table{
		hash:    hashfn.For64(hash),
		words:   cpuops.AlignedUint64s(int(n)*wordsPerBucket, 64),
		mask:    n - 1,
		values:  alloc.NewArena(),
		valSize: valSize,
	}
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "MICA" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "closed",
		LockFreeGets:     true, // optimistic seqlock reads
		Puts:             "blocking",
		Inserts:          "blocking",
		DeletesReclaim:   true,
		DeletesSupported: true,
		Resizable:        false,
		Prefetching:      true,
		Inlined:          false, // the defining MICA handicap in Figs 3/5/6
	}
}

func (t *Table) bucket(key uint64) uint64 {
	return (t.hash(key) & t.mask) * wordsPerBucket
}

// lock spins until it owns the bucket's version lock (odd = locked).
func (t *Table) lock(b uint64) uint64 {
	for {
		v := atomic.LoadUint64(&t.words[b])
		if v&1 == 0 && atomic.CompareAndSwapUint64(&t.words[b], v, v+1) {
			return v + 1
		}
		runtime.Gosched()
	}
}

func (t *Table) unlock(b uint64) {
	atomic.AddUint64(&t.words[b], 1)
}

// Get implements baselines.Map: optimistic read of the index entry, then a
// second memory access to fetch the value bytes.
func (t *Table) Get(key uint64) (uint64, bool) {
	b := t.bucket(key)
	for {
		v1 := atomic.LoadUint64(&t.words[b])
		if v1&1 == 1 {
			runtime.Gosched()
			continue
		}
		bitmap := atomic.LoadUint64(&t.words[b+1])
		var ref alloc.Ref
		found := false
		for i := 0; i < bucketEntries; i++ {
			if bitmap&(1<<uint(i)) == 0 {
				continue
			}
			if atomic.LoadUint64(&t.words[b+2+uint64(i)*2]) == key {
				ref = alloc.Ref(atomic.LoadUint64(&t.words[b+3+uint64(i)*2]))
				found = true
				break
			}
		}
		if atomic.LoadUint64(&t.words[b]) != v1 {
			continue
		}
		if !found {
			return 0, false
		}
		// Second access: dereference the value store.
		val := leU64(t.values.Bytes(ref, 8))
		if atomic.LoadUint64(&t.words[b]) != v1 {
			continue // value freed/reused under us; retry
		}
		return val, true
	}
}

// Insert implements baselines.Map: takes the bucket lock (blocking updates)
// and allocates the out-of-line value.
func (t *Table) Insert(key, val uint64) bool {
	b := t.bucket(key)
	t.lock(b)
	defer t.unlock(b)
	bitmap := t.words[b+1]
	free := -1
	for i := 0; i < bucketEntries; i++ {
		if bitmap&(1<<uint(i)) == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		if t.words[b+2+uint64(i)*2] == key {
			return false
		}
	}
	if free < 0 {
		return false // lossless mode: bucket full, no eviction, no resize
	}
	ref, bytes := t.values.Alloc(t.valSize)
	putU64(bytes, val)
	atomic.StoreUint64(&t.words[b+2+uint64(free)*2], key)
	atomic.StoreUint64(&t.words[b+3+uint64(free)*2], uint64(ref))
	atomic.StoreUint64(&t.words[b+1], bitmap|1<<uint(free))
	return true
}

// Put implements baselines.Map: blocking in-place value overwrite.
func (t *Table) Put(key, val uint64) bool {
	b := t.bucket(key)
	t.lock(b)
	defer t.unlock(b)
	bitmap := t.words[b+1]
	for i := 0; i < bucketEntries; i++ {
		if bitmap&(1<<uint(i)) == 0 || t.words[b+2+uint64(i)*2] != key {
			continue
		}
		ref := alloc.Ref(t.words[b+3+uint64(i)*2])
		putU64(t.values.Bytes(ref, 8), val)
		return true
	}
	return false
}

// Delete implements baselines.Map: blocking, frees the value slot — MICA's
// deletes reclaim but pay the deallocation (§5.1.2).
func (t *Table) Delete(key uint64) bool {
	b := t.bucket(key)
	t.lock(b)
	defer t.unlock(b)
	bitmap := t.words[b+1]
	for i := 0; i < bucketEntries; i++ {
		if bitmap&(1<<uint(i)) == 0 || t.words[b+2+uint64(i)*2] != key {
			continue
		}
		ref := alloc.Ref(t.words[b+3+uint64(i)*2])
		atomic.StoreUint64(&t.words[b+1], bitmap&^(1<<uint(i)))
		t.values.Free(ref)
		return true
	}
	return false
}

// GetBatch implements baselines.Batcher: prefetch all buckets, then execute
// in order (MICA batches but does not reorder).
func (t *Table) GetBatch(keys []uint64, vals []uint64, oks []bool) {
	for _, k := range keys {
		b := t.bucket(k)
		cpuops.PrefetchUint64(&t.words[b])
	}
	for i, k := range keys {
		vals[i], oks[i] = t.Get(k)
	}
}

// Value words are read optimistically (seqlock-validated) while locked Puts
// overwrite them, so the accesses must be atomic: arena blocks are 16-byte
// aligned, making the word cast safe.
func leU64(b []byte) uint64 {
	if len(b) < 8 {
		panic("mica: short value block")
	}
	return atomic.LoadUint64((*uint64)(unsafe.Pointer(&b[0])))
}

func putU64(b []byte, v uint64) {
	if len(b) < 8 {
		panic("mica: short value block")
	}
	atomic.StoreUint64((*uint64)(unsafe.Pointer(&b[0])), v)
}

var (
	_ baselines.Map     = (*Table)(nil)
	_ baselines.Batcher = (*Table)(nil)
)
