package cuckoo

import (
	"sync"
	"testing"

	"repro/internal/hashfn"
)

func TestTwoChoicePlacement(t *testing.T) {
	m := New(64, hashfn.WyHash)
	for i := uint64(1); i <= 200; i++ {
		if !m.Insert(i, i*3) {
			t.Fatalf("insert %d", i)
		}
	}
	for i := uint64(1); i <= 200; i++ {
		if v, ok := m.Get(i); !ok || v != i*3 {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestEvictionMakesRoom(t *testing.T) {
	// Small table: inserts beyond the direct home-bucket capacity must
	// displace entries along BFS paths instead of failing early.
	m := New(16, hashfn.WyHash)
	inserted := uint64(0)
	for i := uint64(1); i <= 200; i++ {
		if !m.Insert(i, i) {
			break
		}
		inserted++
	}
	// 16 rounds to 16 buckets × 4 slots = 64 slots; cuckoo typically
	// reaches >80 % fill with two choices + eviction.
	if inserted < 40 {
		t.Fatalf("only %d inserts before failure; eviction not working", inserted)
	}
	for i := uint64(1); i <= inserted; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("key %d lost during evictions", i)
		}
	}
}

func TestDeleteReclaims(t *testing.T) {
	m := New(16, hashfn.WyHash)
	var keys []uint64
	for i := uint64(1); ; i++ {
		if !m.Insert(i, i) {
			break
		}
		keys = append(keys, i)
	}
	// Free one slot; the next insert must succeed again.
	if !m.Delete(keys[0]) {
		t.Fatal("delete")
	}
	if !m.Insert(1_000_003, 1) {
		t.Fatal("insert after delete failed; slot not reclaimed")
	}
}

func TestConcurrentStripedLocking(t *testing.T) {
	m := New(1<<10, hashfn.WyHash)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 1500; i++ {
				k := base + i
				if !m.Insert(k, k) {
					t.Errorf("insert %d", k)
					return
				}
				if v, ok := m.Get(k); !ok || v != k {
					t.Errorf("get %d", k)
					return
				}
				if i%2 == 0 && !m.Delete(k) {
					t.Errorf("delete %d", k)
					return
				}
			}
		}(uint64(w+1) << 32)
	}
	wg.Wait()
}
