// Package cuckoo reproduces a libcuckoo-style concurrent cuckoo hash map
// (Fan et al., MemC3/libcuckoo): two hash choices over 4-slot buckets,
// fine-grained striped spinlocks, and BFS path eviction on insert. The DLHT
// paper groups it with the designs that "mandate more than one memory
// access and do not use prefetching" (two bucket probes per Get), keeping
// it under 250 M req/s in Figure 3. Fixed size: inserts fail when no
// eviction path exists.
package cuckoo

import (
	"sync"

	"repro/internal/baselines"
	"repro/internal/hashfn"
)

const (
	slotsPerBucket = 4
	maxBFSDepth    = 5
	lockStripes    = 1 << 12
)

type bucket struct {
	occupied [slotsPerBucket]bool
	keys     [slotsPerBucket]uint64
	vals     [slotsPerBucket]uint64
}

// Table is a concurrent cuckoo map.
type Table struct {
	h1, h2  hashfn.Func64
	buckets []bucket
	mask    uint64
	locks   [lockStripes]sync.Mutex
	// evictMu serializes path evictions; libcuckoo locks per path, but
	// eviction frequency at benchmark loads is low enough that the
	// simplification does not change the comparative shape.
	evictMu sync.Mutex
}

// New creates a cuckoo map with at least the given bucket count.
func New(buckets uint64, hash hashfn.Kind) *Table {
	n := uint64(16)
	for n < buckets {
		n <<= 1
	}
	base := hashfn.For64(hash)
	return &Table{
		h1:      base,
		h2:      func(k uint64) uint64 { return hashfn.Murmur3Fmix64(base(k) ^ 0x5bd1e995) },
		buckets: make([]bucket, n),
		mask:    n - 1,
	}
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "Cuckoo" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "open",
		LockFreeGets:     false,
		Puts:             "blocking",
		Inserts:          "blocking",
		DeletesReclaim:   true,
		DeletesSupported: true,
		Resizable:        false,
		Inlined:          true,
	}
}

func (t *Table) lockPair(b1, b2 uint64) (*sync.Mutex, *sync.Mutex) {
	l1 := &t.locks[b1&(lockStripes-1)]
	l2 := &t.locks[b2&(lockStripes-1)]
	if l1 == l2 {
		l1.Lock()
		return l1, nil
	}
	// Lock in address order to avoid deadlock.
	if b1&(lockStripes-1) < b2&(lockStripes-1) {
		l1.Lock()
		l2.Lock()
	} else {
		l2.Lock()
		l1.Lock()
	}
	return l1, l2
}

func unlockPair(l1, l2 *sync.Mutex) {
	l1.Unlock()
	if l2 != nil {
		l2.Unlock()
	}
}

// Get implements baselines.Map: two bucket probes under stripe locks.
func (t *Table) Get(key uint64) (uint64, bool) {
	b1 := t.h1(key) & t.mask
	b2 := t.h2(key) & t.mask
	l1, l2 := t.lockPair(b1, b2)
	defer unlockPair(l1, l2)
	for _, b := range []uint64{b1, b2} {
		bk := &t.buckets[b]
		for i := 0; i < slotsPerBucket; i++ {
			if bk.occupied[i] && bk.keys[i] == key {
				return bk.vals[i], true
			}
		}
	}
	return 0, false
}

// Insert implements baselines.Map with BFS path eviction.
func (t *Table) Insert(key, val uint64) bool {
	for attempt := 0; attempt < 2; attempt++ {
		b1 := t.h1(key) & t.mask
		b2 := t.h2(key) & t.mask
		l1, l2 := t.lockPair(b1, b2)
		exists := false
		inserted := false
		for _, b := range []uint64{b1, b2} {
			bk := &t.buckets[b]
			for i := 0; i < slotsPerBucket; i++ {
				if bk.occupied[i] && bk.keys[i] == key {
					exists = true
				}
			}
		}
		if !exists {
			for _, b := range []uint64{b1, b2} {
				bk := &t.buckets[b]
				for i := 0; i < slotsPerBucket && !inserted; i++ {
					if !bk.occupied[i] {
						bk.occupied[i] = true
						bk.keys[i] = key
						bk.vals[i] = val
						inserted = true
					}
				}
				if inserted {
					break
				}
			}
		}
		unlockPair(l1, l2)
		if exists {
			return false
		}
		if inserted {
			return true
		}
		// Both home buckets full: evict along a BFS path. Simplified global
		// mutex for the displacement (evictions are rare at sane loads).
		if !t.evict(key) {
			return false
		}
	}
	return false
}

func (t *Table) evict(key uint64) bool {
	t.evictMu.Lock()
	defer t.evictMu.Unlock()
	// BFS from both home buckets for a bucket with a free slot.
	start1 := t.h1(key) & t.mask
	start2 := t.h2(key) & t.mask
	queue := []pathNode{{start1, -1, -1}, {start2, -1, -1}}
	visited := map[uint64]bool{start1: true, start2: true}
	for qi := 0; qi < len(queue) && qi < 1<<maxBFSDepth; qi++ {
		n := queue[qi]
		l := &t.locks[n.bucket&(lockStripes-1)]
		l.Lock()
		bk := &t.buckets[n.bucket]
		freeSlot := -1
		var keys [slotsPerBucket]uint64
		for i := 0; i < slotsPerBucket; i++ {
			if !bk.occupied[i] {
				freeSlot = i
				break
			}
			keys[i] = bk.keys[i]
		}
		l.Unlock()
		if freeSlot >= 0 {
			// Walk the parent chain, moving one entry per hop.
			t.shuffle(queue, qi, freeSlot)
			return true
		}
		for i := 0; i < slotsPerBucket; i++ {
			k := keys[i]
			alt := t.h1(k) & t.mask
			if alt == n.bucket {
				alt = t.h2(k) & t.mask
			}
			if !visited[alt] {
				visited[alt] = true
				queue = append(queue, pathNode{alt, qi, i})
			}
		}
	}
	return false
}

// pathNode is one step of the BFS eviction search.
type pathNode struct {
	bucket uint64
	parent int
	slot   int
}

// shuffle moves entries backwards along the BFS path, freeing a slot in one
// of the target key's home buckets.
func (t *Table) shuffle(queue []pathNode, leaf, freeSlot int) {
	for cur := leaf; queue[cur].parent >= 0; {
		p := queue[cur].parent
		slotInParent := queue[cur].slot
		lp := &t.locks[queue[p].bucket&(lockStripes-1)]
		lc := &t.locks[queue[cur].bucket&(lockStripes-1)]
		if lp != lc {
			if queue[p].bucket&(lockStripes-1) < queue[cur].bucket&(lockStripes-1) {
				lp.Lock()
				lc.Lock()
			} else {
				lc.Lock()
				lp.Lock()
			}
		} else {
			lp.Lock()
		}
		pb := &t.buckets[queue[p].bucket]
		cb := &t.buckets[queue[cur].bucket]
		if pb.occupied[slotInParent] && !cb.occupied[freeSlot] {
			cb.occupied[freeSlot] = true
			cb.keys[freeSlot] = pb.keys[slotInParent]
			cb.vals[freeSlot] = pb.vals[slotInParent]
			pb.occupied[slotInParent] = false
		}
		lp.Unlock()
		if lp != lc {
			lc.Unlock()
		}
		freeSlot = slotInParent
		cur = p
	}
}

// Put implements baselines.Map.
func (t *Table) Put(key, val uint64) bool {
	b1 := t.h1(key) & t.mask
	b2 := t.h2(key) & t.mask
	l1, l2 := t.lockPair(b1, b2)
	defer unlockPair(l1, l2)
	for _, b := range []uint64{b1, b2} {
		bk := &t.buckets[b]
		for i := 0; i < slotsPerBucket; i++ {
			if bk.occupied[i] && bk.keys[i] == key {
				bk.vals[i] = val
				return true
			}
		}
	}
	return false
}

// Delete implements baselines.Map: cuckoo deletes reclaim slots.
func (t *Table) Delete(key uint64) bool {
	b1 := t.h1(key) & t.mask
	b2 := t.h2(key) & t.mask
	l1, l2 := t.lockPair(b1, b2)
	defer unlockPair(l1, l2)
	for _, b := range []uint64{b1, b2} {
		bk := &t.buckets[b]
		for i := 0; i < slotsPerBucket; i++ {
			if bk.occupied[i] && bk.keys[i] == key {
				bk.occupied[i] = false
				return true
			}
		}
	}
	return false
}

var _ baselines.Map = (*Table)(nil)
