// Package clht reproduces the lock-free variant of CLHT (Cache-Line Hash
// Table, David/Guerraoui/Trigonakis, ASPLOS'15) as evaluated by the DLHT
// paper: closed addressing with exactly one 64-byte bucket per bin, three
// in-line key-value slots, no chaining, no Puts, and a serial *blocking*
// resize triggered as soon as any bucket overflows. The paper's Table 1
// attributes CLHT's 1–5 % occupancy-at-resize to the missing chaining, and
// Figure 7's population collapse to the single-threaded blocking resize —
// both behaviours this skeleton preserves.
package clht

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/baselines"
	"repro/internal/cpuops"
	"repro/internal/hashfn"
)

const slotsPerBucket = 3

// Bucket word layout (8 words = 64 B):
//
//	word 0: header — 32-bit version | 3×2-bit slot states
//	words 1..6: three (key, value) slots
//	word 7: padding
const wordsPerBucket = 8

const (
	stateEmpty uint64 = 0
	stateValid uint64 = 2
)

// Table is a lock-free CLHT instance.
type Table struct {
	hash hashfn.Func64

	// cur points at the active bucket array; swapped on resize.
	cur atomic.Pointer[generation]

	// resizeMu serializes the (blocking, single-threaded) resize, and the
	// resizing flag stalls every operation while a resize runs, matching
	// the paper's "Serial, Blocking" classification. The striped active
	// counters let the resizer wait out in-flight operations before it
	// copies (stop-the-world quiescence).
	resizeMu sync.Mutex
	resizing atomic.Bool
	resizes  atomic.Uint64
	active   [64]paddedCounter
}

type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

type generation struct {
	words []uint64
	mask  uint64 // power-of-two buckets
}

func newGeneration(buckets uint64) *generation {
	return &generation{
		words: cpuops.AlignedUint64s(int(buckets)*wordsPerBucket, 64),
		mask:  buckets - 1,
	}
}

// New creates a CLHT with at least the given number of buckets (rounded up
// to a power of two).
func New(buckets uint64, hash hashfn.Kind) *Table {
	n := uint64(1)
	for n < buckets {
		n <<= 1
	}
	t := &Table{hash: hashfn.For64(hash)}
	t.cur.Store(newGeneration(n))
	return t
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "CLHT" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "closed",
		LockFreeGets:     true,
		Puts:             "none",
		Inserts:          "lock-free",
		DeletesReclaim:   true,
		DeletesSupported: true,
		Resizable:        true,
		Inlined:          true,
	}
}

// Resizes reports completed resizes (for the population experiment).
func (t *Table) Resizes() uint64 { return t.resizes.Load() }

func slotState(hdr uint64, i int) uint64 { return (hdr >> (2 * uint(i))) & 3 }

func withSlotState(hdr uint64, i int, s uint64) uint64 {
	sh := 2 * uint(i)
	return (hdr &^ (uint64(3) << sh)) | s<<sh
}

func bumpVersion(hdr uint64) uint64 {
	return hdr&0xffffffff | uint64(uint32(hdr>>32)+1)<<32
}

// enter registers an in-flight operation (striped by key to limit
// contention) and returns the active generation. exit must follow.
func (t *Table) enter(key uint64) (*generation, *atomic.Int64) {
	s := &t.active[key&63].v
	for {
		for t.resizing.Load() {
			runtime.Gosched()
		}
		s.Add(1)
		if !t.resizing.Load() {
			return t.cur.Load(), s
		}
		s.Add(-1)
	}
}

// Get implements baselines.Map: version-validated lock-free read.
func (t *Table) Get(key uint64) (uint64, bool) {
	g, s := t.enter(key)
	defer s.Add(-1)
	for {
		b := (t.hash(key) & g.mask) * wordsPerBucket
		hdr := atomic.LoadUint64(&g.words[b])
		found := false
		var val uint64
		for i := 0; i < slotsPerBucket; i++ {
			if slotState(hdr, i) != stateValid {
				continue
			}
			k := atomic.LoadUint64(&g.words[b+1+uint64(i)*2])
			if k != key {
				continue
			}
			val = atomic.LoadUint64(&g.words[b+2+uint64(i)*2])
			found = true
			break
		}
		if atomic.LoadUint64(&g.words[b]) == hdr {
			return val, found
		}
	}
}

// Insert implements baselines.Map. Two-step header-CAS insert as in CLHT.
func (t *Table) Insert(key, val uint64) bool {
	for {
		g, s := t.enter(key)
		ok, done := t.insertOnce(g, key, val)
		s.Add(-1)
		if done {
			return ok
		}
		// Bucket overflow: resize (with the counter released so the
		// quiescence wait cannot deadlock on ourselves), then retry.
		t.resize(g)
	}
}

// insertOnce attempts the insert in generation g; done=false signals the
// caller to trigger a resize and retry.
func (t *Table) insertOnce(g *generation, key, val uint64) (ok, done bool) {
	for {
		b := (t.hash(key) & g.mask) * wordsPerBucket
		hdr := atomic.LoadUint64(&g.words[b])
		free := -1
		for i := 0; i < slotsPerBucket; i++ {
			st := slotState(hdr, i)
			if st == stateValid {
				if atomic.LoadUint64(&g.words[b+1+uint64(i)*2]) == key {
					if atomic.LoadUint64(&g.words[b]) != hdr {
						continue
					}
					return false, true // exists
				}
			} else if st == stateEmpty && free < 0 {
				free = i
			}
		}
		if atomic.LoadUint64(&g.words[b]) != hdr {
			continue
		}
		if free < 0 {
			// No chaining: any fourth colliding key forces a full resize —
			// the root cause of CLHT's 1–5 % occupancy in §5.1.5.
			return false, false
		}
		claim := bumpVersion(withSlotState(hdr, free, 1 /* busy */))
		if !atomic.CompareAndSwapUint64(&g.words[b], hdr, claim) {
			continue
		}
		atomic.StoreUint64(&g.words[b+1+uint64(free)*2], key)
		atomic.StoreUint64(&g.words[b+2+uint64(free)*2], val)
		for {
			h2 := atomic.LoadUint64(&g.words[b])
			if atomic.CompareAndSwapUint64(&g.words[b], h2, bumpVersion(withSlotState(h2, free, stateValid))) {
				return true, true
			}
		}
	}
}

// Put implements baselines.Map: CLHT-LF offers no Puts (Table 1).
func (t *Table) Put(key, val uint64) bool { return false }

// Delete implements baselines.Map: slot reclaimed instantly.
func (t *Table) Delete(key uint64) bool {
	g, s := t.enter(key)
	defer s.Add(-1)
	for {
		b := (t.hash(key) & g.mask) * wordsPerBucket
		hdr := atomic.LoadUint64(&g.words[b])
		for i := 0; i < slotsPerBucket; i++ {
			if slotState(hdr, i) != stateValid {
				continue
			}
			if atomic.LoadUint64(&g.words[b+1+uint64(i)*2]) != key {
				continue
			}
			if atomic.CompareAndSwapUint64(&g.words[b], hdr, bumpVersion(withSlotState(hdr, i, stateEmpty))) {
				return true
			}
			break // header moved; rescan
		}
		if atomic.LoadUint64(&g.words[b]) == hdr {
			return false
		}
	}
}

// resize performs CLHT's serial blocking migration: one thread stops the
// world, copies every live slot into a table twice the size, and swaps the
// pointer. Concurrent threads spin in waitNotResizing the whole time.
func (t *Table) resize(old *generation) {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	if t.cur.Load() != old {
		return // someone already resized
	}
	t.resizing.Store(true)
	defer t.resizing.Store(false)
	// Quiescence: wait for every in-flight operation to drain.
	for i := range t.active {
		for t.active[i].v.Load() != 0 {
			runtime.Gosched()
		}
	}

	newBuckets := (old.mask + 1) * 2
	for {
		ng := newGeneration(newBuckets)
		if t.copyAll(old, ng) {
			t.cur.Store(ng)
			t.resizes.Add(1)
			return
		}
		// A bucket overflowed even in the bigger table; double again.
		newBuckets *= 2
	}
}

// copyAll moves every valid slot; single-threaded, no synchronization
// needed because all operations are stalled.
func (t *Table) copyAll(old, ng *generation) bool {
	for b := uint64(0); b <= old.mask; b++ {
		base := b * wordsPerBucket
		hdr := old.words[base]
		for i := 0; i < slotsPerBucket; i++ {
			if slotState(hdr, i) != stateValid {
				continue
			}
			k := old.words[base+1+uint64(i)*2]
			v := old.words[base+2+uint64(i)*2]
			nb := (t.hash(k) & ng.mask) * wordsPerBucket
			nhdr := ng.words[nb]
			free := -1
			for j := 0; j < slotsPerBucket; j++ {
				if slotState(nhdr, j) == stateEmpty {
					free = j
					break
				}
			}
			if free < 0 {
				return false
			}
			ng.words[nb] = withSlotState(nhdr, free, stateValid)
			ng.words[nb+1+uint64(free)*2] = k
			ng.words[nb+2+uint64(free)*2] = v
		}
	}
	return true
}

var _ baselines.Map = (*Table)(nil)

// Occupancy reports live slots over total slot capacity of the current
// generation — the §5.1.5 metric. CLHT's inability to chain keeps this in
// the paper's 1–5 % band at the moment a resize triggers.
func (t *Table) Occupancy() (occupied, capacity uint64) {
	g := t.cur.Load()
	for b := uint64(0); b <= g.mask; b++ {
		hdr := atomic.LoadUint64(&g.words[b*wordsPerBucket])
		for i := 0; i < slotsPerBucket; i++ {
			if slotState(hdr, i) == stateValid {
				occupied++
			}
		}
	}
	return occupied, (g.mask + 1) * slotsPerBucket
}
