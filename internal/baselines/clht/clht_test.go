package clht

import (
	"sync"
	"testing"

	"repro/internal/hashfn"
)

func TestBucketOverflowForcesResize(t *testing.T) {
	m := New(1, hashfn.Modulo) // single bucket
	// Three slots fit; the fourth colliding insert must resize.
	for i := uint64(0); i < 3; i++ {
		if !m.Insert(i, i) {
			t.Fatalf("insert %d", i)
		}
	}
	if m.Resizes() != 0 {
		t.Fatal("premature resize")
	}
	if !m.Insert(3, 3) {
		t.Fatal("insert 3 failed")
	}
	if m.Resizes() == 0 {
		t.Fatal("fourth colliding insert did not resize")
	}
	for i := uint64(0); i < 4; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = (%d,%v) after resize", i, v, ok)
		}
	}
}

func TestOccupancyLowAtResize(t *testing.T) {
	m := New(1<<8, hashfn.WyHash)
	maxOcc := 0.0
	for k := uint64(0); m.Resizes() == 0; k++ {
		m.Insert(k, k)
		occ, cap := m.Occupancy()
		if f := float64(occ) / float64(cap); f > maxOcc {
			maxOcc = f
		}
	}
	// No chaining: a resize triggers long before the table fills — the
	// §5.1.5 phenomenon (paper band 1-5% at 67M bins; small tables land
	// higher but far below DLHT's 60%+).
	if maxOcc > 0.35 {
		t.Fatalf("occupancy at resize %.2f too high for a chainless design", maxOcc)
	}
}

func TestDeleteReclaimsInPlace(t *testing.T) {
	m := New(1, hashfn.Modulo)
	m.Insert(1, 1)
	m.Insert(2, 2)
	m.Insert(3, 3)
	before := m.Resizes()
	if !m.Delete(2) {
		t.Fatal("delete")
	}
	// The freed slot absorbs the next colliding insert without a resize.
	if !m.Insert(4, 4) {
		t.Fatal("insert into reclaimed slot")
	}
	if m.Resizes() != before {
		t.Fatal("insert into reclaimed slot still resized")
	}
}

func TestNoPuts(t *testing.T) {
	m := New(16, hashfn.Modulo)
	m.Insert(1, 1)
	if m.Put(1, 2) {
		t.Fatal("CLHT-LF must not support Puts (Table 1)")
	}
	if v, _ := m.Get(1); v != 1 {
		t.Fatal("Put mutated a value")
	}
}

func TestConcurrentInsertsAcrossBlockingResizes(t *testing.T) {
	m := New(4, hashfn.WyHash)
	var wg sync.WaitGroup
	const per = 3000
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				if !m.Insert(base+i, base+i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
		}(uint64(w+1) << 32)
	}
	wg.Wait()
	if m.Resizes() == 0 {
		t.Fatal("no resizes exercised")
	}
	for w := 0; w < 4; w++ {
		base := uint64(w+1) << 32
		for i := uint64(0); i < per; i++ {
			if v, ok := m.Get(base + i); !ok || v != base+i {
				t.Fatalf("Get(%d) = (%d,%v)", base+i, v, ok)
			}
		}
	}
}
