// Package dramhit reproduces the DRAMHiT skeleton (Narayanan et al.,
// EuroSys'23) as the DLHT paper characterizes it: an inlined open-addressing
// map that combines frugal memory accesses with software prefetching, but
// offers only upserts (a "Put" may silently insert, an "Insert" may silently
// update), cannot resize, and cannot reclaim deleted slots. Its batched path
// *reorders* requests to maximize memory-level parallelism — the behaviour
// that can deadlock lock managers (§5.3.3).
package dramhit

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/baselines"
	"repro/internal/cpuops"
	"repro/internal/hashfn"
)

const (
	emptyKey     = ^uint64(0)
	tombstoneKey = ^uint64(0) - 1
	maxProbes    = 4096
)

// Table is a DRAMHiT-style map.
type Table struct {
	hash  hashfn.Func64
	cells []uint64
	mask  uint64
}

// New creates a table with at least the given cell count.
func New(cells uint64, hash hashfn.Kind) *Table {
	n := uint64(16)
	for n < cells {
		n <<= 1
	}
	t := &Table{
		hash:  hashfn.For64(hash),
		cells: cpuops.AlignedUint64s(int(n)*2, 64),
		mask:  n - 1,
	}
	for i := range t.cells {
		if i%2 == 0 {
			t.cells[i] = emptyKey
		}
	}
	return t
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "DRAMHiT" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "open",
		LockFreeGets:     true,
		Puts:             "upsert-only",
		Inserts:          "upsert-only",
		DeletesReclaim:   false,
		DeletesSupported: false,
		Resizable:        false,
		Prefetching:      true,
		Inlined:          true,
	}
}

func (t *Table) cell(i uint64) *[2]uint64 {
	return (*[2]uint64)(unsafe.Pointer(&t.cells[(i&t.mask)*2]))
}

// Get implements baselines.Map.
func (t *Table) Get(key uint64) (uint64, bool) {
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := t.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == emptyKey {
			return 0, false
		}
		if k == key {
			return atomic.LoadUint64(&c[1]), true
		}
	}
	return 0, false
}

// upsert inserts or updates; DRAMHiT cannot express a pure Insert or Put
// (§2.2: "an application cannot express a pure Put or Insert").
func (t *Table) upsert(key, val uint64) bool {
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := t.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == key {
			atomic.StoreUint64(&c[1], val) // silent update
			return true
		}
		if k == emptyKey {
			if cpuops.CompareAndSwap128(c, emptyKey, 0, key, val) {
				return true // silent insert
			}
			p--
		}
	}
	return false
}

// Insert implements baselines.Map via upsert semantics.
func (t *Table) Insert(key, val uint64) bool { return t.upsert(key, val) }

// Put implements baselines.Map via upsert semantics.
func (t *Table) Put(key, val uint64) bool { return t.upsert(key, val) }

// Delete implements baselines.Map: unsupported with reclamation; tombstone
// only so probe chains survive.
func (t *Table) Delete(key uint64) bool {
	h := t.hash(key)
	for p := uint64(0); p < maxProbes; p++ {
		c := t.cell(h + p)
		k := atomic.LoadUint64(&c[0])
		if k == emptyKey {
			return false
		}
		if k != key {
			continue
		}
		v := atomic.LoadUint64(&c[1])
		if cpuops.CompareAndSwap128(c, key, v, tombstoneKey, 0) {
			return true
		}
		p--
	}
	return false
}

// GetBatch implements baselines.Batcher. DRAMHiT's asynchronous engine
// processes requests in the order that maximizes overlap, not the order the
// client issued: this skeleton sorts the batch by home cell (the in-memory
// analogue of its queue partitioning), prefetches, executes in sorted
// order, and scatters results back. Results are positionally correct but
// side-effect ordering is NOT preserved — by design.
func (t *Table) GetBatch(keys []uint64, vals []uint64, oks []bool) {
	type req struct {
		idx  int
		home uint64
	}
	var buf [128]req
	var reqs []req
	if len(keys) <= len(buf) {
		reqs = buf[:len(keys)]
	} else {
		reqs = make([]req, len(keys))
	}
	for i, k := range keys {
		reqs[i] = req{i, t.hash(k) & t.mask}
	}
	// Insertion sort by home cell: batches are small (≤128) and this stays
	// allocation free, standing in for DRAMHiT's queue partitioning.
	for i := 1; i < len(reqs); i++ {
		r := reqs[i]
		j := i - 1
		for j >= 0 && reqs[j].home > r.home {
			reqs[j+1] = reqs[j]
			j--
		}
		reqs[j+1] = r
	}
	for _, r := range reqs {
		cpuops.PrefetchUint64(&t.cells[r.home*2])
	}
	for _, r := range reqs {
		vals[r.idx], oks[r.idx] = t.Get(keys[r.idx])
	}
}

var (
	_ baselines.Map     = (*Table)(nil)
	_ baselines.Batcher = (*Table)(nil)
)
