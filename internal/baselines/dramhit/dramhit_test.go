package dramhit

import (
	"testing"

	"repro/internal/hashfn"
)

// DRAMHiT cannot express a pure Insert or Put (§2.2): both silently upsert.
func TestUpsertSemantics(t *testing.T) {
	m := New(256, hashfn.WyHash)
	if !m.Insert(1, 10) {
		t.Fatal("first insert")
	}
	// "Insert" of an existing key silently updates.
	if !m.Insert(1, 11) {
		t.Fatal("upsert-insert refused")
	}
	if v, _ := m.Get(1); v != 11 {
		t.Fatalf("v = %d, want 11 (silent update)", v)
	}
	// "Put" of a missing key silently inserts.
	if !m.Put(2, 20) {
		t.Fatal("upsert-put refused")
	}
	if v, ok := m.Get(2); !ok || v != 20 {
		t.Fatalf("silent insert missing: (%d,%v)", v, ok)
	}
}

// The batch engine reorders execution (by home cell) while keeping results
// positionally correct — the §5.3.3 hazard for lock managers.
func TestBatchReordersInternally(t *testing.T) {
	m := New(1<<12, hashfn.WyHash)
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i + 1)
		m.Insert(keys[i], uint64(i)*7)
	}
	vals := make([]uint64, len(keys))
	oks := make([]bool, len(keys))
	m.GetBatch(keys, vals, oks)
	// Results must be positionally correct regardless of internal order.
	for i := range keys {
		if !oks[i] || vals[i] != uint64(i)*7 {
			t.Fatalf("result %d = (%d,%v)", i, vals[i], oks[i])
		}
	}
	// Homes of the submitted keys are NOT monotonically increasing: the
	// engine must have reordered to sort them. (Sanity that the test even
	// exercises reordering.)
	monotonic := true
	prev := uint64(0)
	for i, k := range keys {
		home := hashfn.WyHash64(k) & (1<<12*4 - 1)
		if i > 0 && home < prev {
			monotonic = false
			break
		}
		prev = home
	}
	if monotonic {
		t.Skip("keys happened to be home-sorted; reordering not observable")
	}
}

func TestDeleteTombstonesDoNotBreakChains(t *testing.T) {
	m := New(16, hashfn.Modulo)
	keys := []uint64{1, 17, 33}
	for _, k := range keys {
		m.Insert(k, k)
	}
	m.Delete(17)
	for _, k := range []uint64{1, 33} {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("key %d lost after mid-chain tombstone", k)
		}
	}
}
