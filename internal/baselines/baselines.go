// Package baselines defines the common interface for the eight
// state-of-the-art concurrent hashtables the DLHT paper evaluates against
// (Table 3): CLHT, MICA, GrowT, Folly, DRAMHiT, Cuckoo, Leapfrog and TBB.
//
// Each baseline is re-implemented from its published algorithm as a
// faithful skeleton: same addressing scheme, same delete policy (tombstones
// vs reclamation), same resize discipline (blocking / parallel / absent),
// same locking structure. The goal is that comparative results are
// attributable to the algorithm class, exactly as in the paper's §5.1.
package baselines

// Map is the uniform benchmark surface. Implementations whose original
// design lacks an operation return false / no-op and say so in Features.
type Map interface {
	// Name is the display name used in figures ("GrowT", "CLHT", ...).
	Name() string
	// Get returns the value for key.
	Get(key uint64) (uint64, bool)
	// Insert adds key→val; false when the key exists or the table is full.
	Insert(key, val uint64) bool
	// Put overwrites an existing key (or upserts, per design); false when
	// unsupported or the key is missing.
	Put(key, val uint64) bool
	// Delete removes key; false when missing or unsupported.
	Delete(key uint64) bool
	// Features describes the design for the paper's Table 1.
	Features() Features
}

// Batcher is implemented by designs with a batched/prefetched path (MICA,
// DRAMHiT). GetBatch performs the lookups — possibly out of order for
// DRAMHiT — writing results positionally.
type Batcher interface {
	GetBatch(keys []uint64, vals []uint64, oks []bool)
}

// Features is the paper's Table 1 row for a design.
type Features struct {
	Addressing        string // "open" or "closed"
	LockFreeGets      bool
	Puts              string // "lock-free", "blocking", "upsert-only", "none"
	Inserts           string // "lock-free", "blocking", "upsert-only"
	DeletesReclaim    bool   // deletes free index slots
	DeletesSupported  bool
	Resizable         bool
	NonBlockingResize bool // safe Get/../Del during resize
	ParallelResize    bool
	Prefetching       bool // overlaps memory accesses
	Inlined           bool // minimizes memory traffic via index inlining
}
