// Package tbb reproduces the skeleton of Intel oneTBB's
// concurrent_hash_map as the DLHT paper evaluates it: separate chaining
// with heap-allocated nodes and per-bucket reader-writer locks, growable
// under a global rehash lock. Pointer-chasing chains plus lock acquisition
// on every access keep it in the paper's sub-250 M req/s tier (Figure 3).
package tbb

import (
	"sync"

	"repro/internal/baselines"
	"repro/internal/hashfn"
)

type node struct {
	key  uint64
	val  uint64
	next *node
}

const stripes = 1 << 10

// Table is a chained concurrent map.
type Table struct {
	hash hashfn.Func64

	// global guards the bucket array pointer during rehash; ops take it
	// shared, rehash takes it exclusive.
	global  sync.RWMutex
	buckets []*node
	mask    uint64
	locks   [stripes]sync.RWMutex

	sizeMu sync.Mutex // guards size
	size   int
}

// New creates a TBB-style map with at least the given bucket count.
func New(buckets uint64, hash hashfn.Kind) *Table {
	n := uint64(16)
	for n < buckets {
		n <<= 1
	}
	return &Table{
		hash:    hashfn.For64(hash),
		buckets: make([]*node, n),
		mask:    n - 1,
	}
}

// Name implements baselines.Map.
func (t *Table) Name() string { return "TBB" }

// Features implements baselines.Map.
func (t *Table) Features() baselines.Features {
	return baselines.Features{
		Addressing:       "closed",
		LockFreeGets:     false,
		Puts:             "blocking",
		Inserts:          "blocking",
		DeletesReclaim:   true,
		DeletesSupported: true,
		Resizable:        true,
		Inlined:          false, // nodes are heap allocations
	}
}

// Get implements baselines.Map.
func (t *Table) Get(key uint64) (uint64, bool) {
	t.global.RLock()
	defer t.global.RUnlock()
	b := t.hash(key) & t.mask
	l := &t.locks[b&(stripes-1)]
	l.RLock()
	defer l.RUnlock()
	for n := t.buckets[b]; n != nil; n = n.next {
		if n.key == key {
			return n.val, true
		}
	}
	return 0, false
}

// Insert implements baselines.Map.
func (t *Table) Insert(key, val uint64) bool {
	t.maybeGrow()
	t.global.RLock()
	b := t.hash(key) & t.mask
	l := &t.locks[b&(stripes-1)]
	l.Lock()
	for n := t.buckets[b]; n != nil; n = n.next {
		if n.key == key {
			l.Unlock()
			t.global.RUnlock()
			return false
		}
	}
	t.buckets[b] = &node{key: key, val: val, next: t.buckets[b]}
	l.Unlock()
	t.global.RUnlock()
	t.sizeMu.Lock()
	t.size++
	t.sizeMu.Unlock()
	return true
}

// Put implements baselines.Map.
func (t *Table) Put(key, val uint64) bool {
	t.global.RLock()
	defer t.global.RUnlock()
	b := t.hash(key) & t.mask
	l := &t.locks[b&(stripes-1)]
	l.Lock()
	defer l.Unlock()
	for n := t.buckets[b]; n != nil; n = n.next {
		if n.key == key {
			n.val = val
			return true
		}
	}
	return false
}

// Delete implements baselines.Map: unlinks and frees the node.
func (t *Table) Delete(key uint64) bool {
	t.global.RLock()
	b := t.hash(key) & t.mask
	l := &t.locks[b&(stripes-1)]
	l.Lock()
	pp := &t.buckets[b]
	for n := *pp; n != nil; n = *pp {
		if n.key == key {
			*pp = n.next
			l.Unlock()
			t.global.RUnlock()
			t.sizeMu.Lock()
			t.size--
			t.sizeMu.Unlock()
			return true
		}
		pp = &n.next
	}
	l.Unlock()
	t.global.RUnlock()
	return false
}

// maybeGrow rehashes under the exclusive global lock when the load factor
// exceeds 1 — every operation blocks for the duration, as in TBB's
// stop-the-world style rehash.
func (t *Table) maybeGrow() {
	t.sizeMu.Lock()
	sz := t.size
	t.sizeMu.Unlock()
	if uint64(sz) <= t.mask {
		return
	}
	t.global.Lock()
	defer t.global.Unlock()
	t.sizeMu.Lock()
	sz = t.size
	t.sizeMu.Unlock()
	if uint64(sz) <= t.mask {
		return
	}
	newMask := (t.mask+1)*2 - 1
	nb := make([]*node, newMask+1)
	for _, head := range t.buckets {
		for n := head; n != nil; {
			next := n.next
			b := t.hash(n.key) & newMask
			n.next = nb[b]
			nb[b] = n
			n = next
		}
	}
	t.buckets = nb
	t.mask = newMask
}

var _ baselines.Map = (*Table)(nil)
