package tbb

import (
	"sync"
	"testing"

	"repro/internal/hashfn"
)

func TestChainingBasic(t *testing.T) {
	m := New(16, hashfn.Modulo)
	// All in one bucket.
	for _, k := range []uint64{1, 17, 33, 49} {
		if !m.Insert(k, k) {
			t.Fatalf("insert %d", k)
		}
	}
	for _, k := range []uint64{1, 17, 33, 49} {
		if v, ok := m.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	if !m.Delete(17) {
		t.Fatal("delete mid-chain")
	}
	if _, ok := m.Get(17); ok {
		t.Fatal("deleted key visible")
	}
	for _, k := range []uint64{1, 33, 49} {
		if _, ok := m.Get(k); !ok {
			t.Fatalf("chain broken at %d", k)
		}
	}
}

func TestRehashGrowth(t *testing.T) {
	m := New(16, hashfn.WyHash)
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		if !m.Insert(i, i^7) {
			t.Fatalf("insert %d", i)
		}
	}
	if m.mask+1 <= 16 {
		t.Fatalf("no rehash happened: %d buckets", m.mask+1)
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := m.Get(i); !ok || v != i^7 {
			t.Fatalf("Get(%d) = (%d,%v) after rehash", i, v, ok)
		}
	}
}

func TestConcurrentWithRehash(t *testing.T) {
	m := New(16, hashfn.WyHash)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 2000; i++ {
				k := base + i
				if !m.Insert(k, k) {
					t.Errorf("insert %d", k)
					return
				}
				if i%3 == 0 {
					m.Delete(k)
				}
			}
		}(uint64(w+1) << 32)
	}
	wg.Wait()
	for w := 0; w < 4; w++ {
		base := uint64(w+1) << 32
		for i := uint64(1); i <= 2000; i++ {
			_, ok := m.Get(base + i)
			if want := i%3 != 0; ok != want {
				t.Fatalf("key %d present=%v want %v", base+i, ok, want)
			}
		}
	}
}
