package lockmgr

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestTryLockUnlock(t *testing.T) {
	m := New(64, 2)
	s := m.Session()
	if !s.TryLock(1) {
		t.Fatal("first lock failed")
	}
	if s.TryLock(1) {
		t.Fatal("double lock succeeded")
	}
	if !s.Held(1) {
		t.Fatal("lock not held")
	}
	if !s.Unlock(1) {
		t.Fatal("unlock failed")
	}
	if s.Unlock(1) {
		t.Fatal("double unlock succeeded")
	}
	if !s.TryLock(1) {
		t.Fatal("relock after unlock failed")
	}
}

func TestLockAllSuccessAndRelease(t *testing.T) {
	m := New(64, 2)
	s := m.Session()
	keys := []uint64{5, 3, 9, 1}
	if !s.LockAll(keys) {
		t.Fatal("LockAll failed")
	}
	for _, k := range keys {
		if !s.Held(k) {
			t.Fatalf("key %d not held", k)
		}
	}
	s.UnlockAll(keys)
	if m.Outstanding() != 0 {
		t.Fatalf("%d locks leaked", m.Outstanding())
	}
}

func TestLockAllRollsBackOnConflict(t *testing.T) {
	m := New(64, 4)
	s1 := m.Session()
	s2 := m.Session()
	if !s1.TryLock(7) {
		t.Fatal("setup lock failed")
	}
	// s2 wants {3, 7, 9}: 7 is taken, so 3 (acquired first in sorted order)
	// must be rolled back and 9 never attempted.
	if s2.LockAll([]uint64{3, 7, 9}) {
		t.Fatal("LockAll succeeded despite conflict")
	}
	if s2.Held(3) || s2.Held(9) {
		t.Fatal("conflict rollback leaked a lock")
	}
	if !s1.Held(7) {
		t.Fatal("victim lost its lock")
	}
	if m.Outstanding() != 1 {
		t.Fatalf("outstanding = %d, want 1", m.Outstanding())
	}
}

func TestLockAllSortsForDeadlockFreedom(t *testing.T) {
	// Two sessions lock overlapping sets given in opposite orders; because
	// LockAll sorts and the batch preserves order, no deadlock is possible
	// and exactly one wins each round.
	m := New(256, 8)
	const rounds = 2000
	var wins atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := m.Session()
			for i := 0; i < rounds; i++ {
				keys := []uint64{10, 20, 30}
				if w == 1 {
					keys = []uint64{30, 20, 10}
				}
				if s.LockAll(keys) {
					wins.Add(1)
					s.UnlockAll([]uint64{10, 20, 30})
				}
			}
		}(w)
	}
	wg.Wait()
	if wins.Load() == 0 {
		t.Fatal("nobody ever acquired the lock set")
	}
	if m.Outstanding() != 0 {
		t.Fatalf("%d locks leaked", m.Outstanding())
	}
}

func TestConcurrentMutualExclusion(t *testing.T) {
	m := New(64, 8)
	var holders [4]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := m.Session()
			for i := 0; i < 3000; i++ {
				k := uint64(i % 4)
				if !s.TryLock(k) {
					continue
				}
				if holders[k].Add(1) != 1 {
					t.Errorf("mutual exclusion violated on %d", k)
				}
				holders[k].Add(-1)
				s.Unlock(k)
			}
		}(w)
	}
	wg.Wait()
	if m.Outstanding() != 0 {
		t.Fatalf("%d locks leaked", m.Outstanding())
	}
}
