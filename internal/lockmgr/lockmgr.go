// Package lockmgr implements the database lock manager of the paper's
// §5.3.3 on top of DLHT's HashSet mode: inserting a key locks a record,
// deleting it unlocks. Lock acquisition uses DLHT's order-preserving batch
// API, which is what makes two-phase-locking protocols deadlock free —
// locks are requested in sorted order and the batch engine guarantees they
// are attempted in exactly that order (unlike DRAMHiT's reordering batches,
// which the paper shows can deadlock such protocols).
package lockmgr

import (
	"sort"

	"repro/internal/core"
)

// Manager wraps a HashSet-mode DLHT used as a lock table.
type Manager struct {
	set *core.Table
	// diag is a dedicated handle for Outstanding; not for concurrent use.
	diag *core.Handle
}

// New creates a lock manager with the given lock-table geometry.
func New(bins uint64, maxThreads int) *Manager {
	set := core.MustNew(core.Config{
		Mode:       core.HashSet,
		Bins:       bins,
		MaxThreads: maxThreads + 1,
	})
	return &Manager{set: set, diag: set.MustHandle()}
}

// Session is the per-thread interface; create one per worker goroutine.
type Session struct {
	h   *core.Handle
	ops []core.Op
}

// Session allocates a worker session.
func (m *Manager) Session() *Session {
	return &Session{h: m.set.MustHandle()}
}

// TryLock acquires a single record lock; false when already held.
func (s *Session) TryLock(key uint64) bool {
	_, err := s.h.Insert(key, 0)
	return err == nil
}

// Unlock releases a single record lock; false when not held.
func (s *Session) Unlock(key uint64) bool {
	_, ok := s.h.Delete(key)
	return ok
}

// LockAll acquires every key (sorted internally for global ordering) in one
// order-preserving batch. If any acquisition fails, the locks already taken
// by the batch are rolled back and false is returned — the batch engine's
// stop-on-fail semantics (§3.3).
func (s *Session) LockAll(keys []uint64) bool {
	// Callers that already present sorted keys (the common protocol, e.g.
	// index order in 2PL) skip the sort entirely.
	sorted := true
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	s.ops = s.ops[:0]
	for _, k := range keys {
		s.ops = append(s.ops, core.Op{Kind: core.OpInsert, Key: k})
	}
	done := s.h.Exec(s.ops, true)
	if done == len(s.ops) && s.ops[done-1].OK {
		return true
	}
	// Roll back the acquired prefix (the failed op did not take its lock).
	for i := 0; i < done-1; i++ {
		s.h.Delete(s.ops[i].Key)
	}
	// A batch that stopped early may have stopped ON a success boundary:
	// when done < len(ops) the op at done-1 failed and holds nothing.
	return false
}

// UnlockAll releases every key in one batch.
func (s *Session) UnlockAll(keys []uint64) {
	s.ops = s.ops[:0]
	for _, k := range keys {
		s.ops = append(s.ops, core.Op{Kind: core.OpDelete, Key: k})
	}
	s.h.Exec(s.ops, false)
}

// Held reports whether a lock is currently held (diagnostics).
func (s *Session) Held(key uint64) bool { return s.h.Contains(key) }

// Outstanding counts currently held locks across all sessions (O(bins));
// not safe to call concurrently with itself.
func (m *Manager) Outstanding() int { return m.diag.Len() }
