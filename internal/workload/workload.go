// Package workload generates the key streams and operation mixes of the
// DLHT paper's evaluation (§4): uniform access over a prepopulated key
// space, the InsDel pattern (insert a fresh key, then delete it), the
// Put-heavy mix, hot-set skew (§5.2.4), and the YCSB single-key mixes
// (§5.3.4). Generators are deterministic per seed and allocation free on
// the hot path.
package workload

import "math"

// RNG is xorshift128+, the fast per-thread generator used by all drivers.
type RNG struct {
	s0, s1 uint64
}

// NewRNG seeds a generator; distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG {
	// SplitMix64 expansion of the seed avoids weak low-entropy states.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	s0 := z ^ (z >> 31)
	z = seed + 0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	s1 := z ^ (z >> 31)
	if s0 == 0 && s1 == 0 {
		s1 = 1
	}
	return &RNG{s0, s1}
}

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Uint64n returns a value in [0, n).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Next() % n
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// ---------------------------------------------------------------------------
// Key streams
// ---------------------------------------------------------------------------

// Uniform yields uniformly random keys from the prepopulated space [0, n).
type Uniform struct {
	rng *RNG
	n   uint64
}

// NewUniform creates a uniform stream over n prepopulated keys.
func NewUniform(seed, n uint64) *Uniform {
	return &Uniform{NewRNG(seed), n}
}

// Key returns the next key.
func (u *Uniform) Key() uint64 { return u.rng.Uint64n(u.n) }

// Skewed yields keys where pctHot percent of accesses hit one of hotKeys
// hot keys (the paper's §5.2.4 uses 1000 hot keys) and the rest are uniform
// over [0, n).
type Skewed struct {
	rng     *RNG
	n       uint64
	hotKeys uint64
	pctHot  int
}

// NewSkewed creates a hot-set skewed stream.
func NewSkewed(seed, n, hotKeys uint64, pctHot int) *Skewed {
	if hotKeys == 0 {
		hotKeys = 1
	}
	return &Skewed{NewRNG(seed), n, hotKeys, pctHot}
}

// Key returns the next key.
func (s *Skewed) Key() uint64 {
	if int(s.rng.Uint64n(100)) < s.pctHot {
		return s.rng.Uint64n(s.hotKeys)
	}
	return s.rng.Uint64n(s.n)
}

// FreshKeys yields keys guaranteed not to collide with the prepopulated
// space or with other threads — the paper's Insert convention ("Inserts
// also use the RNG to select a key... that has not been prepopulated. This
// ensures that Inserts will always incur the full overhead of the
// insertion"). Each thread owns a disjoint 40-bit region above the prepop
// range; within it, keys follow a multiplicative bijection of a counter so
// they are unique AND pseudo-random — sequential counters would map to
// sequential bins under modulo hashing and make the workload cache-hot,
// hiding exactly the memory behaviour the paper studies.
type FreshKeys struct {
	base    uint64
	counter uint64
}

// freshRegionBits sizes each thread's private key region.
const freshRegionBits = 40

// NewFreshKeys creates the fresh-key stream for a thread.
func NewFreshKeys(thread int, prepop uint64) *FreshKeys {
	return &FreshKeys{base: prepop + (uint64(thread)+1)<<freshRegionBits}
}

// Key returns the next never-before-used key. Multiplication by an odd
// constant is a bijection mod 2^40, so the stream never repeats within the
// region while landing in effectively random bins.
func (f *FreshKeys) Key() uint64 {
	f.counter++
	scrambled := (f.counter * 0x9e3779b97f4a7c15) & ((1 << freshRegionBits) - 1)
	return f.base + scrambled
}

// ---------------------------------------------------------------------------
// Zipf (for YCSB)
// ---------------------------------------------------------------------------

// Zipf generates Zipf-distributed ranks in [0, n) with exponent theta
// (YCSB default 0.99), using the Gray et al. rejection-free method.
type Zipf struct {
	rng             *RNG
	n               uint64
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
}

// NewZipf creates a Zipf generator. Construction is O(n) once (zeta sum);
// callers should reuse generators across threads via Clone.
func NewZipf(seed, n uint64, theta float64) *Zipf {
	z := &Zipf{rng: NewRNG(seed), n: n, theta: theta}
	z.zeta2theta = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - powF(2.0/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

// Clone returns an independent generator sharing the precomputed constants.
func (z *Zipf) Clone(seed uint64) *Zipf {
	c := *z
	c.rng = NewRNG(seed)
	return &c
}

// Key returns the next Zipf-distributed key in [0, n).
func (z *Zipf) Key() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+powF(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * powF(z.eta*u-z.eta+1, z.alpha))
}

func zetaStatic(n uint64, theta float64) float64 {
	// Cap the exact sum for very large n; the tail contribution is
	// approximated by the integral, keeping construction fast at scale.
	const exactCap = 1 << 20
	sum := 0.0
	m := n
	if m > exactCap {
		m = exactCap
	}
	for i := uint64(1); i <= m; i++ {
		sum += 1 / powF(float64(i), theta)
	}
	if n > m {
		// ∫ x^-theta dx from m to n.
		sum += (powF(float64(n), 1-theta) - powF(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

func powF(x, y float64) float64 { return math.Pow(x, y) }

// ---------------------------------------------------------------------------
// Operation mixes
// ---------------------------------------------------------------------------

// OpType is a workload-level operation.
type OpType uint8

// Workload operations.
const (
	Read OpType = iota
	Update
	Insert
	Delete
	ReadModifyWrite
	Scan // unused by DLHT benches; present for YCSB completeness
)

// Mix is a discrete distribution over operations, in percent.
type Mix struct {
	ReadPct, UpdatePct, InsertPct, RMWPct int
	name                                  string
}

// Name returns the mix label.
func (m Mix) Name() string { return m.name }

// YCSB standard mixes (§5.3.4 evaluates A, B, C and F).
var (
	YCSBA = Mix{ReadPct: 50, UpdatePct: 50, name: "YCSB-A"}
	YCSBB = Mix{ReadPct: 95, UpdatePct: 5, name: "YCSB-B"}
	YCSBC = Mix{ReadPct: 100, name: "YCSB-C"}
	YCSBD = Mix{ReadPct: 95, InsertPct: 5, name: "YCSB-D"}
	YCSBF = Mix{RMWPct: 100, name: "YCSB-F"}
)

// Pick draws an operation from the mix.
func (m Mix) Pick(r *RNG) OpType {
	v := int(r.Uint64n(100))
	switch {
	case v < m.ReadPct:
		return Read
	case v < m.ReadPct+m.UpdatePct:
		return Update
	case v < m.ReadPct+m.UpdatePct+m.InsertPct:
		return Insert
	default:
		return ReadModifyWrite
	}
}
