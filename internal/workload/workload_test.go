package workload

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministicAndDistinct(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	c := NewRNG(2)
	same, diff := 0, 0
	for i := 0; i < 1000; i++ {
		va, vb, vc := a.Next(), b.Next(), c.Next()
		if va == vb {
			same++
		}
		if va != vc {
			diff++
		}
	}
	if same != 1000 {
		t.Fatal("same seed must give the same stream")
	}
	if diff < 990 {
		t.Fatal("different seeds must give different streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := NewRNG(seed)
		bound := uint64(n) + 1
		for i := 0; i < 100; i++ {
			if r.Uint64n(bound) >= bound {
				return false
			}
		}
		return r.Uint64n(0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	u := NewUniform(1, 100)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		k := u.Key()
		if k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform stream covered only %d/100 keys", len(seen))
	}
}

func TestSkewedHotFraction(t *testing.T) {
	s := NewSkewed(1, 1_000_000, 1000, 90)
	hot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Key() < 1000 {
			hot++
		}
	}
	frac := float64(hot) / n
	// 90 % direct hot hits plus ~0.1 % accidental uniform hits.
	if frac < 0.88 || frac > 0.93 {
		t.Fatalf("hot fraction = %.3f, want ≈0.90", frac)
	}
}

func TestSkewedZeroPctIsUniform(t *testing.T) {
	s := NewSkewed(1, 1_000_000, 1000, 0)
	hot := 0
	for i := 0; i < 100000; i++ {
		if s.Key() < 1000 {
			hot++
		}
	}
	if hot > 500 { // expect ~100
		t.Fatalf("0%% skew produced %d hot hits", hot)
	}
}

func TestFreshKeysDisjoint(t *testing.T) {
	const prepop = 1 << 20
	f0 := NewFreshKeys(0, prepop)
	f1 := NewFreshKeys(1, prepop)
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		for _, f := range []*FreshKeys{f0, f1} {
			k := f.Key()
			if k < prepop {
				t.Fatalf("fresh key %d collides with prepopulated space", k)
			}
			if seen[k] {
				t.Fatalf("fresh key %d repeated", k)
			}
			seen[k] = true
		}
	}
}

func TestZipfSkewsTowardLowRanks(t *testing.T) {
	z := NewZipf(1, 1_000_000, 0.99)
	var top10, total int
	for i := 0; i < 100000; i++ {
		k := z.Key()
		if k >= 1_000_000 {
			t.Fatalf("zipf key %d out of range", k)
		}
		if k < 10 {
			top10++
		}
		total++
	}
	frac := float64(top10) / float64(total)
	// With theta=0.99 over 1M items, the top-10 ranks draw a large share.
	if frac < 0.15 {
		t.Fatalf("top-10 fraction = %.3f, zipf not skewed", frac)
	}
}

func TestZipfClone(t *testing.T) {
	z := NewZipf(1, 10000, 0.99)
	c1, c2 := z.Clone(5), z.Clone(5)
	for i := 0; i < 100; i++ {
		if c1.Key() != c2.Key() {
			t.Fatal("clones with equal seeds must agree")
		}
	}
}

func TestMixProportions(t *testing.T) {
	r := NewRNG(3)
	counts := map[OpType]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[YCSBA.Pick(r)]++
	}
	reads := float64(counts[Read]) / n
	updates := float64(counts[Update]) / n
	if reads < 0.47 || reads > 0.53 || updates < 0.47 || updates > 0.53 {
		t.Fatalf("YCSB-A proportions: reads %.3f updates %.3f", reads, updates)
	}
	// YCSB-C is all reads.
	for i := 0; i < 1000; i++ {
		if YCSBC.Pick(r) != Read {
			t.Fatal("YCSB-C produced a non-read")
		}
	}
	// YCSB-F is all RMW.
	for i := 0; i < 1000; i++ {
		if YCSBF.Pick(r) != ReadModifyWrite {
			t.Fatal("YCSB-F produced a non-RMW")
		}
	}
}

func TestMixNames(t *testing.T) {
	for _, m := range []Mix{YCSBA, YCSBB, YCSBC, YCSBD, YCSBF} {
		if m.Name() == "" {
			t.Fatal("mix without a name")
		}
	}
}
