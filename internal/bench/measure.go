package bench

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Measurement is one throughput data point.
type Measurement struct {
	Ops     uint64
	Elapsed time.Duration
}

// MReqs returns throughput in million requests per second — the unit of
// every figure in the paper.
func (m Measurement) MReqs() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Ops) / m.Elapsed.Seconds() / 1e6
}

// LoopFunc runs a worker until stop is set and returns operations done.
type LoopFunc func(w Worker, tid int, stop *atomic.Bool) uint64

// RunWorkload launches threads workers against the target for dur and
// aggregates their operation counts.
func RunWorkload(t Target, threads int, dur time.Duration, loop LoopFunc) Measurement {
	var stop atomic.Bool
	var total atomic.Uint64
	var started, wg sync.WaitGroup
	started.Add(threads)
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := t.NewWorker(tid)
			started.Done()
			started.Wait() // begin simultaneously
			total.Add(loop(w, tid, &stop))
		}(tid)
	}
	started.Wait()
	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return Measurement{Ops: total.Load(), Elapsed: time.Since(begin)}
}

// checkEvery bounds how often loops poll the stop flag.
const checkEvery = 64

// GetLoop is the default Get workload (§4): uniform reads over the
// prepopulated keys, batched when the target supports it.
func GetLoop(t Target, prepop uint64, batch int) LoopFunc {
	return func(w Worker, tid int, stop *atomic.Bool) uint64 {
		stream := workload.NewUniform(uint64(tid)*7919+1, prepop)
		if bg, ok := w.(BatchGetter); ok && t.Batched && batch > 1 {
			keys := make([]uint64, batch)
			vals := make([]uint64, batch)
			oks := make([]bool, batch)
			var ops uint64
			for !stop.Load() {
				for i := range keys {
					keys[i] = stream.Key()
				}
				bg.GetBatch(keys, vals, oks)
				ops += uint64(batch)
			}
			return ops
		}
		var ops uint64
		for !stop.Load() {
			for i := 0; i < checkEvery; i++ {
				w.Get(stream.Key())
			}
			ops += checkEvery
		}
		return ops
	}
}

// SkewedGetLoop is GetLoop over the §5.2.4 hot-set distribution.
func SkewedGetLoop(t Target, prepop, hotKeys uint64, pctHot, batch int) LoopFunc {
	return func(w Worker, tid int, stop *atomic.Bool) uint64 {
		stream := workload.NewSkewed(uint64(tid)*7919+1, prepop, hotKeys, pctHot)
		if bg, ok := w.(BatchGetter); ok && t.Batched && batch > 1 {
			keys := make([]uint64, batch)
			vals := make([]uint64, batch)
			oks := make([]bool, batch)
			var ops uint64
			for !stop.Load() {
				for i := range keys {
					keys[i] = stream.Key()
				}
				bg.GetBatch(keys, vals, oks)
				ops += uint64(batch)
			}
			return ops
		}
		var ops uint64
		for !stop.Load() {
			for i := 0; i < checkEvery; i++ {
				w.Get(stream.Key())
			}
			ops += checkEvery
		}
		return ops
	}
}

// InsDelLoop is the paper's InsDel workload: insert a fresh key, delete the
// same key (50 % Inserts + 50 % Deletes, always at most one live key per
// thread). DLHT executes it as an order-preserving batch.
func InsDelLoop(t Target, prepop uint64, batch int) LoopFunc {
	return func(w Worker, tid int, stop *atomic.Bool) uint64 {
		fresh := workload.NewFreshKeys(tid, prepop)
		if ob, ok := w.(OpsBatcher); ok && t.Batched && batch > 1 {
			ops := make([]core.Op, batch)
			var n uint64
			for !stop.Load() {
				for i := 0; i < batch-1; i += 2 {
					k := fresh.Key()
					ops[i] = core.Op{Kind: core.OpInsert, Key: k, Value: k}
					ops[i+1] = core.Op{Kind: core.OpDelete, Key: k}
				}
				if batch%2 == 1 {
					ops[batch-1] = core.Op{Kind: core.OpGet, Key: fresh.Key() - 1}
				}
				ob.ExecOps(ops)
				n += uint64(batch)
			}
			return n
		}
		var n uint64
		for !stop.Load() {
			for i := 0; i < checkEvery/2; i++ {
				k := fresh.Key()
				w.Insert(k, k)
				w.Delete(k)
			}
			n += checkEvery
		}
		return n
	}
}

// PutHeavyLoop is the §5.1.3 mix: 50 % Gets + 50 % Puts over prepopulated
// keys, batched for DLHT.
func PutHeavyLoop(t Target, prepop uint64, batch int) LoopFunc {
	return func(w Worker, tid int, stop *atomic.Bool) uint64 {
		stream := workload.NewUniform(uint64(tid)*104729+1, prepop)
		if ob, ok := w.(OpsBatcher); ok && t.Batched && batch > 1 {
			ops := make([]core.Op, batch)
			var n uint64
			for !stop.Load() {
				for i := range ops {
					k := stream.Key()
					if i%2 == 0 {
						ops[i] = core.Op{Kind: core.OpGet, Key: k}
					} else {
						ops[i] = core.Op{Kind: core.OpPut, Key: k, Value: k}
					}
				}
				ob.ExecOps(ops)
				n += uint64(batch)
			}
			return n
		}
		var n uint64
		for !stop.Load() {
			for i := 0; i < checkEvery/2; i++ {
				w.Get(stream.Key())
				w.Put(stream.Key(), 42)
			}
			n += checkEvery
		}
		return n
	}
}

// ---------------------------------------------------------------------------
// Population (Fig 7)
// ---------------------------------------------------------------------------

// Populate inserts total fresh keys using threads workers against an empty,
// growing table, and returns the aggregate insert throughput — the paper's
// Figure 7 metric.
func Populate(t Target, threads int, total uint64) Measurement {
	per := total / uint64(threads)
	var wg sync.WaitGroup
	begin := time.Now()
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := t.NewWorker(tid)
			base := uint64(tid) * per
			for i := uint64(0); i < per; i++ {
				w.Insert(base+i, i+1)
			}
		}(tid)
	}
	wg.Wait()
	return Measurement{Ops: per * uint64(threads), Elapsed: time.Since(begin)}
}

// ---------------------------------------------------------------------------
// Time series (Fig 8)
// ---------------------------------------------------------------------------

// SeriesPoint is one sampling interval of the Figure 8 timeline.
type SeriesPoint struct {
	At      time.Duration
	GetsM   float64 // M gets/s in this interval
	InsertM float64 // M inserts/s in this interval
}

// ResizeTimeline reproduces Figure 8: half the threads populate the table
// past its capacity (forcing a live migration), half perform Gets on the
// prepopulated keys; throughput of both classes is sampled per interval.
func ResizeTimeline(tbl *core.Table, prepop, extra uint64, getters, inserters int, interval time.Duration) []SeriesPoint {
	var gets, inserts atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < getters; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h := tbl.MustHandle()
			stream := workload.NewUniform(uint64(tid)+1, prepop)
			for !stop.Load() {
				for j := 0; j < 32; j++ {
					h.Get(stream.Key())
				}
				gets.Add(32)
			}
		}(i)
	}
	perIns := extra / uint64(inserters)
	var insDone sync.WaitGroup
	for i := 0; i < inserters; i++ {
		wg.Add(1)
		insDone.Add(1)
		go func(tid int) {
			defer wg.Done()
			defer insDone.Done()
			h := tbl.MustHandle()
			base := prepop + uint64(tid)*perIns
			for j := uint64(0); j < perIns && !stop.Load(); j++ {
				h.Insert(base+j, 1)
				inserts.Add(1)
			}
		}(i)
	}
	// Sample until the inserters finish, then one more interval.
	finished := make(chan struct{})
	go func() {
		insDone.Wait()
		close(finished)
	}()
	var series []SeriesPoint
	begin := time.Now()
	lastG, lastI := uint64(0), uint64(0)
	done := false
	for !done {
		select {
		case <-finished:
			done = true
		case <-time.After(interval):
		}
		g, ins := gets.Load(), inserts.Load()
		series = append(series, SeriesPoint{
			At:      time.Since(begin),
			GetsM:   float64(g-lastG) / interval.Seconds() / 1e6,
			InsertM: float64(ins-lastI) / interval.Seconds() / 1e6,
		})
		lastG, lastI = g, ins
	}
	stop.Store(true)
	wg.Wait()
	return series
}

// ---------------------------------------------------------------------------
// Latency (Fig 15)
// ---------------------------------------------------------------------------

// LatencyPoint is one load level of the Figure 15 study.
type LatencyPoint struct {
	Threads    int
	Throughput float64 // M reqs/s (the load axis)
	AvgNs      float64
	P99Ns      float64
}

// MeasureLatency samples per-operation latency under a closed-loop load of
// the given thread count. getsOnly selects the Get workload; otherwise the
// InsDel pattern is timed.
func MeasureLatency(t Target, threads int, prepop uint64, dur time.Duration, getsOnly bool) LatencyPoint {
	var stop atomic.Bool
	var total atomic.Uint64
	samples := make([][]int64, threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := t.NewWorker(tid)
			stream := workload.NewUniform(uint64(tid)+1, prepop)
			fresh := workload.NewFreshKeys(tid, prepop)
			var mine []int64
			var ops uint64
			// Time every 16th operation: clock reads cost ~100 ns on
			// virtualized hosts and would otherwise dominate both the
			// latency distribution and the throughput (load) axis.
			const sampleEvery = 16
			for !stop.Load() {
				for i := 0; i < sampleEvery-1; i++ {
					if getsOnly {
						w.Get(stream.Key())
					} else {
						k := fresh.Key()
						w.Insert(k, k)
						w.Delete(k)
					}
				}
				begin := time.Now()
				if getsOnly {
					w.Get(stream.Key())
				} else {
					k := fresh.Key()
					w.Insert(k, k)
					w.Delete(k)
				}
				el := time.Since(begin).Nanoseconds()
				if !getsOnly {
					el /= 2 // per request, not per pair
				}
				if len(mine) < 1<<17 {
					mine = append(mine, el)
				}
				ops += sampleEvery
			}
			if !getsOnly {
				ops *= 2
			}
			total.Add(ops)
			samples[tid] = mine
		}(tid)
	}
	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)

	var all []int64
	for _, s := range samples {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return LatencyPoint{Threads: threads}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum int64
	for _, v := range all {
		sum += v
	}
	return LatencyPoint{
		Threads:    threads,
		Throughput: float64(total.Load()) / elapsed.Seconds() / 1e6,
		AvgNs:      float64(sum) / float64(len(all)),
		P99Ns:      float64(all[len(all)*99/100]),
	}
}

// ---------------------------------------------------------------------------
// Thread sweep helper
// ---------------------------------------------------------------------------

// DefaultThreads returns the paper-style sweep 1,2,4,... up to GOMAXPROCS.
func DefaultThreads() []int {
	max := runtime.GOMAXPROCS(0)
	var out []int
	for t := 1; t < max; t *= 2 {
		out = append(out, t)
	}
	out = append(out, max)
	return out
}
