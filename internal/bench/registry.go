package bench

import "fmt"

// Experiment binds a paper table/figure id to the function regenerating it.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) Result
}

// Registry lists every reproducible experiment, in paper order.
var Registry = []Experiment{
	{"fig1", "Headline throughput (Figure 1)", Fig01Headline},
	{"table1", "Feature matrix (Table 1)", Table01Features},
	{"fig3", "Get throughput vs threads (Figure 3)", Fig03Get},
	{"fig4", "Get power-efficiency (Figure 4)", Fig04Power},
	{"fig5", "InsDel throughput (Figure 5)", Fig05InsDel},
	{"fig6", "Put-heavy throughput (Figure 6)", Fig06PutHeavy},
	{"fig7", "Population throughput (Figure 7)", Fig07Population},
	{"fig8", "Non-blocking resize timeline (Figure 8)", Fig08ResizeTimeline},
	{"occupancy", "Index occupancy (§5.1.5)", OccupancyStudy},
	{"fig9", "Varying value size (Figure 9)", Fig09ValueSize},
	{"fig10", "Varying key size (Figure 10)", Fig10KeySize},
	{"fig11", "Varying index size (Figure 11)", Fig11IndexSize},
	{"fig12", "Varying batch size (Figure 12)", Fig12BatchSize},
	{"fig13", "Skew (Figure 13)", Fig13Skew},
	{"fig14", "Enabling features (Figure 14)", Fig14Features},
	{"fig15", "Latency (Figure 15)", Fig15Latency},
	{"fig16", "Single-thread optimization (Figure 16)", Fig16SingleThread},
	{"cxl", "CXL emulation (§5.3.2)", CXLEmulation},
	{"fig17", "Lock manager (Figure 17)", Fig17LockManager},
	{"fig18", "YCSB mixes (Figure 18)", Fig18YCSB},
	{"fig19", "OLTP: TATP & Smallbank (Figure 19)", Fig19OLTP},
	{"fig20", "Hash join (Figure 20)", Fig20HashJoin},
	{"table4", "OLTP benchmark characteristics (Table 4)", Table04OLTP},
	{"table5", "Comparison summary (Table 5)", Table05Summary},
	{"ablations", "DLHT design-choice ablations (extension)", Ablations},
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (see -list)", id)
}
