package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baselines"
	"repro/internal/baselines/clht"
	"repro/internal/baselines/cuckoo"
	"repro/internal/baselines/dramhit"
	"repro/internal/baselines/folly"
	"repro/internal/baselines/growt"
	"repro/internal/baselines/leapfrog"
	"repro/internal/baselines/mica"
	"repro/internal/baselines/tbb"
	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/join"
	"repro/internal/lockmgr"
	"repro/internal/oltp"
	"repro/internal/workload"
	"repro/internal/ycsb"
)

// Fig17LockManager reproduces Figure 17: a database lock manager over
// HashSet mode. Each worker locks and unlocks batches of record keys; the
// batched variant uses the order-preserving LockAll/UnlockAll path, the
// NoBatch variant takes locks one by one.
func Fig17LockManager(s Scale) Result {
	res := Result{
		ID:     "fig17",
		Title:  "Lock manager over HashSet: locks+unlocks per second (M/s)",
		Header: []string{"threads", "DLHT", "DLHT-NoBatch"},
		Notes:  "paper shape: batching up to 2.2x; ~1.5B locks/unlocks at peak on the paper's server",
	}
	for _, th := range s.Threads {
		var rates []float64
		for _, batched := range []bool{true, false} {
			mgr := lockmgr.New(s.Keys/2+64, th)
			var stop atomic.Bool
			var total atomic.Uint64
			var wg sync.WaitGroup
			for tid := 0; tid < th; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					sess := mgr.Session()
					// Disjoint per-thread key regions; keys within a region
					// are scrambled so lock-table bins are hit randomly (a
					// sequential counter would keep the workload cache-hot
					// and hide the memory behaviour under study). Each
					// batch is sorted ascending, as a 2PL client would
					// present it.
					base := uint64(tid) << 48
					keys := make([]uint64, s.Batch)
					var ops uint64
					ctr := uint64(0)
					for !stop.Load() {
						if batched {
							for i := range keys {
								ctr++
								keys[i] = base + (ctr*0x9e3779b97f4a7c15)&(1<<48-1)
							}
							// Present the set sorted, as a 2PL client does.
							for i := 1; i < len(keys); i++ {
								k := keys[i]
								j := i - 1
								for j >= 0 && keys[j] > k {
									keys[j+1] = keys[j]
									j--
								}
								keys[j+1] = k
							}
							if !sess.LockAll(keys) {
								continue
							}
							sess.UnlockAll(keys)
							ops += uint64(2 * len(keys))
						} else {
							for i := 0; i < s.Batch; i++ {
								ctr++
								k := base + (ctr*0x9e3779b97f4a7c15)&(1<<48-1)
								sess.TryLock(k)
								sess.Unlock(k)
							}
							ops += uint64(2 * s.Batch)
						}
					}
					total.Add(ops)
				}(tid)
			}
			begin := time.Now()
			time.Sleep(s.Dur)
			stop.Store(true)
			wg.Wait()
			rates = append(rates, float64(total.Load())/time.Since(begin).Seconds()/1e6)
		}
		res.AddRow(fmt.Sprint(th), f1(rates[0]), f1(rates[1]))
	}
	return res
}

// Fig18YCSB reproduces Figure 18: the four YCSB mixes across threads.
func Fig18YCSB(s Scale) Result {
	res := Result{
		ID:     "fig18",
		Title:  "YCSB mixes, M ops/s",
		Header: []string{"threads", "YCSB-C", "YCSB-B", "YCSB-A", "YCSB-F"},
		Notes:  "paper shape: all scale to the socket limit; F (update-only RMW) ~half of C (read-only)",
	}
	maxTh := s.maxThreads()
	d, err := ycsb.New(s.Keys, maxTh*(len(s.Threads)+1))
	if err != nil {
		res.Notes = "setup failed: " + err.Error()
		return res
	}
	for _, th := range s.Threads {
		row := []string{fmt.Sprint(th)}
		for _, mix := range []workload.Mix{workload.YCSBC, workload.YCSBB, workload.YCSBA, workload.YCSBF} {
			r := d.Run(mix, th, s.Dur)
			row = append(row, f1(r.MReqs()))
		}
		res.AddRow(row...)
	}
	return res
}

// Fig19OLTP reproduces Figure 19: TATP and Smallbank transactions per
// second across threads (Table 4 characteristics).
func Fig19OLTP(s Scale) Result {
	res := Result{
		ID:     "fig19",
		Title:  "OLTP transactions, M txs/s",
		Header: []string{"threads", "TATP", "Smallbank"},
		Notes:  "paper: 175M (TATP) / 129M (Smallbank) txs/s at 64 threads; TATP > Smallbank (fewer write-backs)",
	}
	// Scaled: paper uses 1M subscribers / 10M accounts.
	subs := s.Keys / 8
	accts := s.Keys / 4
	budget := s.maxThreads() * (len(s.Threads) + 1)
	tatp := oltp.NewTATP(subs, budget)
	small := oltp.NewSmallbank(accts, budget)
	for _, th := range s.Threads {
		rt := oltp.Run(tatp, th, s.Dur)
		rs := oltp.Run(small, th, s.Dur)
		res.AddRow(fmt.Sprint(th), f2(rt.MTxs()), f2(rs.MTxs()))
	}
	return res
}

// Fig20HashJoin reproduces Figure 20: non-partitioned join throughput,
// (|R|+|S|)/runtime, with and without batching.
func Fig20HashJoin(s Scale) Result {
	res := Result{
		ID:     "fig20",
		Title:  "Hash join, M tuples/s",
		Header: []string{"threads", "DLHT", "DLHT-NoBatch", "DLHT-Partitioned"},
		Notes:  "paper shape: batching 2.2x on probes. Partitioned column is the paper's future-work extension (radix partitions + single-thread tables)",
	}
	// Workload A scaled: |S| = 16|R| as 2^27 vs 2^31.
	buildN := s.Keys / 4
	probeN := buildN * 16
	build := join.GenerateBuild(buildN, 1)
	probe := join.GenerateProbe(probeN, buildN, 2)
	for _, th := range s.Threads {
		jb := join.Run(build, probe, th, s.Batch)
		jn := join.Run(build, probe, th, 1)
		jp := join.RunPartitioned(build, probe, th, s.Batch)
		res.AddRow(fmt.Sprint(th),
			f1(jb.TuplesPerSec()/1e6), f1(jn.TuplesPerSec()/1e6), f1(jp.TuplesPerSec()/1e6))
	}
	return res
}

// Table01Features reproduces Table 1: the feature matrix, with measured
// occupancy bands appended by the occupancy experiment.
func Table01Features(s Scale) Result {
	res := Result{
		ID:    "table1",
		Title: "Key features for memory-resident performance (paper Table 1)",
		Header: []string{
			"design", "addressing", "gets", "puts", "inserts",
			"deletes-reclaim", "resize", "prefetch", "inlined",
		},
	}
	maps := []baselines.Map{
		clht.New(1<<10, hashfn.Modulo),
		growt.New(1<<10, hashfn.Modulo),
		folly.New(1<<10, hashfn.Modulo),
		mica.New(1<<10, hashfn.Modulo, 8),
		dramhit.New(1<<10, hashfn.Modulo),
		cuckoo.New(1<<10, hashfn.Modulo),
		leapfrog.New(1<<10, hashfn.Modulo),
		tbb.New(1<<10, hashfn.Modulo),
	}
	add := func(name string, f featureRow) {
		res.AddRow(name, f.addr, f.gets, f.puts, f.inserts, f.del, f.resize, f.pref, f.inl)
	}
	add("DLHT", featureRow{"closed", "lock-free", "lock-free (dw-CAS)", "lock-free",
		"yes (instant)", "parallel, non-blocking", "yes", "yes"})
	for _, m := range maps {
		f := m.Features()
		resize := "none"
		if f.Resizable {
			resize = "blocking"
			if f.ParallelResize {
				resize = "parallel, blocking"
			}
			if f.NonBlockingResize {
				resize = "non-blocking"
			}
		}
		add(m.Name(), featureRow{
			f.Addressing, boolWord(f.LockFreeGets, "lock-free", "blocking"),
			f.Puts, f.Inserts, boolWord(f.DeletesReclaim, "yes (instant)", "no (tombstones/none)"),
			resize, boolWord(f.Prefetching, "yes", "no"), boolWord(f.Inlined, "yes", "no"),
		})
	}
	res.Notes = "occupancy bands: run -exp occupancy"
	return res
}

type featureRow struct {
	addr, gets, puts, inserts, del, resize, pref, inl string
}

func boolWord(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}

// Table04OLTP reproduces Table 4: benchmark characteristics.
func Table04OLTP(Scale) Result {
	return Result{
		ID:     "table4",
		Title:  "Evaluated transactional benchmarks (paper Table 4)",
		Header: []string{"benchmark", "characteristic", "tables", "tx types", "read txs"},
		Rows: [][]string{
			{"TATP", "read-intensive", "4", "7", "80%"},
			{"Smallbank", "write-intensive", "3", "6", "15%"},
		},
	}
}

// Table05Summary reproduces Table 5: DLHT vs the fastest baselines, derived
// from fresh Get / InsDel / population measurements at max threads.
func Table05Summary(s Scale) Result {
	res := Result{
		ID:     "table5",
		Title:  "Comparison summary: DLHT speedup over each baseline (paper Table 5)",
		Header: []string{"baseline", "Get x", "InsDel x", "population x"},
		Notes:  "paper: CLHT 3.5/ -/8x, MICA 4.8/-/-, GrowT 3.5/12.8/3.9x, Folly 3.5/-/-, DRAMHiT 1.7/-/-",
	}
	th := s.maxThreads()
	g := Geometry{Keys: s.Keys}

	// Get speedups.
	getTargets := FastTargets(g)
	prepopAll(getTargets, s)
	gets := map[string]float64{}
	for _, t := range getTargets {
		gets[t.Name] = RunWorkload(t, th, s.Dur, GetLoop(t, s.Keys, s.Batch)).MReqs()
	}
	// InsDel speedups on fresh empty tables.
	insTargets := FastTargets(g)
	insdel := map[string]float64{}
	for _, t := range insTargets {
		insdel[t.Name] = RunWorkload(t, th, s.Dur, InsDelLoop(t, s.Keys, s.Batch)).MReqs()
	}
	// Population speedups (resizable designs only).
	pop := map[string]float64{}
	{
		dl := DLHTTarget(mustNewDLHT(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 4096}), "DLHT", true)
		pop["DLHT"] = Populate(dl, th, s.PopKeys).MReqs()
		for _, t := range BaselineTargets(Geometry{Keys: 1 << 10}) {
			if t.Name == "GrowT" || t.Name == "CLHT" {
				pop[t.Name] = Populate(t, th, s.PopKeys).MReqs()
			}
		}
	}
	ratio := func(m map[string]float64, name string) string {
		if m[name] <= 0 {
			return "-"
		}
		return f1(m["DLHT"]/m[name]) + "x"
	}
	for _, name := range []string{"CLHT", "MICA", "GrowT", "Folly", "DRAMHiT"} {
		res.AddRow(name, ratio(gets, name), ratio(insdel, name), ratio(pop, name))
	}
	return res
}
