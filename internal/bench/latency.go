package bench

import (
	"fmt"
	"sort"
	"time"
)

// Sampler collects per-request latency samples with a fixed cap, for use by
// closed-loop drivers (the network load generator). Not safe for concurrent
// use; give each worker its own Sampler and Merge at the end.
type Sampler struct {
	samples []int64
	dropped uint64
}

// NewSampler creates a sampler retaining at most capacity samples.
func NewSampler(capacity int) *Sampler {
	if capacity <= 0 {
		capacity = 1 << 17
	}
	return &Sampler{samples: make([]int64, 0, capacity)}
}

// Add records one latency sample (nanoseconds). Samples past the cap are
// counted but not retained.
func (s *Sampler) Add(ns int64) {
	if len(s.samples) < cap(s.samples) {
		s.samples = append(s.samples, ns)
		return
	}
	s.dropped++
}

// Merge folds o's samples into s (up to s's remaining capacity).
func (s *Sampler) Merge(o *Sampler) {
	for _, v := range o.samples {
		s.Add(v)
	}
	s.dropped += o.dropped
}

// LatencySummary is the percentile digest of a sample set.
type LatencySummary struct {
	Count                   int
	Dropped                 uint64 // recorded beyond the retention cap
	Avg, P50, P95, P99, Max time.Duration
}

// Summary sorts the retained samples and digests them.
func (s *Sampler) Summary() LatencySummary {
	n := len(s.samples)
	if n == 0 {
		return LatencySummary{Dropped: s.dropped}
	}
	sorted := make([]int64, n)
	copy(sorted, s.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	pct := func(p int) time.Duration {
		i := n * p / 100
		if i >= n {
			i = n - 1
		}
		return time.Duration(sorted[i])
	}
	return LatencySummary{
		Count:   n,
		Dropped: s.dropped,
		Avg:     time.Duration(sum / int64(n)),
		P50:     pct(50),
		P95:     pct(95),
		P99:     pct(99),
		Max:     time.Duration(sorted[n-1]),
	}
}

// String renders the digest on one line.
func (l LatencySummary) String() string {
	if l.Count == 0 {
		return "latency: no samples"
	}
	return fmt.Sprintf("latency: avg=%v p50=%v p95=%v p99=%v max=%v (%d samples)",
		l.Avg.Round(time.Microsecond), l.P50.Round(time.Microsecond),
		l.P95.Round(time.Microsecond), l.P99.Round(time.Microsecond),
		l.Max.Round(time.Microsecond), l.Count)
}
