package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashfn"
)

// Ablations probes the design constants the paper fixes without sweeping:
// the bins-to-link-buckets ratio (8, §3.1), the transfer chunk size (16K
// bins, §3.2.5), and the hash function choice (§3.4.3). Each sub-study
// varies one knob with everything else at paper defaults.
func Ablations(s Scale) Result {
	res := Result{
		ID:     "ablations",
		Title:  "DLHT design-choice ablations",
		Header: []string{"knob", "value", "Get M/s", "InsDel M/s", "occupancy@full", "population M/s"},
		Notes:  "link-ratio trades occupancy for chain length; chunk size trades migration parallelism for coordination; hash trades randomness for cycles",
	}
	threads := s.maxThreads()
	keys := s.Keys / 2

	// --- Link ratio: 4, 8 (paper default), 16, 32 ---------------------
	for _, ratio := range []int{4, 8, 16, 32} {
		tbl := mustNewDLHT(core.Config{
			Bins: keys*2/3 + 64, LinkRatio: ratio, MaxThreads: 4096,
		})
		tgt := DLHTTarget(tbl, "DLHT", true)
		PrepopulateParallel(tgt, keys, threads)
		get := RunWorkload(tgt, threads, s.Dur, GetLoop(tgt, keys, s.Batch)).MReqs()
		insdel := RunWorkload(tgt, threads, s.Dur, InsDelLoop(tgt, keys, s.Batch)).MReqs()
		// Fill to rejection to see how far bounded chaining stretches.
		occ := fillToRejection(core.Config{Bins: 1 << 10, LinkRatio: ratio, Hash: hashfn.WyHash})
		res.AddRow("link-ratio", fmt.Sprint(ratio), f1(get), f1(insdel), pct(occ), "-")
	}

	// --- Transfer chunk size: 1K, 4K, 16K (paper), 64K bins -----------
	for _, chunk := range []uint64{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		tbl := mustNewDLHT(core.Config{
			Bins: 1 << 10, Resizable: true, ChunkBins: chunk, MaxThreads: 4096,
		})
		tgt := DLHTTarget(tbl, "DLHT", true)
		pop := Populate(tgt, threads, s.PopKeys).MReqs()
		res.AddRow("chunk-bins", fmt.Sprint(chunk), "-", "-", "-", f1(pop))
	}

	// --- Hash function: modulo (paper default), wyhash, xxhash, murmur3, fnv1a
	for _, hk := range []hashfn.Kind{hashfn.Modulo, hashfn.WyHash, hashfn.XXHash64, hashfn.Murmur3, hashfn.FNV1a} {
		tbl := mustNewDLHT(core.Config{
			Bins: keys*2/3 + 64, Hash: hk, MaxThreads: 4096,
		})
		tgt := DLHTTarget(tbl, "DLHT", true)
		PrepopulateParallel(tgt, keys, threads)
		get := RunWorkload(tgt, threads, s.Dur, GetLoop(tgt, keys, s.Batch)).MReqs()
		insdel := RunWorkload(tgt, threads, s.Dur, InsDelLoop(tgt, keys, s.Batch)).MReqs()
		res.AddRow("hash", hk.String(), f1(get), f1(insdel), "-", "-")
	}

	return res
}

// fillToRejection inserts wyhash-random keys into a non-resizable table
// until an insert fails and returns the occupancy reached.
func fillToRejection(cfg core.Config) float64 {
	cfg.Resizable = false
	cfg.MaxThreads = 4
	tbl := mustNewDLHT(cfg)
	h := tbl.MustHandle()
	for k := uint64(0); ; k++ {
		if _, err := h.Insert(k, k); err != nil {
			break
		}
	}
	return tbl.Stats().Occupancy
}
