package bench

// Power model for Figure 4 (Get power-efficiency). The paper measures wall
// power on a two-socket Xeon via RAPL; a laptop-scale reproduction cannot.
// This analytic model preserves the figure's *shape*: package idle power is
// paid regardless of thread count, each active hardware thread adds a fixed
// active cost, and DRAM power scales with delivered bandwidth. Efficiency
// (M reqs/s per watt) therefore peaks where throughput still scales close
// to linearly and degrades once hyper-threads add power without adding
// bandwidth-bound throughput — exactly the Figure 4 curve.
//
// Constants approximate the paper's testbed (2×18-core Xeon Gold 6254,
// 8 DDR4-2933 channels): ~90 W combined package idle, ~3.5 W per active
// core-thread, ~0.5 J per GB of DRAM traffic (~60 pJ/bit) at 64 B per
// request. The model deliberately uses the *requested* thread count, not
// the host's core count, so the efficiency curve keeps the paper's shape
// even when the sweep is replayed on a smaller machine.
const (
	idleWatts          = 90.0
	wattsPerThread     = 3.5
	dramJoulesPerGByte = 0.5
	bytesPerRequest    = 64.0 // one cache line per request (DLHT's ideal)
)

// ModelWatts estimates wall power for a run at the given thread count and
// throughput (million requests per second).
func ModelWatts(threads int, mreqs float64) float64 {
	gbps := mreqs * 1e6 * bytesPerRequest / 1e9
	return idleWatts + wattsPerThread*float64(threads) + dramJoulesPerGByte*gbps
}

// Efficiency returns M reqs/s per modeled watt — the Figure 4 metric.
func Efficiency(threads int, mreqs float64) float64 {
	w := ModelWatts(threads, mreqs)
	if w <= 0 {
		return 0
	}
	return mreqs / w
}
