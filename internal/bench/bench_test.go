package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestMeasurementMReqs(t *testing.T) {
	m := Measurement{Ops: 2_000_000, Elapsed: time.Second}
	if m.MReqs() != 2.0 {
		t.Fatalf("MReqs = %v", m.MReqs())
	}
	if (Measurement{}).MReqs() != 0 {
		t.Fatal("zero measurement must be 0")
	}
}

func TestRunWorkloadCounts(t *testing.T) {
	tbl := NewDLHT(1<<10, false)
	tgt := DLHTTarget(tbl, "DLHT", true)
	PrepopulateParallel(tgt, 512, 2)
	m := RunWorkload(tgt, 2, 50*time.Millisecond, GetLoop(tgt, 512, 8))
	if m.Ops == 0 {
		t.Fatal("no operations recorded")
	}
}

func TestPrepopulateThenGet(t *testing.T) {
	tbl := NewDLHT(1<<10, false)
	tgt := DLHTTarget(tbl, "DLHT", false)
	PrepopulateParallel(tgt, 1000, 4)
	w := tgt.NewWorker(9)
	for k := uint64(0); k < 1000; k++ {
		if v, ok := w.Get(k); !ok || v != k+1 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
}

func TestDLHTWorkerBatchGet(t *testing.T) {
	tbl := NewDLHT(1<<10, false)
	tgt := DLHTTarget(tbl, "DLHT", true)
	PrepopulateParallel(tgt, 100, 1)
	w := tgt.NewWorker(1).(BatchGetter)
	keys := []uint64{1, 2, 3, 999}
	vals := make([]uint64, 4)
	oks := make([]bool, 4)
	w.GetBatch(keys, vals, oks)
	for i := 0; i < 3; i++ {
		if !oks[i] || vals[i] != keys[i]+1 {
			t.Fatalf("batch %d = (%d,%v)", i, vals[i], oks[i])
		}
	}
	if oks[3] {
		t.Fatal("missing key reported found")
	}
}

func TestPopulateGrows(t *testing.T) {
	dl := DLHTTarget(core.MustNew(core.Config{Bins: 64, Resizable: true, MaxThreads: 64}), "DLHT", true)
	m := Populate(dl, 2, 10000)
	if m.Ops != 10000 {
		t.Fatalf("ops = %d", m.Ops)
	}
}

func TestPowerModelShape(t *testing.T) {
	// More throughput at equal threads must cost more power but still
	// improve efficiency; more threads at equal throughput must hurt it.
	if ModelWatts(8, 100) <= ModelWatts(8, 10) {
		t.Fatal("power must grow with bandwidth")
	}
	if Efficiency(8, 100) <= Efficiency(8, 10) {
		t.Fatal("efficiency must grow with throughput at fixed threads")
	}
	if Efficiency(8, 100) >= Efficiency(1, 100) {
		t.Fatal("efficiency must drop with idle-burning threads")
	}
	if ModelWatts(4, 50) <= ModelWatts(1, 50) {
		t.Fatal("power must grow with threads")
	}
}

func TestCXLTargetSlowsGets(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates the 128MiB chase buffer")
	}
	tbl := NewDLHT(1<<12, false)
	tgt := DLHTTarget(tbl, "DLHT", false)
	PrepopulateParallel(tgt, 1000, 1)
	far := CXLTarget(tgt)
	w := far.NewWorker(0)
	if v, ok := w.Get(5); !ok || v != 6 {
		t.Fatalf("CXL-wrapped Get = (%d,%v)", v, ok)
	}
	if !w.(*cxlWorker).inner.(*dlhtWorker).h.Contains(5) {
		t.Fatal("wrapped worker lost table access")
	}
}

func TestResultFormatting(t *testing.T) {
	r := Result{
		ID: "figX", Title: "Demo", Header: []string{"a", "bb"},
		Notes: "hello",
	}
	r.AddRow("1", "2")
	s := r.String()
	for _, want := range []string{"figX", "Demo", "a", "bb", "hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2\n") {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, e := range Registry {
		got, err := Lookup(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("Lookup(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

// Every experiment must run end-to-end at QuickScale and produce rows.
func TestAllExperimentsQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	s := QuickScale()
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(s)
			if res.ID == "" || len(res.Header) == 0 {
				t.Fatalf("experiment %s returned empty metadata", e.ID)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("experiment %s produced no rows", e.ID)
			}
			t.Log("\n" + res.String())
		})
	}
}

func TestDefaultThreadsMonotonic(t *testing.T) {
	ths := DefaultThreads()
	if len(ths) == 0 || ths[0] != 1 {
		t.Fatalf("threads = %v", ths)
	}
	for i := 1; i < len(ths); i++ {
		if ths[i] <= ths[i-1] {
			t.Fatalf("threads not increasing: %v", ths)
		}
	}
}

func TestGeometry(t *testing.T) {
	g := Geometry{Keys: 300}
	if g.bins() < 200 || g.cells() < 1200 {
		t.Fatalf("bins=%d cells=%d", g.bins(), g.cells())
	}
}
