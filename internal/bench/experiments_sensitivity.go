package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/hashfn"
	"repro/internal/workload"
)

// kvWorker drives a table in Allocator mode through 8-byte-encoded integer
// keys, for the value/key-size sensitivity studies.
type kvWorker struct {
	h       *core.Handle
	keyBuf  [256]byte
	keySize int
	val     []byte
}

func (w *kvWorker) key(k uint64) []byte {
	binary.LittleEndian.PutUint64(w.keyBuf[:8], k)
	// Larger keys repeat the 8-byte pattern to the requested size; the
	// unique prefix keeps keys distinct.
	for i := 8; i < w.keySize; i++ {
		w.keyBuf[i] = byte(i)
	}
	n := w.keySize
	if n < 8 {
		n = 8
	}
	return w.keyBuf[:n]
}

// Fig09ValueSize reproduces Figure 9: vary the value size from 8 B
// (inlined) to 1.5 KB (out of line) under Get, Get-Access (reads the whole
// value) and InsDel.
func Fig09ValueSize(s Scale) Result {
	res := Result{
		ID:     "fig9",
		Title:  "Varying value size, M reqs/s",
		Header: []string{"value(B)", "Get", "Get-Access", "InsDel"},
		Notes:  "paper shape: Get flat (pointer API); Get-Access drops fast; InsDel degrades with allocation size",
	}
	prepop := s.Keys / 4
	threads := s.maxThreads()
	for _, vs := range []int{8, 16, 64, 256, 1024, 1500} {
		var get, getAccess, insdel float64
		if vs == 8 {
			// 8-byte values are inlined (§5.2.1).
			tbl := NewDLHT(prepop*2/3+64, false)
			tgt := DLHTTarget(tbl, "DLHT", true)
			PrepopulateParallel(tgt, prepop, threads)
			get = RunWorkload(tgt, threads, s.Dur, GetLoop(tgt, prepop, s.Batch)).MReqs()
			getAccess = get // the inlined value IS the fetched word
			insdel = RunWorkload(tgt, threads, s.Dur, InsDelLoop(tgt, prepop, s.Batch)).MReqs()
		} else {
			mk := func() *core.Table {
				return mustNewDLHT(core.Config{
					Mode: core.Allocator, Bins: prepop*2/3 + 64,
					ValueSize: vs, MaxThreads: 4096,
				})
			}
			get = runKV(mk(), prepop, vs, 8, threads, s.Dur, kvGet)
			getAccess = runKV(mk(), prepop, vs, 8, threads, s.Dur, kvGetAccess)
			insdel = runKV(mk(), prepop, vs, 8, threads, s.Dur, kvInsDel)
		}
		res.AddRow(fmt.Sprint(vs), f1(get), f1(getAccess), f1(insdel))
	}
	return res
}

// Fig10KeySize reproduces Figure 10: vary the key size from 8 to 256 bytes;
// keys beyond 8 bytes move into the allocation and every Get must
// dereference (the paper's "steep performance drop").
func Fig10KeySize(s Scale) Result {
	res := Result{
		ID:     "fig10",
		Title:  "Varying key size, M reqs/s",
		Header: []string{"key(B)", "Get", "InsDel"},
		Notes:  "paper shape: steep drop beyond 8 B keys (pointer dereference + larger allocations)",
	}
	prepop := s.Keys / 4
	threads := s.maxThreads()
	for _, ks := range []int{8, 16, 32, 64, 128, 256} {
		mk := func() *core.Table {
			return mustNewDLHT(core.Config{
				Mode: core.Allocator, Bins: prepop*2/3 + 64,
				ValueSize: 8, VariableKV: true, MaxThreads: 4096,
			})
		}
		get := runKV(mk(), prepop, 8, ks, threads, s.Dur, kvGet)
		insdel := runKV(mk(), prepop, 8, ks, threads, s.Dur, kvInsDel)
		res.AddRow(fmt.Sprint(ks), f1(get), f1(insdel))
	}
	return res
}

// kv workload selectors for runKV.
type kvMode int

const (
	kvGet kvMode = iota
	kvGetAccess
	kvInsDel
)

// runKV prepopulates an Allocator-mode table with integer-derived byte keys
// and drives the selected workload.
func runKV(tbl *core.Table, prepop uint64, valSize, keySize, threads int, dur time.Duration, mode kvMode) float64 {
	// Prepopulate.
	var wg sync.WaitGroup
	per := prepop / uint64(threads)
	if per == 0 {
		per = prepop
	}
	for tid := uint64(0); tid*per < prepop; tid++ {
		lo, hi := tid*per, (tid+1)*per
		if hi > prepop {
			hi = prepop
		}
		wg.Add(1)
		go func(tid, lo, hi uint64) {
			defer wg.Done()
			w := &kvWorker{h: tbl.MustHandle(), keySize: keySize, val: make([]byte, valSize)}
			for k := lo; k < hi; k++ {
				w.h.InsertKV(0, w.key(k), w.val)
			}
		}(tid, lo, hi)
	}
	wg.Wait()

	var stop atomic.Bool
	var total atomic.Uint64
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := &kvWorker{h: tbl.MustHandle(), keySize: keySize, val: make([]byte, valSize)}
			stream := workload.NewUniform(uint64(tid)+1, prepop)
			fresh := workload.NewFreshKeys(tid, prepop)
			// Read paths use the two-level prefetched batch (§3.3: "our
			// pointer-based API also allows us to prefetch the externally
			// stored values in Allocator mode"). Each request needs its own
			// key buffer, since kvWorker.key reuses one.
			const kvBatch = 16
			reqs := make([]core.KVGet, kvBatch)
			keyBufs := make([][]byte, kvBatch)
			for i := range keyBufs {
				keyBufs[i] = make([]byte, 256)
			}
			var ops, sink uint64
			for !stop.Load() {
				switch mode {
				case kvGet, kvGetAccess:
					for i := range reqs {
						k := w.key(stream.Key())
						copy(keyBufs[i], k)
						reqs[i] = core.KVGet{Key: keyBufs[i][:len(k)]}
					}
					w.h.GetKVBatch(reqs)
					if mode == kvGetAccess {
						for i := range reqs {
							for _, b := range reqs[i].Value {
								sink += uint64(b)
							}
						}
					}
					ops += kvBatch
				case kvInsDel:
					for i := 0; i < 8; i++ {
						k := w.key(fresh.Key())
						w.h.InsertKV(0, k, w.val)
						w.h.DeleteKV(0, k)
					}
					ops += 16
				}
			}
			_ = sink
			total.Add(ops)
		}(tid)
	}
	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / time.Since(begin).Seconds() / 1e6
}

// Fig11IndexSize reproduces Figure 11: vary the index size from
// cache-resident (1 MB) upward; prefetching only pays once the index
// exceeds the cache hierarchy.
func Fig11IndexSize(s Scale) Result {
	res := Result{
		ID:     "fig11",
		Title:  "Varying index size, M reqs/s",
		Header: []string{"index", "bins", "Get", "Get-NoBatch", "InsDel"},
		Notes:  "paper shape: batching overhead-only for L2-resident index; grows beneficial with size. InsDel prefers larger indexes (fewer bin conflicts)",
	}
	threads := s.maxThreads()
	minBins := s.Keys / 16
	if minBins < 1<<8 {
		minBins = 1 << 8
	}
	maxBins := s.Keys * 4
	for bins := minBins; bins <= maxBins; bins *= 4 {
		keys := bins / 2
		tbl := NewDLHT(bins, false)
		tgt := DLHTTarget(tbl, "DLHT", true)
		tgtNB := DLHTTarget(tbl, "DLHT-NoBatch", false)
		PrepopulateParallel(tgt, keys, threads)
		get := RunWorkload(tgt, threads, s.Dur, GetLoop(tgt, keys, s.Batch)).MReqs()
		getNB := RunWorkload(tgtNB, threads, s.Dur, GetLoop(tgtNB, keys, 1)).MReqs()
		insdel := RunWorkload(tgt, threads, s.Dur, InsDelLoop(tgt, keys, s.Batch)).MReqs()
		res.AddRow(fmt.Sprintf("%dMB", bins*64>>20), fmt.Sprint(bins), f1(get), f1(getNB), f1(insdel))
	}
	return res
}

// Fig12BatchSize reproduces Figure 12: batch degree 1..128 for Get, InsDel
// and Get-Resizing (resize capability compiled in but never triggered).
func Fig12BatchSize(s Scale) Result {
	res := Result{
		ID:     "fig12",
		Title:  "Varying batch size, M reqs/s",
		Header: []string{"batch", "Get", "InsDel", "Get-Resizing"},
		Notes:  "paper shape: gains saturate ~24; resizing tax largest unbatched (2 atomic stores amortized per batch)",
	}
	threads := s.maxThreads()
	tbl := NewDLHT(s.Keys*2/3+64, false)
	tgt := DLHTTarget(tbl, "DLHT", true)
	PrepopulateParallel(tgt, s.Keys, threads)
	// Resizing-enabled table, sized to never actually resize (§5.2.3).
	tblR := mustNewDLHT(core.Config{Bins: s.Keys*2/3 + 64, Resizable: true, MaxThreads: 4096})
	tgtR := DLHTTarget(tblR, "DLHT-Resizing", true)
	PrepopulateParallel(tgtR, s.Keys, threads)
	for _, batch := range []int{1, 2, 4, 8, 16, 24, 32, 64, 128} {
		bt, btR := tgt, tgtR
		if batch == 1 {
			bt.Batched, btR.Batched = false, false
		}
		get := RunWorkload(bt, threads, s.Dur, GetLoop(bt, s.Keys, batch)).MReqs()
		insdel := RunWorkload(bt, threads, s.Dur, InsDelLoop(bt, s.Keys, batch)).MReqs()
		getR := RunWorkload(btR, threads, s.Dur, GetLoop(btR, s.Keys, batch)).MReqs()
		res.AddRow(fmt.Sprint(batch), f1(get), f1(insdel), f1(getR))
	}
	return res
}

// Fig13Skew reproduces Figure 13: 1000 hot keys receive an increasing share
// of accesses.
func Fig13Skew(s Scale) Result {
	res := Result{
		ID:     "fig13",
		Title:  "Skew (1000 hot keys), M reqs/s",
		Header: []string{"hot%", "Get", "Get-NoBatch", "InsDel-hot"},
		Notes:  "paper shape: Gets improve with skew (cache locality), NoBatch overtakes at 100% hot; InsDel suffers conflicts",
	}
	threads := s.maxThreads()
	tbl := NewDLHT(s.Keys*2/3+64, false)
	tgt := DLHTTarget(tbl, "DLHT", true)
	tgtNB := DLHTTarget(tbl, "DLHT-NoBatch", false)
	PrepopulateParallel(tgt, s.Keys, threads)
	hot := uint64(1000)
	for _, pctHot := range []int{0, 25, 50, 75, 90, 100} {
		get := RunWorkload(tgt, threads, s.Dur, SkewedGetLoop(tgt, s.Keys, hot, pctHot, s.Batch)).MReqs()
		getNB := RunWorkload(tgtNB, threads, s.Dur, SkewedGetLoop(tgtNB, s.Keys, hot, pctHot, 1)).MReqs()
		insdel := RunWorkload(tgt, threads, s.Dur, skewedInsDelLoop(tgt, s.Keys, hot, pctHot)).MReqs()
		res.AddRow(fmt.Sprint(pctHot), f1(get), f1(getNB), f1(insdel))
	}
	return res
}

// skewedInsDelLoop inserts/deletes keys drawn from the skewed distribution
// in a disjoint key region (offset so prepopulated Gets are unaffected);
// hot keys collide across threads, exposing CAS conflicts as in §5.2.4.
func skewedInsDelLoop(t Target, prepop, hotKeys uint64, pctHot int) LoopFunc {
	const region = 1 << 45
	return func(w Worker, tid int, stop *atomic.Bool) uint64 {
		stream := workload.NewSkewed(uint64(tid)*31+7, prepop, hotKeys, pctHot)
		var n uint64
		for !stop.Load() {
			for i := 0; i < 16; i++ {
				k := region + stream.Key()
				w.Insert(k, k)
				w.Delete(k)
			}
			n += 32
		}
		return n
	}
}

// Fig14Features reproduces Figure 14: the cost of enabling features,
// stacked and one-at-a-time, under Get and InsDel with 32-byte values.
func Fig14Features(s Scale) Result {
	res := Result{
		ID:     "fig14",
		Title:  "Enabling features (32 B values), M reqs/s",
		Header: []string{"config", "Get", "InsDel"},
		Notes:  "VariableKV covers the paper's var-value + var-key bars; 'no mimalloc' = naive mutex allocator",
	}
	prepop := s.Keys / 4
	threads := s.maxThreads()
	type cfgMod func(*core.Config)
	base := func() core.Config {
		return core.Config{
			Mode: core.Allocator, Bins: prepop*2/3 + 64,
			ValueSize: 32, MaxThreads: 4096,
		}
	}
	run := func(mods ...cfgMod) (float64, float64) {
		cfg := base()
		for _, m := range mods {
			m(&cfg)
		}
		get := runKV(mustNewDLHT(cfg), prepop, 32, 8, threads, s.Dur, kvGet)
		insdel := runKV(mustNewDLHT(cfg), prepop, 32, 8, threads, s.Dur, kvInsDel)
		return get, insdel
	}
	resizing := func(c *core.Config) { c.Resizable = true }
	hashing := func(c *core.Config) { c.Hash = hashfn.WyHash }
	varKV := func(c *core.Config) { c.VariableKV = true }
	namespaces := func(c *core.Config) { c.Namespaces = true; c.VariableKV = true }
	noMimalloc := func(c *core.Config) { c.Alloc = alloc.NewNaive() }

	g, d := run()
	res.AddRow("default", f1(g), f1(d))
	stack := []struct {
		name string
		mods []cfgMod
	}{
		{"+resizing", []cfgMod{resizing}},
		{"+wyhash", []cfgMod{resizing, hashing}},
		{"+variable-kv", []cfgMod{resizing, hashing, varKV}},
		{"+namespaces", []cfgMod{resizing, hashing, varKV, namespaces}},
		{"+no-mimalloc", []cfgMod{resizing, hashing, varKV, namespaces, noMimalloc}},
	}
	for _, st := range stack {
		g, d := run(st.mods...)
		res.AddRow("stacked "+st.name, f1(g), f1(d))
	}
	singles := []struct {
		name string
		mod  cfgMod
	}{
		{"resizing", resizing}, {"wyhash", hashing}, {"variable-kv", varKV},
		{"namespaces", namespaces}, {"no-mimalloc", noMimalloc},
	}
	for _, sg := range singles {
		g, d := run(sg.mod)
		res.AddRow("single "+sg.name, f1(g), f1(d))
	}
	return res
}

// Fig15Latency reproduces Figure 15: average and 99th-percentile latency as
// a function of load for Get and InsDel.
func Fig15Latency(s Scale) Result {
	res := Result{
		ID:     "fig15",
		Title:  "Latency vs load",
		Header: []string{"threads", "Get M/s", "Get avg ns", "Get p99 ns", "InsDel M/s", "InsDel avg ns", "InsDel p99 ns"},
		Notes:  "paper shape: 100s of ns average, sub-microsecond p99, rising with load; InsDel above Get",
	}
	tbl := NewDLHT(s.Keys*2/3+64, false)
	tgt := DLHTTarget(tbl, "DLHT", false)
	PrepopulateParallel(tgt, s.Keys, s.maxThreads())
	for _, th := range s.Threads {
		g := MeasureLatency(tgt, th, s.Keys, s.Dur, true)
		d := MeasureLatency(tgt, th, s.Keys, s.Dur, false)
		res.AddRow(fmt.Sprint(th),
			f1(g.Throughput), f1(g.AvgNs), f1(g.P99Ns),
			f1(d.Throughput), f1(d.AvgNs), f1(d.P99Ns))
	}
	return res
}

// Fig16SingleThread reproduces Figure 16: the single-thread optimization
// (§3.4.5) against the concurrent build on one thread.
func Fig16SingleThread(s Scale) Result {
	res := Result{
		ID:     "fig16",
		Title:  "Single-thread optimization, M reqs/s (1 thread)",
		Header: []string{"workload", "concurrent build", "single-thread build", "gain"},
		Notes:  "paper: +31% InsDel, +35% InsDel-Resize, +91% InsDel-Resize-NoBatch, ~0% Get",
	}
	prepop := s.Keys / 4
	mk := func(single, resizable bool) Target {
		cfg := core.Config{Bins: prepop*2/3 + 64, SingleThread: single, Resizable: resizable, MaxThreads: 4096}
		name := "DLHT"
		if single {
			name = "DLHT-ST"
		}
		return DLHTTarget(mustNewDLHT(cfg), name, true)
	}
	type row struct {
		name      string
		resizable bool
		batch     int
		loop      func(t Target, batch int) LoopFunc
	}
	rows := []row{
		{"Get", false, s.Batch, func(t Target, b int) LoopFunc { return GetLoop(t, prepop, b) }},
		{"InsDel", false, s.Batch, func(t Target, b int) LoopFunc { return InsDelLoop(t, prepop, b) }},
		{"InsDel-Resize", true, s.Batch, func(t Target, b int) LoopFunc { return InsDelLoop(t, prepop, b) }},
		{"InsDel-Resize-NoBatch", true, 1, func(t Target, b int) LoopFunc { return InsDelLoop(t, prepop, b) }},
	}
	for _, r := range rows {
		conc := mk(false, r.resizable)
		single := mk(true, r.resizable)
		if r.name == "Get" {
			PrepopulateParallel(conc, prepop, 1)
			PrepopulateParallel(single, prepop, 1)
		}
		if r.batch == 1 {
			conc.Batched, single.Batched = false, false
		}
		mc := RunWorkload(conc, 1, s.Dur, r.loop(conc, r.batch)).MReqs()
		ms := RunWorkload(single, 1, s.Dur, r.loop(single, r.batch)).MReqs()
		gain := 0.0
		if mc > 0 {
			gain = (ms - mc) / mc
		}
		res.AddRow(r.name, f1(mc), f1(ms), pct(gain))
	}
	return res
}

// CXLEmulation reproduces §5.3.2: the Get workload under injected
// far-memory latency, with and without batching.
func CXLEmulation(s Scale) Result {
	res := Result{
		ID:     "cxl",
		Title:  "CXL emulation: Get under injected far-memory latency, M reqs/s",
		Header: []string{"config", "local", "far (CXL emu)"},
		Notes:  "paper: DLHT (prefetching) retains 2.9x over DLHT-NoBatch under far memory; far ~ half of local",
	}
	threads := s.maxThreads() / 2
	if threads < 1 {
		threads = 1
	}
	tbl := NewDLHT(s.Keys*2/3+64, false)
	tgt := DLHTTarget(tbl, "DLHT", true)
	tgtNB := DLHTTarget(tbl, "DLHT-NoBatch", false)
	PrepopulateParallel(tgt, s.Keys, threads)
	for _, t := range []Target{tgt, tgtNB} {
		local := RunWorkload(t, threads, s.Dur, GetLoop(t, s.Keys, s.Batch)).MReqs()
		far := CXLTarget(t)
		farM := RunWorkload(far, threads, s.Dur, GetLoop(far, s.Keys, s.Batch)).MReqs()
		res.AddRow(t.Name, f1(local), f1(farM))
	}
	return res
}
