package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/baselines/clht"
	"repro/internal/baselines/cuckoo"
	"repro/internal/baselines/dramhit"
	"repro/internal/baselines/folly"
	"repro/internal/baselines/growt"
	"repro/internal/baselines/leapfrog"
	"repro/internal/baselines/mica"
	"repro/internal/baselines/tbb"
	"repro/internal/core"
	"repro/internal/hashfn"
)

// PrepopulateParallel fills the target with keys 0..n-1 using several
// workers (values = key+1).
func PrepopulateParallel(t Target, n uint64, threads int) {
	if threads < 1 {
		threads = 1
	}
	per := (n + uint64(threads) - 1) / uint64(threads)
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		lo := uint64(tid) * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(tid int, lo, hi uint64) {
			defer wg.Done()
			w := t.NewWorker(tid)
			for k := lo; k < hi; k++ {
				w.Insert(k, k+1)
			}
		}(tid, lo, hi)
	}
	wg.Wait()
}

// Fig01Headline reproduces Figure 1: throughput of every design at the
// maximum thread count under the default Get and InsDel workloads.
func Fig01Headline(s Scale) Result {
	res := Result{
		ID:     "fig1",
		Title:  "Headline throughput at max threads (Get / InsDel), M reqs/s",
		Header: []string{"design", "Get", "InsDel"},
		Notes:  "paper: DLHT 1660 M Gets/s; all baselines >2x below 1B/s",
	}
	threads := s.maxThreads()
	// One design at a time: constructing (or worse, populating) all ten
	// tables at once would keep gigabytes hot and poison every later row
	// with memory pressure. Each maker builds exactly one instance.
	for _, m := range targetMakers(Geometry{Keys: s.Keys}) {
		getT := m.mk()
		PrepopulateParallel(getT, s.Keys, threads)
		get := RunWorkload(getT, threads, s.Dur, GetLoop(getT, s.Keys, s.Batch))
		getT = Target{}
		runtime.GC()
		// InsDel on a fresh empty instance (paper: "we start with an empty
		// hashtable that can fit 100 million keys").
		insT := m.mk()
		insdel := RunWorkload(insT, threads, s.Dur, InsDelLoop(insT, s.Keys, s.Batch))
		insT = Target{}
		runtime.GC()
		res.AddRow(m.name, f1(get.MReqs()), f1(insdel.MReqs()))
	}
	return res
}

// targetMaker lazily constructs one design instance.
type targetMaker struct {
	name string
	mk   func() Target
}

// targetMakers returns one constructor per Figure 1/3 design.
func targetMakers(g Geometry) []targetMaker {
	return []targetMaker{
		{"DLHT", func() Target { return DLHTTarget(NewDLHT(g.bins(), false), "DLHT", true) }},
		{"DLHT-NoBatch", func() Target { return DLHTTarget(NewDLHT(g.bins(), false), "DLHT-NoBatch", false) }},
		{"GrowT", func() Target { return BaselineTarget(growt.New(g.cells(), g.Hash)) }},
		{"DRAMHiT", func() Target { return BaselineTarget(dramhit.New(g.cells(), g.Hash)) }},
		{"Folly", func() Target { return BaselineTarget(folly.New(g.cells(), g.Hash)) }},
		{"CLHT", func() Target { return BaselineTarget(clht.New(g.bins(), g.Hash)) }},
		{"MICA", func() Target { return BaselineTarget(mica.New(g.bins(), g.Hash, 8)) }},
		{"Cuckoo", func() Target { return BaselineTarget(cuckoo.New(g.Keys/2+64, g.Hash)) }},
		{"Leapfrog", func() Target { return BaselineTarget(leapfrog.New(g.cells(), g.Hash)) }},
		{"TBB", func() Target { return BaselineTarget(tbb.New(g.Keys+64, g.Hash)) }},
	}
}

// Fig03Get reproduces Figure 3: Get throughput vs thread count for all ten
// designs.
func Fig03Get(s Scale) Result {
	res := Result{
		ID:    "fig3",
		Title: "Get throughput vs threads, M reqs/s",
		Notes: "paper shape: DLHT > DRAMHiT > {GrowT,Folly,CLHT,DLHT-NoBatch} > MICA > {Cuckoo,Leapfrog,TBB}",
	}
	targets := AllTargets(Geometry{Keys: s.Keys})
	res.Header = append([]string{"threads"}, names(targets)...)
	prepopAll(targets, s)
	for _, th := range s.Threads {
		row := []string{fmt.Sprint(th)}
		for _, t := range targets {
			m := RunWorkload(t, th, s.Dur, GetLoop(t, s.Keys, s.Batch))
			row = append(row, f1(m.MReqs()))
		}
		res.AddRow(row...)
	}
	return res
}

// Fig04Power reproduces Figure 4: Get power-efficiency (M reqs/s per watt)
// through the documented analytic power model.
func Fig04Power(s Scale) Result {
	res := Result{
		ID:    "fig4",
		Title: "Get power-efficiency vs threads, M reqs/s per modeled watt",
		Notes: "power = 90W idle + 3.5W/thread + 0.5J/GB DRAM model (DESIGN.md §4.6)",
	}
	targets := AllTargets(Geometry{Keys: s.Keys})
	res.Header = append([]string{"threads"}, names(targets)...)
	prepopAll(targets, s)
	for _, th := range s.Threads {
		row := []string{fmt.Sprint(th)}
		for _, t := range targets {
			m := RunWorkload(t, th, s.Dur, GetLoop(t, s.Keys, s.Batch))
			row = append(row, f2(Efficiency(th, m.MReqs())))
		}
		res.AddRow(row...)
	}
	return res
}

// Fig05InsDel reproduces Figure 5: the InsDel workload (insert a fresh key,
// delete it) against the designs whose deletes are meaningful. Tables start
// empty, sized for Keys, as in the paper.
func Fig05InsDel(s Scale) Result {
	res := Result{
		ID:    "fig5",
		Title: "InsDel throughput vs threads, M reqs/s",
		Notes: "paper shape: DLHT ~3x CLHT ~ DLHT-NoBatch >> MICA > GrowT (12.8x below, tombstone migrations)",
	}
	mk := func() []Target {
		g := Geometry{Keys: s.Keys}
		dl := NewDLHT(g.bins(), false)
		return []Target{
			DLHTTarget(dl, "DLHT", true),
			DLHTTarget(dl, "DLHT-NoBatch", false),
			BaselineTarget(clht.New(g.bins(), g.Hash)),
			BaselineTarget(growt.New(g.cells(), g.Hash)),
			BaselineTarget(mica.New(g.bins(), g.Hash, 8)),
		}
	}
	probe := mk()
	res.Header = append([]string{"threads"}, names(probe)...)
	for _, th := range s.Threads {
		row := []string{fmt.Sprint(th)}
		for _, t := range mk() { // fresh empty tables per point
			m := RunWorkload(t, th, s.Dur, InsDelLoop(t, s.Keys, s.Batch))
			row = append(row, f1(m.MReqs()))
		}
		res.AddRow(row...)
	}
	return res
}

// Fig06PutHeavy reproduces Figure 6: 50 % Gets + 50 % Puts on prepopulated
// keys (CLHT is omitted: no Puts).
func Fig06PutHeavy(s Scale) Result {
	res := Result{
		ID:    "fig6",
		Title: "Put-heavy (50% Get + 50% Put) vs threads, M reqs/s",
		Notes: "paper shape: DLHT ~1042 M/s, up to 2.7x over GrowT/Folly; smaller gap to DRAMHiT",
	}
	g := Geometry{Keys: s.Keys}
	dl := NewDLHT(g.bins(), false)
	targets := []Target{
		DLHTTarget(dl, "DLHT", true),
		DLHTTarget(dl, "DLHT-NoBatch", false),
	}
	targets = append(targets, BaselineTargets(g)[:3]...) // GrowT, DRAMHiT, Folly
	targets = append(targets, BaselineTarget(mica.New(g.bins(), g.Hash, 8)))
	res.Header = append([]string{"threads"}, names(targets)...)
	prepopAll(targets, s)
	for _, th := range s.Threads {
		row := []string{fmt.Sprint(th)}
		for _, t := range targets {
			m := RunWorkload(t, th, s.Dur, PutHeavyLoop(t, s.Keys, s.Batch))
			row = append(row, f1(m.MReqs()))
		}
		res.AddRow(row...)
	}
	return res
}

// Fig07Population reproduces Figure 7: average population throughput while
// inserting PopKeys into an initially small growing index.
func Fig07Population(s Scale) Result {
	res := Result{
		ID:     "fig7",
		Title:  fmt.Sprintf("Population of %d keys into a growing index, M inserts/s", s.PopKeys),
		Header: []string{"threads", "DLHT", "GrowT", "CLHT"},
		Notes:  "paper shape: DLHT 3.9x GrowT; CLHT flat beyond 8 threads (serial blocking resize)",
	}
	for _, th := range s.Threads {
		dl := DLHTTarget(mustNewDLHT(core.Config{
			Bins: 1 << 10, Resizable: true, MaxThreads: 4096,
		}), "DLHT", true)
		gt := BaselineTarget(growt.New(1<<12, hashfn.Modulo))
		cl := BaselineTarget(clht.New(1<<10, hashfn.Modulo))
		row := []string{fmt.Sprint(th)}
		for _, t := range []Target{dl, gt, cl} {
			m := Populate(t, th, s.PopKeys)
			row = append(row, f1(m.MReqs()))
		}
		res.AddRow(row...)
	}
	return res
}

// Fig08ResizeTimeline reproduces Figure 8: Gets and Inserts per interval
// while the index resizes live.
func Fig08ResizeTimeline(s Scale) Result {
	res := Result{
		ID:     "fig8",
		Title:  "Gets and Inserts during a non-blocking resize (time series)",
		Header: []string{"t(ms)", "Gets M/s", "Inserts M/s"},
		Notes:  "paper shape: Gets dip while bins transfer but never stall; inserts join the transfer then finish in the new index",
	}
	tbl := mustNewDLHT(core.Config{
		// Sized so the prepopulated keys nearly fill it: the extra inserts
		// force a live migration.
		Bins: s.Keys / 2, Resizable: true, MaxThreads: 4096,
	})
	h := tbl.MustHandle()
	for k := uint64(0); k < s.Keys; k++ {
		h.Insert(k, k)
	}
	half := s.maxThreads() / 2
	if half < 1 {
		half = 1
	}
	series := ResizeTimeline(tbl, s.Keys, s.PopKeys, half, half, s.Dur/8+time.Millisecond)
	for _, p := range series {
		res.AddRow(fmt.Sprint(p.At.Milliseconds()), f1(p.GetsM), f1(p.InsertM))
	}
	if st := tbl.Stats(); st.Resizes > 0 {
		res.Notes += fmt.Sprintf(" | resizes completed: %d, keys moved: %d", st.Resizes, st.KeysMoved)
	}
	return res
}

// OccupancyStudy reproduces §5.1.5: occupancy at the moment a resize
// triggers, with wyhash, for DLHT (bounded chaining, link ratio 5), CLHT
// (no chaining) and GrowT (30 % trigger).
func OccupancyStudy(s Scale) Result {
	res := Result{
		ID:     "occupancy",
		Title:  "Index occupancy when a resize triggers (wyhash)",
		Header: []string{"design", "occupancy at resize", "paper band"},
		Notes:  "paper: DLHT 61-72%, CLHT 1-5%, open-addressing ~30-50% (GrowT trigger 30%)",
	}
	// DLHT with link buckets limited to one fifth of bins (§5.1.5).
	{
		tbl := mustNewDLHT(core.Config{
			Bins: 1 << 10, LinkRatio: 5, Hash: hashfn.WyHash,
			Resizable: true, MaxThreads: 64,
		})
		h := tbl.MustHandle()
		lastOcc := 0.0
		resizes := tbl.Stats().Resizes
		for k := uint64(0); ; k++ {
			h.Insert(k, k)
			if k%256 == 0 {
				st := tbl.Stats()
				if st.Resizes > resizes {
					break
				}
				if st.Occupancy > lastOcc {
					lastOcc = st.Occupancy
				}
			}
		}
		res.AddRow("DLHT", pct(lastOcc), "61-72%")
	}
	{
		m := clht.New(1<<10, hashfn.WyHash)
		last := 0.0
		for k := uint64(0); m.Resizes() == 0; k++ {
			m.Insert(k, k)
			if k%64 == 0 {
				occ, cap := m.Occupancy()
				if f := float64(occ) / float64(cap); f > last {
					last = f
				}
			}
		}
		res.AddRow("CLHT", pct(last), "1-5%")
	}
	{
		m := growt.New(1<<12, hashfn.WyHash)
		last := 0.0
		for k := uint64(1); m.Resizes() == 0; k++ {
			m.Insert(k, k)
			if k%64 == 0 {
				occ, cap := m.Occupancy()
				if f := float64(occ) / float64(cap); f > last {
					last = f
				}
			}
		}
		res.AddRow("GrowT", pct(last), "30-50% (trigger 30%)")
	}
	return res
}

// helpers

func names(ts []Target) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

func prepopAll(ts []Target, s Scale) {
	for _, t := range ts {
		if t.Name == "DLHT-NoBatch" {
			continue // shares its table with "DLHT"
		}
		PrepopulateParallel(t, s.Keys, s.maxThreads())
	}
}
