package bench

import (
	"sync/atomic"

	"repro/internal/cpuops"
)

// CXL emulation (§5.3.2). The paper emulates CXL-attached memory by pinning
// DLHT's memory on the remote NUMA socket, roughly doubling load latency.
// Single-socket machines cannot do that, so this harness wraps a worker
// with a latency injector: before every operation it performs a dependent
// pointer-chase through a large cold buffer, adding approximately one
// uncached memory access of delay per request — the same knob the remote
// socket turns. Batched paths pay the injection once per request too (the
// chase is issued per key), so prefetching hides the *table's* latency but
// not the injected one, matching the paper's observation that batching
// retains a large advantage (2.9×) under far memory.

// cxlChaseSize is sized far beyond LLC so chase loads miss cache.
const cxlChaseSize = 1 << 24 // 16M words = 128 MiB

// cxlBuffer is a pointer-chase ring shared by all injected workers.
var cxlBuffer []uint64

// initCXL builds the chase ring (a random cycle) once.
func initCXL() {
	if cxlBuffer != nil {
		return
	}
	buf := make([]uint64, cxlChaseSize)
	// Sattolo's algorithm: a single cycle covering all slots.
	perm := make([]uint64, cxlChaseSize)
	for i := range perm {
		perm[i] = uint64(i)
	}
	s := uint64(0x9e3779b97f4a7c15)
	for i := cxlChaseSize - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := s % uint64(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < cxlChaseSize-1; i++ {
		buf[perm[i]] = perm[i+1]
	}
	buf[perm[cxlChaseSize-1]] = perm[0]
	cxlBuffer = buf
}

// cxlWorker wraps a worker with the latency injection. Each worker owns a
// set of independent chase cursors (one per in-flight batch slot) so the
// injected far-memory accesses are *prefetchable* — the remote socket slows
// loads down, it does not serialize them, and the paper's point is exactly
// that software prefetching still masks the added latency.
type cxlWorker struct {
	inner Worker
	pos   [128]uint64
}

var cxlCursor atomic.Uint64

func newCXLWorker(inner Worker) *cxlWorker {
	initCXL()
	w := &cxlWorker{inner: inner}
	for i := range w.pos {
		w.pos[i] = cxlCursor.Add(977) % cxlChaseSize
	}
	return w
}

// chase performs one dependent cold load on cursor i.
func (w *cxlWorker) chase(i int) {
	w.pos[i] = cxlBuffer[w.pos[i]]
}

func (w *cxlWorker) Get(k uint64) (uint64, bool) { w.chase(0); return w.inner.Get(k) }
func (w *cxlWorker) Insert(k, v uint64) bool     { w.chase(0); return w.inner.Insert(k, v) }
func (w *cxlWorker) Put(k, v uint64) bool        { w.chase(0); return w.inner.Put(k, v) }
func (w *cxlWorker) Delete(k uint64) bool        { w.chase(0); return w.inner.Delete(k) }

func (w *cxlWorker) GetBatch(keys []uint64, vals []uint64, oks []bool) {
	// One injected far-memory access per request. In the batched path the
	// chase targets are prefetched up front — like the table's own bins —
	// so their latency overlaps; the loads then complete from cache.
	n := len(keys)
	if n > len(w.pos) {
		n = len(w.pos)
	}
	for i := 0; i < n; i++ {
		cpuops.PrefetchUint64(&cxlBuffer[w.pos[i]])
	}
	if bg, ok := w.inner.(BatchGetter); ok {
		bg.GetBatch(keys, vals, oks)
	} else {
		for i, k := range keys {
			vals[i], oks[i] = w.inner.Get(k)
		}
	}
	for i := 0; i < n; i++ {
		w.chase(i)
	}
}

// CXLTarget wraps a target with far-memory latency injection.
func CXLTarget(t Target) Target {
	return Target{
		Name:      t.Name + "-CXL",
		Batched:   t.Batched,
		NewWorker: func(tid int) Worker { return newCXLWorker(t.NewWorker(tid)) },
	}
}
