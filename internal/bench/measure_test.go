package bench

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// Loop drivers must produce the operation mixes they claim.

// countingWorker records which operations a loop performs.
type countingWorker struct {
	gets, inserts, puts, deletes atomic.Uint64
	inner                        Worker
}

func (w *countingWorker) Get(k uint64) (uint64, bool) { w.gets.Add(1); return w.inner.Get(k) }
func (w *countingWorker) Insert(k, v uint64) bool     { w.inserts.Add(1); return w.inner.Insert(k, v) }
func (w *countingWorker) Put(k, v uint64) bool        { w.puts.Add(1); return w.inner.Put(k, v) }
func (w *countingWorker) Delete(k uint64) bool        { w.deletes.Add(1); return w.inner.Delete(k) }

func countingTarget(prepop uint64) (Target, *countingWorker) {
	tbl := NewDLHT(prepop+64, false)
	base := DLHTTarget(tbl, "DLHT", false)
	PrepopulateParallel(base, prepop, 1)
	cw := &countingWorker{}
	return Target{
		Name:    "counting",
		Batched: false,
		NewWorker: func(tid int) Worker {
			cw.inner = base.NewWorker(tid)
			return cw
		},
	}, cw
}

func TestGetLoopOnlyGets(t *testing.T) {
	tgt, cw := countingTarget(256)
	RunWorkload(tgt, 1, 20*time.Millisecond, GetLoop(tgt, 256, 1))
	if cw.gets.Load() == 0 {
		t.Fatal("no gets")
	}
	if cw.inserts.Load()+cw.puts.Load()+cw.deletes.Load() != 0 {
		t.Fatal("Get workload performed mutations")
	}
}

func TestInsDelLoopBalanced(t *testing.T) {
	tgt, cw := countingTarget(256)
	RunWorkload(tgt, 1, 20*time.Millisecond, InsDelLoop(tgt, 256, 1))
	ins, del := cw.inserts.Load(), cw.deletes.Load()
	if ins == 0 || ins != del {
		t.Fatalf("inserts=%d deletes=%d, want balanced", ins, del)
	}
	if cw.gets.Load()+cw.puts.Load() != 0 {
		t.Fatal("InsDel workload performed reads/puts")
	}
}

func TestPutHeavyLoopHalfAndHalf(t *testing.T) {
	tgt, cw := countingTarget(256)
	RunWorkload(tgt, 1, 20*time.Millisecond, PutHeavyLoop(tgt, 256, 1))
	g, p := cw.gets.Load(), cw.puts.Load()
	if g == 0 || g != p {
		t.Fatalf("gets=%d puts=%d, want 50/50", g, p)
	}
}

func TestSkewedGetLoopRuns(t *testing.T) {
	tgt, cw := countingTarget(1024)
	RunWorkload(tgt, 1, 20*time.Millisecond, SkewedGetLoop(tgt, 1024, 16, 90, 1))
	if cw.gets.Load() == 0 {
		t.Fatal("no gets")
	}
}

func TestMeasureLatencyShape(t *testing.T) {
	tbl := NewDLHT(1<<12, false)
	tgt := DLHTTarget(tbl, "DLHT", false)
	PrepopulateParallel(tgt, 1024, 1)
	p := MeasureLatency(tgt, 1, 1024, 40*time.Millisecond, true)
	if p.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
	if p.AvgNs <= 0 || p.P99Ns <= 0 {
		t.Fatalf("latencies: %+v", p)
	}
	if p.P99Ns < p.AvgNs/4 {
		t.Fatalf("p99 %f wildly below avg %f", p.P99Ns, p.AvgNs)
	}
}

func TestResizeTimelineProducesSeries(t *testing.T) {
	tbl := core.MustNew(core.Config{Bins: 256, Resizable: true, MaxThreads: 64})
	h := tbl.MustHandle()
	const prepop = 512
	for k := uint64(0); k < prepop; k++ {
		h.Insert(k, k)
	}
	series := ResizeTimeline(tbl, prepop, 4096, 1, 1, 5*time.Millisecond)
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	var gets, ins float64
	for _, p := range series {
		gets += p.GetsM
		ins += p.InsertM
	}
	if gets <= 0 || ins <= 0 {
		t.Fatalf("series sums: gets=%f inserts=%f", gets, ins)
	}
}

func TestPopulateSplitsAcrossThreads(t *testing.T) {
	tbl := core.MustNew(core.Config{Bins: 64, Resizable: true, MaxThreads: 64})
	tgt := DLHTTarget(tbl, "DLHT", false)
	m := Populate(tgt, 4, 8000)
	if m.Ops != 8000 {
		t.Fatalf("ops = %d", m.Ops)
	}
	// All inserted keys are present.
	w := tgt.NewWorker(9)
	missing := 0
	for k := uint64(0); k < 8000; k++ {
		if _, ok := w.Get(k); !ok {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d keys missing after Populate", missing)
	}
}

func TestBaselineTargetAdapters(t *testing.T) {
	for _, tgt := range BaselineTargets(Geometry{Keys: 1 << 10}) {
		w := tgt.NewWorker(0)
		if !w.Insert(7, 70) {
			t.Fatalf("%s: insert failed", tgt.Name)
		}
		if v, ok := w.Get(7); !ok || v != 70 {
			t.Fatalf("%s: get = (%d,%v)", tgt.Name, v, ok)
		}
	}
}

func TestFastTargetsSubset(t *testing.T) {
	names := map[string]bool{}
	for _, tgt := range FastTargets(Geometry{Keys: 1 << 10}) {
		names[tgt.Name] = true
	}
	for _, want := range []string{"DLHT", "DLHT-NoBatch", "GrowT", "DRAMHiT", "Folly", "CLHT", "MICA"} {
		if !names[want] {
			t.Fatalf("FastTargets missing %s", want)
		}
	}
	if names["Cuckoo"] || names["TBB"] || names["Leapfrog"] {
		t.Fatal("FastTargets must omit the sub-250M tier (paper §5.1.1)")
	}
}
