package bench

import (
	"testing"
	"time"
)

func TestSamplerSummary(t *testing.T) {
	s := NewSampler(1000)
	for i := int64(1); i <= 100; i++ {
		s.Add(i * 1000) // 1µs .. 100µs
	}
	sum := s.Summary()
	if sum.Count != 100 {
		t.Fatalf("Count = %d, want 100", sum.Count)
	}
	if sum.P50 < 50*time.Microsecond || sum.P50 > 52*time.Microsecond {
		t.Fatalf("P50 = %v", sum.P50)
	}
	if sum.P99 < 99*time.Microsecond || sum.P99 > 100*time.Microsecond {
		t.Fatalf("P99 = %v", sum.P99)
	}
	if sum.Max != 100*time.Microsecond {
		t.Fatalf("Max = %v", sum.Max)
	}
	if sum.Avg != 50500*time.Nanosecond {
		t.Fatalf("Avg = %v", sum.Avg)
	}
}

func TestSamplerCapAndMerge(t *testing.T) {
	a := NewSampler(10)
	for i := 0; i < 25; i++ {
		a.Add(int64(i))
	}
	if got := a.Summary(); got.Count != 10 || got.Dropped != 15 {
		t.Fatalf("Count=%d Dropped=%d, want 10,15", got.Count, got.Dropped)
	}
	b := NewSampler(100)
	b.Add(7)
	b.Merge(a)
	if got := b.Summary(); got.Count != 11 || got.Dropped != 15 {
		t.Fatalf("merged Count=%d Dropped=%d, want 11,15", got.Count, got.Dropped)
	}
	empty := NewSampler(4)
	if s := empty.Summary(); s.Count != 0 || s.String() != "latency: no samples" {
		t.Fatalf("empty summary = %+v %q", s, s.String())
	}
}
