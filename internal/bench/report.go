package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// Result is the tabular output of one experiment: the rows/series the
// paper's corresponding figure or table reports.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// String renders an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Notes)
	}
	return b.String()
}

// CSV renders the result as comma-separated values.
func (r Result) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Scale parameterizes every experiment. The paper runs 100 M–1.6 B keys on
// a 72-thread server; the default scale targets a laptop while preserving
// memory residency (the index comfortably exceeds L3).
type Scale struct {
	// Keys is the prepopulated key count (paper: 100 M).
	Keys uint64
	// PopKeys is the population-experiment total (paper: 800 M = 8×Keys).
	PopKeys uint64
	// Dur is the measurement window per data point.
	Dur time.Duration
	// Threads is the sweep axis (paper: 1..71).
	Threads []int
	// Batch is the default batch size (paper default: bold "batch-size" in
	// Table 2; gains saturate around 24 per §5.2.3).
	Batch int
}

// DefaultScale suits interactive runs (~1M keys, sub-second points).
func DefaultScale() Scale {
	return Scale{
		Keys:    1 << 20,
		PopKeys: 4 << 20,
		Dur:     400 * time.Millisecond,
		Threads: DefaultThreads(),
		Batch:   16,
	}
}

// QuickScale suits unit tests: tiny keys, very short windows.
func QuickScale() Scale {
	threads := []int{1, 2}
	if runtime.GOMAXPROCS(0) < 2 {
		threads = []int{1}
	}
	return Scale{
		Keys:    1 << 12,
		PopKeys: 1 << 14,
		Dur:     30 * time.Millisecond,
		Threads: threads,
		Batch:   8,
	}
}

// maxThreads returns the largest thread count in the sweep.
func (s Scale) maxThreads() int {
	m := 1
	for _, t := range s.Threads {
		if t > m {
			m = t
		}
	}
	return m
}
