// Package bench is the experiment harness that regenerates every table and
// figure of the DLHT paper's evaluation (§5). It adapts DLHT and the eight
// baselines to one worker interface, drives the paper's workloads across
// thread sweeps, and formats results as the rows/series the paper reports.
package bench

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/baselines/clht"
	"repro/internal/baselines/cuckoo"
	"repro/internal/baselines/dramhit"
	"repro/internal/baselines/folly"
	"repro/internal/baselines/growt"
	"repro/internal/baselines/leapfrog"
	"repro/internal/baselines/mica"
	"repro/internal/baselines/tbb"
	"repro/internal/core"
	"repro/internal/hashfn"
)

// Worker is the per-thread operation surface every target provides.
type Worker interface {
	Get(key uint64) (uint64, bool)
	Insert(key, val uint64) bool
	Put(key, val uint64) bool
	Delete(key uint64) bool
}

// BatchGetter is implemented by workers with a batched/prefetched Get path
// (DLHT, MICA, DRAMHiT).
type BatchGetter interface {
	GetBatch(keys []uint64, vals []uint64, oks []bool)
}

// OpsBatcher is implemented by the DLHT worker for mixed-op batches that
// must preserve order (§3.3).
type OpsBatcher interface {
	ExecOps(ops []core.Op)
}

// Target names a table implementation and constructs per-thread workers.
type Target struct {
	Name string
	// NewWorker returns the worker for a thread id. Workers are not shared.
	NewWorker func(tid int) Worker
	// Batched reports whether the target's batch path should be used.
	Batched bool
}

// ---------------------------------------------------------------------------
// DLHT adapters
// ---------------------------------------------------------------------------

// dlhtWorker adapts a core.Handle, batching through Exec or — when the
// harness-wide pipeline mode is on — streaming through a long-lived
// core.Pipeline whose completions scatter results back to the caller.
type dlhtWorker struct {
	h   *core.Handle
	ops []core.Op

	// Pipeline mode state: the worker-lifetime pipeline plus the scatter
	// cursor its OnComplete writes through during a batch call.
	pl      *core.Pipeline
	outOps  []core.Op
	outVals []uint64
	outOKs  []bool
	outI    int
}

func (w *dlhtWorker) Get(k uint64) (uint64, bool) { return w.h.Get(k) }
func (w *dlhtWorker) Insert(k, v uint64) bool     { _, err := w.h.Insert(k, v); return err == nil }
func (w *dlhtWorker) Put(k, v uint64) bool        { _, ok := w.h.Put(k, v); return ok }
func (w *dlhtWorker) Delete(k uint64) bool        { _, ok := w.h.Delete(k); return ok }

// pipeline lazily creates the worker's streaming pipeline.
func (w *dlhtWorker) pipeline() *core.Pipeline {
	if w.pl == nil {
		w.pl = w.h.Pipeline(core.PipelineOpts{OnComplete: func(op *core.Op) {
			i := w.outI
			w.outI++
			if w.outOps != nil {
				w.outOps[i] = *op
				return
			}
			w.outVals[i], w.outOKs[i] = op.Result, op.OK
		}})
	}
	return w.pl
}

func (w *dlhtWorker) GetBatch(keys []uint64, vals []uint64, oks []bool) {
	if usePipeline {
		pl := w.pipeline()
		w.outOps, w.outVals, w.outOKs, w.outI = nil, vals, oks, 0
		for _, k := range keys {
			pl.Get(k)
		}
		pl.Flush() // results must be scattered before the batch call returns
		return
	}
	if cap(w.ops) < len(keys) {
		w.ops = make([]core.Op, len(keys))
	}
	ops := w.ops[:len(keys)]
	for i, k := range keys {
		ops[i] = core.Op{Kind: core.OpGet, Key: k}
	}
	w.h.Exec(ops, false)
	for i := range ops {
		vals[i], oks[i] = ops[i].Result, ops[i].OK
	}
}

func (w *dlhtWorker) ExecOps(ops []core.Op) {
	if usePipeline {
		pl := w.pipeline()
		w.outOps, w.outI = ops, 0
		for i := range ops {
			pl.Enqueue(ops[i])
		}
		pl.Flush()
		w.outOps = nil
		return
	}
	w.h.Exec(ops, false)
}

// DLHTTarget wraps an existing table. batched selects the §3.3 batch engine
// (DLHT) or the per-request path (DLHT-NoBatch).
func DLHTTarget(t *core.Table, name string, batched bool) Target {
	return Target{
		Name:      name,
		Batched:   batched,
		NewWorker: func(int) Worker { return &dlhtWorker{h: t.MustHandle()} },
	}
}

// prefetchWindow is the Config.PrefetchWindow applied to every DLHT table
// the harness constructs; the cmd tools set it once at startup from their
// -window flag (0 keeps the core default, negative selects the full-batch
// prefetch pass).
var prefetchWindow int

// SetPrefetchWindow fixes the prefetch window of all subsequently
// constructed DLHT targets. Call before running experiments, not during.
func SetPrefetchWindow(w int) { prefetchWindow = w }

// usePipeline routes every DLHT worker's batch path through the streaming
// Pipeline API instead of the Exec adapter; the cmd tools set it once at
// startup from their -pipeline flag. Both paths share the same windowed
// engine, so this is an API-overhead A/B, not a different algorithm.
var usePipeline bool

// SetUsePipeline selects the streaming Pipeline API for all subsequently
// constructed DLHT workers' batch paths. Call before running experiments,
// not during.
func SetUsePipeline(on bool) { usePipeline = on }

// benchConfig applies the harness-wide prefetch window to a table config
// that does not set one of its own.
func benchConfig(cfg core.Config) core.Config {
	if cfg.PrefetchWindow == 0 {
		cfg.PrefetchWindow = prefetchWindow
	}
	return cfg
}

// mustNewDLHT is core.MustNew with the harness-wide prefetch window
// applied; every experiment that builds a table directly goes through it so
// the -window flag reaches ad-hoc configs, not just NewDLHT geometry.
func mustNewDLHT(cfg core.Config) *core.Table {
	return core.MustNew(benchConfig(cfg))
}

// NewDLHT builds a default-configuration DLHT table for bins/keys geometry,
// mirroring the paper's default (§4): modulo hashing, resizing disabled,
// link buckets at 1/8 of bins.
func NewDLHT(bins uint64, resizable bool) *core.Table {
	return mustNewDLHT(core.Config{
		Bins:       bins,
		Resizable:  resizable,
		MaxThreads: 4096,
	})
}

// ---------------------------------------------------------------------------
// Baseline adapters
// ---------------------------------------------------------------------------

type baselineWorker struct{ m baselines.Map }

func (w baselineWorker) Get(k uint64) (uint64, bool) { return w.m.Get(k) }
func (w baselineWorker) Insert(k, v uint64) bool     { return w.m.Insert(k, v) }
func (w baselineWorker) Put(k, v uint64) bool        { return w.m.Put(k, v) }
func (w baselineWorker) Delete(k uint64) bool        { return w.m.Delete(k) }

type baselineBatchWorker struct {
	baselineWorker
	b baselines.Batcher
}

func (w baselineBatchWorker) GetBatch(keys []uint64, vals []uint64, oks []bool) {
	w.b.GetBatch(keys, vals, oks)
}

// BaselineTarget adapts a baselines.Map.
func BaselineTarget(m baselines.Map) Target {
	_, batched := m.(baselines.Batcher)
	return Target{
		Name:    m.Name(),
		Batched: batched,
		NewWorker: func(int) Worker {
			if b, ok := m.(baselines.Batcher); ok {
				return baselineBatchWorker{baselineWorker{m}, b}
			}
			return baselineWorker{m}
		},
	}
}

// ---------------------------------------------------------------------------
// Standard target sets
// ---------------------------------------------------------------------------

// Geometry sizes every design for the same key budget, following §4's
// defaults (67 M bins for 100 M keys ⇒ bins ≈ 2/3 of keys; open-addressing
// tables get 4× the key count in cells so tombstone-free runs fit).
type Geometry struct {
	Keys uint64
	Hash hashfn.Kind
}

func (g Geometry) bins() uint64 { return g.Keys*2/3 + 64 }

func (g Geometry) cells() uint64 { return g.Keys*4 + 1024 }

// AllTargets instantiates the full Figure 1/3 lineup: DLHT, DLHT-NoBatch
// and the eight baselines, each freshly constructed for the geometry.
func AllTargets(g Geometry) []Target {
	dl := NewDLHT(g.bins(), false)
	return append([]Target{
		DLHTTarget(dl, "DLHT", true),
		DLHTTarget(dl, "DLHT-NoBatch", false),
	}, BaselineTargets(g)...)
}

// FastTargets is the paper's post-Figure-3 comparison set: "we omit those
// baselines [Cuckoo, TBB, Leapfrog] from the rest of our graphs".
func FastTargets(g Geometry) []Target {
	dl := NewDLHT(g.bins(), false)
	return []Target{
		DLHTTarget(dl, "DLHT", true),
		DLHTTarget(dl, "DLHT-NoBatch", false),
		BaselineTarget(growt.New(g.cells(), g.Hash)),
		BaselineTarget(dramhit.New(g.cells(), g.Hash)),
		BaselineTarget(folly.New(g.cells(), g.Hash)),
		BaselineTarget(clht.New(g.bins(), g.Hash)),
		BaselineTarget(mica.New(g.bins(), g.Hash, 8)),
	}
}

// BaselineTargets instantiates all eight baselines.
func BaselineTargets(g Geometry) []Target {
	return []Target{
		BaselineTarget(growt.New(g.cells(), g.Hash)),
		BaselineTarget(dramhit.New(g.cells(), g.Hash)),
		BaselineTarget(folly.New(g.cells(), g.Hash)),
		BaselineTarget(clht.New(g.bins(), g.Hash)),
		BaselineTarget(mica.New(g.bins(), g.Hash, 8)),
		BaselineTarget(cuckoo.New(g.Keys/2+64, g.Hash)),
		BaselineTarget(leapfrog.New(g.cells(), g.Hash)),
		BaselineTarget(tbb.New(g.Keys+64, g.Hash)),
	}
}

// Prepopulate inserts keys 0..n-1 (value = key+1) through a single worker,
// as the paper prepopulates 100 M keys before each experiment.
func Prepopulate(t Target, n uint64) error {
	w := t.NewWorker(0)
	for k := uint64(0); k < n; k++ {
		if !w.Insert(k, k+1) {
			return fmt.Errorf("%s: prepopulate failed at key %d/%d", t.Name, k, n)
		}
	}
	return nil
}
