//go:build !dlhtdebug

package exec

// Release builds: debugAsserts is a false constant, so every
// `if debugAsserts { ... }` call site is dead-code-eliminated along
// with these empty bodies. See debugassert_on.go.
const debugAsserts = false

func (s *Session) assertSeqWindow(seq uint64, filled bool) {}

func (r *tagRing) assertTagAvailable() {}
