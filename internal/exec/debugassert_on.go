//go:build dlhtdebug

package exec

// The dlhtdebug assertion layer for the executor: reorder-ring
// invariants that would surface as silent response corruption (a reply
// delivered for the wrong request) if they ever broke. Compiled out of
// release builds via the debugAsserts constant; CI runs the suite
// under `go test -race -tags dlhtdebug ./...`.
const debugAsserts = true

// assertSeqWindow panics unless seq lies in the session's open reorder
// window [next, submitted) and its slot has not been completed before.
// Called with s.mu held.
func (s *Session) assertSeqWindow(seq uint64, filled bool) {
	if seq < s.next || seq >= s.submitted {
		panic("dlhtdebug: completion seq outside the session's reorder window")
	}
	if filled {
		panic("dlhtdebug: reorder slot completed twice")
	}
}

// assertTagAvailable panics when a shard pops a completion tag it never
// pushed — the FIFO that pairs pipeline completions back to their
// sessions has desynchronized from the pipeline.
func (r *tagRing) assertTagAvailable() {
	if r.head == r.tail {
		panic("dlhtdebug: completion tag ring underflow")
	}
}
