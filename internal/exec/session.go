package exec

import (
	"sync"

	core "repro/internal/core"
)

// KVKind identifies a variable-length (Allocator-mode) request.
type KVKind uint8

const (
	// KVGet reads a byte key under a namespace.
	KVGet KVKind = iota
	// KVInsert adds a byte key/value pair under a namespace.
	KVInsert
	// KVDelete removes a byte key under a namespace.
	KVDelete
)

// KVOp is one variable-length request and, after completion, its result.
// Key and Value must stay valid and untouched from SubmitKV until the op
// is delivered by Await — submit a private copy, not a decode window. Out
// receives an owned copy of the value on a successful KVGet (reusing its
// capacity across ops when the caller recycles KVOps).
type KVOp struct {
	Kind  KVKind
	NS    uint16
	Key   []byte
	Value []byte

	Out []byte
	OK  bool
	Err error

	// charged is the byte count this op holds against its session's
	// in-flight KV budget: the request payload at submission, plus the
	// read value once it materializes. Credited back at delivery.
	charged int
}

// Done is one completed request, delivered by Await in submission order.
// KV is non-nil for variable-length ops; otherwise Op carries the fixed
// op's result fields. On an executor with a WAL, WALSeq is the redo-log
// sequence of the op's record (0 when the op logged nothing); before
// acknowledging the op externally the consumer must WAL.SyncWait a
// sequence ≥ the highest WALSeq it acknowledges.
type Done struct {
	Op     core.Op
	KV     *KVOp
	WALSeq uint64
}

// doneSlot is one reorder-ring cell.
type doneSlot struct {
	d      Done
	filled bool
}

// Session is one connection's port into the executor: a producer handle
// (Submit/SubmitKV/Fail, single goroutine) plus a consumer side (Await,
// single — possibly different — goroutine) that yields completions
// strictly in submission order, whatever order the shards finished them
// in. The seq-indexed reorder ring between the two grows on demand up to
// Options.SessionWindow, which is the session's in-flight bound: Submit
// blocks while the consumer is a full window behind.
type Session struct {
	e     *Executor
	shard *shard // Shared-mode binding; nil in Partitioned mode

	mu        sync.Mutex
	cond      sync.Cond // consumer waits for the next in-order completion
	prod      sync.Cond // producers wait for reorder-ring space
	ring      []doneSlot
	submitted uint64 // next seq to assign
	next      uint64 // next seq Await will deliver
	finished  bool

	// kvInflight/kvBytes track in-flight variable-length ops against the
	// executor's per-session KV bounds; SubmitKV blocks at either bound.
	kvInflight int
	kvBytes    int

	// scratch stages SubmitBatch items so a whole decoded burst moves into
	// a shard ring with one gate and (in Shared mode) one ring lock.
	scratch []item
}

// Submit routes one fixed op into the executor. It blocks while the
// session is at its in-flight bound or the target shard ring is full, and
// fails with ErrClosed — after completing the op with that error, so
// sequence accounting stays intact — when the executor has been closed.
func (s *Session) Submit(op core.Op) error {
	seq := s.gate()
	hash := s.e.tbl.HashOf(op.Key)
	sh := s.route(hash)
	if !sh.enqueue(item{sess: s, seq: seq, hash: hash, op: op}) {
		op.OK, op.Err = false, ErrClosed
		s.complete(seq, op, nil)
		return ErrClosed
	}
	return nil
}

// SubmitBatch routes a run of fixed ops into the executor: one gate for
// the whole run and — in Shared mode — one ring lock per chunk, so a
// deeply pipelined connection pays amortized rather than per-op
// synchronization. Semantics match a Submit per op.
func (s *Session) SubmitBatch(ops []core.Op) error {
	t := s.e.tbl
	if s.scratch == nil {
		s.scratch = make([]item, 256)
	}
	for len(ops) > 0 {
		want := len(ops)
		if want > len(s.scratch) {
			want = len(s.scratch)
		}
		seq0, n := s.gateN(want)
		for i := 0; i < n; i++ {
			op := ops[i]
			s.scratch[i] = item{sess: s, seq: seq0 + uint64(i), hash: t.HashOf(op.Key), op: op}
		}
		if s.shard != nil {
			if acc := s.shard.enqueueBatch(s.scratch[:n]); acc < n {
				s.failClosed(s.scratch[acc:n])
				return ErrClosed
			}
		} else {
			for i := 0; i < n; i++ {
				it := s.scratch[i]
				if !s.route(it.hash).enqueue(it) {
					s.failClosed(s.scratch[i:n])
					return ErrClosed
				}
			}
		}
		ops = ops[n:]
	}
	return nil
}

// failClosed completes gated-but-unrouted items with ErrClosed so the
// consumer still sees every sequence number.
func (s *Session) failClosed(items []item) {
	for i := range items {
		op := items[i].op
		op.OK, op.Err = false, ErrClosed
		s.complete(items[i].seq, op, nil)
	}
}

// SubmitKV routes one variable-length op into the executor; see KVOp for
// the buffer-ownership contract. Blocking and close behavior match
// Submit, with two further gates — the per-session KV op and payload-byte
// bounds — because each in-flight KV op owns its buffers. The routing
// hash is only computed in Partitioned mode (Shared routing doesn't need
// it); partitioned KV reads hand it to the shard's KVPipeline so routing
// and bin mapping share one hash.
func (s *Session) SubmitKV(kv *KVOp) error {
	need := len(kv.Key) + len(kv.Value)
	s.mu.Lock()
	for {
		if s.finished {
			s.mu.Unlock()
			panic("exec: Submit after FinishSubmit")
		}
		free := len(s.ring) - int(s.submitted-s.next)
		if free == 0 && len(s.ring) < s.e.sessW {
			s.grow()
			free = len(s.ring) - int(s.submitted-s.next)
		}
		if free > 0 && s.kvInflight < s.e.kvOps &&
			(s.kvBytes == 0 || s.kvBytes+need <= s.e.kvBytes) {
			break
		}
		s.prod.Wait()
	}
	seq := s.submitted
	s.submitted++
	s.kvInflight++
	s.kvBytes += need
	kv.charged = need
	s.mu.Unlock()

	sh, hash := s.shard, uint64(0)
	if sh == nil {
		hash = s.e.tbl.HashOfKV(kv.NS, kv.Key)
		sh = s.route(hash)
	}
	if !sh.enqueue(item{sess: s, seq: seq, hash: hash, kv: kv}) {
		kv.Err = ErrClosed
		s.complete(seq, core.Op{}, kv)
		return ErrClosed
	}
	return nil
}

// Fail takes the next sequence slot and completes it immediately with err,
// without an executor round trip. Connection readers use it to emit an
// in-order error response (e.g. StatusBadRequest) behind everything
// already submitted.
func (s *Session) Fail(err error) {
	seq := s.gate()
	s.complete(seq, core.Op{Err: err}, nil)
}

// FinishSubmit declares that no further requests will be submitted. Await
// then reports done once every submitted request has been delivered.
func (s *Session) FinishSubmit() {
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.cond.Signal()
	s.mu.Unlock()
	s.e.detachSession(s)
}

// route picks the shard for a request with routing hash h.
func (s *Session) route(h uint64) *shard {
	if s.shard != nil {
		return s.shard
	}
	return s.e.shards[h%uint64(len(s.e.shards))]
}

// gate assigns the next sequence number, blocking while the reorder ring
// cannot take another in-flight request.
func (s *Session) gate() uint64 {
	seq, _ := s.gateN(1)
	return seq
}

// gateN assigns up to max consecutive sequence numbers (at least one),
// blocking while the reorder ring is at its in-flight bound.
func (s *Session) gateN(max int) (uint64, int) {
	s.mu.Lock()
	for {
		if s.finished {
			s.mu.Unlock()
			panic("exec: Submit after FinishSubmit")
		}
		free := len(s.ring) - int(s.submitted-s.next)
		if free == 0 && len(s.ring) < s.e.sessW {
			s.grow()
			free = len(s.ring) - int(s.submitted-s.next)
		}
		if free > 0 {
			if max > free {
				max = free
			}
			seq := s.submitted
			s.submitted += uint64(max)
			s.mu.Unlock()
			return seq, max
		}
		s.prod.Wait()
	}
}

// grow doubles the reorder ring, preserving in-flight entries at their
// absolute positions.
func (s *Session) grow() {
	old := s.ring
	oldMask := uint64(len(old) - 1)
	next := make([]doneSlot, len(old)*2)
	mask := uint64(len(next) - 1)
	for i := s.next; i < s.submitted; i++ {
		next[i&mask] = old[i&oldMask]
	}
	s.ring = next
}

// complete posts one finished request into the reorder ring. Called from
// shard goroutines (and from Submit/Fail error paths); never blocks — the
// gate reserved the slot at submission.
func (s *Session) complete(seq uint64, op core.Op, kv *KVOp) {
	s.mu.Lock()
	if kv != nil && len(kv.Out) > 0 {
		// The read value now also counts against the session's KV budget
		// until delivery; new SubmitKVs block once it is exceeded.
		kv.charged += len(kv.Out)
		s.kvBytes += len(kv.Out)
	}
	slot := &s.ring[seq&uint64(len(s.ring)-1)]
	if debugAsserts {
		s.assertSeqWindow(seq, slot.filled)
	}
	slot.d = Done{Op: op, KV: kv}
	slot.filled = true
	if seq == s.next {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// completeRun posts a shard's staged run of completions for this session
// under one lock, waking the consumer once if the in-order head became
// ready.
func (s *Session) completeRun(es []doneEntry) {
	s.mu.Lock()
	mask := uint64(len(s.ring) - 1)
	for i := range es {
		if kv := es[i].kv; kv != nil && len(kv.Out) > 0 {
			kv.charged += len(kv.Out)
			s.kvBytes += len(kv.Out)
		}
		slot := &s.ring[es[i].seq&mask]
		if debugAsserts {
			s.assertSeqWindow(es[i].seq, slot.filled)
		}
		slot.d = Done{Op: es[i].op, KV: es[i].kv, WALSeq: es[i].walSeq}
		slot.filled = true
	}
	if s.next < s.submitted && s.ring[s.next&mask].filled {
		s.cond.Signal()
	}
	s.mu.Unlock()
}

// Await appends the next contiguous run of in-order completions to buf and
// returns it. When nothing is ready it first invokes onIdle once (outside
// the lock — connection writers flush their response buffer there, the
// streaming analogue of drain-before-blocking), then blocks. ok=false
// means the session is finished and fully drained; no more completions
// will come.
func (s *Session) Await(buf []Done, onIdle func()) (run []Done, ok bool) {
	s.mu.Lock()
	for {
		got := false
		for s.next < s.submitted {
			slot := &s.ring[s.next&uint64(len(s.ring)-1)]
			if !slot.filled {
				break
			}
			if kv := slot.d.KV; kv != nil {
				// Delivery credits the op back to the KV bounds; the
				// consumer now owns its buffers.
				s.kvInflight--
				s.kvBytes -= kv.charged
			}
			buf = append(buf, slot.d)
			*slot = doneSlot{}
			s.next++
			got = true
		}
		if got {
			s.prod.Broadcast()
			s.mu.Unlock()
			return buf, true
		}
		if s.finished && s.next == s.submitted {
			s.mu.Unlock()
			return buf, false
		}
		if onIdle != nil {
			s.mu.Unlock()
			onIdle()
			onIdle = nil
			s.mu.Lock()
			continue
		}
		s.cond.Wait()
	}
}

// InFlight returns the number of submitted but not yet delivered requests.
func (s *Session) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.submitted - s.next)
}
