package exec

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	core "repro/internal/core"
)

// buildScript makes a deterministic mixed-op script over keys in
// [base, base+keys): every op kind, with heavy key reuse so ordering
// violations surface as wrong results.
func buildScript(r *rand.Rand, base, keys uint64, n int) []core.Op {
	ops := make([]core.Op, n)
	for i := range ops {
		k := base + r.Uint64()%keys
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			ops[i] = core.Op{Kind: core.OpGet, Key: k}
		case 4, 5:
			ops[i] = core.Op{Kind: core.OpInsert, Key: k, Value: r.Uint64()}
		case 6:
			ops[i] = core.Op{Kind: core.OpPut, Key: k, Value: r.Uint64()}
		case 7:
			ops[i] = core.Op{Kind: core.OpDelete, Key: k}
		case 8:
			ops[i] = core.Op{Kind: core.OpInsertShadow, Key: k, Value: r.Uint64()}
		case 9:
			ops[i] = core.Op{Kind: core.OpCommitShadow, Key: k, Value: uint64(r.Intn(2))}
		}
	}
	return ops
}

// drain consumes a session until it reports done, returning completions in
// delivery (= submission) order.
func drain(sess *Session) []Done {
	var out []Done
	buf := make([]Done, 0, 64)
	for {
		run, ok := sess.Await(buf[:0], nil)
		out = append(out, run...)
		if !ok {
			return out
		}
	}
}

// TestExecutorVsOracle is the executor property test: M sessions submit
// mixed-op scripts over disjoint key ranges concurrently — across a table
// small enough that the inserts force several resizes mid-run — and every
// session's completion stream must equal a single-handle oracle executing
// the same script alone. Run in both routing modes: Shared pins whole
// sessions to shards, Partitioned serializes per key; either way a
// session's ops on one key must observe program order.
func TestExecutorVsOracle(t *testing.T) {
	for _, mode := range []Mode{Shared, Partitioned} {
		t.Run(mode.String(), func(t *testing.T) {
			const (
				sessions = 6
				opsPer   = 5000
				keys     = 300
			)
			tbl := core.MustNew(core.Config{Bins: 64, Resizable: true, MaxThreads: 64})
			ex, err := New(tbl, Options{Shards: 4, Mode: mode, Ring: 64, SessionWindow: 128})
			if err != nil {
				t.Fatal(err)
			}
			defer ex.Close()

			scripts := make([][]core.Op, sessions)
			results := make([][]Done, sessions)
			var wg sync.WaitGroup
			for si := 0; si < sessions; si++ {
				r := rand.New(rand.NewSource(int64(si)*7919 + 1))
				scripts[si] = buildScript(r, uint64(si)*1_000_000, keys, opsPer)
				sess, err := ex.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(2)
				go func(si int, sess *Session) {
					defer wg.Done()
					for _, op := range scripts[si] {
						if err := sess.Submit(op); err != nil {
							t.Error(err)
							break
						}
					}
					sess.FinishSubmit()
				}(si, sess)
				go func(si int, sess *Session) {
					defer wg.Done()
					results[si] = drain(sess)
				}(si, sess)
			}
			wg.Wait()

			for si := range scripts {
				oracle := make([]core.Op, len(scripts[si]))
				copy(oracle, scripts[si])
				oh := core.MustNew(core.Config{Bins: 64, Resizable: true}).MustHandle()
				oh.Exec(oracle, false)
				res := results[si]
				if len(res) != len(oracle) {
					t.Fatalf("session %d: %d completions, want %d", si, len(res), len(oracle))
				}
				for i := range oracle {
					got, want := res[i].Op, oracle[i]
					if got.Result != want.Result || got.OK != want.OK || got.Err != want.Err {
						t.Fatalf("session %d op %d (%v key %d): got (%d,%v,%v), oracle (%d,%v,%v)",
							si, i, want.Kind, want.Key,
							got.Result, got.OK, got.Err,
							want.Result, want.OK, want.Err)
					}
				}
			}
			if tbl.NumBins() == 64 {
				t.Fatal("table never resized; the test lost its concurrent-resize coverage")
			}
		})
	}
}

// TestExecutorKVVsModel drives the variable-length surface: sessions mix
// KVInsert/KVGet/KVDelete over per-session key prefixes and the in-order
// completion stream must match a sequential map model.
func TestExecutorKVVsModel(t *testing.T) {
	for _, mode := range []Mode{Shared, Partitioned} {
		t.Run(mode.String(), func(t *testing.T) {
			const (
				sessions = 4
				opsPer   = 3000
				keys     = 60
			)
			tbl := core.MustNew(core.Config{
				Mode: core.Allocator, Bins: 64, Resizable: true,
				VariableKV: true, Namespaces: true, EpochGC: true, MaxThreads: 32,
			})
			ex, err := New(tbl, Options{Shards: 3, Mode: mode, Ring: 32, SessionWindow: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer ex.Close()

			type kvScript struct {
				kinds []KVKind
				keys  [][]byte
				vals  [][]byte
			}
			scripts := make([]kvScript, sessions)
			results := make([][]Done, sessions)
			var wg sync.WaitGroup
			for si := 0; si < sessions; si++ {
				r := rand.New(rand.NewSource(int64(si)*104729 + 5))
				sc := kvScript{}
				for i := 0; i < opsPer; i++ {
					k := fmt.Appendf(nil, "s%d-key-%d", si, r.Intn(keys))
					if r.Intn(8) == 0 { // some big keys exercise out-of-line compares
						k = append(k, bytes.Repeat([]byte("x"), 40)...)
					}
					switch r.Intn(4) {
					case 0, 1:
						sc.kinds = append(sc.kinds, KVGet)
						sc.vals = append(sc.vals, nil)
					case 2:
						sc.kinds = append(sc.kinds, KVInsert)
						sc.vals = append(sc.vals, fmt.Appendf(nil, "v-%d-%d", si, r.Int()))
					case 3:
						sc.kinds = append(sc.kinds, KVDelete)
						sc.vals = append(sc.vals, nil)
					}
					sc.keys = append(sc.keys, k)
				}
				scripts[si] = sc
				sess, err := ex.NewSession()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(2)
				go func(sc kvScript, sess *Session) {
					defer wg.Done()
					for i := range sc.kinds {
						kv := &KVOp{Kind: sc.kinds[i], NS: 0, Key: sc.keys[i], Value: sc.vals[i]}
						if err := sess.SubmitKV(kv); err != nil {
							t.Error(err)
							break
						}
					}
					sess.FinishSubmit()
				}(sc, sess)
				go func(si int, sess *Session) {
					defer wg.Done()
					results[si] = drain(sess)
				}(si, sess)
			}
			wg.Wait()

			for si := range scripts {
				sc, res := scripts[si], results[si]
				if len(res) != len(sc.kinds) {
					t.Fatalf("session %d: %d completions, want %d", si, len(res), len(sc.kinds))
				}
				model := map[string][]byte{}
				for i, d := range res {
					kv := d.KV
					if kv == nil {
						t.Fatalf("session %d op %d: fixed-op completion for a KV submit", si, i)
					}
					key := string(sc.keys[i])
					switch sc.kinds[i] {
					case KVGet:
						want, exists := model[key]
						if kv.OK != exists || (exists && !bytes.Equal(kv.Out, want)) {
							t.Fatalf("session %d op %d: GetKV(%q) = (%q,%v), model (%q,%v)",
								si, i, key, kv.Out, kv.OK, want, exists)
						}
					case KVInsert:
						if _, exists := model[key]; exists {
							if !errors.Is(kv.Err, core.ErrExists) {
								t.Fatalf("session %d op %d: dup InsertKV err = %v, want ErrExists", si, i, kv.Err)
							}
						} else {
							if kv.Err != nil || !kv.OK {
								t.Fatalf("session %d op %d: InsertKV = (%v,%v)", si, i, kv.OK, kv.Err)
							}
							model[key] = sc.vals[i]
						}
					case KVDelete:
						_, exists := model[key]
						if kv.OK != exists {
							t.Fatalf("session %d op %d: DeleteKV(%q) ok=%v, model %v", si, i, key, kv.OK, exists)
						}
						delete(model, key)
					}
				}
			}
		})
	}
}

// TestExecutorCloseDrains: Close under live producers must execute or
// explicitly fail every accepted request, deliver all completions before
// returning, release every shard handle, and reject new sessions.
func TestExecutorCloseDrains(t *testing.T) {
	const maxThreads = 8
	tbl := core.MustNew(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: maxThreads})
	ex, err := New(tbl, Options{Shards: 4, Ring: 64, SessionWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	const sessions = 4
	var wg sync.WaitGroup
	submitted := make([]int, sessions)
	delivered := make([]int, sessions)
	for si := 0; si < sessions; si++ {
		sess, err := ex.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func(si int, sess *Session) {
			defer wg.Done()
			k := uint64(si) << 32
			for {
				err := sess.Submit(core.Op{Kind: core.OpInsert, Key: k, Value: k})
				submitted[si]++ // ErrClosed submissions still complete in order
				k++
				if err != nil {
					break
				}
			}
			sess.FinishSubmit()
		}(si, sess)
		go func(si int, sess *Session) {
			defer wg.Done()
			delivered[si] = len(drain(sess))
		}(si, sess)
	}
	ex.Close()
	// Every shard handle must be back: the table can hand out its full
	// complement again.
	for i := 0; i < maxThreads; i++ {
		h, err := tbl.Handle()
		if err != nil {
			t.Fatalf("handle %d not released after Close: %v", i, err)
		}
		defer h.Close()
	}
	if _, err := ex.NewSession(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewSession after Close = %v, want ErrClosed", err)
	}
	wg.Wait()
	for si := range submitted {
		if submitted[si] == 0 || submitted[si] != delivered[si] {
			t.Fatalf("session %d: %d submitted, %d delivered", si, submitted[si], delivered[si])
		}
	}
}

// TestSessionKVBounds: a session pipelining large KV payloads is gated by
// the per-session op and byte bounds — progress continues (no deadlock at
// either bound), results stay correct, and the budget drains back to zero
// once everything is delivered.
func TestSessionKVBounds(t *testing.T) {
	tbl := core.MustNew(core.Config{
		Mode: core.Allocator, Bins: 1 << 8, Resizable: true,
		VariableKV: true, EpochGC: true, MaxThreads: 8,
	})
	ex, err := New(tbl, Options{Shards: 2, SessionKVInflight: 4, SessionKVBytes: 1 << 18})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	sess, err := ex.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	val := bytes.Repeat([]byte("v"), 48<<10) // byte bound binds every ~5 ops
	results := make(chan []Done, 1)
	go func() {
		var out []Done
		buf := make([]Done, 0, 8)
		for {
			run, ok := sess.Await(buf[:0], nil)
			out = append(out, run...)
			if !ok {
				results <- out
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		key := fmt.Appendf(nil, "big-%d", i)
		if err := sess.SubmitKV(&KVOp{Kind: KVInsert, Key: key, Value: val}); err != nil {
			t.Fatal(err)
		}
		if err := sess.SubmitKV(&KVOp{Kind: KVGet, Key: key}); err != nil {
			t.Fatal(err)
		}
	}
	sess.FinishSubmit()
	out := <-results
	if len(out) != 2*n {
		t.Fatalf("%d completions, want %d", len(out), 2*n)
	}
	for i := 0; i < n; i++ {
		ins, get := out[2*i].KV, out[2*i+1].KV
		if ins.Err != nil || !ins.OK {
			t.Fatalf("insert %d: (%v,%v)", i, ins.OK, ins.Err)
		}
		if !get.OK || !bytes.Equal(get.Out, val) {
			t.Fatalf("get %d: ok=%v len=%d", i, get.OK, len(get.Out))
		}
	}
	sess.mu.Lock()
	inflight, bytesHeld := sess.kvInflight, sess.kvBytes
	sess.mu.Unlock()
	if inflight != 0 || bytesHeld != 0 {
		t.Fatalf("KV budget not drained: %d ops, %d bytes", inflight, bytesHeld)
	}
}

// TestSessionFailOrdering: Fail takes a sequence slot like any submission,
// so its completion is delivered behind everything submitted before it.
func TestSessionFailOrdering(t *testing.T) {
	tbl := core.MustNew(core.Config{Bins: 1 << 8, Resizable: true})
	ex, err := New(tbl, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	sess, err := ex.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("bad frame")
	const n = 100
	for i := uint64(0); i < n; i++ {
		if err := sess.Submit(core.Op{Kind: core.OpInsert, Key: i, Value: i}); err != nil {
			t.Fatal(err)
		}
	}
	sess.Fail(sentinel)
	sess.FinishSubmit()
	out := drain(sess)
	if len(out) != n+1 {
		t.Fatalf("%d completions, want %d", len(out), n+1)
	}
	for i := 0; i < n; i++ {
		if !out[i].Op.OK {
			t.Fatalf("insert %d failed: %v", i, out[i].Op.Err)
		}
	}
	if out[n].Op.Err != sentinel {
		t.Fatalf("tail completion err = %v, want the Fail sentinel", out[n].Op.Err)
	}
}
