// Package exec implements the server's shared sharded executor: the piece
// that turns DLHT's memory-aware batching (§3.3) from a per-connection
// property into a per-server one.
//
// The goroutine-per-connection serving model only realizes the paper's
// batching win when a single connection pipelines deeply — each connection
// owns its own Handle, so a fleet of synchronous clients (many users, one
// request in flight each) executes one op at a time with zero prefetch
// overlap. The executor inverts that: N shards — each a goroutine owning
// one core.Handle and a long-lived Handle.Pipeline (plus a KVPipeline for
// Allocator-mode reads) — are fed by multi-producer rings that aggregate
// decoded requests from every connection. Batching depth now comes from
// connection *count*, the MICA-style partitioned-queue idea (see
// internal/baselines/mica), so sixty-four one-op-deep clients fill a
// shard's prefetch window just as well as one sixty-four-deep client.
//
// Two routing modes:
//
//   - Shared: each Session (connection) is bound to one shard at creation,
//     least-loaded first. Every request of a connection executes on one
//     shard in submission order, so per-connection program order is
//     preserved exactly as in the goroutine-per-connection model; the
//     shards' handles operate concurrently on the whole table (CREW).
//   - Partitioned: each request routes by key hash, so all operations on a
//     key — from every connection — serialize through one shard. The shard
//     count is clamped to a power of two in this mode, so with the default
//     power-of-two bin counts (bins a multiple of shards) two keys in the
//     same bin always route to the same shard and each shard touches a
//     disjoint bin subset (EREW, the MICA partitioning analogue); with a
//     bin count not divisible by the shard count, routing is still
//     correct, just no longer bin-disjoint. Per-key program order is
//     preserved (the same contract the sharded Cluster documents);
//     cross-key requests from one connection may execute out of order, but
//     responses are still delivered in request order.
//
// Completions carry a (session, seq) tag. Because a shard's pipeline
// completes in enqueue order, tags ride a plain FIFO alongside the
// pipeline; each completion is posted into its Session's seq-indexed
// reorder ring, and the session's consumer (the connection writer) takes
// responses strictly in submission order. Lock traffic is batched at both
// ends: SubmitBatch moves a whole decoded burst into a shard ring under
// one lock, and shards deliver completions to sessions in contiguous
// per-session runs. The routing hash of a fixed op is computed once, at
// submission, and handed to the shard's pipeline via
// Pipeline.EnqueueHashed (KVPipeline.GetHashed / InsertHashed /
// DeleteHashed for partitioned KV ops), so routing and bin mapping share
// one hash.
package exec

import (
	"errors"
	"runtime"
	"sync"

	core "repro/internal/core"
)

// Mode selects how requests are routed to executor shards.
//
//dlht:hotpath
type Mode uint8

const (
	// Shared binds each session to one shard (least-loaded at session
	// creation); shard handles stay concurrent on the whole table.
	Shared Mode = iota
	// Partitioned routes each request by key hash, serializing all
	// operations on one key through one shard.
	Partitioned
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "shared"
	case Partitioned:
		return "partitioned"
	}
	return "unknown"
}

// ErrClosed is reported for sessions and submissions on a closed Executor.
var ErrClosed = errors.New("exec: executor closed")

// Options tunes an Executor. The zero value is usable.
type Options struct {
	// Shards is the number of executor shards (goroutine + Handle +
	// pipeline each). 0 selects GOMAXPROCS. Clamped to the table handles
	// actually available, to 1 on single-thread tables, and — in
	// Partitioned mode — down to a power of two so that with power-of-two
	// bin counts shards own disjoint bin subsets.
	Shards int
	// Mode selects Shared (default) or Partitioned routing.
	Mode Mode
	// Window is each shard pipeline's completion window; 0 inherits the
	// table's prefetch window (default 16).
	Window int
	// Ring is the per-shard request ring capacity (rounded up to a power
	// of two, default 1024). Submissions block while a ring is full.
	Ring int
	// SessionWindow bounds each session's in-flight requests (the reorder
	// ring capacity, rounded up to a power of two, default 4096).
	// Submissions block while a session is at its bound.
	SessionWindow int
	// SessionKVInflight and SessionKVBytes bound a session's in-flight
	// variable-length ops by count (default 32) and by payload bytes
	// (request key+value at submission, plus read values as they
	// materialize; default 8 MiB). Fixed ops are 32 bytes each and ride
	// on SessionWindow alone; KV payloads are owned per in-flight op, so
	// without these bounds one connection pipelining protocol-max values
	// could pin SessionWindow × 16 MiB. A single op larger than the byte
	// budget is admitted when it is the only one in flight.
	SessionKVInflight int
	SessionKVBytes    int
	// WAL, when non-nil, makes shards append every effective mutation to
	// the durable table's redo log and stamp the sequence into the op's
	// Done, so consumers can gate acknowledgements on group commits.
	WAL WAL
}

// WAL is the executor's hook into a durable table's redo log (*wal.Log
// implements it; an interface here keeps exec free of the wal package).
// When set, every effective mutation a shard completes is appended and its
// Done carries the log sequence; the connection writer gates its wire
// flush on SyncWait so no response reaches the socket before the covering
// group commit. Appends from shard goroutines are safe — the log is
// multi-producer.
type WAL interface {
	// LogOp appends the redo record of an effective fixed mutation,
	// returning its sequence; returns 0 for ops that need no record
	// (reads, misses, failed inserts).
	LogOp(op *core.Op) (uint64, error)
	// LogKVInsert and LogKVDelete append Allocator-mode records.
	LogKVInsert(ns uint16, key, val []byte) (uint64, error)
	LogKVDelete(ns uint16, key []byte) (uint64, error)
	// SyncWait blocks until a group commit covers seq (0 is an error
	// check: it returns immediately with the log's sticky failure if any).
	SyncWait(seq uint64) error
}

// kvEpochEvery is how many KV requests a shard serves between epoch
// refreshes on EpochGC tables (power of two).
const kvEpochEvery = 1 << 10

// Executor is a shared execution service over one table. Create with New,
// register one Session per connection, and Close to drain: Close returns
// only after every shard has flushed its pipeline and exited, so no
// completion fires afterwards.
type Executor struct {
	tbl     *core.Table
	mode    Mode
	wal     WAL
	shards  []*shard
	sessW   int
	kvOps   int // per-session in-flight KV op bound
	kvBytes int // per-session in-flight KV payload bound

	mu     sync.Mutex // guards closed and shared-mode session placement
	closed bool
	wg     sync.WaitGroup
}

// New builds an executor over tbl, acquiring one table handle per shard.
// It fails only when the table has no handles left at all; with fewer
// handles than requested shards it runs narrower.
func New(tbl *core.Table, opts Options) (*Executor, error) {
	n := opts.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if tbl.SingleThread() {
		n = 1
	}
	if opts.Mode == Partitioned {
		// Power-of-two shard counts keep hash%shards consistent with
		// bin%shards on power-of-two bin counts: same bin → same shard
		// (the EREW property).
		n = floorPow2(n)
	}
	ring := ceilPow2(opts.Ring, 1024)
	sessW := ceilPow2(opts.SessionWindow, 4096)
	kvOps := opts.SessionKVInflight
	if kvOps <= 0 {
		kvOps = 32
	}
	kvBytes := opts.SessionKVBytes
	if kvBytes <= 0 {
		kvBytes = 8 << 20
	}
	e := &Executor{tbl: tbl, mode: opts.Mode, wal: opts.WAL, sessW: sessW, kvOps: kvOps, kvBytes: kvBytes}
	handles := make([]*core.Handle, 0, n)
	for i := 0; i < n; i++ {
		h, err := tbl.Handle()
		if err != nil {
			if i == 0 {
				return nil, err
			}
			break
		}
		handles = append(handles, h)
	}
	if opts.Mode == Partitioned {
		// Handle exhaustion may have narrowed us below the requested
		// count; re-clamp so the shard count stays a power of two (the
		// EREW routing property) and return the surplus handles.
		for keep := floorPow2(len(handles)); len(handles) > keep; {
			handles[len(handles)-1].Close()
			handles = handles[:len(handles)-1]
		}
	}
	for i, h := range handles {
		e.shards = append(e.shards, newShard(e, i, h, opts.Window, ring))
	}
	e.wg.Add(len(e.shards))
	for _, sh := range e.shards {
		go sh.run()
	}
	return e, nil
}

// ceilPow2 rounds v (or def when v<=0) up to a power of two.
func ceilPow2(v, def int) int {
	if v <= 0 {
		v = def
	}
	c := 1
	for c < v {
		c <<= 1
	}
	return c
}

// floorPow2 rounds v down to a power of two (minimum 1).
func floorPow2(v int) int {
	c := 1
	for c*2 <= v {
		c <<= 1
	}
	return c
}

// NumShards returns the number of live executor shards.
func (e *Executor) NumShards() int { return len(e.shards) }

// Mode returns the executor's routing mode.
func (e *Executor) Mode() Mode { return e.mode }

// Close stops the shards and joins them. Every request already accepted by
// a shard ring is executed and its completion delivered first; submissions
// racing Close fail their ops with ErrClosed (still delivered in order).
// After Close returns no completion callback is running or will run.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.mu.Unlock()
	for _, sh := range e.shards {
		sh.close()
	}
	e.wg.Wait()
}

// NewSession registers a request producer (one per connection). In Shared
// mode the session is bound to the shard with the fewest live sessions.
func (e *Executor) NewSession() (*Session, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	s := &Session{e: e}
	s.cond.L = &s.mu
	s.prod.L = &s.mu
	s.ring = make([]doneSlot, 64)
	if e.mode == Shared {
		min := e.shards[0]
		for _, sh := range e.shards[1:] {
			if sh.sessions < min.sessions {
				min = sh
			}
		}
		min.sessions++
		s.shard = min
	}
	return s, nil
}

// detachSession undoes shared-mode placement accounting.
func (e *Executor) detachSession(s *Session) {
	if s.shard == nil {
		return
	}
	e.mu.Lock()
	s.shard.sessions--
	e.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

// item is one routed request in a shard ring: the fixed op (or KV op) plus
// its session/seq completion tag and the memoized routing hash. Fixed-op
// items are pure values — the multi-producer enqueue path allocates
// nothing.
type item struct {
	sess *Session
	seq  uint64
	hash uint64
	op   core.Op
	kv   *KVOp
}

// tag is one in-flight pipeline entry's completion address.
type tag struct {
	sess *Session
	seq  uint64
	kv   *KVOp
}

// shard is one executor lane: a goroutine owning a table handle and its
// long-lived pipelines, consuming a multi-producer ring.
type shard struct {
	e  *Executor
	id int
	h  *core.Handle

	mu         sync.Mutex
	notEmpty   sync.Cond
	notFull    sync.Cond
	ring       []item
	mask       uint64
	head, tail uint64 // absolute produce/consume cursors
	closed     bool
	sessions   int // shared-mode placement count (under e.mu)

	// Consumer-side state, touched only by the shard goroutine.
	pl      *core.Pipeline
	kvp     *core.KVPipeline // lazily, Allocator tables only
	kvpW    int
	scratch []item
	tags    tagRing     // fixed-op pipeline completion tags, FIFO
	kvTags  tagRing     // KV read pipeline completion tags, FIFO
	pending []doneEntry // completions staged between deliveries
	kvOps   int         // KV ops since the last epoch advance
	// dlht:ok:fieldalignment — dirty could pack beside closed (saving a
	// word) but closed is producer-side state and dirty is written by the
	// shard goroutine every loop; sharing their word invites false sharing.
	dirty bool // executed something since the last idle flush
}

// doneEntry is one staged completion awaiting delivery to its session.
// Staging lets the shard post a whole batch's completions with one
// session lock per contiguous same-session run instead of one per op.
type doneEntry struct {
	sess   *Session
	seq    uint64
	walSeq uint64 // redo-log sequence of the op's record (0: none)
	op     core.Op
	kv     *KVOp
}

func newShard(e *Executor, id int, h *core.Handle, window, ring int) *shard {
	sh := &shard{e: e, id: id, h: h}
	sh.notEmpty.L = &sh.mu
	sh.notFull.L = &sh.mu
	sh.ring = make([]item, ring)
	sh.mask = uint64(ring - 1)
	sh.scratch = make([]item, ring)
	sh.pl = h.Pipeline(core.PipelineOpts{Window: window, OnComplete: sh.completeFixed})
	sh.kvpW = window
	sh.tags.init(sh.pl.Window() + 2)
	return sh
}

// enqueue admits one item, blocking while the ring is full. It reports
// false when the executor has been closed — the caller then completes the
// item itself with ErrClosed so sequence accounting stays intact.
func (sh *shard) enqueue(it item) bool {
	sh.mu.Lock()
	for sh.head-sh.tail == uint64(len(sh.ring)) && !sh.closed {
		sh.notFull.Wait()
	}
	if sh.closed {
		sh.mu.Unlock()
		return false
	}
	sh.ring[sh.head&sh.mask] = it
	sh.head++
	if sh.head-sh.tail == 1 {
		sh.notEmpty.Signal()
	}
	sh.mu.Unlock()
	return true
}

// enqueueBatch admits a run of items under one ring lock, waiting out full
// windows in chunks. It returns how many items were accepted; fewer than
// len(items) means the executor closed mid-batch and the caller completes
// the rest with ErrClosed.
func (sh *shard) enqueueBatch(items []item) int {
	done := 0
	sh.mu.Lock()
	for done < len(items) {
		for sh.head-sh.tail == uint64(len(sh.ring)) && !sh.closed {
			sh.notFull.Wait()
		}
		if sh.closed {
			break
		}
		n := len(sh.ring) - int(sh.head-sh.tail)
		if rest := len(items) - done; n > rest {
			n = rest
		}
		wasEmpty := sh.head == sh.tail
		for i := 0; i < n; i++ {
			sh.ring[(sh.head+uint64(i))&sh.mask] = items[done+i]
		}
		sh.head += uint64(n)
		done += n
		if wasEmpty {
			sh.notEmpty.Signal()
		}
	}
	sh.mu.Unlock()
	return done
}

// close marks the shard closed and wakes the consumer and any blocked
// producers. The consumer drains what the ring already holds, flushes its
// pipelines and exits.
func (sh *shard) close() {
	sh.mu.Lock()
	sh.closed = true
	sh.notEmpty.Signal()
	sh.notFull.Broadcast()
	sh.mu.Unlock()
}

// run is the shard goroutine: drain the ring in batches, execute, and —
// when the ring empties — flush the pipelines so tails complete while the
// shard would otherwise sleep. Between back-to-back batches the pipelines
// stay primed, which is how cross-connection traffic inherits the
// window-carries-over property of the streaming server loop.
func (sh *shard) run() {
	defer sh.e.wg.Done()
	for {
		sh.mu.Lock()
		for sh.head == sh.tail && !sh.closed {
			if sh.dirty {
				// About to idle with work in flight: complete it first.
				// flushIdle runs unlocked so completions (which take
				// session locks) never nest inside the ring lock.
				sh.mu.Unlock()
				sh.flushIdle()
				sh.mu.Lock()
				continue
			}
			sh.notEmpty.Wait()
		}
		if sh.head == sh.tail { // closed and drained
			sh.mu.Unlock()
			break
		}
		n := sh.head - sh.tail
		if n > uint64(len(sh.scratch)) {
			n = uint64(len(sh.scratch))
		}
		wasFull := sh.head-sh.tail == uint64(len(sh.ring))
		for i := uint64(0); i < n; i++ {
			j := (sh.tail + i) & sh.mask
			sh.scratch[i] = sh.ring[j]
			sh.ring[j] = item{} // drop session/KV references
		}
		sh.tail += n
		if wasFull {
			sh.notFull.Broadcast()
		}
		sh.mu.Unlock()
		for i := range sh.scratch[:n] {
			sh.exec(&sh.scratch[i])
			sh.scratch[i] = item{}
		}
		sh.deliver()
		sh.dirty = true
	}
	sh.flushIdle()
	sh.pl.Close()
	if sh.kvp != nil {
		sh.kvp.Close()
	}
	sh.h.Close()
}

// flushIdle completes everything in flight, delivers it, and refreshes the
// handle's epoch (a no-op off EpochGC tables) so views freed by other
// handles reclaim even on a shard that then sleeps.
func (sh *shard) flushIdle() {
	if sh.kvp != nil && sh.kvp.InFlight() > 0 {
		sh.kvp.Flush()
	}
	if sh.pl.InFlight() > 0 {
		sh.pl.Flush()
	}
	sh.deliver()
	if sh.kvOps > 0 {
		sh.h.AdvanceEpoch()
		sh.kvOps = 0
	}
	sh.dirty = false
}

// deliver posts the staged completions to their sessions, one lock per
// contiguous same-session run.
func (sh *shard) deliver() {
	pend := sh.pending
	for i := 0; i < len(pend); {
		j := i + 1
		for j < len(pend) && pend[j].sess == pend[i].sess {
			j++
		}
		pend[i].sess.completeRun(pend[i:j])
		i = j
	}
	for i := range pend {
		pend[i] = doneEntry{} // drop session/KV references
	}
	sh.pending = pend[:0]
}

// exec feeds one item into the shard's execution surfaces.
func (sh *shard) exec(it *item) {
	if it.kv != nil {
		sh.execKV(it)
		return
	}
	sh.tags.push(tag{sess: it.sess, seq: it.seq})
	sh.pl.EnqueueHashed(it.op, it.hash)
}

// completeFixed is the fixed-op pipeline's completion callback: pop the
// oldest tag (completions fire in enqueue order), append the durable
// table's redo record, and stage the result for the next delivery. An
// append failure surfaces as the op's error — it executed in memory but
// its durability can no longer be promised.
func (sh *shard) completeFixed(op *core.Op) {
	t := sh.tags.pop()
	var wseq uint64
	if w := sh.e.wal; w != nil {
		var err error
		if wseq, err = w.LogOp(op); err != nil {
			op.OK, op.Err = false, err
		}
	}
	sh.pending = append(sh.pending, doneEntry{sess: t.sess, seq: t.seq, walSeq: wseq, op: *op})
}

// ensureKVP lazily builds the shard's KVPipeline (Allocator tables only).
func (sh *shard) ensureKVP() *core.KVPipeline {
	if sh.kvp == nil {
		sh.kvp = sh.h.KVPipeline(core.KVPipelineOpts{Window: sh.kvpW, OnComplete: sh.completeKV})
		sh.kvTags.init(sh.kvp.Window() + 2)
	}
	return sh.kvp
}

// execKV runs one variable-length op. Reads stream through the shard's
// KVPipeline (two-level bin+block prefetch); mutations go through the
// pipeline's mutation surface, which barriers in-flight reads so per-key
// read-then-write order holds. In Partitioned mode the routing hash
// SubmitKV computed doubles as the bin-mapping hash — reads and mutations
// both take the Hashed path, so a partitioned KV op hashes exactly once.
// Effective mutations of a durable table are appended to the redo log and
// their Done carries the sequence.
func (sh *shard) execKV(it *item) {
	kv := it.kv
	t := sh.e.tbl
	if err := t.CheckKV(kv.NS, kv.Key, kv.Value, kv.Kind == KVInsert); err != nil {
		kv.Err = err
		sh.pending = append(sh.pending, doneEntry{sess: it.sess, seq: it.seq, kv: kv})
		return
	}
	var wseq uint64
	switch kv.Kind {
	case KVGet:
		kvp := sh.ensureKVP()
		sh.kvTags.push(tag{sess: it.sess, seq: it.seq, kv: kv})
		if sh.e.mode == Partitioned {
			kvp.GetHashed(kv.NS, kv.Key, it.hash)
		} else {
			kvp.Get(kv.NS, kv.Key)
		}
	case KVInsert:
		kvp := sh.ensureKVP()
		if sh.e.mode == Partitioned {
			kv.Err = kvp.InsertHashed(kv.NS, kv.Key, kv.Value, it.hash)
		} else {
			kv.Err = kvp.Insert(kv.NS, kv.Key, kv.Value)
		}
		kv.OK = kv.Err == nil
		if kv.OK {
			wseq = sh.logKV(kv)
		}
		sh.pending = append(sh.pending, doneEntry{sess: it.sess, seq: it.seq, walSeq: wseq, kv: kv})
	case KVDelete:
		kvp := sh.ensureKVP()
		if sh.e.mode == Partitioned {
			kv.OK = kvp.DeleteHashed(kv.NS, kv.Key, it.hash)
		} else {
			kv.OK = kvp.Delete(kv.NS, kv.Key)
		}
		if kv.OK {
			wseq = sh.logKV(kv)
		}
		sh.pending = append(sh.pending, doneEntry{sess: it.sess, seq: it.seq, walSeq: wseq, kv: kv})
	default:
		kv.Err = ErrClosed
		sh.pending = append(sh.pending, doneEntry{sess: it.sess, seq: it.seq, kv: kv})
	}
	// Periodic epoch refresh keeps deleted blocks reclaiming under
	// sustained load; flush reads first so no in-flight view spans the
	// advance.
	if sh.kvOps++; sh.kvOps >= kvEpochEvery {
		if sh.kvp != nil && sh.kvp.InFlight() > 0 {
			sh.kvp.Flush()
		}
		sh.h.AdvanceEpoch()
		sh.kvOps = 0
	}
}

// logKV appends the redo record of an effective KV mutation; on failure
// the op's success is withdrawn (applied in memory, not durable).
func (sh *shard) logKV(kv *KVOp) uint64 {
	w := sh.e.wal
	if w == nil {
		return 0
	}
	var seq uint64
	var err error
	if kv.Kind == KVInsert {
		seq, err = w.LogKVInsert(kv.NS, kv.Key, kv.Value)
	} else {
		seq, err = w.LogKVDelete(kv.NS, kv.Key)
	}
	if err != nil {
		kv.OK, kv.Err = false, err
		return 0
	}
	return seq
}

// completeKV is the KV read pipeline's completion callback. The value view
// is copied immediately — while the shard handle's epoch pin still covers
// it — into a buffer the KVOp owns.
func (sh *shard) completeKV(g *core.KVGet) {
	t := sh.kvTags.pop()
	kv := t.kv
	kv.OK = g.OK
	if g.OK {
		kv.Out = append(kv.Out[:0], g.Value...)
	}
	sh.pending = append(sh.pending, doneEntry{sess: t.sess, seq: t.seq, kv: kv})
}

// tagRing is a single-goroutine FIFO of completion tags, sized to the
// pipeline it shadows (in-flight entries never exceed window+1).
type tagRing struct {
	buf        []tag
	mask       int
	head, tail int
}

func (r *tagRing) init(capacity int) {
	c := ceilPow2(capacity, 8)
	r.buf = make([]tag, c)
	r.mask = c - 1
}

func (r *tagRing) push(t tag) {
	if r.head-r.tail == len(r.buf) {
		// Cannot happen while the ring shadows a bounded pipeline; grow
		// anyway rather than corrupt the FIFO.
		next := make([]tag, len(r.buf)*2)
		for i := r.tail; i < r.head; i++ {
			next[i&(len(next)-1)] = r.buf[i&r.mask]
		}
		r.buf = next
		r.mask = len(next) - 1
	}
	r.buf[r.head&r.mask] = t
	r.head++
}

func (r *tagRing) pop() tag {
	if debugAsserts {
		r.assertTagAvailable()
	}
	t := r.buf[r.tail&r.mask]
	r.buf[r.tail&r.mask] = tag{}
	r.tail++
	return t
}
