package join

import "testing"

func TestGenerateBuildUniqueKeys(t *testing.T) {
	r := GenerateBuild(1000, 1)
	seen := map[uint64]bool{}
	for _, tu := range r {
		if tu.Key >= 1000 {
			t.Fatalf("key %d out of domain", tu.Key)
		}
		if seen[tu.Key] {
			t.Fatalf("duplicate build key %d", tu.Key)
		}
		seen[tu.Key] = true
	}
	// Shuffled: not in ascending order.
	ordered := true
	for i := 1; i < len(r); i++ {
		if r[i].Key < r[i-1].Key {
			ordered = false
			break
		}
	}
	if ordered {
		t.Fatal("build relation not shuffled")
	}
}

func TestGenerateProbeInDomain(t *testing.T) {
	s := GenerateProbe(5000, 1000, 2)
	for _, tu := range s {
		if tu.Key >= 1000 {
			t.Fatalf("probe key %d outside build domain", tu.Key)
		}
	}
}

func TestJoinAllProbesMatch(t *testing.T) {
	build := GenerateBuild(1<<10, 1)
	probe := GenerateProbe(1<<13, 1<<10, 2)
	for _, batch := range []int{1, 16} {
		res := Run(build, probe, 2, batch)
		if res.Matches != uint64(len(probe)) {
			t.Fatalf("batch %d: matches = %d, want %d", batch, res.Matches, len(probe))
		}
		if res.TuplesPerSec() <= 0 {
			t.Fatal("zero throughput")
		}
		if res.TotalTuples != uint64(len(build)+len(probe)) {
			t.Fatalf("total = %d", res.TotalTuples)
		}
	}
}

func TestJoinPartialMatches(t *testing.T) {
	build := GenerateBuild(100, 1)
	// Probe keys 0..199: half match.
	probe := make([]Tuple, 200)
	for i := range probe {
		probe[i] = Tuple{Key: uint64(i)}
	}
	res := Run(build, probe, 1, 8)
	if res.Matches != 100 {
		t.Fatalf("matches = %d, want 100", res.Matches)
	}
}

func TestJoinThreadCountsAgree(t *testing.T) {
	build := GenerateBuild(1<<9, 3)
	probe := GenerateProbe(1<<12, 1<<9, 4)
	r1 := Run(build, probe, 1, 8)
	r4 := Run(build, probe, 4, 8)
	if r1.Matches != r4.Matches {
		t.Fatalf("matches differ across thread counts: %d vs %d", r1.Matches, r4.Matches)
	}
}

func TestPartitionedJoinMatchesNonPartitioned(t *testing.T) {
	build := GenerateBuild(1<<10, 7)
	probe := GenerateProbe(1<<13, 1<<10, 8)
	base := Run(build, probe, 2, 8)
	part := RunPartitioned(build, probe, 2, 8)
	if part.Matches != base.Matches {
		t.Fatalf("partitioned matches %d != %d", part.Matches, base.Matches)
	}
	if part.TuplesPerSec() <= 0 {
		t.Fatal("zero partitioned throughput")
	}
	// Unbatched variant agrees too.
	part1 := RunPartitioned(build, probe, 1, 1)
	if part1.Matches != base.Matches {
		t.Fatalf("unbatched partitioned matches %d != %d", part1.Matches, base.Matches)
	}
}

func TestPartitionCoversAllTuples(t *testing.T) {
	rel := GenerateBuild(1000, 9)
	parts := partition(rel, 16, 15)
	n := 0
	for p, tuples := range parts {
		for _, tu := range tuples {
			if tu.Key&15 != uint64(p) {
				t.Fatalf("tuple %d in wrong partition %d", tu.Key, p)
			}
			n++
		}
	}
	if n != len(rel) {
		t.Fatalf("partitioning lost tuples: %d/%d", n, len(rel))
	}
}
