package join

import (
	"sync"
	"time"

	"repro/internal/core"
)

// RunPartitioned is the partitioned-join extension the paper leaves as
// future work (§5.3.6: "partitioning and other such optimizations are
// synergistic to the features of DLHT"). Both relations are radix
// partitioned by key; each partition then runs a private build+probe on a
// SingleThread-mode DLHT, which strips every synchronization cost (§3.4.5)
// because partitions are disjoint. The batched probe path still applies
// within each partition.
func RunPartitioned(build, probe []Tuple, threads, batch int) Result {
	if threads < 1 {
		threads = 1
	}
	// Partition count: enough for parallelism while keeping per-partition
	// tables cache-friendlier than the monolithic one.
	parts := 1
	for parts < threads*4 && parts < 256 {
		parts *= 2
	}
	mask := uint64(parts - 1)
	res := Result{Threads: threads, TotalTuples: uint64(len(build) + len(probe))}

	begin := time.Now()
	buildParts := partition(build, parts, mask)
	probeParts := partition(probe, parts, mask)

	// Per-partition join, partitions distributed across workers.
	var matches uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	next := make(chan int, parts)
	for p := 0; p < parts; p++ {
		next <- p
	}
	close(next)
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local uint64
			for p := range next {
				local += joinPartition(buildParts[p], probeParts[p], batch)
			}
			mu.Lock()
			matches += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Partitioning cost is part of the build phase; probing is folded into
	// the same pass here, so report everything as build+probe combined.
	total := time.Since(begin)
	res.BuildTime = total / 2
	res.ProbeTime = total - res.BuildTime
	res.Matches = matches
	return res
}

// partition scatters tuples into radix buckets by the low key bits.
func partition(rel []Tuple, parts int, mask uint64) [][]Tuple {
	counts := make([]int, parts)
	for _, t := range rel {
		counts[t.Key&mask]++
	}
	out := make([][]Tuple, parts)
	for p := range out {
		out[p] = make([]Tuple, 0, counts[p])
	}
	for _, t := range rel {
		p := t.Key & mask
		out[p] = append(out[p], t)
	}
	return out
}

// joinPartition builds and probes one partition on a private,
// synchronization-free table.
func joinPartition(build, probe []Tuple, batch int) uint64 {
	if len(build) == 0 {
		return 0
	}
	tbl := core.MustNew(core.Config{
		Bins:         uint64(len(build))*2/3 + 16,
		Resizable:    true,
		SingleThread: true,
		MaxThreads:   2,
	})
	h := tbl.MustHandle()
	for _, t := range build {
		h.Insert(t.Key, t.Payload)
	}
	var found uint64
	if batch > 1 {
		ops := make([]core.Op, batch)
		for off := 0; off < len(probe); off += batch {
			end := off + batch
			if end > len(probe) {
				end = len(probe)
			}
			n := end - off
			for i := 0; i < n; i++ {
				ops[i] = core.Op{Kind: core.OpGet, Key: probe[off+i].Key}
			}
			h.Exec(ops[:n], false)
			for i := 0; i < n; i++ {
				if ops[i].OK {
					found++
				}
			}
		}
		return found
	}
	for _, t := range probe {
		if _, ok := h.Get(t.Key); ok {
			found++
		}
	}
	return found
}
