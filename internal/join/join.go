// Package join implements the non-partitioned hash join of the paper's
// §5.3.6 (OLAP application): workload A of Lutz et al. — 16-byte tuples
// (8 B key + 8 B payload), a build relation R and a probe relation S with
// |S| = 16·|R|. The build phase inserts R into DLHT in parallel; the probe
// phase streams S through DLHT's batched Get path, where batching applies
// naturally and software prefetching yields the paper's 2.2× over
// DLHT-NoBatch. No partitioning, no join specialization.
package join

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Tuple is one 16-byte relation row.
type Tuple struct {
	Key     uint64
	Payload uint64
}

// GenerateBuild creates the build relation R: keys 0..n-1 shuffled, unique.
func GenerateBuild(n uint64, seed uint64) []Tuple {
	r := make([]Tuple, n)
	for i := uint64(0); i < n; i++ {
		r[i] = Tuple{Key: i, Payload: i * 3}
	}
	rng := workload.NewRNG(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.Uint64n(i + 1)
		r[i], r[j] = r[j], r[i]
	}
	return r
}

// GenerateProbe creates the probe relation S: |S| keys drawn uniformly from
// R's key domain (every probe matches, as in workload A).
func GenerateProbe(n, buildKeys uint64, seed uint64) []Tuple {
	s := make([]Tuple, n)
	rng := workload.NewRNG(seed)
	for i := range s {
		s[i] = Tuple{Key: rng.Uint64n(buildKeys), Payload: uint64(i)}
	}
	return s
}

// Result reports one join execution.
type Result struct {
	Threads     int
	Matches     uint64
	BuildTime   time.Duration
	ProbeTime   time.Duration
	TotalTuples uint64
}

// TuplesPerSec is the paper's Figure 20 metric: (|R|+|S|)/runtime.
func (r Result) TuplesPerSec() float64 {
	total := r.BuildTime + r.ProbeTime
	if total <= 0 {
		return 0
	}
	return float64(r.TotalTuples) / total.Seconds()
}

// Run executes the join over DLHT with the given parallelism. batch selects
// the probe batch size (1 disables batching — the DLHT-NoBatch variant).
func Run(build, probe []Tuple, threads, batch int) Result {
	tbl := core.MustNew(core.Config{
		Bins:       uint64(len(build))*2/3 + 64,
		Resizable:  true,
		MaxThreads: 2*threads + 1,
	})
	res := Result{Threads: threads, TotalTuples: uint64(len(build) + len(probe))}

	// Build phase: parallel inserts of R.
	var wg sync.WaitGroup
	begin := time.Now()
	chunk := (len(build) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(build) {
			hi = len(build)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []Tuple) {
			defer wg.Done()
			h := tbl.MustHandle()
			for _, tu := range part {
				h.Insert(tu.Key, tu.Payload)
			}
		}(build[lo:hi])
	}
	wg.Wait()
	res.BuildTime = time.Since(begin)

	// Probe phase: batched Gets; matches aggregate payload checksums so the
	// probe work cannot be optimized away.
	var matches atomic.Uint64
	begin = time.Now()
	chunk = (len(probe) + threads - 1) / threads
	for t := 0; t < threads; t++ {
		lo := t * chunk
		hi := lo + chunk
		if hi > len(probe) {
			hi = len(probe)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part []Tuple) {
			defer wg.Done()
			h := tbl.MustHandle()
			var found uint64
			if batch > 1 {
				ops := make([]core.Op, batch)
				for off := 0; off < len(part); off += batch {
					end := off + batch
					if end > len(part) {
						end = len(part)
					}
					n := end - off
					for i := 0; i < n; i++ {
						ops[i] = core.Op{Kind: core.OpGet, Key: part[off+i].Key}
					}
					h.Exec(ops[:n], false)
					for i := 0; i < n; i++ {
						if ops[i].OK {
							found++
						}
					}
				}
			} else {
				for _, tu := range part {
					if _, ok := h.Get(tu.Key); ok {
						found++
					}
				}
			}
			matches.Add(found)
		}(probe[lo:hi])
	}
	wg.Wait()
	res.ProbeTime = time.Since(begin)
	res.Matches = matches.Load()
	return res
}
