// Package epoch implements the epoch-based garbage collection DLHT offers
// for Allocator-mode Deletes (§3.2.3): slots are reclaimed instantly, but
// the out-of-line value a deleted slot pointed to may still be read by a
// concurrent Get, so it is retired into the current epoch and only freed
// once every participating thread has moved past that epoch. As in the
// paper, "the client periodically performs a call from all threads to
// advance the epoch".
package epoch

import "sync/atomic"

// Collector coordinates a fixed set of participant threads. Thread i
// interacts through its Handle. The zero epoch is never collected, and a
// retired item is freed two epoch advances after retirement — the classic
// three-bucket scheme.
type Collector struct {
	global  atomic.Uint64
	records []record
}

type record struct {
	// epoch is the last global epoch this participant observed; the low bit
	// of active indicates whether the participant is inside a critical
	// region.
	epoch  atomic.Uint64
	active atomic.Uint32
	// dlht:ok:fieldalignment — deliberate padding: epoch+active share one
	// participant-private cache line, away from the retired lists below.
	_ [44]byte

	// retired items per epoch bucket (index = epoch % 3). Only the owning
	// thread touches its buckets, except during Drain.
	buckets [3][]func()
}

// NewCollector creates a collector for up to maxThreads participants.
func NewCollector(maxThreads int) *Collector {
	if maxThreads <= 0 {
		maxThreads = 1
	}
	c := &Collector{records: make([]record, maxThreads)}
	c.global.Store(1)
	for i := range c.records {
		c.records[i].epoch.Store(1)
	}
	return c
}

// Handle is the per-thread interface to the collector.
type Handle struct {
	c  *Collector
	id int
}

// Handle returns the participant handle for thread id (0 ≤ id < maxThreads).
func (c *Collector) Handle(id int) *Handle {
	if id < 0 || id >= len(c.records) {
		panic("epoch: handle id out of range")
	}
	return &Handle{c: c, id: id}
}

// Epoch returns the current global epoch (for tests and stats).
func (c *Collector) Epoch() uint64 { return c.global.Load() }

// Enter marks the participant as inside an epoch-protected region. Reads of
// retire-protected memory must happen between Enter and Leave.
func (h *Handle) Enter() {
	r := &h.c.records[h.id]
	r.active.Store(1)
	r.epoch.Store(h.c.global.Load())
}

// Leave marks the participant as outside any protected region.
func (h *Handle) Leave() {
	h.c.records[h.id].active.Store(0)
}

// Retire schedules free to run once two epoch advances have occurred, i.e.
// when no participant can still hold a reference obtained before the
// retirement epoch.
func (h *Handle) Retire(free func()) {
	r := &h.c.records[h.id]
	e := h.c.global.Load()
	r.buckets[e%3] = append(r.buckets[e%3], free)
}

// Advance is the periodic client call from the paper. It attempts to move
// the global epoch forward; if successful, it frees this participant's
// bucket from two epochs ago. It returns the number of items freed.
//
// The global epoch can only advance when every active participant has
// observed the current epoch, so by the time bucket (e-2)%3 is freed no
// reader can reference its items.
func (h *Handle) Advance() int {
	c := h.c
	e := c.global.Load()
	canAdvance := true
	for i := range c.records {
		r := &c.records[i]
		if r.active.Load() == 1 && r.epoch.Load() != e {
			canAdvance = false
			break
		}
	}
	if canAdvance {
		c.global.CompareAndSwap(e, e+1)
	}
	// Free this thread's stale bucket regardless of who advanced: anything
	// retired at epoch ≤ current-2 is unreachable.
	cur := c.global.Load()
	if cur < 3 {
		return 0
	}
	freedBucket := (cur - 2) % 3
	r := &c.records[h.id]
	// The bucket for (cur-2) is only safe if it cannot also be the bucket
	// of the current epoch; with 3 buckets that always holds.
	if freedBucket == cur%3 || freedBucket == (cur-1)%3 {
		return 0
	}
	items := r.buckets[freedBucket]
	if len(items) == 0 {
		return 0
	}
	r.buckets[freedBucket] = nil
	for _, f := range items {
		f()
	}
	return len(items)
}

// Drain frees every retired item unconditionally. Only safe when the caller
// guarantees quiescence (e.g. table teardown). Returns items freed.
func (c *Collector) Drain() int {
	n := 0
	for i := range c.records {
		r := &c.records[i]
		for b := range r.buckets {
			for _, f := range r.buckets[b] {
				f()
				n++
			}
			r.buckets[b] = nil
		}
	}
	return n
}
