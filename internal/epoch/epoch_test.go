package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireNotFreedImmediately(t *testing.T) {
	c := NewCollector(1)
	h := c.Handle(0)
	freed := false
	h.Retire(func() { freed = true })
	if freed {
		t.Fatal("freed before any advance")
	}
	h.Advance()
	if freed {
		t.Fatal("freed after a single advance")
	}
}

func TestRetireFreedAfterTwoAdvances(t *testing.T) {
	c := NewCollector(1)
	h := c.Handle(0)
	freed := false
	h.Retire(func() { freed = true })
	for i := 0; i < 4 && !freed; i++ {
		h.Advance()
	}
	if !freed {
		t.Fatal("item never freed after repeated advances")
	}
}

func TestAdvanceBlockedByLaggingActiveThread(t *testing.T) {
	c := NewCollector(2)
	h0, h1 := c.Handle(0), c.Handle(1)
	h0.Enter()
	h1.Enter()
	e := c.Epoch()
	// h1 advances; both threads have observed e, so the epoch moves.
	h1.Advance()
	if c.Epoch() != e+1 {
		t.Fatalf("epoch = %d, want %d", c.Epoch(), e+1)
	}
	// h0 has not re-observed the new epoch; further advances must stall.
	h1.Enter() // h1 observes e+1
	h1.Advance()
	if c.Epoch() != e+1 {
		t.Fatalf("epoch advanced past a lagging active thread: %d", c.Epoch())
	}
	// Once h0 leaves, it no longer blocks advancement.
	h0.Leave()
	h1.Advance()
	if c.Epoch() != e+2 {
		t.Fatalf("epoch = %d, want %d after lagging thread left", c.Epoch(), e+2)
	}
}

func TestDrainFreesEverything(t *testing.T) {
	c := NewCollector(3)
	var n atomic.Int64
	for i := 0; i < 3; i++ {
		h := c.Handle(i)
		for j := 0; j < 5; j++ {
			h.Retire(func() { n.Add(1) })
		}
	}
	if freed := c.Drain(); freed != 15 {
		t.Fatalf("Drain freed %d, want 15", freed)
	}
	if n.Load() != 15 {
		t.Fatalf("callbacks run %d, want 15", n.Load())
	}
}

func TestHandleOutOfRangePanics(t *testing.T) {
	c := NewCollector(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Handle(1)
}

// The safety property: a reader inside Enter/Leave that captured an item
// before it was retired must never observe the free callback running while
// it is still inside the critical region.
func TestEpochSafetyUnderConcurrency(t *testing.T) {
	const readers = 4
	c := NewCollector(readers + 1)
	writer := c.Handle(readers)

	type obj struct{ alive atomic.Bool }
	var current atomic.Pointer[obj]
	o := &obj{}
	o.alive.Store(true)
	current.Store(o)

	var stop atomic.Bool
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := c.Handle(id)
			for !stop.Load() {
				h.Enter()
				p := current.Load()
				// Simulate some work inside the critical region.
				for k := 0; k < 10; k++ {
					if !p.alive.Load() {
						violations.Add(1)
						break
					}
				}
				h.Leave()
				h.Advance()
			}
		}(i)
	}
	for round := 0; round < 3000; round++ {
		old := current.Load()
		next := &obj{}
		next.alive.Store(true)
		current.Store(next)
		writer.Retire(func() { old.alive.Store(false) })
		writer.Advance()
	}
	stop.Store(true)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d epoch safety violations", v)
	}
}
