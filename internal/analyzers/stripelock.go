package analyzers

// stripelock: lazy expiry is check-then-act — read a deadline, decide
// the key is dead, delete it. The check and the delete must happen
// under the same expiry stripe lock (expiry.Index.Lock(hash)), or a
// concurrent PUT between them resurrects the key and the delete kills
// live data (the race the RESP TTL layer fixed during PR 8 review).
//
// The pass fires per function scope (literals are scopes of their
// own): when a scope both consults the deadline index (Deadline /
// Expired / Remove) and deletes KV pairs (DeleteKV / DeleteKVHashed),
// every delete must sit inside the stripe-lock span — after a
// zero-argument .Lock() that follows the stripe acquisition
// Lock(hash), and before the final .Unlock() (a deferred Unlock
// covers the whole tail). Helpers named *Locked are exempt: their
// contract is "caller holds the stripe".

import (
	"go/ast"
	"go/token"
	"math"
	"strings"
)

var StripeLock = &Analyzer{
	Name: "stripelock",
	Doc:  "expiry deadline checks and the deletes they justify must share one stripe-lock span",
	Run:  runStripeLock,
}

var expiryChecks = map[string]bool{
	"Deadline": true, "Expired": true, "Remove": true,
}

var kvDeletes = map[string]bool{
	"DeleteKV": true, "DeleteKVHashed": true,
}

func runStripeLock(p *Pass) {
	for _, f := range p.Files {
		for _, s := range scopes(f) {
			if strings.HasSuffix(s.name, "Locked") {
				continue
			}
			checkStripeLock(p, s)
		}
	}
}

func checkStripeLock(p *Pass, s funcScope) {
	var (
		deletes     []*ast.CallExpr
		hasCheck    bool
		stripeAcq   token.Pos // first Lock(args...) — stripe selection
		muLock      token.Pos // first zero-arg .Lock() after acquisition
		lastUnlock  token.Pos // last zero-arg .Unlock()
		deferUnlock bool
	)
	walkScope(s, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if calleeName(d.Call) == "Unlock" && len(d.Call.Args) == 0 {
				deferUnlock = true
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case expiryChecks[name]:
			hasCheck = true
		case kvDeletes[name]:
			deletes = append(deletes, call)
		case name == "Lock" && len(call.Args) > 0:
			if stripeAcq == token.NoPos {
				stripeAcq = call.Pos()
			}
		case name == "Lock" && len(call.Args) == 0:
			if muLock == token.NoPos && call.Pos() > stripeAcq && stripeAcq != token.NoPos {
				muLock = call.Pos()
			}
		case name == "Unlock" && len(call.Args) == 0:
			if call.Pos() > lastUnlock {
				lastUnlock = call.Pos()
			}
		}
		return true
	})
	if len(deletes) == 0 || !hasCheck {
		return
	}
	if muLock == token.NoPos {
		for _, d := range deletes {
			p.Reportf(d.Pos(),
				"%s deletes a checked-expired key without acquiring its expiry stripe lock (Lock(hash); mu.Lock())",
				calleeName(d))
		}
		return
	}
	end := lastUnlock
	if deferUnlock {
		end = math.MaxInt32 // deferred Unlock covers through return
	}
	for _, d := range deletes {
		if d.Pos() < muLock || d.Pos() > end {
			p.Reportf(d.Pos(),
				"%s runs outside the expiry stripe-lock span; the deadline check and delete must share one critical section",
				calleeName(d))
		}
	}
}
