package analyzers

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintCleanOnTree runs every pass over the real module — the same
// invocation as `go run ./cmd/dlhtlint ./...` in CI — and fails on any
// finding. A contract regression anywhere in the serving code fails
// this test before it fails in production.
func TestLintCleanOnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, pkg := range pkgs {
		for _, a := range All() {
			for _, d := range Run(a, pkg) {
				t.Errorf("%s: %s [%s]", pkg.Fset.Position(d.Pos), d.Message, a.Name)
			}
		}
	}
}
