package analyzers

// hotpath: files carrying a standalone //dlht:hotpath directive hold
// the per-op serving code — the core pipeline engines, the exec shard
// loop, the RESP reader. Three allocation/syscall habits are banned
// there outright:
//
//   - time.Now: a vDSO call per op; hot code takes timestamps from a
//     coarse clock its caller samples (expiry.Index.Now).
//   - fmt.*: every fmt call allocates (interface boxing + reflection);
//     hot errors are prebuilt sentinels or hand-formatted.
//   - interface conversions of concrete non-pointer values: T(x) or
//     implicit boxing via conversion syntax escapes x to the heap.
//
// The third check flags explicit conversions whose target type is an
// interface and whose operand is a concrete non-pointer value — the
// form that always allocates. (Implicit boxing at call sites is the
// fmt rule's territory; banning fmt removes the dominant source.)

import (
	"go/ast"
	"go/types"
)

const hotMarker = "dlht:hotpath"

var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//dlht:hotpath files may not call time.Now or fmt.*, or box values into interfaces",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	for _, f := range p.Files {
		if !fileHasMarker(f, hotMarker) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
				checkHotConversion(p, call, tv.Type)
				return true
			}
			switch pkg := calleePkgPath(p.Info, call); pkg {
			case "fmt":
				p.Reportf(call.Pos(), "fmt.%s in a //dlht:hotpath file allocates; use sentinels or hand formatting", calleeName(call))
			case "time":
				// Since and Until are time.Now in disguise.
				if n := calleeName(call); n == "Now" || n == "Since" || n == "Until" {
					p.Reportf(call.Pos(), "time.%s in a //dlht:hotpath file; sample a coarse clock outside the hot loop", n)
				}
			}
			return true
		})
	}
}

// checkHotConversion flags T(x) where T is an interface and x is a
// concrete non-pointer value — a conversion that heap-allocates.
func checkHotConversion(p *Pass, call *ast.CallExpr, target types.Type) {
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	at := p.Info.TypeOf(call.Args[0])
	if at == nil {
		return
	}
	if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.IsNil() {
		return
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return
	}
	p.Reportf(call.Pos(), "interface conversion of a %s value in a //dlht:hotpath file allocates", at.String())
}
