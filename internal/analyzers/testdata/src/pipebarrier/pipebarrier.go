// Fixture for the pipebarrier pass: methods on a KVPipeline-owning
// type must drain the pipeline before direct KV table operations, or
// in-flight completions reorder across them.
package pipebarrier

type KVPipeline struct{}

func (pl *KVPipeline) GetHashed(key []byte, hash uint64) {}
func (pl *KVPipeline) Flush()                            {}
func (pl *KVPipeline) InFlight() int                     { return 0 }

type handle struct{}

func (h *handle) GetKV(key []byte) ([]byte, bool)             { return nil, false }
func (h *handle) DeleteKVHashed(key []byte, hash uint64) bool { return true }

type conn struct {
	pl *KVPipeline
	h  *handle
}

func (cn *conn) barrier() { cn.pl.Flush() }

// cmdGood drains in-flight lookups before the direct read.
func (cn *conn) cmdGood(key []byte) {
	cn.barrier()
	cn.h.GetKV(key)
}

// enqueueGood: calls on the pipeline itself are the streaming path.
func (cn *conn) enqueueGood(key []byte, hash uint64) {
	cn.pl.GetHashed(key, hash)
}

// cmdBad reads the table while lookups may still be in flight.
func (cn *conn) cmdBad(key []byte) {
	cn.h.GetKV(key) // want `no barrier/Flush before it`
	cn.barrier()
}

// deleteBad mutates behind in-flight lookups.
func (cn *conn) deleteBad(key []byte, hash uint64) {
	cn.h.DeleteKVHashed(key, hash) // want `no barrier/Flush before it`
}

// setLocked: *Locked helpers run behind the caller's barrier.
func (cn *conn) setLocked(key []byte) {
	cn.h.GetKV(key)
}

// free functions without the owning receiver are out of scope.
func free(h *handle, key []byte) {
	h.GetKV(key)
}
