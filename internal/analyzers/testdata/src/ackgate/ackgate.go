// Fixture for the ackgate pass: the PR 6 / PR 8 bufio auto-flush
// hazard. Marked reply writers must gate socket-bound bytes behind a
// covering sync before any bufio/net sink.
package ackgate

import (
	"bufio"
	"net"
)

type conn struct {
	c  net.Conn
	bw *bufio.Writer
}

func (cn *conn) room(n int)   {}
func (cn *conn) syncPending() {}

// writeGood gates before the sink.
//
//dlht:ackgated
func (cn *conn) writeGood(msg string) {
	cn.room(len(msg))
	cn.bw.WriteString(msg)
}

// writeBad is the historical bug: bufio may auto-flush unsynced bytes
// mid-Write, and the gate only opens afterwards.
//
//dlht:ackgated
func (cn *conn) writeBad(msg string) {
	cn.bw.WriteString(msg) // want `may push unsynced bytes`
	cn.room(len(msg))
}

//dlht:ackgated
func (cn *conn) flushBad() {
	cn.bw.Flush() // want `may push unsynced bytes`
}

//dlht:ackgated
func (cn *conn) rawBad(b []byte) {
	cn.c.Write(b) // want `may push unsynced bytes`
}

// closureGood: a gate inside a nested literal still precedes the sink.
//
//dlht:ackgated
func (cn *conn) closureGood(b []byte) {
	sync := func() { cn.syncPending() }
	sync()
	cn.bw.Write(b)
}

// unmarked functions are out of scope even without a gate.
func (cn *conn) unmarked(msg string) {
	cn.bw.WriteString(msg)
}

// suppressed shows the dlht:ok escape hatch.
//
//dlht:ackgated
func (cn *conn) suppressed(msg string) {
	cn.bw.WriteString(msg) // dlht:ok:ackgate — fixture: justified suppression
}
