// Fixture for the sentinelcmp pass: error sentinels cross wrap
// boundaries; == / != / switch silently stop matching when a layer
// wraps — compare with errors.Is.
package sentinelcmp

import "errors"

var errExists = errors.New("exists")
var errFull = errors.New("full")

func insert() error { return errExists }

// goodIs uses errors.Is.
func goodIs() bool {
	err := insert()
	return errors.Is(err, errExists)
}

// goodNil: nil checks are the normal control flow, not sentinel
// comparison.
func goodNil() bool {
	return insert() == nil || insert() != nil
}

func badEq() bool {
	err := insert()
	return err == errExists // want `error compared with ==`
}

func badNeq() bool {
	err := insert()
	return err != errFull // want `error compared with !=`
}

func badSwitch() int {
	switch insert() { // want `switch on an error value`
	case nil:
		return 0
	case errExists:
		return 1
	}
	return 2
}

// nilOnlySwitch never compares sentinels.
func nilOnlySwitch() int {
	switch insert() {
	case nil:
		return 0
	}
	return 1
}

func suppressedSwitch() int {
	// dlht:ok:sentinelcmp — fixture: justified hot-path switch
	switch insert() {
	case errFull:
		return 1
	}
	return 0
}
