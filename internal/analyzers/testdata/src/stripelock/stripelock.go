// Fixture for the stripelock pass: lazy expiry's check-then-delete
// must share one stripe-lock critical section, or a concurrent PUT
// between the deadline check and the delete kills live data.
package stripelock

import "sync"

type index struct{ mu [16]sync.Mutex }

func (ix *index) Lock(hash uint64) *sync.Mutex                   { return &ix.mu[hash&15] }
func (ix *index) Deadline(key []byte, hash uint64) (int64, bool) { return 0, false }
func (ix *index) Remove(key []byte, hash uint64) bool            { return false }

type handle struct{}

func (h *handle) DeleteKVHashed(key []byte, hash uint64) bool { return true }

type store struct {
	exp *index
	h   *handle
}

// expireGood: check and delete share the stripe span.
func (s *store) expireGood(key []byte, hash uint64) {
	mu := s.exp.Lock(hash)
	mu.Lock()
	if at, ok := s.exp.Deadline(key, hash); ok && at <= 0 {
		s.h.DeleteKVHashed(key, hash)
		s.exp.Remove(key, hash)
	}
	mu.Unlock()
}

// expireDeferGood: a deferred Unlock covers through return.
func (s *store) expireDeferGood(key []byte, hash uint64) {
	mu := s.exp.Lock(hash)
	mu.Lock()
	defer mu.Unlock()
	if at, ok := s.exp.Deadline(key, hash); ok && at <= 0 {
		s.h.DeleteKVHashed(key, hash)
	}
}

// expireBadNoLock is the race: check-then-delete with no stripe at all.
func (s *store) expireBadNoLock(key []byte, hash uint64) {
	if at, ok := s.exp.Deadline(key, hash); ok && at <= 0 {
		s.h.DeleteKVHashed(key, hash) // want `without acquiring its expiry stripe lock`
	}
}

// expireBadOutside: the decision is made under the stripe but the
// delete escapes it (unlock-before-use).
func (s *store) expireBadOutside(key []byte, hash uint64) {
	mu := s.exp.Lock(hash)
	mu.Lock()
	dead := false
	if at, ok := s.exp.Deadline(key, hash); ok && at <= 0 {
		dead = true
	}
	mu.Unlock()
	if dead {
		s.h.DeleteKVHashed(key, hash) // want `outside the expiry stripe-lock span`
	}
}

// expireLocked: *Locked helpers run under the caller's stripe.
func (s *store) expireLocked(key []byte, hash uint64) {
	if at, ok := s.exp.Deadline(key, hash); ok && at <= 0 {
		s.h.DeleteKVHashed(key, hash)
	}
}

// deleteOnly: deletes with no deadline consultation are not expiry.
func (s *store) deleteOnly(key []byte, hash uint64) {
	s.h.DeleteKVHashed(key, hash)
}
