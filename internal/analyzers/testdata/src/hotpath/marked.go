// Fixture for the hotpath pass: files carrying //dlht:hotpath may not
// call time.Now (or Since/Until), any fmt function, or box concrete
// values into interfaces.
package hotpath

//dlht:hotpath

import (
	"fmt"
	"time"
)

type iface interface{ m() }

type impl struct{ x int }

func (impl) m() {}

func now() int64 {
	return time.Now().UnixNano() // want `time.Now in a //dlht:hotpath file`
}

func since(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since in a //dlht:hotpath file`
}

func errf(n int) error {
	return fmt.Errorf("bad %d", n) // want `fmt.Errorf in a //dlht:hotpath file`
}

func box(v impl) iface {
	return iface(v) // want `interface conversion of a .*impl value`
}

// boxPtr: pointers already live in one word; no copy, no allocation
// beyond what escape analysis decides for the pointee.
func boxPtr(v *impl) iface {
	return iface(v)
}

// parse: non-Now time functions that don't read the clock are fine.
func parse() (time.Time, error) {
	return time.Parse(time.RFC3339, "2024-01-01T00:00:00Z")
}
