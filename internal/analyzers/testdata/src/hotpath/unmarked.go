package hotpath

import (
	"fmt"
	"time"
)

// Unmarked files are out of the pass's scope entirely.
func fine() (int64, error) {
	return time.Now().UnixNano(), fmt.Errorf("ok")
}
