package analyzers

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one type-checked target package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load type-checks the packages matching the go-list patterns under
// moduleDir and returns them ready for analysis. It shells out to
// `go list -export -deps`, which compiles (or reuses from the build
// cache) export data for the full dependency closure, then
// type-checks only the matched packages from source with the stdlib
// gc importer resolving every import from that export data — fully
// offline, no golang.org/x/tools.
//
// Test files are not loaded (GoFiles excludes *_test.go), matching the
// passes' serving-code focus.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path → export file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	sizes := types.SizesFor("gc", runtime.GOARCH)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name),
				nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: sizes}
		tp, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath, Dir: t.Dir,
			Fset: fset, Files: files, Types: tp, Info: info,
		})
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
