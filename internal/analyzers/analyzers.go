// Package analyzers implements dlht's repo-specific static analysis
// passes — the concurrency contracts the paper's design depends on and
// that no general-purpose tool knows about:
//
//   - ackgate:     durable-serving reply writers must gate socket-bound
//     bytes behind a covering sync (the bufio auto-flush
//     hazard re-fixed by hand in PR 6 and PR 8)
//   - stripelock:  expiry deadline checks and the deletes they justify
//     must share one stripe-lock span
//   - pipebarrier: KV reads outside the streaming pipeline must drain
//     it first, or completions reorder across them
//   - sentinelcmp: error sentinels compare with errors.Is, never ==/!=
//   - hotpath:     files annotated //dlht:hotpath may not call
//     time.Now or fmt.*, or allocate via interface conversion
//
// The passes are written against go/ast + go/types only. The toolchain
// image has no module cache and no network, so golang.org/x/tools
// (go/analysis, analysistest, go/packages) is unavailable; this package
// carries a minimal equivalent of the analysis.Pass surface and loads
// real packages offline through `go list -export` plus the stdlib gc
// importer (see load.go). The driver is cmd/dlhtlint.
//
// Suppression: a diagnostic is dropped when the flagged line, or the
// line directly above it, carries a comment containing
// "dlht:ok:<analyzer>" — use it with a justification, like //nolint.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named pass. Run inspects the package behind the
// Pass and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns every pass, in the order the driver runs them.
func All() []*Analyzer {
	return []*Analyzer{AckGate, StripeLock, PipeBarrier, SentinelCmp, HotPath}
}

// ByName returns the named pass, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes one analyzer over a loaded package and returns its
// diagnostics with dlht:ok suppressions applied, sorted by position.
func Run(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
	a.Run(pass)
	return suppress(a.Name, pass)
}

// suppress drops diagnostics whose line (or the line above) carries a
// dlht:ok:<name> comment.
func suppress(name string, p *Pass) []Diagnostic {
	marker := "dlht:ok:" + name
	// Lines (per file) on which a suppression applies.
	ok := make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, marker) {
					continue
				}
				// The marker covers its own line through one line past
				// the end of its comment group, so a multi-line
				// justification still reaches the code below it.
				pos := p.Fset.Position(c.Pos())
				end := p.Fset.Position(cg.End())
				m := ok[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					ok[pos.Filename] = m
				}
				for line := pos.Line; line <= end.Line+1; line++ {
					m[line] = true
				}
			}
		}
	}
	out := p.diags[:0]
	for _, d := range p.diags {
		pos := p.Fset.Position(d.Pos)
		if ok[pos.Filename][pos.Line] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers
// ---------------------------------------------------------------------------

// calleeName returns the bare name of a call's function or method —
// "Lock" for mu.Lock() and for a local lock() closure alike.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// calleePkgPath returns the import path when the call is a selector on
// a package name (fmt.Errorf → "fmt"), else "".
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// recvType returns the static type of a method call's receiver
// expression (x in x.M(...)), or nil for plain function calls.
func recvType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if _, isPkg := info.Uses[unparenIdent(sel.X)].(*types.PkgName); isPkg {
		return nil
	}
	return info.TypeOf(sel.X)
}

func unparenIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// namedOf unwraps pointers and returns the named type underneath, or
// nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// isNamed reports whether t (pointers unwrapped) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	p := n.Obj().Pkg()
	return p != nil && p.Path() == pkgPath
}

// commentHasMarker reports whether any line of the comment group
// contains marker as a standalone directive (//dlht:ackgated style).
func commentHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// fileHasMarker reports whether the file carries a standalone
// //<marker> directive comment anywhere.
func fileHasMarker(f *ast.File, marker string) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
				return true
			}
		}
	}
	return false
}

// funcScope is one function body analyzed independently: a FuncDecl or
// a FuncLit. Nested literals are their own scopes and are excluded
// from the parent's walk by walkScope.
type funcScope struct {
	name string // "" for function literals
	body *ast.BlockStmt
	node ast.Node // the FuncDecl or FuncLit
}

// scopes collects every function body in the file as an independent
// scope.
func scopes(f *ast.File) []funcScope {
	var out []funcScope
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcScope{name: fd.Name.Name, body: fd.Body, node: fd})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcScope{body: fl.Body, node: fl})
			}
			return true
		})
	}
	return out
}

// walkScope visits the scope's own statements, descending into
// everything except nested function literals.
func walkScope(s funcScope, visit func(ast.Node) bool) {
	for _, st := range s.body.List {
		ast.Inspect(st, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return visit(n)
		})
	}
}
