package analyzers

// ackgate: in durable-serving reply paths, no byte may reach the
// socket before the group commit covering it — PRs 6 and 8 each
// re-discovered by hand that bufio.Writer auto-flushes mid-Write when
// the buffer fills, leaking unsynced acks. Functions that write
// response bytes opt in with a //dlht:ackgated doc comment; inside
// them, every socket-bound sink (bufio.Writer Write/WriteString/
// WriteByte/Flush, net.Conn Write) must be preceded by a covering
// gate: a call to room(n), syncPending(), SyncWait(seq), Synced(), or
// flush().
//
// "Preceded" is positional within the function body (including its
// nested literals) — a deliberate over-approximation that matches how
// the real writers are shaped: the gate opens at the top, the sinks
// follow. Restructuring a writer so a sink precedes every gate is
// exactly the regression this pass exists to catch.

import (
	"go/ast"
	"go/token"
)

const ackMarker = "dlht:ackgated"

var AckGate = &Analyzer{
	Name: "ackgate",
	Doc:  "reply writers marked //dlht:ackgated must gate socket-bound bytes behind a covering sync",
	Run:  runAckGate,
}

var ackGates = map[string]bool{
	"room": true, "syncPending": true, "SyncWait": true,
	"Synced": true, "flush": true,
}

var bufioSinks = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Flush": true, "ReadFrom": true,
}

func runAckGate(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !commentHasMarker(fd.Doc, ackMarker) {
				continue
			}
			checkAckGate(p, fd)
		}
	}
}

func checkAckGate(p *Pass, fd *ast.FuncDecl) {
	var gates []token.Pos
	var sinks []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if ackGates[name] {
			gates = append(gates, call.Pos())
			return true
		}
		if isSocketSink(p, call, name) {
			sinks = append(sinks, call)
		}
		return true
	})
	for _, s := range sinks {
		gated := false
		for _, g := range gates {
			if g < s.Pos() {
				gated = true
				break
			}
		}
		if !gated {
			p.Reportf(s.Pos(),
				"%s: %s may push unsynced bytes to the socket with no covering gate (room/syncPending/SyncWait) before it in this //dlht:ackgated function",
				fd.Name.Name, calleeName(s))
		}
	}
}

// isSocketSink: a method call that can move buffered reply bytes
// toward the peer — anything on a *bufio.Writer, or Write on a
// net.Conn.
func isSocketSink(p *Pass, call *ast.CallExpr, name string) bool {
	rt := recvType(p.Info, call)
	if rt == nil {
		return false
	}
	if bufioSinks[name] && isNamed(rt, "bufio", "Writer") {
		return true
	}
	return name == "Write" && isNamed(rt, "net", "Conn")
}
