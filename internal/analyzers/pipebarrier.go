package analyzers

// pipebarrier: a streaming KVPipeline completes lookups out of band;
// any direct KV operation on the handle (a synchronous read, an
// upsert, a delete) that runs while lookups are still in flight can
// observe or produce state the pending completions then contradict —
// replies reorder across the mutation. The contract on the resp and
// exec serving paths: methods of a struct that owns a *core.KVPipeline
// must drain it (barrier / Flush / drainTo) before touching the table
// directly.
//
// The pass finds struct types with a KVPipeline-typed field, then
// checks each of their methods: a direct KV call (GetKV, GetKVCopy,
// InsertKV*, UpdateKV, DeleteKV*) not on the pipeline itself must be
// positionally preceded by a drain call. *Locked helpers are exempt
// (their callers hold the barrier).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var PipeBarrier = &Analyzer{
	Name: "pipebarrier",
	Doc:  "KVPipeline owners must drain the pipeline before direct KV table operations",
	Run:  runPipeBarrier,
}

var pipeDrains = map[string]bool{
	"barrier": true, "Flush": true, "drainTo": true,
}

var directKVOps = map[string]bool{
	"GetKV": true, "GetKVCopy": true, "UpdateKV": true,
	"InsertKV": true, "InsertKVHashed": true,
	"DeleteKV": true, "DeleteKVHashed": true,
}

func runPipeBarrier(p *Pass) {
	owners := pipelineOwners(p)
	if len(owners) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			recv := fd.Recv.List[0].Type
			rt := p.Info.TypeOf(recv)
			n := namedOf(rt)
			if n == nil || !owners[n.Obj().Name()] {
				continue
			}
			checkPipeBarrier(p, fd)
		}
	}
}

// pipelineOwners returns the names of struct types in this package
// with a field whose type is (a pointer to) a type named KVPipeline.
func pipelineOwners(p *Pass) map[string]bool {
	owners := make(map[string]bool)
	scope := p.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if fn := namedOf(st.Field(i).Type()); fn != nil && fn.Obj().Name() == "KVPipeline" {
				owners[name] = true
				break
			}
		}
	}
	return owners
}

func checkPipeBarrier(p *Pass, fd *ast.FuncDecl) {
	var drains []token.Pos
	var direct []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if pipeDrains[name] {
			drains = append(drains, call.Pos())
			return true
		}
		if directKVOps[name] && !onPipeline(p, call) {
			direct = append(direct, call)
		}
		return true
	})
	for _, c := range direct {
		drained := false
		for _, d := range drains {
			if d < c.Pos() {
				drained = true
				break
			}
		}
		if !drained {
			p.Reportf(c.Pos(),
				"%s: direct KV op %s on a KVPipeline-owning type with no barrier/Flush before it; in-flight completions may reorder across it",
				fd.Name.Name, calleeName(c))
		}
	}
}

// onPipeline reports whether the call's receiver is itself the
// pipeline (pipeline-surface enqueues are the streaming path, not a
// bypass).
func onPipeline(p *Pass, call *ast.CallExpr) bool {
	rt := recvType(p.Info, call)
	if rt == nil {
		return false
	}
	n := namedOf(rt)
	return n != nil && n.Obj().Name() == "KVPipeline"
}
