package analyzers

// sentinelcmp: sentinel errors cross wrap boundaries in this codebase
// constantly — the wire protocol decodes remote failures into
// StatusErr-backed sentinels, the WAL wraps core errors with context,
// the cluster layer wraps both for retry classification. An == or !=
// against an error (or a switch on an error value) silently stops
// matching the moment anyone adds a wrapping layer; PR 7's typed-nil
// Store/WAL wiring bug was exactly this shape. Compare with
// errors.Is (or errors.As for types) instead.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var SentinelCmp = &Analyzer{
	Name: "sentinelcmp",
	Doc:  "error values must be compared with errors.Is, never ==/!= or switch",
	Run:  runSentinelCmp,
}

func runSentinelCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if (isErrorExpr(p, e.X) || isErrorExpr(p, e.Y)) &&
					!isNilExpr(p, e.X) && !isNilExpr(p, e.Y) {
					p.Reportf(e.OpPos,
						"error compared with %s; use errors.Is so wrapped sentinels still match", e.Op)
				}
			case *ast.SwitchStmt:
				if e.Tag == nil || !isErrorExpr(p, e.Tag) {
					return true
				}
				// One diagnostic per switch, at the tag, so a single
				// dlht:ok suppression can cover a deliberate choice.
				for _, cc := range e.Body.List {
					clause, ok := cc.(*ast.CaseClause)
					if !ok {
						continue
					}
					nonNil := false
					for _, v := range clause.List {
						if !isNilExpr(p, v) {
							nonNil = true
						}
					}
					if nonNil {
						p.Reportf(e.Switch,
							"switch on an error value compares with ==; use errors.Is so wrapped sentinels still match")
						break
					}
				}
			}
			return true
		})
	}
}

var errType = types.Universe.Lookup("error").Type()

// isErrorExpr reports whether e's static type is the error interface.
func isErrorExpr(p *Pass, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	return t != nil && types.Identical(t, errType)
}

func isNilExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.IsNil()
}
