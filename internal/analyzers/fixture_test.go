package analyzers

// Fixture harness in the analysistest mold (x/tools is unavailable in
// the build image, so this is a minimal offline equivalent): each pass
// has a package under testdata/src/<pass>/ whose `// want `regexp``
// comments declare the diagnostics the pass must produce on that line
// — nothing more, nothing less. Fixtures type-check against the
// standard library from GOROOT source via the "source" importer, so no
// export data or network is needed.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("// want `([^`]+)`")

type wantKey struct {
	file string
	line int
}

func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tp, err := conf.Check("fixture/"+name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	pkg := &Package{ImportPath: "fixture/" + name, Fset: fset, Files: files, Types: tp, Info: info}
	diags := Run(a, pkg)

	// Collect expectations from // want comments.
	want := make(map[wantKey][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := wantKey{pos.Filename, pos.Line}
				want[k] = append(want[k], regexp.MustCompile(m[1]))
			}
		}
	}

	matched := make(map[wantKey][]bool)
	for k, res := range want {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		found := false
		for i, re := range want[k] {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, res := range want {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: missing diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

func TestAckGateFixture(t *testing.T)     { runFixture(t, AckGate, "ackgate") }
func TestStripeLockFixture(t *testing.T)  { runFixture(t, StripeLock, "stripelock") }
func TestPipeBarrierFixture(t *testing.T) { runFixture(t, PipeBarrier, "pipebarrier") }
func TestSentinelCmpFixture(t *testing.T) { runFixture(t, SentinelCmp, "sentinelcmp") }
func TestHotPathFixture(t *testing.T)     { runFixture(t, HotPath, "hotpath") }
