package expiry

import "time"

// SweepOpts configures a background sweeper.
type SweepOpts struct {
	// Interval between sweep rounds (default 100ms).
	Interval time.Duration
	// Sample bounds how many entries one round examines per shard before
	// moving on (default 20). Go's randomized map iteration order makes
	// each round a fresh sample, Redis's activeExpireCycle in miniature.
	Sample int
	// OnExpired is called, outside all index locks, for each sampled
	// entry whose deadline has passed. The owner re-checks the deadline
	// under the key's stripe lock, deletes the pair from the table and
	// Removes the entry — the callback finding the entry already gone
	// (a racing SET or lazy expire won) is normal.
	OnExpired func(ns uint16, key []byte, at int64)
	// OnRound, if set, runs after each full sweep round — the owner's
	// hook for periodic handle maintenance (epoch advance).
	OnRound func()
}

// Sweeper is a running background sweep goroutine; Stop joins it.
type Sweeper struct {
	stop chan struct{}
	done chan struct{}
}

// StartSweeper launches the sampling expiry sweep over ix. Like Redis's
// active expiry: each round samples every shard, fires OnExpired for the
// expired entries found, and re-samples a shard while more than a quarter
// of its sample was expired (bounded, so one huge expired cohort cannot
// monopolize the goroutine).
func (ix *Index) StartSweeper(o SweepOpts) *Sweeper {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.Sample <= 0 {
		o.Sample = 20
	}
	sw := &Sweeper{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sw.done)
		t := time.NewTicker(o.Interval)
		defer t.Stop()
		for {
			select {
			case <-sw.stop:
				return
			case <-t.C:
				ix.SweepOnce(o.Sample, o.OnExpired)
				if o.OnRound != nil {
					o.OnRound()
				}
			}
		}
	}()
	return sw
}

// Stop halts the sweeper and waits for the in-flight round to finish.
func (sw *Sweeper) Stop() {
	close(sw.stop)
	<-sw.done
}

// maxResample bounds how many times one round revisits a single shard.
const maxResample = 4

// SweepOnce runs one sweep round: sample up to n entries per shard, fire
// onExpired for the expired ones, re-sample while over 25% of a shard's
// sample was expired. Returns how many expired entries were reported.
// Exported for deterministic tests; the background sweeper calls it on a
// ticker.
func (ix *Index) SweepOnce(n int, onExpired func(ns uint16, key []byte, at int64)) int {
	if ix.count.Load() == 0 {
		return 0
	}
	type ent struct {
		mk string
		at int64
	}
	now := ix.now()
	total := 0
	var hits []ent
	for i := range ix.shards {
		s := &ix.shards[i]
		for round := 0; round < maxResample; round++ {
			hits = hits[:0]
			scanned := 0
			s.mu.Lock()
			for mk, at := range s.m {
				if scanned >= n {
					break
				}
				scanned++
				if at <= now {
					hits = append(hits, ent{mk, at})
				}
			}
			s.mu.Unlock()
			for _, e := range hits {
				ns, key := splitKey(e.mk)
				if onExpired != nil {
					onExpired(ns, key, e.at)
				}
			}
			total += len(hits)
			// Keep digging only while the sample ran hot (>25% expired).
			if scanned == 0 || len(hits)*4 <= scanned {
				break
			}
		}
	}
	return total
}
