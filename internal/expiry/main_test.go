package expiry

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package when goroutines outlive the tests —
// every sweeper, sync goroutine, prober and connection writer must be
// joined by its owner's Close.
func TestMain(m *testing.M) { leakcheck.Main(m) }
