// Package expiry tracks per-key time-to-live deadlines beside an
// Allocator-mode DLHT table. The table itself stays TTL-free — expiry is
// a sidecar index from (namespace, key) to an absolute Unix-millisecond
// deadline, consulted lazily on reads (an expired key answers as a miss
// and is deleted) and swept in the background by a sampling goroutine,
// memcached/Redis style.
//
// The index is deliberately dumb about the table: it stores deadlines and
// nothing else. The owner (the RESP front-end, the wal.Store) performs
// the actual table deletions, holding the per-key stripe lock the index
// hands out so a compound operation — check the deadline, delete the
// pair, drop the entry — is atomic against a concurrent SET or PERSIST
// racing on the same key.
//
// TTL-free workloads pay one atomic load per read: every method that
// could miss consults an entry counter first and returns without locking
// when the index is empty.
package expiry

import (
	"sync"
	"sync/atomic"
	"time"
)

// NowMs is the production clock: Unix milliseconds.
func NowMs() int64 { return time.Now().UnixMilli() }

// shardCount sharding of the deadline map bounds lock contention between
// connections setting TTLs; stripeCount is the compound-operation lock
// pool (see Lock). Both are powers of two.
const (
	shardCount  = 64
	stripeCount = 128
)

type shard struct {
	mu sync.Mutex
	m  map[string]int64
}

// Index maps (namespace, key) to an absolute expiry deadline in Unix
// milliseconds. All methods are safe for concurrent use; the per-key
// compound locks are handed out by Lock. The zero Index is not usable —
// construct with New.
type Index struct {
	now    func() int64
	count  atomic.Int64
	shards [shardCount]shard
	locks  [stripeCount]sync.Mutex
}

// New creates an Index reading time from now (Unix milliseconds); nil
// selects the real clock. Tests inject a fake clock here to make
// lazy-vs-sweep properties deterministic.
func New(now func() int64) *Index {
	if now == nil {
		now = NowMs
	}
	ix := &Index{now: now}
	for i := range ix.shards {
		ix.shards[i].m = make(map[string]int64)
	}
	return ix
}

// Now returns the index's current time in Unix milliseconds.
func (ix *Index) Now() int64 { return ix.now() }

// Lock returns the stripe lock for a key hash (Table.HashOfKV). Owners
// hold it across compound check-then-mutate sequences that touch both the
// table and the index, so a lazy-expire delete cannot race a concurrent
// SET into deleting the new value, and a sweeper deletion cannot race a
// PERSIST. Index methods never take stripe locks themselves; the order is
// always stripe lock, then shard lock.
func (ix *Index) Lock(hash uint64) *sync.Mutex {
	return &ix.locks[hash&(stripeCount-1)]
}

// Len returns the number of keys with a deadline.
func (ix *Index) Len() int { return int(ix.count.Load()) }

// mapKey encodes the shard-map key: 2 namespace bytes, then the key.
func mapKey(dst []byte, ns uint16, key []byte) []byte {
	dst = append(dst, byte(ns>>8), byte(ns))
	return append(dst, key...)
}

// splitKey is mapKey's inverse.
func splitKey(mk string) (ns uint16, key []byte) {
	return uint16(mk[0])<<8 | uint16(mk[1]), []byte(mk[2:])
}

func (ix *Index) shardFor(hash uint64) *shard {
	return &ix.shards[hash&(shardCount-1)]
}

// ExpireAt sets key's deadline to at (Unix ms), replacing any previous
// one. hash is the key's Table.HashOfKV, reused for shard selection so
// the sidecar never rehashes.
func (ix *Index) ExpireAt(ns uint16, key []byte, hash uint64, at int64) {
	var a [80]byte
	mk := mapKey(a[:0], ns, key)
	s := ix.shardFor(hash)
	s.mu.Lock()
	if _, ok := s.m[string(mk)]; !ok {
		ix.count.Add(1)
	}
	s.m[string(mk)] = at
	s.mu.Unlock()
}

// Remove drops key's deadline, reporting whether one existed. Called on
// PERSIST, on deletion, and on overwrite without TTL (a plain SET clears
// the TTL, Redis semantics).
func (ix *Index) Remove(ns uint16, key []byte, hash uint64) bool {
	if ix.count.Load() == 0 {
		return false
	}
	var a [80]byte
	mk := mapKey(a[:0], ns, key)
	s := ix.shardFor(hash)
	s.mu.Lock()
	_, ok := s.m[string(mk)]
	if ok {
		delete(s.m, string(mk))
		ix.count.Add(-1)
	}
	s.mu.Unlock()
	return ok
}

// Deadline returns key's deadline and whether one is set. The empty-index
// fast path is one atomic load, so TTL-free read traffic never locks.
func (ix *Index) Deadline(ns uint16, key []byte, hash uint64) (int64, bool) {
	if ix.count.Load() == 0 {
		return 0, false
	}
	var a [80]byte
	mk := mapKey(a[:0], ns, key)
	s := ix.shardFor(hash)
	s.mu.Lock()
	at, ok := s.m[string(mk)]
	s.mu.Unlock()
	return at, ok
}

// Expired reports whether key has a deadline at or before the index's
// current time — the lazy check on the read path.
func (ix *Index) Expired(ns uint16, key []byte, hash uint64) bool {
	at, ok := ix.Deadline(ns, key, hash)
	return ok && at <= ix.now()
}

// Range calls fn for every entry until fn returns false. It walks shard
// by shard under the shard lock against a copied view, so fn may call
// back into the index. Weakly consistent, like the table's iterators;
// the snapshotter is the intended caller.
func (ix *Index) Range(fn func(ns uint16, key []byte, at int64) bool) {
	type ent struct {
		mk string
		at int64
	}
	var batch []ent
	for i := range ix.shards {
		s := &ix.shards[i]
		batch = batch[:0]
		s.mu.Lock()
		for mk, at := range s.m {
			batch = append(batch, ent{mk, at})
		}
		s.mu.Unlock()
		for _, e := range batch {
			ns, key := splitKey(e.mk)
			if !fn(ns, key, e.at) {
				return
			}
		}
	}
}
