package expiry

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// hashOf is a stand-in for Table.HashOfKV: any deterministic function of
// (ns, key) works — the index only uses it to pick shards and stripes.
func hashOf(ns uint16, key []byte) uint64 {
	h := uint64(ns)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	for _, b := range key {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return h
}

func TestIndexBasics(t *testing.T) {
	var now atomic.Int64
	ix := New(now.Load)
	key := []byte("k")
	h := hashOf(3, key)

	if at, ok := ix.Deadline(3, key, h); ok || at != 0 {
		t.Fatalf("empty index Deadline = %d,%v", at, ok)
	}
	ix.ExpireAt(3, key, h, 100)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ix.Len())
	}
	if at, ok := ix.Deadline(3, key, h); !ok || at != 100 {
		t.Fatalf("Deadline = %d,%v; want 100,true", at, ok)
	}
	// Same key bytes in a different namespace is a different entry.
	if _, ok := ix.Deadline(4, key, hashOf(4, key)); ok {
		t.Fatal("namespace leak: deadline visible under wrong ns")
	}
	now.Store(99)
	if ix.Expired(3, key, h) {
		t.Fatal("expired before the deadline")
	}
	now.Store(100)
	if !ix.Expired(3, key, h) {
		t.Fatal("not expired at the deadline")
	}
	// Replacing a deadline doesn't double-count.
	ix.ExpireAt(3, key, h, 500)
	if ix.Len() != 1 {
		t.Fatalf("Len after replace = %d, want 1", ix.Len())
	}
	if !ix.Remove(3, key, h) {
		t.Fatal("Remove missed a live entry")
	}
	if ix.Remove(3, key, h) {
		t.Fatal("Remove reported a removed entry")
	}
	if ix.Len() != 0 {
		t.Fatalf("Len after remove = %d, want 0", ix.Len())
	}
}

// TestLazyVsSweepVsOracle drives a fake clock over a population of keys
// with scattered deadlines and checks, at every step, that the three ways
// of asking "is this key dead?" — the lazy Expired check, the sampling
// sweeper, and a brute-force oracle map — agree: nothing expires early,
// and after enough sweep rounds nothing expired is left behind.
func TestLazyVsSweepVsOracle(t *testing.T) {
	var now atomic.Int64
	ix := New(now.Load)
	rng := rand.New(rand.NewSource(1))

	type ent struct {
		ns   uint16
		key  []byte
		at   int64
		hash uint64
	}
	oracle := make(map[string]*ent)
	const n = 2000
	for i := 0; i < n; i++ {
		e := &ent{
			ns:  uint16(rng.Intn(4)),
			key: []byte(fmt.Sprintf("key-%04d", i)),
			at:  int64(1 + rng.Intn(1000)),
		}
		e.hash = hashOf(e.ns, e.key)
		ix.ExpireAt(e.ns, e.key, e.hash, e.at)
		oracle[fmt.Sprintf("%d/%s", e.ns, e.key)] = e
	}

	removed := make(map[string]bool)
	onExpired := func(ns uint16, key []byte, at int64) {
		k := fmt.Sprintf("%d/%s", ns, key)
		e := oracle[k]
		if e == nil {
			t.Fatalf("sweeper reported unknown key %s", k)
		}
		if e.at > now.Load() {
			t.Fatalf("sweeper expired %s early: deadline %d, now %d", k, e.at, now.Load())
		}
		ix.Remove(ns, key, e.hash)
		removed[k] = true
	}

	for clock := int64(0); clock <= 1100; clock += 50 {
		now.Store(clock)
		// Lazy view must match the oracle for every not-yet-removed key.
		for k, e := range oracle {
			if removed[k] {
				continue
			}
			want := e.at <= clock
			if got := ix.Expired(e.ns, e.key, e.hash); got != want {
				t.Fatalf("t=%d key %s: Expired=%v oracle=%v", clock, k, got, want)
			}
		}
		// A few sweep rounds: only correct expirations, monotone progress.
		for r := 0; r < 3; r++ {
			ix.SweepOnce(20, onExpired)
		}
	}
	// Past every deadline: sweep until dry; everything must be reported.
	now.Store(2000)
	for i := 0; i < 1000 && ix.Len() > 0; i++ {
		ix.SweepOnce(20, onExpired)
	}
	if ix.Len() != 0 {
		t.Fatalf("%d entries survived a full sweep past all deadlines", ix.Len())
	}
	if len(removed) != n {
		t.Fatalf("sweeper reported %d/%d entries", len(removed), n)
	}
}

// TestSweepOnceEmptyFastPath: a TTL-free index never reports anything.
func TestSweepOnceEmptyFastPath(t *testing.T) {
	ix := New(nil)
	if got := ix.SweepOnce(20, func(uint16, []byte, int64) {
		t.Fatal("callback on empty index")
	}); got != 0 {
		t.Fatalf("SweepOnce on empty index = %d", got)
	}
}

// TestRangeReentrant: Range callbacks may mutate the index (the open-time
// purge does exactly that).
func TestRangeReentrant(t *testing.T) {
	ix := New(func() int64 { return 0 })
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("k%d", i))
		ix.ExpireAt(0, key, hashOf(0, key), int64(i))
	}
	seen := 0
	ix.Range(func(ns uint16, key []byte, at int64) bool {
		seen++
		ix.Remove(ns, key, hashOf(ns, key))
		return true
	})
	if seen != 100 || ix.Len() != 0 {
		t.Fatalf("Range saw %d, Len=%d; want 100, 0", seen, ix.Len())
	}
}

// TestConcurrentHammer exercises every method from many goroutines under
// the race detector, with a sweeper-shaped goroutine in the mix.
func TestConcurrentHammer(t *testing.T) {
	var now atomic.Int64
	ix := New(now.Load)
	stop := make(chan struct{})
	var mut, bg sync.WaitGroup
	for g := 0; g < 8; g++ {
		mut.Add(1)
		go func(seed int64) {
			defer mut.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				ns := uint16(rng.Intn(3))
				key := []byte(fmt.Sprintf("k%d", rng.Intn(256)))
				h := hashOf(ns, key)
				switch rng.Intn(4) {
				case 0:
					ix.ExpireAt(ns, key, h, now.Load()+int64(rng.Intn(50)))
				case 1:
					ix.Remove(ns, key, h)
				case 2:
					ix.Deadline(ns, key, h)
				case 3:
					ix.Expired(ns, key, h)
				}
				if i%1000 == 0 {
					now.Add(10)
				}
			}
		}(int64(g))
	}
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ix.SweepOnce(20, func(ns uint16, key []byte, _ int64) {
				h := hashOf(ns, key)
				mu := ix.Lock(h)
				mu.Lock()
				if at, ok := ix.Deadline(ns, key, h); ok && at <= ix.Now() {
					ix.Remove(ns, key, h)
				}
				mu.Unlock()
			})
		}
	}()
	bg.Add(1)
	go func() {
		defer bg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ix.Range(func(uint16, []byte, int64) bool { return true })
		}
	}()
	mut.Wait()
	close(stop)
	bg.Wait()
}
