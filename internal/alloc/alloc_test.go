package alloc

import (
	"sync"
	"testing"
	"testing/quick"
)

func allocators() map[string]func() Allocator {
	return map[string]func() Allocator{
		"arena": func() Allocator { return NewArena(WithRegionSize(1 << 18)) },
		"naive": func() Allocator { return NewNaive() },
	}
}

func TestAllocBasicRoundTrip(t *testing.T) {
	for name, mk := range allocators() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			ref, b := a.Alloc(32)
			if ref.IsNil() {
				t.Fatal("got nil ref")
			}
			if len(b) != 32 {
				t.Fatalf("len = %d, want 32", len(b))
			}
			for i := range b {
				b[i] = byte(i)
			}
			view := a.Bytes(ref, 32)
			for i := range view {
				if view[i] != byte(i) {
					t.Fatalf("byte %d = %d, want %d", i, view[i], i)
				}
			}
			a.Free(ref)
		})
	}
}

func TestAllocZeroInitialized(t *testing.T) {
	a := NewArena(WithRegionSize(1 << 18))
	// Dirty a block, free it, re-allocate the same class: must be zeroed.
	ref, b := a.Alloc(64)
	for i := range b {
		b[i] = 0xff
	}
	a.Free(ref)
	_, b2 := a.Alloc(64)
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("recycled block byte %d = %#x, want 0", i, v)
		}
	}
}

func TestAllocDistinctBlocks(t *testing.T) {
	for name, mk := range allocators() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			refs := map[Ref]bool{}
			views := make([][]byte, 0, 100)
			for i := 0; i < 100; i++ {
				ref, b := a.Alloc(16)
				if refs[ref] {
					t.Fatalf("duplicate ref %#x", ref)
				}
				refs[ref] = true
				views = append(views, b)
			}
			// Writing a distinct pattern in each block must not cross-talk.
			for i, b := range views {
				for j := range b {
					b[j] = byte(i)
				}
			}
			for i, b := range views {
				for j := range b {
					if b[j] != byte(i) {
						t.Fatalf("block %d corrupted at %d", i, j)
					}
				}
			}
		})
	}
}

func TestArenaFreeReuse(t *testing.T) {
	a := NewArena(WithRegionSize(1 << 18))
	ref1, _ := a.Alloc(100)
	a.Free(ref1)
	ref2, _ := a.Alloc(100)
	if ref1 != ref2 {
		t.Fatalf("free list not reused: %#x vs %#x", ref1, ref2)
	}
}

func TestArenaRegionGrowth(t *testing.T) {
	a := NewArena(WithRegionSize(1 << 16)) // 64 KiB regions
	var refs []Ref
	for i := 0; i < 100; i++ {
		r, b := a.Alloc(4096)
		for j := range b {
			b[j] = byte(i)
		}
		refs = append(refs, r)
	}
	if a.Stats().Regions < 2 {
		t.Fatalf("expected region growth, got %d regions", a.Stats().Regions)
	}
	for i, r := range refs {
		b := a.Bytes(r, 4096)
		for j := range b {
			if b[j] != byte(i) {
				t.Fatalf("block %d corrupted after growth", i)
			}
		}
	}
}

func TestArenaStats(t *testing.T) {
	a := NewArena(WithRegionSize(1 << 18))
	r1, _ := a.Alloc(8)
	r2, _ := a.Alloc(100) // class 128
	s := a.Stats()
	if s.Allocs != 2 || s.Frees != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HeapUsed != 8+128 {
		t.Fatalf("HeapUsed = %d, want 136", s.HeapUsed)
	}
	a.Free(r1)
	a.Free(r2)
	s = a.Stats()
	if s.Frees != 2 || s.HeapUsed != 0 {
		t.Fatalf("after frees stats = %+v", s)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {8, 0}, {9, 1}, {16, 1}, {17, 2}, {65536, len(sizeClasses) - 1},
		{65537, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestClassForProperty(t *testing.T) {
	f := func(n uint16) bool {
		cls := classFor(int(n) + 1)
		if cls < 0 {
			return int(n)+1 > MaxBlock
		}
		fits := sizeClasses[cls] >= int(n)+1
		tight := cls == 0 || sizeClasses[cls-1] < int(n)+1
		return fits && tight
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRefPacking(t *testing.T) {
	f := func(region uint16, off uint32) bool {
		r := makeRef(region, off)
		return r.region() == region && r.offset() == off && uint64(r) <= RefMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNilRefFreeIsNoop(t *testing.T) {
	for name, mk := range allocators() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			a.Free(Nil) // must not panic
			if a.Stats().Frees != 0 {
				t.Fatal("nil free counted")
			}
		})
	}
}

func TestArenaAllocTooLargePanics(t *testing.T) {
	a := NewArena()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oversized allocation")
		}
	}()
	a.Alloc(MaxBlock + 1)
}

// Concurrent alloc/free torture: each goroutine owns its blocks and verifies
// its own patterns; the arena must never hand the same live block to two
// owners.
func TestArenaConcurrent(t *testing.T) {
	a := NewArena(WithRegionSize(1 << 20))
	const goroutines = 8
	const rounds = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			type owned struct {
				ref  Ref
				size int
			}
			var mine []owned
			for r := 0; r < rounds; r++ {
				size := 8 + (r%64)*8
				ref, b := a.Alloc(size)
				for i := range b {
					b[i] = id
				}
				mine = append(mine, owned{ref, size})
				if len(mine) > 16 {
					// Verify then free the oldest.
					o := mine[0]
					mine = mine[1:]
					view := a.Bytes(o.ref, o.size)
					for i := range view {
						if view[i] != id {
							t.Errorf("goroutine %d: block stomped", id)
							return
						}
					}
					a.Free(o.ref)
				}
			}
			for _, o := range mine {
				a.Free(o.ref)
			}
		}(byte(g + 1))
	}
	wg.Wait()
	s := a.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d", s.Allocs, s.Frees)
	}
	if s.HeapUsed != 0 {
		t.Fatalf("HeapUsed = %d after freeing everything", s.HeapUsed)
	}
}

func BenchmarkArenaAllocFree64(b *testing.B) {
	a := NewArena()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, _ := a.Alloc(64)
			a.Free(r)
		}
	})
}

func BenchmarkNaiveAllocFree64(b *testing.B) {
	a := NewNaive()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r, _ := a.Alloc(64)
			a.Free(r)
		}
	})
}
