// Package alloc provides the out-of-line memory substrate for DLHT's
// Allocator mode (§3.1 mode 2). The paper links mimalloc with 2 MB huge
// pages; Go cannot link a C allocator, and storing raw pointers inside the
// index's uint64 slots would hide them from the garbage collector. This
// package substitutes a size-class slab allocator that carves blocks out of
// large flat byte arenas and hands out 48-bit *references* (region id +
// offset) instead of pointers. References have the same shape as the
// paper's 48-bit virtual addresses, so the index can overload their 16 most
// significant bits for key-size tags and namespaces (§3.4.1–3.4.2) while
// the arena's backing slices stay reachable through the allocator itself.
package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Ref is a 48-bit reference to an allocated block: the high 16 of the low
// 48 bits select a region, the low 32 bits are a byte offset within it.
// Ref 0 is the nil reference (region 0's first block is never handed out).
type Ref uint64

// RefBits is the number of bits a Ref occupies. Callers may overload bits
// 48..63 of a uint64 carrying a Ref.
const RefBits = 48

// RefMask extracts the Ref portion of an overloaded word.
const RefMask = (uint64(1) << RefBits) - 1

// Nil is the zero reference.
const Nil Ref = 0

func makeRef(region uint16, off uint32) Ref {
	return Ref(uint64(region)<<32 | uint64(off))
}

func (r Ref) region() uint16 { return uint16(uint64(r) >> 32) }
func (r Ref) offset() uint32 { return uint32(uint64(r)) }

// IsNil reports whether the reference is the nil reference.
func (r Ref) IsNil() bool { return r == Nil }

// Allocator is the interface DLHT's Allocator mode consumes. Two
// implementations exist: the slab Arena (mimalloc analogue, the default)
// and the mutex-guarded Naive allocator (the "No mimalloc" ablation of
// Fig 14).
type Allocator interface {
	// Alloc returns a reference to a zero-initialized block of at least n
	// bytes together with its writable view.
	Alloc(n int) (Ref, []byte)
	// Bytes returns the n-byte view of a previously allocated block.
	Bytes(r Ref, n int) []byte
	// Free returns the block to the allocator. Double frees are undefined.
	Free(r Ref)
	// MaxAlloc returns the largest n Alloc can serve, or 0 when
	// unbounded. Callers relaying untrusted sizes (the network server's
	// KV path) gate on it instead of discovering the bound as a panic.
	MaxAlloc() int
	// Stats returns cumulative counters.
	Stats() Stats
}

// Stats reports allocator activity.
type Stats struct {
	Allocs   uint64 // number of Alloc calls
	Frees    uint64 // number of Free calls
	HeapUsed uint64 // bytes currently handed out (user sizes rounded to class)
	Regions  int    // number of backing regions (Arena only)
}

// ---------------------------------------------------------------------------
// Size classes
// ---------------------------------------------------------------------------

// Block layout: an 8-byte header holding the size-class index precedes the
// user data; the Ref points at the user data. Free-list links are written
// into the first 8 bytes of the user area while a block is free.
const blockHeader = 8

// sizeClasses are the user-visible block capacities. Chosen like mimalloc's
// small/medium bins: fine granularity at the small end (DLHT values start
// at 8 B), geometric growth after.
var sizeClasses = []int{
	8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
	1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384, 24576, 32768, 65536,
}

// classFor returns the smallest class index whose capacity fits n, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	for i, c := range sizeClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// MaxBlock is the largest allocation the Arena serves.
const MaxBlock = 65536

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

const (
	defaultRegionSize = 4 << 20 // 4 MiB, the "huge page backed" analogue
	maxRegions        = 1 << 16
)

// Arena is the slab allocator. Allocation takes a lock-free pop from the
// class's free list; on miss it bump-allocates from the current region
// under a short mutex. Free is a lock-free push.
type Arena struct {
	regionSize uint32

	// regions is a copy-on-write table: growth (rare) copies the slice and
	// publishes it atomically, so block() is a wait-free two-load lookup.
	regions  atomic.Pointer[[][]byte]
	mu       sync.Mutex // serializes region growth and the bump pointer
	curBump  uint32     // next free byte in the newest region
	curIdx   uint16     // index of the newest region
	allocs   atomic.Uint64
	frees    atomic.Uint64
	heapUsed atomic.Uint64

	// Per-class Treiber stacks. The head packs a 16-bit ABA generation tag
	// above the 48-bit Ref of the first free block.
	freeHeads []paddedHead
}

type paddedHead struct {
	head atomic.Uint64
	_    [56]byte
}

// Option configures an Arena.
type Option func(*Arena)

// WithRegionSize sets the size of each backing region (default 4 MiB).
func WithRegionSize(n int) Option {
	return func(a *Arena) {
		if n < 1<<16 {
			n = 1 << 16
		}
		a.regionSize = uint32(n)
	}
}

// NewArena creates an empty arena.
func NewArena(opts ...Option) *Arena {
	a := &Arena{
		regionSize: defaultRegionSize,
		freeHeads:  make([]paddedHead, len(sizeClasses)),
	}
	for _, o := range opts {
		o(a)
	}
	// Region 0 starts with a burned block so that Ref 0 is never returned.
	regions := [][]byte{make([]byte, a.regionSize)}
	a.regions.Store(&regions)
	a.curBump = blockHeader + 8
	a.curIdx = 0
	return a
}

func packHead(tag uint16, r Ref) uint64 { return uint64(tag)<<48 | uint64(r) }
func unpackHead(h uint64) (uint16, Ref) { return uint16(h >> 48), Ref(h & RefMask) }

// Alloc implements Allocator.
func (a *Arena) Alloc(n int) (Ref, []byte) {
	cls := classFor(n)
	if cls < 0 {
		panic(fmt.Sprintf("alloc: request %d exceeds MaxBlock %d", n, MaxBlock))
	}
	a.allocs.Add(1)
	a.heapUsed.Add(uint64(sizeClasses[cls]))
	// Fast path: pop the class free list.
	h := &a.freeHeads[cls].head
	for {
		old := h.Load()
		tag, ref := unpackHead(old)
		if ref.IsNil() {
			break
		}
		b := a.block(ref, 8)
		next := leUint64(b)
		if h.CompareAndSwap(old, packHead(tag+1, Ref(next))) {
			user := a.block(ref, n)
			clear(user)
			return ref, user
		}
	}
	// Slow path: bump allocate.
	return a.bumpAlloc(cls, n)
}

func (a *Arena) bumpAlloc(cls, n int) (Ref, []byte) {
	need := uint32(blockHeader + sizeClasses[cls])
	// Keep every block 16-byte aligned so out-of-line values never straddle
	// a header word and batch prefetches hit whole lines.
	need = (need + 15) &^ 15
	a.mu.Lock()
	if a.curBump+need > a.regionSize {
		old := *a.regions.Load()
		if len(old) >= maxRegions {
			a.mu.Unlock()
			panic("alloc: arena exhausted (64K regions)")
		}
		grown := make([][]byte, len(old)+1)
		copy(grown, old)
		grown[len(old)] = make([]byte, a.regionSize)
		a.regions.Store(&grown)
		a.curIdx = uint16(len(grown) - 1)
		a.curBump = 0
	}
	off := a.curBump
	a.curBump += need
	region := a.curIdx
	regions := *a.regions.Load()
	a.mu.Unlock()

	ref := makeRef(region, off+blockHeader)
	hdr := regions[region][off : off+blockHeader]
	putLeUint64(hdr, uint64(cls))
	return ref, a.block(ref, n)
}

// Bytes implements Allocator.
func (a *Arena) Bytes(r Ref, n int) []byte { return a.block(r, n) }

// block returns the user view of a block without touching its header. It is
// wait-free: the region table is immutable once published, and any Ref a
// caller holds was created after its region was published.
func (a *Arena) block(r Ref, n int) []byte {
	reg := r.region()
	off := r.offset()
	region := (*a.regions.Load())[reg]
	return region[off : off+uint32(n) : off+uint32(n)]
}

// Free implements Allocator.
func (a *Arena) Free(r Ref) {
	if r.IsNil() {
		return
	}
	hdr := a.block(Ref(uint64(r)-blockHeader), blockHeader)
	cls := int(leUint64(hdr))
	if cls < 0 || cls >= len(sizeClasses) {
		panic(fmt.Sprintf("alloc: corrupt block header (class %d)", cls))
	}
	a.frees.Add(1)
	a.heapUsed.Add(^uint64(sizeClasses[cls] - 1)) // subtract
	b := a.block(r, 8)
	h := &a.freeHeads[cls].head
	for {
		old := h.Load()
		tag, head := unpackHead(old)
		putLeUint64(b, uint64(head))
		if h.CompareAndSwap(old, packHead(tag+1, r)) {
			return
		}
	}
}

// MaxAlloc implements Allocator: the Arena serves at most MaxBlock bytes.
func (a *Arena) MaxAlloc() int { return MaxBlock }

// Stats implements Allocator.
func (a *Arena) Stats() Stats {
	regions := len(*a.regions.Load())
	return Stats{
		Allocs:   a.allocs.Load(),
		Frees:    a.frees.Load(),
		HeapUsed: a.heapUsed.Load(),
		Regions:  regions,
	}
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// ---------------------------------------------------------------------------
// Naive allocator — the "No mimalloc" ablation (Fig 14)
// ---------------------------------------------------------------------------

// Naive is a mutex-guarded allocator that makes a fresh Go allocation per
// block, standing in for the libc malloc configuration of Fig 14. It is
// intentionally slow under contention.
type Naive struct {
	mu     sync.Mutex
	blocks map[Ref][]byte
	next   uint64
	allocs uint64
	frees  uint64
	used   uint64
}

// NewNaive creates a Naive allocator.
func NewNaive() *Naive {
	return &Naive{blocks: make(map[Ref][]byte), next: 1}
}

// Alloc implements Allocator.
func (m *Naive) Alloc(n int) (Ref, []byte) {
	b := make([]byte, n)
	m.mu.Lock()
	r := Ref(m.next & RefMask)
	m.next++
	if m.next >= 1<<RefBits {
		m.next = 1
	}
	m.blocks[r] = b
	m.allocs++
	m.used += uint64(n)
	m.mu.Unlock()
	return r, b
}

// Bytes implements Allocator.
func (m *Naive) Bytes(r Ref, n int) []byte {
	m.mu.Lock()
	b := m.blocks[r]
	m.mu.Unlock()
	if b == nil {
		panic("alloc: Bytes on freed or unknown ref")
	}
	return b[:n]
}

// Free implements Allocator.
func (m *Naive) Free(r Ref) {
	if r.IsNil() {
		return
	}
	m.mu.Lock()
	if b, ok := m.blocks[r]; ok {
		m.used -= uint64(len(b))
		m.frees++
		delete(m.blocks, r)
	}
	m.mu.Unlock()
}

// MaxAlloc implements Allocator: fresh Go allocations have no block bound.
func (m *Naive) MaxAlloc() int { return 0 }

// Stats implements Allocator.
func (m *Naive) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Allocs: m.allocs, Frees: m.frees, HeapUsed: m.used}
}

var (
	_ Allocator = (*Arena)(nil)
	_ Allocator = (*Naive)(nil)
)
