package server

import (
	"net"

	core "repro/internal/core"
	"repro/internal/expiry"
	"repro/internal/resp"
)

// RESP front-end: a second listener speaking RESP2 (the Redis protocol)
// beside the v1/v2 binary listener, serving one Allocator-mode table so
// redis-cli, redis-benchmark and Redis client libraries work unmodified.
//
// RESP connections always run connection-owned — each holds its own table
// handle and a streaming KVPipeline for pipelined GETs — regardless of
// Options.Exec, and coexist with binary connections in every exec mode:
// both paths mutate the same table, and on durable tables both append to
// the same redo log with the same no-ack-before-fsync discipline.
//
// TTL state lives in one expiry.Index per table, shared by every RESP
// connection, the background sweeper, and (for durable tables) snapshot
// and replay. Durable tables bring their own index (wal.Store owns it);
// for RAM tables the server creates one lazily, along with a sweeper
// running on a dedicated handle.

// ServeRESP accepts RESP2 connections on ln until Close. Like Serve it
// always returns a non-nil error; after Close the error is
// ErrServerClosed. The served table is Options.RESPTable.
func (s *Server) ServeRESP(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.respLns = append(s.respLns, ln)
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveRESPConn(c)
	}
}

// ListenAndServeRESP listens on addr and calls ServeRESP.
func (s *Server) ListenAndServeRESP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeRESP(ln)
}

func (s *Server) serveRESPConn(c net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(c)
	defer c.Close()

	tbl := s.Table(s.opts.RESPTable)
	if tbl == nil {
		respRefuse(c, "ERR no table registered under the RESP table name")
		return
	}
	if tbl.Mode() != core.Allocator {
		respRefuse(c, "ERR RESP table is not in kv (Allocator) mode")
		return
	}
	ix, err := s.expiryFor(tbl)
	if err != nil {
		respRefuse(c, "ERR busy: "+err.Error())
		return
	}
	h, err := s.acquireHandle(tbl)
	if err != nil {
		respRefuse(c, "ERR busy: too many connections")
		return
	}
	defer s.releaseHandle(h)

	var w resp.WAL
	if l := s.walFor(tbl); l != nil {
		w = l // assign only when non-nil: a typed-nil WAL would pass != nil checks
	}
	resp.Serve(c, resp.ServeOpts{
		Table:       tbl,
		Handle:      h,
		Expiry:      ix,
		Log:         w,
		ReadBuffer:  s.opts.ReadBuffer,
		WriteBuffer: s.opts.WriteBuffer,
		IdleTimeout: s.opts.IdleTimeout,
	})
}

// respRefuse answers a connection the server cannot serve with one RESP
// error line and gives up on it.
func respRefuse(c net.Conn, msg string) {
	c.Write(append(append([]byte("-"), msg...), '\r', '\n'))
}

// expiryFor returns tbl's shared TTL index, creating it (with a sweeper
// on a dedicated handle) on first use for RAM tables. Durable tables
// register their store-owned index in AddDurable — that one is also
// wired into WAL replay and snapshots.
func (s *Server) expiryFor(tbl *core.Table) (*expiry.Index, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrServerClosed
	}
	if ix := s.expiries[tbl]; ix != nil {
		return ix, nil
	}
	ix := expiry.New(nil)
	h, err := tbl.Handle()
	if err != nil {
		return nil, err
	}
	sw := ix.StartSweeper(expiry.SweepOpts{
		OnExpired: func(ns uint16, key []byte, _ int64) {
			hash := tbl.HashOfKV(ns, key)
			mu := ix.Lock(hash)
			mu.Lock()
			// Re-check under the stripe lock: a racing SET may have
			// revived the key since the sample.
			if d, ok := ix.Deadline(ns, key, hash); ok && d <= ix.Now() {
				h.DeleteKVHashed(ns, key, hash)
				ix.Remove(ns, key, hash)
			}
			mu.Unlock()
		},
		OnRound: func() { h.AdvanceEpoch() },
	})
	s.expiries[tbl] = ix
	s.sweepers = append(s.sweepers, respSweeper{sw: sw, h: h})
	return ix, nil
}
