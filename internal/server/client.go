package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	core "repro/internal/core"
)

// Client is a pipelined protocol client. It is not safe for concurrent use;
// open one per goroutine (mirroring the one-handle-per-goroutine contract
// on the server side).
//
// Dial speaks protocol v1 (no handshake, default table, fixed frames);
// DialV2 performs the v2 handshake, which adds a table selector and the
// variable-length KV surface (GetKV/InsertKV/DeleteKV) for Allocator-mode
// tables.
//
// The pipelining surface is Send/Flush/Recv: queue any number of requests,
// flush, then receive responses in request order. On top of it sit two
// completion-driven shapes mirroring the server's Pipeline API: callbacks
// (SendAsync/GetAsync/... + Drain) and futures (DoFuture/GetFuture/... +
// Future.Wait). The Get/Put/Insert/Delete helpers are one-request pipelines
// for convenience and tests. Client also implements the backend-independent
// dlht Store surface (sync helpers + Pipe), so code written against Store
// drives a remote table unchanged.
//
// The shapes may be mixed on one connection: every request's completion
// slot is tracked in order, Recv dispatches any async completions queued
// ahead of the next plain response, and Drain stops at the first plain
// response so Recv can claim it.
type Client struct {
	c        net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	inflight int

	v2       bool
	features uint16

	// readTimeout/writeTimeout, when set, are armed as connection
	// deadlines around blocking reads and flushes so a stalled server
	// cannot wedge the caller forever.
	readTimeout, writeTimeout time.Duration

	// Redial state. addr is the original dial target ("" when the client
	// was built over a caller-supplied conn and cannot redial); broken is
	// the sticky transport error after a connection failure — the next
	// use redials when the retry policy allows. Redial attempts are
	// rate-limited by the policy's backoff schedule (redialFails /
	// nextRedial) so a dead shard costs one dial per backoff step, not
	// one per operation.
	addr        string
	dialOpts    ClientOpts
	dialV2      bool
	retry       RetryPolicy
	broken      error
	rng         uint64
	redialFails int
	nextRedial  time.Time

	// pend tracks one completion slot per in-flight request, in request
	// order: a zero slot for a plain Send (consumed by Recv), cb for an
	// async fixed-frame send, kvcb for a KV send. A power-of-two ring
	// addressed by absolute head/tail counters.
	pend           []pending
	cbHead, cbTail int
}

// pending is one in-flight request's completion slot. At most one of the
// callbacks is non-nil; it also encodes the response frame shape (kvcb
// non-nil means the next response is variable-length).
type pending struct {
	cb   func(Response)
	kvcb func(KVResponse)
}

// ClientOpts configures DialV2/NewClientV2.
type ClientOpts struct {
	// Table selects the named server table this connection operates on
	// ("" = the default table).
	Table string
	// Features is the requested feature set; 0 requests the ordinary
	// client set (currently FeatureKV). FeatureReshard is deliberately
	// NOT in the default — granting it pins the connection to the
	// server's conn-owned loop, opting out of executor-mode serving, so
	// only the cluster coordinator and scrubber request it. The granted
	// set is available via Features().
	Features uint16
	// ReadTimeout/WriteTimeout bound blocking reads and flushes. 0
	// disables the respective deadline.
	ReadTimeout, WriteTimeout time.Duration
	// Retry enables transparent redial and bounded per-operation retry
	// for the synchronous helpers (Get/Put/Insert/Delete and the KV
	// forms) on retryable failures — see IsRetryable. The zero value
	// disables retries; DefaultRetry is a sensible starting point.
	// Retried writes are at-least-once: a retried Insert whose first
	// attempt was applied but whose ack was lost reports the key as
	// already present.
	Retry RetryPolicy
}

// DialTCP dials addr, rejecting TCP self-connections. On Linux, dialing
// a dead port on the local host can succeed via TCP simultaneous-open
// when the kernel assigns the socket an ephemeral source port equal to
// the destination port: the socket connects to ITSELF, and every read
// returns the caller's own bytes — which this protocol's symmetric hello
// would happily accept as a server. All client dial paths (including
// redial and the cluster's failure-detector probe) must go through this
// guard; a crashed shard whose port lands in the ephemeral range would
// otherwise yield phantom acks instead of a connection error.
func DialTCP(addr string, timeout time.Duration) (net.Conn, error) {
	d := net.Dialer{Timeout: timeout}
	c, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if c.LocalAddr().String() == c.RemoteAddr().String() {
		c.Close()
		return nil, fmt.Errorf("dial tcp %s: self-connected socket (no listener)", addr)
	}
	return c, nil
}

// Dial connects to a server at addr speaking protocol v1.
func Dial(addr string) (*Client, error) {
	c, err := DialTCP(addr, 0)
	if err != nil {
		return nil, err
	}
	cl := NewClient(c)
	cl.addr = addr
	return cl, nil
}

// DialV2 connects to a server at addr and performs the protocol v2
// handshake. With opts.Retry.Max > 0 the client remembers addr and opts
// and transparently redials (re-running the handshake) after a transport
// failure, with the policy's capped exponential backoff.
func DialV2(addr string, opts ClientOpts) (*Client, error) {
	c, err := DialTCP(addr, 0)
	if err != nil {
		return nil, err
	}
	cl, err := NewClientV2(c, opts)
	if err != nil {
		c.Close()
		return nil, err
	}
	cl.addr = addr
	cl.dialOpts = opts
	cl.dialV2 = true
	return cl, nil
}

// NewClient wraps an established connection as a v1 client.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:    c,
		br:   bufio.NewReaderSize(c, 64<<10),
		bw:   bufio.NewWriterSize(c, 64<<10),
		pend: make([]pending, 16),
	}
}

// NewClientV2 wraps an established connection and performs the v2
// handshake on it. On a non-OK handshake reply the returned error is the
// status's sentinel (ErrUnknownTable, ErrBadVersion, ...) and the
// connection is left to the caller to close.
func NewClientV2(c net.Conn, opts ClientOpts) (*Client, error) {
	cl := NewClient(c)
	cl.readTimeout, cl.writeTimeout = opts.ReadTimeout, opts.WriteTimeout
	cl.retry = opts.Retry
	cl.rng = opts.Retry.Seed
	if cl.rng == 0 {
		cl.rng = uint64(time.Now().UnixNano())
	}
	if err := cl.handshake(opts); err != nil {
		return nil, err
	}
	return cl, nil
}

// clientDefaultFeatures is what a ClientOpts.Features of 0 requests: the
// ordinary client surface, without FeatureReshard (see ClientOpts).
const clientDefaultFeatures = FeatureKV

// handshake runs the v2 hello exchange on the current connection.
func (cl *Client) handshake(opts ClientOpts) error {
	features := opts.Features
	if features == 0 {
		features = clientDefaultFeatures
	}
	hello, err := AppendHello(nil, Hello{Version: ProtocolV2, Features: features, Table: opts.Table})
	if err != nil {
		return err
	}
	cl.armWrite()
	if _, err := cl.c.Write(hello); err != nil {
		return err
	}
	var buf [HelloRespSize]byte
	cl.armRead()
	if _, err := io.ReadFull(cl.br, buf[:]); err != nil {
		return err
	}
	resp, err := DecodeHelloResp(buf[:])
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return resp.Status.Err()
	}
	if resp.Version != ProtocolV2 {
		return fmt.Errorf("%w: server granted version %d", ErrBadVersion, resp.Version)
	}
	cl.v2 = true
	cl.features = resp.Features
	return nil
}

// Err returns the sticky transport error that broke the connection, nil
// while it is healthy. A broken redialable client heals on its next use.
func (cl *Client) Err() error { return cl.broken }

// abort marks the connection dead with a sticky error, closes it, and
// drops every in-flight completion slot — after a transport failure no
// further response can be matched, so the slots are unrecoverable.
// Pipelined users (clientPipe) deliver failure completions for their
// outstanding requests themselves before calling abort.
func (cl *Client) abort(err error) {
	if cl.broken == nil {
		cl.broken = err
	}
	cl.c.Close()
	cl.cbHead, cl.cbTail, cl.inflight = 0, 0, 0
	for i := range cl.pend {
		cl.pend[i] = pending{}
	}
}

// ensureConn redials a broken connection when the retry policy allows.
// Attempts are rate-limited by the policy's backoff schedule: a dead
// shard costs one dial per backoff step, and every suppressed call
// returns the sticky error immediately.
func (cl *Client) ensureConn() error {
	if cl.broken == nil {
		return nil
	}
	if cl.addr == "" || cl.retry.Max == 0 {
		return cl.broken
	}
	if !cl.nextRedial.IsZero() && time.Now().Before(cl.nextRedial) {
		return cl.broken
	}
	pol := cl.retry.norm()
	c, err := DialTCP(cl.addr, pol.DialTimeout)
	if err == nil && cl.dialV2 {
		cl.c = c
		cl.br.Reset(c)
		cl.bw.Reset(c)
		if herr := cl.handshake(cl.dialOpts); herr != nil {
			c.Close()
			err = herr
		}
	} else if err == nil {
		cl.c = c
		cl.br.Reset(c)
		cl.bw.Reset(c)
	}
	if err != nil {
		cl.redialFails++
		cl.nextRedial = time.Now().Add(pol.backoff(cl.redialFails, &cl.rng))
		return err
	}
	cl.broken = nil
	cl.redialFails = 0
	cl.nextRedial = time.Time{}
	return nil
}

// Close closes the underlying connection and disables redial.
func (cl *Client) Close() error {
	cl.addr = ""
	if cl.broken == nil {
		cl.broken = net.ErrClosed
	}
	return cl.c.Close()
}

// Inflight returns the number of requests sent but not yet received.
func (cl *Client) Inflight() int { return cl.inflight }

// Features returns the feature set granted by the v2 handshake (0 on v1
// connections).
func (cl *Client) Features() uint16 { return cl.features }

// SetTimeouts sets the read/write deadlines applied around blocking reads
// and flushes (0 disables). DialV2 callers usually set them via ClientOpts.
func (cl *Client) SetTimeouts(read, write time.Duration) {
	cl.readTimeout, cl.writeTimeout = read, write
}

// armRead arms the connection read deadline from ReadTimeout.
func (cl *Client) armRead() {
	if cl.readTimeout > 0 {
		cl.c.SetReadDeadline(time.Now().Add(cl.readTimeout))
	}
}

// armWrite arms the connection write deadline from WriteTimeout.
func (cl *Client) armWrite() {
	if cl.writeTimeout > 0 {
		cl.c.SetWriteDeadline(time.Now().Add(cl.writeTimeout))
	}
}

// Send queues one request into the write buffer. The frame is appended
// directly into the bufio writer's spare capacity (no staging copy).
func (cl *Client) Send(r Request) error { return cl.send(r, nil) }

// SendAsync queues one request whose response will be delivered to cb by a
// later Recv, Drain or Future.Wait on this client, in request order. cb
// must be non-nil.
func (cl *Client) SendAsync(r Request, cb func(Response)) error {
	if cb == nil {
		return errors.New("server: SendAsync: nil callback")
	}
	return cl.send(r, cb)
}

func (cl *Client) send(r Request, cb func(Response)) error {
	if cl.broken != nil {
		return cl.broken
	}
	if _, err := cl.bw.Write(AppendRequest(cl.bw.AvailableBuffer(), r)); err != nil {
		cl.abort(err)
		return err
	}
	cl.push(pending{cb: cb})
	return nil
}

// SendKV queues one variable-length KV request whose response will be
// delivered to cb in request order, like SendAsync. Requires a v2
// connection with FeatureKV granted.
func (cl *Client) SendKV(r KVRequest, cb func(KVResponse)) error {
	if cb == nil {
		return errors.New("server: SendKV: nil callback")
	}
	if !cl.v2 || cl.features&FeatureKV == 0 {
		return fmt.Errorf("%w: KV frames (use DialV2)", ErrFeature)
	}
	if cl.broken != nil {
		return cl.broken
	}
	frame, err := AppendKVRequest(cl.bw.AvailableBuffer(), r)
	if err != nil {
		return err
	}
	if _, err := cl.bw.Write(frame); err != nil {
		cl.abort(err)
		return err
	}
	cl.push(pending{kvcb: cb})
	return nil
}

// push appends one completion slot to the pending ring.
func (cl *Client) push(p pending) {
	if cl.cbHead-cl.cbTail == len(cl.pend) {
		cl.growPend()
	}
	cl.pend[cl.cbHead&(len(cl.pend)-1)] = p
	cl.cbHead++
	cl.inflight++
}

func (cl *Client) growPend() {
	next := make([]pending, len(cl.pend)*2)
	for i := cl.cbTail; i < cl.cbHead; i++ {
		next[i&(len(next)-1)] = cl.pend[i&(len(cl.pend)-1)]
	}
	cl.pend = next
}

// Flush pushes all queued requests to the wire.
func (cl *Client) Flush() error {
	if cl.broken != nil {
		return cl.broken
	}
	cl.armWrite()
	if err := cl.bw.Flush(); err != nil {
		cl.abort(err)
		return err
	}
	return nil
}

// headPending returns the oldest in-flight request's completion slot (the
// zero slot when raw callers Recv more than they Send).
func (cl *Client) headPending() pending {
	if cl.cbTail < cl.cbHead {
		return cl.pend[cl.cbTail&(len(cl.pend)-1)]
	}
	return pending{}
}

// headIsPlain reports whether the next response belongs to a plain Send.
func (cl *Client) headIsPlain() bool {
	p := cl.headPending()
	return p.cb == nil && p.kvcb == nil
}

// popPending consumes the oldest completion slot.
func (cl *Client) popPending() {
	if cl.cbTail < cl.cbHead {
		cl.pend[cl.cbTail&(len(cl.pend)-1)] = pending{}
		cl.cbTail++
	}
	cl.inflight--
}

// recvStep receives exactly one response frame — fixed or variable-length,
// per the oldest slot's shape — and dispatches it if it belongs to an
// async send. plain is true when the response belongs to a plain Send and
// is returned to the caller instead.
func (cl *Client) recvStep() (r Response, plain bool, err error) {
	if cl.broken != nil {
		return Response{}, false, cl.broken
	}
	head := cl.headPending()
	if head.kvcb != nil {
		kr, err := cl.readKVResponse()
		if err != nil {
			cl.abort(err)
			return Response{}, false, err
		}
		cl.popPending()
		head.kvcb(kr)
		return Response{}, false, nil
	}
	var b [RespSize]byte
	cl.armRead()
	if _, err := io.ReadFull(cl.br, b[:]); err != nil {
		// The stream is unrecoverable mid-frame: no later response can be
		// matched to its request, so the connection is dead.
		cl.abort(err)
		return Response{}, false, err
	}
	cl.popPending()
	r, err = DecodeResponse(b[:])
	if err != nil {
		cl.abort(err)
		return r, false, err
	}
	if head.cb != nil {
		head.cb(r)
		return Response{}, false, nil
	}
	return r, true, nil
}

// readKVResponse reads one variable-length response frame.
func (cl *Client) readKVResponse() (KVResponse, error) {
	var hdr [KVRespHdrSize]byte
	cl.armRead()
	if _, err := io.ReadFull(cl.br, hdr[:]); err != nil {
		return KVResponse{}, err
	}
	vlen := int(binary.LittleEndian.Uint32(hdr[1:5]))
	if vlen > MaxKVValue {
		return KVResponse{}, fmt.Errorf("%w: value length %d exceeds %d", ErrBadFrame, vlen, MaxKVValue)
	}
	r := KVResponse{Status: Status(hdr[0])}
	if vlen > 0 {
		r.Value = make([]byte, vlen)
		cl.armRead()
		if _, err := io.ReadFull(cl.br, r.Value); err != nil {
			return KVResponse{}, err
		}
	}
	return r, nil
}

// Recv returns the next plain (Send) response. Responses arrive in request
// order; async responses queued ahead of the next plain one are dispatched
// to their callbacks on the way.
func (cl *Client) Recv() (Response, error) {
	for {
		r, plain, err := cl.recvStep()
		if err != nil || plain {
			return r, err
		}
	}
}

// Drain flushes queued requests and receives async responses — invoking
// their callbacks in request order — until none are outstanding. It stops
// early at a plain Send response, leaving it for Recv.
func (cl *Client) Drain() error {
	if err := cl.Flush(); err != nil {
		return err
	}
	for cl.cbTail < cl.cbHead {
		if cl.headIsPlain() {
			return nil // plain response next; Recv owns it
		}
		if _, _, err := cl.recvStep(); err != nil {
			return err
		}
	}
	return nil
}

// RecvOneAsync receives exactly one response — which must belong to an
// async send — and dispatches its callback. It is the sliding-window
// primitive for callers bounding in-flight async traffic themselves (Drain
// collapses the window to zero; this slides it by one).
func (cl *Client) RecvOneAsync() error {
	if cl.cbTail == cl.cbHead {
		return errors.New("server: RecvOneAsync: no async request outstanding")
	}
	if cl.headIsPlain() {
		return errors.New("server: RecvOneAsync: a plain Send response is queued ahead; Recv it first")
	}
	_, _, err := cl.recvStep()
	return err
}

// GetAsync queues a GET whose response is delivered to cb.
func (cl *Client) GetAsync(key uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpGet, Key: key}, cb)
}

// PutAsync queues a PUT whose response is delivered to cb.
func (cl *Client) PutAsync(key, val uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpPut, Key: key, Value: val}, cb)
}

// InsertAsync queues an INSERT whose response is delivered to cb.
func (cl *Client) InsertAsync(key, val uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpInsert, Key: key, Value: val}, cb)
}

// DeleteAsync queues a DELETE whose response is delivered to cb.
func (cl *Client) DeleteAsync(key uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpDelete, Key: key}, cb)
}

// Future is the handle to one in-flight request's eventual response.
type Future struct {
	cl   *Client
	resp Response
	done bool
}

// DoFuture queues r and returns a Future for its response. The request is
// not flushed; Wait flushes if needed.
func (cl *Client) DoFuture(r Request) (*Future, error) {
	f := &Future{cl: cl}
	if err := cl.SendAsync(r, func(r Response) { f.resp, f.done = r, true }); err != nil {
		return nil, err
	}
	return f, nil
}

// GetFuture queues a GET and returns its Future.
func (cl *Client) GetFuture(key uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpGet, Key: key})
}

// PutFuture queues a PUT and returns its Future.
func (cl *Client) PutFuture(key, val uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpPut, Key: key, Value: val})
}

// InsertFuture queues an INSERT and returns its Future.
func (cl *Client) InsertFuture(key, val uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpInsert, Key: key, Value: val})
}

// DeleteFuture queues a DELETE and returns its Future.
func (cl *Client) DeleteFuture(key uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpDelete, Key: key})
}

// Wait blocks until the future's response has been received, receiving and
// dispatching earlier responses (async callbacks included) along the way.
// It fails on a plain Send response encountered first — interleave Recv
// calls in request order when mixing the two styles.
func (f *Future) Wait() (Response, error) {
	if f.done {
		return f.resp, nil
	}
	cl := f.cl
	if err := cl.Flush(); err != nil {
		return Response{}, err
	}
	for !f.done {
		if cl.headIsPlain() {
			return Response{}, errors.New("server: Future.Wait: a plain Send response is queued ahead; Recv it before waiting")
		}
		if _, _, err := cl.recvStep(); err != nil {
			return Response{}, err
		}
	}
	return f.resp, nil
}

// doWindow bounds Do's in-flight requests. Unbounded pipelining deadlocks
// once in-flight response bytes overrun the kernel socket buffers: the
// server blocks writing responses the client is not yet reading, stops
// reading, and the client's Flush blocks in turn. 4096 responses are
// 36 KiB — comfortably inside default TCP buffers.
const doWindow = 4096

// Do pipelines all reqs and fills resps (which must have the same length)
// with the in-order responses. Requests are flushed in windows of doWindow
// so arbitrarily large batches cannot deadlock on socket buffers; callers
// driving Send/Flush/Recv directly must bound in-flight requests
// themselves.
func (cl *Client) Do(reqs []Request, resps []Response) error {
	if len(reqs) != len(resps) {
		return fmt.Errorf("server: Do: %d requests but %d response slots", len(reqs), len(resps))
	}
	for lo := 0; lo < len(reqs); lo += doWindow {
		hi := lo + doWindow
		if hi > len(reqs) {
			hi = len(reqs)
		}
		for _, r := range reqs[lo:hi] {
			if err := cl.Send(r); err != nil {
				return err
			}
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			r, err := cl.Recv()
			if err != nil {
				return err
			}
			resps[i] = r
		}
	}
	return nil
}

// do runs a one-request pipeline. With a retry policy set and no other
// requests in flight, retryable failures redial and reissue the request
// within the policy budget — at-least-once semantics for writes whose ack
// was lost.
func (cl *Client) do(r Request) (Response, error) {
	solo := cl.inflight == 0
	resp, err := cl.do1(r)
	if err == nil || cl.retry.Max == 0 || !solo {
		return resp, err
	}
	pol := cl.retry.norm()
	for attempt := 0; attempt < pol.Max && IsRetryable(err); attempt++ {
		time.Sleep(pol.backoff(attempt, &cl.rng))
		resp, err = cl.do1(r)
		if err == nil {
			return resp, nil
		}
	}
	return resp, err
}

// do1 is one attempt of a one-request pipeline, redialing first if the
// connection is broken.
func (cl *Client) do1(r Request) (Response, error) {
	if err := cl.ensureConn(); err != nil {
		return Response{}, err
	}
	if err := cl.Send(r); err != nil {
		return Response{}, err
	}
	if err := cl.Flush(); err != nil {
		return Response{}, err
	}
	return cl.Recv()
}

// Get reads key; ok reports whether it was present. Statuses other than OK
// and NOT_FOUND surface as their sentinel errors (ErrBusy, core.ErrWrongMode,
// ...), so error handling matches the local Store surface.
func (cl *Client) Get(key uint64) (val uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case StatusOK:
		return r.Result, true, nil
	case StatusNotFound:
		return 0, false, nil
	}
	return 0, false, r.Status.Err()
}

// Put overwrites an existing key and returns its previous value; ok is
// false when the key was absent.
func (cl *Client) Put(key, val uint64) (prev uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpPut, Key: key, Value: val})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case StatusOK:
		return r.Result, true, nil
	case StatusNotFound:
		return 0, false, nil
	}
	return 0, false, r.Status.Err()
}

// Insert adds a new key. A StatusExists reply surfaces as (existing, false,
// nil); other non-OK statuses map to their sentinel errors.
func (cl *Client) Insert(key, val uint64) (existing uint64, inserted bool, err error) {
	r, err := cl.do(Request{Op: OpInsert, Key: key, Value: val})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case StatusOK:
		return 0, true, nil
	case StatusExists:
		return r.Result, false, nil
	}
	return 0, false, fmt.Errorf("server: insert: %w", r.Status.Err())
}

// Delete removes key and returns its previous value; ok is false when the
// key was absent.
func (cl *Client) Delete(key uint64) (prev uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpDelete, Key: key})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case StatusOK:
		return r.Result, true, nil
	case StatusNotFound:
		return 0, false, nil
	}
	return 0, false, r.Status.Err()
}

// doKV runs a one-request KV pipeline, draining any async completions
// queued ahead of it. Retry semantics match do.
func (cl *Client) doKV(r KVRequest) (KVResponse, error) {
	solo := cl.inflight == 0
	resp, err := cl.doKV1(r)
	if err == nil || cl.retry.Max == 0 || !solo {
		return resp, err
	}
	pol := cl.retry.norm()
	for attempt := 0; attempt < pol.Max && IsRetryable(err); attempt++ {
		time.Sleep(pol.backoff(attempt, &cl.rng))
		resp, err = cl.doKV1(r)
		if err == nil {
			return resp, nil
		}
	}
	return resp, err
}

// doKV1 is one attempt of a one-request KV pipeline.
func (cl *Client) doKV1(r KVRequest) (KVResponse, error) {
	if err := cl.ensureConn(); err != nil {
		return KVResponse{}, err
	}
	var resp KVResponse
	done := false
	if err := cl.SendKV(r, func(kr KVResponse) { resp, done = kr, true }); err != nil {
		return KVResponse{}, err
	}
	if err := cl.Flush(); err != nil {
		return KVResponse{}, err
	}
	for !done {
		if cl.headIsPlain() {
			return KVResponse{}, errors.New("server: KV request: a plain Send response is queued ahead; Recv it first")
		}
		if _, _, err := cl.recvStep(); err != nil {
			return KVResponse{}, err
		}
	}
	return resp, nil
}

// GetKV reads the byte key under namespace ns; ok reports whether it was
// present. The returned slice is freshly allocated and owned by the caller.
func (cl *Client) GetKV(ns uint16, key []byte) (val []byte, ok bool, err error) {
	r, err := cl.doKV(KVRequest{Op: OpGetKV, NS: ns, Key: key})
	if err != nil {
		return nil, false, err
	}
	switch r.Status {
	case StatusOK:
		return r.Value, true, nil
	case StatusNotFound:
		return nil, false, nil
	}
	return nil, false, r.Status.Err()
}

// InsertKV adds a byte key/value pair under namespace ns; failures map to
// the same sentinels the local KV surface returns (core.ErrExists,
// core.ErrValueSize, ...).
func (cl *Client) InsertKV(ns uint16, key, val []byte) error {
	r, err := cl.doKV(KVRequest{Op: OpInsertKV, NS: ns, Key: key, Value: val})
	if err != nil {
		return err
	}
	if r.Status == StatusOK {
		return nil
	}
	return r.Status.Err()
}

// GetVer reads key together with its applied-mutation version (the
// core.VersionReader surface) over an OpGetVer frame. Requires a v2
// connection granted FeatureReshard and no other requests in flight —
// the reshard frames are solo synchronous exchanges, not pipelined.
// Retryable failures redial and reissue within the retry policy, like the
// other sync helpers (the read is idempotent).
func (cl *Client) GetVer(key uint64) (val uint64, ok bool, ver uint64, err error) {
	if cl.inflight != 0 {
		return 0, false, 0, errors.New("server: GetVer: requests in flight")
	}
	val, ok, ver, err = cl.getVer1(key)
	if err == nil || cl.retry.Max == 0 {
		return val, ok, ver, err
	}
	pol := cl.retry.norm()
	for attempt := 0; attempt < pol.Max && IsRetryable(err); attempt++ {
		time.Sleep(pol.backoff(attempt, &cl.rng))
		val, ok, ver, err = cl.getVer1(key)
		if err == nil {
			return val, ok, ver, nil
		}
	}
	return val, ok, ver, err
}

// getVer1 is one solo OpGetVer exchange.
func (cl *Client) getVer1(key uint64) (uint64, bool, uint64, error) {
	if err := cl.ensureConn(); err != nil {
		return 0, false, 0, err
	}
	if !cl.v2 || cl.features&FeatureReshard == 0 {
		return 0, false, 0, fmt.Errorf("%w: reshard frames (request FeatureReshard)", ErrFeature)
	}
	var req [GetVerReqSize]byte
	req[0] = byte(OpGetVer)
	binary.LittleEndian.PutUint64(req[1:9], key)
	if _, err := cl.bw.Write(req[:]); err != nil {
		cl.abort(err)
		return 0, false, 0, err
	}
	cl.armWrite()
	if err := cl.bw.Flush(); err != nil {
		cl.abort(err)
		return 0, false, 0, err
	}
	var resp [GetVerRespSize]byte
	cl.armRead()
	if _, err := io.ReadFull(cl.br, resp[:]); err != nil {
		cl.abort(err)
		return 0, false, 0, err
	}
	v := binary.LittleEndian.Uint64(resp[1:9])
	ver := binary.LittleEndian.Uint64(resp[9:17])
	switch Status(resp[0]) {
	case StatusOK:
		return v, true, ver, nil
	case StatusNotFound:
		// The version is meaningful on a miss too: a tombstone has one.
		return 0, false, ver, nil
	}
	return 0, false, 0, Status(resp[0]).Err()
}

// maxScanRespEnts bounds the entry count a scan reply may announce before
// the client rejects the frame as garbage. Generous: a legitimate reply
// overshoots MaxScanBatch only by the final bin group.
const maxScanRespEnts = 1 << 22

// ScanStep advances the server-side migration cursor one batch (the
// core.Scanner surface) over an OpScan frame. Same connection
// requirements as GetVer. Not retried: the cursor's consumer (the reshard
// coordinator) handles failover by restarting the pass, so a transport
// error surfaces immediately.
func (cl *Client) ScanStep(origBins, startBin uint64, maxEnts int) ([]core.Entry, uint64, uint64, bool, error) {
	if cl.inflight != 0 {
		return nil, 0, 0, false, errors.New("server: ScanStep: requests in flight")
	}
	if err := cl.ensureConn(); err != nil {
		return nil, 0, 0, false, err
	}
	if !cl.v2 || cl.features&FeatureReshard == 0 {
		return nil, 0, 0, false, fmt.Errorf("%w: reshard frames (request FeatureReshard)", ErrFeature)
	}
	if maxEnts <= 0 || maxEnts > MaxScanBatch {
		maxEnts = MaxScanBatch
	}
	var req [ScanReqSize]byte
	req[0] = byte(OpScan)
	binary.LittleEndian.PutUint64(req[1:9], origBins)
	binary.LittleEndian.PutUint64(req[9:17], startBin)
	binary.LittleEndian.PutUint32(req[17:21], uint32(maxEnts))
	if _, err := cl.bw.Write(req[:]); err != nil {
		cl.abort(err)
		return nil, 0, 0, false, err
	}
	cl.armWrite()
	if err := cl.bw.Flush(); err != nil {
		cl.abort(err)
		return nil, 0, 0, false, err
	}
	var hdr [ScanRespHdrSize]byte
	cl.armRead()
	if _, err := io.ReadFull(cl.br, hdr[:]); err != nil {
		cl.abort(err)
		return nil, 0, 0, false, err
	}
	if st := Status(hdr[0]); st != StatusOK {
		return nil, 0, 0, false, st.Err()
	}
	newOrig := binary.LittleEndian.Uint64(hdr[1:9])
	next := binary.LittleEndian.Uint64(hdr[9:17])
	done := hdr[17] != 0
	count := int(binary.LittleEndian.Uint32(hdr[18:22]))
	if count > maxScanRespEnts {
		err := fmt.Errorf("%w: scan reply announces %d entries", ErrBadFrame, count)
		cl.abort(err)
		return nil, 0, 0, false, err
	}
	var ents []core.Entry
	if count > 0 {
		ents = make([]core.Entry, count)
		buf := make([]byte, count*16)
		cl.armRead()
		if _, err := io.ReadFull(cl.br, buf); err != nil {
			cl.abort(err)
			return nil, 0, 0, false, err
		}
		for i := range ents {
			ents[i].Key = binary.LittleEndian.Uint64(buf[i*16:])
			ents[i].Value = binary.LittleEndian.Uint64(buf[i*16+8:])
		}
	}
	return ents, newOrig, next, done, nil
}

// DeleteKV removes the byte key under namespace ns; ok reports whether it
// was present.
func (cl *Client) DeleteKV(ns uint16, key []byte) (ok bool, err error) {
	r, err := cl.doKV(KVRequest{Op: OpDeleteKV, NS: ns, Key: key})
	if err != nil {
		return false, err
	}
	switch r.Status {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	}
	return false, r.Status.Err()
}
