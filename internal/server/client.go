package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
)

// Client is a pipelined protocol client. It is not safe for concurrent use;
// open one per goroutine (mirroring the one-handle-per-goroutine contract
// on the server side).
//
// The pipelining surface is Send/Flush/Recv: queue any number of requests,
// flush, then receive responses in request order. On top of it sit two
// completion-driven shapes mirroring the server's Pipeline API: callbacks
// (SendAsync/GetAsync/... + Drain) and futures (DoFuture/GetFuture/... +
// Future.Wait). The Get/Put/Insert/Delete helpers are one-request pipelines
// for convenience and tests.
//
// The three shapes may be mixed on one connection: every request's
// completion slot is tracked in order, Recv dispatches any async
// completions queued ahead of the next plain response, and Drain stops at
// the first plain response so Recv can claim it.
type Client struct {
	c        net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	inflight int

	// cbs tracks one completion slot per in-flight request, in request
	// order: nil for a plain Send (consumed by Recv), non-nil for an async
	// send (invoked by the next Recv/Drain/Wait that reaches it). A
	// power-of-two ring addressed by absolute head/tail counters.
	cbs            []func(Response)
	cbHead, cbTail int
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:   c,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
		cbs: make([]func(Response), 16),
	}
}

// Close closes the underlying connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Inflight returns the number of requests sent but not yet received.
func (cl *Client) Inflight() int { return cl.inflight }

// Send queues one request into the write buffer. The frame is appended
// directly into the bufio writer's spare capacity (no staging copy).
func (cl *Client) Send(r Request) error { return cl.send(r, nil) }

// SendAsync queues one request whose response will be delivered to cb by a
// later Recv, Drain or Future.Wait on this client, in request order. cb
// must be non-nil.
func (cl *Client) SendAsync(r Request, cb func(Response)) error {
	if cb == nil {
		return errors.New("server: SendAsync: nil callback")
	}
	return cl.send(r, cb)
}

func (cl *Client) send(r Request, cb func(Response)) error {
	if _, err := cl.bw.Write(AppendRequest(cl.bw.AvailableBuffer(), r)); err != nil {
		return err
	}
	if cl.cbHead-cl.cbTail == len(cl.cbs) {
		cl.growCBs()
	}
	cl.cbs[cl.cbHead&(len(cl.cbs)-1)] = cb
	cl.cbHead++
	cl.inflight++
	return nil
}

func (cl *Client) growCBs() {
	next := make([]func(Response), len(cl.cbs)*2)
	for i := cl.cbTail; i < cl.cbHead; i++ {
		next[i&(len(next)-1)] = cl.cbs[i&(len(cl.cbs)-1)]
	}
	cl.cbs = next
}

// Flush pushes all queued requests to the wire.
func (cl *Client) Flush() error { return cl.bw.Flush() }

// recvOne reads the next response frame and pops its completion slot.
func (cl *Client) recvOne() (Response, func(Response), error) {
	var b [RespSize]byte
	if _, err := io.ReadFull(cl.br, b[:]); err != nil {
		return Response{}, nil, err
	}
	var cb func(Response)
	if cl.cbTail < cl.cbHead { // raw callers may Recv more than they Send
		cb = cl.cbs[cl.cbTail&(len(cl.cbs)-1)]
		cl.cbs[cl.cbTail&(len(cl.cbs)-1)] = nil
		cl.cbTail++
	}
	cl.inflight--
	r, err := DecodeResponse(b[:])
	return r, cb, err
}

// Recv returns the next plain (Send) response. Responses arrive in request
// order; async responses queued ahead of the next plain one are dispatched
// to their callbacks on the way.
func (cl *Client) Recv() (Response, error) {
	for {
		r, cb, err := cl.recvOne()
		if err != nil || cb == nil {
			return r, err
		}
		cb(r)
	}
}

// Drain flushes queued requests and receives async responses — invoking
// their callbacks in request order — until none are outstanding. It stops
// early at a plain Send response, leaving it for Recv.
func (cl *Client) Drain() error {
	if err := cl.Flush(); err != nil {
		return err
	}
	for cl.cbTail < cl.cbHead {
		if cl.cbs[cl.cbTail&(len(cl.cbs)-1)] == nil {
			return nil // plain response next; Recv owns it
		}
		r, cb, err := cl.recvOne()
		if err != nil {
			return err
		}
		cb(r)
	}
	return nil
}

// RecvOneAsync receives exactly one response — which must belong to an
// async send — and dispatches its callback. It is the sliding-window
// primitive for callers bounding in-flight async traffic themselves (Drain
// collapses the window to zero; this slides it by one).
func (cl *Client) RecvOneAsync() error {
	if cl.cbTail < cl.cbHead && cl.cbs[cl.cbTail&(len(cl.cbs)-1)] == nil {
		return errors.New("server: RecvOneAsync: a plain Send response is queued ahead; Recv it first")
	}
	r, cb, err := cl.recvOne()
	if err != nil {
		return err
	}
	if cb == nil {
		return errors.New("server: RecvOneAsync: no async request outstanding")
	}
	cb(r)
	return nil
}

// GetAsync queues a GET whose response is delivered to cb.
func (cl *Client) GetAsync(key uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpGet, Key: key}, cb)
}

// PutAsync queues a PUT whose response is delivered to cb.
func (cl *Client) PutAsync(key, val uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpPut, Key: key, Value: val}, cb)
}

// InsertAsync queues an INSERT whose response is delivered to cb.
func (cl *Client) InsertAsync(key, val uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpInsert, Key: key, Value: val}, cb)
}

// DeleteAsync queues a DELETE whose response is delivered to cb.
func (cl *Client) DeleteAsync(key uint64, cb func(Response)) error {
	return cl.SendAsync(Request{Op: OpDelete, Key: key}, cb)
}

// Future is the handle to one in-flight request's eventual response.
type Future struct {
	cl   *Client
	resp Response
	done bool
}

// DoFuture queues r and returns a Future for its response. The request is
// not flushed; Wait flushes if needed.
func (cl *Client) DoFuture(r Request) (*Future, error) {
	f := &Future{cl: cl}
	if err := cl.SendAsync(r, func(r Response) { f.resp, f.done = r, true }); err != nil {
		return nil, err
	}
	return f, nil
}

// GetFuture queues a GET and returns its Future.
func (cl *Client) GetFuture(key uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpGet, Key: key})
}

// PutFuture queues a PUT and returns its Future.
func (cl *Client) PutFuture(key, val uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpPut, Key: key, Value: val})
}

// InsertFuture queues an INSERT and returns its Future.
func (cl *Client) InsertFuture(key, val uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpInsert, Key: key, Value: val})
}

// DeleteFuture queues a DELETE and returns its Future.
func (cl *Client) DeleteFuture(key uint64) (*Future, error) {
	return cl.DoFuture(Request{Op: OpDelete, Key: key})
}

// Wait blocks until the future's response has been received, receiving and
// dispatching earlier responses (async callbacks included) along the way.
// It fails on a plain Send response encountered first — interleave Recv
// calls in request order when mixing the two styles.
func (f *Future) Wait() (Response, error) {
	if f.done {
		return f.resp, nil
	}
	cl := f.cl
	if err := cl.Flush(); err != nil {
		return Response{}, err
	}
	for !f.done {
		if cl.cbTail < cl.cbHead && cl.cbs[cl.cbTail&(len(cl.cbs)-1)] == nil {
			return Response{}, errors.New("server: Future.Wait: a plain Send response is queued ahead; Recv it before waiting")
		}
		r, cb, err := cl.recvOne()
		if err != nil {
			return Response{}, err
		}
		cb(r)
	}
	return f.resp, nil
}

// doWindow bounds Do's in-flight requests. Unbounded pipelining deadlocks
// once in-flight response bytes overrun the kernel socket buffers: the
// server blocks writing responses the client is not yet reading, stops
// reading, and the client's Flush blocks in turn. 4096 responses are
// 36 KiB — comfortably inside default TCP buffers.
const doWindow = 4096

// Do pipelines all reqs and fills resps (which must have the same length)
// with the in-order responses. Requests are flushed in windows of doWindow
// so arbitrarily large batches cannot deadlock on socket buffers; callers
// driving Send/Flush/Recv directly must bound in-flight requests
// themselves.
func (cl *Client) Do(reqs []Request, resps []Response) error {
	if len(reqs) != len(resps) {
		return fmt.Errorf("server: Do: %d requests but %d response slots", len(reqs), len(resps))
	}
	for lo := 0; lo < len(reqs); lo += doWindow {
		hi := lo + doWindow
		if hi > len(reqs) {
			hi = len(reqs)
		}
		for _, r := range reqs[lo:hi] {
			if err := cl.Send(r); err != nil {
				return err
			}
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			r, err := cl.Recv()
			if err != nil {
				return err
			}
			resps[i] = r
		}
	}
	return nil
}

// do runs a one-request pipeline.
func (cl *Client) do(r Request) (Response, error) {
	if err := cl.Send(r); err != nil {
		return Response{}, err
	}
	if err := cl.Flush(); err != nil {
		return Response{}, err
	}
	return cl.Recv()
}

// Get reads key; ok reports whether it was present.
func (cl *Client) Get(key uint64) (val uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpGet, Key: key})
	return r.Result, r.Status == StatusOK, err
}

// Put overwrites an existing key and returns its previous value; ok is
// false when the key was absent.
func (cl *Client) Put(key, val uint64) (prev uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpPut, Key: key, Value: val})
	return r.Result, r.Status == StatusOK, err
}

// Insert adds a new key. A StatusExists reply surfaces as (existing, false,
// nil); other non-OK statuses become errors.
func (cl *Client) Insert(key, val uint64) (existing uint64, inserted bool, err error) {
	r, err := cl.do(Request{Op: OpInsert, Key: key, Value: val})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case StatusOK:
		return 0, true, nil
	case StatusExists:
		return r.Result, false, nil
	}
	return 0, false, fmt.Errorf("server: insert: %v", r.Status)
}

// Delete removes key and returns its previous value; ok is false when the
// key was absent.
func (cl *Client) Delete(key uint64) (prev uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpDelete, Key: key})
	return r.Result, r.Status == StatusOK, err
}
