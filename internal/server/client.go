package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
)

// Client is a pipelined protocol client. It is not safe for concurrent use;
// open one per goroutine (mirroring the one-handle-per-goroutine contract
// on the server side).
//
// The pipelining surface is Send/Flush/Recv: queue any number of requests,
// flush, then receive responses in request order. The Get/Put/Insert/Delete
// helpers are one-request pipelines for convenience and tests.
type Client struct {
	c        net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	inflight int
	frame    [ReqSize]byte
}

// Dial connects to a server at addr.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Close closes the underlying connection.
func (cl *Client) Close() error { return cl.c.Close() }

// Inflight returns the number of requests sent but not yet received.
func (cl *Client) Inflight() int { return cl.inflight }

// Send queues one request into the write buffer.
func (cl *Client) Send(r Request) error {
	b := AppendRequest(cl.frame[:0], r)
	if _, err := cl.bw.Write(b); err != nil {
		return err
	}
	cl.inflight++
	return nil
}

// Flush pushes all queued requests to the wire.
func (cl *Client) Flush() error { return cl.bw.Flush() }

// Recv reads the next response. Responses arrive in request order.
func (cl *Client) Recv() (Response, error) {
	var b [RespSize]byte
	if _, err := io.ReadFull(cl.br, b[:]); err != nil {
		return Response{}, err
	}
	cl.inflight--
	return DecodeResponse(b[:])
}

// doWindow bounds Do's in-flight requests. Unbounded pipelining deadlocks
// once in-flight response bytes overrun the kernel socket buffers: the
// server blocks writing responses the client is not yet reading, stops
// reading, and the client's Flush blocks in turn. 4096 responses are
// 36 KiB — comfortably inside default TCP buffers.
const doWindow = 4096

// Do pipelines all reqs and fills resps (which must have the same length)
// with the in-order responses. Requests are flushed in windows of doWindow
// so arbitrarily large batches cannot deadlock on socket buffers; callers
// driving Send/Flush/Recv directly must bound in-flight requests
// themselves.
func (cl *Client) Do(reqs []Request, resps []Response) error {
	if len(reqs) != len(resps) {
		return fmt.Errorf("server: Do: %d requests but %d response slots", len(reqs), len(resps))
	}
	for lo := 0; lo < len(reqs); lo += doWindow {
		hi := lo + doWindow
		if hi > len(reqs) {
			hi = len(reqs)
		}
		for _, r := range reqs[lo:hi] {
			if err := cl.Send(r); err != nil {
				return err
			}
		}
		if err := cl.Flush(); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			r, err := cl.Recv()
			if err != nil {
				return err
			}
			resps[i] = r
		}
	}
	return nil
}

// do runs a one-request pipeline.
func (cl *Client) do(r Request) (Response, error) {
	if err := cl.Send(r); err != nil {
		return Response{}, err
	}
	if err := cl.Flush(); err != nil {
		return Response{}, err
	}
	return cl.Recv()
}

// Get reads key; ok reports whether it was present.
func (cl *Client) Get(key uint64) (val uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpGet, Key: key})
	return r.Result, r.Status == StatusOK, err
}

// Put overwrites an existing key and returns its previous value; ok is
// false when the key was absent.
func (cl *Client) Put(key, val uint64) (prev uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpPut, Key: key, Value: val})
	return r.Result, r.Status == StatusOK, err
}

// Insert adds a new key. A StatusExists reply surfaces as (existing, false,
// nil); other non-OK statuses become errors.
func (cl *Client) Insert(key, val uint64) (existing uint64, inserted bool, err error) {
	r, err := cl.do(Request{Op: OpInsert, Key: key, Value: val})
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case StatusOK:
		return 0, true, nil
	case StatusExists:
		return r.Result, false, nil
	}
	return 0, false, fmt.Errorf("server: insert: %v", r.Status)
}

// Delete removes key and returns its previous value; ok is false when the
// key was absent.
func (cl *Client) Delete(key uint64) (prev uint64, ok bool, err error) {
	r, err := cl.do(Request{Op: OpDelete, Key: key})
	return r.Result, r.Status == StatusOK, err
}
