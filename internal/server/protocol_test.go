package server

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	for _, r := range []Request{
		{Op: OpGet, Key: 1},
		{Op: OpPut, Key: 2, Value: 3},
		{Op: OpInsert, Key: ^uint64(0), Value: 42},
		{Op: OpDelete, Key: 0},
	} {
		b := AppendRequest(nil, r)
		if len(b) != ReqSize {
			t.Fatalf("encoded size = %d, want %d", len(b), ReqSize)
		}
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip %v -> %v", r, got)
		}
	}
}

// TestRequestRoundTripProperty: encode∘decode is the identity for every
// valid opcode and arbitrary key/value words.
func TestRequestRoundTripProperty(t *testing.T) {
	f := func(op uint8, key, value uint64) bool {
		r := Request{Op: OpCode(op % uint8(opCodeEnd)), Key: key, Value: value}
		got, err := DecodeRequest(AppendRequest(nil, r))
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestResponseRoundTripProperty(t *testing.T) {
	f := func(status uint8, result uint64) bool {
		r := Response{Status: Status(status), Result: result}
		got, err := DecodeResponse(AppendResponse(nil, r))
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRequestMalformed(t *testing.T) {
	// Truncated frames at every short length.
	full := AppendRequest(nil, Request{Op: OpPut, Key: 7, Value: 9})
	for n := 0; n < ReqSize; n++ {
		if _, err := DecodeRequest(full[:n]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("len %d: err = %v, want ErrShortFrame", n, err)
		}
	}
	// Every invalid opcode byte.
	for op := int(opCodeEnd); op <= 255; op++ {
		b := AppendRequest(nil, Request{Key: 1})
		b[0] = byte(op)
		if _, err := DecodeRequest(b); !errors.Is(err, ErrBadOpCode) {
			t.Fatalf("opcode %d: err = %v, want ErrBadOpCode", op, err)
		}
	}
}

func TestDecodeResponseShort(t *testing.T) {
	b := AppendResponse(nil, Response{Status: StatusOK, Result: 5})
	for n := 0; n < RespSize; n++ {
		if _, err := DecodeResponse(b[:n]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("len %d: err = %v, want ErrShortFrame", n, err)
		}
	}
}

// TestDecodeTrailingBytesIgnored: decoders only consume the fixed frame, so
// a buffer holding several frames decodes from the front.
func TestDecodeTrailingBytesIgnored(t *testing.T) {
	var b []byte
	b = AppendRequest(b, Request{Op: OpGet, Key: 1})
	b = AppendRequest(b, Request{Op: OpDelete, Key: 2})
	first, err := DecodeRequest(b)
	if err != nil || first.Op != OpGet || first.Key != 1 {
		t.Fatalf("first = %+v, err %v", first, err)
	}
	second, err := DecodeRequest(b[ReqSize:])
	if err != nil || second.Op != OpDelete || second.Key != 2 {
		t.Fatalf("second = %+v, err %v", second, err)
	}
}

func TestStatusAndOpCodeStrings(t *testing.T) {
	// The mnemonics are part of error messages; keep them stable.
	if OpGet.String() != "GET" || OpCode(250).String() == "" {
		t.Fatal("OpCode.String broken")
	}
	if StatusOK.String() != "OK" || StatusBadRequest.String() != "BAD_REQUEST" {
		t.Fatal("Status.String broken")
	}
}
