package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder. The
// decoder must never panic; whenever it accepts a frame, re-encoding the
// decoded request must reproduce the frame's first ReqSize bytes.
func FuzzDecodeRequest(f *testing.F) {
	// Valid frames for every opcode.
	f.Add(AppendRequest(nil, Request{Op: OpGet, Key: 1}))
	f.Add(AppendRequest(nil, Request{Op: OpPut, Key: 2, Value: 3}))
	f.Add(AppendRequest(nil, Request{Op: OpInsert, Key: ^uint64(0), Value: 4}))
	f.Add(AppendRequest(nil, Request{Op: OpDelete, Key: 5}))
	// Malformed seeds: bad opcode, truncated, empty, oversized.
	bad := AppendRequest(nil, Request{Op: OpGet, Key: 6})
	bad[0] = 0x7f
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, ReqSize*3))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return
		}
		if r.Op >= opCodeEnd {
			t.Fatalf("decoder accepted invalid opcode %d", r.Op)
		}
		if got := AppendRequest(nil, r); !bytes.Equal(got, data[:ReqSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:ReqSize])
		}
	})
}

// FuzzDecodeResponse: same contract for the response decoder.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendResponse(nil, Response{Status: StatusOK, Result: 1}))
	f.Add(AppendResponse(nil, Response{Status: StatusBadRequest}))
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResponse(data)
		if err != nil {
			return
		}
		if got := AppendResponse(nil, r); !bytes.Equal(got, data[:RespSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:RespSize])
		}
	})
}
