package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder. The
// decoder must never panic; whenever it accepts a frame, re-encoding the
// decoded request must reproduce the frame's first ReqSize bytes.
func FuzzDecodeRequest(f *testing.F) {
	// Valid frames for every opcode.
	f.Add(AppendRequest(nil, Request{Op: OpGet, Key: 1}))
	f.Add(AppendRequest(nil, Request{Op: OpPut, Key: 2, Value: 3}))
	f.Add(AppendRequest(nil, Request{Op: OpInsert, Key: ^uint64(0), Value: 4}))
	f.Add(AppendRequest(nil, Request{Op: OpDelete, Key: 5}))
	// Malformed seeds: bad opcode, truncated, empty, oversized.
	bad := AppendRequest(nil, Request{Op: OpGet, Key: 6})
	bad[0] = 0x7f
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01})
	f.Add(bytes.Repeat([]byte{0xff}, ReqSize*3))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return
		}
		if r.Op >= opCodeEnd {
			t.Fatalf("decoder accepted invalid opcode %d", r.Op)
		}
		if got := AppendRequest(nil, r); !bytes.Equal(got, data[:ReqSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:ReqSize])
		}
	})
}

// FuzzDecodeKVRequest throws arbitrary bytes at the variable-length KV
// request decoder. The decoder must never panic; whenever it accepts a
// frame, re-encoding the decoded request must reproduce exactly the bytes
// it reported consuming.
func FuzzDecodeKVRequest(f *testing.F) {
	mustKV := func(r KVRequest) []byte {
		b, err := AppendKVRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(mustKV(KVRequest{Op: OpGetKV, NS: 1, Key: []byte("k")}))
	f.Add(mustKV(KVRequest{Op: OpInsertKV, NS: 0, Key: []byte("key"), Value: []byte("value")}))
	f.Add(mustKV(KVRequest{Op: OpDeleteKV, NS: 4095, Key: bytes.Repeat([]byte("K"), 300)}))
	// Malformed seeds: empty key, value on a Get, truncated, huge declared
	// value length.
	f.Add([]byte{byte(OpGetKV), 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{byte(OpGetKV), 0, 0, 1, 0, 5, 0, 0, 0, 'k'})
	f.Add([]byte{byte(OpInsertKV), 0, 0, 1, 0, 0xff, 0xff, 0xff, 0xff, 'k'})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeKVRequest(data)
		if err != nil {
			return
		}
		if n < KVReqHdrSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		got, err := AppendKVRequest(nil, r)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:n])
		}
	})
}

// FuzzDecodeKVResponse: same contract for the KV response decoder.
func FuzzDecodeKVResponse(f *testing.F) {
	f.Add(AppendKVResponse(nil, KVResponse{Status: StatusOK, Value: []byte("v")}))
	f.Add(AppendKVResponse(nil, KVResponse{Status: StatusNotFound}))
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeKVResponse(data)
		if err != nil {
			return
		}
		if n < KVRespHdrSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if got := AppendKVResponse(nil, r); !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:n])
		}
	})
}

// FuzzDecodeHello: the handshake decoder must never panic and must
// round-trip every frame it accepts.
func FuzzDecodeHello(f *testing.F) {
	ok, err := AppendHello(nil, Hello{Version: ProtocolV2, Features: FeatureKV, Table: "users"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ok)
	f.Add([]byte{HelloMagic, ProtocolV2, 0, 0, 0})
	f.Add([]byte{HelloMagic, ProtocolV2, 0, 0, 200, 'a'}) // truncated name
	f.Add([]byte{0x00, 0x01})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		h, n, err := DecodeHello(data)
		if err != nil {
			return
		}
		if n < HelloFixedSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		got, err := AppendHello(nil, h)
		if err != nil {
			t.Fatalf("re-encode of accepted handshake failed: %v", err)
		}
		if !bytes.Equal(got, data[:n]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:n])
		}
	})
}

// FuzzDecodeResponse: same contract for the response decoder.
func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendResponse(nil, Response{Status: StatusOK, Result: 1}))
	f.Add(AppendResponse(nil, Response{Status: StatusBadRequest}))
	f.Add([]byte{})
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResponse(data)
		if err != nil {
			return
		}
		if got := AppendResponse(nil, r); !bytes.Equal(got, data[:RespSize]) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data[:RespSize])
		}
	})
}
