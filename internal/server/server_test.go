package server

import (
	"net"
	"sync"
	"testing"
	"time"

	core "repro/internal/core"
)

// startServer spins up a server on a loopback port and tears it down with
// the test.
func startServer(t testing.TB, cfg core.Config, opts Options) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(core.MustNew(cfg), opts)
	s.ln = ln // publish the address before Serve's goroutine runs
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s
}

func dialT(t testing.TB, s *Server) *Client {
	t.Helper()
	cl, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestRoundTripAllOps drives all four op kinds end to end over TCP — the
// acceptance-criteria round-trip test.
func TestRoundTripAllOps(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true}, Options{})
	cl := dialT(t, s)

	// INSERT fresh key.
	if _, inserted, err := cl.Insert(100, 7); err != nil || !inserted {
		t.Fatalf("Insert(100) = inserted=%v, err=%v", inserted, err)
	}
	// Duplicate INSERT reports the existing value.
	if existing, inserted, err := cl.Insert(100, 8); err != nil || inserted || existing != 7 {
		t.Fatalf("dup Insert = (%d,%v,%v), want (7,false,nil)", existing, inserted, err)
	}
	// GET hit.
	if v, ok, err := cl.Get(100); err != nil || !ok || v != 7 {
		t.Fatalf("Get(100) = (%d,%v,%v), want (7,true,nil)", v, ok, err)
	}
	// PUT overwrites and returns the previous value.
	if prev, ok, err := cl.Put(100, 9); err != nil || !ok || prev != 7 {
		t.Fatalf("Put(100,9) = (%d,%v,%v), want (7,true,nil)", prev, ok, err)
	}
	if v, ok, _ := cl.Get(100); !ok || v != 9 {
		t.Fatalf("Get after Put = (%d,%v), want (9,true)", v, ok)
	}
	// PUT on a missing key misses.
	if _, ok, err := cl.Put(200, 1); err != nil || ok {
		t.Fatalf("Put(missing) ok=%v err=%v, want false,nil", ok, err)
	}
	// DELETE returns the deleted value; second DELETE misses.
	if prev, ok, err := cl.Delete(100); err != nil || !ok || prev != 9 {
		t.Fatalf("Delete(100) = (%d,%v,%v), want (9,true,nil)", prev, ok, err)
	}
	if _, ok, _ := cl.Delete(100); ok {
		t.Fatal("second Delete found the key")
	}
	// GET miss after delete.
	if _, ok, _ := cl.Get(100); ok {
		t.Fatal("Get found a deleted key")
	}
}

// TestPipelinedBatch pushes a deep pipeline in one flush and checks every
// in-order response, exercising the server's burst batching path.
func TestPipelinedBatch(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 12, Resizable: true}, Options{MaxBatch: 16})
	cl := dialT(t, s)

	const n = 256 // 16x the server batch cap: forces multiple Exec batches
	reqs := make([]Request, 0, 3*n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, Request{Op: OpInsert, Key: i, Value: i * 10})
	}
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, Request{Op: OpGet, Key: i})
	}
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, Request{Op: OpDelete, Key: i})
	}
	resps := make([]Response, len(reqs))
	if err := cl.Do(reqs, resps); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if resps[i].Status != StatusOK {
			t.Fatalf("insert %d: %v", i, resps[i].Status)
		}
		if r := resps[n+i]; r.Status != StatusOK || r.Result != i*10 {
			t.Fatalf("get %d = %+v, want OK %d", i, r, i*10)
		}
		if r := resps[2*n+i]; r.Status != StatusOK || r.Result != i*10 {
			t.Fatalf("delete %d = %+v, want OK %d", i, r, i*10)
		}
	}
}

// TestConcurrentConnections hammers the table from many connections at
// once; each owns a disjoint key range, and cross-connection visibility is
// checked at the end.
func TestConcurrentConnections(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 12, Resizable: true, MaxThreads: 64}, Options{})
	const conns, perConn = 8, 500
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			base := uint64(c) * perConn
			reqs := make([]Request, 0, 2*perConn)
			for i := uint64(0); i < perConn; i++ {
				reqs = append(reqs, Request{Op: OpInsert, Key: base + i, Value: base + i})
				reqs = append(reqs, Request{Op: OpGet, Key: base + i})
			}
			resps := make([]Response, len(reqs))
			if err := cl.Do(reqs, resps); err != nil {
				errs <- err
				return
			}
			for i, r := range resps {
				if r.Status != StatusOK {
					t.Errorf("conn %d resp %d: %v", c, i, r.Status)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All inserts visible through a fresh connection.
	cl := dialT(t, s)
	for c := 0; c < conns; c++ {
		k := uint64(c)*perConn + perConn/2
		if v, ok, err := cl.Get(k); err != nil || !ok || v != k {
			t.Fatalf("Get(%d) = (%d,%v,%v)", k, v, ok, err)
		}
	}
}

// TestMalformedFrameClosesConnection: a bad opcode elicits StatusBadRequest
// and a connection close, with earlier pipelined requests still answered.
func TestMalformedFrameClosesConnection(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true}, Options{})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var buf []byte
	buf = AppendRequest(buf, Request{Op: OpInsert, Key: 1, Value: 2})
	bad := AppendRequest(nil, Request{Op: OpGet, Key: 3})
	bad[0] = 0xee
	buf = append(buf, bad...)
	if _, err := c.Write(buf); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(c)
	cl.inflight = 2
	if r, err := cl.Recv(); err != nil || r.Status != StatusOK {
		t.Fatalf("prefix response = %+v, %v; want OK", r, err)
	}
	if r, err := cl.Recv(); err != nil || r.Status != StatusBadRequest {
		t.Fatalf("bad-frame response = %+v, %v; want BAD_REQUEST", r, err)
	}
	if _, err := cl.Recv(); err == nil {
		t.Fatal("connection still open after malformed frame")
	}
	// The decodable prefix took effect.
	cl2 := dialT(t, s)
	if v, ok, _ := cl2.Get(1); !ok || v != 2 {
		t.Fatalf("Get(1) = (%d,%v), want (2,true)", v, ok)
	}
}

// TestHandleRecycling cycles far more connections than MaxThreads; without
// Handle.Close recycling the server would run out of handles. Handle churn
// is a property of the goroutine-per-connection model (executor shards
// hold their handles for the server's lifetime), so this pins ExecConn.
func TestHandleRecycling(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 4}, Options{Exec: ExecConn})
	for i := 0; i < 64; i++ {
		cl, err := Dial(s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
		cl.Close()
	}
}

// TestBusyWhenHandlesExhausted: with every handle held by a live
// connection, a new connection's first request is answered with StatusBusy
// and the connection is closed — after consuming the request, so the
// response-matching rule holds.
func TestBusyWhenHandlesExhausted(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 2}, Options{Exec: ExecConn})
	// Pin both handles with live connections.
	for i := 0; i < 2; i++ {
		cl := dialT(t, s)
		if _, inserted, err := cl.Insert(uint64(i), 1); err != nil || !inserted {
			t.Fatalf("pin conn %d: inserted=%v err=%v", i, inserted, err)
		}
	}
	cl := dialT(t, s)
	if err := cl.Send(Request{Op: OpGet, Key: 0}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if r, err := cl.Recv(); err != nil || r.Status != StatusBusy {
		t.Fatalf("resp = %+v, %v; want BUSY", r, err)
	}
	if _, err := cl.Recv(); err == nil {
		t.Fatal("connection still open after BUSY")
	}
}

// TestAcquireHandleWaitsForRelease: with the only handle pinned by a live
// connection, a second connection's request is served the moment the first
// connection closes — the release notification wakes the waiter instead of
// it sleep-polling (or giving up with StatusBusy).
func TestAcquireHandleWaitsForRelease(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 1}, Options{Exec: ExecConn})
	cl1 := dialT(t, s)
	if _, inserted, err := cl1.Insert(1, 42); err != nil || !inserted {
		t.Fatalf("pin conn: inserted=%v err=%v", inserted, err)
	}
	// The second connection's serveConn blocks in acquireHandle; its request
	// sits buffered until the handle frees.
	cl2 := dialT(t, s)
	if err := cl2.Send(Request{Op: OpGet, Key: 1}); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Flush(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let cl2's goroutine reach the wait
	cl1.Close()
	if r, err := cl2.Recv(); err != nil || r.Status != StatusOK || r.Result != 42 {
		t.Fatalf("resp after release = %+v, %v; want OK 42", r, err)
	}
}

// TestDeepBurstUncapped pushes a pipeline far deeper than the old 64-op
// batch cap through a default-options server: the whole burst flows through
// the sliding-window Exec in read-buffer-sized chunks.
func TestDeepBurstUncapped(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 12, Resizable: true}, Options{})
	cl := dialT(t, s)
	const n = 3000
	reqs := make([]Request, 0, 2*n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, Request{Op: OpInsert, Key: i, Value: i ^ 0xbeef})
	}
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, Request{Op: OpGet, Key: i})
	}
	resps := make([]Response, len(reqs))
	if err := cl.Do(reqs, resps); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if resps[i].Status != StatusOK {
			t.Fatalf("insert %d: %v", i, resps[i].Status)
		}
		if r := resps[n+i]; r.Status != StatusOK || r.Result != i^0xbeef {
			t.Fatalf("get %d = %+v", i, r)
		}
	}
}

func TestServerClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(core.MustNew(core.Config{Bins: 1 << 8}), Options{})
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if _, _, err := cl.Get(1); err == nil {
		t.Fatal("connection survived server Close")
	}
}
