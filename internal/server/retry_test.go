package server

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultconn"

	core "repro/internal/core"
)

// TestIsRetryable pins the classification table: transport shapes and
// ErrBusy are retryable, table-level and protocol refusals are terminal.
func TestIsRetryable(t *testing.T) {
	retryable := []error{
		io.EOF, io.ErrUnexpectedEOF, os.ErrDeadlineExceeded, net.ErrClosed,
		syscall.ECONNRESET, syscall.ECONNREFUSED, syscall.EPIPE,
		&net.OpError{Op: "read", Err: syscall.ECONNRESET},
		ErrBusy,
	}
	for _, err := range retryable {
		if !IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = false, want true", err)
		}
	}
	terminal := []error{
		nil, core.ErrExists, core.ErrFull, core.ErrWrongMode,
		core.ErrValueSize, core.ErrNamespace, core.ErrReservedKey,
		core.ErrShadow, ErrBadRequest, ErrUnknownTable, ErrBadVersion,
		ErrBadFrame, ErrFeature, errors.New("unclassified"),
	}
	for _, err := range terminal {
		if IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = true, want false", err)
		}
	}
}

// TestBackoffCappedAndJittered: the schedule grows exponentially from
// BaseDelay, caps at MaxDelay, and every delay sits in [d/2, d].
func TestBackoffCappedAndJittered(t *testing.T) {
	p := RetryPolicy{BaseDelay: 2 * time.Millisecond, MaxDelay: 16 * time.Millisecond}.norm()
	rng := uint64(7)
	want := []time.Duration{2, 4, 8, 16, 16, 16} // ms, pre-jitter
	for i, w := range want {
		d := p.backoff(i, &rng)
		hi := w * time.Millisecond
		if d < hi/2 || d > hi {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", i, d, hi/2, hi)
		}
	}
	// Same seed, same schedule.
	r1, r2 := uint64(42), uint64(42)
	for i := 0; i < 10; i++ {
		if a, b := p.backoff(i, &r1), p.backoff(i, &r2); a != b {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", i, a, b)
		}
	}
}

// startTestServer launches an in-process server and returns its address.
func startTestServer(t testing.TB) string {
	t.Helper()
	tbl := core.MustNew(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 64})
	s := New(tbl, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

// TestClientPipeFailsAllPendingOnBlackhole is the regression test for the
// completions-hang-forever bug: a peer that stops responding mid-window
// (faultconn blackhole) must NOT leave pending completions undelivered —
// every in-flight request gets the transport error, within the read
// deadline, and the failing call returns it.
func TestClientPipeFailsAllPendingOnBlackhole(t *testing.T) {
	addr := startTestServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Let the handshake response through, then swallow every response
	// byte: requests still reach the server, acks never come back.
	fc := faultconn.Wrap(raw, faultconn.Program{BlackholeAfterRead: HelloRespSize})
	cl, err := NewClientV2(fc, ClientOpts{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var completions []core.Completion
	p, err := cl.Pipe(core.PipeOpts{Window: 4, OnComplete: func(c core.Completion) {
		completions = append(completions, c)
	}})
	if err != nil {
		t.Fatal(err)
	}

	enqueued := 0
	var failErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			if err := p.Put(uint64(i), uint64(i)); err != nil {
				failErr = err
				return
			}
			enqueued++
		}
		if err := p.Flush(); err != nil {
			failErr = err
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pipe hung: completions never failed") // the old bug
	}

	if failErr == nil {
		t.Fatal("blackholed pipe reported success")
	}
	if !IsRetryable(failErr) {
		t.Fatalf("blackhole error %v not classified retryable", failErr)
	}
	// Every successfully enqueued request got exactly one completion, all
	// carrying the transport error, in enqueue order.
	if len(completions) != enqueued {
		t.Fatalf("%d completions for %d enqueued requests", len(completions), enqueued)
	}
	for i, c := range completions {
		if c.Err == nil {
			t.Fatalf("completion %d has nil Err", i)
		}
		if c.Key != uint64(i) {
			t.Fatalf("completion %d out of order: key %d", i, c.Key)
		}
	}
}

// TestClientPipeFailsPendingOnConnDrop: same contract when the conn dies
// outright (RST) rather than hanging — some completions succeed, the rest
// fail with the reset, none are lost.
func TestClientPipeFailsPendingOnConnDrop(t *testing.T) {
	addr := startTestServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver the handshake plus exactly 3 responses, then reset.
	fc := faultconn.Wrap(raw, faultconn.Program{
		DropAfterRead: int64(HelloRespSize + 3*RespSize),
		Reset:         true,
	})
	cl, err := NewClientV2(fc, ClientOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	okc, errc := 0, 0
	p, err := cl.Pipe(core.PipeOpts{Window: 4, OnComplete: func(c core.Completion) {
		if c.Err != nil {
			errc++
		} else {
			okc++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	enqueued := 0
	var lastErr error
	for i := 0; i < 32; i++ {
		if err := p.Put(uint64(i), 1); err != nil {
			lastErr = err
			break
		}
		enqueued++
	}
	if lastErr == nil {
		lastErr = p.Flush()
	}
	if lastErr == nil {
		t.Fatal("dropped conn reported success")
	}
	if okc != 3 {
		t.Fatalf("%d successful completions, want 3 (the responses delivered before the drop)", okc)
	}
	if okc+errc != enqueued {
		t.Fatalf("completions %d+%d != enqueued %d", okc, errc, enqueued)
	}
	if !errors.Is(lastErr, syscall.ECONNRESET) && !IsRetryable(lastErr) {
		t.Fatalf("drop error %v not transport-shaped", lastErr)
	}
}

// TestSyncRetryRedialsThroughServerSideDrop: the server side kills the
// first connection after one response; a retry-enabled client's next Get
// transparently redials and succeeds.
func TestSyncRetryRedialsThroughServerSideDrop(t *testing.T) {
	tbl := core.MustNew(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 64})
	s := New(tbl, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// First accepted conn dies after writing the handshake response plus
	// one fixed response; later conns are clean.
	fl := faultconn.WrapListener(ln, func(i int) faultconn.Program {
		if i == 0 {
			return faultconn.Program{DropAfterWrite: int64(HelloRespSize + RespSize), Reset: true}
		}
		return faultconn.Program{}
	})
	go s.Serve(fl)
	defer s.Close()

	cl, err := DialV2(ln.Addr().String(), ClientOpts{
		Retry: RetryPolicy{Max: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, _, err := cl.Insert(7, 70); err != nil {
		t.Fatalf("first op (served before the drop): %v", err)
	}
	// The server-side write of this op's response fails, killing conn 0;
	// the client must redial and retry — an Insert retry hits ErrExists
	// semantics (already applied), reported as inserted=false, which is
	// the documented at-least-once shape, OR it sees a clean miss if the
	// first apply never landed. A Get afterwards must succeed either way.
	cl.Insert(8, 80)
	if v, ok, err := cl.Get(7); err != nil || !ok || v != 70 {
		t.Fatalf("Get(7) after failover = (%d,%v,%v), want (70,true,nil)", v, ok, err)
	}
	if cl.Err() != nil {
		t.Fatalf("client still broken after successful redial: %v", cl.Err())
	}
}

// TestNoRetryWithoutPolicy: the zero policy preserves the old semantics —
// the transport error surfaces and the client stays broken.
func TestNoRetryWithoutPolicy(t *testing.T) {
	tbl := core.MustNew(core.Config{Bins: 1 << 10, MaxThreads: 64})
	s := New(tbl, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultconn.WrapListener(ln, func(i int) faultconn.Program {
		return faultconn.Program{DropAfterWrite: int64(HelloRespSize), Reset: true}
	})
	go s.Serve(fl)
	defer s.Close()

	cl, err := DialV2(ln.Addr().String(), ClientOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.Get(1); err == nil {
		t.Fatal("Get on dropped conn succeeded without retry policy")
	}
	if cl.Err() == nil {
		t.Fatal("client not marked broken")
	}
	if _, _, err := cl.Get(2); err == nil {
		t.Fatal("second Get healed without a retry policy")
	}
}
