package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	core "repro/internal/core"
)

// dialV2T dials the server with the v2 handshake.
func dialV2T(t testing.TB, s *Server, opts ClientOpts) *Client {
	t.Helper()
	cl, err := DialV2(s.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestV2RoundTripAllOps: the v1 fixed-frame op set works identically on a
// handshaken v2 connection.
func TestV2RoundTripAllOps(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true}, Options{})
	cl := dialV2T(t, s, ClientOpts{})
	if cl.Features()&FeatureKV == 0 {
		t.Fatal("server did not grant FeatureKV")
	}
	if _, inserted, err := cl.Insert(100, 7); err != nil || !inserted {
		t.Fatalf("Insert = inserted=%v err=%v", inserted, err)
	}
	if v, ok, err := cl.Get(100); err != nil || !ok || v != 7 {
		t.Fatalf("Get = (%d,%v,%v)", v, ok, err)
	}
	if prev, ok, err := cl.Put(100, 9); err != nil || !ok || prev != 7 {
		t.Fatalf("Put = (%d,%v,%v)", prev, ok, err)
	}
	if prev, ok, err := cl.Delete(100); err != nil || !ok || prev != 9 {
		t.Fatalf("Delete = (%d,%v,%v)", prev, ok, err)
	}
}

// TestV1AgainstV2Server: a raw v1 client (no handshake) against the
// default table of a server that also hosts named tables — the first-frame
// detection serves it unchanged.
func TestV1AgainstV2Server(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true}, Options{})
	if err := s.AddTable("other", core.MustNew(core.Config{Bins: 1 << 8, Resizable: true})); err != nil {
		t.Fatal(err)
	}
	cl := dialT(t, s) // v1 Dial
	if _, inserted, err := cl.Insert(1, 11); err != nil || !inserted {
		t.Fatalf("v1 insert: %v", err)
	}
	if v, ok, err := cl.Get(1); err != nil || !ok || v != 11 {
		t.Fatalf("v1 get = (%d,%v,%v)", v, ok, err)
	}
	// The write landed on the default table, not "other".
	if _, ok := s.Table("other").MustHandle().Get(1); ok {
		t.Fatal("v1 write visible on a named table")
	}
}

// TestTableSelector: two v2 connections on different named tables of one
// server process see disjoint keyspaces.
func TestTableSelector(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true}, Options{})
	if err := s.AddTable("users", core.MustNew(core.Config{Bins: 1 << 8, Resizable: true})); err != nil {
		t.Fatal(err)
	}
	def := dialV2T(t, s, ClientOpts{})
	usr := dialV2T(t, s, ClientOpts{Table: "users"})

	if _, _, err := def.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	if _, _, err := usr.Insert(5, 99); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := def.Get(5); !ok || v != 50 {
		t.Fatalf("default table Get = (%d,%v), want 50", v, ok)
	}
	if v, ok, _ := usr.Get(5); !ok || v != 99 {
		t.Fatalf("users table Get = (%d,%v), want 99", v, ok)
	}
}

// TestUnknownTable: the handshake reply carries StatusUnknownTable (the
// ErrUnknownTable sentinel client-side) and the server closes.
func TestUnknownTable(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 8}, Options{})
	_, err := DialV2(s.Addr().String(), ClientOpts{Table: "nope"})
	if !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("err = %v, want ErrUnknownTable", err)
	}
}

// TestBadVersion: requesting a version the server does not speak is
// refused with StatusBadVersion, and the reply names the version the
// server does speak.
func TestBadVersion(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 8}, Options{})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello, err := AppendHello(nil, Hello{Version: 99, Features: FeatureKV})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(hello); err != nil {
		t.Fatal(err)
	}
	var buf [HelloRespSize]byte
	if _, err := io.ReadFull(c, buf[:]); err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeHelloResp(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBadVersion || resp.Version != ProtocolV2 {
		t.Fatalf("resp = %+v, want BAD_VERSION granting v2", resp)
	}
	if !errors.Is(resp.Status.Err(), ErrBadVersion) {
		t.Fatalf("sentinel = %v", resp.Status.Err())
	}
	// Connection closed after the refusal.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf[:1]); err != io.EOF {
		t.Fatalf("read after refusal = %v, want EOF", err)
	}
}

// TestTruncatedHandshake: a handshake that announces a table name and then
// stops sending is cleanly dropped once the server gives up — no response,
// no panic, and the server keeps serving other connections.
func TestTruncatedHandshake(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 8, Resizable: true},
		Options{IdleTimeout: 50 * time.Millisecond})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Fixed prefix promising an 8-byte table name, then silence.
	if _, err := c.Write([]byte{HelloMagic, ProtocolV2, 0x01, 0x00, 8}); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var one [1]byte
	if _, err := c.Read(one[:]); err != io.EOF {
		t.Fatalf("read = %v, want EOF (clean close, no reply)", err)
	}
	// Server is still healthy.
	cl := dialV2T(t, s, ClientOpts{})
	if _, inserted, err := cl.Insert(1, 1); err != nil || !inserted {
		t.Fatalf("server unhealthy after truncated handshake: %v", err)
	}
}

// TestKVRoundTrip: the v2 KV surface against an Allocator-mode table —
// variable sizes, namespaces, big keys — and sentinel mapping for
// mode/namespace violations.
func TestKVRoundTrip(t *testing.T) {
	tbl := core.MustNew(core.Config{
		Mode: core.Allocator, Bins: 1 << 10, Resizable: true,
		VariableKV: true, Namespaces: true,
	})
	s := New(tbl, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln = ln
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	cl := dialV2T(t, s, ClientOpts{})

	if err := cl.InsertKV(1, []byte("id-1001"), []byte(`{"name":"ada"}`)); err != nil {
		t.Fatal(err)
	}
	// Same key bytes, different namespace: no conflict.
	if err := cl.InsertKV(2, []byte("id-1001"), []byte(`{"total":9900}`)); err != nil {
		t.Fatal(err)
	}
	// A big key with a 1 KiB value.
	bigKey := bytes.Repeat([]byte("k"), 128)
	bigVal := bytes.Repeat([]byte("v"), 1024)
	if err := cl.InsertKV(0, bigKey, bigVal); err != nil {
		t.Fatal(err)
	}

	if v, ok, err := cl.GetKV(1, []byte("id-1001")); err != nil || !ok || string(v) != `{"name":"ada"}` {
		t.Fatalf("GetKV ns1 = (%q,%v,%v)", v, ok, err)
	}
	if v, ok, err := cl.GetKV(2, []byte("id-1001")); err != nil || !ok || string(v) != `{"total":9900}` {
		t.Fatalf("GetKV ns2 = (%q,%v,%v)", v, ok, err)
	}
	if v, ok, err := cl.GetKV(0, bigKey); err != nil || !ok || !bytes.Equal(v, bigVal) {
		t.Fatalf("GetKV big = (%d bytes,%v,%v)", len(v), ok, err)
	}
	if _, ok, err := cl.GetKV(0, []byte("absent")); err != nil || ok {
		t.Fatalf("GetKV miss = (%v,%v)", ok, err)
	}

	// Duplicate insert → core.ErrExists across the wire.
	if err := cl.InsertKV(1, []byte("id-1001"), []byte("x")); !errors.Is(err, core.ErrExists) {
		t.Fatalf("dup InsertKV err = %v, want ErrExists", err)
	}
	// Namespace without Namespaces... this table has them; out-of-range
	// namespaces cannot be encoded (uint16 field is masked server-side by
	// checkKV: ns > MaxNamespace). 0xffff > 0xfff.
	if err := cl.InsertKV(0xffff, []byte("k"), []byte("v")); !errors.Is(err, core.ErrNamespace) {
		t.Fatalf("bad ns err = %v, want ErrNamespace", err)
	}

	if ok, err := cl.DeleteKV(1, []byte("id-1001")); err != nil || !ok {
		t.Fatalf("DeleteKV = (%v,%v)", ok, err)
	}
	if _, ok, _ := cl.GetKV(1, []byte("id-1001")); ok {
		t.Fatal("GetKV found a deleted key")
	}
	if ok, err := cl.DeleteKV(1, []byte("id-1001")); err != nil || ok {
		t.Fatalf("second DeleteKV = (%v,%v)", ok, err)
	}

	// Mutating fixed-frame ops on an Allocator table report WrongMode —
	// and, critically, do not execute: an inlined Insert would plant a raw
	// uint64 where the table expects a block reference, and the Delete
	// would then free that bogus reference and crash the server.
	if _, _, err := cl.Put(1, 2); !errors.Is(err, core.ErrWrongMode) {
		t.Fatalf("Put on allocator table err = %v, want ErrWrongMode", err)
	}
	if _, _, err := cl.Insert(7, 0xdeadbeef); !errors.Is(err, core.ErrWrongMode) {
		t.Fatalf("Insert on allocator table err = %v, want ErrWrongMode", err)
	}
	if _, _, err := cl.Delete(7); !errors.Is(err, core.ErrWrongMode) {
		t.Fatalf("Delete on allocator table err = %v, want ErrWrongMode", err)
	}
	// The connection and the KV surface survive the refusals.
	if v, ok, err := cl.GetKV(2, []byte("id-1001")); err != nil || !ok || string(v) != `{"total":9900}` {
		t.Fatalf("GetKV after WrongMode refusals = (%q,%v,%v)", v, ok, err)
	}
}

// TestKVWrongMode: KV frames against the default Inlined table map onto
// core.ErrWrongMode rather than panicking the server (GetKV panics on
// local API misuse; over the wire it must be a status).
func TestKVWrongMode(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 8, Resizable: true}, Options{})
	cl := dialV2T(t, s, ClientOpts{})
	if _, _, err := cl.GetKV(0, []byte("k")); !errors.Is(err, core.ErrWrongMode) {
		t.Fatalf("GetKV err = %v, want ErrWrongMode", err)
	}
	if err := cl.InsertKV(0, []byte("k"), []byte("v")); !errors.Is(err, core.ErrWrongMode) {
		t.Fatalf("InsertKV err = %v, want ErrWrongMode", err)
	}
	// The connection survives a WrongMode status (unlike BadRequest).
	if _, inserted, err := cl.Insert(3, 33); err != nil || !inserted {
		t.Fatalf("connection dead after WrongMode: %v", err)
	}
}

// TestKVInterleavedWithFixedFrames: KV and fixed frames pipelined on one
// connection answer strictly in request order.
func TestKVInterleavedWithFixedFrames(t *testing.T) {
	tbl := core.MustNew(core.Config{
		Mode: core.Allocator, Bins: 1 << 10, Resizable: true, VariableKV: true,
	})
	s := New(tbl, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln = ln
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	cl := dialV2T(t, s, ClientOpts{})

	// Pipeline: KV insert, fixed Get (refused with WrongMode on an
	// allocator table — it must still answer in order), KV get.
	order := make([]string, 0, 3)
	if err := cl.SendKV(KVRequest{Op: OpInsertKV, Key: []byte("a"), Value: []byte("AAAAAAAA")},
		func(r KVResponse) { order = append(order, "ins:"+r.Status.String()) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.GetAsync(1, func(r Response) { order = append(order, "get:"+r.Status.String()) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.SendKV(KVRequest{Op: OpGetKV, Key: []byte("a")},
		func(r KVResponse) { order = append(order, "kvget:"+string(r.Value)) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	want := []string{"ins:OK", "get:WRONG_MODE", "kvget:AAAAAAAA"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestKVConcurrentGetDelete: one connection streams GetKVs while another
// churns the same keys with insert/delete. On an EpochGC table (the
// dlht-server kv configuration) the reader's epoch pin keeps every value
// view stable while it is copied into the response — under -race this
// pins the absence of the get-vs-free race.
func TestKVConcurrentGetDelete(t *testing.T) {
	tbl := core.MustNew(core.Config{
		Mode: core.Allocator, Bins: 1 << 10, Resizable: true,
		VariableKV: true, EpochGC: true, MaxThreads: 8,
	})
	s := New(tbl, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln = ln
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })

	keys := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma"), []byte("delta")}
	val := bytes.Repeat([]byte("V"), 256)
	seed := dialV2T(t, s, ClientOpts{})
	for _, k := range keys {
		if err := seed.InsertKV(0, k, val); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 2)
	go func() {
		cl, err := DialV2(s.Addr().String(), ClientOpts{})
		if err != nil {
			done <- err
			return
		}
		defer cl.Close()
		for i := 0; i < 2000; i++ {
			v, ok, err := cl.GetKV(0, keys[i%len(keys)])
			if err != nil {
				done <- err
				return
			}
			if ok && len(v) != len(val) {
				done <- fmt.Errorf("torn value: %d bytes", len(v))
				return
			}
		}
		done <- nil
	}()
	go func() {
		cl, err := DialV2(s.Addr().String(), ClientOpts{})
		if err != nil {
			done <- err
			return
		}
		defer cl.Close()
		for i := 0; i < 2000; i++ {
			k := keys[i%len(keys)]
			if _, err := cl.DeleteKV(0, k); err != nil {
				done <- err
				return
			}
			if err := cl.InsertKV(0, k, val); err != nil && !errors.Is(err, core.ErrExists) {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestIdleTimeoutClosesStalledConn: with IdleTimeout set, a connection
// that handshakes and then goes silent is closed server-side; active
// connections are unaffected.
func TestIdleTimeoutClosesStalledConn(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 8, Resizable: true, MaxThreads: 8},
		Options{IdleTimeout: 50 * time.Millisecond})
	stalled := dialV2T(t, s, ClientOpts{})
	if _, inserted, err := stalled.Insert(1, 1); err != nil || !inserted {
		t.Fatal(err)
	}
	// Go silent; the server must hang up on us.
	deadline := time.Now().Add(5 * time.Second)
	var one [1]byte
	stalled.c.SetReadDeadline(deadline)
	if _, err := stalled.c.Read(one[:]); err == nil || errors.Is(err, net.ErrClosed) {
		t.Fatalf("stalled conn read = %v, want server-side close (EOF)", err)
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never closed the stalled connection")
	}
	// A fresh connection still works.
	cl := dialV2T(t, s, ClientOpts{})
	if v, ok, err := cl.Get(1); err != nil || !ok || v != 1 {
		t.Fatalf("Get after stall-close = (%d,%v,%v)", v, ok, err)
	}
}

// TestClientReadTimeout: a client with a read deadline gives up on a
// server that accepts but never answers.
func TestClientReadTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow input, never reply
				io.Copy(io.Discard, c)
			}(c)
		}
	}()
	_, err = DialV2(ln.Addr().String(), ClientOpts{ReadTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("handshake against a mute server succeeded")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
}

// TestSentinelErrorsAcrossBackends: the same errors.Is check passes for
// the same condition raised locally and over the wire (ErrFull on a full,
// non-resizable table).
func TestSentinelErrorsAcrossBackends(t *testing.T) {
	mkCfg := core.Config{Bins: 1, LinkRatio: 1, Resizable: false}

	// Local: fill the table until ErrFull.
	localFull := func() error {
		h := core.MustNew(mkCfg).MustHandle()
		for k := uint64(0); k < 1000; k++ {
			if _, err := h.Insert(k, k); err != nil {
				return err
			}
		}
		return nil
	}()
	if !errors.Is(localFull, core.ErrFull) {
		t.Fatalf("local err = %v, want ErrFull", localFull)
	}

	// Remote: the same condition through a client.
	s := startServer(t, mkCfg, Options{})
	cl := dialV2T(t, s, ClientOpts{})
	var remoteFull error
	for k := uint64(0); k < 1000 && remoteFull == nil; k++ {
		_, _, remoteFull = cl.Insert(k, k)
	}
	if !errors.Is(remoteFull, core.ErrFull) {
		t.Fatalf("remote err = %v, want ErrFull", remoteFull)
	}
}

// TestBusyKVShaped: a v2 connection refused for handle exhaustion whose
// first request is a KV frame receives a KV-shaped BUSY response, keeping
// the response-matching rule intact.
func TestBusyKVShaped(t *testing.T) {
	s := startServer(t, core.Config{Mode: core.Allocator, Bins: 1 << 8, VariableKV: true, MaxThreads: 1}, Options{Exec: ExecConn})
	// Pin the only handle.
	pin := dialV2T(t, s, ClientOpts{})
	if err := pin.InsertKV(0, []byte("pin"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	cl := dialV2T(t, s, ClientOpts{})
	_, _, err := cl.GetKV(0, []byte("k"))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
}
