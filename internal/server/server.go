package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	dlht "repro"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch caps how many pending requests one connection contributes to
	// a single Exec batch. 0 (the default) means no cap: bursts are bounded
	// only by ReadBuffer, and the table's sliding prefetch window chunks
	// arbitrarily deep batches without thrashing the cache. Set a positive
	// value to bound the latency of the burst's first response instead.
	MaxBatch int
	// ReadBuffer and WriteBuffer size the per-connection bufio buffers
	// (default 64 KiB each). The read buffer bounds how much of a pipeline
	// burst a single syscall can pick up, and therefore the largest batch
	// one Exec call sees when MaxBatch is 0.
	ReadBuffer, WriteBuffer int
}

func (o *Options) setDefaults() {
	if o.MaxBatch < 0 {
		o.MaxBatch = 0
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.ReadBuffer < ReqSize {
		// Peek(ReqSize) must fit the buffer.
		o.ReadBuffer = ReqSize
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 64 << 10
	}
}

// Server serves a DLHT table over TCP. Each accepted connection is owned by
// one goroutine holding one dlht.Handle (the paper's one-handle-per-thread
// contract); the handle is recycled when the connection closes.
type Server struct {
	tbl  *dlht.Table
	opts Options

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	// handleFree is closed and replaced each time a connection returns its
	// table handle, waking every acquireHandle waiting out ErrTooManyHandles
	// (broadcast semantics; a 1-buffered channel would drop wakeups under
	// reconnect storms).
	handleMu   sync.Mutex
	handleFree chan struct{}

	wg sync.WaitGroup
}

// New creates a Server for tbl. The table must be in Inlined mode.
func New(tbl *dlht.Table, opts Options) *Server {
	opts.setDefaults()
	return &Server{
		tbl:        tbl,
		opts:       opts,
		conns:      make(map[net.Conn]struct{}),
		handleFree: make(chan struct{}),
	}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, closes every live connection and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handleWait bounds how long a new connection waits for a handle to be
// released before refusing with StatusBusy.
const handleWait = 200 * time.Millisecond

// acquireHandle takes a table handle. On exhaustion it blocks until a
// closing connection releases one (releaseHandle broadcasts) instead of
// sleep-polling, so reconnect storms under handle churn are admitted the
// moment a handle frees rather than after a fixed poll interval.
func (s *Server) acquireHandle() (*dlht.Handle, error) {
	h, err := s.tbl.Handle()
	if err == nil {
		return h, nil
	}
	timeout := time.NewTimer(handleWait)
	defer timeout.Stop()
	for {
		// Capture the current broadcast channel BEFORE retrying: a release
		// landing between the retry and the wait then shows up as a closed
		// channel instead of a lost wakeup.
		s.handleMu.Lock()
		ch := s.handleFree
		s.handleMu.Unlock()
		if h, err = s.tbl.Handle(); err == nil {
			return h, nil
		}
		select {
		case <-ch:
		case <-timeout.C:
			return nil, err
		}
	}
}

// releaseHandle returns a connection's handle to the table and wakes every
// acquireHandle waiter.
func (s *Server) releaseHandle(h *dlht.Handle) {
	h.Close()
	s.handleMu.Lock()
	close(s.handleFree)
	s.handleFree = make(chan struct{})
	s.handleMu.Unlock()
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveConn runs the connection's decode→Exec→encode loop. The loop blocks
// only on the first frame of a burst; every further frame already buffered
// joins the same batch, decoded zero-copy out of the bufio window, so a
// deep client pipeline is executed under one sliding-window prefetch pass
// and answered with one flush.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(c)
	defer c.Close()

	h, err := s.acquireHandle()
	if err != nil {
		// Handle exhaustion: consume the connection's first request so the
		// refusal obeys the i-th-response-answers-i-th-request rule, then
		// answer it with StatusBusy and close.
		br := bufio.NewReaderSize(c, ReqSize)
		if _, err := br.Peek(ReqSize); err != nil {
			return
		}
		var buf [RespSize]byte
		c.Write(AppendResponse(buf[:0], Response{Status: StatusBusy}))
		return
	}
	defer s.releaseHandle(h)

	br := bufio.NewReaderSize(c, s.opts.ReadBuffer)
	bw := bufio.NewWriterSize(c, s.opts.WriteBuffer)
	// Start small and let append grow toward the connection's actual burst
	// depth: preallocating the ReadBuffer/ReqSize worst case would cost
	// ~150 KiB per connection whether or not the client ever pipelines.
	ops := make([]dlht.Op, 0, 64)
	out := make([]byte, 0, 64*RespSize)

	for {
		// Block for the head of the next burst.
		if _, err := br.Peek(ReqSize); err != nil {
			return
		}
		// The whole buffered burst is decoded zero-copy from one Peek
		// window; Discard advances past exactly the frames consumed.
		nframes := br.Buffered() / ReqSize
		if s.opts.MaxBatch > 0 && nframes > s.opts.MaxBatch {
			nframes = s.opts.MaxBatch
		}
		burst, err := br.Peek(nframes * ReqSize)
		if err != nil {
			return // cannot fail: fully buffered
		}
		ops = ops[:0]
		badFrame := false
		for off := 0; off < len(burst); off += ReqSize {
			req, err := DecodeRequest(burst[off : off+ReqSize])
			if err != nil {
				badFrame = true
				break
			}
			ops = append(ops, reqToOp(req))
		}
		br.Discard(nframes * ReqSize)
		if badFrame {
			// Answer the decodable prefix, then the error frame, and give
			// up on the connection: byte alignment is no longer trusted.
			s.execAndReply(h, ops, &out, bw)
			bw.Write(AppendResponse(out[:0], Response{Status: StatusBadRequest}))
			bw.Flush()
			return
		}
		s.execAndReply(h, ops, &out, bw)
		// Flush only when about to block; responses for back-to-back bursts
		// share a syscall.
		if br.Buffered() < ReqSize {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// execAndReply executes the batch in order and buffers one response frame
// per op.
func (s *Server) execAndReply(h *dlht.Handle, ops []dlht.Op, out *[]byte, bw *bufio.Writer) {
	if len(ops) == 0 {
		return
	}
	h.Exec(ops, false)
	*out = (*out)[:0]
	for i := range ops {
		*out = AppendResponse(*out, opToResp(&ops[i]))
	}
	bw.Write(*out)
}

// reqToOp maps a wire request onto a batch op.
func reqToOp(r Request) dlht.Op {
	var k dlht.OpKind
	switch r.Op {
	case OpGet:
		k = dlht.OpGet
	case OpPut:
		k = dlht.OpPut
	case OpInsert:
		k = dlht.OpInsert
	case OpDelete:
		k = dlht.OpDelete
	}
	return dlht.Op{Kind: k, Key: r.Key, Value: r.Value}
}

// opToResp maps an executed op's outcome onto a wire response. The batch
// engine stores its sentinel errors unwrapped, so plain comparisons suffice
// — an errors.Is chain would walk six wrap chains per failed op on the hot
// path.
func opToResp(op *dlht.Op) Response {
	if op.OK {
		return Response{Status: StatusOK, Result: op.Result}
	}
	switch op.Err {
	case nil:
		// Get/Put/Delete miss.
		return Response{Status: StatusNotFound}
	case dlht.ErrExists:
		return Response{Status: StatusExists, Result: op.Result}
	case dlht.ErrShadow:
		return Response{Status: StatusShadow}
	case dlht.ErrFull:
		return Response{Status: StatusFull}
	case dlht.ErrReservedKey:
		return Response{Status: StatusReservedKey}
	case dlht.ErrWrongMode:
		return Response{Status: StatusWrongMode}
	}
	return Response{Status: StatusBadRequest}
}
