package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	core "repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expiry"
	"repro/internal/wal"
)

// ExecMode selects how a Server executes decoded requests.
type ExecMode int

const (
	// ExecShared (the default) runs requests on the shared sharded
	// executor: connection readers decode frames and enqueue them into
	// per-core executor shards, each owning one table handle and a
	// long-lived pipeline, so batching depth — and with it the prefetch
	// overlap of §3.3 — comes from connection count rather than from how
	// deeply any single connection pipelines. Each connection is bound to
	// one shard, preserving per-connection execution order.
	ExecShared ExecMode = iota
	// ExecPartitioned is the executor with key-hash routing: every
	// operation on a key serializes through one shard (per-key program
	// order, the sharded-Cluster contract), and with power-of-two bin
	// counts shards touch disjoint bins (EREW). Cross-key requests from
	// one connection may execute out of order; responses are still
	// delivered in request order.
	ExecPartitioned
	// ExecConn is the goroutine-per-connection escape hatch: each
	// connection owns a table handle and executes its own requests, as
	// before the executor existed. Batching then only comes from
	// per-connection pipelining. Kept for A/B comparison.
	ExecConn
)

// String returns the mode name.
func (m ExecMode) String() string {
	switch m {
	case ExecShared:
		return "shared"
	case ExecPartitioned:
		return "partitioned"
	case ExecConn:
		return "conn"
	}
	return "unknown"
}

// ParseExecMode maps a mode name (the -exec flag vocabulary: "shared",
// "partitioned", "conn") onto its ExecMode.
func ParseExecMode(name string) (ExecMode, bool) {
	switch name {
	case "shared":
		return ExecShared, true
	case "partitioned":
		return ExecPartitioned, true
	case "conn":
		return ExecConn, true
	}
	return 0, false
}

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch bounds how many requests are enqueued into a connection's
	// pipeline before the server forces the in-flight tail to complete and
	// flushes the accumulated responses to the wire. 0 (the default) means
	// no bound: completions stream continuously as requests fall a prefetch
	// window behind the decode cursor, and the writer is flushed when the
	// connection runs out of buffered input or the response buffer crosses
	// its flush threshold. Set a positive value to force a full
	// drain-and-flush cycle every MaxBatch requests instead.
	MaxBatch int
	// ReadBuffer and WriteBuffer size the per-connection bufio buffers
	// (default 64 KiB each). The read buffer bounds how much of a pipeline
	// burst a single syscall can pick up; the write buffer sets the
	// streaming-flush threshold — accumulated responses are pushed to the
	// wire once they exceed half of it, so a deep burst's first responses
	// reach the client while its tail is still being decoded.
	ReadBuffer, WriteBuffer int
	// IdleTimeout bounds how long a connection may sit without completing
	// a read or write before the server closes it, so a stalled or
	// vanished peer cannot wedge a connection goroutine (and its table
	// handle) forever. It is applied as a read deadline while waiting for
	// the next frame and as a write deadline around response flushes.
	// 0 (the default) disables it.
	IdleTimeout time.Duration
	// Exec selects the execution model: ExecShared (default),
	// ExecPartitioned, or the goroutine-per-connection ExecConn. In the
	// executor modes MaxBatch does not apply (responses always stream as
	// completions fire).
	Exec ExecMode
	// ExecShards is the number of executor shards per served table in the
	// executor modes (0 = GOMAXPROCS).
	ExecShards int
	// RESPTable names the table the RESP2 listener serves (see ServeRESP);
	// the default is DefaultTable. The table must be in Allocator (kv)
	// mode.
	RESPTable string
}

func (o *Options) setDefaults() {
	if o.MaxBatch < 0 {
		o.MaxBatch = 0
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.ReadBuffer < ReqSize {
		// Peek(ReqSize) must fit the buffer.
		o.ReadBuffer = ReqSize
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 64 << 10
	}
}

// DefaultTable is the name v1 connections (which cannot select a table)
// and handshakes with an empty table selector resolve to.
const DefaultTable = ""

// Server serves one or more named DLHT tables over TCP. Each accepted
// connection is owned by one goroutine holding one handle on its selected
// table (the paper's one-handle-per-thread contract); the handle is
// recycled when the connection closes. v1 connections operate on the
// default table; v2 connections pick a table in the handshake.
type Server struct {
	opts Options

	mu      sync.Mutex
	tables  map[string]*core.Table
	walLogs map[*core.Table]*wal.Log // durable tables' redo logs
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool

	// handleFree is closed and replaced each time a connection returns its
	// table handle, waking every acquireHandle waiting out ErrTooManyHandles
	// (broadcast semantics; a 1-buffered channel would drop wakeups under
	// reconnect storms).
	handleMu   sync.Mutex
	handleFree chan struct{}

	// execs holds the per-table shared executors (executor modes only),
	// created lazily when the first connection selects a table and drained
	// by Close after the connection goroutines exit. Guarded by mu.
	execs map[*core.Table]*exec.Executor

	// RESP front-end state (resp.go): extra listeners, the per-table TTL
	// indexes shared by RESP connections, and the sweepers the server owns
	// for RAM tables (durable tables' sweepers belong to their wal.Store).
	// Guarded by mu.
	respLns  []net.Listener
	expiries map[*core.Table]*expiry.Index
	sweepers []respSweeper

	wg sync.WaitGroup
}

// respSweeper pairs a server-owned TTL sweeper with the dedicated table
// handle it deletes through, so Close can stop one and release the other.
type respSweeper struct {
	sw *expiry.Sweeper
	h  *core.Handle
}

// New creates a Server serving tbl as its default table. Register further
// named tables with AddTable before calling Serve.
func New(tbl *core.Table, opts Options) *Server {
	opts.setDefaults()
	return &Server{
		opts:       opts,
		tables:     map[string]*core.Table{DefaultTable: tbl},
		walLogs:    make(map[*core.Table]*wal.Log),
		conns:      make(map[net.Conn]struct{}),
		handleFree: make(chan struct{}),
		execs:      make(map[*core.Table]*exec.Executor),
		expiries:   make(map[*core.Table]*expiry.Index),
	}
}

// AddTable registers tbl under name, making it selectable by a v2
// handshake. Registering DefaultTable replaces the table New installed.
func (s *Server) AddTable(name string, tbl *core.Table) error {
	if len(name) > MaxTableName {
		return fmt.Errorf("%w: table name %d bytes (max %d)", ErrBadFrame, len(name), MaxTableName)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[name] = tbl
	return nil
}

// AddDurable registers ds's table under name (DefaultTable replaces the
// table New installed) and pairs it with ds's redo log, so every serving
// path — connection-owned handles and executor shards alike — appends
// effective mutations and withholds response bytes from the socket until a
// group commit covers them. The caller keeps ownership of ds: close it
// after the server's Close returns.
func (s *Server) AddDurable(name string, ds *wal.Store) error {
	if err := s.AddTable(name, ds.Table()); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.walLogs[ds.Table()] = ds.Log()
	if ix := ds.Expiry(); ix != nil {
		// The store-owned TTL index is the one wired into WAL replay and
		// snapshots; RESP connections must share it, not a server-created
		// sibling.
		s.expiries[ds.Table()] = ix
	}
	return nil
}

// walFor returns the redo log paired with tbl, or nil for RAM tables.
func (s *Server) walFor(tbl *core.Table) *wal.Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walLogs[tbl]
}

// Table returns the table registered under name, or nil.
func (s *Server) Table(name string) *core.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tables[name]
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, closes every live connection, waits for the
// connection goroutines (readers and response writers) to drain, then
// flushes and joins the executor shards. No request completion fires and
// no table handle stays acquired after Close returns.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	respLns := s.respLns
	s.respLns = nil
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, rl := range respLns {
		rl.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	execs := s.execs
	s.execs = nil
	sweepers := s.sweepers
	s.sweepers = nil
	s.mu.Unlock()
	for _, ex := range execs {
		ex.Close()
	}
	// Stop server-owned TTL sweepers after every connection is gone, then
	// release their dedicated handles.
	for _, rs := range sweepers {
		rs.sw.Stop()
		rs.h.Close()
	}
	return err
}

// executorFor returns (creating on first use) the shared executor serving
// tbl.
func (s *Server) executorFor(tbl *core.Table) (*exec.Executor, error) {
	mode := exec.Shared
	if s.opts.Exec == ExecPartitioned {
		mode = exec.Partitioned
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.execs == nil {
		return nil, ErrServerClosed
	}
	if ex := s.execs[tbl]; ex != nil {
		return ex, nil
	}
	var w exec.WAL
	if l := s.walLogs[tbl]; l != nil {
		w = l // assign only when non-nil: a typed-nil WAL would pass != nil checks
	}
	ex, err := exec.New(tbl, exec.Options{Shards: s.opts.ExecShards, Mode: mode, WAL: w})
	if err != nil {
		return nil, err
	}
	s.execs[tbl] = ex
	return ex, nil
}

// handleWait bounds how long a new connection waits for a handle to be
// released before refusing with StatusBusy.
const handleWait = 200 * time.Millisecond

// acquireHandle takes a handle on tbl. On exhaustion it blocks until a
// closing connection releases one (releaseHandle broadcasts) instead of
// sleep-polling, so reconnect storms under handle churn are admitted the
// moment a handle frees rather than after a fixed poll interval.
func (s *Server) acquireHandle(tbl *core.Table) (*core.Handle, error) {
	h, err := tbl.Handle()
	if err == nil {
		return h, nil
	}
	timeout := time.NewTimer(handleWait)
	defer timeout.Stop()
	for {
		// Capture the current broadcast channel BEFORE retrying: a release
		// landing between the retry and the wait then shows up as a closed
		// channel instead of a lost wakeup.
		s.handleMu.Lock()
		ch := s.handleFree
		s.handleMu.Unlock()
		if h, err = tbl.Handle(); err == nil {
			return h, nil
		}
		select {
		case <-ch:
		case <-timeout.C:
			return nil, err
		}
	}
}

// releaseHandle returns a connection's handle to its table and wakes every
// acquireHandle waiter.
func (s *Server) releaseHandle(h *core.Handle) {
	h.Close()
	s.handleMu.Lock()
	close(s.handleFree)
	s.handleFree = make(chan struct{})
	s.handleMu.Unlock()
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// kvScratchRetain bounds the KV staging buffer a connection keeps between
// requests; kvEpochEvery (a power of two) is how many KV requests a
// connection serves between epoch refreshes on EpochGC tables.
const (
	kvScratchRetain = 1 << 20
	kvEpochEvery    = 1 << 10
)

// testFrameDecoded, when non-nil, is invoked after each request frame is
// decoded and enqueued. Test-only: the streaming test blocks a burst's
// last frame here to prove earlier responses already reached the wire.
var testFrameDecoded func(Request)

// armIdle arms the connection's read deadline so a peer that stops sending
// mid-frame (or never sends) cannot pin the goroutine. No-op without
// Options.IdleTimeout.
func (s *Server) armIdle(c net.Conn) {
	if s.opts.IdleTimeout > 0 {
		c.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	}
}

// armWrite arms the write deadline before a response flush, the mirror
// guard for a peer that stops reading.
func (s *Server) armWrite(c net.Conn) {
	if s.opts.IdleTimeout > 0 {
		c.SetWriteDeadline(time.Now().Add(s.opts.IdleTimeout))
	}
}

// serveConn classifies the connection by its first byte — HelloMagic opens
// a v2 handshake, anything else is a v1 client's first opcode — selects
// the table, acquires its handle, and hands off to the per-version request
// loop.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(c)
	defer c.Close()

	br := bufio.NewReaderSize(c, s.opts.ReadBuffer)
	s.armIdle(c)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	tbl := s.Table(DefaultTable)
	v2 := false
	var features uint16
	if first[0] == HelloMagic {
		hello, err := readHello(br)
		if err != nil {
			return // truncated or unreadable handshake: nothing sane to answer
		}
		resp := HelloResp{Version: ProtocolV2, Status: StatusOK}
		if hello.Version != ProtocolV2 {
			resp.Status = StatusBadVersion
		} else if tbl = s.Table(hello.Table); tbl == nil {
			resp.Status = StatusUnknownTable
		} else {
			resp.Features = hello.Features & supportedFeatures
		}
		s.armWrite(c)
		var buf [HelloRespSize]byte
		if _, err := c.Write(AppendHelloResp(buf[:0], resp)); err != nil || resp.Status != StatusOK {
			return
		}
		v2 = true
		features = resp.Features
	}

	// Reshard-feature connections always get the conn-owned loop: a scan
	// cursor and the versioned reads around it are connection state an
	// executor session has nowhere to keep.
	if s.opts.Exec != ExecConn && features&FeatureReshard == 0 {
		s.serveExec(c, br, tbl, v2, features)
		return
	}

	h, err := s.acquireHandle(tbl)
	if err != nil {
		s.refuseBusy(c, br, v2)
		return
	}
	defer s.releaseHandle(h)

	wlog := s.walFor(tbl)
	if v2 {
		s.serveV2(c, br, tbl, h, features, wlog)
	} else {
		s.serveV1(c, br, h, wlog)
	}
}

// refuseBusy consumes the connection's first request so the refusal obeys
// the i-th-response-answers-i-th-request rule, then answers it with
// StatusBusy — in the shape the request asked for — and gives up on the
// connection.
func (s *Server) refuseBusy(c net.Conn, br *bufio.Reader, v2 bool) {
	op, err := br.Peek(1)
	if err != nil {
		return
	}
	s.armWrite(c)
	var buf [KVRespHdrSize]byte
	if v2 && isKVOp(OpCode(op[0])) {
		c.Write(AppendKVResponse(buf[:0], KVResponse{Status: StatusBusy}))
	} else {
		c.Write(AppendResponse(buf[:0], Response{Status: StatusBusy}))
	}
}

// readHello reads the variable-length client handshake off the buffered
// reader.
func readHello(br *bufio.Reader) (Hello, error) {
	var fixed [HelloFixedSize]byte
	if _, err := io.ReadFull(br, fixed[:]); err != nil {
		return Hello{}, err
	}
	name := make([]byte, int(fixed[4]))
	if _, err := io.ReadFull(br, name); err != nil {
		return Hello{}, err
	}
	h, _, err := DecodeHello(append(fixed[:], name...))
	return h, err
}

// connState carries the per-connection streaming machinery shared by the
// v1 and v2 loops: the response writer, the pipeline whose completions
// append response frames, and the sticky write error.
type connState struct {
	s       *Server
	c       net.Conn
	bw      *bufio.Writer
	p       *core.Pipeline
	log     *wal.Log // durable table's redo log; nil for RAM tables
	needSeq uint64   // highest log sequence buffered responses depend on
	wErr    error
	flushAt int
	// sinceDrain counts enqueues toward Options.MaxBatch.
	sinceDrain int
}

// newConnState builds the writer and pipeline for a connection. The
// pipeline's completion callback appends the matching response frame
// straight into the write buffer, so replies for a deep burst go out while
// its tail is still being decoded; responses are pushed to the wire once
// they fill half the write buffer, bounding how long a completed request's
// reply can sit behind a still-decoding burst. On a durable table each
// effective mutation is appended to the redo log at completion and flush
// waits out the covering group commit first, so no acknowledgement reaches
// the socket before its record is fsynced.
func (s *Server) newConnState(c net.Conn, h *core.Handle, log *wal.Log) *connState {
	cs := &connState{s: s, c: c, bw: bufio.NewWriterSize(c, s.opts.WriteBuffer), log: log}
	cs.flushAt = s.opts.WriteBuffer / 2
	if cs.flushAt < RespSize {
		cs.flushAt = RespSize
	}
	cs.p = h.Pipeline(core.PipelineOpts{OnComplete: func(op *core.Op) {
		if cs.wErr != nil {
			return
		}
		if cs.log != nil {
			seq, err := cs.log.LogOp(op)
			if err != nil {
				cs.wErr = err
				return
			}
			if seq > cs.needSeq {
				cs.needSeq = seq
			}
		}
		if _, err := cs.bw.Write(AppendResponse(cs.bw.AvailableBuffer(), opToResp(op))); err != nil {
			cs.wErr = err
			return
		}
		if cs.bw.Buffered() >= cs.flushAt {
			cs.flush()
		}
	}})
	return cs
}

// syncPending waits out the group commit covering every buffered response
// (no-op for RAM tables). Called before any byte may reach the socket.
func (cs *connState) syncPending() {
	if cs.log == nil || cs.wErr != nil {
		return
	}
	if err := cs.log.SyncWait(cs.needSeq); err != nil {
		cs.wErr = err
		return
	}
	cs.needSeq = 0
}

// flush pushes buffered responses to the wire under the write deadline,
// after their covering group commit.
//
//dlht:ackgated
func (cs *connState) flush() {
	cs.syncPending()
	if cs.wErr != nil {
		return
	}
	cs.s.armWrite(cs.c)
	cs.wErr = cs.bw.Flush()
}

// enqueue admits one decoded request into the pipeline, honoring the
// Options.MaxBatch drain bound.
func (cs *connState) enqueue(req Request) {
	cs.p.Enqueue(reqToOp(req))
	if testFrameDecoded != nil {
		testFrameDecoded(req)
	}
	if mb := cs.s.opts.MaxBatch; mb > 0 {
		if cs.sinceDrain++; cs.sinceDrain >= mb {
			cs.sinceDrain = 0
			cs.p.Flush()
			cs.flush()
		}
	}
}

// drainIfIdle completes the in-flight tail and flushes when the read
// buffer holds no complete further frame — i.e. when the loop is about to
// block. Responses for back-to-back bursts share a syscall and the window
// stays primed while input keeps arriving.
func (cs *connState) drainIfIdle(br *bufio.Reader, need int) {
	if br.Buffered() < need {
		cs.p.Flush()
		cs.flush()
	}
}

// badRequest answers the decodable prefix, then the error frame, and gives
// up on the connection: byte alignment is no longer trusted.
func (cs *connState) badRequest() {
	cs.p.Flush()
	cs.bw.Write(AppendResponse(cs.bw.AvailableBuffer(), Response{Status: StatusBadRequest}))
	cs.flush()
}

// serveV1 streams a v1 connection through its pipeline: fixed 17-byte
// frames only, decoded zero-copy out of the bufio window a whole buffered
// burst at a time. Each decoded frame is enqueued immediately — no
// burst-assembly buffer — and the pipeline's completion callback appends
// the matching response frame straight into the write buffer, so replies
// for a deep burst go out while its tail is still being decoded. The
// pipeline is flushed only when the connection runs out of buffered input
// (or every Options.MaxBatch requests); between back-to-back bursts it
// stays primed, so the prefetch window carries over what used to be batch
// boundaries. The loop blocks only on the first frame of a burst; every
// further frame already buffered is decoded zero-copy out of the bufio
// window.
func (s *Server) serveV1(c net.Conn, br *bufio.Reader, h *core.Handle, wlog *wal.Log) {
	cs := s.newConnState(c, h, wlog)
	defer cs.p.Close()

	for {
		// Block for the head of the next burst. Everything decoded so far
		// has been completed and flushed (see drainIfIdle), so waiting here
		// never holds responses hostage.
		s.armIdle(c)
		if _, err := br.Peek(ReqSize); err != nil {
			return
		}
		// Decode the whole buffered burst zero-copy from one Peek window;
		// Discard advances past exactly the frames consumed.
		nframes := br.Buffered() / ReqSize
		burst, err := br.Peek(nframes * ReqSize)
		if err != nil {
			return // cannot fail: fully buffered
		}
		for off := 0; off < len(burst); off += ReqSize {
			req, err := DecodeRequest(burst[off : off+ReqSize])
			if err != nil {
				br.Discard(off)
				cs.badRequest()
				return
			}
			cs.enqueue(req)
		}
		br.Discard(nframes * ReqSize)
		cs.drainIfIdle(br, ReqSize)
		if cs.wErr != nil {
			return
		}
	}
}

// serveV2 streams a v2 connection: runs of fixed frames take the same
// zero-copy burst path as v1 and flow through the pipeline; KV frames
// first flush the pipeline — responses must stay in request order, and KV
// requests execute synchronously — then execute against the handle's KV
// surface and append their variable-length response.
//
//dlht:ackgated
func (s *Server) serveV2(c net.Conn, br *bufio.Reader, tbl *core.Table, h *core.Handle, features uint16, wlog *wal.Log) {
	cs := s.newConnState(c, h, wlog)
	defer cs.p.Close()

	var scratch []byte // KV payload staging, reused across requests
	var kvOps int      // served KV requests, for the epoch-advance cadence
	for {
		s.armIdle(c)
		head, err := br.Peek(1)
		if err != nil {
			return
		}
		switch op := OpCode(head[0]); {
		case op < opCodeEnd:
			// A run of fixed frames: decode as much of the buffered burst
			// as stays fixed-framed, stopping at the first KV opcode.
			// Before blocking for a partially buffered frame, complete and
			// flush what's pending — the peer may be waiting for those
			// responses before it sends the rest.
			cs.drainIfIdle(br, ReqSize)
			if cs.wErr != nil {
				return
			}
			if _, err := br.Peek(ReqSize); err != nil {
				return
			}
			nframes := br.Buffered() / ReqSize
			if nframes == 0 {
				nframes = 1
			}
			burst, err := br.Peek(nframes * ReqSize)
			if err != nil {
				return
			}
			consumed := 0
			for off := 0; off+ReqSize <= len(burst); off += ReqSize {
				if b0 := OpCode(burst[off]); b0 >= opCodeEnd {
					break // KV or garbage: outer loop re-dispatches
				}
				req, _ := DecodeRequest(burst[off : off+ReqSize])
				cs.enqueue(req)
				consumed = off + ReqSize
			}
			br.Discard(consumed)
		case isKVOp(op) && features&FeatureKV != 0:
			// Order barrier: all pipelined fixed-frame responses precede
			// this KV response on the wire. Completing them now also means
			// any blocking read below never holds finished replies hostage.
			cs.p.Flush()
			if br.Buffered() < KVReqHdrSize {
				cs.flush()
				if cs.wErr != nil {
					return
				}
			}
			ns, klen, vlen, err := readKVHeader(br)
			if errors.Is(err, errMalformedKVHeader) {
				cs.badRequest()
				return
			}
			if err != nil {
				return
			}
			need := klen + vlen
			if cap(scratch) < need {
				scratch = make([]byte, need)
			}
			if br.Buffered() < need {
				cs.flush()
				if cs.wErr != nil {
					return
				}
			}
			if _, err := io.ReadFull(br, scratch[:need]); err != nil {
				return
			}
			req := KVRequest{Op: op, NS: ns, Key: scratch[:klen]}
			if vlen > 0 {
				req.Value = scratch[klen : klen+vlen]
			}
			if cs.wErr == nil {
				resp := execKV(tbl, h, req)
				if cs.log != nil {
					// Log the effective mutation and raise the sync bar;
					// then sync everything buffered BEFORE writing, because
					// a response larger than the write buffer's free space
					// makes bufio push older (possibly unsynced) bytes to
					// the socket mid-Write.
					if resp.Status == StatusOK && op != OpGetKV {
						var seq uint64
						var lerr error
						if op == OpInsertKV {
							seq, lerr = cs.log.LogKVInsert(req.NS, req.Key, req.Value)
						} else {
							seq, lerr = cs.log.LogKVDelete(req.NS, req.Key)
						}
						if lerr != nil {
							cs.wErr = lerr
							return
						}
						if seq > cs.needSeq {
							cs.needSeq = seq
						}
					}
					cs.syncPending()
					if cs.wErr != nil {
						return
					}
				}
				if _, err := cs.bw.Write(AppendKVResponse(cs.bw.AvailableBuffer(), resp)); err != nil {
					cs.wErr = err
				} else if cs.bw.Buffered() >= cs.flushAt {
					cs.flush()
				}
			}
			// Don't let one outsized payload pin a connection-lifetime
			// buffer; anything above the retain bound is per-request.
			if cap(scratch) > kvScratchRetain {
				scratch = nil
			}
			// Periodically refresh this handle's epoch (no-op without
			// EpochGC) so blocks deleted by other connections reclaim.
			// Safe here: the response bytes — including any GetKV value
			// view — were copied into the write buffer above, and advancing
			// is what keeps a view returned *before* the copy from being
			// freed mid-copy by a concurrent DeleteKV (served kv tables
			// enable EpochGC for exactly this reason).
			if kvOps++; kvOps&(kvEpochEvery-1) == 0 {
				h.AdvanceEpoch()
			}
		case isReshardOp(op) && features&FeatureReshard != 0:
			// Same order barrier as the KV path: pipelined fixed-frame
			// responses precede this reply, and nothing finished waits
			// behind the blocking reads below.
			cs.p.Flush()
			if cs.wErr == nil {
				s.execReshard(cs, br, tbl, h, op)
			}
			if cs.wErr != nil {
				return
			}
		default:
			cs.badRequest()
			return
		}
		cs.drainIfIdle(br, 1)
		if cs.wErr != nil {
			return
		}
	}
}

// execReshard reads, executes and answers one reshard frame (OpGetVer or
// OpScan). Both are read-only — nothing is logged — but older pipelined
// mutations may still sit unsynced in the write buffer, so the covering
// group commit is awaited before any byte of this reply can push them to
// the socket.
//
//dlht:ackgated
func (s *Server) execReshard(cs *connState, br *bufio.Reader, tbl *core.Table, h *core.Handle, op OpCode) {
	need := GetVerReqSize
	if op == OpScan {
		need = ScanReqSize
	}
	if br.Buffered() < need {
		cs.flush()
		if cs.wErr != nil {
			return
		}
	}
	var hdr [ScanReqSize]byte
	if _, err := io.ReadFull(br, hdr[:need]); err != nil {
		cs.wErr = err
		return
	}
	switch op {
	case OpGetVer:
		key := binary.LittleEndian.Uint64(hdr[1:9])
		// Version-bracketed read (the localStore.GetVer contract): equal
		// brackets mean the value is the one the version counts.
		ver := h.VersionOf(key)
		var v uint64
		var ok bool
		for i := 0; i < 4; i++ {
			v, ok = h.Get(key)
			after := h.VersionOf(key)
			if after == ver {
				break
			}
			ver = after
		}
		st := StatusOK
		if !ok {
			st, v = StatusNotFound, 0
		}
		var buf [GetVerRespSize]byte
		buf[0] = byte(st)
		binary.LittleEndian.PutUint64(buf[1:9], v)
		binary.LittleEndian.PutUint64(buf[9:17], ver)
		cs.syncPending()
		if cs.wErr != nil {
			return
		}
		if _, err := cs.bw.Write(buf[:]); err != nil {
			cs.wErr = err
			return
		}
	case OpScan:
		origBins := binary.LittleEndian.Uint64(hdr[1:9])
		startBin := binary.LittleEndian.Uint64(hdr[9:17])
		maxEnts := int(binary.LittleEndian.Uint32(hdr[17:21]))
		if maxEnts <= 0 || maxEnts > MaxScanBatch {
			maxEnts = MaxScanBatch
		}
		if tbl.Mode() == core.Allocator {
			// Value words are block refs; not scannable over this frame.
			var buf [ScanRespHdrSize]byte
			buf[0] = byte(StatusWrongMode)
			cs.syncPending()
			if cs.wErr != nil {
				return
			}
			if _, err := cs.bw.Write(buf[:]); err != nil {
				cs.wErr = err
			}
			break
		}
		// The cap clamps the request; the reply may overshoot it by the
		// last bin group (ScanStep consumes whole old bins — truncating
		// here would lose the overflow, the cursor is already past it).
		ents, newOrig, next, done := h.ScanStep(origBins, startBin, maxEnts)
		out := cs.bw.AvailableBuffer()
		out = append(out, byte(StatusOK))
		out = binary.LittleEndian.AppendUint64(out, newOrig)
		out = binary.LittleEndian.AppendUint64(out, next)
		d := byte(0)
		if done {
			d = 1
		}
		out = append(out, d)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(ents)))
		for _, e := range ents {
			out = binary.LittleEndian.AppendUint64(out, e.Key)
			out = binary.LittleEndian.AppendUint64(out, e.Value)
		}
		cs.syncPending()
		if cs.wErr != nil {
			return
		}
		if _, err := cs.bw.Write(out); err != nil {
			cs.wErr = err
			return
		}
	}
	if cs.bw.Buffered() >= cs.flushAt {
		cs.flush()
	}
}

// errMalformedKVHeader is readKVHeader's it-will-never-parse verdict, as
// opposed to an I/O error; the caller answers StatusBadRequest and gives
// up on the connection's byte alignment.
var errMalformedKVHeader = errors.New("server: malformed KV request header")

// readKVHeader reads and validates one KV request header off the buffered
// reader, returning its fields with the header bytes consumed. It is the
// single place the KV header layout is decoded on the serve side, shared
// by the connection-owned and executor-mode loops.
func readKVHeader(br *bufio.Reader) (ns uint16, klen, vlen int, err error) {
	hdr, err := br.Peek(KVReqHdrSize)
	if err != nil {
		return 0, 0, 0, err
	}
	// Header-level validation via the codec: with only the header in
	// hand the sole acceptable outcome is "frame incomplete".
	if _, _, err := DecodeKVRequest(hdr); err != nil && !errors.Is(err, ErrShortFrame) {
		return 0, 0, 0, errMalformedKVHeader
	}
	ns = binary.LittleEndian.Uint16(hdr[1:3])
	klen = int(binary.LittleEndian.Uint16(hdr[3:5]))
	vlen = int(binary.LittleEndian.Uint32(hdr[5:9]))
	br.Discard(KVReqHdrSize)
	return ns, klen, vlen, nil
}

// execKV runs one KV request against the connection's handle. Values
// returned by GetKV are views into the table; they are appended into the
// write buffer before the next request can invalidate them, and the
// connection handle's epoch pin keeps a concurrent DeleteKV from another
// connection from freeing the block mid-copy — which is why Allocator
// tables served over the network should enable Config.EpochGC (dlht-server
// kv tables do). Without it the core contract applies: a view is only
// stable until the key is deleted. CheckKV gates every request first: the
// local KV surface panics on mode and namespace misuse (API-misuse
// contract), but over the wire those are just statuses.
func execKV(tbl *core.Table, h *core.Handle, req KVRequest) KVResponse {
	if err := tbl.CheckKV(req.NS, req.Key, req.Value, req.Op == OpInsertKV); err != nil {
		return KVResponse{Status: errToStatus(err)}
	}
	switch req.Op {
	case OpGetKV:
		v, ok := h.GetKV(req.NS, req.Key)
		if !ok {
			return KVResponse{Status: StatusNotFound}
		}
		return KVResponse{Status: StatusOK, Value: v}
	case OpInsertKV:
		return KVResponse{Status: errToStatus(h.InsertKV(req.NS, req.Key, req.Value))}
	case OpDeleteKV:
		if !h.DeleteKV(req.NS, req.Key) {
			return KVResponse{Status: StatusNotFound}
		}
		return KVResponse{Status: StatusOK}
	}
	return KVResponse{Status: StatusBadRequest}
}

// ---------------------------------------------------------------------------
// Executor-mode serving
// ---------------------------------------------------------------------------

// serveExec runs a connection over the shared sharded executor: this
// goroutine becomes the connection reader (decode frames, submit them into
// executor shards) and a second goroutine drains the session's in-order
// completions into the socket. Responses still hit the wire in request
// order — the session's reorder ring restores it — but execution overlaps
// across connections inside the shard pipelines, which is where the
// many-small-clients batching win comes from.
func (s *Server) serveExec(c net.Conn, br *bufio.Reader, tbl *core.Table, v2 bool, features uint16) {
	ex, err := s.executorFor(tbl)
	if err != nil {
		s.refuseBusy(c, br, v2)
		return
	}
	sess, err := ex.NewSession()
	if err != nil {
		s.refuseBusy(c, br, v2)
		return
	}
	done := make(chan struct{})
	wlog := s.walFor(tbl)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(done)
		s.connWriter(c, sess, wlog)
	}()
	if v2 {
		s.execReadV2(c, br, sess, features)
	} else {
		s.execReadV1(c, br, sess)
	}
	sess.FinishSubmit()
	// Wait for the writer to deliver every submitted request's response
	// (or its write error) before serveConn closes the connection.
	<-done
}

// connWriter drains a session's in-order completions into the connection.
// Responses accumulate in the write buffer and are pushed out when they
// cross the streaming-flush threshold or when no further completion is
// immediately ready (the drain-before-blocking discipline of the
// per-connection pipeline loop). The first write error closes the
// connection — so the reader stops feeding a peer that will never see
// another response, matching the conn-mode loops' exit-on-write-error —
// after which the writer keeps consuming completions without writing
// (the reader may be blocked on the session's in-flight bound) until the
// session drains.
//
// On a durable table (wlog non-nil) each completion carries the redo-log
// sequence its record got from the executor shard; the writer tracks the
// highest buffered one and waits out the covering group commit before any
// flush, so acknowledgements never reach the socket ahead of their fsync.
//
//dlht:ackgated
func (s *Server) connWriter(c net.Conn, sess *exec.Session, wlog *wal.Log) {
	bw := bufio.NewWriterSize(c, s.opts.WriteBuffer)
	flushAt := s.opts.WriteBuffer / 2
	if flushAt < RespSize {
		flushAt = RespSize
	}
	var wErr error
	var needSeq uint64
	fail := func(err error) {
		wErr = err
		c.Close() // unblocks and errors the reader
	}
	flush := func() {
		if wErr == nil && bw.Buffered() > 0 {
			if wlog != nil {
				if err := wlog.SyncWait(needSeq); err != nil {
					fail(err)
					return
				}
				needSeq = 0
			}
			s.armWrite(c)
			if err := bw.Flush(); err != nil {
				fail(err)
			}
		}
	}
	buf := make([]exec.Done, 0, 256)
	for {
		run, ok := sess.Await(buf[:0], flush)
		if !ok {
			break
		}
		buf = run[:0]
		for i := range run {
			if wErr != nil {
				continue
			}
			d := &run[i]
			if wlog != nil {
				if d.WALSeq > needSeq {
					needSeq = d.WALSeq
				}
				// A response larger than the buffer's free space makes
				// bufio push older bytes to the socket mid-Write; sync
				// first so nothing unsynced can leak that way.
				if d.KV != nil && bw.Available() < KVRespHdrSize+len(d.KV.Out) {
					flush()
					if wErr != nil {
						continue
					}
				}
			}
			var err error
			if d.KV != nil {
				_, err = bw.Write(AppendKVResponse(bw.AvailableBuffer(), kvDoneToResp(d.KV)))
			} else {
				_, err = bw.Write(AppendResponse(bw.AvailableBuffer(), opToResp(&d.Op)))
			}
			if err != nil {
				fail(err)
			} else if bw.Buffered() >= flushAt {
				flush()
			}
		}
	}
	flush()
}

// execReadV1 is the executor-mode v1 reader: the same zero-copy burst
// decode as serveV1, but whole decoded bursts are submitted to the
// executor (one batched hand-off, not a lock per frame) instead of a
// connection-owned pipeline. Blocking for input never delays responses —
// the writer goroutine flushes independently.
func (s *Server) execReadV1(c net.Conn, br *bufio.Reader, sess *exec.Session) {
	var ops []core.Op // decoded burst staging, reused across bursts
	for {
		s.armIdle(c)
		if _, err := br.Peek(ReqSize); err != nil {
			return
		}
		nframes := br.Buffered() / ReqSize
		burst, err := br.Peek(nframes * ReqSize)
		if err != nil {
			return
		}
		ops = ops[:0]
		bad := false
		decoded := 0
		for off := 0; off < len(burst); off += ReqSize {
			req, err := DecodeRequest(burst[off : off+ReqSize])
			if err != nil {
				bad = true
				break
			}
			ops = append(ops, reqToOp(req))
			decoded = off + ReqSize
		}
		if err := sess.SubmitBatch(ops); err != nil {
			return
		}
		if testFrameDecoded != nil {
			for _, op := range ops {
				testFrameDecoded(opToReq(op))
			}
		}
		if bad {
			br.Discard(decoded)
			sess.Fail(ErrBadRequest)
			return
		}
		br.Discard(nframes * ReqSize)
	}
}

// execReadV2 is the executor-mode v2 reader: fixed-frame runs take the v1
// burst path; KV frames are copied out of the read buffer (the executor
// owns the bytes until completion) and submitted alongside. Unlike the
// connection-owned loop, a KV request needs no pipeline barrier — the
// session's reorder ring restores response order, so KV and fixed ops
// overlap freely.
func (s *Server) execReadV2(c net.Conn, br *bufio.Reader, sess *exec.Session, features uint16) {
	var ops []core.Op // decoded fixed-frame run staging, reused
	for {
		s.armIdle(c)
		head, err := br.Peek(1)
		if err != nil {
			return
		}
		switch op := OpCode(head[0]); {
		case op < opCodeEnd:
			if _, err := br.Peek(ReqSize); err != nil {
				return
			}
			nframes := br.Buffered() / ReqSize
			if nframes == 0 {
				nframes = 1
			}
			burst, err := br.Peek(nframes * ReqSize)
			if err != nil {
				return
			}
			consumed := 0
			ops = ops[:0]
			for off := 0; off+ReqSize <= len(burst); off += ReqSize {
				if b0 := OpCode(burst[off]); b0 >= opCodeEnd {
					break // KV or garbage: outer loop re-dispatches
				}
				req, _ := DecodeRequest(burst[off : off+ReqSize])
				ops = append(ops, reqToOp(req))
				consumed = off + ReqSize
			}
			if err := sess.SubmitBatch(ops); err != nil {
				return
			}
			if testFrameDecoded != nil {
				for _, op := range ops {
					testFrameDecoded(opToReq(op))
				}
			}
			br.Discard(consumed)
		case isKVOp(op) && features&FeatureKV != 0:
			ns, klen, vlen, err := readKVHeader(br)
			if errors.Is(err, errMalformedKVHeader) {
				sess.Fail(ErrBadRequest)
				return
			}
			if err != nil {
				return
			}
			// The executor holds the key/value bytes until the op
			// completes, so each in-flight KV op owns its buffer.
			payload := make([]byte, klen+vlen)
			if _, err := io.ReadFull(br, payload); err != nil {
				return
			}
			kv := &exec.KVOp{Kind: kvKindOf(op), NS: ns, Key: payload[:klen]}
			if vlen > 0 {
				kv.Value = payload[klen:]
			}
			if err := sess.SubmitKV(kv); err != nil {
				return
			}
		default:
			sess.Fail(ErrBadRequest)
			return
		}
	}
}

// kvKindOf maps a KV opcode onto the executor's op kind.
func kvKindOf(op OpCode) exec.KVKind {
	switch op {
	case OpInsertKV:
		return exec.KVInsert
	case OpDeleteKV:
		return exec.KVDelete
	}
	return exec.KVGet
}

// kvDoneToResp maps a completed executor KV op onto its wire response,
// with the same status mapping as the connection-owned execKV path.
func kvDoneToResp(kv *exec.KVOp) KVResponse {
	if kv.Err != nil {
		return KVResponse{Status: errToStatus(kv.Err)}
	}
	if !kv.OK {
		return KVResponse{Status: StatusNotFound}
	}
	return KVResponse{Status: StatusOK, Value: kv.Out}
}

// opToReq maps a batch op back onto its wire request; used to feed the
// test-only decode hook from the batched submit path.
func opToReq(op core.Op) Request {
	var o OpCode
	switch op.Kind {
	case core.OpGet:
		o = OpGet
	case core.OpPut:
		o = OpPut
	case core.OpInsert:
		o = OpInsert
	case core.OpDelete:
		o = OpDelete
	}
	return Request{Op: o, Key: op.Key, Value: op.Value}
}

// reqToOp maps a wire request onto a batch op.
func reqToOp(r Request) core.Op {
	var k core.OpKind
	switch r.Op {
	case OpGet:
		k = core.OpGet
	case OpPut:
		k = core.OpPut
	case OpInsert:
		k = core.OpInsert
	case OpDelete:
		k = core.OpDelete
	}
	return core.Op{Kind: k, Key: r.Key, Value: r.Value}
}

// opToResp maps an executed op's outcome onto a wire response. The batch
// engine stores its sentinel errors unwrapped, so plain comparisons suffice
// — an errors.Is chain would walk six wrap chains per failed op on the hot
// path.
func opToResp(op *core.Op) Response {
	if op.OK {
		return Response{Status: StatusOK, Result: op.Result}
	}
	// dlht:ok:sentinelcmp — op.Err holds unwrapped core sentinels by
	// contract (the table never wraps); see the function comment.
	switch op.Err {
	case nil:
		// Get/Put/Delete miss.
		return Response{Status: StatusNotFound}
	case core.ErrExists:
		return Response{Status: StatusExists, Result: op.Result}
	case core.ErrShadow:
		return Response{Status: StatusShadow}
	case core.ErrFull:
		return Response{Status: StatusFull}
	case core.ErrReservedKey:
		return Response{Status: StatusReservedKey}
	case core.ErrWrongMode:
		return Response{Status: StatusWrongMode}
	}
	return Response{Status: StatusBadRequest}
}
