package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	dlht "repro"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch bounds how many requests are enqueued into a connection's
	// pipeline before the server forces the in-flight tail to complete and
	// flushes the accumulated responses to the wire. 0 (the default) means
	// no bound: completions stream continuously as requests fall a prefetch
	// window behind the decode cursor, and the writer is flushed when the
	// connection runs out of buffered input or the response buffer crosses
	// its flush threshold. Set a positive value to force a full
	// drain-and-flush cycle every MaxBatch requests instead.
	MaxBatch int
	// ReadBuffer and WriteBuffer size the per-connection bufio buffers
	// (default 64 KiB each). The read buffer bounds how much of a pipeline
	// burst a single syscall can pick up; the write buffer sets the
	// streaming-flush threshold — accumulated responses are pushed to the
	// wire once they exceed half of it, so a deep burst's first responses
	// reach the client while its tail is still being decoded.
	ReadBuffer, WriteBuffer int
}

func (o *Options) setDefaults() {
	if o.MaxBatch < 0 {
		o.MaxBatch = 0
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.ReadBuffer < ReqSize {
		// Peek(ReqSize) must fit the buffer.
		o.ReadBuffer = ReqSize
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 64 << 10
	}
}

// Server serves a DLHT table over TCP. Each accepted connection is owned by
// one goroutine holding one dlht.Handle (the paper's one-handle-per-thread
// contract); the handle is recycled when the connection closes.
type Server struct {
	tbl  *dlht.Table
	opts Options

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	// handleFree is closed and replaced each time a connection returns its
	// table handle, waking every acquireHandle waiting out ErrTooManyHandles
	// (broadcast semantics; a 1-buffered channel would drop wakeups under
	// reconnect storms).
	handleMu   sync.Mutex
	handleFree chan struct{}

	wg sync.WaitGroup
}

// New creates a Server for tbl. The table must be in Inlined mode.
func New(tbl *dlht.Table, opts Options) *Server {
	opts.setDefaults()
	return &Server{
		tbl:        tbl,
		opts:       opts,
		conns:      make(map[net.Conn]struct{}),
		handleFree: make(chan struct{}),
	}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, closes every live connection and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// handleWait bounds how long a new connection waits for a handle to be
// released before refusing with StatusBusy.
const handleWait = 200 * time.Millisecond

// acquireHandle takes a table handle. On exhaustion it blocks until a
// closing connection releases one (releaseHandle broadcasts) instead of
// sleep-polling, so reconnect storms under handle churn are admitted the
// moment a handle frees rather than after a fixed poll interval.
func (s *Server) acquireHandle() (*dlht.Handle, error) {
	h, err := s.tbl.Handle()
	if err == nil {
		return h, nil
	}
	timeout := time.NewTimer(handleWait)
	defer timeout.Stop()
	for {
		// Capture the current broadcast channel BEFORE retrying: a release
		// landing between the retry and the wait then shows up as a closed
		// channel instead of a lost wakeup.
		s.handleMu.Lock()
		ch := s.handleFree
		s.handleMu.Unlock()
		if h, err = s.tbl.Handle(); err == nil {
			return h, nil
		}
		select {
		case <-ch:
		case <-timeout.C:
			return nil, err
		}
	}
}

// releaseHandle returns a connection's handle to the table and wakes every
// acquireHandle waiter.
func (s *Server) releaseHandle(h *dlht.Handle) {
	h.Close()
	s.handleMu.Lock()
	close(s.handleFree)
	s.handleFree = make(chan struct{})
	s.handleMu.Unlock()
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// testFrameDecoded, when non-nil, is invoked after each request frame is
// decoded and enqueued. Test-only: the streaming test blocks a burst's
// last frame here to prove earlier responses already reached the wire.
var testFrameDecoded func(Request)

// serveConn streams the connection through a per-connection Pipeline.
// Each decoded frame is enqueued immediately — no burst-assembly buffer —
// and the pipeline's completion callback appends the matching response
// frame straight into the write buffer, so replies for a deep burst go out
// while its tail is still being decoded. The pipeline is flushed only when
// the connection runs out of buffered input (or every Options.MaxBatch
// requests); between back-to-back bursts it stays primed, so the prefetch
// window carries over what used to be batch boundaries. The loop blocks
// only on the first frame of a burst; every further frame already buffered
// is decoded zero-copy out of the bufio window.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(c)
	defer c.Close()

	h, err := s.acquireHandle()
	if err != nil {
		// Handle exhaustion: consume the connection's first request so the
		// refusal obeys the i-th-response-answers-i-th-request rule, then
		// answer it with StatusBusy and close.
		br := bufio.NewReaderSize(c, ReqSize)
		if _, err := br.Peek(ReqSize); err != nil {
			return
		}
		var buf [RespSize]byte
		c.Write(AppendResponse(buf[:0], Response{Status: StatusBusy}))
		return
	}
	defer s.releaseHandle(h)

	br := bufio.NewReaderSize(c, s.opts.ReadBuffer)
	bw := bufio.NewWriterSize(c, s.opts.WriteBuffer)
	// Responses are pushed to the wire once they fill half the write
	// buffer, bounding how long a completed request's reply can sit behind
	// a still-decoding burst; bufio's own flush-on-full is the backstop.
	flushAt := s.opts.WriteBuffer / 2
	if flushAt < RespSize {
		flushAt = RespSize
	}
	var wErr error // sticky write error; unwound at the next flush point
	p := h.Pipeline(dlht.PipelineOpts{OnComplete: func(op *dlht.Op) {
		if wErr != nil {
			return
		}
		if _, err := bw.Write(AppendResponse(bw.AvailableBuffer(), opToResp(op))); err != nil {
			wErr = err
			return
		}
		if bw.Buffered() >= flushAt {
			wErr = bw.Flush()
		}
	}})
	defer p.Close()

	sinceDrain := 0
	for {
		// Block for the head of the next burst. Everything decoded so far
		// has been completed and flushed (see below), so waiting here never
		// holds responses hostage.
		if _, err := br.Peek(ReqSize); err != nil {
			return
		}
		// Decode the whole buffered burst zero-copy from one Peek window;
		// Discard advances past exactly the frames consumed.
		nframes := br.Buffered() / ReqSize
		burst, err := br.Peek(nframes * ReqSize)
		if err != nil {
			return // cannot fail: fully buffered
		}
		for off := 0; off < len(burst); off += ReqSize {
			req, err := DecodeRequest(burst[off : off+ReqSize])
			if err != nil {
				// Answer the decodable prefix, then the error frame, and
				// give up on the connection: byte alignment is no longer
				// trusted.
				br.Discard(off)
				p.Flush()
				bw.Write(AppendResponse(bw.AvailableBuffer(), Response{Status: StatusBadRequest}))
				bw.Flush()
				return
			}
			p.Enqueue(reqToOp(req))
			if testFrameDecoded != nil {
				testFrameDecoded(req)
			}
			if s.opts.MaxBatch > 0 {
				if sinceDrain++; sinceDrain >= s.opts.MaxBatch {
					sinceDrain = 0
					p.Flush()
					if wErr == nil {
						wErr = bw.Flush()
					}
				}
			}
		}
		br.Discard(nframes * ReqSize)
		// Complete the in-flight tail and flush only when about to block;
		// responses for back-to-back bursts share a syscall and the window
		// stays primed while input keeps arriving.
		if br.Buffered() < ReqSize {
			p.Flush()
			if wErr == nil {
				wErr = bw.Flush()
			}
		}
		if wErr != nil {
			return
		}
	}
}

// reqToOp maps a wire request onto a batch op.
func reqToOp(r Request) dlht.Op {
	var k dlht.OpKind
	switch r.Op {
	case OpGet:
		k = dlht.OpGet
	case OpPut:
		k = dlht.OpPut
	case OpInsert:
		k = dlht.OpInsert
	case OpDelete:
		k = dlht.OpDelete
	}
	return dlht.Op{Kind: k, Key: r.Key, Value: r.Value}
}

// opToResp maps an executed op's outcome onto a wire response. The batch
// engine stores its sentinel errors unwrapped, so plain comparisons suffice
// — an errors.Is chain would walk six wrap chains per failed op on the hot
// path.
func opToResp(op *dlht.Op) Response {
	if op.OK {
		return Response{Status: StatusOK, Result: op.Result}
	}
	switch op.Err {
	case nil:
		// Get/Put/Delete miss.
		return Response{Status: StatusNotFound}
	case dlht.ErrExists:
		return Response{Status: StatusExists, Result: op.Result}
	case dlht.ErrShadow:
		return Response{Status: StatusShadow}
	case dlht.ErrFull:
		return Response{Status: StatusFull}
	case dlht.ErrReservedKey:
		return Response{Status: StatusReservedKey}
	case dlht.ErrWrongMode:
		return Response{Status: StatusWrongMode}
	}
	return Response{Status: StatusBadRequest}
}
