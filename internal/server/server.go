package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	dlht "repro"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch caps how many pending requests one connection contributes to
	// a single Exec batch (default 64). Larger batches amortize prefetching
	// further but delay the first response of the burst.
	MaxBatch int
	// ReadBuffer and WriteBuffer size the per-connection bufio buffers
	// (default 64 KiB each). The read buffer bounds how much of a pipeline
	// burst a single syscall can pick up.
	ReadBuffer, WriteBuffer int
}

func (o *Options) setDefaults() {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 64 << 10
	}
}

// Server serves a DLHT table over TCP. Each accepted connection is owned by
// one goroutine holding one dlht.Handle (the paper's one-handle-per-thread
// contract); the handle is recycled when the connection closes.
type Server struct {
	tbl  *dlht.Table
	opts Options

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// New creates a Server for tbl. The table must be in Inlined mode.
func New(tbl *dlht.Table, opts Options) *Server {
	opts.setDefaults()
	return &Server{tbl: tbl, opts: opts, conns: make(map[net.Conn]struct{})}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("server: closed")

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is ErrServerClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Addr returns the listener's address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener, closes every live connection and waits for the
// connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// acquireHandle takes a table handle, briefly retrying to ride out handle
// churn: a closing connection releases its handle asynchronously, so a
// reconnect can transiently observe exhaustion.
func (s *Server) acquireHandle() (*dlht.Handle, error) {
	h, err := s.tbl.Handle()
	if err == nil {
		return h, nil
	}
	for i := 0; i < 200; i++ {
		time.Sleep(time.Millisecond)
		if h, err = s.tbl.Handle(); err == nil {
			return h, nil
		}
	}
	return nil, err
}

func (s *Server) removeConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serveConn runs the connection's decode→Exec→encode loop. The loop blocks
// only on the first frame of a burst; every further frame already buffered
// joins the same batch, so a deep client pipeline is executed under one
// prefetch pass and answered with one flush.
func (s *Server) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer s.removeConn(c)
	defer c.Close()

	h, err := s.acquireHandle()
	if err != nil {
		// Handle exhaustion: consume the connection's first request so the
		// refusal obeys the i-th-response-answers-i-th-request rule, then
		// answer it with StatusBusy and close.
		frame := make([]byte, ReqSize)
		if _, err := io.ReadFull(c, frame); err != nil {
			return
		}
		c.Write(AppendResponse(nil, Response{Status: StatusBusy}))
		return
	}
	defer h.Close()

	br := bufio.NewReaderSize(c, s.opts.ReadBuffer)
	bw := bufio.NewWriterSize(c, s.opts.WriteBuffer)
	frame := make([]byte, ReqSize)
	ops := make([]dlht.Op, 0, s.opts.MaxBatch)
	out := make([]byte, 0, s.opts.MaxBatch*RespSize)

	for {
		// Block for the head of the next burst.
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			bw.Write(AppendResponse(nil, Response{Status: StatusBadRequest}))
			bw.Flush()
			return
		}
		ops = append(ops[:0], reqToOp(req))
		// Drain the rest of the burst without blocking.
		for len(ops) < s.opts.MaxBatch && br.Buffered() >= ReqSize {
			io.ReadFull(br, frame) // cannot fail: fully buffered
			req, err := DecodeRequest(frame)
			if err != nil {
				// Answer the decodable prefix, then the error frame.
				s.execAndReply(h, ops, &out, bw)
				bw.Write(AppendResponse(nil, Response{Status: StatusBadRequest}))
				bw.Flush()
				return
			}
			ops = append(ops, reqToOp(req))
		}
		s.execAndReply(h, ops, &out, bw)
		// Flush only when about to block; responses for back-to-back bursts
		// share a syscall.
		if br.Buffered() < ReqSize {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// execAndReply executes the batch in order and buffers one response frame
// per op.
func (s *Server) execAndReply(h *dlht.Handle, ops []dlht.Op, out *[]byte, bw *bufio.Writer) {
	h.Exec(ops, false)
	*out = (*out)[:0]
	for i := range ops {
		*out = AppendResponse(*out, opToResp(&ops[i]))
	}
	bw.Write(*out)
}

// reqToOp maps a wire request onto a batch op.
func reqToOp(r Request) dlht.Op {
	var k dlht.OpKind
	switch r.Op {
	case OpGet:
		k = dlht.OpGet
	case OpPut:
		k = dlht.OpPut
	case OpInsert:
		k = dlht.OpInsert
	case OpDelete:
		k = dlht.OpDelete
	}
	return dlht.Op{Kind: k, Key: r.Key, Value: r.Value}
}

// opToResp maps an executed op's outcome onto a wire response.
func opToResp(op *dlht.Op) Response {
	if op.OK {
		return Response{Status: StatusOK, Result: op.Result}
	}
	switch {
	case op.Err == nil:
		// Get/Put/Delete miss.
		return Response{Status: StatusNotFound}
	case errors.Is(op.Err, dlht.ErrExists):
		return Response{Status: StatusExists, Result: op.Result}
	case errors.Is(op.Err, dlht.ErrShadow):
		return Response{Status: StatusShadow}
	case errors.Is(op.Err, dlht.ErrFull):
		return Response{Status: StatusFull}
	case errors.Is(op.Err, dlht.ErrReservedKey):
		return Response{Status: StatusReservedKey}
	case errors.Is(op.Err, dlht.ErrWrongMode):
		return Response{Status: StatusWrongMode}
	}
	return Response{Status: StatusBadRequest}
}
