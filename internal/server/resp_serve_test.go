package server

import (
	"net"
	"strings"
	"testing"
	"time"

	core "repro/internal/core"
	"repro/internal/resp"
	"repro/internal/wal"
)

// startRESPServer runs a server with both listeners live: the v1/v2
// binary one and a RESP2 one, returning the RESP listener's address.
func startRESPServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln = ln
	go s.Serve(ln)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ServeRESP(rln)
	return rln.Addr().String()
}

func dialRESP(t *testing.T, addr string) *resp.Client {
	t.Helper()
	cl, err := resp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func respDo(t *testing.T, cl *resp.Client, args ...string) resp.Reply {
	t.Helper()
	r, err := cl.Do(args...)
	if err != nil {
		t.Fatalf("%v: %v", args, err)
	}
	return r
}

// TestRESPBesideBinaryAcrossModes: the RESP listener and the binary
// listener serve the same table concurrently in every exec mode — writes
// from one protocol are reads on the other.
func TestRESPBesideBinaryAcrossModes(t *testing.T) {
	for _, mode := range []ExecMode{ExecShared, ExecPartitioned, ExecConn} {
		t.Run(mode.String(), func(t *testing.T) {
			tbl := core.MustNew(core.Config{
				Mode: core.Allocator, Bins: 1 << 10, Resizable: true,
				VariableKV: true, Namespaces: true, EpochGC: true,
				MaxThreads: 64,
			})
			s := New(tbl, Options{Exec: mode})
			addr := startRESPServer(t, s)
			t.Cleanup(func() { s.Close() })

			rc := dialRESP(t, addr)
			bc := dialV2T(t, s, ClientOpts{})

			// RESP write → binary read.
			if r := respDo(t, rc, "SET", "shared", "from-resp"); r.Text() != "OK" {
				t.Fatalf("SET = %+v", r)
			}
			if v, ok, err := bc.GetKV(0, []byte("shared")); err != nil || !ok || string(v) != "from-resp" {
				t.Fatalf("binary GetKV = (%q,%v,%v)", v, ok, err)
			}
			// Binary write → RESP read.
			if err := bc.InsertKV(0, []byte("binkey"), []byte("from-binary")); err != nil {
				t.Fatal(err)
			}
			if r := respDo(t, rc, "GET", "binkey"); string(r.Bulk) != "from-binary" {
				t.Fatalf("RESP GET = %+v", r)
			}
			// SELECT maps onto the binary protocol's namespaces.
			if r := respDo(t, rc, "SELECT", "3"); r.Text() != "OK" {
				t.Fatalf("SELECT = %+v", r)
			}
			if r := respDo(t, rc, "SET", "nsk", "ns3"); r.Text() != "OK" {
				t.Fatalf("SET ns3 = %+v", r)
			}
			if v, ok, err := bc.GetKV(3, []byte("nsk")); err != nil || !ok || string(v) != "ns3" {
				t.Fatalf("binary GetKV ns3 = (%q,%v,%v)", v, ok, err)
			}
			// Binary delete → RESP miss.
			if ok, err := bc.DeleteKV(0, []byte("shared")); err != nil || !ok {
				t.Fatalf("binary DeleteKV = (%v,%v)", ok, err)
			}
			if r := respDo(t, rc, "GET", "shared"); !r.Null {
				t.Fatalf("GET after binary delete = %+v", r)
			}
		})
	}
}

// TestRESPDurableTable: Options.RESPTable selects a durable store's table;
// RESP TTL writes are visible over the binary protocol, expire for both,
// and the acknowledged state survives a restart.
func TestRESPDurableTable(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{
		Mode: core.Allocator, Bins: 1 << 10, Resizable: true,
		VariableKV: true, Namespaces: true, EpochGC: true,
		MaxThreads: 64,
	}
	ds, err := wal.Open(dir, cfg, wal.Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(core.MustNew(core.Config{Bins: 64}), Options{RESPTable: "dur"})
	if err := s.AddDurable("dur", ds); err != nil {
		t.Fatal(err)
	}
	addr := startRESPServer(t, s)

	rc := dialRESP(t, addr)
	bc := dialV2T(t, s, ClientOpts{Table: "dur"})

	if r := respDo(t, rc, "SET", "ephemeral", "v", "PX", "60"); r.Text() != "OK" {
		t.Fatalf("SET PX = %+v", r)
	}
	if r := respDo(t, rc, "SET", "durable", "v", "EX", "100"); r.Text() != "OK" {
		t.Fatalf("SET EX = %+v", r)
	}
	if v, ok, err := bc.GetKV(0, []byte("ephemeral")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("binary GetKV before expiry = (%q,%v,%v)", v, ok, err)
	}
	// Past the deadline the RESP side answers a miss; the store's sweeper
	// reclaims it for the binary side too.
	time.Sleep(100 * time.Millisecond)
	if r := respDo(t, rc, "GET", "ephemeral"); !r.Null {
		t.Fatalf("GET after TTL = %+v", r)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, err := bc.GetKV(0, []byte("ephemeral")); err == nil && !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never reclaimed the expired key for the binary path")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rc.Close()
	bc.Close()
	s.Close()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := wal.Open(dir, cfg, wal.Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, ok := r2.GetKV(0, []byte("ephemeral")); ok {
		t.Fatal("expired key resurrected by replay")
	}
	if v, ok := r2.GetKV(0, []byte("durable")); !ok || string(v) != "v" {
		t.Fatalf("durable key after reopen = (%q,%v)", v, ok)
	}
	if ttl, has, ok := r2.TTL(0, []byte("durable")); !has || !ok || ttl <= 0 {
		t.Fatalf("TTL after reopen = (%v,%v,%v)", ttl, has, ok)
	}
}

// TestRESPRefusals: connections against a missing or wrong-mode RESP
// table get one clean -ERR line, and the server stays healthy.
func TestRESPRefusals(t *testing.T) {
	// Default table is Inlined, not kv.
	s := New(core.MustNew(core.Config{Bins: 64}), Options{})
	addr := startRESPServer(t, s)
	t.Cleanup(func() { s.Close() })

	rc := dialRESP(t, addr)
	if err := rc.SendStr("PING"); err != nil {
		t.Fatal(err)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := rc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsErr() || !strings.Contains(r.Str, "kv") {
		t.Fatalf("refusal reply = %+v", r)
	}
	// The binary listener is unaffected.
	bc := dialV2T(t, s, ClientOpts{})
	if _, inserted, err := bc.Insert(1, 1); err != nil || !inserted {
		t.Fatalf("binary path unhealthy: %v", err)
	}

	// An unregistered RESP table name also refuses cleanly.
	s2 := New(core.MustNew(core.Config{Bins: 64}), Options{RESPTable: "nope"})
	addr2 := startRESPServer(t, s2)
	t.Cleanup(func() { s2.Close() })
	rc2 := dialRESP(t, addr2)
	if err := rc2.SendStr("PING"); err != nil {
		t.Fatal(err)
	}
	if err := rc2.Flush(); err != nil {
		t.Fatal(err)
	}
	if r, err := rc2.Recv(); err != nil || !r.IsErr() {
		t.Fatalf("unregistered-table reply = %+v, %v", r, err)
	}
}

// TestRESPCloseUnderLoad: Close with live RESP connections mid-burst
// neither hangs nor panics, and sweeper handles are released.
func TestRESPCloseUnderLoad(t *testing.T) {
	tbl := core.MustNew(core.Config{
		Mode: core.Allocator, Bins: 1 << 10, Resizable: true,
		VariableKV: true, Namespaces: true, EpochGC: true,
		MaxThreads: 64,
	})
	s := New(tbl, Options{})
	addr := startRESPServer(t, s)

	done := make(chan struct{})
	go func() {
		defer close(done)
		cl, err := resp.Dial(addr)
		if err != nil {
			return
		}
		defer cl.Close()
		for i := 0; ; i++ {
			if err := cl.SendStr("SET", "k", "v"); err != nil {
				return
			}
			if i%64 == 0 {
				if err := cl.Flush(); err != nil {
					return
				}
				for cl.Pending > 0 {
					if _, err := cl.Recv(); err != nil {
						return
					}
				}
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("RESP connection survived Close")
	}
}
