package server

import (
	"encoding/binary"
	"fmt"
)

// Protocol v2 (see the package comment for the version story): a handshake
// exchanged once per connection, plus variable-length KV frames that make
// Allocator-mode tables servable. Fixed 17-byte v1 frames remain the wire
// form of Inlined operations on v2 connections; the two frame families are
// distinguished by the opcode byte.

// Protocol versions.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
)

// HelloMagic is the first byte of a v2 handshake. It is deliberately
// outside the v1 opcode space (0..3): the first byte of a connection is
// either a v1 opcode or this magic, which is how the server auto-detects
// v1 clients and serves them unchanged.
const HelloMagic = 0xD7

// Feature bits negotiated by the handshake. The client requests a set; the
// server grants the intersection with what it supports.
const (
	// FeatureKV enables the variable-length KV frames (OpGetKV,
	// OpInsertKV, OpDeleteKV) on the connection.
	FeatureKV uint16 = 1 << 0

	// FeatureReshard enables the resharding/anti-entropy frames (OpGetVer,
	// OpScan) on the connection. Granting it pins the connection to the
	// conn-owned serving loop — executor sessions cannot hold a scan
	// cursor — so ordinary clients should not request it (see
	// clientDefaultFeatures); the cluster coordinator and scrubber open
	// dedicated connections that do.
	FeatureReshard uint16 = 1 << 1

	// supportedFeatures is what this server build grants.
	supportedFeatures = FeatureKV | FeatureReshard
)

// Handshake frame sizes.
const (
	// HelloFixedSize is the fixed prefix of the client hello; the table
	// name (up to MaxTableName bytes) follows it.
	//
	//	offset 0   1 byte   HelloMagic
	//	offset 1   1 byte   requested protocol version
	//	offset 2   2 bytes  requested feature bits
	//	offset 4   1 byte   table name length n (0 = default table)
	//	offset 5   n bytes  table name
	HelloFixedSize = 5
	// HelloRespSize is the server's fixed handshake reply.
	//
	//	offset 0   1 byte   HelloMagic
	//	offset 1   1 byte   granted protocol version
	//	offset 2   2 bytes  granted feature bits
	//	offset 4   1 byte   status (StatusOK, StatusBadVersion,
	//	                    StatusUnknownTable); on non-OK the server
	//	                    closes the connection
	HelloRespSize = 5
	// MaxTableName bounds the table selector (it must fit the 1-byte
	// length field).
	MaxTableName = 255
)

// Hello is the decoded client handshake.
type Hello struct {
	Version  uint8
	Features uint16
	Table    string
}

// HelloResp is the decoded server handshake reply.
type HelloResp struct {
	Version  uint8
	Features uint16
	Status   Status
}

// AppendHello appends the handshake encoding of h to dst.
func AppendHello(dst []byte, h Hello) ([]byte, error) {
	if len(h.Table) > MaxTableName {
		return nil, fmt.Errorf("%w: table name %d bytes (max %d)", ErrBadFrame, len(h.Table), MaxTableName)
	}
	dst = append(dst, HelloMagic, h.Version)
	dst = binary.LittleEndian.AppendUint16(dst, h.Features)
	dst = append(dst, byte(len(h.Table)))
	return append(dst, h.Table...), nil
}

// DecodeHello decodes a handshake at the start of b, returning it together
// with the number of bytes consumed.
func DecodeHello(b []byte) (Hello, int, error) {
	if len(b) < HelloFixedSize {
		return Hello{}, 0, ErrShortFrame
	}
	if b[0] != HelloMagic {
		return Hello{}, 0, fmt.Errorf("%w: not a handshake (first byte %#x)", ErrBadFrame, b[0])
	}
	n := int(b[4])
	if len(b) < HelloFixedSize+n {
		return Hello{}, 0, ErrShortFrame
	}
	return Hello{
		Version:  b[1],
		Features: binary.LittleEndian.Uint16(b[2:4]),
		Table:    string(b[HelloFixedSize : HelloFixedSize+n]),
	}, HelloFixedSize + n, nil
}

// AppendHelloResp appends the handshake-reply encoding of r to dst.
func AppendHelloResp(dst []byte, r HelloResp) []byte {
	dst = append(dst, HelloMagic, r.Version)
	dst = binary.LittleEndian.AppendUint16(dst, r.Features)
	return append(dst, byte(r.Status))
}

// DecodeHelloResp decodes the fixed handshake reply at the start of b.
func DecodeHelloResp(b []byte) (HelloResp, error) {
	if len(b) < HelloRespSize {
		return HelloResp{}, ErrShortFrame
	}
	if b[0] != HelloMagic {
		return HelloResp{}, fmt.Errorf("%w: not a handshake reply (first byte %#x)", ErrBadFrame, b[0])
	}
	return HelloResp{
		Version:  b[1],
		Features: binary.LittleEndian.Uint16(b[2:4]),
		Status:   Status(b[4]),
	}, nil
}

// ---------------------------------------------------------------------------
// KV frames
// ---------------------------------------------------------------------------

// KV opcodes, valid on v2 connections with FeatureKV granted. Values are
// wire format — do not reorder. They continue the v1 opcode space so one
// byte dispatches both frame families.
const (
	// OpGetKV reads a byte key under a namespace.
	OpGetKV OpCode = opCodeEnd + iota
	// OpInsertKV adds a byte key/value pair under a namespace.
	OpInsertKV
	// OpDeleteKV removes a byte key under a namespace.
	OpDeleteKV
	kvOpCodeEnd // first invalid v2 opcode
)

// KV frame geometry.
const (
	// KVReqHdrSize is the fixed header of a KV request; key and value
	// bytes follow.
	//
	//	offset 0   1 byte   opcode (OpGetKV, OpInsertKV, OpDeleteKV)
	//	offset 1   2 bytes  namespace
	//	offset 3   2 bytes  key length (1..65535)
	//	offset 5   4 bytes  value length (0 except OpInsertKV)
	//	offset 9   key bytes, then value bytes
	KVReqHdrSize = 9
	// KVRespHdrSize is the fixed header of a KV response; value bytes
	// follow.
	//
	//	offset 0   1 byte   status
	//	offset 1   4 bytes  value length (0 except StatusOK GetKV replies)
	//	offset 5   value bytes
	KVRespHdrSize = 5
	// MaxKVValue bounds a value's wire size; a header announcing more is
	// rejected as malformed before any allocation happens.
	MaxKVValue = 16 << 20
)

// isKVOp reports whether op is a v2 KV opcode.
func isKVOp(op OpCode) bool { return op >= OpGetKV && op < kvOpCodeEnd }

// ---------------------------------------------------------------------------
// Reshard frames
// ---------------------------------------------------------------------------

// Reshard opcodes, valid on v2 connections with FeatureReshard granted.
// Values are wire format — do not reorder.
const (
	// OpGetVer reads a key together with its applied-mutation version
	// (core.VersionReader); tables without Config.TrackVersions answer
	// version 0.
	OpGetVer OpCode = kvOpCodeEnd + iota
	// OpScan advances the resumable migration cursor (core.Scanner) and
	// streams back one batch of entries.
	OpScan
	reshardOpCodeEnd // first invalid reshard opcode
)

// Reshard frame geometry. Everything little-endian, like the rest of the
// protocol.
const (
	// GetVerReqSize is a versioned read request.
	//
	//	offset 0   1 byte   OpGetVer
	//	offset 1   8 bytes  key
	GetVerReqSize = 9
	// GetVerRespSize is the reply.
	//
	//	offset 0   1 byte   status (StatusOK / StatusNotFound; the version
	//	                    is meaningful either way — a tombstone has one)
	//	offset 1   8 bytes  value (0 on miss)
	//	offset 9   8 bytes  version
	GetVerRespSize = 17
	// ScanReqSize is a cursor step request (core.Scanner semantics:
	// origBins 0 starts the cursor; thread the returned origBins/nextBin
	// through subsequent steps).
	//
	//	offset 0   1 byte   OpScan
	//	offset 1   8 bytes  origBins
	//	offset 9   8 bytes  startBin
	//	offset 17  4 bytes  maxEnts
	ScanReqSize = 21
	// ScanRespHdrSize is the fixed prefix of a cursor step reply;
	// count × 16 bytes of (key, value) pairs follow.
	//
	//	offset 0   1 byte   status
	//	offset 1   8 bytes  origBins (cursor geometry, echo into next step)
	//	offset 9   8 bytes  nextBin
	//	offset 17  1 byte   done (1 = cursor exhausted)
	//	offset 18  4 bytes  count
	ScanRespHdrSize = 22
	// MaxScanBatch caps the maxEnts a client may request in one OpScan;
	// the server clamps larger requests. A reply can overshoot it by the
	// final bin group (the cursor consumes whole old bins), so clients
	// bound the announced count with slack rather than exactly.
	MaxScanBatch = 4096
)

// isReshardOp reports whether op is a v2 reshard opcode.
func isReshardOp(op OpCode) bool { return op >= OpGetVer && op < reshardOpCodeEnd }

// KVRequest is one decoded variable-length request frame. Key and Value
// alias the decode input.
type KVRequest struct {
	Op    OpCode
	NS    uint16
	Key   []byte
	Value []byte
}

// KVResponse is one decoded variable-length response frame. Value aliases
// the decode input.
type KVResponse struct {
	Status Status
	Value  []byte
}

// AppendKVRequest appends the variable-length encoding of r to dst.
func AppendKVRequest(dst []byte, r KVRequest) ([]byte, error) {
	if !isKVOp(r.Op) {
		return nil, fmt.Errorf("%w: %d is not a KV opcode", ErrBadOpCode, r.Op)
	}
	if len(r.Key) == 0 || len(r.Key) > 0xffff {
		return nil, fmt.Errorf("%w: key length %d (want 1..65535)", ErrBadFrame, len(r.Key))
	}
	if len(r.Value) > MaxKVValue {
		return nil, fmt.Errorf("%w: value length %d exceeds %d", ErrBadFrame, len(r.Value), MaxKVValue)
	}
	if r.Op != OpInsertKV && len(r.Value) != 0 {
		return nil, fmt.Errorf("%w: %v carries a value", ErrBadFrame, r.Op)
	}
	dst = append(dst, byte(r.Op))
	dst = binary.LittleEndian.AppendUint16(dst, r.NS)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
	dst = append(dst, r.Key...)
	return append(dst, r.Value...), nil
}

// DecodeKVRequest decodes the KV request frame at the start of b, returning
// it together with the number of bytes consumed. Key and Value alias b.
func DecodeKVRequest(b []byte) (KVRequest, int, error) {
	if len(b) < KVReqHdrSize {
		return KVRequest{}, 0, ErrShortFrame
	}
	op := OpCode(b[0])
	if !isKVOp(op) {
		return KVRequest{}, 0, fmt.Errorf("%w: %d", ErrBadOpCode, b[0])
	}
	ns := binary.LittleEndian.Uint16(b[1:3])
	klen := int(binary.LittleEndian.Uint16(b[3:5]))
	vlen := int(binary.LittleEndian.Uint32(b[5:9]))
	if klen == 0 {
		return KVRequest{}, 0, fmt.Errorf("%w: empty key", ErrBadFrame)
	}
	if vlen > MaxKVValue {
		return KVRequest{}, 0, fmt.Errorf("%w: value length %d exceeds %d", ErrBadFrame, vlen, MaxKVValue)
	}
	if op != OpInsertKV && vlen != 0 {
		return KVRequest{}, 0, fmt.Errorf("%w: %v carries a value", ErrBadFrame, op)
	}
	total := KVReqHdrSize + klen + vlen
	if len(b) < total {
		return KVRequest{}, 0, ErrShortFrame
	}
	r := KVRequest{Op: op, NS: ns, Key: b[KVReqHdrSize : KVReqHdrSize+klen]}
	if vlen > 0 {
		r.Value = b[KVReqHdrSize+klen : total]
	}
	return r, total, nil
}

// AppendKVResponse appends the variable-length encoding of r to dst.
func AppendKVResponse(dst []byte, r KVResponse) []byte {
	dst = append(dst, byte(r.Status))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
	return append(dst, r.Value...)
}

// DecodeKVResponse decodes the KV response frame at the start of b,
// returning it together with the number of bytes consumed. Value aliases b.
func DecodeKVResponse(b []byte) (KVResponse, int, error) {
	if len(b) < KVRespHdrSize {
		return KVResponse{}, 0, ErrShortFrame
	}
	vlen := int(binary.LittleEndian.Uint32(b[1:5]))
	if vlen > MaxKVValue {
		return KVResponse{}, 0, fmt.Errorf("%w: value length %d exceeds %d", ErrBadFrame, vlen, MaxKVValue)
	}
	if len(b) < KVRespHdrSize+vlen {
		return KVResponse{}, 0, ErrShortFrame
	}
	r := KVResponse{Status: Status(b[0])}
	if vlen > 0 {
		r.Value = b[KVRespHdrSize : KVRespHdrSize+vlen]
	}
	return r, KVRespHdrSize + vlen, nil
}
