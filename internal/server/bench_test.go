package server

import (
	"fmt"
	"os"
	"sync"
	"testing"

	core "repro/internal/core"
)

// benchServer starts a prepopulated server for the pipeline benchmarks.
// The execution model defaults to the server default (shared executor);
// set DLHT_BENCH_EXEC=conn|partitioned|shared to A/B the pipeline
// benchmarks across models without editing code.
func benchServer(b *testing.B, keys uint64) *Server {
	opts := Options{}
	if name := os.Getenv("DLHT_BENCH_EXEC"); name != "" {
		mode, ok := ParseExecMode(name)
		if !ok {
			b.Fatalf("unknown DLHT_BENCH_EXEC %q", name)
		}
		opts.Exec = mode
	}
	return benchServerOpts(b, keys, opts)
}

func benchServerOpts(b *testing.B, keys uint64, opts Options) *Server {
	b.Helper()
	s := startServer(b, core.Config{Bins: keys*2/3 + 64, Resizable: true, MaxThreads: 256}, opts)
	cl := dialT(b, s)
	reqs := make([]Request, 0, 1024)
	resps := make([]Response, 1024)
	for k := uint64(0); k < keys; k += 1024 {
		reqs = reqs[:0]
		for i := k; i < k+1024 && i < keys; i++ {
			reqs = append(reqs, Request{Op: OpInsert, Key: i, Value: i})
		}
		if err := cl.Do(reqs, resps[:len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkPipelinedGets measures end-to-end loopback throughput of GET
// pipelines at several depths — the knob that trades per-request syscall
// cost against batched execution on the server.
func BenchmarkPipelinedGets(b *testing.B) {
	const keys = 1 << 16
	s := benchServer(b, keys)
	for _, depth := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cl := dialT(b, s)
			reqs := make([]Request, depth)
			resps := make([]Response, depth)
			b.ResetTimer()
			for n := 0; n < b.N; n += depth {
				for i := range reqs {
					reqs[i] = Request{Op: OpGet, Key: uint64(n+i) % keys}
				}
				if err := cl.Do(reqs, resps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelinedMixed is the 50/50 GET/PUT mix at depth 64.
func BenchmarkPipelinedMixed(b *testing.B) {
	const keys = 1 << 16
	s := benchServer(b, keys)
	cl := dialT(b, s)
	const depth = 64
	reqs := make([]Request, depth)
	resps := make([]Response, depth)
	b.ResetTimer()
	for n := 0; n < b.N; n += depth {
		for i := range reqs {
			k := uint64(n+i) % keys
			if i%2 == 0 {
				reqs[i] = Request{Op: OpGet, Key: k}
			} else {
				reqs[i] = Request{Op: OpPut, Key: k, Value: k + 1}
			}
		}
		if err := cl.Do(reqs, resps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerSyncConns is the many-small-clients regime: conns
// synchronous connections, each with exactly ONE request in flight,
// against each execution model. This is the workload the shared executor
// exists for — with exec=conn every op executes alone on its connection's
// handle (zero prefetch overlap), while the executor aggregates the
// connection fleet into per-shard pipelines, so batching depth comes from
// connection count. The table is sized out of cache so the per-op DRAM
// latency the executor amortizes is actually present.
func BenchmarkServerSyncConns(b *testing.B) {
	const keys = 1 << 19
	for _, mode := range []ExecMode{ExecConn, ExecShared, ExecPartitioned} {
		b.Run("exec="+mode.String(), func(b *testing.B) {
			s := benchServerOpts(b, keys, Options{Exec: mode})
			for _, conns := range []int{1, 8, 64} {
				b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
					// Closed explicitly below (not via dialT's cleanup):
					// calibration reruns this function, and stale
					// connections would skew shared-mode least-loaded
					// session placement for later runs.
					clients := make([]*Client, conns)
					for i := range clients {
						cl, err := Dial(s.Addr().String())
						if err != nil {
							b.Fatal(err)
						}
						clients[i] = cl
					}
					b.ResetTimer()
					var wg sync.WaitGroup
					per := b.N / conns
					for c := 0; c < conns; c++ {
						quota := per
						if c == 0 {
							quota += b.N % conns
						}
						wg.Add(1)
						go func(c, quota int, cl *Client) {
							defer wg.Done()
							for i := 0; i < quota; i++ {
								k := (uint64(c)*2654435761 + uint64(i)*0x9e3779b9) % keys
								if _, ok, err := cl.Get(k); err != nil || !ok {
									b.Errorf("Get(%d) = ok=%v err=%v", k, ok, err)
									return
								}
							}
						}(c, quota, clients[c])
					}
					wg.Wait()
					b.StopTimer()
					for _, cl := range clients {
						cl.Close()
					}
				})
			}
			s.Close()
		})
	}
}

// BenchmarkEncodeDecode isolates the protocol codec cost.
func BenchmarkEncodeDecode(b *testing.B) {
	buf := make([]byte, 0, ReqSize)
	r := Request{Op: OpPut, Key: 123456789, Value: 987654321}
	for i := 0; i < b.N; i++ {
		buf = AppendRequest(buf[:0], r)
		q, err := DecodeRequest(buf)
		if err != nil || q.Key != r.Key {
			b.Fatal("codec broken")
		}
	}
}
