package server

import (
	"fmt"
	"testing"

	core "repro/internal/core"
)

// benchServer starts a prepopulated server for the pipeline benchmarks.
func benchServer(b *testing.B, keys uint64) *Server {
	b.Helper()
	s := startServer(b, core.Config{Bins: keys*2/3 + 64, Resizable: true}, Options{})
	cl := dialT(b, s)
	reqs := make([]Request, 0, 1024)
	resps := make([]Response, 1024)
	for k := uint64(0); k < keys; k += 1024 {
		reqs = reqs[:0]
		for i := k; i < k+1024 && i < keys; i++ {
			reqs = append(reqs, Request{Op: OpInsert, Key: i, Value: i})
		}
		if err := cl.Do(reqs, resps[:len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkPipelinedGets measures end-to-end loopback throughput of GET
// pipelines at several depths — the knob that trades per-request syscall
// cost against batched execution on the server.
func BenchmarkPipelinedGets(b *testing.B) {
	const keys = 1 << 16
	s := benchServer(b, keys)
	for _, depth := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			cl := dialT(b, s)
			reqs := make([]Request, depth)
			resps := make([]Response, depth)
			b.ResetTimer()
			for n := 0; n < b.N; n += depth {
				for i := range reqs {
					reqs[i] = Request{Op: OpGet, Key: uint64(n+i) % keys}
				}
				if err := cl.Do(reqs, resps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelinedMixed is the 50/50 GET/PUT mix at depth 64.
func BenchmarkPipelinedMixed(b *testing.B) {
	const keys = 1 << 16
	s := benchServer(b, keys)
	cl := dialT(b, s)
	const depth = 64
	reqs := make([]Request, depth)
	resps := make([]Response, depth)
	b.ResetTimer()
	for n := 0; n < b.N; n += depth {
		for i := range reqs {
			k := uint64(n+i) % keys
			if i%2 == 0 {
				reqs[i] = Request{Op: OpGet, Key: k}
			} else {
				reqs[i] = Request{Op: OpPut, Key: k, Value: k + 1}
			}
		}
		if err := cl.Do(reqs, resps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecode isolates the protocol codec cost.
func BenchmarkEncodeDecode(b *testing.B) {
	buf := make([]byte, 0, ReqSize)
	r := Request{Op: OpPut, Key: 123456789, Value: 987654321}
	for i := 0; i < b.N; i++ {
		buf = AppendRequest(buf[:0], r)
		q, err := DecodeRequest(buf)
		if err != nil || q.Key != r.Key {
			b.Fatal("codec broken")
		}
	}
}
