package server

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	core "repro/internal/core"
)

// TestStreamingRepliesBeforeTailDecode is the streaming-reply regression
// test: for a 4096-deep burst, the first responses must reach the client
// while the burst's tail is still being decoded. The server-side decode
// hook blocks the burst's LAST frame until the client has received at
// least one response — with the old decode-whole-burst-then-Exec
// architecture no response could exist before the last decode and the
// test would time out.
func TestStreamingRepliesBeforeTailDecode(t *testing.T) {
	const (
		n       = 4096
		lastKey = n - 1
	)
	firstResp := make(chan struct{})
	var hookTimedOut atomic.Bool
	testFrameDecoded = func(r Request) {
		if r.Op == OpGet && r.Key == lastKey {
			select {
			case <-firstResp:
			case <-time.After(30 * time.Second):
				hookTimedOut.Store(true) // unblock anyway; the test fails below
			}
		}
	}
	t.Cleanup(func() { testFrameDecoded = nil }) // registered first: runs after Close
	// A large read buffer lets the whole 68 KiB burst join one decode
	// chunk; a small write buffer gives an early streaming-flush threshold.
	s := startServer(t, core.Config{Bins: 1 << 13},
		Options{ReadBuffer: 128 << 10, WriteBuffer: 1 << 10})

	load := dialT(t, s)
	reqs := make([]Request, n)
	resps := make([]Response, n)
	for i := range reqs {
		reqs[i] = Request{Op: OpInsert, Key: uint64(i), Value: uint64(i) ^ 0xf00d}
	}
	if err := load.Do(reqs, resps); err != nil {
		t.Fatal(err)
	}

	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Receive concurrently with the send, signalling the first response.
	got := make(chan []Response, 1)
	recvErr := make(chan error, 1)
	go func() {
		cl := NewClient(c)
		out := make([]Response, 0, n)
		for i := 0; i < n; i++ {
			cl.inflight = 1 // raw-conn receive; requests are written below
			r, err := cl.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			if i == 0 {
				close(firstResp)
			}
			out = append(out, r)
		}
		got <- out
	}()

	var burst []byte
	for i := 0; i < n; i++ {
		burst = AppendRequest(burst, Request{Op: OpGet, Key: uint64(i)})
	}
	if _, err := c.Write(burst); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-recvErr:
		t.Fatal(err)
	case out := <-got:
		if hookTimedOut.Load() {
			t.Fatal("burst tail was decoded before the first response reached the client")
		}
		for i, r := range out {
			if r.Status != StatusOK || r.Result != uint64(i)^0xf00d {
				t.Fatalf("response %d = %+v, want OK %d", i, r, uint64(i)^0xf00d)
			}
		}
	case <-time.After(60 * time.Second):
		t.Fatal("burst never completed")
	}
}

// TestClientAsyncCallbacks drives the callback surface end to end: async
// sends complete in request order through Drain, and mixing plain Send
// in between leaves its response for Recv.
func TestClientAsyncCallbacks(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true}, Options{})
	cl := dialT(t, s)

	var order []uint64
	const n = 64
	for i := uint64(0); i < n; i++ {
		i := i
		if err := cl.InsertAsync(i, i*3, func(r Response) {
			if r.Status != StatusOK {
				t.Errorf("insert %d: %v", i, r.Status)
			}
			order = append(order, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("drained %d callbacks, want %d", len(order), n)
	}
	for i, k := range order {
		if k != uint64(i) {
			t.Fatalf("callback order %v not request order", order)
		}
	}

	// Async GET + plain Send interleaved: Recv dispatches the async head
	// then returns the plain response; Drain stops at a plain head.
	gets := 0
	if err := cl.GetAsync(1, func(r Response) {
		if r.Status != StatusOK || r.Result != 3 {
			t.Errorf("async Get(1) = %+v", r)
		}
		gets++
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send(Request{Op: OpGet, Key: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cl.GetAsync(3, func(r Response) {
		if r.Status != StatusOK || r.Result != 9 {
			t.Errorf("async Get(3) = %+v", r)
		}
		gets++
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := cl.Recv() // dispatches Get(1)'s callback first
	if err != nil || r.Status != StatusOK || r.Result != 6 {
		t.Fatalf("plain Recv = %+v, %v; want OK 6", r, err)
	}
	if gets != 1 {
		t.Fatalf("after Recv: %d async callbacks fired, want 1", gets)
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	if gets != 2 || cl.Inflight() != 0 {
		t.Fatalf("after Drain: %d callbacks, %d inflight", gets, cl.Inflight())
	}

	// PutAsync and DeleteAsync round out the helpers.
	if err := cl.PutAsync(1, 100, func(r Response) {
		if r.Status != StatusOK || r.Result != 3 {
			t.Errorf("PutAsync(1) = %+v", r)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteAsync(2, func(r Response) {
		if r.Status != StatusOK || r.Result != 6 {
			t.Errorf("DeleteAsync(2) = %+v", r)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := cl.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) after PutAsync = (%d,%v)", v, ok)
	}
	if _, ok, _ := cl.Get(2); ok {
		t.Fatal("Get(2) found a key DeleteAsync removed")
	}
}

// TestClientFutures pins the future helpers: pipelined futures resolve in
// any Wait order, Wait flushes lazily, and results match the table.
func TestClientFutures(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true}, Options{})
	cl := dialT(t, s)

	fi, err := cl.InsertFuture(7, 70)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := cl.GetFuture(7)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := cl.PutFuture(7, 71)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := cl.DeleteFuture(7)
	if err != nil {
		t.Fatal(err)
	}
	// Wait on the last first: earlier responses dispatch on the way.
	if r, err := fd.Wait(); err != nil || r.Status != StatusOK || r.Result != 71 {
		t.Fatalf("delete future = %+v, %v", r, err)
	}
	// The earlier futures resolved as a side effect; Wait returns cached.
	if r, err := fi.Wait(); err != nil || r.Status != StatusOK {
		t.Fatalf("insert future = %+v, %v", r, err)
	}
	if r, err := fg.Wait(); err != nil || r.Status != StatusOK || r.Result != 70 {
		t.Fatalf("get future = %+v, %v", r, err)
	}
	if r, err := fp.Wait(); err != nil || r.Status != StatusOK || r.Result != 70 {
		t.Fatalf("put future = %+v, %v", r, err)
	}
	if cl.Inflight() != 0 {
		t.Fatalf("%d inflight after all futures resolved", cl.Inflight())
	}

	// A plain Send response ahead of a future is an error for Wait (Recv
	// owns it), and Recv then unblocks the future.
	if err := cl.Send(Request{Op: OpGet, Key: 999}); err != nil {
		t.Fatal(err)
	}
	f, err := cl.GetFuture(999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(); err == nil {
		t.Fatal("Wait did not refuse to consume a plain Send response")
	}
	if r, err := cl.Recv(); err != nil || r.Status != StatusNotFound {
		t.Fatalf("plain Recv = %+v, %v", r, err)
	}
	if r, err := f.Wait(); err != nil || r.Status != StatusNotFound {
		t.Fatalf("future after Recv = %+v, %v", r, err)
	}
}

// TestMaxBatchForcesPeriodicDrain: with MaxBatch set, a long burst is
// drained and flushed every MaxBatch requests — the configured bound on
// response latency — and still answers everything in order. MaxBatch only
// applies to the goroutine-per-connection model, so this pins ExecConn.
func TestMaxBatchForcesPeriodicDrain(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 12, Resizable: true}, Options{MaxBatch: 16, Exec: ExecConn})
	cl := dialT(t, s)
	const n = 1000
	reqs := make([]Request, 0, 2*n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, Request{Op: OpInsert, Key: i, Value: i + 1})
	}
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, Request{Op: OpGet, Key: i})
	}
	resps := make([]Response, len(reqs))
	if err := cl.Do(reqs, resps); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		if resps[i].Status != StatusOK {
			t.Fatalf("insert %d: %v", i, resps[i].Status)
		}
		if r := resps[n+i]; r.Status != StatusOK || r.Result != i+1 {
			t.Fatalf("get %d = %+v", i, r)
		}
	}
}
