package server

import (
	"errors"

	core "repro/internal/core"
)

// Client as a dlht Store: the sync helpers (Get/Put/Insert/Delete/Close)
// already match the Store surface; Pipe supplies the completion-driven
// pipelined half over the client's async callback API. Together they make
// a remote table indistinguishable, API-wise, from a local Handle.

var _ core.Store = (*Client)(nil)

// clientDefaultWindow is the Pipe window when PipeOpts.Window is 0 — the
// same default distance as the table-side prefetch window, here bounding
// in-flight wire requests instead of in-flight cache lines.
const clientDefaultWindow = 16

// Pipe opens the completion-driven pipelined surface over this client.
// Each enqueue appends a wire frame; once more than the window is in
// flight, the oldest response is received (flushing first), so the window
// also bounds the kernel-socket-buffer footprint — a Pipe can absorb
// arbitrarily deep enqueue runs without the deadlock risk of raw
// Send/Flush pipelining. While the Pipe is open the client's synchronous
// methods must not be called (their plain responses would interleave with
// the pipe's async ones).
func (cl *Client) Pipe(opts core.PipeOpts) (core.Pipe, error) {
	w := opts.Window
	if w <= 0 {
		w = clientDefaultWindow
	}
	return &clientPipe{cl: cl, w: w, onc: opts.OnComplete}, nil
}

// clientPipe implements core.Pipe over the client's SendAsync/RecvOneAsync
// machinery. Completions are delivered in enqueue order — the wire
// protocol's matching rule is the same order-preservation contract the
// local pipeline engine provides.
//
// Failure contract: when the connection dies with requests in flight, the
// transport error is delivered to EVERY pending completion (in enqueue
// order, Err set, OK false) before the failing call returns — a
// completion-counting caller can never hang on responses that will never
// arrive. After a failure the pipe is immediately usable again if the
// client can redial (ClientOpts.Retry); otherwise every subsequent
// enqueue returns the sticky transport error.
type clientPipe struct {
	cl      *Client
	w       int
	onc     func(core.Completion)
	enqd    int // requests enqueued (absolute)
	out     int // enqueued but not yet completed
	flushed int // requests known to be on the wire (absolute watermark)
	closed  bool

	// oq mirrors, for this pipe's own requests, the client's pending ring:
	// kind+key in enqueue order. On a transport failure it is what lets
	// the pipe synthesize an error completion for every in-flight request.
	oq             []pipeOp
	oqHead, oqTail int
}

// pipeOp is one in-flight pipelined request's identity.
type pipeOp struct {
	kind core.OpKind
	key  uint64
}

// pushOp appends one in-flight op to the mirror ring.
func (p *clientPipe) pushOp(kind core.OpKind, key uint64) {
	if p.oq == nil {
		p.oq = make([]pipeOp, 16)
	}
	if p.oqHead-p.oqTail == len(p.oq) {
		next := make([]pipeOp, len(p.oq)*2)
		for i := p.oqTail; i < p.oqHead; i++ {
			next[i&(len(next)-1)] = p.oq[i&(len(p.oq)-1)]
		}
		p.oq = next
	}
	p.oq[p.oqHead&(len(p.oq)-1)] = pipeOp{kind, key}
	p.oqHead++
}

// fail delivers err to every pending completion, in enqueue order, and
// resets the pipe's in-flight accounting. The client's own pending slots
// are dropped via abort first so no stale callback can ever fire.
func (p *clientPipe) fail(err error) {
	p.cl.abort(err)
	for p.oqTail < p.oqHead {
		op := p.oq[p.oqTail&(len(p.oq)-1)]
		p.oq[p.oqTail&(len(p.oq)-1)] = pipeOp{}
		p.oqTail++
		if p.onc != nil {
			p.onc(core.Completion{Kind: op.kind, Key: op.key, Err: err})
		}
	}
	p.out = 0
	p.flushed = p.enqd
}

func (p *clientPipe) enq(kind core.OpKind, r Request) error {
	if p.closed {
		return errors.New("server: Pipe used after Close")
	}
	if err := p.cl.ensureConn(); err != nil {
		return err
	}
	key := r.Key
	err := p.cl.SendAsync(r, func(resp Response) {
		p.oqTail++ // this op's mirror entry is consumed by its response
		p.out--
		if p.onc != nil {
			p.onc(completionOf(kind, key, resp))
		}
	})
	if err != nil {
		if p.cl.broken != nil {
			p.fail(err)
		}
		return err
	}
	p.pushOp(kind, key)
	p.enqd++
	p.out++
	if p.out > p.w {
		// Slide the window: receive the oldest in-flight response before
		// admitting more. Flush only when that response's request is still
		// sitting in the write buffer — the watermark turns per-enqueue
		// flushes into one flush (and so one syscall) per window. bufio's
		// own flush-on-full may put frames on the wire ahead of the
		// watermark; that only makes the occasional Flush here a no-op.
		//
		// A transport failure here fails every in-flight request — the
		// current one included, since its frame was already accepted — so
		// the enqueue itself reports success: the op's outcome arrives
		// through its (error) completion, exactly once, like every other.
		if oldest := p.enqd - p.out; p.flushed <= oldest {
			if err := p.cl.Flush(); err != nil {
				p.fail(err)
				return nil
			}
			p.flushed = p.enqd
		}
		if err := p.cl.RecvOneAsync(); err != nil {
			p.fail(err)
			return nil
		}
	}
	return nil
}

func (p *clientPipe) Get(key uint64) error { return p.enq(core.OpGet, Request{Op: OpGet, Key: key}) }

func (p *clientPipe) Put(key, val uint64) error {
	return p.enq(core.OpPut, Request{Op: OpPut, Key: key, Value: val})
}

func (p *clientPipe) Insert(key, val uint64) error {
	return p.enq(core.OpInsert, Request{Op: OpInsert, Key: key, Value: val})
}

func (p *clientPipe) Delete(key uint64) error {
	return p.enq(core.OpDelete, Request{Op: OpDelete, Key: key})
}

// Flush completes every in-flight request, firing OnComplete for each —
// with the transport error as the completion error for all of them if the
// connection dies mid-drain.
func (p *clientPipe) Flush() error {
	if p.out == 0 {
		return nil
	}
	if err := p.cl.Drain(); err != nil {
		p.fail(err)
		return err
	}
	p.flushed = p.enqd
	if p.out != 0 {
		// A plain Send response is interleaved with the pipe's traffic;
		// the exclusivity contract was violated.
		return errors.New("server: Pipe.Flush: plain responses interleaved with pipe traffic")
	}
	return nil
}

// Close flushes the pipe and rejects further enqueues. The Client remains
// usable.
func (p *clientPipe) Close() error {
	if p.closed {
		return nil
	}
	err := p.Flush()
	p.closed = true
	return err
}

// completionOf maps a wire response onto the backend-independent
// Completion, with the same OK/Err split the local engine produces: a miss
// (or duplicate-insert NOT inserted) keeps Err nil/sentinel exactly as
// core does — StatusExists becomes core.ErrExists with the existing value,
// StatusNotFound a plain miss, and transport-only statuses their server
// sentinels.
func completionOf(kind core.OpKind, key uint64, r Response) core.Completion {
	c := core.Completion{Kind: kind, Key: key, Value: r.Result}
	switch r.Status {
	case StatusOK:
		c.OK = true
	case StatusNotFound:
		// miss: OK=false, Err=nil
	default:
		c.Err = r.Status.Err()
	}
	return c
}
