package server

import (
	"errors"
	"fmt"

	core "repro/internal/core"
)

// Exported sentinel errors. Wire statuses that correspond to a table-level
// condition map back onto the core sentinels (core.ErrExists, core.ErrFull,
// ...) re-exported by the top-level dlht package, so errors.Is-based
// handling works identically against local and remote backends; statuses
// that only exist on the wire get their own sentinels here.
var (
	// ErrBusy: the server was out of connection handles and refused the
	// connection (StatusBusy).
	ErrBusy = errors.New("server: busy — out of connection handles")
	// ErrBadRequest: the server reported a malformed frame and closed the
	// connection (StatusBadRequest).
	ErrBadRequest = errors.New("server: bad request")
	// ErrUnknownTable: the handshake named a table the server does not
	// host (StatusUnknownTable).
	ErrUnknownTable = errors.New("server: unknown table")
	// ErrBadVersion: the server does not speak the requested protocol
	// version (StatusBadVersion).
	ErrBadVersion = errors.New("server: unsupported protocol version")
	// ErrBadFrame flags locally detected frame-construction and decode
	// violations (oversized keys/values, value on a value-less opcode).
	ErrBadFrame = errors.New("server: malformed frame")
	// ErrFeature: the operation needs a negotiated feature the connection
	// does not have (e.g. KV frames on a v1 connection).
	ErrFeature = errors.New("server: feature not negotiated on this connection")
)

// Err maps a wire status onto its sentinel error: nil for the two
// non-error statuses (StatusOK and StatusNotFound — a miss is not an
// error), the matching core sentinel where one exists, and the server
// sentinels above for the transport-only statuses.
func (s Status) Err() error {
	switch s {
	case StatusOK, StatusNotFound:
		return nil
	case StatusExists:
		return core.ErrExists
	case StatusShadow:
		return core.ErrShadow
	case StatusFull:
		return core.ErrFull
	case StatusReservedKey:
		return core.ErrReservedKey
	case StatusWrongMode:
		return core.ErrWrongMode
	case StatusValueSize:
		return core.ErrValueSize
	case StatusNamespace:
		return core.ErrNamespace
	case StatusBadVersion:
		return ErrBadVersion
	case StatusUnknownTable:
		return ErrUnknownTable
	case StatusBusy:
		return ErrBusy
	case StatusBadRequest:
		return ErrBadRequest
	}
	return fmt.Errorf("server: unexpected status %v", s)
}

// errToStatus is the server-side inverse of Status.Err for the table-level
// sentinels the KV execution path can see. This is a cold path (failures
// only), so errors.Is is fine here where opToResp uses direct comparison.
func errToStatus(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, core.ErrExists):
		return StatusExists
	case errors.Is(err, core.ErrShadow):
		return StatusShadow
	case errors.Is(err, core.ErrFull):
		return StatusFull
	case errors.Is(err, core.ErrReservedKey):
		return StatusReservedKey
	case errors.Is(err, core.ErrWrongMode):
		return StatusWrongMode
	case errors.Is(err, core.ErrValueSize):
		return StatusValueSize
	case errors.Is(err, core.ErrNamespace):
		return StatusNamespace
	}
	return StatusBadRequest
}
