// Package server exposes a DLHT table over TCP through a compact binary
// protocol, turning the paper's batching design (§3.3) into a network
// request pipeline.
//
// Clients pipeline fixed-size request frames; the server feeds each frame,
// as it is decoded, straight into a dlht.Pipeline whose sliding-window
// software prefetch overlaps the DRAM latency of the network burst however
// deep it runs. By default the pipelines belong to the shared sharded
// executor (internal/exec, Options.Exec): requests from every connection
// aggregate into per-core shard pipelines, so batching depth comes from
// connection count as well as per-connection pipeline depth; with
// Options.Exec = ExecConn each connection owns its pipeline as before.
// Completions append response frames to the write buffer as they fire, so
// a deep burst's first replies stream out while its tail is still being
// decoded, and the window stays primed across bursts. Responses are
// written in request order — order preservation is DLHT's pipelining
// contract, and here it doubles as the wire protocol's matching rule: the
// i-th response on a connection answers the i-th request.
//
// # Wire format
//
// The protocol has two versions. All integers are little-endian.
//
// Version 1 has no handshake: the connection's first byte is already an
// opcode. A v1 request is 17 bytes:
//
//	offset 0   1 byte   opcode (OpGet, OpPut, OpInsert, OpDelete)
//	offset 1   8 bytes  key
//	offset 9   8 bytes  value (ignored by Get and Delete)
//
// A v1 response is 9 bytes:
//
//	offset 0   1 byte   status
//	offset 1   8 bytes  result (read value, previous value, or existing
//	                    value on StatusExists; 0 otherwise)
//
// Version 2 opens with a handshake (see protocol_v2.go): the client's
// first byte is HelloMagic, which can never be a valid v1 opcode — that is
// how the server tells the two apart and keeps serving v1 clients
// unchanged. The handshake negotiates the protocol version, a feature set,
// and the named table the connection operates on; after it, v2 connections
// interleave the fixed 17-byte frames above with variable-length KV frames
// (AppendKVRequest) that make Allocator-mode tables — byte-slice keys and
// values, namespaces — servable.
//
// In both versions a malformed frame elicits a single StatusBadRequest
// response after which the server closes the connection, since byte
// alignment can no longer be trusted. A server out of connection handles
// answers the connection's first request with StatusBusy and closes.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame sizes in bytes.
const (
	ReqSize  = 17
	RespSize = 9
)

// OpCode identifies a request operation.
type OpCode uint8

// Request opcodes. Values are wire format — do not reorder.
const (
	OpGet OpCode = iota
	OpPut
	OpInsert
	OpDelete
	opCodeEnd // first invalid opcode
)

// String returns the opcode mnemonic.
func (o OpCode) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	}
	return fmt.Sprintf("OpCode(%d)", uint8(o))
}

// Status is the first byte of a response.
type Status uint8

// Response statuses. Values are wire format — do not reorder.
const (
	// StatusOK: Get/Put/Delete found the key, or Insert added it.
	StatusOK Status = iota
	// StatusNotFound: Get/Put/Delete missed.
	StatusNotFound
	// StatusExists: Insert hit an existing key; Result carries its value.
	StatusExists
	// StatusShadow: the key is locked by an uncommitted shadow insert.
	StatusShadow
	// StatusFull: the index is full and resizing is disabled.
	StatusFull
	// StatusReservedKey: the key collides with a resize transfer key.
	StatusReservedKey
	// StatusWrongMode: the operation is not available in the table's mode.
	StatusWrongMode
	// StatusValueSize: a KV insert's value size differs from the table's
	// fixed ValueSize (VariableKV disabled). Protocol v2 only.
	StatusValueSize
	// StatusNamespace: a KV namespace id out of range or used on a table
	// without Namespaces enabled. Protocol v2 only.
	StatusNamespace

	// StatusBadVersion: the handshake requested a protocol version the
	// server does not speak; the granted-version byte of the handshake
	// response carries what it does. The server closes after sending.
	StatusBadVersion Status = 252
	// StatusUnknownTable: the handshake named a table the server does not
	// host. The server closes after sending.
	StatusUnknownTable Status = 253
	// StatusBusy: the server is out of connection handles. Sent as the
	// reply to the connection's first request, after which the server
	// closes the connection; retry later or on another connection.
	StatusBusy Status = 254
	// StatusBadRequest: the frame was malformed; the server closes the
	// connection after sending it.
	StatusBadRequest Status = 255
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusExists:
		return "EXISTS"
	case StatusShadow:
		return "SHADOW"
	case StatusFull:
		return "FULL"
	case StatusReservedKey:
		return "RESERVED_KEY"
	case StatusWrongMode:
		return "WRONG_MODE"
	case StatusValueSize:
		return "VALUE_SIZE"
	case StatusNamespace:
		return "NAMESPACE"
	case StatusBadVersion:
		return "BAD_VERSION"
	case StatusUnknownTable:
		return "UNKNOWN_TABLE"
	case StatusBusy:
		return "BUSY"
	case StatusBadRequest:
		return "BAD_REQUEST"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Protocol decode errors.
var (
	ErrShortFrame = errors.New("server: frame shorter than fixed size")
	ErrBadOpCode  = errors.New("server: unknown opcode")
)

// Request is one decoded request frame.
type Request struct {
	Op    OpCode
	Key   uint64
	Value uint64
}

// Response is one decoded response frame.
type Response struct {
	Status Status
	Result uint64
}

// AppendRequest appends the 17-byte encoding of r to dst.
func AppendRequest(dst []byte, r Request) []byte {
	var b [ReqSize]byte
	b[0] = byte(r.Op)
	binary.LittleEndian.PutUint64(b[1:9], r.Key)
	binary.LittleEndian.PutUint64(b[9:17], r.Value)
	return append(dst, b[:]...)
}

// DecodeRequest decodes the request frame at the start of b.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) < ReqSize {
		return Request{}, ErrShortFrame
	}
	op := OpCode(b[0])
	if op >= opCodeEnd {
		return Request{}, fmt.Errorf("%w: %d", ErrBadOpCode, b[0])
	}
	return Request{
		Op:    op,
		Key:   binary.LittleEndian.Uint64(b[1:9]),
		Value: binary.LittleEndian.Uint64(b[9:17]),
	}, nil
}

// AppendResponse appends the 9-byte encoding of r to dst.
func AppendResponse(dst []byte, r Response) []byte {
	var b [RespSize]byte
	b[0] = byte(r.Status)
	binary.LittleEndian.PutUint64(b[1:9], r.Result)
	return append(dst, b[:]...)
}

// DecodeResponse decodes the response frame at the start of b.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < RespSize {
		return Response{}, ErrShortFrame
	}
	return Response{
		Status: Status(b[0]),
		Result: binary.LittleEndian.Uint64(b[1:9]),
	}, nil
}
