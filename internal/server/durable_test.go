package server

import (
	"fmt"
	"net"
	"testing"

	core "repro/internal/core"
	"repro/internal/wal"
)

// startDurableServer serves ds as the named table "dur" next to a RAM
// default table. The caller closes the server and the store explicitly
// (reopen tests need an ordered shutdown, not t.Cleanup's LIFO).
func startDurableServer(t *testing.T, ds *wal.Store, opts Options) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := New(core.MustNew(core.Config{Bins: 64}), opts)
	if err := s.AddDurable("dur", ds); err != nil {
		t.Fatal(err)
	}
	s.ln = ln
	go s.Serve(ln)
	return s
}

// TestDurableServerFixedOps drives fixed mutations against a durable table
// in every exec mode, asserts acknowledgements implied a covering group
// commit, and verifies the directory recovers the exact final state.
func TestDurableServerFixedOps(t *testing.T) {
	for _, mode := range []ExecMode{ExecShared, ExecPartitioned, ExecConn} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := core.Config{Bins: 1 << 10, Resizable: true}
			ds, err := wal.Open(dir, cfg, wal.Options{SnapshotBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			s := startDurableServer(t, ds, Options{Exec: mode})
			cl := dialV2T(t, s, ClientOpts{Table: "dur"})

			const n = 300
			reqs := make([]Request, 0, n)
			for i := uint64(0); i < n; i++ {
				reqs = append(reqs, Request{Op: OpInsert, Key: i + 1, Value: i})
			}
			for i := uint64(0); i < n; i += 2 {
				reqs = append(reqs, Request{Op: OpPut, Key: i + 1, Value: i + 1000})
			}
			for i := uint64(0); i < n; i += 3 {
				reqs = append(reqs, Request{Op: OpDelete, Key: i + 1})
			}
			resps := make([]Response, len(reqs))
			if err := cl.Do(reqs, resps); err != nil {
				t.Fatalf("Do: %v", err)
			}
			effective := uint64(0)
			for i, r := range resps {
				if r.Status != StatusOK {
					t.Fatalf("req %d (%v): status %v", i, reqs[i].Op, r.Status)
				}
				effective++
			}
			// Every response above was acknowledged, so the log's sync
			// watermark must already cover every record — one per
			// effective mutation.
			if synced := ds.Log().Synced(); synced < effective {
				t.Fatalf("acked %d mutations but synced watermark is %d", effective, synced)
			}

			cl.Close()
			s.Close()
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := wal.Open(dir, cfg, wal.Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer r.Close()
			for i := uint64(0); i < n; i++ {
				v, ok, _ := r.Get(i + 1)
				switch {
				case i%3 == 0:
					if ok {
						t.Fatalf("deleted key %d survived", i+1)
					}
				case i%2 == 0:
					if !ok || v != i+1000 {
						t.Fatalf("key %d = %d,%v; want %d", i+1, v, ok, i+1000)
					}
				default:
					if !ok || v != i {
						t.Fatalf("key %d = %d,%v; want %d", i+1, v, ok, i)
					}
				}
			}
		})
	}
}

// TestDurableServerKV drives Allocator-mode KV mutations through the
// durable path in executor and conn modes and verifies recovery.
func TestDurableServerKV(t *testing.T) {
	for _, mode := range []ExecMode{ExecShared, ExecPartitioned, ExecConn} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			cfg := core.Config{
				Bins: 1 << 10, Resizable: true, Mode: core.Allocator,
				VariableKV: true, Namespaces: true, EpochGC: true,
			}
			ds, err := wal.Open(dir, cfg, wal.Options{SnapshotBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			s := startDurableServer(t, ds, Options{Exec: mode})
			cl := dialV2T(t, s, ClientOpts{Table: "dur"})
			if cl.Features()&FeatureKV == 0 {
				t.Fatal("server did not grant FeatureKV")
			}

			const n = 64
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key-%03d-long-enough-to-spill", i))
				if err := cl.InsertKV(3, k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
					t.Fatalf("InsertKV %d: %v", i, err)
				}
			}
			for i := 0; i < n; i += 2 {
				k := []byte(fmt.Sprintf("key-%03d-long-enough-to-spill", i))
				if ok, err := cl.DeleteKV(3, k); err != nil || !ok {
					t.Fatalf("DeleteKV %d: ok=%v err=%v", i, ok, err)
				}
			}
			if synced := ds.Log().Synced(); synced < n+n/2 {
				t.Fatalf("acked %d KV mutations but synced watermark is %d", n+n/2, synced)
			}

			cl.Close()
			s.Close()
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := wal.Open(dir, cfg, wal.Options{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer r.Close()
			h := r.Table().MustHandle()
			defer h.Close()
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("key-%03d-long-enough-to-spill", i))
				v, ok := h.GetKV(3, k)
				if want := i%2 == 1; ok != want {
					t.Fatalf("key %d present=%v want %v", i, ok, want)
				}
				if ok && string(v) != fmt.Sprintf("val-%d", i) {
					t.Fatalf("key %d = %q", i, v)
				}
			}
		})
	}
}
