package server

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	core "repro/internal/core"
)

// TestResponseOrderAcrossModes: with many connections interleaving through
// the shared executor, each connection's responses must still arrive in
// its own request order with per-key program-order results. Each
// connection pipelines a mixed script with heavy key reuse (the
// order-sensitive case: an Insert/Put/Delete/Get chain on one key answers
// differently under any reordering) and checks every response against a
// sequential model. Covers both routing modes; the CI race job runs it
// under -race.
func TestResponseOrderAcrossModes(t *testing.T) {
	for _, mode := range []ExecMode{ExecShared, ExecPartitioned} {
		t.Run(mode.String(), func(t *testing.T) {
			s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 32},
				Options{Exec: mode, ExecShards: 4})
			const (
				conns = 6
				n     = 1200
			)
			var wg sync.WaitGroup
			for c := 0; c < conns; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					cl, err := Dial(s.Addr().String())
					if err != nil {
						t.Error(err)
						return
					}
					defer cl.Close()
					base := uint64(c) * 1_000_000
					reqs := make([]Request, n)
					for i := range reqs {
						k := base + uint64(i%17) // heavy same-key reuse
						switch i % 4 {
						case 0:
							reqs[i] = Request{Op: OpInsert, Key: k, Value: uint64(i) + 1}
						case 1:
							reqs[i] = Request{Op: OpGet, Key: k}
						case 2:
							reqs[i] = Request{Op: OpPut, Key: k, Value: uint64(i) + 1}
						case 3:
							reqs[i] = Request{Op: OpDelete, Key: k}
						}
					}
					resps := make([]Response, n)
					if err := cl.Do(reqs, resps); err != nil {
						t.Error(err)
						return
					}
					// Replay against a sequential model: any response
					// delivered out of this connection's request order (or
					// any per-key execution reorder) shows up as a mismatch.
					model := map[uint64]uint64{}
					for i, r := range resps {
						req := reqs[i]
						prev, exists := model[req.Key]
						switch req.Op {
						case OpInsert:
							if exists {
								if r.Status != StatusExists || r.Result != prev {
									t.Errorf("conn %d resp %d: dup insert = %+v, model %d", c, i, r, prev)
									return
								}
							} else {
								if r.Status != StatusOK {
									t.Errorf("conn %d resp %d: insert = %+v", c, i, r)
									return
								}
								model[req.Key] = req.Value
							}
						case OpGet:
							if exists != (r.Status == StatusOK) || (exists && r.Result != prev) {
								t.Errorf("conn %d resp %d: get = %+v, model (%d,%v)", c, i, r, prev, exists)
								return
							}
						case OpPut:
							if exists != (r.Status == StatusOK) || (exists && r.Result != prev) {
								t.Errorf("conn %d resp %d: put = %+v, model (%d,%v)", c, i, r, prev, exists)
								return
							}
							if exists {
								model[req.Key] = req.Value
							}
						case OpDelete:
							if exists != (r.Status == StatusOK) || (exists && r.Result != prev) {
								t.Errorf("conn %d resp %d: delete = %+v, model (%d,%v)", c, i, r, prev, exists)
								return
							}
							delete(model, req.Key)
						}
					}
				}(c)
			}
			wg.Wait()
		})
	}
}

// TestOversizedKVInsertRejected: a wire InsertKV whose key+value pair
// exceeds the slab arena's block bound must come back as a VALUE_SIZE
// status — in every execution model — not crash the server in the
// allocator (the wire format allows 16 MiB values; the arena serves
// 64 KiB blocks).
func TestOversizedKVInsertRejected(t *testing.T) {
	for _, mode := range []ExecMode{ExecShared, ExecConn} {
		t.Run(mode.String(), func(t *testing.T) {
			s := startServer(t, core.Config{
				Mode: core.Allocator, Bins: 1 << 8, Resizable: true,
				VariableKV: true, EpochGC: true, MaxThreads: 8,
			}, Options{Exec: mode})
			cl := dialV2T(t, s, ClientOpts{})
			err := cl.InsertKV(0, []byte("big"), bytes.Repeat([]byte("x"), 80<<10))
			if !errors.Is(err, core.ErrValueSize) {
				t.Fatalf("oversized InsertKV err = %v, want ErrValueSize", err)
			}
			// The server survived and the connection still works.
			if err := cl.InsertKV(0, []byte("ok"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			if v, ok, err := cl.GetKV(0, []byte("ok")); err != nil || !ok || string(v) != "v" {
				t.Fatalf("GetKV after rejection = (%q,%v,%v)", v, ok, err)
			}
		})
	}
}

// TestWriterErrorTearsDownConn: a peer that keeps sending but never reads
// trips the writer's deadline; the writer must then close the connection
// so the reader stops consuming (and executing) requests whose responses
// nobody will see. Without the teardown the server would absorb the
// firehose forever and this test's write loop would never error.
func TestWriterErrorTearsDownConn(t *testing.T) {
	s := startServer(t, core.Config{Bins: 1 << 10, Resizable: true},
		Options{IdleTimeout: 200 * time.Millisecond, WriteBuffer: 4096})
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	frame := AppendRequest(nil, Request{Op: OpGet, Key: 1})
	burst := make([]byte, 0, 64*len(frame))
	for i := 0; i < 64; i++ {
		burst = append(burst, frame...)
	}
	c.SetWriteDeadline(time.Now().Add(15 * time.Second))
	for i := 0; ; i++ {
		if _, err := c.Write(burst); err != nil {
			return // server hung up on us — the teardown worked
		}
		if i > 1<<20 {
			t.Fatal("server kept consuming a never-reading peer")
		}
	}
}

// TestCloseUnderLoad: Server.Close while connections are mid-pipeline must
// join the connection readers and writers AND drain the executor shards —
// after Close returns, no completion is in flight and every table handle
// the executor shards held is back with the table.
func TestCloseUnderLoad(t *testing.T) {
	const maxThreads = 8
	tbl := core.MustNew(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: maxThreads})
	s := New(tbl, Options{ExecShards: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.ln = ln
	go s.Serve(ln)

	var wg sync.WaitGroup
	started := make(chan struct{}, 4)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				return // raced the close; fine
			}
			defer cl.Close()
			base := uint64(c) << 32
			reqs := make([]Request, 64)
			resps := make([]Response, 64)
			for i := uint64(0); ; i++ {
				for j := range reqs {
					reqs[j] = Request{Op: OpInsert, Key: base + i*64 + uint64(j), Value: i}
				}
				if err := cl.Do(reqs, resps); err != nil {
					return // server closed under us — expected
				}
				select {
				case started <- struct{}{}:
				default:
				}
			}
		}(c)
	}
	// Let the load ramp before pulling the plug.
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("load never started")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The executor shards are joined: their handles must all be back.
	for i := 0; i < maxThreads; i++ {
		h, err := tbl.Handle()
		if err != nil {
			t.Fatalf("handle %d not released after Close: %v", i, err)
		}
		defer h.Close()
	}
	wg.Wait()
}
