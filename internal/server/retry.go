package server

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
	"time"

	core "repro/internal/core"
)

// IsRetryable classifies an error surfaced by the client (or by a Store
// completion) as transient — worth retrying the operation, redialing the
// connection, or failing over to a replica — versus terminal.
//
// Retryable: transport failures of every shape (connection loss, resets,
// refused dials, timeouts and expired deadlines, EOF mid-stream) and
// ErrBusy (the server was momentarily out of connection handles — the
// canonical back-off-and-retry signal).
//
// Terminal: every table-level outcome and protocol refusal — ErrExists,
// ErrFull, ErrWrongMode, ErrValueSize, ErrNamespace, ErrReservedKey,
// ErrShadow, ErrBadRequest, ErrUnknownTable, ErrBadVersion, ErrBadFrame,
// ErrFeature — retrying those replays the same answer (or worse, a
// non-idempotent side effect). Unknown error shapes are conservatively
// terminal: retrying an unclassified failure risks duplicating a write.
//
// nil is not retryable.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrBusy) || errors.Is(err, ErrRetryable) {
		return true
	}
	// Terminal sentinels first: a wrapped table-level refusal stays
	// terminal even if some transport type is also in the chain.
	for _, terminal := range []error{
		ErrBadRequest, ErrUnknownTable, ErrBadVersion, ErrBadFrame, ErrFeature,
		core.ErrExists, core.ErrShadow, core.ErrFull, core.ErrReservedKey,
		core.ErrWrongMode, core.ErrValueSize, core.ErrNamespace,
		core.ErrTooManyHandles,
	} {
		if errors.Is(err, terminal) {
			return false
		}
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, os.ErrDeadlineExceeded),
		errors.Is(err, net.ErrClosed):
		return true
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, syscall.ETIMEDOUT),
		errors.Is(err, syscall.EHOSTUNREACH),
		errors.Is(err, syscall.ENETUNREACH):
		return true
	}
	// Any other net.Error (DNS failures, dial timeouts wrapped by the
	// runtime, ...) is transport-shaped.
	var ne net.Error
	return errors.As(err, &ne)
}

// ErrRetryable marks an error as transient for IsRetryable regardless of
// its underlying shape: wrap with fmt.Errorf("%w: ...", ErrRetryable)
// when a failure is known-transient but carries no transport type in its
// chain (a user OpenShard callback failing, say).
var ErrRetryable = errors.New("retryable")

// RetryPolicy bounds the client's transparent redial-and-retry loop:
// capped exponential backoff with deterministic-seedable jitter. The zero
// value disables retries entirely (errors surface exactly as before), so
// existing callers are unaffected; set Max > 0 to opt in.
type RetryPolicy struct {
	// Max is the retry budget: how many additional attempts one
	// synchronous operation may make after its first failure. It also
	// gates transparent redial — 0 disables both.
	Max int
	// BaseDelay is the first backoff step (default 2ms). Attempt n sleeps
	// a jittered duration in [d/2, d) where d = min(BaseDelay<<n,
	// MaxDelay).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 250ms).
	MaxDelay time.Duration
	// DialTimeout bounds each redial attempt (default 1s), so a
	// blackholed SYN cannot wedge a retry loop for minutes.
	DialTimeout time.Duration
	// Seed selects the jitter sequence; 0 derives one from the clock.
	// Tests pin it for reproducible schedules.
	Seed uint64
}

// DefaultRetry is a sensible client policy: 3 retries, 2ms→250ms backoff.
var DefaultRetry = RetryPolicy{Max: 3}

// norm fills in the defaulted fields.
func (p RetryPolicy) norm() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = time.Second
	}
	return p
}

// backoff returns the jittered delay for retry attempt n (0-based),
// advancing the caller's xorshift state.
func (p RetryPolicy) backoff(n int, rng *uint64) time.Duration {
	d := p.BaseDelay
	for i := 0; i < n && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	// Jitter over [d/2, d): decorrelates a fleet of clients retrying the
	// same dead shard without ever collapsing the delay to ~0.
	return d/2 + time.Duration(x%uint64(d/2+1))
}
