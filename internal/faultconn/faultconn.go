// Package faultconn wraps net.Conn and net.Listener with deterministic,
// seedable fault programs for testing transport resilience: connections
// that die after N bytes, black holes that swallow reads, injected
// latency, and connection resets. The faults are byte-count- and
// seed-driven — never wall-clock-scheduled — so a test that fails under a
// program fails the same way every run.
//
// The wrappers are plumbing-faithful: deadlines set through the usual
// net.Conn surface keep working (a blackholed Read still honors the read
// deadline and returns a net.Error with Timeout() == true), Close unblocks
// blackholed readers, and errors injected by the program are the same
// shapes real kernels produce (io.EOF for a remote close, ECONNRESET for
// a reset), so retry classifiers exercise their production paths.
package faultconn

import (
	"net"
	"os"
	"sync"
	"syscall"
	"time"
)

// Program is one connection's deterministic fault schedule. The zero value
// injects no faults. Byte thresholds count bytes actually transferred
// through this wrapper (before the fault fires), so programs compose with
// any buffering layered above.
type Program struct {
	// DropAfterRead, when > 0, makes every Read after n total bytes have
	// been read fail. The connection behaves as if the peer vanished: the
	// failing Read returns io.EOF (or ECONNRESET with Reset), and the
	// underlying conn is closed.
	DropAfterRead int64
	// DropAfterWrite, when > 0, makes every Write after n total bytes have
	// been written fail with EPIPE (or ECONNRESET with Reset) and closes
	// the underlying conn.
	DropAfterWrite int64
	// BlackholeAfterRead, when > 0, makes every Read after n total bytes
	// block forever — bytes keep arriving from the peer but are never
	// delivered — until the read deadline expires (os.ErrDeadlineExceeded,
	// a timeout net.Error) or the conn is closed. This models a hung peer
	// or a one-way partition, the failure shape TCP itself never reports.
	BlackholeAfterRead int64
	// Reset switches the Drop* faults from clean-close shapes (io.EOF /
	// EPIPE) to syscall.ECONNRESET, the shape of an RST from a kill -9'd
	// peer.
	Reset bool
	// ReadDelay adds a fixed latency before every Read is attempted;
	// Jitter adds a seed-deterministic extra in [0, Jitter).
	ReadDelay time.Duration
	// WriteDelay adds a fixed latency before every Write is attempted.
	WriteDelay time.Duration
	// Jitter bounds the per-op pseudo-random extra delay added on top of
	// ReadDelay/WriteDelay. Zero Seed with non-zero Jitter still yields a
	// fixed (all-zero-seeded) sequence — determinism is the point.
	Jitter time.Duration
	// Seed selects the jitter sequence.
	Seed uint64
}

// Conn wraps a net.Conn with a fault Program. Concurrency contract matches
// net.Conn: one reader and one writer may use it simultaneously.
type Conn struct {
	inner net.Conn
	prog  Program

	mu           sync.Mutex
	readBytes    int64
	writtenBytes int64
	rng          uint64
	closed       chan struct{}
	closeOnce    sync.Once
	readDeadline time.Time
}

// Wrap returns c with the fault program applied.
func Wrap(c net.Conn, p Program) *Conn {
	return &Conn{inner: c, prog: p, rng: p.Seed | 1, closed: make(chan struct{})}
}

// nextJitter advances the xorshift64 state and maps it onto [0, Jitter).
func (c *Conn) nextJitter() time.Duration {
	if c.prog.Jitter <= 0 {
		return 0
	}
	c.mu.Lock()
	x := c.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.rng = x
	c.mu.Unlock()
	return time.Duration(x % uint64(c.prog.Jitter))
}

// sleep pauses for d (+ jitter), cut short by Close.
func (c *Conn) sleep(d time.Duration) {
	d += c.nextJitter()
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// dropErr is the error shape of a Drop* fault.
func (c *Conn) dropErr(write bool) error {
	if c.prog.Reset {
		return &net.OpError{Op: opName(write), Net: "tcp", Err: syscall.ECONNRESET}
	}
	if write {
		return &net.OpError{Op: "write", Net: "tcp", Err: syscall.EPIPE}
	}
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

func opName(write bool) string {
	if write {
		return "write"
	}
	return "read"
}

// blackhole blocks until the read deadline or Close, returning the same
// error net.Conn reads return on an expired deadline.
func (c *Conn) blackhole() error {
	c.mu.Lock()
	dl := c.readDeadline
	c.mu.Unlock()
	if dl.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	t := time.NewTimer(time.Until(dl))
	defer t.Stop()
	select {
	case <-t.C:
		return &net.OpError{Op: "read", Net: "tcp", Err: os.ErrDeadlineExceeded}
	case <-c.closed:
		return net.ErrClosed
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	if c.prog.ReadDelay > 0 || c.prog.Jitter > 0 {
		c.sleep(c.prog.ReadDelay)
	}
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
	}
	c.mu.Lock()
	read := c.readBytes
	c.mu.Unlock()
	if c.prog.BlackholeAfterRead > 0 && read >= c.prog.BlackholeAfterRead {
		return 0, c.blackhole()
	}
	if c.prog.DropAfterRead > 0 && read >= c.prog.DropAfterRead {
		c.inner.Close()
		return 0, c.dropErr(false)
	}
	// Clamp so the byte that crosses a threshold is the last delivered.
	max := int64(len(b))
	if c.prog.BlackholeAfterRead > 0 && read+max > c.prog.BlackholeAfterRead {
		max = c.prog.BlackholeAfterRead - read
	}
	if c.prog.DropAfterRead > 0 && read+max > c.prog.DropAfterRead {
		max = c.prog.DropAfterRead - read
	}
	n, err := c.inner.Read(b[:max])
	c.mu.Lock()
	c.readBytes += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.prog.WriteDelay > 0 || c.prog.Jitter > 0 {
		c.sleep(c.prog.WriteDelay)
	}
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
	}
	c.mu.Lock()
	written := c.writtenBytes
	c.mu.Unlock()
	if c.prog.DropAfterWrite > 0 && written >= c.prog.DropAfterWrite {
		c.inner.Close()
		return 0, c.dropErr(true)
	}
	max := int64(len(b))
	short := false
	if c.prog.DropAfterWrite > 0 && written+max > c.prog.DropAfterWrite {
		max = c.prog.DropAfterWrite - written
		short = true
	}
	n, err := c.inner.Write(b[:max])
	c.mu.Lock()
	c.writtenBytes += int64(n)
	c.mu.Unlock()
	if err == nil && short {
		// The tail of b crossed the drop threshold: report a short,
		// failed write, like a send() cut off by a vanished peer.
		c.inner.Close()
		return n, c.dropErr(true)
	}
	return n, err
}

// Close closes the wrapper and the underlying conn, waking any blackholed
// or delayed operation.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

func (c *Conn) LocalAddr() net.Addr  { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener, applying a per-connection Program chosen
// by ProgramFor to every accepted conn.
type Listener struct {
	net.Listener
	// ProgramFor picks the fault program for the i-th accepted connection
	// (0-based). A nil ProgramFor applies the zero Program to every conn.
	ProgramFor func(i int) Program

	mu       sync.Mutex
	accepted int
}

// WrapListener returns ln with programFor applied to each accepted conn.
func WrapListener(ln net.Listener, programFor func(i int) Program) *Listener {
	return &Listener{Listener: ln, ProgramFor: programFor}
}

func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.accepted
	l.accepted++
	l.mu.Unlock()
	var p Program
	if l.ProgramFor != nil {
		p = l.ProgramFor(i)
	}
	return Wrap(c, p), nil
}
