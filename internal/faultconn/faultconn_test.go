package faultconn

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"
)

// pipePair returns the two ends of a loopback TCP connection.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

// TestDropAfterRead: exactly DropAfterRead bytes are delivered, then reads
// fail with a transport-shaped error and the conn is closed.
func TestDropAfterRead(t *testing.T) {
	client, srv := pipePair(t)
	fc := Wrap(client, Program{DropAfterRead: 10})
	go srv.Write(make([]byte, 64))

	buf := make([]byte, 64)
	total := 0
	var finalErr error
	for {
		n, err := fc.Read(buf)
		total += n
		if err != nil {
			finalErr = err
			break
		}
	}
	if total != 10 {
		t.Fatalf("delivered %d bytes, want 10", total)
	}
	var ne *net.OpError
	if !errors.As(finalErr, &ne) || !errors.Is(finalErr, syscall.ECONNRESET) {
		t.Fatalf("drop error = %v, want ECONNRESET OpError", finalErr)
	}
}

// TestDropAfterWrite: the write that crosses the threshold fails short and
// the error is EPIPE (or ECONNRESET with Reset).
func TestDropAfterWrite(t *testing.T) {
	for _, reset := range []bool{false, true} {
		client, srv := pipePair(t)
		fc := Wrap(client, Program{DropAfterWrite: 8, Reset: reset})
		// Keep the peer reading so short writes aren't buffer-bound.
		go io.Copy(io.Discard, srv)

		n1, err1 := fc.Write(make([]byte, 6))
		if n1 != 6 || err1 != nil {
			t.Fatalf("first write = (%d,%v), want (6,nil)", n1, err1)
		}
		n2, err2 := fc.Write(make([]byte, 6))
		if n2 != 2 || err2 == nil {
			t.Fatalf("crossing write = (%d,%v), want (2, error)", n2, err2)
		}
		want := error(syscall.EPIPE)
		if reset {
			want = syscall.ECONNRESET
		}
		if !errors.Is(err2, want) {
			t.Fatalf("reset=%v: crossing write error = %v, want %v", reset, err2, want)
		}
		if _, err := fc.Write(make([]byte, 1)); err == nil {
			t.Fatal("write after drop succeeded")
		}
	}
}

// TestBlackholeHonorsDeadline: a blackholed read returns a timeout
// net.Error at the read deadline instead of hanging.
func TestBlackholeHonorsDeadline(t *testing.T) {
	client, srv := pipePair(t)
	fc := Wrap(client, Program{BlackholeAfterRead: 4})
	go srv.Write(make([]byte, 64))

	buf := make([]byte, 64)
	total := 0
	for total < 4 {
		n, err := fc.Read(buf)
		if err != nil {
			t.Fatalf("read before blackhole: %v", err)
		}
		total += n
	}
	fc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := fc.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read error = %v, want timeout net.Error", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("deadline fired after %v, too early", time.Since(start))
	}
}

// TestBlackholeUnblocksOnClose: Close wakes a reader stuck in a blackhole
// with no deadline.
func TestBlackholeUnblocksOnClose(t *testing.T) {
	client, _ := pipePair(t)
	fc := Wrap(client, Program{BlackholeAfterRead: 0, DropAfterRead: 0})
	fc.prog.BlackholeAfterRead = 1
	fc.readBytes = 1 // already past the threshold

	var wg sync.WaitGroup
	wg.Add(1)
	var err error
	go func() {
		defer wg.Done()
		_, err = fc.Read(make([]byte, 8))
	}()
	time.Sleep(10 * time.Millisecond)
	fc.Close()
	wg.Wait()
	if !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read after Close = %v, want net.ErrClosed", err)
	}
}

// TestDeterministicJitter: two conns with the same seed sleep the same
// pseudo-random schedule (observed via the rng stream, not wall clock).
func TestDeterministicJitter(t *testing.T) {
	a := &Conn{prog: Program{Jitter: time.Millisecond, Seed: 42}, rng: 42 | 1}
	b := &Conn{prog: Program{Jitter: time.Millisecond, Seed: 42}, rng: 42 | 1}
	for i := 0; i < 100; i++ {
		if ja, jb := a.nextJitter(), b.nextJitter(); ja != jb {
			t.Fatalf("step %d: jitter diverged (%v vs %v)", i, ja, jb)
		}
	}
}

// TestListenerAppliesPrograms: each accepted conn gets its indexed program.
func TestListenerAppliesPrograms(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(ln, func(i int) Program {
		if i == 0 {
			return Program{DropAfterRead: 3}
		}
		return Program{}
	})
	defer fl.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			c, err := fl.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(io.Discard, c) // count on the server side
				// Echo is unnecessary; the client only writes.
			}(c)
		}
	}()

	// First conn: server-side reads die after 3 bytes; our writes
	// eventually error once the kernel window drains (can't assert
	// reliably) — instead assert the wrapper type by reading on a second
	// clean conn.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		fl.mu.Lock()
		n := fl.accepted
		fl.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accepted %d conns, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
}
