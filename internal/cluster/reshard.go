package cluster

import (
	"errors"
	"fmt"

	"repro/internal/server"

	core "repro/internal/core"
)

// This file is the online resharding coordinator: AddShard, RemoveShard
// and ReplaceShard change cluster membership with zero downtime. A
// membership change runs in phases, each published as a new ring
// generation and fenced by a quiesce (no instance still routes on an
// older view):
//
//	normal → handoff → sealed → flip (normal, epoch+1)
//
// Handoff: clients keep serving from the OLD ring, but every write whose
// replica set differs on the target ring journals its key and
// double-writes to the incoming owners. Meanwhile the coordinator streams
// each moving key from its current owner to its new owners (bulk copy),
// skipping journaled keys — those are racing with live writes and will be
// re-copied from scratch.
//
// Sealed: writes to moving ranges briefly block (reads never do); once
// every instance has observed the seal, the remaining journal is copied
// authoritatively — each key re-read from its current owners, the
// freshest replica winning by write-version (last-write-wins; enable
// core.Config.TrackVersions on the shards for exact version ordering,
// otherwise the primary-most live copy wins).
//
// Flip: the target ring becomes the serving ring in one atomic publish,
// the epoch increments, and removed shards leave the ring. Old owners
// retain stale copies of moved ranges — harmless, they are no longer in
// any replica set — and removed shards can be decommissioned as soon as
// their in-flight operations drain (the post-flip quiesce).
//
// A failed reshard rolls back to the old ring: correctness is preserved
// (the old ring never stopped serving), but shards that were bulk-copy
// destinations may retain partial data. Wipe an added shard (restart it
// empty) before retrying its AddShard, or a key deleted between the two
// attempts could resurrect.
type reshardPlan struct {
	names       []string // extended slot table (grow-only)
	deadServing []bool   // membership during handoff: adds not yet members
	deadTarget  []bool   // membership after the flip
	removeSlots []int
	nextRing    []ringPoint
}

// AddShard adds a named shard to the cluster online, migrating the ring
// arcs it acquires. The shard should be empty: bulk copy overwrites
// blindly (last write wins at equal versions).
func (t *Topology) AddShard(name string) error { return t.reshard([]string{name}, nil) }

// RemoveShard removes a named shard online, first migrating the ranges it
// primaries (and re-replicating what it backed) to the surviving shards.
// The shard must stay reachable until RemoveShard returns.
func (t *Topology) RemoveShard(name string) error { return t.reshard(nil, []string{name}) }

// ReplaceShard substitutes newName for oldName in one membership change —
// cheaper than remove-then-add, which would migrate most ranges twice.
func (t *Topology) ReplaceShard(oldName, newName string) error {
	return t.reshard([]string{newName}, []string{oldName})
}

// plan validates the membership change against tab and lays out the
// extended slot table and target ring.
func (t *Topology) plan(tab *ringTab, adds, removes []string) (*reshardPlan, error) {
	liveByName := make(map[string]int)
	for s, n := range tab.names {
		if !tab.dead[s] {
			liveByName[n] = s
		}
	}
	for i, a := range adds {
		if _, ok := liveByName[a]; ok {
			return nil, fmt.Errorf("cluster: shard %q is already a member", a)
		}
		for _, b := range adds[:i] {
			if a == b {
				return nil, fmt.Errorf("cluster: duplicate shard %q in change", a)
			}
		}
	}
	p := &reshardPlan{}
	for _, r := range removes {
		s, ok := liveByName[r]
		if !ok {
			return nil, fmt.Errorf("cluster: shard %q is not a member", r)
		}
		p.removeSlots = append(p.removeSlots, s)
	}
	liveAfter := len(liveByName) - len(removes) + len(adds)
	if liveAfter < t.replicas {
		return nil, fmt.Errorf("cluster: change leaves %d shards, fewer than Replicas %d", liveAfter, t.replicas)
	}
	p.names = append(append([]string(nil), tab.names...), adds...)
	p.deadServing = append([]bool(nil), tab.dead...)
	for range adds {
		p.deadServing = append(p.deadServing, true) // not members until the flip
	}
	p.deadTarget = append([]bool(nil), p.deadServing...)
	for s := len(tab.names); s < len(p.names); s++ {
		p.deadTarget[s] = false
	}
	for _, s := range p.removeSlots {
		p.deadTarget[s] = true
	}
	p.nextRing = buildRing(t.hb, t.vnodes, p.names, p.deadTarget)
	return p, nil
}

// reshard executes one membership change end to end. Serialized by t.mu;
// see the file comment for the phase machine.
func (t *Topology) reshard(adds, removes []string) error {
	if len(adds) == 0 && len(removes) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.openAdmin == nil {
		return errors.New("cluster: membership is frozen (no OpenShard configured)")
	}
	tab := t.tab.Load()
	p, err := t.plan(tab, adds, removes)
	if err != nil {
		return err
	}
	// Grow the detector BEFORE the first publish referencing new slots.
	t.det.grow(len(p.names))

	publish := func(phase int, epoch uint64, dead []bool, ring, next []ringPoint) *ringTab {
		cur := t.tab.Load()
		nt := &ringTab{
			gen: cur.gen + 1, epoch: epoch, phase: phase,
			names: p.names, dead: dead, ring: ring, next: next,
		}
		t.tab.Store(nt)
		return nt
	}
	rollback := func(err error) error {
		t.swapJournal(nil)
		rt := publish(phaseNormal, tab.epoch, p.deadServing, tab.ring, nil)
		// Best-effort: don't leave instances parked on a sealed view.
		_ = t.quiesce(rt.gen)
		return fmt.Errorf("cluster: reshard aborted: %w", err)
	}

	// Handoff: open the journal first so no double-written key can miss it.
	t.swapJournal(make(map[uint64]struct{}))
	ht := publish(phaseHandoff, tab.epoch, p.deadServing, tab.ring, p.nextRing)
	if err := t.quiesce(ht.gen); err != nil {
		return rollback(err)
	}

	if err := t.bulkCopy(ht); err != nil {
		return rollback(err)
	}

	// Shrink rounds: drain the journal while writes still flow, so the
	// sealed window only has to cover the final sliver.
	for round := 0; round < 2; round++ {
		prev := t.swapJournal(make(map[uint64]struct{}))
		if len(prev) == 0 {
			break
		}
		if err := t.copyJournal(ht, prev); err != nil {
			return rollback(err)
		}
	}

	// Seal: moving-range writes now block; once quiesced, the journal is
	// frozen and the final copy below is authoritative.
	st := publish(phaseSealed, tab.epoch, p.deadServing, tab.ring, p.nextRing)
	if err := t.quiesce(st.gen); err != nil {
		return rollback(err)
	}
	final := t.swapJournal(nil)
	if err := t.copyJournal(ht, final); err != nil {
		return rollback(err)
	}

	// Flip: the target ring starts serving, atomically, for everyone.
	ft := publish(phaseNormal, tab.epoch+1, p.deadTarget, p.nextRing, nil)
	// Drain: wait for in-flight old-ring operations so removed shards are
	// safe to decommission when we return. Non-fatal — the flip is done.
	_ = t.quiesce(ft.gen)
	for _, s := range p.removeSlots {
		t.det.ok(s) // stop the prober from chasing a decommissioned shard
	}
	return nil
}

// servingSlots returns the distinct slots on tab's serving ring.
func servingSlots(tab *ringTab) []int {
	var out []int
	for s := range tab.names {
		if !tab.dead[s] {
			out = append(out, s)
		}
	}
	return out
}

// bulkCopy streams every moving key from its current owner to its new
// owners. Each key is processed by exactly one source — the first
// AVAILABLE replica in rank order — so a source crashing mid-copy (even
// kill -9) only shifts its keys to the surviving replicas: the sweep
// retries until a full pass completes with a stable source set. Keys
// journaled by concurrent writes are skipped here; the journal passes
// re-copy them authoritatively.
func (t *Topology) bulkCopy(tab *ringTab) error {
	serving := servingSlots(tab)
	avail := make([]bool, len(tab.names))
	for _, s := range serving {
		avail[s] = true
	}
	var lastErr error
	// Each failed sweep marks at least one source unavailable, so
	// len(serving)+1 sweeps suffice to reach a stable set.
	for sweep := 0; sweep <= len(serving); sweep++ {
		clean := true
		for _, src := range serving {
			if !avail[src] {
				continue
			}
			fatal, err := t.scanAndCopy(tab, src, avail)
			if err == nil {
				continue
			}
			if fatal {
				return err
			}
			// Source became unreachable: exclude it and re-sweep — its
			// keys fall to the next-rank replicas.
			avail[src] = false
			clean = false
			lastErr = err
		}
		if clean {
			for _, s := range serving {
				if avail[s] {
					return nil
				}
			}
			return fmt.Errorf("cluster: no migration source reachable: %w", lastErr)
		}
	}
	return fmt.Errorf("cluster: bulk copy could not stabilize: %w", lastErr)
}

// scanAndCopy walks src's table and copies the keys src is responsible
// for (first available owner in rank order) to their new owners. fatal
// reports a destination failure — the reshard cannot proceed without its
// destinations — while a plain error marks the source unavailable.
func (t *Topology) scanAndCopy(tab *ringTab, src int, avail []bool) (fatal bool, err error) {
	s, err := t.adminStore(src)
	if err != nil {
		return false, err
	}
	sc, ok := s.(core.Scanner)
	if !ok {
		return true, fmt.Errorf("cluster: shard %q store cannot scan (no core.Scanner); migration needs it", tab.names[src])
	}
	var oldBuf, newBuf [maxReplicaStack]int
	var origBins, cur uint64
	for {
		ents, ob, next, done, err := sc.ScanStep(origBins, cur, server.MaxScanBatch)
		if err != nil {
			t.dropAdmin(src)
			return false, err
		}
		origBins, cur = ob, next
		for _, e := range ents {
			h := t.keyh(e.Key)
			owners := replicasOn(tab.ring, h, t.replicas, oldBuf[:0])
			first := -1
			for _, o := range owners {
				if avail[o] {
					first = o
					break
				}
			}
			if first != src {
				continue // another source owns this key's copy duty
			}
			if t.journaled(e.Key) {
				continue // racing with live writes; journal pass re-copies
			}
			dsts := replicasOn(tab.next, h, t.replicas, newBuf[:0])
			copied := false
			for _, d := range dsts {
				skip := false
				for _, o := range owners {
					if o == d {
						skip = true // already holds the key
						break
					}
				}
				if skip {
					continue
				}
				ds, err := t.adminStore(d)
				if err != nil {
					return true, fmt.Errorf("cluster: destination %q: %w", tab.names[d], err)
				}
				if err := upsert(ds, e.Key, e.Value); err != nil {
					t.dropAdmin(d)
					return true, fmt.Errorf("cluster: destination %q: %w", tab.names[d], err)
				}
				copied = true
			}
			if copied {
				t.moved.Add(1)
			}
		}
		if done {
			return false, nil
		}
	}
}

// copyJournal re-copies each journaled key from scratch: read every
// reachable current owner, pick the freshest copy (highest write version;
// ties — and version-less stores — resolve to the primary-most replica),
// and apply it to the new owners, as a write or as a delete. Runs both
// during handoff (shrink rounds, results may be immediately stale — the
// next round catches that) and under seal (authoritative: moving-range
// writers are blocked and quiesced).
func (t *Topology) copyJournal(tab *ringTab, keys map[uint64]struct{}) error {
	if len(keys) == 0 {
		return nil
	}
	var oldBuf, newBuf [maxReplicaStack]int
	for key := range keys {
		h := t.keyh(key)
		owners := replicasOn(tab.ring, h, t.replicas, oldBuf[:0])
		var bestVal, bestVer uint64
		var bestHas, responded bool
		for _, o := range owners { // rank order: strict > keeps ties primary-most
			s, err := t.adminStore(o)
			if err != nil {
				continue
			}
			var val, ver uint64
			var has bool
			if vr, ok := s.(core.VersionReader); ok {
				val, has, ver, err = vr.GetVer(key)
			} else {
				val, has, err = s.Get(key)
			}
			if err != nil {
				t.dropAdmin(o)
				continue
			}
			if !responded || ver > bestVer {
				bestVal, bestHas, bestVer = val, has, ver
			}
			responded = true
		}
		if !responded {
			return fmt.Errorf("cluster: no replica of journaled key %#x reachable", key)
		}
		moved := false
		dsts := replicasOn(tab.next, h, t.replicas, newBuf[:0])
		for _, d := range dsts {
			already := false
			for _, o := range owners {
				if o == d {
					already = true // current owner: has the live write path's copy
					break
				}
			}
			if already {
				continue
			}
			ds, err := t.adminStore(d)
			if err != nil {
				return fmt.Errorf("cluster: destination %q: %w", tab.names[d], err)
			}
			if bestHas {
				err = upsert(ds, key, bestVal)
			} else {
				_, _, err = ds.Delete(key) // a miss is fine: nothing to erase
			}
			if err != nil {
				t.dropAdmin(d)
				return fmt.Errorf("cluster: destination %q: %w", tab.names[d], err)
			}
			moved = true
		}
		if moved {
			t.moved.Add(1)
		}
	}
	return nil
}
