package cluster

import (
	"fmt"
	"net"
	"testing"
	"testing/quick"

	"repro/internal/server"

	core "repro/internal/core"
)

// startShards launches n in-process dlht-servers and returns their
// addresses plus the backing tables (for reaching behind the wire in
// assertions).
func startShards(t testing.TB, n int) ([]string, []*core.Table) {
	t.Helper()
	addrs := make([]string, n)
	tbls := make([]*core.Table, n)
	for i := 0; i < n; i++ {
		tbl := core.MustNew(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 64})
		s := server.New(tbl, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() { s.Close() })
		addrs[i] = ln.Addr().String()
		tbls[i] = tbl
	}
	return addrs, tbls
}

// TestRoutingExactlyOneShard: ShardFor is a total function onto the shard
// set — every key routes to exactly one shard, deterministically.
func TestRoutingExactlyOneShard(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	stores := make([]core.Store, len(names))
	for i := range stores {
		stores[i] = core.MustNew(core.Config{Bins: 1 << 8}).MustStore()
	}
	c, err := New(names, stores, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f := func(key uint64) bool {
		s := c.ShardFor(key)
		return s >= 0 && s < len(names) && c.ShardFor(key) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}

	// Sanity: with 5 shards and 64 vnodes each, a uniform keyspace should
	// touch every shard.
	hit := make([]int, len(names))
	for k := uint64(0); k < 10000; k++ {
		hit[c.ShardFor(k)]++
	}
	for i, h := range hit {
		if h == 0 {
			t.Fatalf("shard %d received no keys: %v", i, hit)
		}
	}
}

// TestRoutingStableAcrossReconnects: the ring depends only on shard names,
// so tearing down every connection and re-dialing the same address list
// preserves every key→shard assignment — and the data written before the
// reconnect is found after it.
func TestRoutingStableAcrossReconnects(t *testing.T) {
	addrs, _ := startShards(t, 3)

	c1, err := Dial(addrs, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	route := make([]int, keys)
	for k := uint64(0); k < keys; k++ {
		route[k] = c1.ShardFor(k)
		if _, inserted, err := c1.Insert(k, k*7); err != nil || !inserted {
			t.Fatalf("insert %d: inserted=%v err=%v", k, inserted, err)
		}
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := Dial(addrs, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for k := uint64(0); k < keys; k++ {
		if got := c2.ShardFor(k); got != route[k] {
			t.Fatalf("key %d routed to shard %d before reconnect, %d after", k, route[k], got)
		}
		if v, ok, err := c2.Get(k); err != nil || !ok || v != k*7 {
			t.Fatalf("Get(%d) after reconnect = (%d,%v,%v)", k, v, ok, err)
		}
	}
}

// TestDataLandsOnRoutedShard: a key written through the cluster is present
// on exactly the shard ShardFor names — checked behind the wire, against
// the backing tables directly.
func TestDataLandsOnRoutedShard(t *testing.T) {
	addrs, tbls := startShards(t, 3)
	c, err := Dial(addrs, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for k := uint64(0); k < 512; k++ {
		if _, inserted, err := c.Insert(k, k^0xabc); err != nil || !inserted {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	hs := make([]*core.Handle, len(tbls))
	for i, tbl := range tbls {
		hs[i] = tbl.MustHandle()
	}
	for k := uint64(0); k < 512; k++ {
		owner := c.ShardFor(k)
		for i, h := range hs {
			v, ok := h.Get(k)
			if (i == owner) != ok {
				t.Fatalf("key %d: present=%v on shard %d, owner is %d", k, ok, i, owner)
			}
			if ok && v != k^0xabc {
				t.Fatalf("key %d: value %d on shard %d", k, v, i)
			}
		}
	}
}

// TestPipelinedMixedShardBurst: a deep pipelined burst touching every
// shard completes each key's ops in program order — insert, get (sees the
// insert), put, get (sees the put), delete — even though completions from
// different shards interleave.
func TestPipelinedMixedShardBurst(t *testing.T) {
	addrs, _ := startShards(t, 3)
	c, err := Dial(addrs, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 300
	// stage[k] counts how far key k's program has progressed; each
	// completion must observe the exact previous stage.
	stage := make([]int, keys)
	var fail error
	p, err := c.Pipe(core.PipeOpts{Window: 8, OnComplete: func(cp core.Completion) {
		if fail != nil {
			return
		}
		k := cp.Key
		check := func(wantStage int, ok bool, detail string) {
			if stage[k] != wantStage || !ok {
				fail = fmt.Errorf("key %d %s: stage=%d ok=%v err=%v", k, detail, stage[k], ok, cp.Err)
			}
			stage[k]++
		}
		switch stage[k] {
		case 0:
			check(0, cp.Kind == core.OpInsert && cp.OK, "insert")
		case 1:
			check(1, cp.Kind == core.OpGet && cp.OK && cp.Value == k*3, "get-after-insert")
		case 2:
			check(2, cp.Kind == core.OpPut && cp.OK && cp.Value == k*3, "put")
		case 3:
			check(3, cp.Kind == core.OpGet && cp.OK && cp.Value == k*3+1, "get-after-put")
		case 4:
			check(4, cp.Kind == core.OpDelete && cp.OK && cp.Value == k*3+1, "delete")
		default:
			fail = fmt.Errorf("key %d completed %d ops", k, stage[k]+1)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Interleave the programs: all inserts, then all first gets, etc., so
	// in-flight windows always hold a mix of shards and keys.
	for k := uint64(0); k < keys; k++ {
		if err := p.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < keys; k++ {
		if err := p.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < keys; k++ {
		if err := p.Put(k, k*3+1); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < keys; k++ {
		if err := p.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < keys; k++ {
		if err := p.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if fail != nil {
		t.Fatal(fail)
	}
	for k := range stage {
		if stage[k] != 5 {
			t.Fatalf("key %d: %d/5 completions", k, stage[k])
		}
	}
}

// TestMixedBackends: a cluster over two local stores and one remote client
// — routing and the Store surface do not care what a shard is made of.
func TestMixedBackends(t *testing.T) {
	addrs, _ := startShards(t, 1)
	remote, err := server.DialV2(addrs[0], server.ClientOpts{})
	if err != nil {
		t.Fatal(err)
	}
	stores := []core.Store{
		core.MustNew(core.Config{Bins: 1 << 8, Resizable: true}).MustStore(),
		core.MustNew(core.Config{Bins: 1 << 8, Resizable: true}).MustStore(),
		remote,
	}
	c, err := New([]string{"local-0", "local-1", "remote-0"}, stores, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for k := uint64(0); k < 256; k++ {
		if _, inserted, err := c.Insert(k, k+1); err != nil || !inserted {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(0); k < 256; k++ {
		if v, ok, err := c.Get(k); err != nil || !ok || v != k+1 {
			t.Fatalf("Get(%d) = (%d,%v,%v)", k, v, ok, err)
		}
	}
}

// TestBadConfigs: constructor validation.
func TestBadConfigs(t *testing.T) {
	if _, err := New(nil, nil, Opts{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	s := core.MustNew(core.Config{Bins: 1 << 8}).MustStore()
	if _, err := New([]string{"a", "b"}, []core.Store{s}, Opts{}); err == nil {
		t.Fatal("name/store length mismatch accepted")
	}
	if _, err := New([]string{"a", "a"}, []core.Store{s, s}, Opts{}); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, Opts{}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
