package cluster

import (
	"fmt"
	"net"
	"syscall"
	"testing"
	"time"

	core "repro/internal/core"
)

// transportErr is a retryable, transport-shaped failure for fakes.
var transportErr = &net.OpError{Op: "read", Err: syscall.ECONNRESET}

// flaky wraps an in-process Store and injects failures on demand: sync
// ops error while failSync is set; pipes either reject enqueues (mode
// enqErr) or accept them and complete with the transport error (mode
// compErr) while failPipe is set.
type flaky struct {
	core.Store
	failSync bool
	failPipe string // "", "enqErr", "compErr"
}

func (f *flaky) Get(key uint64) (uint64, bool, error) {
	if f.failSync {
		return 0, false, transportErr
	}
	return f.Store.Get(key)
}

func (f *flaky) Put(key, val uint64) (uint64, bool, error) {
	if f.failSync {
		return 0, false, transportErr
	}
	return f.Store.Put(key, val)
}

func (f *flaky) Insert(key, val uint64) (uint64, bool, error) {
	if f.failSync {
		return 0, false, transportErr
	}
	return f.Store.Insert(key, val)
}

func (f *flaky) Delete(key uint64) (uint64, bool, error) {
	if f.failSync {
		return 0, false, transportErr
	}
	return f.Store.Delete(key)
}

func (f *flaky) Pipe(opts core.PipeOpts) (core.Pipe, error) {
	inner, err := f.Store.Pipe(opts)
	if err != nil {
		return nil, err
	}
	return &flakyPipe{f: f, inner: inner, onc: opts.OnComplete}, nil
}

type flakyPipe struct {
	f     *flaky
	inner core.Pipe
	onc   func(core.Completion)
}

func (p *flakyPipe) enq(kind core.OpKind, key uint64, fwd func() error) error {
	switch p.f.failPipe {
	case "enqErr":
		return transportErr
	case "compErr":
		// Accept the frame, then fail it inline — the repPipe must cope
		// with completions arriving during the enqueue call itself.
		if p.onc != nil {
			p.onc(core.Completion{Kind: kind, Key: key, Err: transportErr})
		}
		return nil
	}
	return fwd()
}

func (p *flakyPipe) Get(key uint64) error {
	return p.enq(core.OpGet, key, func() error { return p.inner.Get(key) })
}

func (p *flakyPipe) Put(key, val uint64) error {
	return p.enq(core.OpPut, key, func() error { return p.inner.Put(key, val) })
}

func (p *flakyPipe) Insert(key, val uint64) error {
	return p.enq(core.OpInsert, key, func() error { return p.inner.Insert(key, val) })
}

func (p *flakyPipe) Delete(key uint64) error {
	return p.enq(core.OpDelete, key, func() error { return p.inner.Delete(key) })
}

func (p *flakyPipe) Flush() error { return p.inner.Flush() }
func (p *flakyPipe) Close() error { return p.inner.Close() }

// repFixture builds an n-shard in-process cluster with flaky wrappers.
func repFixture(t *testing.T, n int, opts Opts) (*Cluster, []*flaky) {
	t.Helper()
	names := make([]string, n)
	stores := make([]core.Store, n)
	fl := make([]*flaky, n)
	for i := range stores {
		names[i] = fmt.Sprintf("shard-%d", i)
		fl[i] = &flaky{Store: core.MustNew(core.Config{Bins: 1 << 10, Resizable: true}).MustStore()}
		stores[i] = fl[i]
	}
	c, err := New(names, stores, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, fl
}

// TestReplicasForDistinctStable: the replica set has Replicas distinct
// members, rank 0 is ShardFor, and the set is deterministic.
func TestReplicasForDistinctStable(t *testing.T) {
	c, _ := repFixture(t, 5, Opts{Replicas: 3})
	for key := uint64(0); key < 5000; key++ {
		set := c.replicasFor(key, nil)
		if len(set) != 3 {
			t.Fatalf("key %d: replica set %v, want 3 members", key, set)
		}
		if set[0] != c.ShardFor(key) {
			t.Fatalf("key %d: rank 0 %d != ShardFor %d", key, set[0], c.ShardFor(key))
		}
		seen := map[int]bool{}
		for _, s := range set {
			if seen[s] {
				t.Fatalf("key %d: duplicate shard in replica set %v", key, set)
			}
			seen[s] = true
		}
		again := c.replicasFor(key, nil)
		for i := range set {
			if set[i] != again[i] {
				t.Fatalf("key %d: replica set not deterministic: %v vs %v", key, set, again)
			}
		}
	}
}

// TestSyncWriteFansToAllReplicas: with R=2 W=2 every acked write is
// present on both replicas, and reads work with either one failing.
func TestSyncWriteFansToAllReplicas(t *testing.T) {
	c, fl := repFixture(t, 4, Opts{Replicas: 2})
	for key := uint64(0); key < 500; key++ {
		if _, ins, err := c.Insert(key, key*10); err != nil || !ins {
			t.Fatalf("Insert(%d): (%v,%v)", key, ins, err)
		}
		for _, s := range c.replicasFor(key, nil) {
			if v, ok, err := fl[s].Store.Get(key); err != nil || !ok || v != key*10 {
				t.Fatalf("replica %d of key %d = (%d,%v,%v), want (%d,true,nil)", s, key, v, ok, err, key*10)
			}
		}
	}
	// Any single shard failing leaves every key readable.
	for kill := range fl {
		fl[kill].failSync = true
		for key := uint64(0); key < 500; key++ {
			if v, ok, err := c.Get(key); err != nil || !ok || v != key*10 {
				t.Fatalf("shard %d down: Get(%d) = (%d,%v,%v)", kill, key, v, ok, err)
			}
		}
		fl[kill].failSync = false
		c.topo.det.ok(kill) // manual re-admit; prober timing is not this test's subject
	}
}

// TestSyncWriteQuorum: W=1 writes succeed with a replica down; W=2
// writes fail once only one replica is reachable, and the error is
// retryable (transport-shaped, not a table refusal).
func TestSyncWriteQuorum(t *testing.T) {
	c1, fl1 := repFixture(t, 2, Opts{Replicas: 2, WriteQuorum: 1})
	fl1[1].failSync = true
	if _, ins, err := c1.Insert(42, 1); err != nil || !ins {
		t.Fatalf("W=1 Insert with one replica down: (%v,%v)", ins, err)
	}

	c2, fl2 := repFixture(t, 2, Opts{Replicas: 2, WriteQuorum: 2})
	fl2[1].failSync = true
	if _, _, err := c2.Insert(42, 1); err == nil {
		t.Fatal("W=2 Insert with one replica down succeeded")
	}
}

// TestDetectorMarksAndRevives: DownAfter consecutive failures mark the
// shard down (reads stop paying for it), a success revives it.
func TestDetectorMarksAndRevives(t *testing.T) {
	c, fl := repFixture(t, 3, Opts{Replicas: 2, DownAfter: 3, ProbeInterval: time.Hour})
	var key uint64
	for k := uint64(0); ; k++ {
		if c.ShardFor(k) == 0 {
			key = k
			break
		}
	}
	if _, ins, err := c.Insert(key, 7); err != nil || !ins {
		t.Fatalf("Insert: (%v,%v)", ins, err)
	}
	fl[0].failSync = true
	for i := 0; i < 3; i++ {
		if _, ok, err := c.Get(key); err != nil || !ok {
			t.Fatalf("failover Get %d: (%v,%v)", i, ok, err)
		}
	}
	if !c.topo.det.isDown(0) {
		t.Fatal("shard 0 not marked down after 3 consecutive failures")
	}
	fl[0].failSync = false
	c.topo.det.ok(0)
	if c.topo.det.isDown(0) {
		t.Fatal("shard 0 still down after success")
	}
}

// TestRepPipeQuorumAndOrder: R=2 W=2 pipelined writes land on both
// replicas; completions come back exactly once per op and in per-key
// program order.
func TestRepPipeQuorumAndOrder(t *testing.T) {
	c, fl := repFixture(t, 4, Opts{Replicas: 2})
	const keys, rounds = 200, 5
	// Round 0 Inserts seed value k; rounds 1..4 Put r*1000+k. A Put
	// completion carries the PREVIOUS value, so per-key program order is
	// observable as ascending prev-rounds in the completion stream.
	prevRounds := map[uint64][]int{}
	total := 0
	p, err := c.Pipe(core.PipeOpts{Window: 8, OnComplete: func(cc core.Completion) {
		if cc.Err != nil || !cc.OK {
			t.Errorf("completion %v key %d: (ok=%v, err=%v)", cc.Kind, cc.Key, cc.OK, cc.Err)
		}
		total++
		if cc.Kind == core.OpPut {
			prevRounds[cc.Key] = append(prevRounds[cc.Key], int(cc.Value/1000))
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		for k := uint64(0); k < keys; k++ {
			var err error
			if r == 0 {
				err = p.Insert(k, k) // round 0 value: 0*1000+k
			} else {
				err = p.Put(k, uint64(r)*1000+k)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if total != keys*rounds {
		t.Fatalf("%d completions, want %d", total, keys*rounds)
	}
	// Per-key completion order must be program order: each Put saw the
	// previous round's value.
	for k := uint64(0); k < keys; k++ {
		prs := prevRounds[k]
		if len(prs) != rounds-1 {
			t.Fatalf("key %d: %d Put completions, want %d", k, len(prs), rounds-1)
		}
		for i, r := range prs {
			if r != i {
				t.Fatalf("key %d: Put %d overwrote round-%d value, want round %d (order broken)", k, i+1, r, i)
			}
		}
	}
	// Both replicas hold the final value.
	for k := uint64(0); k < keys; k++ {
		want := uint64(rounds-1)*1000 + k
		for _, s := range c.replicasFor(k, nil) {
			if v, ok, err := fl[s].Store.Get(k); err != nil || !ok || v != want {
				t.Fatalf("replica %d of key %d = (%d,%v,%v), want %d", s, k, v, ok, err, want)
			}
		}
	}
}

// TestRepPipeReadFailover: reads whose primary fails (inline error
// completions — the nastiest arrival) transparently retry the replica
// and succeed. Both failure shapes are exercised: enqueue rejection and
// error completion.
func TestRepPipeReadFailover(t *testing.T) {
	for _, mode := range []string{"enqErr", "compErr"} {
		c, fl := repFixture(t, 3, Opts{Replicas: 2, DownAfter: 1000})
		for k := uint64(0); k < 300; k++ {
			if _, ins, err := c.Insert(k, k+1); err != nil || !ins {
				t.Fatalf("Insert(%d): (%v,%v)", k, ins, err)
			}
		}
		fl[0].failPipe = mode

		okc := 0
		p, err := c.Pipe(core.PipeOpts{Window: 8, OnComplete: func(cc core.Completion) {
			if cc.Err != nil || !cc.OK || cc.Value != cc.Key+1 {
				t.Errorf("mode %s: Get(%d) completion = (%d,%v,%v)", mode, cc.Key, cc.Value, cc.OK, cc.Err)
				return
			}
			okc++
		}})
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 300; k++ {
			if err := p.Get(k); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		if okc != 300 {
			t.Fatalf("mode %s: %d successful reads, want 300", mode, okc)
		}
	}
}

// TestRepPipeWriteQuorumFailure: with W=2 and a replica rejecting
// frames, writes whose replica set includes the dead shard complete with
// a retryable quorum error — exactly once, never hanging.
func TestRepPipeWriteQuorumFailure(t *testing.T) {
	c, fl := repFixture(t, 2, Opts{Replicas: 2, WriteQuorum: 2, DownAfter: 1000})
	fl[1].failPipe = "compErr"
	okc, errc := 0, 0
	p, err := c.Pipe(core.PipeOpts{Window: 8, OnComplete: func(cc core.Completion) {
		if cc.Err != nil {
			errc++
		} else {
			okc++
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for k := uint64(0); k < n; k++ {
		if err := p.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if okc+errc != n || errc == 0 {
		t.Fatalf("completions ok=%d err=%d, want total %d with errors", okc, errc, n)
	}
	// W=1 over the same failure keeps every write available.
	c2, fl2 := repFixture(t, 2, Opts{Replicas: 2, WriteQuorum: 1, DownAfter: 1000})
	fl2[1].failPipe = "compErr"
	okc = 0
	p2, err := c2.Pipe(core.PipeOpts{Window: 8, OnComplete: func(cc core.Completion) {
		if cc.Err == nil {
			okc++
		} else {
			t.Errorf("W=1 completion error: %v", cc.Err)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		if err := p2.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	if okc != n {
		t.Fatalf("W=1: %d acked writes, want %d", okc, n)
	}
}
