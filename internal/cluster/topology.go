package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashfn"

	core "repro/internal/core"
)

// Topology is the cluster's shared membership state: the epoch-numbered
// consistent-hash ring, the failure detector, the reshard journal, and —
// while a membership change or scrub pass is running — the coordinator
// machinery. Every Cluster instance (one per goroutine, like any Store)
// routes through one Topology, so a membership change published here is
// observed by all of them; the ring itself is immutable and swapped
// through an atomic pointer, never edited in place.
//
// A Cluster built by New or Dial owns a private Topology; DialTopology
// builds a shared one so many worker goroutines (each with its own
// NewClient instance) ride the same membership view, detector, and
// reshard coordinator.
type Topology struct {
	keyh   hashfn.Func64
	hb     func([]byte) uint64
	vnodes int
	window int

	replicas int
	wq       int

	quiesceTimeout time.Duration

	// openShard opens an ordinary per-instance Store for a shard name;
	// openAdmin opens a coordinator/scrubber connection (reshard-featured
	// on the wire). Nil in New-mode clusters without Opts.OpenShard, in
	// which case membership is frozen at construction, as before.
	openShard func(name string) (core.Store, error)
	openAdmin func(name string) (core.Store, error)

	det *detector
	tab atomic.Pointer[ringTab]

	// mu serializes membership changes; it also guards admin, the
	// coordinator's lazily-opened per-slot stores.
	mu    sync.Mutex
	admin map[int]core.Store

	// regMu guards the set of live Cluster instances, walked by quiesce.
	regMu   sync.Mutex
	clients map[*Cluster]struct{}

	// jmu guards journal, the set of keys written into a moving range
	// during the handoff window. Non-nil only while a reshard is running;
	// the final sealed-phase copy of these keys is what makes the flip
	// lose nothing, double-writing is merely the warm-up.
	jmu     sync.Mutex
	journal map[uint64]struct{}

	moved atomic.Uint64 // keys copied by resharding, cumulative

	// upCh carries detector down→up transitions to the scrubber, which
	// answers with a targeted anti-entropy pass. Buffered, lossy: a
	// dropped kick is recovered by the next periodic pass.
	upCh chan int

	scrubMu sync.Mutex
	scrub   *scrubber
}

// Ring phases. Normal is the steady state; Handoff double-writes moving
// ranges and journals them; Sealed briefly blocks writes to moving ranges
// while the journal is copied authoritatively, just before the flip.
const (
	phaseNormal = iota
	phaseHandoff
	phaseSealed
)

// ringTab is one immutable published membership view. Slots (indexes into
// names) are grow-only and never reused, so a slot number identifies the
// same shard in every generation; dead slots simply stop appearing on the
// ring.
type ringTab struct {
	gen   uint64 // bumped on every publish; the quiesce fence counts these
	epoch uint64 // bumped only by a completed flip; the user-visible ring version
	phase int

	names []string // slot-indexed, grow-only
	dead  []bool   // slot no longer a member (removed by a reshard)

	ring []ringPoint // the serving ring (the OLD ring during handoff/sealed)
	next []ringPoint // the target ring during handoff/sealed; nil in normal phase
}

// live returns the slot numbers of current members, ascending.
func (rt *ringTab) live() []int {
	out := make([]int, 0, len(rt.names))
	for s := range rt.names {
		if !rt.dead[s] {
			out = append(out, s)
		}
	}
	return out
}

// ringSearch returns the index of the first ring point at or clockwise of
// h, wrapping to ring[0].
func ringSearch(ring []ringPoint, h uint64) int {
	lo, hi := 0, len(ring)
	for lo < hi {
		mid := (lo + hi) / 2
		if ring[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(ring) {
		lo = 0
	}
	return lo
}

// replicasOn appends the replica set of key hash h on ring to buf[:0]:
// the first replicas DISTINCT slots walking clockwise. Rank 0 is the
// primary. Depends only on the ring geometry, never on liveness, so every
// client agrees on where a key's copies live.
func replicasOn(ring []ringPoint, h uint64, replicas int, buf []int) []int {
	buf = buf[:0]
	start := ringSearch(ring, h)
	for i := 0; i < len(ring) && len(buf) < replicas; i++ {
		s := ring[(start+i)%len(ring)].shard
		dup := false
		for _, b := range buf {
			if b == s {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, s)
		}
	}
	return buf
}

// buildRing hashes vnodes ring points for every live slot.
func buildRing(hb func([]byte) uint64, vnodes int, names []string, dead []bool) []ringPoint {
	ring := make([]ringPoint, 0, len(names)*vnodes)
	for slot, name := range names {
		if dead[slot] {
			continue
		}
		for v := 0; v < vnodes; v++ {
			ring = append(ring, ringPoint{h: hb(fmt.Appendf(nil, "%s#%d", name, v)), shard: slot})
		}
	}
	sort.Slice(ring, func(a, b int) bool { return ring[a].h < ring[b].h })
	return ring
}

const defaultQuiesceTimeout = 30 * time.Second

// newTopology validates opts and builds the initial normal-phase tab over
// names. The open callbacks are wired by the caller (New vs Dial).
func newTopology(names []string, opts Opts) (*Topology, error) {
	if len(names) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	seen := make(map[string]struct{}, len(names))
	for _, n := range names {
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", n)
		}
		seen[n] = struct{}{}
	}
	vnodes := opts.VNodes
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(names) {
		return nil, fmt.Errorf("cluster: Replicas %d > %d shards", replicas, len(names))
	}
	wq := opts.WriteQuorum
	if wq <= 0 {
		wq = replicas
	}
	if wq > replicas {
		return nil, fmt.Errorf("cluster: WriteQuorum %d > Replicas %d", wq, replicas)
	}
	qt := opts.QuiesceTimeout
	if qt <= 0 {
		qt = defaultQuiesceTimeout
	}
	t := &Topology{
		keyh:           hashfn.For64(hashfn.WyHash),
		hb:             hashfn.ForBytes(hashfn.WyHash),
		vnodes:         vnodes,
		window:         opts.Window,
		replicas:       replicas,
		wq:             wq,
		quiesceTimeout: qt,
		admin:          make(map[int]core.Store),
		clients:        make(map[*Cluster]struct{}),
		upCh:           make(chan int, 16),
	}
	tnames := append([]string(nil), names...)
	dead := make([]bool, len(tnames))
	tab := &ringTab{
		gen:   1,
		epoch: 1,
		phase: phaseNormal,
		names: tnames,
		dead:  dead,
		ring:  buildRing(t.hb, vnodes, tnames, dead),
	}
	t.tab.Store(tab)
	var probe func(i int) error
	if opts.Probe != nil {
		byName := opts.Probe
		probe = func(i int) error { return byName(t.tab.Load().names[i]) }
	}
	t.det = newDetector(len(tnames), opts.DownAfter, opts.ProbeInterval, probe)
	t.det.onUp = func(i int) {
		select {
		case t.upCh <- i:
		default: // lossy by design; the periodic pass covers it
		}
	}
	return t, nil
}

// DialTopology builds a shared Topology over addrs without opening any
// data connections: call NewClient per worker goroutine for Store
// instances, and Close when done. Membership changes (AddShard, ...) and
// the scrubber operate on the shared view, observed by every instance.
func DialTopology(addrs []string, opts Opts) (*Topology, error) {
	opts = withDialDefaults(opts)
	t, err := newTopology(addrs, opts)
	if err != nil {
		return nil, err
	}
	t.wireDial(opts)
	return t, nil
}

// NewClient registers a new per-goroutine Cluster instance over this
// Topology. Shard connections open lazily on first use.
func (t *Topology) NewClient() (*Cluster, error) {
	c := &Cluster{topo: t, window: t.window}
	t.register(c)
	return c, nil
}

// Members returns a consistent (names, epoch) view of the current
// membership: both come from one atomic snapshot, so tooling inspecting
// the cluster mid-reshard can never see a torn ring. The epoch bumps
// exactly once per completed membership change.
func (t *Topology) Members() ([]string, uint64) {
	tab := t.tab.Load()
	names := make([]string, 0, len(tab.names))
	for s, n := range tab.names {
		if !tab.dead[s] {
			names = append(names, n)
		}
	}
	return names, tab.epoch
}

// Epoch returns the current ring epoch.
func (t *Topology) Epoch() uint64 { return t.tab.Load().epoch }

// MovedKeys returns the cumulative number of keys copied by membership
// changes on this Topology.
func (t *Topology) MovedKeys() uint64 { return t.moved.Load() }

// Close stops the scrubber, prober and coordinator resources. Cluster
// instances opened over this Topology close their own connections.
func (t *Topology) Close() error {
	t.stopScrub()
	t.det.close()
	t.mu.Lock()
	var first error
	for _, s := range t.admin {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	t.admin = make(map[int]core.Store)
	t.mu.Unlock()
	return first
}

func (t *Topology) register(c *Cluster) {
	t.regMu.Lock()
	t.clients[c] = struct{}{}
	t.regMu.Unlock()
}

func (t *Topology) unregister(c *Cluster) {
	t.regMu.Lock()
	delete(t.clients, c)
	t.regMu.Unlock()
}

// quiesce blocks until every registered instance has observed generation
// gen or has nothing in flight — the fence ensuring no operation is still
// routing on an older view. Instances advance seenGen only at points with
// no undelivered older-generation work (Cluster is single-goroutine, and
// pipes flush before adopting a new tab), so seenGen >= gen really means
// "all my pre-gen operations completed".
//
// The ordering argument: an op increments its instance's inflight (a
// sequentially consistent RMW) BEFORE loading the tab; quiesce runs after
// the tab store. If quiesce reads inflight == 0, any op that slipped past
// did its increment after quiesce's read, hence loads the tab after the
// publish and sees the new generation.
func (t *Topology) quiesce(gen uint64) error {
	deadline := time.Now().Add(t.quiesceTimeout)
	for {
		all := true
		t.regMu.Lock()
		for c := range t.clients {
			if c.seenGen.Load() < gen && c.inflight.Load() != 0 {
				all = false
				break
			}
		}
		t.regMu.Unlock()
		if all {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: quiesce of generation %d timed out after %v (an instance is holding unflushed pipelined ops?)", gen, t.quiesceTimeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// keyMoving reports whether key's replica set differs between the serving
// and target rings of a handoff/sealed tab.
func (t *Topology) keyMoving(tab *ringTab, key uint64) bool {
	if tab.next == nil {
		return false
	}
	h := t.keyh(key)
	var oldBuf, newBuf [maxReplicaStack]int
	oldSet := replicasOn(tab.ring, h, t.replicas, oldBuf[:0])
	newSet := replicasOn(tab.next, h, t.replicas, newBuf[:0])
	if len(oldSet) != len(newSet) {
		return true
	}
	for i := range oldSet {
		if oldSet[i] != newSet[i] {
			return true
		}
	}
	return false
}

// maxReplicaStack bounds stack-allocated replica-set buffers; replica
// counts beyond it spill to the heap in the few places that need one.
const maxReplicaStack = 8

// journalAdd records a handoff-window write to a moving key. Must happen
// BEFORE the write is issued to any shard: then every write that could
// have landed after the bulk copy's read is re-copied by the sealed-phase
// journal pass.
func (t *Topology) journalAdd(key uint64) {
	t.jmu.Lock()
	if t.journal != nil {
		t.journal[key] = struct{}{}
	}
	t.jmu.Unlock()
}

// journaled reports whether key is in the open journal.
func (t *Topology) journaled(key uint64) bool {
	t.jmu.Lock()
	_, ok := t.journal[key]
	t.jmu.Unlock()
	return ok
}

// swapJournal replaces the journal with next and returns the previous
// set.
func (t *Topology) swapJournal(next map[uint64]struct{}) map[uint64]struct{} {
	t.jmu.Lock()
	prev := t.journal
	t.journal = next
	t.jmu.Unlock()
	return prev
}

// adminStore returns the coordinator's cached admin connection for slot,
// opening it on first use. Caller holds t.mu.
func (t *Topology) adminStore(slot int) (core.Store, error) {
	if s := t.admin[slot]; s != nil {
		return s, nil
	}
	if t.openAdmin == nil {
		return nil, errors.New("cluster: membership is frozen (no OpenShard configured)")
	}
	s, err := t.openAdmin(t.tab.Load().names[slot])
	if err != nil {
		return nil, err
	}
	t.admin[slot] = s
	return s, nil
}

// dropAdmin closes and forgets slot's cached admin connection (after a
// transport failure; the next use redials). Caller holds t.mu.
func (t *Topology) dropAdmin(slot int) {
	if s := t.admin[slot]; s != nil {
		s.Close()
		delete(t.admin, slot)
	}
}

// upsert writes (key, val) unconditionally: DLHT's Put is update-only and
// Insert is the only create, so an upsert is a bounded Put/Insert race.
func upsert(s core.Store, key, val uint64) error {
	var lastErr error
	for i := 0; i < 4; i++ {
		_, ok, err := s.Put(key, val)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		_, inserted, err := s.Insert(key, val)
		if err != nil {
			lastErr = err
			return err
		}
		if inserted {
			return nil
		}
		// Lost the create race to a concurrent insert; Put again.
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: upsert did not converge")
	}
	return lastErr
}
