package cluster

import (
	"testing"
	"time"

	"repro/internal/server"
)

// TestScrubberConvergesStaleReplica: with R=2 W=1, a replica that was
// down through a write window comes back holding stale data — updates it
// missed, deletes it missed. The background scrubber alone (no client
// reads touch the stale keys) must converge it: every key on the revived
// shard, read DIRECTLY, ends up at the latest cluster value, and deleted
// keys stay deleted (version-ordered, so the tombstone wins over the
// revived copy).
func TestScrubberConvergesStaleReplica(t *testing.T) {
	shards := make([]*durableShard, 2)
	addrs := make([]string, 2)
	for i := range shards {
		shards[i] = startDurableShard(t, "", t.TempDir())
		addrs[i] = shards[i].addr
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()

	clu, err := Dial(addrs, Opts{
		Replicas:      2,
		WriteQuorum:   1, // writes survive a down replica — and diverge
		Retry:         server.RetryPolicy{Max: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 5},
		DownAfter:     1,
		ProbeInterval: 10 * time.Millisecond,
		ReadTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	const nkeys = 64
	want := make(map[uint64]uint64) // oracle: key -> value; absent = deleted
	for k := uint64(0); k < nkeys; k++ {
		if _, ins, err := clu.Insert(k, k+100); err != nil || !ins {
			t.Fatalf("Insert(%d): (%v,%v)", k, ins, err)
		}
		want[k] = k + 100
	}

	// Take replica B down and write past it: W=1 keeps accepting.
	shards[1].stop()
	for k := uint64(0); k < nkeys; k++ {
		switch k % 3 {
		case 0: // updated behind B's back
			if _, _, err := clu.Put(k, k+1000); err != nil {
				t.Fatalf("Put(%d) with one replica down: %v", k, err)
			}
			want[k] = k + 1000
		case 1: // deleted behind B's back
			if _, _, err := clu.Delete(k); err != nil {
				t.Fatalf("Delete(%d) with one replica down: %v", k, err)
			}
			delete(want, k)
		default: // untouched
		}
	}

	// B restarts from its WAL, stale. Start the scrubber; issue NO cluster
	// reads from here on — convergence must come from anti-entropy alone.
	shards[1] = startDurableShard(t, addrs[1], shards[1].dir)
	if err := clu.topo.StartScrub(ScrubOpts{Interval: 20 * time.Millisecond, Pace: 100 * time.Microsecond}); err != nil {
		t.Fatalf("StartScrub: %v", err)
	}

	direct, err := server.DialV2(addrs[1], server.ClientOpts{
		Retry: server.RetryPolicy{Max: 3, BaseDelay: time.Millisecond, Seed: 9},
	})
	if err != nil {
		t.Fatalf("direct dial: %v", err)
	}
	defer direct.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		stale := 0
		for k := uint64(0); k < nkeys; k++ {
			v, ok, err := direct.Get(k)
			if err != nil {
				t.Fatalf("direct Get(%d): %v", k, err)
			}
			exp, live := want[k]
			if ok != live || (live && v != exp) {
				stale++
			}
		}
		if stale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica still has %d stale keys after 15s of scrubbing", stale)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReadmissionTargetedRepair: the failure detector's down→up
// transition kicks a targeted anti-entropy pass, so a revived primary
// converges without waiting for the periodic interval (set to an hour
// here — the kick is the only full-pass trigger). The read issued while
// the primary is down also exercises the read-repair nudge: served by the
// secondary, it flags the key as divergent.
func TestReadmissionTargetedRepair(t *testing.T) {
	shards := make([]*durableShard, 2)
	addrs := make([]string, 2)
	for i := range shards {
		shards[i] = startDurableShard(t, "", t.TempDir())
		addrs[i] = shards[i].addr
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()

	clu, err := Dial(addrs, Opts{
		Replicas:      2,
		WriteQuorum:   1,
		Retry:         server.RetryPolicy{Max: 2, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Seed: 13},
		DownAfter:     1,
		ProbeInterval: 10 * time.Millisecond,
		ReadTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()
	// A long scrub interval: if the key converges quickly, it was the
	// read-repair nudge, not the periodic pass.
	if err := clu.topo.StartScrub(ScrubOpts{Interval: time.Hour}); err != nil {
		t.Fatalf("StartScrub: %v", err)
	}

	// Find a key whose PRIMARY is shard 0; write it at W=1 with shard 0
	// down so only shard 1 has the update.
	var key uint64
	for k := uint64(0); ; k++ {
		if clu.ShardFor(k) == 0 {
			key = k
			break
		}
	}
	if _, ins, err := clu.Insert(key, 1); err != nil || !ins {
		t.Fatalf("Insert: (%v,%v)", ins, err)
	}
	shards[0].stop()
	if _, _, err := clu.Put(key, 2); err != nil {
		t.Fatalf("Put with primary down: %v", err)
	}

	// Read while the primary is down: served by the secondary → correct
	// value, plus a divergence note to the scrubber.
	if v, ok, err := clu.Get(key); err != nil || !ok || v != 2 {
		t.Fatalf("Get = (%d,%v,%v), want 2", v, ok, err)
	}

	// Revive the primary: the prober re-admits it, and the down→up kick
	// must converge its ranges — no client reads from here on.
	shards[0] = startDurableShard(t, addrs[0], shards[0].dir)

	direct, err := server.DialV2(addrs[0], server.ClientOpts{
		Retry: server.RetryPolicy{Max: 3, BaseDelay: time.Millisecond, Seed: 17},
	})
	if err != nil {
		t.Fatalf("direct dial: %v", err)
	}
	defer direct.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v, ok, err := direct.Get(key); err == nil && ok && v == 2 {
			return
		}
		if time.Now().After(deadline) {
			v, ok, err := direct.Get(key)
			t.Fatalf("primary never repaired: direct Get = (%d,%v,%v), want 2", v, ok, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
