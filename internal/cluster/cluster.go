// Package cluster shards one logical DLHT keyspace across N Stores with
// consistent hashing, presenting the union as a single Store. Each shard
// is any dlht Store backend — usually one pipelined protocol-v2 connection
// per dlht-server process (Dial), but in-process tables and nested
// clusters compose the same way, since routing only needs the Store
// surface.
//
// Routing is a fixed-point consistent-hash ring built from the shard
// *names* (not connection state), so a key's shard is stable across
// reconnects and process restarts as long as the shard set is unchanged,
// and adding or removing a shard remaps only the ring arcs adjacent to its
// virtual nodes.
//
// The pipelined surface fans each enqueue out to its shard's Pipe and
// merges completions back in per-shard enqueue order. Because a key always
// routes to exactly one shard, per-key program order is preserved — the
// ordering contract that makes DLHT's batch API safe for lock managers
// (§3.3) survives sharding, weakened only from total order to per-shard
// order.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/hashfn"
	"repro/internal/server"

	core "repro/internal/core"
)

// Opts configures a Cluster.
type Opts struct {
	// Table is the named server table Dial selects on every shard
	// connection ("" = each server's default table).
	Table string
	// VNodes is the number of virtual ring points per shard (default 64).
	// More points smooth the key distribution at the cost of a larger
	// routing table.
	VNodes int
	// Window is the per-shard Pipe window when the cluster's own Pipe is
	// opened with Window 0.
	Window int
	// ReadTimeout/WriteTimeout are passed through to each shard
	// connection's deadlines (Dial only).
	ReadTimeout, WriteTimeout time.Duration
}

const defaultVNodes = 64

// Cluster consistent-hashes keys across its member Stores and implements
// Store itself. Like every Store, a Cluster is a per-goroutine object.
type Cluster struct {
	names  []string
	stores []core.Store
	ring   []ringPoint
	keyh   hashfn.Func64
	window int
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a shard.
type ringPoint struct {
	h     uint64
	shard int
}

var _ core.Store = (*Cluster)(nil)

// New builds a Cluster over pre-opened stores. names give the shards their
// ring identities — routing depends only on them, so reconnecting a shard
// (or pointing the same name at a replacement store) preserves every
// key→shard assignment. Close closes the member stores.
func New(names []string, stores []core.Store, opts Opts) (*Cluster, error) {
	if len(stores) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	if len(names) != len(stores) {
		return nil, fmt.Errorf("cluster: %d names for %d stores", len(names), len(stores))
	}
	seen := make(map[string]struct{}, len(names))
	for _, n := range names {
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", n)
		}
		seen[n] = struct{}{}
	}
	vnodes := opts.VNodes
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	c := &Cluster{
		names:  append([]string(nil), names...),
		stores: append([]core.Store(nil), stores...),
		ring:   make([]ringPoint, 0, len(names)*vnodes),
		keyh:   hashfn.For64(hashfn.WyHash),
		window: opts.Window,
	}
	hb := hashfn.ForBytes(hashfn.WyHash)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			c.ring = append(c.ring, ringPoint{h: hb(fmt.Appendf(nil, "%s#%d", name, v)), shard: i})
		}
	}
	sort.Slice(c.ring, func(a, b int) bool { return c.ring[a].h < c.ring[b].h })
	return c, nil
}

// Dial opens one pipelined protocol-v2 connection per address and builds a
// Cluster with the addresses as shard names.
func Dial(addrs []string, opts Opts) (*Cluster, error) {
	stores := make([]core.Store, 0, len(addrs))
	for _, addr := range addrs {
		cl, err := server.DialV2(addr, server.ClientOpts{
			Table:        opts.Table,
			ReadTimeout:  opts.ReadTimeout,
			WriteTimeout: opts.WriteTimeout,
		})
		if err != nil {
			for _, s := range stores {
				s.Close()
			}
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		stores = append(stores, cl)
	}
	c, err := New(addrs, stores, opts)
	if err != nil {
		for _, s := range stores {
			s.Close()
		}
		return nil, err
	}
	return c, nil
}

// NumShards returns the number of member stores.
func (c *Cluster) NumShards() int { return len(c.stores) }

// Names returns the shard names in member order.
func (c *Cluster) Names() []string { return append([]string(nil), c.names...) }

// ShardFor returns the index of the shard owning key: the owner of the
// first ring point at or clockwise of the key's hash.
func (c *Cluster) ShardFor(key uint64) int {
	h := c.keyh(key)
	// Binary search for the first point >= h, wrapping to ring[0].
	lo, hi := 0, len(c.ring)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.ring[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.ring) {
		lo = 0
	}
	return c.ring[lo].shard
}

// Shard returns the member store at index i (as returned by ShardFor).
func (c *Cluster) Shard(i int) core.Store { return c.stores[i] }

func (c *Cluster) Get(key uint64) (uint64, bool, error) {
	return c.stores[c.ShardFor(key)].Get(key)
}

func (c *Cluster) Put(key, val uint64) (uint64, bool, error) {
	return c.stores[c.ShardFor(key)].Put(key, val)
}

func (c *Cluster) Insert(key, val uint64) (uint64, bool, error) {
	return c.stores[c.ShardFor(key)].Insert(key, val)
}

func (c *Cluster) Delete(key uint64) (uint64, bool, error) {
	return c.stores[c.ShardFor(key)].Delete(key)
}

// Pipe opens one pipe per shard and routes each enqueue to its key's
// shard. opts.OnComplete receives every shard's completions through one
// callback, merged in per-shard enqueue order (per-key program order);
// completions from different shards may interleave in any order.
func (c *Cluster) Pipe(opts core.PipeOpts) (core.Pipe, error) {
	w := opts.Window
	if w == 0 {
		w = c.window
	}
	pipes := make([]core.Pipe, len(c.stores))
	for i, s := range c.stores {
		p, err := s.Pipe(core.PipeOpts{Window: w, OnComplete: opts.OnComplete})
		if err != nil {
			for _, q := range pipes[:i] {
				q.Close()
			}
			return nil, fmt.Errorf("cluster: shard %s: %w", c.names[i], err)
		}
		pipes[i] = p
	}
	return &clusterPipe{c: c, pipes: pipes}, nil
}

// Close closes every member store, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, s := range c.stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clusterPipe fans enqueues out to the per-shard pipes.
type clusterPipe struct {
	c     *Cluster
	pipes []core.Pipe
}

func (p *clusterPipe) Get(key uint64) error {
	return p.pipes[p.c.ShardFor(key)].Get(key)
}

func (p *clusterPipe) Put(key, val uint64) error {
	return p.pipes[p.c.ShardFor(key)].Put(key, val)
}

func (p *clusterPipe) Insert(key, val uint64) error {
	return p.pipes[p.c.ShardFor(key)].Insert(key, val)
}

func (p *clusterPipe) Delete(key uint64) error {
	return p.pipes[p.c.ShardFor(key)].Delete(key)
}

// Flush completes every shard's in-flight tail, returning the first error
// (all shards are still flushed).
func (p *clusterPipe) Flush() error {
	var first error
	for _, q := range p.pipes {
		if err := q.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes and closes every shard pipe. The Cluster remains usable.
func (p *clusterPipe) Close() error {
	var first error
	for _, q := range p.pipes {
		if err := q.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
