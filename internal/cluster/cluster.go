// Package cluster shards one logical DLHT keyspace across N Stores with
// consistent hashing, presenting the union as a single Store. Each shard
// is any dlht Store backend — usually one pipelined protocol-v2 connection
// per dlht-server process (Dial), but in-process tables and nested
// clusters compose the same way, since routing only needs the Store
// surface.
//
// Routing is a consistent-hash ring built from the shard *names* (not
// connection state), so a key's shard is stable across reconnects and
// process restarts as long as the shard set is unchanged, and adding or
// removing a shard remaps only the ring arcs adjacent to its virtual
// nodes. The ring is epoch-numbered and published through an atomic
// pointer: membership can change online (AddShard/RemoveShard/
// ReplaceShard on the Topology) with no downtime — writes to moving
// ranges double-write and journal during the handoff window, the journal
// is copied authoritatively under a brief per-range seal, and the ring
// flips atomically. See reshard.go for the coordinator and scrub.go for
// the anti-entropy that keeps replicas convergent.
//
// The pipelined surface fans each enqueue out to its shard's Pipe and
// merges completions back in per-shard enqueue order. Because a key always
// routes to exactly one shard, per-key program order is preserved — the
// ordering contract that makes DLHT's batch API safe for lock managers
// (§3.3) survives sharding, weakened only from total order to per-shard
// order.
package cluster

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/server"

	core "repro/internal/core"
)

// Opts configures a Cluster.
type Opts struct {
	// Table is the named server table Dial selects on every shard
	// connection ("" = each server's default table).
	Table string
	// VNodes is the number of virtual ring points per shard (default 64).
	// More points smooth the key distribution at the cost of a larger
	// routing table.
	VNodes int
	// Window is the per-shard Pipe window when the cluster's own Pipe is
	// opened with Window 0.
	Window int
	// ReadTimeout/WriteTimeout are passed through to each shard
	// connection's deadlines (Dial only).
	ReadTimeout, WriteTimeout time.Duration

	// Replicas is the number of copies of each key: the key's arc owner
	// plus the next Replicas-1 distinct shards clockwise on the ring.
	// 0 or 1 means no replication. Must not exceed the shard count.
	Replicas int
	// WriteQuorum is how many replica acks a write needs before it
	// completes (0 = Replicas, i.e. write-all). With W = Replicas an
	// acked write survives any single-shard loss and reads never observe
	// a lost update after failover; with W < Replicas writes stay
	// available through Replicas-W shard failures at the cost of replica
	// divergence until read repair or the background scrubber (see
	// Topology.StartScrub) converges the laggards.
	WriteQuorum int
	// DownAfter is the failure detector's threshold: a shard is marked
	// down after this many consecutive retryable failures (default 3).
	// Down shards are skipped by read failover and write fan-out until a
	// background probe re-admits them.
	DownAfter int
	// ProbeInterval is the cadence at which down shards are probed for
	// re-admission (default 250ms).
	ProbeInterval time.Duration
	// Probe overrides the re-admission probe, keyed by shard name. For
	// Dial clusters the default dials the shard address and closes; for
	// New clusters the default is half-open — a down shard is
	// optimistically re-admitted after one interval and the next real
	// operation is its probe.
	Probe func(name string) error
	// Retry is each shard connection's transparent redial-and-retry
	// policy (Dial only). The zero value selects server.DefaultRetry —
	// replication is pointless over connections that stay broken after a
	// blip — set Max < 0 to disable retries entirely.
	Retry server.RetryPolicy

	// OpenShard opens a Store for a shard name, enabling online
	// membership changes on New-mode clusters (Dial clusters dial
	// addresses and don't need it). The returned Store should implement
	// core.Scanner and core.VersionReader — the in-process
	// (*Table).Store does — or migration falls back to plain reads.
	// Without it, a New cluster's membership is frozen at construction.
	OpenShard func(name string) (core.Store, error)
	// QuiesceTimeout bounds how long a membership change waits for every
	// client instance to observe a published ring generation before the
	// reshard aborts (default 30s). Instances holding unflushed
	// pipelined ops are the usual reason to hit it.
	QuiesceTimeout time.Duration
}

const (
	defaultVNodes        = 64
	defaultDownAfter     = 3
	defaultProbeInterval = 250 * time.Millisecond
)

// Cluster consistent-hashes keys across the topology's member Stores and
// implements Store itself. Like every Store, a Cluster is a per-goroutine
// object; many Clusters can share one Topology (DialTopology +
// NewClient), and membership changes published there are picked up by
// every instance on its next operation.
type Cluster struct {
	topo   *Topology
	owned  bool         // Close tears down the Topology too (New/Dial)
	stores []core.Store // slot-indexed; nil entries open lazily
	window int

	// inflight/seenGen implement the reshard quiesce fence (see
	// Topology.quiesce): inflight counts operations admitted but not yet
	// completed (sync ops for their duration; pipelined ops from enqueue
	// to delivery), seenGen is the latest ring generation this instance
	// has fully adopted.
	inflight atomic.Int64
	seenGen  atomic.Uint64

	scratch  []int // replica-set buffer for the sync ops
	scratch2 []int // target-ring replica-set buffer (handoff window)
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a shard slot.
type ringPoint struct {
	h     uint64
	shard int
}

var _ core.Store = (*Cluster)(nil)

// New builds a Cluster over pre-opened stores. names give the shards their
// ring identities — routing depends only on them, so reconnecting a shard
// (or pointing the same name at a replacement store) preserves every
// key→shard assignment. Close closes the member stores. With
// Opts.OpenShard set, membership can change online (see Topology).
func New(names []string, stores []core.Store, opts Opts) (*Cluster, error) {
	if len(names) != len(stores) {
		return nil, fmt.Errorf("cluster: %d names for %d stores", len(names), len(stores))
	}
	t, err := newTopology(names, opts)
	if err != nil {
		return nil, err
	}
	if opts.OpenShard != nil {
		t.openShard = opts.OpenShard
		t.openAdmin = opts.OpenShard
	}
	c := &Cluster{
		topo:   t,
		owned:  true,
		stores: append([]core.Store(nil), stores...),
		window: opts.Window,
	}
	t.register(c)
	return c, nil
}

// withDialDefaults resolves the Dial-mode option defaults shared by Dial
// and DialTopology.
func withDialDefaults(opts Opts) Opts {
	if opts.Retry.Max == 0 {
		opts.Retry = server.DefaultRetry
	} else if opts.Retry.Max < 0 {
		opts.Retry = server.RetryPolicy{}
	}
	if opts.Probe == nil {
		// Default probe: the shard is back when its listener accepts.
		// server.DialTCP, not net.Dial: a raw dial to a dead local port
		// can self-connect and re-admit a shard that is still down.
		opts.Probe = func(addr string) error {
			conn, err := server.DialTCP(addr, time.Second)
			if err != nil {
				return err
			}
			return conn.Close()
		}
	}
	return opts
}

// wireDial installs the Dial-mode open callbacks: ordinary data
// connections for instances, reshard-featured connections (OpGetVer/
// OpScan granted) for the coordinator and scrubber.
func (t *Topology) wireDial(opts Opts) {
	t.openShard = func(addr string) (core.Store, error) {
		return server.DialV2(addr, server.ClientOpts{
			Table:        opts.Table,
			ReadTimeout:  opts.ReadTimeout,
			WriteTimeout: opts.WriteTimeout,
			Retry:        opts.Retry,
		})
	}
	t.openAdmin = func(addr string) (core.Store, error) {
		return server.DialV2(addr, server.ClientOpts{
			Table:        opts.Table,
			Features:     server.FeatureKV | server.FeatureReshard,
			ReadTimeout:  opts.ReadTimeout,
			WriteTimeout: opts.WriteTimeout,
			Retry:        opts.Retry,
		})
	}
}

// Dial opens one pipelined protocol-v2 connection per address and builds a
// Cluster with the addresses as shard names. Connections carry a retry
// policy (default server.DefaultRetry; Opts.Retry overrides, Max < 0
// disables): a shard that dies and comes back — same address, state
// recovered from its WAL — is transparently redialed, so no client
// restart is needed for a shard restart.
func Dial(addrs []string, opts Opts) (*Cluster, error) {
	opts = withDialDefaults(opts)
	t, err := newTopology(addrs, opts)
	if err != nil {
		return nil, err
	}
	t.wireDial(opts)
	c := &Cluster{topo: t, owned: true, window: opts.Window}
	// Open every member eagerly so a bad address fails at Dial, like it
	// always has (later instances and later shards open lazily).
	for slot := range addrs {
		if _, err := c.store(slot); err != nil {
			c.closeStores()
			t.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addrs[slot], err)
		}
	}
	t.register(c)
	return c, nil
}

// Topology returns the cluster's shared membership state: membership
// changes (AddShard/RemoveShard/ReplaceShard), Members snapshots, and the
// anti-entropy scrubber live there.
func (c *Cluster) Topology() *Topology { return c.topo }

// AddShard adds a named shard online; see Topology.AddShard.
func (c *Cluster) AddShard(name string) error { return c.topo.AddShard(name) }

// RemoveShard removes a named shard online; see Topology.RemoveShard.
func (c *Cluster) RemoveShard(name string) error { return c.topo.RemoveShard(name) }

// ReplaceShard atomically substitutes one shard for another; see
// Topology.ReplaceShard.
func (c *Cluster) ReplaceShard(oldName, newName string) error {
	return c.topo.ReplaceShard(oldName, newName)
}

// store returns the instance's connection for slot, opening it lazily.
func (c *Cluster) store(slot int) (core.Store, error) {
	for len(c.stores) <= slot {
		c.stores = append(c.stores, nil)
	}
	if s := c.stores[slot]; s != nil {
		return s, nil
	}
	if c.topo.openShard == nil {
		return nil, errors.New("cluster: no store for shard (membership frozen; set Opts.OpenShard)")
	}
	s, err := c.topo.openShard(c.topo.tab.Load().names[slot])
	if err != nil {
		return nil, err
	}
	c.stores[slot] = s
	return s, nil
}

// NumShards returns the number of live member shards.
func (c *Cluster) NumShards() int {
	tab := c.topo.tab.Load()
	n := 0
	for _, d := range tab.dead {
		if !d {
			n++
		}
	}
	return n
}

// Names returns the live shard names from one consistent membership
// snapshot. Use Topology.Members for the (names, epoch) pair.
func (c *Cluster) Names() []string {
	names, _ := c.topo.Members()
	return names
}

// ShardFor returns the slot of the shard owning key on the current
// serving ring: the key's primary under replication.
func (c *Cluster) ShardFor(key uint64) int {
	tab := c.topo.tab.Load()
	return tab.ring[ringSearch(tab.ring, c.topo.keyh(key))].shard
}

// replicasFor appends key's replica set on the current serving ring to
// buf[:0]; see replicasOn.
func (c *Cluster) replicasFor(key uint64, buf []int) []int {
	tab := c.topo.tab.Load()
	return replicasOn(tab.ring, c.topo.keyh(key), c.topo.replicas, buf)
}

// Shard returns this instance's store for slot i (as returned by
// ShardFor), opening it lazily; nil if the slot cannot be opened.
func (c *Cluster) Shard(i int) core.Store {
	s, err := c.store(i)
	if err != nil {
		return nil
	}
	return s
}

// opEnter admits one operation under the quiesce fence: inflight is
// raised BEFORE the tab load (the ordering quiesce relies on), and the
// loaded generation becomes this instance's seenGen — correct for sync
// ops because a Cluster is single-goroutine, so every earlier op has
// fully completed.
func (c *Cluster) opEnter() *ringTab {
	c.inflight.Add(1)
	tab := c.topo.tab.Load()
	c.seenGen.Store(tab.gen)
	return tab
}

func (c *Cluster) opExit() { c.inflight.Add(-1) }

func (c *Cluster) Get(key uint64) (uint64, bool, error) {
	tab := c.opEnter()
	defer c.opExit()
	return c.read(tab, key)
}

func (c *Cluster) Put(key, val uint64) (uint64, bool, error) {
	tab := c.opEnter()
	defer c.opExit()
	return c.write(tab, core.OpPut, key, val)
}

func (c *Cluster) Insert(key, val uint64) (uint64, bool, error) {
	tab := c.opEnter()
	defer c.opExit()
	return c.write(tab, core.OpInsert, key, val)
}

func (c *Cluster) Delete(key uint64) (uint64, bool, error) {
	tab := c.opEnter()
	defer c.opExit()
	return c.write(tab, core.OpDelete, key, 0)
}

// apply runs one sync op against a slot's store, treating an unopenable
// store as a retryable shard failure.
func (c *Cluster) apply(slot int, kind core.OpKind, key, val uint64) (uint64, bool, error) {
	s, err := c.store(slot)
	if err != nil {
		return 0, false, fmt.Errorf("%w: %w", server.ErrRetryable, err)
	}
	switch kind {
	case core.OpGet:
		return s.Get(key)
	case core.OpPut:
		return s.Put(key, val)
	case core.OpInsert:
		return s.Insert(key, val)
	default:
		return s.Delete(key)
	}
}

// read tries the key's replicas in rank order — primary first — failing
// over to the next on retryable errors. A terminal (table-level) answer
// from any replica returns immediately: it IS the answer. Down shards
// are deferred to a last-resort second pass in case the detector is
// stale. A read served by a non-primary replica may be stale under
// W < R, so it nudges the scrubber to repair the key in the background.
func (c *Cluster) read(tab *ringTab, key uint64) (uint64, bool, error) {
	cands := replicasOn(tab.ring, c.topo.keyh(key), c.topo.replicas, c.scratch)
	c.scratch = cands
	var lastErr error
	var tried uint64
	for pass := 0; pass < 2; pass++ {
		for ci, s := range cands {
			if pass == 0 && c.topo.det.isDown(s) {
				continue
			}
			if tried&(1<<ci) != 0 {
				continue
			}
			tried |= 1 << ci
			v, ok, err := c.apply(s, core.OpGet, key, 0)
			if err == nil {
				c.topo.det.ok(s)
				if ci > 0 {
					// Served by a lower-rank replica: the copies may have
					// diverged. Read repair runs out of band.
					c.topo.noteDivergence(key)
				}
				return v, ok, nil
			}
			if !server.IsRetryable(err) {
				return v, ok, err
			}
			c.topo.det.fail(s)
			lastErr = err
		}
	}
	return 0, false, fmt.Errorf("cluster: all %d replicas of key failed: %w", len(cands), lastErr)
}

// waitMovable holds a write to a key in a sealed moving range until the
// ring flips (or the reshard aborts): the sealed window is what makes the
// final journal copy authoritative. seenGen advances with each reload so
// the coordinator's quiesce never waits on a spinning writer.
func (c *Cluster) waitMovable(tab *ringTab, key uint64) *ringTab {
	for tab.phase == phaseSealed && c.topo.keyMoving(tab, key) {
		time.Sleep(200 * time.Microsecond)
		tab = c.topo.tab.Load()
		c.seenGen.Store(tab.gen)
	}
	return tab
}

// write fans kind out to every replica of key, in rank order, and
// succeeds once WriteQuorum replicas have acked. The result reported is
// the primary-most ack (rank order is attempt order). A terminal refusal
// from any replica returns immediately. Down shards are skipped unless
// the up ones cannot reach quorum, in which case they get a second
// chance.
//
// During a handoff window the write additionally journals its key (if
// its range is moving) and double-writes, best-effort, to the incoming
// owners — the warm-up that keeps the sealed-phase journal copy small.
func (c *Cluster) write(tab *ringTab, kind core.OpKind, key, val uint64) (uint64, bool, error) {
	tab = c.waitMovable(tab, key)
	h := c.topo.keyh(key)
	cands := replicasOn(tab.ring, h, c.topo.replicas, c.scratch)
	c.scratch = cands
	var extras []int
	if tab.phase == phaseHandoff {
		newSet := replicasOn(tab.next, h, c.topo.replicas, c.scratch2)
		c.scratch2 = newSet
		extras = newSet[:0] // filter in place: members of newSet not in cands
		for _, s := range newSet {
			in := false
			for _, o := range cands {
				if o == s {
					in = true
					break
				}
			}
			if !in {
				extras = append(extras, s)
			}
		}
		if len(extras) > 0 {
			// Journal BEFORE issuing anything: once this write is acked,
			// the sealed-phase copy re-reads the key authoritatively.
			c.topo.journalAdd(key)
		}
	}
	acks := 0
	var rval uint64
	var okv, haveRes bool
	var lastErr error
	var tried uint64
	for pass := 0; pass < 2; pass++ {
		if pass == 1 && acks >= c.topo.wq {
			break // quorum reached; don't resurrect down shards needlessly
		}
		for ci, s := range cands {
			if pass == 0 && c.topo.det.isDown(s) {
				continue
			}
			if tried&(1<<ci) != 0 {
				continue
			}
			tried |= 1 << ci
			v, o, err := c.apply(s, kind, key, val)
			if err == nil {
				c.topo.det.ok(s)
				acks++
				if !haveRes {
					rval, okv, haveRes = v, o, true
				}
			} else if !server.IsRetryable(err) {
				return v, o, err
			} else {
				c.topo.det.fail(s)
				lastErr = err
			}
		}
	}
	// Double-write warm-up to incoming owners: best-effort, not counted
	// toward quorum (the journal is the correctness mechanism).
	for _, s := range extras {
		if c.topo.det.isDown(s) {
			continue
		}
		if _, _, err := c.apply(s, kind, key, val); err != nil {
			if server.IsRetryable(err) {
				c.topo.det.fail(s)
			}
		} else {
			c.topo.det.ok(s)
		}
	}
	if acks >= c.topo.wq {
		return rval, okv, nil
	}
	if lastErr == nil {
		lastErr = errors.New("replicas unreachable")
	}
	return 0, false, fmt.Errorf("cluster: write quorum %d/%d: %w", acks, c.topo.wq, lastErr)
}

// Pipe opens the replicated pipelined surface: each enqueue routes to its
// key's replica set on the current ring. opts.OnComplete receives every
// shard's completions through one callback, merged in per-primary enqueue
// order (per-key program order); completions for keys with different
// primaries may interleave in any order. Each write fans to the key's
// replica set and completes once WriteQuorum replicas ack; reads fail
// over replica to replica on retryable errors. The pipe adopts ring
// changes at enqueue boundaries — flushing in-flight ops first — so
// per-key order survives a mid-stream reshard flip. Enqueues into the
// returned pipe must not be made from inside OnComplete.
func (c *Cluster) Pipe(opts core.PipeOpts) (core.Pipe, error) {
	w := opts.Window
	if w == 0 {
		w = c.window
	}
	return c.newRepPipe(w, opts.OnComplete)
}

func (c *Cluster) closeStores() error {
	var first error
	for _, s := range c.stores {
		if s == nil {
			continue
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes this instance's shard connections; for a Cluster built by
// New or Dial it also tears down the owned Topology (detector, scrubber,
// coordinator connections).
func (c *Cluster) Close() error {
	c.topo.unregister(c)
	first := c.closeStores()
	if c.owned {
		if err := c.topo.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
