// Package cluster shards one logical DLHT keyspace across N Stores with
// consistent hashing, presenting the union as a single Store. Each shard
// is any dlht Store backend — usually one pipelined protocol-v2 connection
// per dlht-server process (Dial), but in-process tables and nested
// clusters compose the same way, since routing only needs the Store
// surface.
//
// Routing is a fixed-point consistent-hash ring built from the shard
// *names* (not connection state), so a key's shard is stable across
// reconnects and process restarts as long as the shard set is unchanged,
// and adding or removing a shard remaps only the ring arcs adjacent to its
// virtual nodes.
//
// The pipelined surface fans each enqueue out to its shard's Pipe and
// merges completions back in per-shard enqueue order. Because a key always
// routes to exactly one shard, per-key program order is preserved — the
// ordering contract that makes DLHT's batch API safe for lock managers
// (§3.3) survives sharding, weakened only from total order to per-shard
// order.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/hashfn"
	"repro/internal/server"

	core "repro/internal/core"
)

// Opts configures a Cluster.
type Opts struct {
	// Table is the named server table Dial selects on every shard
	// connection ("" = each server's default table).
	Table string
	// VNodes is the number of virtual ring points per shard (default 64).
	// More points smooth the key distribution at the cost of a larger
	// routing table.
	VNodes int
	// Window is the per-shard Pipe window when the cluster's own Pipe is
	// opened with Window 0.
	Window int
	// ReadTimeout/WriteTimeout are passed through to each shard
	// connection's deadlines (Dial only).
	ReadTimeout, WriteTimeout time.Duration

	// Replicas is the number of copies of each key: the key's arc owner
	// plus the next Replicas-1 distinct shards clockwise on the ring.
	// 0 or 1 means no replication (the pre-replication behavior, byte for
	// byte). Must not exceed the shard count.
	Replicas int
	// WriteQuorum is how many replica acks a write needs before it
	// completes (0 = Replicas, i.e. write-all). With W = Replicas an
	// acked write survives any single-shard loss and reads never observe
	// a lost update after failover; with W < Replicas writes stay
	// available through Replicas-W shard failures at the cost of replica
	// divergence until the laggards catch up (there is no read repair).
	WriteQuorum int
	// DownAfter is the failure detector's threshold: a shard is marked
	// down after this many consecutive retryable failures (default 3).
	// Down shards are skipped by read failover and write fan-out until a
	// background probe re-admits them.
	DownAfter int
	// ProbeInterval is the cadence at which down shards are probed for
	// re-admission (default 250ms).
	ProbeInterval time.Duration
	// Probe overrides the re-admission probe, keyed by shard name. For
	// Dial clusters the default dials the shard address and closes; for
	// New clusters the default is half-open — a down shard is
	// optimistically re-admitted after one interval and the next real
	// operation is its probe.
	Probe func(name string) error
	// Retry is each shard connection's transparent redial-and-retry
	// policy (Dial only). The zero value selects server.DefaultRetry —
	// replication is pointless over connections that stay broken after a
	// blip — set Max < 0 to disable retries entirely.
	Retry server.RetryPolicy
}

const (
	defaultVNodes        = 64
	defaultDownAfter     = 3
	defaultProbeInterval = 250 * time.Millisecond
)

// Cluster consistent-hashes keys across its member Stores and implements
// Store itself. Like every Store, a Cluster is a per-goroutine object.
type Cluster struct {
	names    []string
	stores   []core.Store
	ring     []ringPoint
	keyh     hashfn.Func64
	window   int
	replicas int
	wq       int
	det      *detector
	scratch  []int // replica-set buffer for the sync ops
}

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a shard.
type ringPoint struct {
	h     uint64
	shard int
}

var _ core.Store = (*Cluster)(nil)

// New builds a Cluster over pre-opened stores. names give the shards their
// ring identities — routing depends only on them, so reconnecting a shard
// (or pointing the same name at a replacement store) preserves every
// key→shard assignment. Close closes the member stores.
func New(names []string, stores []core.Store, opts Opts) (*Cluster, error) {
	if len(stores) == 0 {
		return nil, errors.New("cluster: no shards")
	}
	if len(names) != len(stores) {
		return nil, fmt.Errorf("cluster: %d names for %d stores", len(names), len(stores))
	}
	seen := make(map[string]struct{}, len(names))
	for _, n := range names {
		if _, dup := seen[n]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", n)
		}
		seen[n] = struct{}{}
	}
	vnodes := opts.VNodes
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(stores) {
		return nil, fmt.Errorf("cluster: Replicas %d > %d shards", replicas, len(stores))
	}
	wq := opts.WriteQuorum
	if wq <= 0 {
		wq = replicas
	}
	if wq > replicas {
		return nil, fmt.Errorf("cluster: WriteQuorum %d > Replicas %d", wq, replicas)
	}
	c := &Cluster{
		names:    append([]string(nil), names...),
		stores:   append([]core.Store(nil), stores...),
		ring:     make([]ringPoint, 0, len(names)*vnodes),
		keyh:     hashfn.For64(hashfn.WyHash),
		window:   opts.Window,
		replicas: replicas,
		wq:       wq,
	}
	var probe func(i int) error
	if opts.Probe != nil {
		byName := opts.Probe
		probe = func(i int) error { return byName(c.names[i]) }
	}
	c.det = newDetector(len(stores), opts.DownAfter, opts.ProbeInterval, probe)
	hb := hashfn.ForBytes(hashfn.WyHash)
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			c.ring = append(c.ring, ringPoint{h: hb(fmt.Appendf(nil, "%s#%d", name, v)), shard: i})
		}
	}
	sort.Slice(c.ring, func(a, b int) bool { return c.ring[a].h < c.ring[b].h })
	return c, nil
}

// Dial opens one pipelined protocol-v2 connection per address and builds a
// Cluster with the addresses as shard names. Connections carry a retry
// policy (default server.DefaultRetry; Opts.Retry overrides, Max < 0
// disables): a shard that dies and comes back — same address, state
// recovered from its WAL — is transparently redialed, so no client
// restart is needed for a shard restart.
func Dial(addrs []string, opts Opts) (*Cluster, error) {
	retry := opts.Retry
	if retry.Max == 0 {
		retry = server.DefaultRetry
	} else if retry.Max < 0 {
		retry = server.RetryPolicy{}
	}
	if opts.Probe == nil {
		// Default probe: the shard is back when its listener accepts.
		// server.DialTCP, not net.Dial: a raw dial to a dead local port
		// can self-connect and re-admit a shard that is still down.
		opts.Probe = func(addr string) error {
			conn, err := server.DialTCP(addr, time.Second)
			if err != nil {
				return err
			}
			return conn.Close()
		}
	}
	stores := make([]core.Store, 0, len(addrs))
	for _, addr := range addrs {
		cl, err := server.DialV2(addr, server.ClientOpts{
			Table:        opts.Table,
			ReadTimeout:  opts.ReadTimeout,
			WriteTimeout: opts.WriteTimeout,
			Retry:        retry,
		})
		if err != nil {
			for _, s := range stores {
				s.Close()
			}
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		stores = append(stores, cl)
	}
	c, err := New(addrs, stores, opts)
	if err != nil {
		for _, s := range stores {
			s.Close()
		}
		return nil, err
	}
	return c, nil
}

// NumShards returns the number of member stores.
func (c *Cluster) NumShards() int { return len(c.stores) }

// Names returns the shard names in member order.
func (c *Cluster) Names() []string { return append([]string(nil), c.names...) }

// ringSearch returns the index of the first ring point at or clockwise
// of h, wrapping to ring[0].
func (c *Cluster) ringSearch(h uint64) int {
	lo, hi := 0, len(c.ring)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.ring[mid].h < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(c.ring) {
		lo = 0
	}
	return lo
}

// ShardFor returns the index of the shard owning key: the owner of the
// first ring point at or clockwise of the key's hash. With replication
// this is the key's primary — the first element of its replica set.
func (c *Cluster) ShardFor(key uint64) int {
	return c.ring[c.ringSearch(c.keyh(key))].shard
}

// replicasFor appends key's replica set to buf[:0] and returns it: the
// first Replicas DISTINCT shards found walking the ring clockwise from
// the key's hash point. Rank 0 is the primary (== ShardFor). The set
// depends only on shard names and the ring geometry — never on liveness —
// so every client, across reconnects and shard restarts, agrees on where
// a key's copies live.
func (c *Cluster) replicasFor(key uint64, buf []int) []int {
	buf = buf[:0]
	start := c.ringSearch(c.keyh(key))
	for i := 0; i < len(c.ring) && len(buf) < c.replicas; i++ {
		s := c.ring[(start+i)%len(c.ring)].shard
		dup := false
		for _, b := range buf {
			if b == s {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, s)
		}
	}
	return buf
}

// Shard returns the member store at index i (as returned by ShardFor).
func (c *Cluster) Shard(i int) core.Store { return c.stores[i] }

func (c *Cluster) Get(key uint64) (uint64, bool, error) {
	if c.replicas == 1 {
		return c.stores[c.ShardFor(key)].Get(key)
	}
	return c.read(key)
}

func (c *Cluster) Put(key, val uint64) (uint64, bool, error) {
	if c.replicas == 1 {
		return c.stores[c.ShardFor(key)].Put(key, val)
	}
	return c.write(key, func(s core.Store) (uint64, bool, error) { return s.Put(key, val) })
}

func (c *Cluster) Insert(key, val uint64) (uint64, bool, error) {
	if c.replicas == 1 {
		return c.stores[c.ShardFor(key)].Insert(key, val)
	}
	return c.write(key, func(s core.Store) (uint64, bool, error) { return s.Insert(key, val) })
}

func (c *Cluster) Delete(key uint64) (uint64, bool, error) {
	if c.replicas == 1 {
		return c.stores[c.ShardFor(key)].Delete(key)
	}
	return c.write(key, func(s core.Store) (uint64, bool, error) { return s.Delete(key) })
}

// read tries the key's replicas in rank order — primary first — failing
// over to the next on retryable errors. A terminal (table-level) answer
// from any replica returns immediately: it IS the answer. Down shards
// are deferred to a last-resort second pass in case the detector is
// stale.
func (c *Cluster) read(key uint64) (uint64, bool, error) {
	cands := c.replicasFor(key, c.scratch)
	c.scratch = cands
	var lastErr error
	var tried uint64
	for pass := 0; pass < 2; pass++ {
		for ci, s := range cands {
			if pass == 0 && c.det.isDown(s) {
				continue
			}
			if tried&(1<<ci) != 0 {
				continue
			}
			tried |= 1 << ci
			v, ok, err := c.stores[s].Get(key)
			if err == nil {
				c.det.ok(s)
				return v, ok, nil
			}
			if !server.IsRetryable(err) {
				return v, ok, err
			}
			c.det.fail(s)
			lastErr = err
		}
	}
	return 0, false, fmt.Errorf("cluster: all %d replicas of key failed: %w", len(cands), lastErr)
}

// write fans op out to every replica of key, in rank order, and succeeds
// once WriteQuorum replicas have acked. The result reported is the
// primary-most ack (rank order is attempt order). A terminal refusal
// from any replica returns immediately. Down shards are skipped unless
// the up ones cannot reach quorum, in which case they get a second
// chance.
func (c *Cluster) write(key uint64, op func(core.Store) (uint64, bool, error)) (uint64, bool, error) {
	cands := c.replicasFor(key, c.scratch)
	c.scratch = cands
	acks := 0
	var val uint64
	var okv, haveRes bool
	var lastErr error
	var tried uint64
	for pass := 0; pass < 2; pass++ {
		if pass == 1 && acks >= c.wq {
			break // quorum reached; don't resurrect down shards needlessly
		}
		for ci, s := range cands {
			if pass == 0 && c.det.isDown(s) {
				continue
			}
			if tried&(1<<ci) != 0 {
				continue
			}
			tried |= 1 << ci
			v, o, err := op(c.stores[s])
			if err == nil {
				c.det.ok(s)
				acks++
				if !haveRes {
					val, okv, haveRes = v, o, true
				}
			} else if !server.IsRetryable(err) {
				return v, o, err
			} else {
				c.det.fail(s)
				lastErr = err
			}
		}
	}
	if acks >= c.wq {
		return val, okv, nil
	}
	if lastErr == nil {
		lastErr = errors.New("replicas unreachable")
	}
	return 0, false, fmt.Errorf("cluster: write quorum %d/%d: %w", acks, c.wq, lastErr)
}

// Pipe opens one pipe per shard and routes each enqueue to its key's
// shard. opts.OnComplete receives every shard's completions through one
// callback, merged in per-primary enqueue order (per-key program order);
// completions for keys with different primaries may interleave in any
// order. With Replicas > 1 each write is fanned to the key's replica set
// and completes once WriteQuorum replicas ack; reads fail over replica
// to replica on retryable errors. Enqueues into the returned pipe must
// not be made from inside OnComplete.
func (c *Cluster) Pipe(opts core.PipeOpts) (core.Pipe, error) {
	w := opts.Window
	if w == 0 {
		w = c.window
	}
	if c.replicas > 1 {
		return c.newRepPipe(w, opts.OnComplete)
	}
	pipes := make([]core.Pipe, len(c.stores))
	for i, s := range c.stores {
		p, err := s.Pipe(core.PipeOpts{Window: w, OnComplete: opts.OnComplete})
		if err != nil {
			for _, q := range pipes[:i] {
				q.Close()
			}
			return nil, fmt.Errorf("cluster: shard %s: %w", c.names[i], err)
		}
		pipes[i] = p
	}
	return &clusterPipe{c: c, pipes: pipes}, nil
}

// Close closes every member store, returning the first error.
func (c *Cluster) Close() error {
	c.det.close()
	var first error
	for _, s := range c.stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clusterPipe fans enqueues out to the per-shard pipes.
type clusterPipe struct {
	c     *Cluster
	pipes []core.Pipe
}

func (p *clusterPipe) Get(key uint64) error {
	return p.pipes[p.c.ShardFor(key)].Get(key)
}

func (p *clusterPipe) Put(key, val uint64) error {
	return p.pipes[p.c.ShardFor(key)].Put(key, val)
}

func (p *clusterPipe) Insert(key, val uint64) error {
	return p.pipes[p.c.ShardFor(key)].Insert(key, val)
}

func (p *clusterPipe) Delete(key uint64) error {
	return p.pipes[p.c.ShardFor(key)].Delete(key)
}

// Flush completes every shard's in-flight tail, returning the first error
// (all shards are still flushed).
func (p *clusterPipe) Flush() error {
	var first error
	for _, q := range p.pipes {
		if err := q.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes and closes every shard pipe. The Cluster remains usable.
func (p *clusterPipe) Close() error {
	var first error
	for _, q := range p.pipes {
		if err := q.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
