package cluster

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/server"

	core "repro/internal/core"
)

// TestReshardLiveMigration is the live-migration property test: a
// replicated R=2 W=2 cluster pipe runs a mixed key-value workload while a
// fourth shard is added mid-stream, and — during the handoff window — one
// of the source shards is killed and restarted from its WAL (the
// in-process stand-in for kill -9; the smoke script does the literal
// one). Invariants:
//
//   - every enqueued op completes exactly once, in per-key program order,
//     straight through the ring flip;
//   - every successful read is explainable by the per-key oracle;
//   - the membership snapshot stays consistent: the new shard appears
//     together with the epoch bump, never a torn view;
//   - after the flip, every key's value matches the oracle not just
//     through the cluster but on EVERY member of its new replica set,
//     read directly — the migration really moved the data.
func TestReshardLiveMigration(t *testing.T) {
	shards := make([]*durableShard, 4)
	addrs := make([]string, 4)
	for i := range shards {
		shards[i] = startDurableShard(t, "", t.TempDir())
		addrs[i] = shards[i].addr
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()

	clu, err := Dial(addrs[:3], Opts{
		Replicas:      2,
		WriteQuorum:   2,
		Retry:         server.RetryPolicy{Max: 3, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 11},
		DownAfter:     2,
		ProbeInterval: 20 * time.Millisecond,
		ReadTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	if names, epoch := clu.topo.Members(); len(names) != 3 || epoch != 1 {
		t.Fatalf("initial Members() = (%v, %d), want 3 names at epoch 1", names, epoch)
	}

	const nkeys = 128
	type keyState struct {
		pending []uint64
		reads   int
		acked   uint64
		hasAck  bool
		indet   map[uint64]bool
	}
	ks := make([]*keyState, nkeys)
	for i := range ks {
		ks[i] = &keyState{indet: map[uint64]bool{}}
	}
	completions, enqueued := 0, 0

	p, err := clu.Pipe(core.PipeOpts{Window: 8, OnComplete: func(cc core.Completion) {
		completions++
		st := ks[cc.Key]
		switch cc.Kind {
		case core.OpInsert, core.OpPut:
			if len(st.pending) == 0 {
				t.Fatalf("key %d: write completion with no pending write (dup or reorder)", cc.Key)
			}
			v := st.pending[0]
			st.pending = st.pending[1:] // per-key program order
			if cc.Err == nil {
				st.acked, st.hasAck = v, true
				st.indet = map[uint64]bool{}
			} else {
				st.indet[v] = true
			}
		case core.OpGet:
			if st.reads <= 0 {
				t.Fatalf("key %d: read completion with no pending read", cc.Key)
			}
			st.reads--
			if cc.Err == nil && cc.OK {
				explainable := (st.hasAck && cc.Value == st.acked) || st.indet[cc.Value]
				for _, v := range st.pending {
					if v == cc.Value {
						explainable = true
						break
					}
				}
				if !explainable {
					t.Fatalf("key %d: read %d not explainable (acked %d, %d indet, %d pending)",
						cc.Key, cc.Value, st.acked, len(st.indet), len(st.pending))
				}
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}

	rng := uint64(0x2545f4914f6cdd1d)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var seq uint64 = 1
	step := func() {
		k := next(nkeys)
		st := ks[k]
		enqueued++
		if next(100) < 30 {
			st.reads++
			if err := p.Get(k); err != nil {
				t.Fatalf("Get enq: %v", err)
			}
		} else {
			seq++
			st.pending = append(st.pending, seq)
			var err error
			if len(st.pending) == 1 && !st.hasAck {
				err = p.Insert(k, seq)
			} else {
				err = p.Put(k, seq)
			}
			if err != nil {
				t.Fatalf("write enq: %v", err)
			}
		}
	}

	// Warm up: real data on the source shards before the migration.
	for i := 0; i < 2000; i++ {
		step()
	}

	// Kick the membership change from a control goroutine (the data
	// goroutine must keep pumping: adopting published generations is what
	// lets the coordinator's quiesce fence pass).
	reshardDone := make(chan error, 1)
	go func() { reshardDone <- clu.AddShard(addrs[3]) }()

	// Pump through the handoff; once the double-write window is open,
	// kill one source shard and restart it from its WAL on the same
	// address — the bulk copy must fail over to the surviving replica and
	// acked writes must keep being acked (or complete indeterminate,
	// never silently lost).
	killed := false
	var reshardErr error
	waited := 0
	for done := false; !done; {
		for i := 0; i < 200; i++ {
			step()
		}
		if !killed && clu.topo.tab.Load().phase != phaseNormal {
			shards[0].stop()
			shards[0] = startDurableShard(t, addrs[0], shards[0].dir)
			killed = true
		}
		select {
		case reshardErr = <-reshardDone:
			done = true
		default:
			waited++
			if waited > 100000 {
				t.Fatal("reshard never finished")
			}
		}
	}
	if reshardErr != nil {
		t.Fatalf("AddShard: %v", reshardErr)
	}
	if !killed {
		t.Log("note: reshard finished before a handoff window was observed; source-kill variant not exercised this run")
	}

	if names, epoch := clu.topo.Members(); len(names) != 4 || epoch != 2 {
		t.Fatalf("post-reshard Members() = (%v, %d), want 4 names at epoch 2", names, epoch)
	}

	// Post-flip traffic on the new ring, then heal: drive until every op
	// completed and a clean round of writes acks on every key.
	for i := 0; i < 2000; i++ {
		step()
	}
	deadline := time.Now().Add(10 * time.Second)
	for healed := false; !healed; {
		if time.Now().After(deadline) {
			t.Fatal("cluster did not heal within 10s of the reshard completing")
		}
		for i := 0; i < 200; i++ {
			step()
		}
		if err := p.Flush(); err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		healed = true
		for _, st := range ks {
			if len(st.pending) != 0 || st.reads != 0 {
				healed = false
			}
		}
		if healed && clu.topo.det.anyDown() {
			healed = false
			time.Sleep(10 * time.Millisecond)
		}
	}
	for k := uint64(0); k < nkeys; k++ {
		seq++
		if err := p.Put(k, seq); err != nil {
			t.Fatalf("final Put enq: %v", err)
		}
		ks[k].pending = append(ks[k].pending, seq)
		enqueued++
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	for k, st := range ks {
		if len(st.pending) != 0 {
			t.Fatalf("key %d: %d writes never completed", k, len(st.pending))
		}
		if !st.hasAck || len(st.indet) != 0 {
			t.Fatalf("key %d: final write did not ack cleanly", k)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if completions != enqueued {
		t.Fatalf("%d completions for %d enqueued ops", completions, enqueued)
	}

	// The data moved: every member of each key's replica set on the NEW
	// ring serves the oracle value over a direct connection.
	tab := clu.topo.tab.Load()
	direct := make(map[int]*server.Client)
	defer func() {
		for _, d := range direct {
			d.Close()
		}
	}()
	for k := uint64(0); k < nkeys; k++ {
		v, ok, err := clu.Get(k)
		if err != nil || !ok || v != ks[k].acked {
			t.Fatalf("final cluster Get(%d) = (%d,%v,%v), want %d", k, v, ok, err, ks[k].acked)
		}
		for _, slot := range clu.replicasFor(k, nil) {
			d := direct[slot]
			if d == nil {
				d, err = server.DialV2(tab.names[slot], server.ClientOpts{})
				if err != nil {
					t.Fatalf("direct dial %s: %v", tab.names[slot], err)
				}
				direct[slot] = d
			}
			v, ok, err := d.Get(k)
			if err != nil || !ok || v != ks[k].acked {
				t.Fatalf("key %d on replica %s: (%d,%v,%v), want %d — migration lost it",
					k, tab.names[slot], v, ok, err, ks[k].acked)
			}
		}
	}
	if moved := clu.topo.MovedKeys(); moved == 0 {
		t.Fatal("MovedKeys() == 0 after a reshard that must have migrated data")
	}
}

// TestReshardValidation: impossible membership changes are refused up
// front, with the ring untouched.
func TestReshardValidation(t *testing.T) {
	shards := make([]*durableShard, 2)
	addrs := make([]string, 2)
	for i := range shards {
		shards[i] = startDurableShard(t, "", t.TempDir())
		addrs[i] = shards[i].addr
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()
	clu, err := Dial(addrs, Opts{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	if err := clu.RemoveShard(addrs[0]); err == nil {
		t.Fatal("RemoveShard below Replicas should fail")
	}
	if err := clu.AddShard(addrs[1]); err == nil {
		t.Fatal("AddShard of an existing member should fail")
	}
	if err := clu.RemoveShard("nonsuch:1"); err == nil {
		t.Fatal("RemoveShard of a non-member should fail")
	}
	if epoch := clu.topo.Epoch(); epoch != 1 {
		t.Fatalf("failed validations bumped the epoch to %d", epoch)
	}
	// The ring still routes after the refused changes.
	if _, _, err := clu.Get(1); err != nil {
		t.Fatalf("Get after refused reshard: %v", err)
	}
}

// TestReshardRemoveShard: shrinking the cluster migrates the removed
// shard's ranges to the survivors before it leaves the ring.
func TestReshardRemoveShard(t *testing.T) {
	shards := make([]*durableShard, 3)
	addrs := make([]string, 3)
	for i := range shards {
		shards[i] = startDurableShard(t, "", t.TempDir())
		addrs[i] = shards[i].addr
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()
	clu, err := Dial(addrs, Opts{Replicas: 2, WriteQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	const n = 500
	for k := uint64(0); k < n; k++ {
		if _, ins, err := clu.Insert(k, k+7); err != nil || !ins {
			t.Fatalf("Insert(%d): (%v,%v)", k, ins, err)
		}
	}
	if err := clu.RemoveShard(addrs[2]); err != nil {
		t.Fatalf("RemoveShard: %v", err)
	}
	if names, epoch := clu.topo.Members(); len(names) != 2 || epoch != 2 {
		t.Fatalf("Members() = (%v, %d), want 2 names at epoch 2", names, epoch)
	}
	// The removed shard can really go away now.
	shards[2].stop()
	for k := uint64(0); k < n; k++ {
		v, ok, err := clu.Get(k)
		if err != nil || !ok || v != k+7 {
			t.Fatalf("Get(%d) after shrink = (%d,%v,%v), want %d", k, v, ok, err, k+7)
		}
	}
	if fmt.Sprint(clu.Names()) == fmt.Sprint(addrs) {
		t.Fatal("Names() still lists the removed shard")
	}
}
