package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/server"

	core "repro/internal/core"
)

// repPipe is the replicated pipelined surface: each write enqueue fans
// out to the key's replica set over the per-shard pipes and its user
// completion fires once WriteQuorum replicas have acked; each read
// enqueue goes to the primary and fails over, replica by replica, on
// retryable errors. User completions for ops sharing a primary are
// delivered strictly in enqueue order — per-key program order — even
// when a middle op's quorum is slow or a read is bouncing between
// replicas: a resolved op waits behind its queue predecessors.
//
// Ordering across replicas holds for acked ops: writes to a key are
// enqueued to every replica's pipe in program order, and each pipe
// preserves its own enqueue order end to end. An op that completes WITH
// an error after a transport failure is indeterminate — it may have
// applied on some replicas (even late, after the failure was reported) —
// the standard at-most-once-ack, at-least-zero-apply shape of a
// distributed write.
//
// The pipe routes on an adopted ring snapshot (tab) and re-checks the
// published ring at every enqueue: on a generation change it flushes all
// in-flight ops under the old view, then adopts the new one. Per-key
// order therefore survives a reshard flip — ops under the old ring are
// fully delivered before any op routes under the new one. During a
// handoff window writes additionally journal moving keys and double-write
// to the incoming owners (best-effort, outside the quorum).
//
// Like every Pipe, repPipe is single-goroutine; the only concurrency is
// the detector's prober, which is internally locked.
type repPipe struct {
	c      *Cluster
	tab    *ringTab // adopted ring view; refreshed at enqueue boundaries
	window int
	pipes  []core.Pipe // slot-indexed; nil entries open lazily
	onc    func(core.Completion)

	dq []opQueue // per PRIMARY shard: user ops in enqueue (delivery) order
	aq []opQueue // per shard: ops with a completion outstanding THERE, in arrival order

	inflight int // user ops enqueued, not yet delivered
	free     *repOp
	scratch  []int // target-ring replica-set buffer (handoff window)
	closed   bool
}

// repOp is one user operation in flight across its replica set.
type repOp struct {
	kind    core.OpKind
	key     uint64
	val     uint64
	primary int
	cands   []int // replica set, rank order (cands[0] == primary)

	need      int // acks required to resolve OK (writes: W; reads: 1)
	acks      int
	remaining int // shard completions still outstanding
	nextCand  int // reads: next rank to try on retryable failure

	res       core.Completion
	haveRes   bool
	errc      error // last retryable failure seen
	resolved  bool
	delivered bool
	retired   bool
	fanning   bool // write fan-out in progress: failure settlement deferred
	extraRem  int  // handoff double-write completions outstanding (outside quorum)

	next *repOp // freelist link
}

// opQueue is a FIFO of op pointers with an amortized-compacting head.
type opQueue struct {
	ops  []*repOp
	head int
}

func (q *opQueue) push(op *repOp) { q.ops = append(q.ops, op) }

func (q *opQueue) empty() bool { return q.head == len(q.ops) }

func (q *opQueue) peek() *repOp { return q.ops[q.head] }

func (q *opQueue) pop() *repOp {
	op := q.ops[q.head]
	q.ops[q.head] = nil
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.ops) {
		n := copy(q.ops, q.ops[q.head:])
		for i := n; i < len(q.ops); i++ {
			q.ops[i] = nil
		}
		q.ops = q.ops[:n]
		q.head = 0
	}
	return op
}

// removeLast removes the most recent occurrence of op (used to undo a
// push when the shard pipe rejected the frame outright; nested inline
// completions may have pushed entries after ours, so search backward).
func (q *opQueue) removeLast(op *repOp) {
	for i := len(q.ops) - 1; i >= q.head; i-- {
		if q.ops[i] == op {
			copy(q.ops[i:], q.ops[i+1:])
			q.ops = q.ops[:len(q.ops)-1]
			return
		}
	}
}

func (c *Cluster) newRepPipe(w int, onc func(core.Completion)) (core.Pipe, error) {
	tab := c.topo.tab.Load()
	n := len(tab.names)
	p := &repPipe{
		c:      c,
		tab:    tab,
		window: w,
		pipes:  make([]core.Pipe, n),
		onc:    onc,
		dq:     make([]opQueue, n),
		aq:     make([]opQueue, n),
	}
	c.seenGen.Store(tab.gen)
	return p, nil
}

// pipe returns the per-shard pipe for slot s, opening the store and its
// pipe lazily. Opening cannot fire completions, so callers may take the
// pipe before touching the arrival queues.
func (p *repPipe) pipe(s int) (core.Pipe, error) {
	for len(p.pipes) <= s {
		p.pipes = append(p.pipes, nil)
	}
	if sp := p.pipes[s]; sp != nil {
		return sp, nil
	}
	st, err := p.c.store(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", server.ErrRetryable, err)
	}
	sp, err := st.Pipe(core.PipeOpts{Window: p.window, OnComplete: func(sc core.Completion) {
		p.onShard(s, sc)
	}})
	if err != nil {
		return nil, fmt.Errorf("%w: shard pipe: %w", server.ErrRetryable, err)
	}
	p.pipes[s] = sp
	return sp, nil
}

// adopt switches the pipe to a newer published ring view. All in-flight
// ops were routed under the old view, so they are flushed to completion
// first; only then does seenGen advance — after this point no undelivered
// op of an older generation exists in this pipe, which is exactly what
// the coordinator's quiesce needs to be true.
func (p *repPipe) adopt(tab *ringTab) {
	p.Flush() // errors surface through the ops' own completions
	n := len(tab.names)
	for len(p.dq) < n {
		p.dq = append(p.dq, opQueue{})
	}
	for len(p.aq) < n {
		p.aq = append(p.aq, opQueue{})
	}
	p.tab = tab
	p.c.seenGen.Store(tab.gen)
}

func (p *repPipe) getOp() *repOp {
	op := p.free
	if op == nil {
		op = &repOp{}
	} else {
		p.free = op.next
	}
	cands := op.cands[:0]
	*op = repOp{cands: cands}
	return op
}

// maybeRetire returns a fully drained, delivered op to the freelist.
// The retired guard makes it idempotent: nested inline completion chains
// can reach a drained op through more than one stack frame.
func (p *repPipe) maybeRetire(op *repOp) {
	if !op.retired && op.delivered && op.remaining == 0 && op.extraRem == 0 {
		op.retired = true
		op.next = p.free
		p.free = op
	}
}

func (p *repPipe) Get(key uint64) error      { return p.enq(core.OpGet, key, 0) }
func (p *repPipe) Put(key, val uint64) error { return p.enq(core.OpPut, key, val) }
func (p *repPipe) Insert(key, val uint64) error {
	return p.enq(core.OpInsert, key, val)
}
func (p *repPipe) Delete(key uint64) error { return p.enq(core.OpDelete, key, 0) }

func (p *repPipe) enq(kind core.OpKind, key, val uint64) error {
	if p.closed {
		return errors.New("cluster: Pipe used after Close")
	}
	// Raise the instance's inflight BEFORE the tab load (quiesce fence);
	// deliver() lowers it once this op's user completion fires.
	p.c.inflight.Add(1)
	if tab := p.c.topo.tab.Load(); tab.gen != p.tab.gen {
		p.adopt(tab)
	}
	tab := p.tab
	if kind != core.OpGet {
		// A write to a sealed moving range must wait for the flip: the
		// pipe is already flushed (adopt), so spinning here is safe.
		for tab.phase == phaseSealed && p.c.topo.keyMoving(tab, key) {
			time.Sleep(200 * time.Microsecond)
			if nt := p.c.topo.tab.Load(); nt.gen != tab.gen {
				p.adopt(nt)
				tab = p.tab
			}
		}
	}
	h := p.c.topo.keyh(key)
	op := p.getOp()
	op.kind, op.key, op.val = kind, key, val
	op.cands = replicasOn(tab.ring, h, p.c.topo.replicas, op.cands)
	op.primary = op.cands[0]

	var extras []int
	if kind != core.OpGet && tab.phase == phaseHandoff {
		newSet := replicasOn(tab.next, h, p.c.topo.replicas, p.scratch)
		p.scratch = newSet
		extras = newSet[:0] // filter in place: incoming owners not already replicas
		for _, s := range newSet {
			in := false
			for _, o := range op.cands {
				if o == s {
					in = true
					break
				}
			}
			if !in {
				extras = append(extras, s)
			}
		}
		if len(extras) > 0 {
			// Journal BEFORE any shard enqueue: the sealed-phase copy
			// re-reads journaled keys authoritatively.
			p.c.topo.journalAdd(key)
		}
	}

	p.inflight++
	// Queue for delivery BEFORE any shard enqueue: an inline completion
	// burst during the fan-out must find this op at the queue tail.
	p.dq[op.primary].push(op)

	if kind == core.OpGet {
		op.need = 1
		p.tryNextReplica(op)
	} else {
		op.need = p.c.topo.wq
		op.nextCand = len(op.cands)
		// An inline error completion mid-fan-out would see a transiently
		// empty in-flight set and mis-settle the op as quorum-impossible;
		// hold failure settlement until every replica has been attempted.
		op.fanning = true
		var attempted uint64
		for r, s := range op.cands {
			if p.c.topo.det.isDown(s) {
				continue
			}
			attempted |= 1 << r
			p.enqShard(s, op)
		}
		if op.acks+op.remaining < op.need {
			// Second chance: the up replicas cannot reach quorum, so the
			// known-down ones are worth a (possibly redialing) attempt.
			for r, s := range op.cands {
				if attempted&(1<<r) == 0 {
					p.enqShard(s, op)
				}
			}
		}
		// Handoff double-write warm-up: outside the quorum, failures only
		// feed the detector (the journal is the correctness mechanism).
		for _, s := range extras {
			if !p.c.topo.det.isDown(s) {
				p.enqExtra(s, op)
			}
		}
		op.fanning = false
	}
	p.settle(op)
	p.deliver(op.primary)
	p.maybeRetire(op)
	return nil
}

// enqShard enqueues op on shard s's pipe, tracking the outstanding
// completion in s's arrival queue. Reports whether a completion is now
// owed (the pipe accepted the frame — or already completed it inline).
func (p *repPipe) enqShard(s int, op *repOp) bool {
	sp, perr := p.pipe(s)
	if perr != nil {
		// Unopenable shard: same shape as an outright frame rejection.
		op.errc = perr
		p.c.topo.det.fail(s)
		return false
	}
	// Push BEFORE the pipe call: a transport failure inside it delivers
	// error completions inline for everything outstanding on that pipe —
	// including, per the clientPipe contract, this very op when its frame
	// was accepted before the failure.
	p.aq[s].push(op)
	op.remaining++
	var err error
	switch op.kind {
	case core.OpGet:
		err = sp.Get(op.key)
	case core.OpPut:
		err = sp.Put(op.key, op.val)
	case core.OpInsert:
		err = sp.Insert(op.key, op.val)
	case core.OpDelete:
		err = sp.Delete(op.key)
	}
	if err != nil {
		// Frame never sent; no completion will come. Undo the push (by
		// identity — inline completions may have reshaped the queue).
		p.aq[s].removeLast(op)
		op.remaining--
		op.errc = err
		p.c.topo.det.fail(s)
		return false
	}
	return true
}

// enqExtra enqueues op's handoff double-write on incoming owner s. The
// attempt is tracked in extraRem, not remaining: it can neither ack a
// quorum nor fail one.
func (p *repPipe) enqExtra(s int, op *repOp) {
	sp, perr := p.pipe(s)
	if perr != nil {
		p.c.topo.det.fail(s)
		return
	}
	p.aq[s].push(op)
	op.extraRem++
	var err error
	switch op.kind {
	case core.OpPut:
		err = sp.Put(op.key, op.val)
	case core.OpInsert:
		err = sp.Insert(op.key, op.val)
	case core.OpDelete:
		err = sp.Delete(op.key)
	}
	if err != nil {
		p.aq[s].removeLast(op)
		op.extraRem--
		p.c.topo.det.fail(s)
	}
}

// tryNextReplica enqueues a read on its next untried replica, preferring
// up shards but falling back to a down one when nothing better remains.
// Reports whether an attempt is now in flight.
func (p *repPipe) tryNextReplica(op *repOp) bool {
	for {
		r := -1
		for i := op.nextCand; i < len(op.cands); i++ {
			if !p.c.topo.det.isDown(op.cands[i]) {
				r = i
				break
			}
		}
		if r < 0 && op.nextCand < len(op.cands) {
			r = op.nextCand // all remaining are down: last resort, in rank order
		}
		if r < 0 {
			return false
		}
		op.nextCand = r + 1
		if p.enqShard(op.cands[r], op) {
			return true
		}
	}
}

// onShard is every shard pipe's completion callback: it pops the op the
// completion belongs to (arrival order == that pipe's enqueue order),
// folds the outcome into the op's quorum state, drives read failover,
// and delivers whatever the op's primary queue now has ready.
func (p *repPipe) onShard(s int, sc core.Completion) {
	op := p.aq[s].pop()
	extra := true
	for _, o := range op.cands {
		if o == s {
			extra = false
			break
		}
	}
	if extra {
		// Handoff double-write completion: detector feedback only — it is
		// outside the quorum and cannot change the op's outcome.
		op.extraRem--
		if sc.Err != nil {
			if server.IsRetryable(sc.Err) {
				p.c.topo.det.fail(s)
			}
		} else {
			p.c.topo.det.ok(s)
		}
		p.maybeRetire(op)
		return
	}
	op.remaining--
	if sc.Err != nil && server.IsRetryable(sc.Err) {
		p.c.topo.det.fail(s)
		op.errc = sc.Err
		if op.kind == core.OpGet && !op.resolved && p.tryNextReplica(op) {
			return // failover attempt in flight; not settled yet
		}
	} else {
		// Success or a terminal refusal: the shard processed the op
		// either way, which counts toward the quorum. Prefer the first
		// non-error result; a terminal refusal stands only if no replica
		// plainly succeeded.
		p.c.topo.det.ok(s)
		op.acks++
		// A resolved op's outcome is frozen: once settle declared quorum
		// failure, a straggler ack (reachable-but-late replica) must not
		// flip the reported result to success — the write is already
		// indeterminate from the caller's point of view.
		if !op.resolved && (!op.haveRes || (op.res.Err != nil && sc.Err == nil)) {
			op.res = sc
			op.haveRes = true
		}
	}
	p.settle(op)
	p.deliver(op.primary)
	p.maybeRetire(op)
}

// settle resolves op once its outcome is decided: quorum reached, or no
// longer reachable even if every outstanding attempt succeeds.
func (p *repPipe) settle(op *repOp) {
	if op.resolved {
		return
	}
	if op.acks >= op.need {
		op.resolved = true
		if !op.haveRes {
			op.res = core.Completion{Kind: op.kind, Key: op.key}
		}
		return
	}
	if op.acks+op.remaining < op.need && !op.fanning {
		op.resolved = true
		err := op.errc
		if err == nil {
			err = errors.New("replicas unreachable")
		}
		op.res = core.Completion{
			Kind: op.kind, Key: op.key,
			Err: fmt.Errorf("cluster: quorum %d/%d: %w", op.acks, op.need, err),
		}
	}
}

// deliver fires user completions for the resolved prefix of primary's
// delivery queue, preserving enqueue order per primary.
func (p *repPipe) deliver(primary int) {
	q := &p.dq[primary]
	for !q.empty() && q.peek().resolved {
		op := q.pop()
		op.delivered = true
		p.inflight--
		p.c.inflight.Add(-1)
		if p.onc != nil {
			p.onc(op.res)
		}
		p.maybeRetire(op)
	}
}

// Flush drives every shard pipe until all user completions have fired.
// Read failovers enqueued while draining need further passes; the rank
// walk bounds them by the replica count. Flush never leaves an op
// undelivered — on total shard loss every op completes with the
// transport error.
func (p *repPipe) Flush() error {
	var first error
	for pass := 0; p.inflight > 0 && pass <= p.c.topo.replicas+2; pass++ {
		for _, q := range p.pipes {
			if q == nil {
				continue
			}
			if err := q.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	if p.inflight > 0 {
		// Defensive: should be unreachable (every aq drain settles its
		// ops), but the no-hang contract must hold regardless.
		err := first
		if err == nil {
			err = errors.New("cluster: pipe flush stalled")
		}
		for i := range p.dq {
			for q := &p.dq[i]; !q.empty(); {
				op := q.peek()
				if !op.resolved {
					op.resolved = true
					op.res = core.Completion{Kind: op.kind, Key: op.key, Err: err}
				}
				p.deliver(i)
			}
		}
	}
	return first
}

// Close flushes and closes every shard pipe. The Cluster remains usable.
func (p *repPipe) Close() error {
	if p.closed {
		return nil
	}
	first := p.Flush()
	for _, q := range p.pipes {
		if q == nil {
			continue
		}
		if err := q.Close(); err != nil && first == nil {
			first = err
		}
	}
	p.closed = true
	return first
}
