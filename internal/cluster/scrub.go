package cluster

import (
	"errors"
	"time"

	core "repro/internal/core"
)

// This file is the anti-entropy layer. Under W < R a write can complete
// without reaching every replica, and a shard that was down misses whole
// write windows; redial-and-retry brings the shard back but nothing in
// the data path rewrites what it missed. Two mechanisms converge it:
//
// Read repair: a read served by a lower-rank replica (the primary was
// down or failed over) may have raced a divergent write, so the data path
// nudges the scrubber (Topology.noteDivergence) and the key is re-read
// from every replica and repaired out of band — reads never block on
// repair.
//
// Scrubbing: a low-rate background pass walks each shard's table,
// comparing every owned key across its replica set and rewriting stale
// copies, so a re-admitted replica converges even if no client ever reads
// the keys it missed. The failure detector's down→up transition kicks a
// targeted pass (only ranges the revived shard replicates) immediately.
//
// Conflict resolution is last-write-wins by per-key write version when
// the shards track one (core.Config.TrackVersions, served over OpGetVer);
// version-less stores fall back to presence-first, primary-most — a
// deliberate bias against deleting data it cannot order.

// ScrubOpts tunes the background scrubber.
type ScrubOpts struct {
	// Interval between full anti-entropy passes (default 5s).
	Interval time.Duration
	// Batch is the number of entries scanned per step (default 512).
	Batch int
	// Pace is the sleep between scan steps, bounding scrub pressure on
	// the data path (default 1ms).
	Pace time.Duration
}

func (o ScrubOpts) norm() ScrubOpts {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.Batch <= 0 {
		o.Batch = 512
	}
	if o.Pace <= 0 {
		o.Pace = time.Millisecond
	}
	return o
}

// scrubber is the background anti-entropy worker. It owns its shard
// connections (independent of the coordinator's, which live under the
// membership lock) and is the sole receiver of divergence notes and
// detector up-kicks.
type scrubber struct {
	t       *Topology
	opts    ScrubOpts
	stores  map[int]core.Store
	repairs chan uint64
	stop    chan struct{}
	done    chan struct{}
}

// StartScrub launches the background scrubber (idempotent). It requires
// shard connections of its own, so the Topology must be able to open
// stores (Dial-mode, or New with Opts.OpenShard).
func (t *Topology) StartScrub(opts ScrubOpts) error {
	if t.openAdmin == nil {
		return errors.New("cluster: scrubber needs openable shards (Dial, or Opts.OpenShard)")
	}
	t.scrubMu.Lock()
	defer t.scrubMu.Unlock()
	if t.scrub != nil {
		return nil
	}
	sb := &scrubber{
		t:       t,
		opts:    opts.norm(),
		stores:  make(map[int]core.Store),
		repairs: make(chan uint64, 256),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	t.scrub = sb
	go sb.run()
	return nil
}

// stopScrub halts and discards the scrubber, if one is running.
func (t *Topology) stopScrub() {
	t.scrubMu.Lock()
	sb := t.scrub
	t.scrub = nil
	t.scrubMu.Unlock()
	if sb == nil {
		return
	}
	close(sb.stop)
	<-sb.done
	for _, s := range sb.stores {
		s.Close()
	}
}

// noteDivergence hands a possibly-divergent key to the scrubber for
// background read repair. Non-blocking and lossy: with no scrubber
// running, or a full queue, the note is dropped — the periodic pass is
// the backstop.
func (t *Topology) noteDivergence(key uint64) {
	t.scrubMu.Lock()
	sb := t.scrub
	t.scrubMu.Unlock()
	if sb == nil {
		return
	}
	select {
	case sb.repairs <- key:
	default:
	}
}

func (sb *scrubber) run() {
	defer close(sb.done)
	tick := time.NewTicker(sb.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-sb.stop:
			return
		case key := <-sb.repairs:
			sb.repairKey(key)
		case slot := <-sb.t.upCh:
			// A replica came back: converge just the ranges it carries,
			// now, instead of waiting out the ticker.
			sb.pass(slot)
		case <-tick.C:
			sb.pass(-1)
		}
	}
}

// store returns the scrubber's own connection for slot, opening lazily.
func (sb *scrubber) store(slot int) (core.Store, error) {
	if s := sb.stores[slot]; s != nil {
		return s, nil
	}
	s, err := sb.t.openAdmin(sb.t.tab.Load().names[slot])
	if err != nil {
		return nil, err
	}
	sb.stores[slot] = s
	return s, nil
}

// drop closes and forgets slot's connection after a failure.
func (sb *scrubber) drop(slot int) {
	if s := sb.stores[slot]; s != nil {
		s.Close()
		delete(sb.stores, slot)
	}
}

// pass walks every live shard's table and repairs each owned key across
// its replica set. target >= 0 restricts the pass to keys replicated on
// that slot (the detector's re-admission kick). The pass yields between
// scan steps, drains queued read-repair notes, and aborts on a ring
// change — a reshard makes its view stale.
func (sb *scrubber) pass(target int) {
	tab := sb.t.tab.Load()
	if tab.phase != phaseNormal {
		return // resharding owns data movement until the flip
	}
	var buf [maxReplicaStack]int
	for slot := range tab.names {
		select {
		case <-sb.stop:
			return
		default:
		}
		if tab.dead[slot] {
			continue
		}
		s, err := sb.store(slot)
		if err != nil {
			continue // down shard: its ranges are covered from the other owners
		}
		sc, ok := s.(core.Scanner)
		if !ok {
			continue
		}
		var origBins, cur uint64
		for {
			ents, ob, next, done, err := sc.ScanStep(origBins, cur, sb.opts.Batch)
			if err != nil {
				sb.drop(slot)
				break
			}
			origBins, cur = ob, next
			for _, e := range ents {
				owners := replicasOn(tab.ring, sb.t.keyh(e.Key), sb.t.replicas, buf[:0])
				mine, wanted := false, target < 0
				for _, o := range owners {
					if o == slot {
						mine = true
					}
					if o == target {
						wanted = true
					}
				}
				// Repair only keys this shard owns: leftovers from before
				// a reshard flip are unowned stale copies, not canon.
				// Replicated keys are checked once per owner — redundant
				// but idempotent, and dedup isn't worth the memory.
				if mine && wanted {
					sb.repairKey(e.Key)
				}
			}
			if done {
				break
			}
			// Pace the pass: sleep, serve queued read-repair notes, and
			// bail out if the ring moved underneath us.
			timer := time.NewTimer(sb.opts.Pace)
			for draining := true; draining; {
				select {
				case <-sb.stop:
					timer.Stop()
					return
				case key := <-sb.repairs:
					sb.repairKey(key)
				case <-timer.C:
					draining = false
				}
			}
			if sb.t.tab.Load().gen != tab.gen {
				return
			}
		}
	}
}

// repairKey re-reads key from every reachable owner and rewrites the
// stale copies with the winning version. No-op unless the ring is in its
// normal phase (reshard owns movement otherwise) and the copies actually
// differ.
func (sb *scrubber) repairKey(key uint64) {
	tab := sb.t.tab.Load()
	if tab.phase != phaseNormal {
		return
	}
	var buf [maxReplicaStack]int
	owners := replicasOn(tab.ring, sb.t.keyh(key), sb.t.replicas, buf[:0])

	type copyState struct {
		slot int
		val  uint64
		has  bool
		ver  uint64
	}
	var copies [maxReplicaStack]copyState
	n := 0
	for _, o := range owners {
		s, err := sb.store(o)
		if err != nil {
			continue
		}
		var val, ver uint64
		var has bool
		if vr, ok := s.(core.VersionReader); ok {
			val, has, ver, err = vr.GetVer(key)
		} else {
			val, has, err = s.Get(key)
		}
		if err != nil {
			sb.drop(o)
			continue
		}
		copies[n] = copyState{slot: o, val: val, has: has, ver: ver}
		n++
	}
	if n < 2 {
		return // nothing to compare against
	}
	converged := true
	for i := 1; i < n; i++ {
		if copies[i].has != copies[0].has || (copies[i].has && copies[i].val != copies[0].val) {
			converged = false
			break
		}
	}
	if converged {
		return
	}
	// Winner: highest write version, ties to the primary-most replica.
	// With no version info at all, prefer a copy that HAS the key —
	// without ordering, resurrecting a delete is recoverable (delete
	// again), deleting a live key is not.
	best := -1
	for i := 0; i < n; i++ {
		if best < 0 {
			best = i
			continue
		}
		b, c := &copies[best], &copies[i]
		if c.ver > b.ver || (c.ver == b.ver && b.ver == 0 && c.has && !b.has) {
			best = i
		}
	}
	w := &copies[best]
	for i := 0; i < n; i++ {
		c := &copies[i]
		if i == best || (c.has == w.has && (!w.has || c.val == w.val)) {
			continue
		}
		s, err := sb.store(c.slot)
		if err != nil {
			continue
		}
		if w.has {
			if err := upsert(s, key, w.val); err != nil {
				sb.drop(c.slot)
			}
		} else {
			if _, _, err := s.Delete(key); err != nil {
				sb.drop(c.slot)
			}
		}
	}
}
