package cluster

import (
	"sync"
	"time"
)

// detector is the cluster's per-shard failure detector: K consecutive
// retryable failures mark a shard down, a background prober re-admits it
// once a probe succeeds. Down shards are skipped by reads (failover goes
// to the next replica) and by write fan-out (the write proceeds if the
// remaining replicas still reach quorum), so a dead shard costs one
// failed attempt per K operations instead of a timeout per operation.
//
// Any successful real operation against a shard also revives it
// immediately — the prober is the push half, live traffic the pull half.
//
// detector is internally locked: it is the one piece of Cluster state
// shared between the caller's goroutine and the prober goroutine.
type detector struct {
	mu    sync.Mutex
	fails []int  // consecutive retryable failures per shard
	down  []bool // shard currently considered down

	k        int           // failures before down (DownAfter)
	interval time.Duration // probe cadence
	probe    func(i int) error
	proberUp bool
	stop     chan struct{}
	closed   bool

	// onUp, if set, fires (outside the lock) whenever a shard transitions
	// down→up — the hook the anti-entropy scrubber uses to converge a
	// re-admitted replica without waiting for its next full pass.
	onUp func(i int)
}

// newDetector builds a detector over n shards. probe may be nil: then a
// down shard is optimistically re-admitted after one interval (half-open
// — the next real operation is the probe). k <= 0 selects the default.
func newDetector(n, k int, interval time.Duration, probe func(i int) error) *detector {
	if k <= 0 {
		k = defaultDownAfter
	}
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	return &detector{
		fails:    make([]int, n),
		down:     make([]bool, n),
		k:        k,
		interval: interval,
		probe:    probe,
		stop:     make(chan struct{}),
	}
}

// ok records a successful operation against shard i, resetting its
// failure streak and reviving it if it was down.
func (d *detector) ok(i int) {
	d.mu.Lock()
	revived := d.down[i]
	d.fails[i] = 0
	d.down[i] = false
	hook := d.onUp
	d.mu.Unlock()
	if revived && hook != nil {
		hook(i)
	}
}

// grow extends the detector to cover n shards (new ones start up).
// Callers publish the new membership only after growing, so no operation
// references a slot the detector hasn't seen.
func (d *detector) grow(n int) {
	d.mu.Lock()
	for len(d.fails) < n {
		d.fails = append(d.fails, 0)
		d.down = append(d.down, false)
	}
	d.mu.Unlock()
}

// fail records a retryable failure against shard i. After k consecutive
// failures the shard is marked down and the prober is (re)started.
func (d *detector) fail(i int) {
	d.mu.Lock()
	d.fails[i]++
	if d.fails[i] >= d.k && !d.down[i] {
		d.down[i] = true
		if !d.proberUp && !d.closed {
			d.proberUp = true
			go d.prober()
		}
	}
	d.mu.Unlock()
}

// isDown reports whether shard i is currently considered down.
func (d *detector) isDown(i int) bool {
	d.mu.Lock()
	v := d.down[i]
	d.mu.Unlock()
	return v
}

// anyDown reports whether any shard is currently down.
func (d *detector) anyDown() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, v := range d.down {
		if v {
			return true
		}
	}
	return false
}

// prober periodically probes every down shard and re-admits the ones
// that answer. It exits when nothing is down (fail restarts it) or when
// the detector closes.
func (d *detector) prober() {
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
		}
		d.mu.Lock()
		var targets []int
		for i, dn := range d.down {
			if dn {
				targets = append(targets, i)
			}
		}
		if len(targets) == 0 || d.closed {
			// Nothing left to probe: park until the next down event.
			d.proberUp = false
			d.mu.Unlock()
			return
		}
		probe := d.probe
		d.mu.Unlock()

		for _, i := range targets {
			if probe == nil || probe(i) == nil {
				// Half-open (nil probe) or a successful probe: re-admit.
				// The next real operation re-tests the shard for real; a
				// failure streak will take it straight back down.
				d.ok(i)
			}
		}
	}
}

// close stops the prober. Idempotent.
func (d *detector) close() {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.stop)
	}
	d.mu.Unlock()
}
