package cluster

import (
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wal"

	core "repro/internal/core"
)

// durableShard is a restartable dlht-server over a WAL-backed table: the
// in-process stand-in for a shard process that can be killed and
// restarted on the same address with the same directory. (The smoke
// script exercises the literal kill -9; this covers the same client-side
// machinery — redial, failover, re-admission — deterministically and
// under -race.)
type durableShard struct {
	addr string
	dir  string
	srv  *server.Server
	ds   *wal.Store
}

func startDurableShard(t *testing.T, addr, dir string) *durableShard {
	t.Helper()
	ds, err := wal.Open(dir, core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 64, TrackVersions: true}, wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	srv := server.New(ds.Table(), server.Options{})
	if err := srv.AddDurable(server.DefaultTable, ds); err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	go srv.Serve(ln)
	return &durableShard{addr: ln.Addr().String(), dir: dir, srv: srv, ds: ds}
}

func (sh *durableShard) stop() {
	sh.srv.Close()
	sh.ds.Close()
}

// TestFailoverNoLostAckedWrites is the pipeline-vs-oracle property test:
// a replicated R=2 W=2 cluster pipe runs a key-value workload while one
// durable shard is stopped mid-run and later restarted from its WAL on
// the same address. Invariants checked:
//
//   - every enqueued op gets EXACTLY one completion (none lost, none
//     duplicated), in per-key program order;
//   - every successful read returns a value the per-key oracle allows:
//     the last acked write, or any indeterminate (error-completed) write
//     issued since it;
//   - after the shard rejoins, the final value of every key is the last
//     acked write or a trailing indeterminate one — with W=R=2 an acked
//     write reached both replicas, so the restart loses nothing;
//   - the cluster heals with no client restart: the same pipe object
//     carries acked writes again after the shard returns.
func TestFailoverNoLostAckedWrites(t *testing.T) {
	shards := make([]*durableShard, 3)
	addrs := make([]string, 3)
	for i := range shards {
		shards[i] = startDurableShard(t, "", t.TempDir())
		addrs[i] = shards[i].addr
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()

	clu, err := Dial(addrs, Opts{
		Replicas:      2,
		WriteQuorum:   2,
		Retry:         server.RetryPolicy{Max: 3, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 7},
		DownAfter:     2,
		ProbeInterval: 20 * time.Millisecond,
		ReadTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	const nkeys = 128
	// Oracle state, all driven from the single test goroutine (completions
	// fire inline during enq/Flush).
	type keyState struct {
		pending []uint64 // enqueued writes awaiting completion (program order)
		reads   int      // enqueued reads awaiting completion
		acked   uint64   // last acked value
		hasAck  bool
		indet   map[uint64]bool // error-completed writes since the last ack
	}
	ks := make([]*keyState, nkeys)
	for i := range ks {
		ks[i] = &keyState{indet: map[uint64]bool{}}
	}
	completions, enqueued := 0, 0

	trace := make([][]string, nkeys) // debug: per-key event log
	ev := func(k uint64, format string, args ...any) {
		trace[k] = append(trace[k], fmt.Sprintf(format, args...))
	}
	dump := func(k uint64) {
		for _, e := range trace[k] {
			t.Logf("  key %d: %s", k, e)
		}
	}

	p, err := clu.Pipe(core.PipeOpts{Window: 8, OnComplete: func(cc core.Completion) {
		completions++
		st := ks[cc.Key]
		switch cc.Kind {
		case core.OpInsert, core.OpPut:
			ev(cc.Key, "comp %v err=%v ok=%v val=%d", cc.Kind, cc.Err, cc.OK, cc.Value)
			if len(st.pending) == 0 {
				t.Errorf("key %d: write completion with no pending write (dup or reorder)", cc.Key)
				dump(cc.Key)
				t.FailNow()
			}
			v := st.pending[0]
			st.pending = st.pending[1:] // per-key program order
			if cc.Err == nil {
				st.acked, st.hasAck = v, true
				st.indet = map[uint64]bool{}
			} else {
				st.indet[v] = true
			}
		case core.OpGet:
			ev(cc.Key, "comp Get err=%v ok=%v val=%d", cc.Err, cc.OK, cc.Value)
			if st.reads <= 0 {
				t.Errorf("key %d: read completion with no pending read", cc.Key)
				return
			}
			st.reads--
			if cc.Err == nil && cc.OK {
				// Allowed: the last acked write, an indeterminate
				// (error-completed) one, or a still-pending write — a read
				// that failed over can observe a write enqueued after it,
				// because the retried read frame reaches the replica after
				// that write's fan-out frame. Never anything older than the
				// last ack, and never a value that was never issued.
				explainable := (st.hasAck && cc.Value == st.acked) || st.indet[cc.Value]
				for _, v := range st.pending {
					if v == cc.Value {
						explainable = true
						break
					}
				}
				if !explainable {
					t.Errorf("key %d (replicas %v): read %d not explainable (acked %d, %d indeterminate, %d pending)",
						cc.Key, clu.replicasFor(cc.Key, nil), cc.Value, st.acked, len(st.indet), len(st.pending))
					dump(cc.Key)
					t.FailNow()
				}
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}

	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	var seq uint64 = 1
	step := func() {
		k := next(nkeys)
		st := ks[k]
		// Oracle state is recorded BEFORE the pipe call: completions may
		// fire inline during the enqueue itself (window-slide, fail-all)
		// and must find this op already accounted for.
		enqueued++
		if next(100) < 40 {
			st.reads++
			ev(k, "enq Get (era %d)", seq)
			if err := p.Get(k); err != nil {
				t.Fatalf("Get enq: %v", err)
			}
		} else {
			seq++
			st.pending = append(st.pending, seq)
			var err error
			if len(st.pending) == 1 && !st.hasAck {
				ev(k, "enq Insert %d", seq)
				err = p.Insert(k, seq)
			} else {
				ev(k, "enq Put %d", seq)
				err = p.Put(k, seq)
			}
			if err != nil {
				t.Fatalf("write enq: %v", err)
			}
		}
	}

	for i := 0; i < 3000; i++ {
		step()
	}
	// Stop one shard with requests possibly in flight.
	shards[1].stop()
	for i := 0; i < 3000; i++ {
		step()
	}
	// Restart it from the same WAL dir on the same address.
	shards[1] = startDurableShard(t, addrs[1], shards[1].dir)
	// Heal: same pipe, no client restart — drive until a write acks again
	// on every key's replica set (re-dial + detector re-admission).
	deadline := time.Now().Add(10 * time.Second)
	healed := false
	for !healed {
		if time.Now().After(deadline) {
			npend, nreads := 0, 0
			for _, st := range ks {
				npend += len(st.pending)
				nreads += st.reads
			}
			t.Fatalf("cluster did not heal within 10s of the shard restarting (pending %d, reads %d, down %v/%v/%v)",
				npend, nreads, clu.topo.det.isDown(0), clu.topo.det.isDown(1), clu.topo.det.isDown(2))
		}
		for i := 0; i < 200; i++ {
			step()
		}
		if err := p.Flush(); err != nil {
			// Transient while the shard is still coming back.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		healed = true
		for _, st := range ks {
			if len(st.pending) != 0 || st.reads != 0 {
				healed = false
			}
		}
		if healed && clu.topo.det.anyDown() {
			healed = false
			time.Sleep(10 * time.Millisecond)
		}
	}
	// A post-heal round of writes must all ack cleanly.
	for k := uint64(0); k < nkeys; k++ {
		seq++
		if err := p.Put(k, seq); err != nil {
			t.Fatalf("post-heal Put enq: %v", err)
		}
		ks[k].pending = append(ks[k].pending, seq)
		enqueued++
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("post-heal flush: %v", err)
	}
	for k, st := range ks {
		if len(st.pending) != 0 {
			t.Fatalf("key %d: %d writes never completed", k, len(st.pending))
		}
		if !st.hasAck || len(st.indet) != 0 {
			t.Fatalf("key %d: post-heal write did not ack cleanly (hasAck=%v, indet=%d)", k, st.hasAck, len(st.indet))
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if completions != enqueued {
		t.Fatalf("%d completions for %d enqueued ops", completions, enqueued)
	}

	// Final state: every key holds its last acked write (indet sets are
	// empty after the clean post-heal round), on BOTH replicas — the
	// W=R=2 guarantee that a single shard loss cannot lose an acked
	// write.
	for k := uint64(0); k < nkeys; k++ {
		v, ok, err := clu.Get(k)
		if err != nil || !ok {
			t.Fatalf("final Get(%d) = (%v,%v)", k, ok, err)
		}
		if v != ks[k].acked {
			t.Fatalf("key %d: final value %d, want last acked %d", k, v, ks[k].acked)
		}
	}
}

// TestRestartedShardServesItsWAL: an acked W=2 write survives stopping
// BOTH its replicas once they restart from their WALs — the durability
// half of the failover story, without failover masking it.
func TestRestartedShardServesItsWAL(t *testing.T) {
	shards := make([]*durableShard, 3)
	addrs := make([]string, 3)
	dirs := make([]string, 3)
	for i := range shards {
		dirs[i] = t.TempDir()
		shards[i] = startDurableShard(t, "", dirs[i])
		addrs[i] = shards[i].addr
	}
	defer func() {
		for _, sh := range shards {
			sh.stop()
		}
	}()

	clu, err := Dial(addrs, Opts{Replicas: 2, WriteQuorum: 2,
		Retry: server.RetryPolicy{Max: 5, BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer clu.Close()

	const n = 200
	for k := uint64(0); k < n; k++ {
		if _, ins, err := clu.Insert(k, k*3+1); err != nil || !ins {
			t.Fatalf("Insert(%d): (%v,%v)", k, ins, err)
		}
	}
	// Full cluster bounce, every shard restarted from its WAL.
	for i := range shards {
		shards[i].stop()
		shards[i] = startDurableShard(t, addrs[i], dirs[i])
	}
	missing := 0
	for k := uint64(0); k < n; k++ {
		v, ok, err := clu.Get(k)
		if err != nil || !ok || v != k*3+1 {
			missing++
			if missing < 4 {
				t.Errorf("Get(%d) after full restart = (%d,%v,%v), want (%d,true,nil)", k, v, ok, err, k*3+1)
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d acked writes lost across the restart", missing, n)
	}
}
