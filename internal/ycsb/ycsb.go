// Package ycsb implements the single-key YCSB benchmark mixes of the
// paper's §5.3.4: workloads A (50/50 read-update), B (95/5), C (read only)
// and F (read-modify-write), with Zipf-distributed keys as in the YCSB
// specification.
//
// The driver is written against the backend-independent Store surface, so
// the identical mix loop measures an in-process table (New), a single
// dlht-server, or a sharded cluster (NewOver with the matching opener) —
// the workload code does not change across backends.
package ycsb

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Driver owns the backend and the prepopulated record space.
type Driver struct {
	// open returns a fresh per-worker Store (one per goroutine, like
	// handles and connections).
	open    func() (core.Store, error)
	records uint64
	zipf    *workload.Zipf

	t *core.Table // backing table when built by New; nil for NewOver
}

// New builds a local in-process driver with the given record count
// prepopulated (values are 8-byte encodings, the paper's default inlined
// configuration).
func New(records uint64, maxThreads int) (*Driver, error) {
	if maxThreads < 8192 {
		// Worker stores release their handles after each Run, but budget
		// generously anyway (64 B per announce slot): thread sweeps may
		// hold a wide high-water mark of concurrent workers.
		maxThreads = 8192
	}
	t, err := core.New(core.Config{
		Bins:       records*2/3 + 64,
		Resizable:  true,
		MaxThreads: maxThreads + 1,
	})
	if err != nil {
		return nil, err
	}
	d, err := NewOver(t.Store, records)
	if err != nil {
		return nil, err
	}
	d.t = t
	return d, nil
}

// NewOver builds a driver over any Store backend. open returns a fresh
// Store per worker goroutine — (*Table).Store for in-process tables, a
// Dial wrapper for a server, a DialCluster wrapper for a sharded cluster.
// The record space [0, records) is prepopulated through one pipelined
// store before NewOver returns.
func NewOver(open func() (core.Store, error), records uint64) (*Driver, error) {
	s, err := open()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	var insErr error
	p, err := s.Pipe(core.PipeOpts{OnComplete: func(c core.Completion) {
		if c.Err != nil && insErr == nil {
			insErr = c.Err
		}
	}})
	if err != nil {
		return nil, err
	}
	for k := uint64(0); k < records; k++ {
		if err := p.Insert(k, xy(k)); err != nil {
			return nil, err
		}
	}
	if err := p.Close(); err != nil {
		return nil, err
	}
	if insErr != nil {
		return nil, insErr
	}
	return &Driver{
		open:    open,
		records: records,
		zipf:    workload.NewZipf(42, records, 0.99),
	}, nil
}

// Table returns the backing table when the driver was built by New (nil
// for NewOver drivers); benchmarks use it for stats probes.
func (d *Driver) Table() *core.Table { return d.t }

// xy is a cheap value scrambler so values differ from keys.
func xy(k uint64) uint64 { return k*0x9e3779b97f4a7c15 + 1 }

// Result is the outcome of one mix run.
type Result struct {
	Mix     string
	Threads int
	Ops     uint64
	Errs    uint64 // transport/table errors observed by workers
	Elapsed time.Duration
}

// MReqs returns million operations per second.
func (r Result) MReqs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// Run executes the mix for dur across threads workers, each driving its
// own Store.
func (d *Driver) Run(mix workload.Mix, threads int, dur time.Duration) Result {
	var stop atomic.Bool
	var total, errs atomic.Uint64
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			s, err := d.open()
			if err != nil {
				errs.Add(1)
				return
			}
			defer s.Close()
			rng := workload.NewRNG(uint64(tid)*2654435761 + 7)
			keys := d.zipf.Clone(uint64(tid) + 1)
			fresh := workload.NewFreshKeys(tid, d.records)
			var ops, eops uint64
			for !stop.Load() {
				for i := 0; i < 32; i++ {
					k := keys.Key()
					var err error
					switch mix.Pick(rng) {
					case workload.Read:
						_, _, err = s.Get(k)
					case workload.Update:
						_, _, err = s.Put(k, rng.Next())
					case workload.Insert:
						nk := fresh.Key()
						_, _, err = s.Insert(nk, nk)
					case workload.ReadModifyWrite:
						var v uint64
						var ok bool
						if v, ok, err = s.Get(k); err == nil && ok {
							_, _, err = s.Put(k, v+1)
						}
					}
					if err != nil {
						eops++
					}
				}
				ops += 32
			}
			total.Add(ops)
			errs.Add(eops)
		}(tid)
	}
	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return Result{
		Mix:     mix.Name(),
		Threads: threads,
		Ops:     total.Load(),
		Errs:    errs.Load(),
		Elapsed: time.Since(begin),
	}
}
