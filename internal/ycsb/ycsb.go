// Package ycsb implements the single-key YCSB benchmark mixes of the
// paper's §5.3.4 over DLHT: workloads A (50/50 read-update), B (95/5),
// C (read only) and F (read-modify-write), with Zipf-distributed keys as in
// the YCSB specification.
package ycsb

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Driver owns the table and the prepopulated record space.
type Driver struct {
	t       *core.Table
	records uint64
	zipf    *workload.Zipf
}

// New builds a driver with the given record count prepopulated (values are
// 8-byte encodings, the paper's default inlined configuration).
func New(records uint64, maxThreads int) (*Driver, error) {
	if maxThreads < 8192 {
		// Handles are never recycled; thread sweeps and repeated Run calls
		// each take fresh ones, so budget generously (64 B per slot).
		maxThreads = 8192
	}
	t, err := core.New(core.Config{
		Bins:       records*2/3 + 64,
		Resizable:  true,
		MaxThreads: maxThreads + 1,
	})
	if err != nil {
		return nil, err
	}
	h := t.MustHandle()
	for k := uint64(0); k < records; k++ {
		if _, err := h.Insert(k, xy(k)); err != nil {
			return nil, err
		}
	}
	return &Driver{
		t:       t,
		records: records,
		zipf:    workload.NewZipf(42, records, 0.99),
	}, nil
}

// xy is a cheap value scrambler so values differ from keys.
func xy(k uint64) uint64 { return k*0x9e3779b97f4a7c15 + 1 }

// Result is the outcome of one mix run.
type Result struct {
	Mix     string
	Threads int
	Ops     uint64
	Elapsed time.Duration
}

// MReqs returns million operations per second.
func (r Result) MReqs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// Run executes the mix for dur across threads workers.
func (d *Driver) Run(mix workload.Mix, threads int, dur time.Duration) Result {
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h := d.t.MustHandle()
			rng := workload.NewRNG(uint64(tid)*2654435761 + 7)
			keys := d.zipf.Clone(uint64(tid) + 1)
			fresh := workload.NewFreshKeys(tid, d.records)
			var ops uint64
			for !stop.Load() {
				for i := 0; i < 32; i++ {
					k := keys.Key()
					switch mix.Pick(rng) {
					case workload.Read:
						h.Get(k)
					case workload.Update:
						h.Put(k, rng.Next())
					case workload.Insert:
						nk := fresh.Key()
						h.Insert(nk, nk)
					case workload.ReadModifyWrite:
						v, ok := h.Get(k)
						if ok {
							h.Put(k, v+1)
						}
					}
				}
				ops += 32
			}
			total.Add(ops)
		}(tid)
	}
	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return Result{Mix: mix.Name(), Threads: threads, Ops: total.Load(), Elapsed: time.Since(begin)}
}
