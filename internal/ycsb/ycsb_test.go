package ycsb

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func TestDriverRunsAllMixes(t *testing.T) {
	d, err := New(1<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range []workload.Mix{workload.YCSBA, workload.YCSBB, workload.YCSBC, workload.YCSBF} {
		r := d.Run(mix, 2, 30*time.Millisecond)
		if r.Ops == 0 {
			t.Fatalf("%s: no ops", mix.Name())
		}
		if r.Mix != mix.Name() || r.Threads != 2 {
			t.Fatalf("result metadata: %+v", r)
		}
		if r.MReqs() <= 0 {
			t.Fatalf("%s: zero throughput", mix.Name())
		}
	}
}

func TestResultZeroElapsed(t *testing.T) {
	if (Result{Ops: 5}).MReqs() != 0 {
		t.Fatal("zero-elapsed result must report 0")
	}
}

func TestDriverRepeatedRunsShareTable(t *testing.T) {
	d, err := New(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if r := d.Run(workload.YCSBC, 1, 10*time.Millisecond); r.Ops == 0 {
			t.Fatalf("run %d: no ops", i)
		}
	}
}
