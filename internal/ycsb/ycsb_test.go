package ycsb

import (
	"net"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/workload"

	core "repro/internal/core"
)

func TestDriverRunsAllMixes(t *testing.T) {
	d, err := New(1<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, mix := range []workload.Mix{workload.YCSBA, workload.YCSBB, workload.YCSBC, workload.YCSBF} {
		r := d.Run(mix, 2, 30*time.Millisecond)
		if r.Ops == 0 {
			t.Fatalf("%s: no ops", mix.Name())
		}
		if r.Mix != mix.Name() || r.Threads != 2 {
			t.Fatalf("result metadata: %+v", r)
		}
		if r.MReqs() <= 0 {
			t.Fatalf("%s: zero throughput", mix.Name())
		}
		if r.Errs != 0 {
			t.Fatalf("%s: %d errors", mix.Name(), r.Errs)
		}
	}
}

func TestResultZeroElapsed(t *testing.T) {
	if (Result{Ops: 5}).MReqs() != 0 {
		t.Fatal("zero-elapsed result must report 0")
	}
}

func TestDriverRepeatedRunsShareTable(t *testing.T) {
	d, err := New(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if r := d.Run(workload.YCSBC, 1, 10*time.Millisecond); r.Ops == 0 {
			t.Fatalf("run %d: no ops", i)
		}
	}
}

// startServers launches n in-process dlht-servers and returns their
// addresses.
func startServers(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tbl := core.MustNew(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 128})
		s := server.New(tbl, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() { s.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestDriverRunsOverAllStoreBackends is the redesign's acceptance test:
// the identical mix loop (Run) drives an in-process table, a single
// dlht-server, and a 3-shard cluster — only the Store opener differs.
func TestDriverRunsOverAllStoreBackends(t *testing.T) {
	const records = 512
	tbl := core.MustNew(core.Config{Bins: 1 << 10, Resizable: true, MaxThreads: 128})
	single := startServers(t, 1)
	sharded := startServers(t, 3)

	type backend struct {
		name string
		open func() (core.Store, error)
	}
	backends := []backend{
		{"handle", tbl.Store},
		{"client", func() (core.Store, error) {
			return server.DialV2(single[0], server.ClientOpts{})
		}},
		{"cluster-3", func() (core.Store, error) {
			return cluster.Dial(sharded, cluster.Opts{})
		}},
	}

	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			d, err := NewOver(b.open, records)
			if err != nil {
				t.Fatal(err)
			}
			r := d.Run(workload.YCSBA, 2, 30*time.Millisecond)
			if r.Ops == 0 {
				t.Fatalf("no ops over %s", b.name)
			}
			if r.Errs != 0 {
				t.Fatalf("%d errors over %s", r.Errs, b.name)
			}
		})
	}
}
