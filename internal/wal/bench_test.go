package wal

import (
	"testing"

	core "repro/internal/core"
)

// BenchmarkWAL compares the three write paths the README's durability
// numbers come from: group — the pipelined surface, one fsync covering a
// window of completions; perop — the synchronous surface, one fsync per
// mutation (the bitdb-style baseline); ram — the same pipeline with no log
// at all, the ceiling.
func BenchmarkWAL(b *testing.B) {
	cfg := core.Config{Bins: 1 << 16, Resizable: true}

	b.Run("group", func(b *testing.B) {
		s, err := Open(b.TempDir(), cfg, Options{SnapshotBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		p, err := s.Pipe(core.PipeOpts{Window: 64})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Insert(uint64(i)+1, uint64(i))
		}
		if err := p.Flush(); err != nil {
			b.Fatal(err)
		}
	})

	b.Run("perop", func(b *testing.B) {
		s, err := Open(b.TempDir(), cfg, Options{SnapshotBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Insert(uint64(i)+1, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ram", func(b *testing.B) {
		tbl, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		h := tbl.MustHandle()
		defer h.Close()
		p := h.Pipeline(core.PipelineOpts{Window: 64})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Insert(uint64(i)+1, uint64(i))
		}
		p.Flush()
		p.Close()
	})
}
