package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	core "repro/internal/core"
)

// Snapshot writes a snapshot of the table's current state and compacts
// the log: segments the snapshot covers (and older snapshots) are
// deleted. It runs on the caller's goroutine against the Store's
// dedicated snapshot handle, using the weakly consistent iterators — the
// foreground pipeline is never stalled. Sound because effects always
// precede their log records: the scan starts after a rotation, so any
// effect racing into the snapshot has its record in a segment at or after
// the boundary, and replay converges over the duplicate.
func (s *Store) Snapshot() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	boundary, err := s.log.Rotate()
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, fmt.Sprintf("snap-%016x.tmp", boundary))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var frame []byte
	var werr error
	write := func(enc func([]byte) []byte) bool {
		frame = enc(frame[:0])
		if _, werr = bw.Write(frame); werr != nil {
			return false
		}
		return true
	}
	if s.cfg.Mode == core.Allocator {
		err = s.snapH.RangeKV(func(ns uint16, key, val []byte) bool {
			return write(func(dst []byte) []byte { return appendInsertKV(dst, ns, key, val) })
		})
		// Let blocks retired to this handle's epoch reclaim between scans.
		s.snapH.AdvanceEpoch()
		// TTL entries follow the pairs: a snapshot-loading replay applies
		// the inserts (each clearing its key's TTL) before re-asserting
		// the deadlines, mirroring segment order for SET-with-EX.
		if err == nil && s.exp != nil {
			s.exp.Range(func(ns uint16, key []byte, at int64) bool {
				return write(func(dst []byte) []byte { return appendExpireKV(dst, ns, key, at) })
			})
			err = werr
		}
	} else {
		s.snapH.Range(func(k, v uint64) bool {
			return write(func(dst []byte) []byte { return appendFixed(dst, recInsert, k, v) })
		})
	}
	if err == nil {
		err = werr
	}
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(boundary))); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.compact(boundary)
	return nil
}

// compact removes everything a snapshot at boundary supersedes: segments
// below the boundary and older snapshots. Removal failures are ignored —
// leftovers are re-candidates on the next snapshot and harmless to
// recovery, which starts from the newest snapshot.
func (s *Store) compact(boundary uint64) {
	st, err := scanDir(s.dir)
	if err != nil {
		return
	}
	removed := false
	for _, seg := range st.segs {
		if seg < boundary {
			if os.Remove(filepath.Join(s.dir, segName(seg))) == nil {
				removed = true
			}
		}
	}
	for _, b := range st.snaps {
		if b < boundary {
			if os.Remove(filepath.Join(s.dir, snapName(b))) == nil {
				removed = true
			}
		}
	}
	if removed {
		syncDir(s.dir)
	}
}
