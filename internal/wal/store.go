package wal

import (
	"errors"
	"os"
	"runtime"
	"sync"
	"time"

	core "repro/internal/core"
	"repro/internal/expiry"
)

// Options tunes a durable Store. The zero value is usable.
type Options struct {
	// SegmentBytes is the log segment rotation threshold (default 64 MiB).
	SegmentBytes int64
	// SnapshotBytes is how many bytes of appended log trigger an automatic
	// snapshot + compaction (default 256 MiB; negative disables the
	// background snapshotter — Snapshot can still be called manually).
	SnapshotBytes int64
	// SweepInterval is the background expiry sweep cadence for
	// Allocator-mode tables (default 100ms; negative disables the sweeper
	// — expired keys are then reclaimed only by lazy reads and restarts).
	SweepInterval time.Duration
	// SweepSample bounds how many TTL entries one sweep round examines
	// per expiry shard (default 20).
	SweepSample int
	// nowMs overrides the expiry clock (Unix milliseconds). Test hook.
	nowMs func() int64
}

// defaultSnapshotBytes is the automatic snapshot threshold when
// Options.SnapshotBytes is zero.
const defaultSnapshotBytes = 256 << 20

// Store is the durable core.Store backend: an in-memory DLHT table whose
// effective mutations are appended to a group-committed redo log. The
// synchronous mutation methods return once their record is fsynced; the
// pipelined surface (Pipe) withholds each completion until its covering
// group commit instead, so a deep window pays ~one fsync rather than one
// per op. Reads are pure DRAM.
//
// Like every Store, it is a per-goroutine object for its synchronous and
// Pipe surfaces. The shared Log is safe for concurrent appenders, so a
// server can gate many connections on one Store's table+log pair (see
// Table and Log).
type Store struct {
	dir   string
	cfg   core.Config
	opts  Options
	tbl   *core.Table
	log   *Log
	h     *core.Handle // foreground (sync ops + Pipe)
	snapH *core.Handle // snapshotter's handle
	stats RecoverStats

	// Allocator-mode TTL sidecar: the expiry index recovered alongside the
	// table, its background sweeper, and the sweeper's own handle. Nil/zero
	// outside Allocator mode.
	exp     *expiry.Index
	sweepH  *core.Handle
	sweeper *expiry.Sweeper

	stop     chan struct{}
	wg       sync.WaitGroup
	snapMu   sync.Mutex // serializes Snapshot (loop + manual)
	closeMu  sync.Mutex
	closed   bool
	lastSnap int64 // log.Appended() at the last automatic snapshot
}

// Open opens (creating or recovering) a durable table in dir. The
// directory holds log segments and snapshots; cfg configures the
// in-memory table exactly as core.New does and must match the
// configuration the directory was written under (mode mismatches fail
// recovery). Recovery loads the newest snapshot, replays the segments
// after it — truncating a torn tail in the last one — and opens a fresh
// segment.
func Open(dir string, cfg core.Config, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// The store's own handles (foreground + snapshotter, plus the expiry
	// sweeper's in Allocator mode) ride on top of the caller's handle
	// budget, so cfg.MaxThreads keeps meaning "handles for the caller"
	// exactly as it does for core.New.
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 2 * runtime.GOMAXPROCS(0)
	}
	cfg.MaxThreads += 2
	if cfg.Mode == core.Allocator {
		cfg.MaxThreads++
	}
	tbl, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	h, err := tbl.Handle()
	if err != nil {
		return nil, err
	}
	var exp *expiry.Index
	if cfg.Mode == core.Allocator {
		exp = expiry.New(opts.nowMs)
	}
	st, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	nextSeg, stats, err := recoverDir(dir, h, &cfg, exp, st)
	if err != nil {
		return nil, err
	}
	// Keys whose replayed deadline already passed are dead on arrival:
	// purge them before serving so they cannot answer a read. The
	// deletions are not logged — the records that re-create them replay
	// again on the next open and purge again, until a snapshot captures
	// the post-purge state.
	if exp != nil {
		purgeExpired(h, exp)
	}
	// Views materialized during replay are done with; let replay-retired
	// blocks reclaim.
	h.AdvanceEpoch()
	log, err := openLog(dir, nextSeg, opts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	snapH, err := tbl.Handle()
	if err != nil {
		log.Close()
		return nil, err
	}
	s := &Store{
		dir: dir, cfg: cfg, opts: opts, tbl: tbl, log: log,
		h: h, snapH: snapH, exp: exp, stats: stats, stop: make(chan struct{}),
	}
	if opts.SnapshotBytes >= 0 {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	if exp != nil && opts.SweepInterval >= 0 {
		sweepH, err := tbl.Handle()
		if err != nil {
			s.Close()
			return nil, err
		}
		s.sweepH = sweepH
		s.sweeper = exp.StartSweeper(expiry.SweepOpts{
			Interval: opts.SweepInterval,
			Sample:   opts.SweepSample,
			OnExpired: func(ns uint16, key []byte, at int64) {
				hash := tbl.HashOfKV(ns, key)
				mu := exp.Lock(hash)
				mu.Lock()
				// Re-check under the stripe lock: a SET or PERSIST may have
				// replaced the deadline since the sweep sampled it.
				if d, ok := exp.Deadline(ns, key, hash); ok && d <= exp.Now() {
					sweepH.DeleteKVHashed(ns, key, hash)
					exp.Remove(ns, key, hash)
				}
				mu.Unlock()
			},
			// Advance the sweeper handle's epoch each round so blocks
			// deleted by other handles can reclaim past it.
			OnRound: func() { sweepH.AdvanceEpoch() },
		})
	}
	return s, nil
}

// purgeExpired deletes every key whose recovered deadline has passed.
// Runs before the store serves, single-goroutine.
func purgeExpired(h *core.Handle, exp *expiry.Index) {
	type dead struct {
		ns  uint16
		key []byte
	}
	now := exp.Now()
	var victims []dead
	exp.Range(func(ns uint16, key []byte, at int64) bool {
		if at <= now {
			victims = append(victims, dead{ns, key})
		}
		return true
	})
	for _, v := range victims {
		hash := h.Table().HashOfKV(v.ns, v.key)
		// dlht:ok:stripelock — open-time purge, single-goroutine, pre-serving.
		h.DeleteKVHashed(v.ns, v.key, hash)
		exp.Remove(v.ns, v.key, hash)
	}
}

// Table returns the in-memory table behind the store, for callers that
// serve it through their own handles (the network server). Mutations
// applied through foreign handles are NOT logged; pair them with Log.
func (s *Store) Table() *core.Table { return s.tbl }

// Expiry returns the store's TTL sidecar index (nil outside Allocator
// mode). The store owns its background sweeper; callers serving the table
// through their own handles (the RESP front-end) share this index so
// lazy expiry, the sweeper, snapshots and replay all agree on deadlines.
func (s *Store) Expiry() *expiry.Index { return s.exp }

// Log returns the store's redo log, for callers gating their own
// completion paths on group commits (the network server's durable
// tables).
func (s *Store) Log() *Log { return s.log }

// RecoverStats reports what Open's recovery found.
func (s *Store) RecoverStats() RecoverStats { return s.stats }

// snapshotLoop triggers a snapshot + compaction every Options.SnapshotBytes
// of appended log. Polling (rather than signaling from the append path)
// keeps the hot path free of snapshot bookkeeping.
func (s *Store) snapshotLoop() {
	defer s.wg.Done()
	every := s.opts.SnapshotBytes
	if every == 0 {
		every = defaultSnapshotBytes
	}
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if n := s.log.Appended(); n-s.lastSnap >= every {
				if s.Snapshot() == nil {
					s.lastSnap = n
				}
			}
		}
	}
}

// Close stops the snapshotter, flushes and fsyncs the log tail, and
// releases the table handles. The final state is fully recoverable from
// the directory.
func (s *Store) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.stop)
	s.wg.Wait()
	if s.sweeper != nil {
		s.sweeper.Stop()
	}
	err := s.log.Close()
	s.h.Close()
	s.snapH.Close()
	if s.sweepH != nil {
		s.sweepH.Close()
	}
	return err
}

// crash abandons the store the way kill -9 would: the snapshotter stops,
// buffered unsynced log frames are dropped, nothing is flushed. Test hook
// for crash-recovery properties; the in-memory table is discarded.
func (s *Store) crash() {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.stop)
	s.wg.Wait()
	if s.sweeper != nil {
		s.sweeper.Stop()
	}
	s.log.crash()
}

// ---------------------------------------------------------------------------
// core.Store: synchronous surface
// ---------------------------------------------------------------------------

// Get reads key; pure DRAM, no log interaction.
func (s *Store) Get(key uint64) (uint64, bool, error) {
	v, ok := s.h.Get(key)
	return v, ok, nil
}

// Put overwrites an existing key. An effective put returns only after its
// record's covering group commit; a miss touches neither table nor log.
func (s *Store) Put(key, val uint64) (uint64, bool, error) {
	prev, ok := s.h.Put(key, val)
	if !ok {
		return 0, false, nil
	}
	seq, err := s.log.append(func(dst []byte) []byte { return appendFixed(dst, recPut, key, val) })
	if err == nil {
		err = s.log.SyncWait(seq)
	}
	return prev, true, err
}

// Insert adds a new key, durable on return. A duplicate reports the
// existing value with inserted=false and no log record.
func (s *Store) Insert(key, val uint64) (uint64, bool, error) {
	existing, err := s.h.Insert(key, val)
	if errors.Is(err, core.ErrExists) {
		return existing, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	seq, err := s.log.append(func(dst []byte) []byte { return appendFixed(dst, recInsert, key, val) })
	if err == nil {
		err = s.log.SyncWait(seq)
	}
	return 0, true, err
}

// Delete removes key, durable on return; a miss is log-free.
func (s *Store) Delete(key uint64) (uint64, bool, error) {
	prev, ok := s.h.Delete(key)
	if !ok {
		return 0, false, nil
	}
	seq, err := s.log.append(func(dst []byte) []byte { return appendDelete(dst, key) })
	if err == nil {
		err = s.log.SyncWait(seq)
	}
	return prev, true, err
}

// ---------------------------------------------------------------------------
// core.Store: pipelined surface
// ---------------------------------------------------------------------------

// gatedMax bounds how many completions a pipe stages awaiting their group
// commit before enqueues start waiting the sync out — backpressure so an
// unflushed multi-million-op run cannot grow the staging queue without
// bound.
const gatedMax = 4096

// Pipe opens the completion-driven surface with durability gating: each
// op executes (and its record is appended) at the usual window distance
// behind the enqueue cursor, but its completion is withheld until a group
// commit covers the record. One fsync covers every op staged while the
// previous one was in flight — the group-commit window — so streaming
// throughput approaches the RAM pipeline's, with completions trailing by
// one fsync latency. Flush completes AND syncs everything in flight.
func (s *Store) Pipe(opts core.PipeOpts) (core.Pipe, error) {
	p := &durablePipe{s: s, onc: opts.OnComplete}
	p.pl = s.h.Pipeline(core.PipelineOpts{Window: opts.Window, OnComplete: p.stage})
	return p, nil
}

// gated is one completed-but-unacknowledged op: its completion plus the
// log sequence that must be covered before the completion may fire (0 for
// reads, misses and failed inserts — released as soon as every earlier
// staged op is).
type gated struct {
	c   core.Completion
	seq uint64
}

// durablePipe wraps the handle's pipeline with the sync gate. Single
// goroutine, like every Pipe.
type durablePipe struct {
	s      *Store
	pl     *core.Pipeline
	onc    func(core.Completion)
	queue  []gated
	head   int
	maxSeq uint64
	err    error // sticky append failure, surfaced by Flush/Close
	closed bool
}

// stage is the inner pipeline's completion callback: append the redo
// record for an effective mutation (execution order = append order per
// pipe), then park the completion behind its sync.
func (p *durablePipe) stage(op *core.Op) {
	var seq uint64
	if op.OK && op.Kind != core.OpGet {
		var err error
		if seq, err = p.s.log.LogOp(op); err != nil {
			// The op is applied in memory but will not be durable; its
			// completion reports the failure, and the sticky log error
			// fails the pipe's Flush.
			if p.err == nil {
				p.err = err
			}
			c := completionOf(op)
			c.Err = err
			p.queue = append(p.queue, gated{c: c})
			return
		}
		if seq > p.maxSeq {
			p.maxSeq = seq
		}
	}
	p.queue = append(p.queue, gated{c: completionOf(op), seq: seq})
}

func completionOf(op *core.Op) core.Completion {
	return core.Completion{Kind: op.Kind, Key: op.Key, Value: op.Result, OK: op.OK, Err: op.Err}
}

// release fires every staged completion whose record the sync watermark
// covers, in staging order.
func (p *durablePipe) release() {
	synced := p.s.log.Synced()
	for p.head < len(p.queue) && p.queue[p.head].seq <= synced {
		g := &p.queue[p.head]
		p.head++
		if p.onc != nil {
			p.onc(g.c)
		}
		*g = gated{}
	}
	if p.head == len(p.queue) {
		p.queue = p.queue[:0]
		p.head = 0
	}
}

// admit runs after each enqueue: opportunistically release what the
// syncer has covered, and — past the staging bound — wait out the sync of
// the older half so the queue cannot grow without bound.
func (p *durablePipe) admit() error {
	if p.closed {
		panic("wal: Pipe used after Close")
	}
	p.release()
	if len(p.queue)-p.head >= gatedMax {
		mid := p.head + (len(p.queue)-p.head)/2
		var wait uint64
		for i := p.head; i <= mid; i++ {
			if s := p.queue[i].seq; s > wait {
				wait = s
			}
		}
		if err := p.s.log.SyncWait(wait); err != nil {
			return err
		}
		p.release()
	}
	return nil
}

func (p *durablePipe) Get(key uint64) error {
	p.pl.Get(key)
	return p.admit()
}

func (p *durablePipe) Put(key, val uint64) error {
	p.pl.Put(key, val)
	return p.admit()
}

func (p *durablePipe) Insert(key, val uint64) error {
	p.pl.Insert(key, val)
	return p.admit()
}

func (p *durablePipe) Delete(key uint64) error {
	p.pl.Delete(key)
	return p.admit()
}

// Flush completes every in-flight request, waits for the group commit
// covering the last staged record, and fires every withheld completion.
// On a log failure the stuck completions still fire — carrying the error,
// since their durability can no longer be promised — so no callback is
// ever silently dropped.
func (p *durablePipe) Flush() error {
	p.pl.Flush()
	err := p.s.log.SyncWait(p.maxSeq)
	p.release()
	if err != nil {
		for p.head < len(p.queue) {
			g := &p.queue[p.head]
			p.head++
			g.c.Err = err
			if p.onc != nil {
				p.onc(g.c)
			}
			*g = gated{}
		}
		p.queue, p.head = p.queue[:0], 0
	}
	if err == nil {
		err = p.err
	}
	return err
}

// Close flushes the pipe and rejects further enqueues. The Store remains
// usable.
func (p *durablePipe) Close() error {
	if p.closed {
		return nil
	}
	err := p.Flush()
	p.pl.Close()
	p.closed = true
	return err
}
