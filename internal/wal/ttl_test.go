package wal

import (
	"sync/atomic"
	"testing"
	"time"

	core "repro/internal/core"
)

// kvTestConfig is the Allocator-mode (kv) analogue of openTest's config.
func kvTestConfig() core.Config {
	return core.Config{
		Bins:       1 << 10,
		Resizable:  true,
		Mode:       core.Allocator,
		VariableKV: true,
		Namespaces: true,
		EpochGC:    true,
	}
}

// openKV opens a durable kv store on a fake millisecond clock, with the
// background sweeper disabled so tests control exactly when expiry runs.
func openKV(t *testing.T, dir string, now *atomic.Int64) *Store {
	t.Helper()
	s, err := Open(dir, kvTestConfig(), Options{
		nowMs:         now.Load,
		SweepInterval: -1,
		SnapshotBytes: -1,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func wantKV(t *testing.T, s *Store, ns uint16, key, want string) {
	t.Helper()
	v, ok := s.GetKV(ns, []byte(key))
	if !ok || string(v) != want {
		t.Fatalf("GetKV(%d,%q) = %q,%v; want %q,true", ns, key, v, ok, want)
	}
}

func wantMiss(t *testing.T, s *Store, ns uint16, key string) {
	t.Helper()
	if v, ok := s.GetKV(ns, []byte(key)); ok {
		t.Fatalf("GetKV(%d,%q) = %q; want miss", ns, key, v)
	}
}

// TestStoreTTLBasics: the Store-level TTL surface — PutTTL sets a
// deadline, lazy reads honour it, Expire/Persist/plain-put manage it.
func TestStoreTTLBasics(t *testing.T) {
	var now atomic.Int64
	now.Store(1000)
	s := openKV(t, t.TempDir(), &now)
	defer s.Close()

	if err := s.PutKV(1, []byte("plain"), []byte("v")); err != nil {
		t.Fatalf("PutKV: %v", err)
	}
	if ttl, has, ok := s.TTL(1, []byte("plain")); has || !ok || ttl != 0 {
		t.Fatalf("TTL(plain) = %v,%v,%v; want 0,false,true", ttl, has, ok)
	}
	if err := s.PutTTL(1, []byte("tmp"), []byte("v"), 500*time.Millisecond); err != nil {
		t.Fatalf("PutTTL: %v", err)
	}
	if ttl, has, ok := s.TTL(1, []byte("tmp")); !has || !ok || ttl != 500*time.Millisecond {
		t.Fatalf("TTL(tmp) = %v,%v,%v; want 500ms,true,true", ttl, has, ok)
	}
	wantKV(t, s, 1, "tmp", "v")

	// Not expired one tick before the deadline, gone at it.
	now.Store(1499)
	wantKV(t, s, 1, "tmp", "v")
	now.Store(1500)
	wantMiss(t, s, 1, "tmp")
	if _, _, ok := s.TTL(1, []byte("tmp")); ok {
		t.Fatal("TTL on an expired key reported exists")
	}
	if ok, err := s.Expire(1, []byte("tmp"), time.Second); ok || err != nil {
		t.Fatalf("Expire(expired) = %v,%v; want false,nil", ok, err)
	}
	if ok, err := s.DeleteKV(1, []byte("tmp")); ok || err != nil {
		t.Fatalf("DeleteKV(expired) = %v,%v; want false,nil", ok, err)
	}

	// Expire on a live key, then Persist it back to immortal.
	if ok, err := s.Expire(1, []byte("plain"), 300*time.Millisecond); !ok || err != nil {
		t.Fatalf("Expire(plain) = %v,%v", ok, err)
	}
	if ok, err := s.Persist(1, []byte("plain")); !ok || err != nil {
		t.Fatalf("Persist(plain) = %v,%v", ok, err)
	}
	if ok, err := s.Persist(1, []byte("plain")); ok || err != nil {
		t.Fatalf("second Persist = %v,%v; want false,nil", ok, err)
	}
	now.Store(5000)
	wantKV(t, s, 1, "plain", "v")

	// A deadline in the past deletes immediately and still reports true.
	if err := s.PutKV(1, []byte("past"), []byte("v")); err != nil {
		t.Fatalf("PutKV(past): %v", err)
	}
	if ok, err := s.ExpireAt(1, []byte("past"), time.UnixMilli(now.Load())); !ok || err != nil {
		t.Fatalf("ExpireAt(past) = %v,%v", ok, err)
	}
	wantMiss(t, s, 1, "past")

	// A plain put over a TTL'd key clears the deadline.
	if err := s.PutTTL(1, []byte("reset"), []byte("v1"), 100*time.Millisecond); err != nil {
		t.Fatalf("PutTTL(reset): %v", err)
	}
	if err := s.PutKV(1, []byte("reset"), []byte("v2")); err != nil {
		t.Fatalf("PutKV(reset): %v", err)
	}
	now.Store(50_000)
	wantKV(t, s, 1, "reset", "v2")
	if ttl, has, ok := s.TTL(1, []byte("reset")); has || !ok || ttl != 0 {
		t.Fatalf("TTL(reset) = %v,%v,%v; want 0,false,true", ttl, has, ok)
	}
}

// TestStoreTTLReopen: deadlines are durable. Keys that expired while the
// store was closed are purged at open; future deadlines, persisted keys
// and cleared TTLs all come back exactly as written.
func TestStoreTTLReopen(t *testing.T) {
	dir := t.TempDir()
	var now atomic.Int64
	now.Store(1000)
	s := openKV(t, dir, &now)

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.PutTTL(0, []byte("dies"), []byte("v"), 500*time.Millisecond))
	must(s.PutTTL(0, []byte("lives"), []byte("v"), time.Hour))
	must(s.PutKV(0, []byte("forever"), []byte("v")))
	// TTL set then persisted: no deadline after replay.
	must(s.PutTTL(0, []byte("saved"), []byte("v"), 200*time.Millisecond))
	if ok, err := s.Persist(0, []byte("saved")); !ok || err != nil {
		t.Fatalf("Persist = %v,%v", ok, err)
	}
	// TTL set then overwritten by a plain put: the insert record alone
	// must clear the deadline on replay.
	must(s.PutTTL(0, []byte("cleared"), []byte("v1"), 200*time.Millisecond))
	must(s.PutKV(0, []byte("cleared"), []byte("v2")))
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen past "dies"'s deadline but inside every other one.
	now.Store(2000)
	r := openKV(t, dir, &now)
	wantMiss(t, r, 0, "dies")
	wantKV(t, r, 0, "lives", "v")
	if ttl, has, ok := r.TTL(0, []byte("lives")); !has || !ok || ttl <= 0 {
		t.Fatalf("TTL(lives) after reopen = %v,%v,%v", ttl, has, ok)
	}
	wantKV(t, r, 0, "forever", "v")
	for _, key := range []string{"saved", "cleared"} {
		if _, has, ok := r.TTL(0, []byte(key)); has || !ok {
			t.Fatalf("TTL(%s) after reopen: has=%v ok=%v; want false,true", key, has, ok)
		}
	}
	wantKV(t, r, 0, "cleared", "v2")
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The open-time purge is unlogged, so "dies" replays and purges again
	// on every open until a snapshot captures the post-purge state.
	r2 := openKV(t, dir, &now)
	defer r2.Close()
	wantMiss(t, r2, 0, "dies")
	wantKV(t, r2, 0, "lives", "v")
}

// TestStoreTTLSnapshot: deadlines survive the snapshot + compaction path,
// not just raw log replay.
func TestStoreTTLSnapshot(t *testing.T) {
	dir := t.TempDir()
	var now atomic.Int64
	now.Store(1000)
	s := openKV(t, dir, &now)
	if err := s.PutTTL(2, []byte("snapped"), []byte("v"), time.Hour); err != nil {
		t.Fatalf("PutTTL: %v", err)
	}
	if err := s.PutKV(2, []byte("stable"), []byte("v")); err != nil {
		t.Fatalf("PutKV: %v", err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// A post-snapshot mutation, so recovery exercises snapshot + tail.
	if err := s.PutTTL(2, []byte("tail"), []byte("v"), time.Hour); err != nil {
		t.Fatalf("PutTTL(tail): %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	now.Store(2000)
	r := openKV(t, dir, &now)
	defer r.Close()
	if r.RecoverStats().SnapshotRecords == 0 {
		t.Fatal("recovery did not load a snapshot")
	}
	for _, key := range []string{"snapped", "tail"} {
		wantKV(t, r, 2, key, "v")
		if ttl, has, ok := r.TTL(2, []byte(key)); !has || !ok || ttl <= 0 {
			t.Fatalf("TTL(%s) after snapshot recovery = %v,%v,%v", key, ttl, has, ok)
		}
	}
	if _, has, ok := r.TTL(2, []byte("stable")); has || !ok {
		t.Fatalf("TTL(stable): has=%v ok=%v; want false,true", has, ok)
	}
}
