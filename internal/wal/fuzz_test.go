package wal

import (
	"bytes"
	"testing"
)

// FuzzWALRecord: DecodeRecord must never panic on arbitrary input, and on
// success must report a consumption within the buffer whose bytes
// re-decode to the same record (so recovery's sequential scan cannot
// livelock or read out of bounds).
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendFixed(nil, recPut, 1, 2))
	f.Add(appendFixed(nil, recInsert, ^uint64(0), 42))
	f.Add(appendFixed(nil, recInsertShadow, 3, 4))
	f.Add(appendDelete(nil, 7))
	f.Add(appendCommitShadow(nil, 8, true))
	f.Add(appendInsertKV(nil, 5, []byte("key"), []byte("value")))
	f.Add(appendInsertKV(nil, 0, bytes.Repeat([]byte("k"), 300), nil))
	f.Add(appendDeleteKV(nil, 1, []byte("gone")))
	// Torn and corrupt shapes.
	f.Add(appendFixed(nil, recPut, 1, 2)[:10])
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, n, err := DecodeRecord(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error with nonzero consumption %d", n)
			}
			if err != ErrShortRecord && err != ErrCorrupt {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		if n < frameHdrSize || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		if r.Kind == 0 || r.Kind >= recKindEnd {
			t.Fatalf("decoded invalid kind %d", r.Kind)
		}
		// The consumed prefix alone must decode identically.
		r2, n2, err2 := DecodeRecord(b[:n])
		if err2 != nil || n2 != n {
			t.Fatalf("re-decode of consumed prefix: n=%d err=%v", n2, err2)
		}
		if r2.Kind != r.Kind || r2.Key != r.Key || r2.Val != r.Val ||
			r2.NS != r.NS || r2.Commit != r.Commit ||
			!bytes.Equal(r2.K, r.K) || !bytes.Equal(r2.V, r.V) {
			t.Fatal("re-decode disagrees")
		}
	})
}
