package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	core "repro/internal/core"
)

// segName formats a segment file name; snapName a snapshot covering every
// segment numbered below seg.
func segName(seg uint64) string  { return fmt.Sprintf("wal-%016x.seg", seg) }
func snapName(seg uint64) string { return fmt.Sprintf("snap-%016x.snap", seg) }

// Log is the append side of the WAL: a current segment file behind a
// buffered writer, a monotone record sequence, and a sync goroutine that
// group-commits. Append never fsyncs (except segment rotation); instead
// every append kicks the syncer, which flushes the buffer and issues one
// fsync covering everything appended since the last one — while it runs,
// further appends pile up and ride the next fsync. SyncWait(seq) blocks
// until seq is covered.
//
// Append and the Log* helpers are safe for concurrent use from any number
// of pipes and connections; the sequence numbers they return are totally
// ordered across the process.
type Log struct {
	dir      string
	segLimit int64

	mu       sync.Mutex
	dirtyC   sync.Cond // syncer waits for unsynced appends
	syncedC  sync.Cond // SyncWait waiters
	f        *os.File
	buf      []byte // encode scratch + write buffer, flushed by the syncer
	seg      uint64 // current segment number
	segBytes int64
	seq      uint64 // last assigned record sequence
	synced   uint64 // highest sequence covered by fsync
	appended int64  // total bytes appended since open (snapshot trigger)
	err      error  // sticky; poisons every subsequent append and wait
	closed   bool

	done chan struct{} // syncer exit
}

// defaultSegmentBytes is the segment rotation threshold when
// Options.SegmentBytes is zero.
const defaultSegmentBytes = 64 << 20

// openLog creates a Log writing to a fresh segment numbered seg.
func openLog(dir string, seg uint64, segLimit int64) (*Log, error) {
	if segLimit <= 0 {
		segLimit = defaultSegmentBytes
	}
	l := &Log{dir: dir, segLimit: segLimit, seg: seg, done: make(chan struct{})}
	l.dirtyC.L = &l.mu
	l.syncedC.L = &l.mu
	f, err := os.OpenFile(filepath.Join(dir, segName(seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	l.f = f
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	go l.syncLoop()
	return l, nil
}

// syncDir fsyncs a directory so created/renamed/removed entries are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// append frames payload (already encoded by an encode closure) and
// assigns it the next sequence number. The frame goes into the in-memory
// buffer; the syncer flushes and fsyncs it. Rotation happens inline when
// the segment limit is crossed, fsyncing the outgoing segment so a
// segment file on disk is always fully synced once it is not current.
func (l *Log) append(enc func(dst []byte) []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	before := len(l.buf)
	l.buf = enc(l.buf)
	n := int64(len(l.buf) - before)
	l.seq++
	l.segBytes += n
	l.appended += n
	if l.segBytes >= l.segLimit {
		if err := l.rotateLocked(); err != nil {
			l.fail(err)
			return 0, err
		}
	}
	l.dirtyC.Signal()
	return l.seq, nil
}

// rotateLocked flushes and fsyncs the current segment, then opens the
// next one. Records buffered at rotation are covered by the rotation
// fsync itself; l.synced still advances only via the syncer, which next
// syncs the new (empty-so-far) segment — correct, merely conservative.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.seg++
	l.segBytes = 0
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seg)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	return syncDir(l.dir)
}

// flushLocked writes the buffered frames to the current segment file.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// fail records the sticky error and wakes everyone.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
	l.dirtyC.Signal()
	l.syncedC.Broadcast()
}

// syncLoop is the group-commit goroutine: wait for unsynced appends,
// flush the buffer, fsync outside the lock, advance the synced watermark
// to everything the flush captured, and wake the waiters. Appends landing
// during the fsync accumulate and are covered by the next iteration — the
// natural group-commit window.
func (l *Log) syncLoop() {
	defer close(l.done)
	l.mu.Lock()
	for {
		for l.seq == l.synced && !l.closed && l.err == nil {
			l.dirtyC.Wait()
		}
		if l.err != nil || (l.closed && l.seq == l.synced) {
			l.mu.Unlock()
			return
		}
		target := l.seq
		seg := l.seg
		if err := l.flushLocked(); err != nil {
			l.fail(err)
			l.mu.Unlock()
			return
		}
		f := l.f
		l.mu.Unlock()
		err := f.Sync()
		l.mu.Lock()
		if err != nil && seg == l.seg && l.err == nil {
			// A rotation between unlock and Sync closed f; its records
			// were covered by the rotation fsync, so only a same-segment
			// failure poisons the log.
			l.fail(err)
			l.mu.Unlock()
			return
		}
		if l.synced < target {
			l.synced = target
		}
		l.syncedC.Broadcast()
	}
}

// ErrClosed is reported for appends and waits on a closed Log.
var ErrClosed = fmt.Errorf("wal: log closed")

// Synced returns the highest record sequence covered by an fsync.
func (l *Log) Synced() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.synced
}

// Err returns the log's sticky error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Appended returns the total bytes appended since the log was opened.
func (l *Log) Appended() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// SyncWait blocks until record sequence seq is covered by an fsync. seq 0
// (no record) returns immediately with the sticky error state, so callers
// can pass the max sequence they observed without special-casing "nothing
// to wait for".
func (l *Log) SyncWait(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced < seq && l.err == nil && !l.closed {
		l.syncedC.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.synced < seq {
		return ErrClosed
	}
	return nil
}

// Rotate forces a segment rotation and returns the new segment's number:
// every record appended so far lives in segments below it and is fsynced.
// The snapshotter calls this to establish a snapshot boundary.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		l.fail(err)
		return 0, err
	}
	// Everything appended before the rotation is now fsynced.
	if l.synced < l.seq {
		l.synced = l.seq
		l.syncedC.Broadcast()
	}
	return l.seg, nil
}

// Close flushes and fsyncs everything appended, stops the sync goroutine
// and closes the segment. Further appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.err
	}
	l.closed = true
	var err error
	if l.err == nil {
		if err = l.flushLocked(); err == nil {
			err = l.f.Sync()
		}
		if err != nil {
			l.fail(err)
		} else {
			l.synced = l.seq
		}
	}
	l.dirtyC.Signal()
	l.syncedC.Broadcast()
	f := l.f
	l.mu.Unlock()
	<-l.done
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil {
		err = l.err
	}
	return err
}

// crash abandons the log the way kill -9 would: buffered frames are
// dropped unflushed, the segment is closed without fsync, and every
// waiter fails. Test hook for crash-recovery properties.
func (l *Log) crash() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return
	}
	l.closed = true
	l.buf = nil
	l.fail(ErrClosed)
	f := l.f
	l.mu.Unlock()
	<-l.done
	f.Close()
}

// ---------------------------------------------------------------------------
// Typed append helpers
// ---------------------------------------------------------------------------

// LogOp appends the redo record for a completed fixed op and returns its
// sequence, or 0 when the op needs no record: reads, misses, failed
// inserts (Op.OK is the effective-mutation bit — a Put/Delete miss or a
// duplicate Insert changed nothing).
func (l *Log) LogOp(op *core.Op) (uint64, error) {
	if !op.OK {
		return 0, nil
	}
	switch op.Kind {
	case core.OpPut:
		return l.append(func(dst []byte) []byte { return appendFixed(dst, recPut, op.Key, op.Value) })
	case core.OpInsert:
		return l.append(func(dst []byte) []byte { return appendFixed(dst, recInsert, op.Key, op.Value) })
	case core.OpInsertShadow:
		return l.append(func(dst []byte) []byte { return appendFixed(dst, recInsertShadow, op.Key, op.Value) })
	case core.OpDelete:
		return l.append(func(dst []byte) []byte { return appendDelete(dst, op.Key) })
	case core.OpCommitShadow:
		commit := op.Value != 0
		return l.append(func(dst []byte) []byte { return appendCommitShadow(dst, op.Key, commit) })
	}
	return 0, nil
}

// LogKVInsert appends a KV insert record. The key/value bytes are copied
// into the log buffer before it returns.
func (l *Log) LogKVInsert(ns uint16, key, val []byte) (uint64, error) {
	return l.append(func(dst []byte) []byte { return appendInsertKV(dst, ns, key, val) })
}

// LogKVDelete appends a KV delete record.
func (l *Log) LogKVDelete(ns uint16, key []byte) (uint64, error) {
	return l.append(func(dst []byte) []byte { return appendDeleteKV(dst, ns, key) })
}

// LogKVExpire appends a KV TTL record: key's deadline becomes at (Unix
// milliseconds); at <= 0 clears the TTL. Replay re-derives the expiry
// sidecar from these records, so a TTL set before a crash is still
// ticking — or already dead — after recovery.
func (l *Log) LogKVExpire(ns uint16, key []byte, at int64) (uint64, error) {
	return l.append(func(dst []byte) []byte { return appendExpireKV(dst, ns, key, at) })
}
