// Package wal implements the durable Store backend: an append-only
// segmented redo log whose fsync cost is amortized exactly the way the
// table amortizes DRAM latency — over a window of in-flight requests.
//
// A mutation executes in memory first, then appends one CRC-framed record
// to the log; its completion is withheld until a group commit (one fsync
// issued by a dedicated sync goroutine) covers the record. Every op
// enqueued while the previous fsync was in flight rides the next one, so
// a deep Store.Pipe window pays ~one fsync per window rather than one per
// op (see the bitdb numbers in SNIPPETS.md: ~10 ms per-op fsync vs ~µs
// appends — the gap group commit closes).
//
// On disk a log directory holds numbered segments (wal-%016x.seg) and
// snapshots (snap-%016x.snap). A snapshot's number is the first segment it
// does NOT cover: recovery loads the newest snapshot, replays every
// segment at or after its number in order, tolerates a torn tail only in
// the last segment (truncating to the last complete record), and opens a
// fresh segment. Compaction — deleting covered segments after a snapshot —
// runs in a background goroutine and never stalls the foreground pipeline.
//
// Durability contract: when a completion fires (or a synchronous mutation
// returns), its record is fsynced. Recovery restores every acknowledged
// effective mutation; unacknowledged tail writes may or may not survive,
// and are never double-applied (replay is convergent: the final state of a
// key is the last logged state). Records are appended in per-handle
// execution order, so per-key log order is exact whenever a key's writers
// serialize through one pipe — the partitioned executor's contract, and
// any single-writer-per-key workload. Uncommitted shadow entries do not
// survive snapshot compaction (iterators hide them); they are a transient
// two-phase primitive, not durable state.
package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record kinds: the redo vocabulary, shared by segments and snapshots.
const (
	recPut          = 1 // key, val
	recInsert       = 2 // key, val
	recDelete       = 3 // key
	recInsertShadow = 4 // key, val
	recCommitShadow = 5 // key, commit flag
	recInsertKV     = 6 // ns, klen, key bytes, value bytes
	recDeleteKV     = 7 // ns, key bytes
	recExpireKV     = 8 // ns, deadline (unix ms; <=0 clears), key bytes
	recKindEnd      = 9
)

// Frame layout: crc32(4, IEEE over the payload) | len(4) | payload.
const (
	frameHdrSize = 8
	// maxRecordLen bounds a frame's payload so the decoder rejects
	// garbage lengths instead of allocating or scanning gigabytes. The
	// largest legitimate record is an insertKV: 1+2+4 bytes of header
	// plus a key+value pair bounded by the allocator's block size
	// (16 MiB slabs); 32 MiB leaves headroom without trusting the input.
	maxRecordLen = 32 << 20
)

// Decode errors. ErrShortRecord means the buffer ends mid-frame — at the
// tail of the last segment that is a torn write, anywhere else it is
// corruption. ErrCorrupt means the frame can never parse (bad CRC, bad
// length, bad kind, payload/kind size mismatch).
var (
	ErrShortRecord = errors.New("wal: incomplete record frame")
	ErrCorrupt     = errors.New("wal: corrupt record frame")
)

// Record is one decoded redo record. K and V alias the decode buffer.
type Record struct {
	Kind   byte
	Key    uint64
	Val    uint64
	Commit bool
	NS     uint16
	K, V   []byte
	// At is an expireKV record's absolute deadline in Unix milliseconds;
	// zero or negative means the record clears the key's TTL (PERSIST).
	At int64
}

// appendFrame frames payload into dst: CRC, length, payload.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHdrSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendFixed encodes a fixed-op payload (put/insert/insertShadow).
func appendFixed(dst []byte, kind byte, key, val uint64) []byte {
	var p [17]byte
	p[0] = kind
	binary.LittleEndian.PutUint64(p[1:], key)
	binary.LittleEndian.PutUint64(p[9:], val)
	return appendFrame(dst, p[:])
}

// appendDelete encodes a delete payload.
func appendDelete(dst []byte, key uint64) []byte {
	var p [9]byte
	p[0] = recDelete
	binary.LittleEndian.PutUint64(p[1:], key)
	return appendFrame(dst, p[:])
}

// appendCommitShadow encodes a commit/abort payload.
func appendCommitShadow(dst []byte, key uint64, commit bool) []byte {
	var p [10]byte
	p[0] = recCommitShadow
	binary.LittleEndian.PutUint64(p[1:], key)
	if commit {
		p[9] = 1
	}
	return appendFrame(dst, p[:])
}

// appendInsertKV encodes a KV insert payload: ns, klen, key, value.
func appendInsertKV(dst []byte, ns uint16, key, val []byte) []byte {
	var h [7]byte
	h[0] = recInsertKV
	binary.LittleEndian.PutUint16(h[1:], ns)
	binary.LittleEndian.PutUint32(h[3:], uint32(len(key)))
	var hdr [frameHdrSize]byte
	n := len(h) + len(key) + len(val)
	crc := crc32.ChecksumIEEE(h[:])
	crc = crc32.Update(crc, crc32.IEEETable, key)
	crc = crc32.Update(crc, crc32.IEEETable, val)
	binary.LittleEndian.PutUint32(hdr[0:], crc)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(n))
	dst = append(dst, hdr[:]...)
	dst = append(dst, h[:]...)
	dst = append(dst, key...)
	return append(dst, val...)
}

// appendDeleteKV encodes a KV delete payload: ns, key.
func appendDeleteKV(dst []byte, ns uint16, key []byte) []byte {
	var h [3]byte
	h[0] = recDeleteKV
	binary.LittleEndian.PutUint16(h[1:], ns)
	var hdr [frameHdrSize]byte
	crc := crc32.ChecksumIEEE(h[:])
	crc = crc32.Update(crc, crc32.IEEETable, key)
	binary.LittleEndian.PutUint32(hdr[0:], crc)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(h)+len(key)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, h[:]...)
	return append(dst, key...)
}

// appendExpireKV encodes a TTL payload: ns, deadline, key. A deadline at
// or below zero clears the key's TTL on replay.
func appendExpireKV(dst []byte, ns uint16, key []byte, at int64) []byte {
	var h [11]byte
	h[0] = recExpireKV
	binary.LittleEndian.PutUint16(h[1:], ns)
	binary.LittleEndian.PutUint64(h[3:], uint64(at))
	var hdr [frameHdrSize]byte
	crc := crc32.ChecksumIEEE(h[:])
	crc = crc32.Update(crc, crc32.IEEETable, key)
	binary.LittleEndian.PutUint32(hdr[0:], crc)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(h)+len(key)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, h[:]...)
	return append(dst, key...)
}

// DecodeRecord decodes the first frame of b, returning the record and the
// bytes consumed. It never panics on arbitrary input: a buffer ending
// mid-frame is ErrShortRecord, anything unparseable is ErrCorrupt.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHdrSize {
		return Record{}, 0, ErrShortRecord
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if n == 0 || n > maxRecordLen {
		return Record{}, 0, ErrCorrupt
	}
	if len(b) < frameHdrSize+n {
		return Record{}, 0, ErrShortRecord
	}
	payload := b[frameHdrSize : frameHdrSize+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[0:]) {
		return Record{}, 0, ErrCorrupt
	}
	r := Record{Kind: payload[0]}
	switch r.Kind {
	case recPut, recInsert, recInsertShadow:
		if n != 17 {
			return Record{}, 0, ErrCorrupt
		}
		r.Key = binary.LittleEndian.Uint64(payload[1:])
		r.Val = binary.LittleEndian.Uint64(payload[9:])
	case recDelete:
		if n != 9 {
			return Record{}, 0, ErrCorrupt
		}
		r.Key = binary.LittleEndian.Uint64(payload[1:])
	case recCommitShadow:
		if n != 10 || payload[9] > 1 {
			return Record{}, 0, ErrCorrupt
		}
		r.Key = binary.LittleEndian.Uint64(payload[1:])
		r.Commit = payload[9] == 1
	case recInsertKV:
		if n < 7 {
			return Record{}, 0, ErrCorrupt
		}
		r.NS = binary.LittleEndian.Uint16(payload[1:])
		klen := int(binary.LittleEndian.Uint32(payload[3:]))
		if klen < 0 || klen > n-7 {
			return Record{}, 0, ErrCorrupt
		}
		r.K = payload[7 : 7+klen]
		r.V = payload[7+klen:]
	case recDeleteKV:
		if n < 3 {
			return Record{}, 0, ErrCorrupt
		}
		r.NS = binary.LittleEndian.Uint16(payload[1:])
		r.K = payload[3:]
	case recExpireKV:
		if n < 12 { // header plus a non-empty key
			return Record{}, 0, ErrCorrupt
		}
		r.NS = binary.LittleEndian.Uint16(payload[1:])
		r.At = int64(binary.LittleEndian.Uint64(payload[3:]))
		r.K = payload[11:]
	default:
		return Record{}, 0, ErrCorrupt
	}
	return r, frameHdrSize + n, nil
}
