package wal

import (
	"errors"
	"time"

	core "repro/internal/core"
)

// Allocator-mode KV surface with TTLs. These are the Store-level entry
// points behind the RESP front-end's semantics: PutKV/PutTTL upsert (a
// plain put clears any TTL, Redis SET semantics), ExpireAt/Persist manage
// the deadline of a live key, TTL and GetKV check it lazily — an expired
// key answers as a miss and is deleted on the spot. All of them follow
// the Store's synchronous contract: effective mutations return after
// their record's covering group commit.
//
// Like the rest of the synchronous surface they run on the Store's
// foreground handle — per-goroutine, one caller at a time. Servers with
// many connections serve the table through their own handles and this
// store's Expiry()/Log() pair instead (the RESP listener does exactly
// that).

// PutKV upserts key to val with no TTL, clearing any existing deadline.
func (s *Store) PutKV(ns uint16, key, val []byte) error {
	return s.putKV(ns, key, val, 0)
}

// PutTTL upserts key to val with a relative TTL (millisecond resolution;
// non-positive TTLs fall back to a plain put).
func (s *Store) PutTTL(ns uint16, key, val []byte, ttl time.Duration) error {
	if s.exp == nil {
		return core.ErrWrongMode
	}
	at := int64(0)
	if ttl > 0 {
		at = s.exp.Now() + ttl.Milliseconds()
	}
	return s.putKV(ns, key, val, at)
}

// putKV is the upsert core: replace-or-insert the pair, log one insert
// record (replay upserts, so no delete record is needed), and set or
// clear the deadline — with its own expire record when set; the insert
// record alone clears it on replay.
func (s *Store) putKV(ns uint16, key, val []byte, at int64) error {
	if s.exp == nil {
		return core.ErrWrongMode
	}
	if err := s.tbl.CheckKV(ns, key, val, true); err != nil {
		return err
	}
	hash := s.tbl.HashOfKV(ns, key)
	mu := s.exp.Lock(hash)
	mu.Lock()
	var err error
	for {
		err = s.h.InsertKVHashed(ns, key, val, hash)
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrExists) {
			mu.Unlock()
			return err
		}
		s.h.DeleteKVHashed(ns, key, hash)
	}
	seq, err := s.log.LogKVInsert(ns, key, val)
	if err == nil && at > 0 {
		s.exp.ExpireAt(ns, key, hash, at)
		seq, err = s.log.LogKVExpire(ns, key, at)
	} else {
		s.exp.Remove(ns, key, hash)
	}
	mu.Unlock()
	if err != nil {
		return err
	}
	return s.log.SyncWait(seq)
}

// ExpireAt sets key's absolute deadline, reporting whether the key
// existed. A deadline at or before now deletes the key immediately
// (Redis EXPIRE-with-the-past semantics) and still reports true.
func (s *Store) ExpireAt(ns uint16, key []byte, at time.Time) (bool, error) {
	if s.exp == nil {
		return false, core.ErrWrongMode
	}
	if err := s.tbl.CheckKV(ns, key, nil, false); err != nil {
		return false, err
	}
	atMs := at.UnixMilli()
	hash := s.tbl.HashOfKV(ns, key)
	mu := s.exp.Lock(hash)
	mu.Lock()
	if s.expiredLocked(ns, key, hash) {
		mu.Unlock()
		return false, nil
	}
	if _, ok := s.h.GetKV(ns, key); !ok {
		mu.Unlock()
		return false, nil
	}
	var seq uint64
	var err error
	if atMs <= s.exp.Now() {
		s.h.DeleteKVHashed(ns, key, hash)
		s.exp.Remove(ns, key, hash)
		seq, err = s.log.LogKVDelete(ns, key)
	} else {
		s.exp.ExpireAt(ns, key, hash, atMs)
		seq, err = s.log.LogKVExpire(ns, key, atMs)
	}
	mu.Unlock()
	if err != nil {
		return true, err
	}
	return true, s.log.SyncWait(seq)
}

// Expire sets a relative TTL on a live key; sugar over ExpireAt.
func (s *Store) Expire(ns uint16, key []byte, ttl time.Duration) (bool, error) {
	if s.exp == nil {
		return false, core.ErrWrongMode
	}
	return s.ExpireAt(ns, key, time.UnixMilli(s.exp.Now()+ttl.Milliseconds()))
}

// Persist removes key's deadline, reporting whether one was removed.
func (s *Store) Persist(ns uint16, key []byte) (bool, error) {
	if s.exp == nil {
		return false, core.ErrWrongMode
	}
	hash := s.tbl.HashOfKV(ns, key)
	mu := s.exp.Lock(hash)
	mu.Lock()
	if s.expiredLocked(ns, key, hash) {
		mu.Unlock()
		return false, nil
	}
	if !s.exp.Remove(ns, key, hash) {
		mu.Unlock()
		return false, nil
	}
	seq, err := s.log.LogKVExpire(ns, key, 0)
	mu.Unlock()
	if err != nil {
		return true, err
	}
	return true, s.log.SyncWait(seq)
}

// TTL reports key's remaining TTL: (ttl, true, true) with a deadline,
// (0, false, true) for a live key without one, (0, false, false) for a
// missing or expired key.
func (s *Store) TTL(ns uint16, key []byte) (ttl time.Duration, hasTTL, exists bool) {
	if s.exp == nil {
		return 0, false, false
	}
	hash := s.tbl.HashOfKV(ns, key)
	mu := s.exp.Lock(hash)
	mu.Lock()
	defer mu.Unlock()
	if s.expiredLocked(ns, key, hash) {
		return 0, false, false
	}
	if _, ok := s.h.GetKV(ns, key); !ok {
		return 0, false, false
	}
	if at, ok := s.exp.Deadline(ns, key, hash); ok {
		return time.Duration(at-s.exp.Now()) * time.Millisecond, true, true
	}
	return 0, false, true
}

// GetKV reads key with lazy expiry: an expired key is deleted and
// answers as a miss. The value is a copy, valid indefinitely.
func (s *Store) GetKV(ns uint16, key []byte) ([]byte, bool) {
	if s.exp == nil {
		return nil, false
	}
	hash := s.tbl.HashOfKV(ns, key)
	if at, ok := s.exp.Deadline(ns, key, hash); ok && at <= s.exp.Now() {
		mu := s.exp.Lock(hash)
		mu.Lock()
		s.expiredLocked(ns, key, hash)
		mu.Unlock()
		return nil, false
	}
	return s.h.GetKVCopy(ns, key)
}

// DeleteKV removes key, durable on return; expired keys count as already
// gone.
func (s *Store) DeleteKV(ns uint16, key []byte) (bool, error) {
	if s.exp == nil {
		return false, core.ErrWrongMode
	}
	hash := s.tbl.HashOfKV(ns, key)
	mu := s.exp.Lock(hash)
	mu.Lock()
	if s.expiredLocked(ns, key, hash) {
		mu.Unlock()
		return false, nil
	}
	if !s.h.DeleteKVHashed(ns, key, hash) {
		mu.Unlock()
		return false, nil
	}
	s.exp.Remove(ns, key, hash)
	seq, err := s.log.LogKVDelete(ns, key)
	mu.Unlock()
	if err != nil {
		return true, err
	}
	return true, s.log.SyncWait(seq)
}

// expiredLocked is the lazy-expire step, called with the stripe lock
// held: if key's deadline has passed, delete the pair and drop the entry.
// The deletion is not logged — replay re-derives the deadline and the
// open-time purge re-deletes, converging to the same state.
func (s *Store) expiredLocked(ns uint16, key []byte, hash uint64) bool {
	if at, ok := s.exp.Deadline(ns, key, hash); ok && at <= s.exp.Now() {
		s.h.DeleteKVHashed(ns, key, hash)
		s.exp.Remove(ns, key, hash)
		return true
	}
	return false
}
