package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	core "repro/internal/core"
	"repro/internal/expiry"
)

// RecoverStats reports what startup recovery found and did.
type RecoverStats struct {
	// SnapshotSeg is the boundary of the snapshot that was loaded: the
	// first segment it does not cover. 0 when no snapshot was used.
	SnapshotSeg uint64
	// SnapshotRecords is the number of entries restored from the snapshot.
	SnapshotRecords int
	// Segments and Records count the replayed log segments and the redo
	// records applied from them.
	Segments int
	Records  int
	// TornBytes is how much of the last segment was truncated away as a
	// torn tail (an append interrupted by the crash).
	TornBytes int64
}

// dirState is the parsed contents of a log directory.
type dirState struct {
	segs  []uint64 // ascending segment numbers
	snaps []uint64 // ascending snapshot boundaries
}

// scanDir classifies the directory entries. Unknown files (including
// leftover snapshot temporaries) are ignored; stale .tmp files are removed.
func scanDir(dir string) (dirState, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return dirState{}, err
	}
	var st dirState
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") && len(name) == 24:
			n, err := strconv.ParseUint(name[4:20], 16, 64)
			if err == nil {
				st.segs = append(st.segs, n)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") && len(name) == 26:
			n, err := strconv.ParseUint(name[5:21], 16, 64)
			if err == nil {
				st.snaps = append(st.snaps, n)
			}
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(filepath.Join(dir, name))
		}
	}
	sort.Slice(st.segs, func(i, j int) bool { return st.segs[i] < st.segs[j] })
	sort.Slice(st.snaps, func(i, j int) bool { return st.snaps[i] < st.snaps[j] })
	return st, nil
}

// recoverDir rebuilds the table state from dir: pick the newest usable
// snapshot, replay every segment at or after its boundary, truncate a torn
// tail in the last segment, and return the number the next segment should
// take. h is the replay handle (single-goroutine; the Store is not serving
// yet).
func recoverDir(dir string, h *core.Handle, cfg *core.Config, idx *expiry.Index, st dirState) (nextSeg uint64, stats RecoverStats, err error) {
	// Replay starts at the snapshot boundary. A snapshot is usable only if
	// the segments at or after its boundary are present without gaps —
	// compaction deletes covered segments, so after the newest snapshot
	// was written an older one no longer has the segments it would need.
	boundary := uint64(0)
	var snapRecs int
	for i := len(st.snaps) - 1; i >= 0; i-- {
		b := st.snaps[i]
		if !segsCoverFrom(st.segs, b) {
			return 0, stats, fmt.Errorf("wal: snapshot %s needs segments the directory no longer holds", snapName(b))
		}
		n, lerr := loadSnapshot(filepath.Join(dir, snapName(b)), h, cfg, idx)
		if lerr != nil {
			// A snapshot is written to a temp file, fsynced and renamed,
			// so a corrupt one means disk damage, not a crash artifact.
			// An older snapshot can only help if its segments survived.
			if i > 0 && segsCoverFrom(st.segs, st.snaps[i-1]) {
				continue
			}
			return 0, stats, fmt.Errorf("wal: load %s: %w", snapName(b), lerr)
		}
		boundary, snapRecs = b, n
		break
	}
	stats.SnapshotSeg = boundary
	stats.SnapshotRecords = snapRecs

	replay := st.segs
	for len(replay) > 0 && replay[0] < boundary {
		replay = replay[1:]
	}
	for i, seg := range replay {
		last := i == len(replay)-1
		n, torn, rerr := replaySegment(filepath.Join(dir, segName(seg)), h, cfg, idx, last)
		if rerr != nil {
			return 0, stats, fmt.Errorf("wal: replay %s: %w", segName(seg), rerr)
		}
		stats.Segments++
		stats.Records += n
		stats.TornBytes += torn
	}

	nextSeg = boundary + 1
	if len(st.segs) > 0 {
		nextSeg = st.segs[len(st.segs)-1] + 1
	}
	if nextSeg == 0 {
		nextSeg = 1
	}
	return nextSeg, stats, nil
}

// segsCoverFrom reports whether segs (ascending) contains a gap-free run
// covering every segment from boundary b to the newest. An empty tail is
// fine — there is simply nothing to replay. Otherwise the run must start
// at b itself: the snapshotter's rotation created segment b before the
// snapshot was written, so its absence means compaction for a newer
// snapshot already removed segments this one would need.
func segsCoverFrom(segs []uint64, b uint64) bool {
	i := 0
	for i < len(segs) && segs[i] < b {
		i++
	}
	tail := segs[i:]
	if len(tail) == 0 {
		return true
	}
	if tail[0] != b {
		return false
	}
	for j := 1; j < len(tail); j++ {
		if tail[j] != tail[j-1]+1 {
			return false
		}
	}
	return true
}

// replaySegment applies every record of one segment file. In the last
// segment a short or corrupt tail is a torn write: the file is truncated
// back to the end of the last complete record. Anywhere else it is
// corruption and recovery fails.
func replaySegment(path string, h *core.Handle, cfg *core.Config, idx *expiry.Index, last bool) (records int, torn int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	off := 0
	for off < len(b) {
		r, n, derr := DecodeRecord(b[off:])
		if derr != nil {
			if !last {
				return records, 0, derr
			}
			torn = int64(len(b) - off)
			if terr := os.Truncate(path, int64(off)); terr != nil {
				return records, torn, terr
			}
			return records, torn, nil
		}
		if aerr := applyRecord(h, cfg, idx, &r); aerr != nil {
			return records, 0, aerr
		}
		off += n
		records++
	}
	return records, 0, nil
}

// loadSnapshot validates and applies a snapshot file. The whole file is
// decoded before anything is applied, so a corrupt snapshot leaves the
// table untouched and the caller can fall back to an older one.
func loadSnapshot(path string, h *core.Handle, cfg *core.Config, idx *expiry.Index) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var recs []Record
	for off := 0; off < len(b); {
		r, n, derr := DecodeRecord(b[off:])
		if derr != nil {
			return 0, derr
		}
		recs = append(recs, r)
		off += n
	}
	for i := range recs {
		if err := applyRecord(h, cfg, idx, &recs[i]); err != nil {
			return 0, err
		}
	}
	return len(recs), nil
}

// applyRecord applies one redo record to the table. Replay is convergent,
// not strictly idempotent: a record may find the table already past it —
// the snapshot scan is weakly consistent and may include effects whose
// records live in replayed segments — so benign conflicts (duplicate
// insert, missing delete target) are tolerated; the final state of a key
// is always its last logged state. For KV inserts that means upsert: an
// insert record landing on an existing pair replaces it, so upsert-style
// writers (the RESP SET path) log one insert record instead of a
// delete/insert pair. Insert and delete records clear the key's TTL
// entry — a plain SET clears the TTL, Redis semantics — and expire
// records re-assert or clear it; writers that preserve a TTL across an
// overwrite (INCR) log an expire record after the insert. Mode mismatches
// mean the directory was written under a different Config and fail
// recovery.
func applyRecord(h *core.Handle, cfg *core.Config, idx *expiry.Index, r *Record) error {
	kvKind := r.Kind == recInsertKV || r.Kind == recDeleteKV || r.Kind == recExpireKV
	if kvKind != (cfg.Mode == core.Allocator) {
		return fmt.Errorf("%w: record kind %d does not match table mode", ErrCorrupt, r.Kind)
	}
	switch r.Kind {
	case recPut:
		if _, ok := h.Put(r.Key, r.Val); !ok {
			// The put's target was visible when the op executed; if the
			// snapshot missed it (deleted later, scan raced), upserting
			// converges to the same final state the log prescribes.
			if _, err := h.Insert(r.Key, r.Val); err != nil && !errors.Is(err, core.ErrExists) {
				return err
			}
		}
	case recInsert:
		if _, err := h.Insert(r.Key, r.Val); err != nil && !errors.Is(err, core.ErrExists) {
			return err
		}
	case recDelete:
		h.Delete(r.Key)
	case recInsertShadow:
		if _, err := h.InsertShadow(r.Key, r.Val); err != nil &&
			!errors.Is(err, core.ErrExists) && !errors.Is(err, core.ErrShadow) {
			return err
		}
	case recCommitShadow:
		h.CommitShadow(r.Key, r.Commit)
	case recInsertKV:
		if err := h.Table().CheckKV(r.NS, r.K, r.V, true); err != nil {
			return err
		}
		for {
			err := h.InsertKV(r.NS, r.K, r.V)
			if err == nil {
				break
			}
			if !errors.Is(err, core.ErrExists) {
				return err
			}
			// dlht:ok:stripelock — replay is single-goroutine, pre-serving.
			h.DeleteKV(r.NS, r.K)
		}
		if idx != nil {
			idx.Remove(r.NS, r.K, h.Table().HashOfKV(r.NS, r.K))
		}
	case recDeleteKV:
		if err := h.Table().CheckKV(r.NS, r.K, nil, false); err != nil {
			return err
		}
		h.DeleteKV(r.NS, r.K) // dlht:ok:stripelock — single-goroutine replay
		if idx != nil {
			idx.Remove(r.NS, r.K, h.Table().HashOfKV(r.NS, r.K))
		}
	case recExpireKV:
		if err := h.Table().CheckKV(r.NS, r.K, nil, false); err != nil {
			return err
		}
		if idx != nil {
			hash := h.Table().HashOfKV(r.NS, r.K)
			if r.At > 0 {
				idx.ExpireAt(r.NS, r.K, hash, r.At)
			} else {
				idx.Remove(r.NS, r.K, hash)
			}
		}
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, r.Kind)
	}
	return nil
}
