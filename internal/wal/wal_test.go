package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	core "repro/internal/core"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, core.Config{Bins: 1 << 10, Resizable: true}, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestSyncOpsReopen: the synchronous surface is durable op by op.
func TestSyncOpsReopen(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if _, ins, err := s.Insert(1, 10); err != nil || !ins {
		t.Fatalf("Insert: ins=%v err=%v", ins, err)
	}
	if _, ins, _ := s.Insert(1, 11); ins {
		t.Fatal("duplicate Insert reported inserted")
	}
	if _, ok, err := s.Put(1, 20); err != nil || !ok {
		t.Fatalf("Put: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := s.Put(2, 99); ok {
		t.Fatal("Put on absent key reported ok")
	}
	if _, ins, err := s.Insert(2, 30); err != nil || !ins {
		t.Fatalf("Insert 2: ins=%v err=%v", ins, err)
	}
	if _, ok, err := s.Delete(2); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, Options{})
	defer r.Close()
	if v, ok, _ := r.Get(1); !ok || v != 20 {
		t.Fatalf("recovered key 1 = %d,%v; want 20,true", v, ok)
	}
	if _, ok, _ := r.Get(2); ok {
		t.Fatal("deleted key 2 survived recovery")
	}
	st := r.RecoverStats()
	if st.Records != 4 { // insert, put, insert, delete (misses unlogged)
		t.Fatalf("recovered %d records; want 4", st.Records)
	}
}

// TestPipeGroupCommit: pipelined completions all fire by Flush, and every
// acknowledged mutation survives reopen.
func TestPipeGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	const n = 10_000
	fired := 0
	p, err := s.Pipe(core.PipeOpts{Window: 64, OnComplete: func(c core.Completion) {
		if c.Err != nil {
			t.Fatalf("completion error: %v", c.Err)
		}
		fired++
	}})
	if err != nil {
		t.Fatalf("Pipe: %v", err)
	}
	for i := uint64(0); i < n; i++ {
		p.Insert(i, i*2)
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if fired != n {
		t.Fatalf("fired %d completions; want %d", fired, n)
	}
	// Interleave reads and overwrites; completions keep firing in order.
	order := make([]uint64, 0, 64)
	p2, _ := s.Pipe(core.PipeOpts{OnComplete: func(c core.Completion) {
		order = append(order, c.Key)
	}})
	for i := uint64(0); i < 64; i++ {
		if i%2 == 0 {
			p2.Get(i)
		} else {
			p2.Put(i, i+1000)
		}
	}
	if err := p2.Flush(); err != nil {
		t.Fatalf("Flush 2: %v", err)
	}
	for i, k := range order {
		if k != uint64(i) {
			t.Fatalf("completion %d for key %d; want enqueue order", i, k)
		}
	}
	if err := p2.Close(); err != nil {
		t.Fatalf("Close pipe: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, Options{})
	defer r.Close()
	for i := uint64(0); i < n; i++ {
		want := i * 2
		if i < 64 && i%2 == 1 {
			want = i + 1000
		}
		if v, ok, _ := r.Get(i); !ok || v != want {
			t.Fatalf("recovered key %d = %d,%v; want %d,true", i, v, ok, want)
		}
	}
}

// lastSegment returns the path of the newest segment in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	st, err := scanDir(dir)
	if err != nil || len(st.segs) == 0 {
		t.Fatalf("scanDir: segs=%d err=%v", len(st.segs), err)
	}
	return filepath.Join(dir, segName(st.segs[len(st.segs)-1]))
}

// TestTornTail: a segment truncated mid-record recovers cleanly to the
// last complete commit, and the next recovery is torn-free.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	const n = 100
	for i := uint64(0); i < n; i++ {
		if _, ins, err := s.Insert(i, i+1); err != nil || !ins {
			t.Fatalf("Insert %d: ins=%v err=%v", i, ins, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the last record: chop 3 bytes off the newest segment.
	seg := lastSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir, Options{})
	st := r.RecoverStats()
	if st.TornBytes == 0 {
		t.Fatal("recovery reported no torn tail")
	}
	if st.Records != n-1 {
		t.Fatalf("recovered %d records; want %d", st.Records, n-1)
	}
	for i := uint64(0); i < n-1; i++ {
		if v, ok, _ := r.Get(i); !ok || v != i+1 {
			t.Fatalf("recovered key %d = %d,%v; want %d,true", i, v, ok, i+1)
		}
	}
	if _, ok, _ := r.Get(n - 1); ok {
		t.Fatal("torn record's key survived")
	}
	// The torn key is re-insertable and the directory is clean now.
	if _, ins, err := r.Insert(n-1, n); err != nil || !ins {
		t.Fatalf("re-Insert: ins=%v err=%v", ins, err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r2 := openTest(t, dir, Options{})
	defer r2.Close()
	if st := r2.RecoverStats(); st.TornBytes != 0 {
		t.Fatalf("second recovery still torn: %+v", st)
	}
	if v, ok, _ := r2.Get(n - 1); !ok || v != n {
		t.Fatalf("re-inserted key = %d,%v; want %d,true", v, ok, uint64(n))
	}
}

// TestCorruptMiddleFails: corruption anywhere but the last segment is a
// hard recovery error, not a silent truncation.
func TestCorruptMiddleFails(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 1 << 10, SnapshotBytes: -1})
	for i := uint64(0); i < 500; i++ {
		s.Insert(i, i)
	}
	s.Close()
	st, _ := scanDir(dir)
	if len(st.segs) < 2 {
		t.Fatalf("want multiple segments, got %d", len(st.segs))
	}
	first := filepath.Join(dir, segName(st.segs[0]))
	b, _ := os.ReadFile(first)
	b[len(b)/2] ^= 0xff
	os.WriteFile(first, b, 0o644)
	if _, err := Open(dir, core.Config{Bins: 1 << 10, Resizable: true}, Options{}); err == nil {
		t.Fatal("recovery accepted mid-log corruption")
	} else if !strings.Contains(err.Error(), "wal") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

// TestSnapshotCompaction: a snapshot supersedes old segments (they are
// deleted) and recovery from snapshot + tail segments is exact.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 1 << 12, SnapshotBytes: -1})
	const n = 2000
	for i := uint64(0); i < n; i++ {
		s.Insert(i, i+7)
	}
	for i := uint64(0); i < n; i += 3 {
		s.Delete(i)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	st, _ := scanDir(dir)
	if len(st.snaps) != 1 {
		t.Fatalf("want 1 snapshot, got %d", len(st.snaps))
	}
	for _, seg := range st.segs {
		if seg < st.snaps[0] {
			t.Fatalf("segment %d below boundary %d survived compaction", seg, st.snaps[0])
		}
	}
	// Post-snapshot writes land in the tail segments.
	for i := uint64(0); i < 100; i++ {
		s.Put(i*3+1, i)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openTest(t, dir, Options{})
	defer r.Close()
	if r.RecoverStats().SnapshotSeg == 0 {
		t.Fatal("recovery did not use the snapshot")
	}
	for i := uint64(0); i < n; i++ {
		v, ok, _ := r.Get(i)
		switch {
		case i%3 == 0:
			if ok {
				t.Fatalf("deleted key %d survived", i)
			}
		case i%3 == 1 && (i-1)/3 < 100:
			if want := (i - 1) / 3; !ok || v != want {
				t.Fatalf("key %d = %d,%v; want %d,true", i, v, ok, want)
			}
		default:
			if !ok || v != i+7 {
				t.Fatalf("key %d = %d,%v; want %d,true", i, v, ok, i+7)
			}
		}
	}
}

// TestKVStoreReopen: Allocator-mode tables log and recover their KV pairs
// (including a snapshot round trip through RangeKV).
func TestKVStoreReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := core.Config{
		Bins: 1 << 10, Resizable: true, Mode: core.Allocator,
		VariableKV: true, Namespaces: true, EpochGC: true,
	}
	s, err := Open(dir, cfg, Options{SnapshotBytes: -1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	h := s.Table().MustHandle()
	log := s.Log()
	var lastSeq uint64
	putKV := func(ns uint16, key, val string) {
		if err := h.InsertKV(ns, []byte(key), []byte(val)); err != nil {
			t.Fatalf("InsertKV %q: %v", key, err)
		}
		seq, err := log.LogKVInsert(ns, []byte(key), []byte(val))
		if err != nil {
			t.Fatalf("LogKVInsert: %v", err)
		}
		lastSeq = seq
	}
	putKV(0, "alpha", "one")
	putKV(0, "a-key-way-longer-than-eight-bytes", "big-key value")
	putKV(5, "alpha", "ns five")
	putKV(0, "beta", "two")
	h.DeleteKV(0, []byte("beta"))
	if seq, err := log.LogKVDelete(0, []byte("beta")); err != nil {
		t.Fatal(err)
	} else {
		lastSeq = seq
	}
	if err := log.SyncWait(lastSeq); err != nil {
		t.Fatalf("SyncWait: %v", err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	h.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(dir, cfg, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	rh := r.Table().MustHandle()
	defer rh.Close()
	check := func(ns uint16, key, want string) {
		v, ok := rh.GetKV(ns, []byte(key))
		if !ok || string(v) != want {
			t.Fatalf("recovered %d/%q = %q,%v; want %q", ns, key, v, ok, want)
		}
	}
	check(0, "alpha", "one")
	check(0, "a-key-way-longer-than-eight-bytes", "big-key value")
	check(5, "alpha", "ns five")
	if _, ok := rh.GetKV(0, []byte("beta")); ok {
		t.Fatal("deleted KV pair survived")
	}
}

// TestCrashRecoveryProperty is the acknowledged-writes invariant: after a
// crash (unflushed log buffer dropped), every completion that fired is
// recovered, and every recovered value was actually issued — acked ≤
// recovered ≤ issued per key, with values encoding monotone rounds.
func TestCrashRecoveryProperty(t *testing.T) {
	const keys = 64
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		dir := t.TempDir()
		s := openTest(t, dir, Options{SegmentBytes: 1 << 14, SnapshotBytes: -1})
		acked := make([]uint64, keys)  // highest completed round per key
		issued := make([]uint64, keys) // highest enqueued round per key
		p, err := s.Pipe(core.PipeOpts{Window: 32, OnComplete: func(c core.Completion) {
			if c.Err != nil || !c.OK {
				return
			}
			k := c.Key % keys
			if v := ackRound(c); v > acked[k] {
				acked[k] = v
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		nops := 200 + rng.Intn(4000)
		round := make([]uint64, keys)
		for i := 0; i < nops; i++ {
			k := uint64(rng.Intn(keys))
			round[k]++
			issued[k] = round[k]
			if round[k] == 1 {
				p.Insert(k, 1)
			} else {
				p.Put(k, round[k])
			}
			if rng.Intn(64) == 0 {
				if err := p.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Crash with the tail of the run still in flight: unflushed frames
		// vanish, synced ones survive.
		s.crash()

		r := openTest(t, dir, Options{})
		for k := uint64(0); k < keys; k++ {
			v, ok, _ := r.Get(k)
			got := uint64(0)
			if ok {
				got = v
			}
			if got < acked[k] {
				t.Fatalf("trial %d key %d: recovered round %d < acked %d (acknowledged write lost)", trial, k, got, acked[k])
			}
			if got > issued[k] {
				t.Fatalf("trial %d key %d: recovered round %d > issued %d (phantom write)", trial, k, got, issued[k])
			}
		}
		r.Close()
	}
}

// ackRound decodes the round a completion acknowledges: inserts are round
// 1, puts carry the round in the value... but Completion.Value holds the
// PREVIOUS value for puts, so the acknowledged round is previous+1.
func ackRound(c core.Completion) uint64 {
	switch c.Kind {
	case core.OpInsert:
		return 1
	case core.OpPut:
		return c.Value + 1
	}
	return 0
}

// TestOpenFreshDirIdempotent: opening an empty directory twice in a row
// works and starts clean.
func TestOpenFreshDirIdempotent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub", "db")
	s := openTest(t, dir, Options{})
	if st := s.RecoverStats(); st.Records != 0 || st.SnapshotSeg != 0 {
		t.Fatalf("fresh dir recovered state: %+v", st)
	}
	s.Close()
	s2 := openTest(t, dir, Options{})
	s2.Close()
}

// TestDecodeRecordRoundTrip pins the frame encodings the fuzz target
// seeds from.
func TestDecodeRecordRoundTrip(t *testing.T) {
	frames := [][]byte{
		appendFixed(nil, recPut, 1, 2),
		appendFixed(nil, recInsert, ^uint64(0), 0),
		appendFixed(nil, recInsertShadow, 7, 8),
		appendDelete(nil, 42),
		appendCommitShadow(nil, 9, true),
		appendCommitShadow(nil, 9, false),
		appendInsertKV(nil, 3, []byte("key"), []byte("value")),
		appendInsertKV(nil, 0, []byte("a-much-longer-key-than-8B"), nil),
		appendDeleteKV(nil, 0xfff, []byte("k")),
	}
	for i, f := range frames {
		r, n, err := DecodeRecord(f)
		if err != nil || n != len(f) {
			t.Fatalf("frame %d: n=%d err=%v", i, n, err)
		}
		if r.Kind == 0 || r.Kind >= recKindEnd {
			t.Fatalf("frame %d: bad kind %d", i, r.Kind)
		}
	}
	r, _, err := DecodeRecord(frames[6])
	if err != nil || string(r.K) != "key" || string(r.V) != "value" || r.NS != 3 {
		t.Fatalf("insertKV round trip: %+v err=%v", r, err)
	}
	// Concatenated frames decode in sequence.
	all := append(append([]byte(nil), frames[0]...), frames[3]...)
	r0, n0, _ := DecodeRecord(all)
	r1, _, err := DecodeRecord(all[n0:])
	if err != nil || r0.Kind != recPut || r1.Kind != recDelete {
		t.Fatalf("sequential decode: %v/%v err=%v", r0.Kind, r1.Kind, err)
	}
}
