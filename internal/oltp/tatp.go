package oltp

import (
	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/workload"
)

// TATP (Telecom Application Transaction Processing) per the benchmark
// specification, scaled to s subscribers. Four tables; the paper's Table 4:
// 4 tables, 51 columns, 7 transaction types, 80 % reads.
//
// Key packing (8 bytes):
//
//	subscriber:        s_id
//	access_info:       s_id<<2  | ai_type  (ai_type 0..3)
//	special_facility:  s_id<<2  | sf_type  (sf_type 0..3)
//	call_forwarding:   s_id<<7  | sf_type<<5 | start_hour (0..23)
//
// Values pack the record's fixed-width columns into 8 bytes (bit fields);
// TATP's textual columns are represented by their hashes, which preserves
// the benchmark's access pattern — the object of study — exactly.
type TATP struct {
	subscribers uint64
	subscriber  *core.Table
	accessInfo  *core.Table
	specialFac  *core.Table
	callFwd     *core.Table
	locks       *lockmgr.Manager
}

// Standard TATP transaction mix (percent).
const (
	txGetSubscriberData   = 35
	txGetNewDestination   = 10
	txGetAccessData       = 35
	txUpdateSubscriberDat = 2
	txUpdateLocation      = 14
	txInsertCallFwd       = 2
	txDeleteCallFwd       = 2
)

// NewTATP populates a TATP database with s subscribers.
func NewTATP(s uint64, maxThreads int) *TATP {
	if maxThreads < 8192 {
		maxThreads = 8192 // handles are per-Run and never recycled
	}
	mk := func(bins uint64) *core.Table {
		return core.MustNew(core.Config{
			Bins:       bins + 64,
			Resizable:  true,
			MaxThreads: maxThreads + 1,
		})
	}
	t := &TATP{
		subscribers: s,
		subscriber:  mk(s),
		accessInfo:  mk(s * 2),
		specialFac:  mk(s * 2),
		callFwd:     mk(s * 2),
		locks:       lockmgr.New(s/2+64, maxThreads),
	}
	rng := workload.NewRNG(11)
	hs := t.subscriber.MustHandle()
	ha := t.accessInfo.MustHandle()
	hf := t.specialFac.MustHandle()
	hc := t.callFwd.MustHandle()
	for id := uint64(0); id < s; id++ {
		hs.Insert(id, rng.Next())
		// Each subscriber has 1–4 access_info and special_facility rows and
		// 0–3 call_forwarding rows, per the TATP population rules.
		nAI := 1 + rng.Uint64n(4)
		for ai := uint64(0); ai < nAI; ai++ {
			ha.Insert(id<<2|ai, rng.Next())
		}
		nSF := 1 + rng.Uint64n(4)
		for sf := uint64(0); sf < nSF; sf++ {
			hf.Insert(id<<2|sf, rng.Next())
			nCF := rng.Uint64n(4)
			for cf := uint64(0); cf < nCF; cf++ {
				hc.Insert(id<<7|sf<<5|(cf*8), rng.Next())
			}
		}
	}
	return t
}

// Name implements Workload.
func (t *TATP) Name() string { return "TATP" }

// NewWorker implements Workload.
func (t *TATP) NewWorker(tid int) func() bool {
	rng := workload.NewRNG(uint64(tid)*31 + 5)
	hs := t.subscriber.MustHandle()
	ha := t.accessInfo.MustHandle()
	hf := t.specialFac.MustHandle()
	hc := t.callFwd.MustHandle()
	locks := t.locks.Session()
	return func() bool {
		sid := rng.Uint64n(t.subscribers)
		p := int(rng.Uint64n(100))
		switch {
		case p < txGetSubscriberData:
			// Read the full subscriber row.
			_, ok := hs.Get(sid)
			return ok
		case p < txGetSubscriberData+txGetNewDestination:
			// Read special_facility then call_forwarding.
			sf := rng.Uint64n(4)
			if _, ok := hf.Get(sid<<2 | sf); !ok {
				return false // benchmark counts this as a failed lookup
			}
			hc.Get(sid<<7 | sf<<5 | rng.Uint64n(3)*8)
			return true
		case p < txGetSubscriberData+txGetNewDestination+txGetAccessData:
			_, ok := ha.Get(sid<<2 | rng.Uint64n(4))
			return ok
		case p < txGetSubscriberData+txGetNewDestination+txGetAccessData+txUpdateSubscriberDat:
			// Update subscriber bit + special_facility data: two writes
			// under 2PL.
			sf := sid<<2 | rng.Uint64n(4)
			keys := []uint64{sid, sf + (1 << 62)} // disjoint lock spaces
			if !locks.LockAll(keys) {
				return false
			}
			hs.Put(sid, rng.Next())
			hf.Put(sf, rng.Next())
			locks.UnlockAll(keys)
			return true
		case p < txGetSubscriberData+txGetNewDestination+txGetAccessData+txUpdateSubscriberDat+txUpdateLocation:
			// Single-row subscriber update (vlr_location).
			_, ok := hs.Put(sid, rng.Next())
			return ok
		case p < 100-txDeleteCallFwd:
			// InsertCallForwarding: read special_facility, insert a row.
			sf := rng.Uint64n(4)
			if _, ok := hf.Get(sid<<2 | sf); !ok {
				return false
			}
			key := sid<<7 | sf<<5 | rng.Uint64n(3)*8
			_, err := hc.Insert(key, rng.Next())
			return err == nil
		default:
			// DeleteCallForwarding.
			key := sid<<7 | rng.Uint64n(4)<<5 | rng.Uint64n(3)*8
			_, ok := hc.Delete(key)
			return ok
		}
	}
}

var _ Workload = (*TATP)(nil)
