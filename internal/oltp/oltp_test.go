package oltp

import (
	"testing"
	"time"
)

func TestTATPRuns(t *testing.T) {
	w := NewTATP(512, 8)
	r := Run(w, 2, 40*time.Millisecond)
	if r.Txs == 0 {
		t.Fatal("no transactions committed")
	}
	if r.Benchmark != "TATP" {
		t.Fatalf("name = %q", r.Benchmark)
	}
	if r.MTxs() <= 0 {
		t.Fatal("zero throughput")
	}
}

func TestTATPWorkerAllTransactionTypes(t *testing.T) {
	w := NewTATP(256, 4)
	exec := w.NewWorker(0)
	commits := 0
	for i := 0; i < 20000; i++ {
		if exec() {
			commits++
		}
	}
	// The mix is 80 % reads on guaranteed-present subscriber rows, so the
	// commit rate must be high.
	if commits < 10000 {
		t.Fatalf("only %d/20000 committed", commits)
	}
}

func TestSmallbankRuns(t *testing.T) {
	w := NewSmallbank(512, 8)
	r := Run(w, 2, 40*time.Millisecond)
	if r.Txs == 0 {
		t.Fatal("no transactions committed")
	}
	if r.Benchmark != "Smallbank" {
		t.Fatalf("name = %q", r.Benchmark)
	}
}

func TestSmallbankSendPaymentConservesMoney(t *testing.T) {
	// Drive only transfer-like transactions by running the full worker and
	// tracking the invariant that money never appears from nowhere beyond
	// what deposits/checks add: we instead run a dedicated transfer loop
	// through the public surface by replaying SendPayment-equivalent pairs.
	s := NewSmallbank(64, 4)
	before := s.TotalCents()
	// Amalgamate and SendPayment conserve; Deposit/TransactSavings add;
	// WriteCheck subtracts. So run the worker and verify the total changed
	// only through bounded per-tx deltas (no 2x double-credits).
	exec := s.NewWorker(1)
	const txs = 5000
	for i := 0; i < txs; i++ {
		exec()
	}
	after := s.TotalCents()
	var diff uint64
	if after > before {
		diff = after - before
	} else {
		diff = before - after
	}
	// Deposits add <100, savings <100, checks subtract <51 per transaction;
	// anything beyond ~100/tx indicates a broken balance update.
	if diff > txs*100 {
		t.Fatalf("balance drift %d exceeds per-tx bounds", diff)
	}
}

func TestSmallbankWorkerCommitRate(t *testing.T) {
	s := NewSmallbank(256, 4)
	exec := s.NewWorker(0)
	commits := 0
	for i := 0; i < 10000; i++ {
		if exec() {
			commits++
		}
	}
	// Single-threaded: no lock conflicts, so nearly everything commits.
	if commits < 9000 {
		t.Fatalf("only %d/10000 committed single-threaded", commits)
	}
}

func TestRunParallelNoLeakedLocks(t *testing.T) {
	s := NewSmallbank(128, 8)
	Run(s, 4, 50*time.Millisecond)
	if n := s.locks.Outstanding(); n != 0 {
		t.Fatalf("%d record locks leaked", n)
	}
}

func TestTATPParallelNoLeakedLocks(t *testing.T) {
	w := NewTATP(128, 8)
	Run(w, 4, 50*time.Millisecond)
	if n := w.locks.Outstanding(); n != 0 {
		t.Fatalf("%d record locks leaked", n)
	}
}
