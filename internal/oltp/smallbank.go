package oltp

import (
	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/workload"
)

// Smallbank (Cahill et al., "Serializable isolation for snapshot
// databases") scaled to n customer accounts. Three tables (accounts,
// savings, checking), six transaction types, 15 % reads — the paper's
// write-intensive OLTP benchmark (Table 4).
//
// Balances are stored as unsigned cents biased by balanceBias so that
// overdrafts stay representable in a uint64 slot.
type Smallbank struct {
	accounts uint64
	account  *core.Table // custid -> account metadata
	savings  *core.Table // custid -> savings balance
	checking *core.Table // custid -> checking balance
	locks    *lockmgr.Manager
}

const balanceBias = 1 << 40

// Standard Smallbank mix (percent): Balance is the only read transaction.
const (
	txBalance         = 15
	txDepositChecking = 17
	txTransactSavings = 17
	txAmalgamate      = 17
	txWriteCheck      = 17
	// txSendPayment = rest (17)
)

// NewSmallbank populates a Smallbank database with n accounts.
func NewSmallbank(n uint64, maxThreads int) *Smallbank {
	if maxThreads < 8192 {
		maxThreads = 8192 // handles are per-Run and never recycled
	}
	mk := func() *core.Table {
		return core.MustNew(core.Config{
			Bins:       n + 64,
			Resizable:  true,
			MaxThreads: maxThreads + 1,
		})
	}
	s := &Smallbank{
		accounts: n,
		account:  mk(),
		savings:  mk(),
		checking: mk(),
		locks:    lockmgr.New(n/2+64, maxThreads),
	}
	ha := s.account.MustHandle()
	hs := s.savings.MustHandle()
	hc := s.checking.MustHandle()
	rng := workload.NewRNG(13)
	for id := uint64(0); id < n; id++ {
		ha.Insert(id, rng.Next())
		hs.Insert(id, balanceBias+rng.Uint64n(100000))
		hc.Insert(id, balanceBias+rng.Uint64n(100000))
	}
	return s
}

// Name implements Workload.
func (s *Smallbank) Name() string { return "Smallbank" }

// NewWorker implements Workload.
func (s *Smallbank) NewWorker(tid int) func() bool {
	rng := workload.NewRNG(uint64(tid)*97 + 3)
	hs := s.savings.MustHandle()
	hc := s.checking.MustHandle()
	locks := s.locks.Session()
	addTo := func(h *core.Handle, id uint64, delta uint64) bool {
		v, ok := h.Get(id)
		if !ok {
			return false
		}
		_, ok = h.Put(id, v+delta)
		return ok
	}
	return func() bool {
		a := rng.Uint64n(s.accounts)
		p := int(rng.Uint64n(100))
		switch {
		case p < txBalance:
			// Balance: read both balances of one customer.
			_, ok1 := hs.Get(a)
			_, ok2 := hc.Get(a)
			return ok1 && ok2
		case p < txBalance+txDepositChecking:
			// DepositChecking: single-row update under its lock.
			if !locks.TryLock(a) {
				return false
			}
			ok := addTo(hc, a, rng.Uint64n(100))
			locks.Unlock(a)
			return ok
		case p < txBalance+txDepositChecking+txTransactSavings:
			// TransactSavings.
			if !locks.TryLock(a) {
				return false
			}
			ok := addTo(hs, a, rng.Uint64n(100))
			locks.Unlock(a)
			return ok
		case p < txBalance+txDepositChecking+txTransactSavings+txAmalgamate:
			// Amalgamate: move everything from a's savings+checking into
			// b's checking — three rows, two customers, 2PL.
			b := rng.Uint64n(s.accounts)
			if b == a {
				b = (a + 1) % s.accounts
			}
			keys := []uint64{a, b}
			if !locks.LockAll(keys) {
				return false
			}
			sv, ok1 := hs.Get(a)
			cv, ok2 := hc.Get(a)
			ok := ok1 && ok2
			if ok {
				hs.Put(a, balanceBias)
				hc.Put(a, balanceBias)
				addTo(hc, b, (sv-balanceBias)+(cv-balanceBias))
			}
			locks.UnlockAll(keys)
			return ok
		case p < txBalance+txDepositChecking+txTransactSavings+txAmalgamate+txWriteCheck:
			// WriteCheck: read both balances, debit checking.
			if !locks.TryLock(a) {
				return false
			}
			sv, ok1 := hs.Get(a)
			cv, ok2 := hc.Get(a)
			ok := ok1 && ok2
			if ok {
				amount := rng.Uint64n(50)
				if sv+cv-2*balanceBias < amount {
					amount++ // overdraft penalty, per the spec
				}
				hc.Put(a, cv-amount)
			}
			locks.Unlock(a)
			return ok
		default:
			// SendPayment: transfer between two checking accounts.
			b := rng.Uint64n(s.accounts)
			if b == a {
				b = (a + 1) % s.accounts
			}
			keys := []uint64{a, b}
			if !locks.LockAll(keys) {
				return false
			}
			amount := rng.Uint64n(20)
			av, ok := hc.Get(a)
			if ok {
				hc.Put(a, av-amount)
				addTo(hc, b, amount)
			}
			locks.UnlockAll(keys)
			return ok
		}
	}
}

// TotalCents sums all balances (conservation check for tests): transfers
// must conserve the combined total, modulo deposit/check transactions.
func (s *Smallbank) TotalCents() uint64 {
	hs := s.savings.MustHandle()
	hc := s.checking.MustHandle()
	var sum uint64
	hs.Range(func(_, v uint64) bool { sum += v - balanceBias; return true })
	hc.Range(func(_, v uint64) bool { sum += v - balanceBias; return true })
	return sum
}

var _ Workload = (*Smallbank)(nil)
