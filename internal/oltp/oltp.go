// Package oltp implements the two multi-key transactional benchmarks of
// the paper's §5.3.5 over DLHT: TATP (read-intensive telecom workload —
// 4 tables, 7 transaction types, 80 % reads) and Smallbank (write-intensive
// banking workload — 3 tables, 6 transaction types, 15 % reads), as
// summarized in the paper's Table 4.
//
// Tables are Inlined-mode DLHT instances with composite keys bit-packed
// into 8 bytes. Multi-record write transactions take record locks through
// the §5.3.3 lock manager (two-phase locking with ordered, batched
// acquisition); single-record reads are linearizable without locks.
package oltp

import (
	"sync"
	"sync/atomic"
	"time"
)

// Result is the outcome of one benchmark run.
type Result struct {
	Benchmark string
	Threads   int
	Txs       uint64
	Aborts    uint64
	Elapsed   time.Duration
}

// MTxs returns million transactions per second, the paper's Figure 19 axis.
func (r Result) MTxs() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Txs) / r.Elapsed.Seconds() / 1e6
}

// Workload is a transactional benchmark that can run a per-thread worker.
type Workload interface {
	Name() string
	// NewWorker returns a function executing one random transaction;
	// it reports whether the transaction committed.
	NewWorker(tid int) func() bool
}

// Run drives the workload with the given thread count for dur.
func Run(w Workload, threads int, dur time.Duration) Result {
	var stop atomic.Bool
	var txs, aborts atomic.Uint64
	var wg sync.WaitGroup
	for tid := 0; tid < threads; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			exec := w.NewWorker(tid)
			var local, ab uint64
			for !stop.Load() {
				for i := 0; i < 16; i++ {
					if exec() {
						local++
					} else {
						ab++
					}
				}
			}
			txs.Add(local)
			aborts.Add(ab)
		}(tid)
	}
	begin := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return Result{
		Benchmark: w.Name(),
		Threads:   threads,
		Txs:       txs.Load(),
		Aborts:    aborts.Load(),
		Elapsed:   time.Since(begin),
	}
}
