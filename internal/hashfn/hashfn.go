// Package hashfn provides the hash functions evaluated by the DLHT paper
// (§3.4.3): the default modulo mapping, wyhash (the paper's recommended
// general-purpose function), and the comparison set the authors benchmarked
// (xxHash64, Murmur3, FNV-1a). All functions are implemented from their
// public specifications using only the standard library.
package hashfn

import "math/bits"

// Kind selects a hash function.
type Kind uint8

const (
	// Modulo is the paper's default: bin = key % bins. Only meaningful for
	// 8-byte integer keys.
	Modulo Kind = iota
	// WyHash is wyhash v4 for 8-byte keys (Hash64) and byte strings (Hash).
	WyHash
	// XXHash64 is the xxHash 64-bit variant.
	XXHash64
	// Murmur3 is MurmurHash3's 128-bit x64 finalizer for integers and the
	// x64 128-bit algorithm (low word) for byte strings.
	Murmur3
	// FNV1a is the 64-bit Fowler–Noll–Vo 1a hash.
	FNV1a
)

// String returns the canonical lower-case name of the hash kind.
func (k Kind) String() string {
	switch k {
	case Modulo:
		return "modulo"
	case WyHash:
		return "wyhash"
	case XXHash64:
		return "xxhash64"
	case Murmur3:
		return "murmur3"
	case FNV1a:
		return "fnv1a"
	}
	return "unknown"
}

// Func64 hashes an 8-byte integer key.
type Func64 func(key uint64) uint64

// FuncBytes hashes a byte-string key.
type FuncBytes func(key []byte) uint64

// For64 returns the integer-key hash function for kind k.
// For Modulo the identity is returned; the caller applies `% bins`.
func For64(k Kind) Func64 {
	switch k {
	case Modulo:
		return func(key uint64) uint64 { return key }
	case WyHash:
		return WyHash64
	case XXHash64:
		return XX64Uint64
	case Murmur3:
		return Murmur3Fmix64
	case FNV1a:
		return FNV1a64Uint64
	}
	return WyHash64
}

// ForBytes returns the byte-key hash function for kind k. Modulo has no
// byte-string form, so it falls back to wyhash as the paper's variable-key
// configurations do.
func ForBytes(k Kind) FuncBytes {
	switch k {
	case XXHash64:
		return XX64(0)
	case Murmur3:
		return Murmur3Bytes(0)
	case FNV1a:
		return FNV1a64
	default:
		return WyHashBytes(0)
	}
}

// ---------------------------------------------------------------------------
// wyhash (v4 final, https://github.com/wangyi-fudan/wyhash)
// ---------------------------------------------------------------------------

const (
	wyp0 = 0xa0761d6478bd642f
	wyp1 = 0xe7037ed1a0b428db
	wyp2 = 0x8ebc6af09c88c6e3
	wyp3 = 0x589965cc75374cc3
)

func wymum(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

func wyr8(p []byte) uint64 {
	_ = p[7]
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func wyr4(p []byte) uint64 {
	_ = p[3]
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24
}

func wyr3(p []byte, k int) uint64 {
	return uint64(p[0])<<16 | uint64(p[k>>1])<<8 | uint64(p[k-1])
}

// WyHash64 hashes a single 64-bit integer with the wyhash integer mix
// (wyhash64 in the reference implementation).
func WyHash64(x uint64) uint64 {
	return wymum(x^wyp0, x^wyp1)
}

// WyHashBytes returns a wyhash function over byte strings with the given
// seed, following the v4 reference layout.
func WyHashBytes(seed uint64) FuncBytes {
	return func(p []byte) uint64 {
		n := len(p)
		s := seed ^ wyp0
		var a, b uint64
		switch {
		case n <= 16:
			switch {
			case n >= 4:
				a = wyr4(p)<<32 | wyr4(p[(n>>3)<<2:])
				b = wyr4(p[n-4:])<<32 | wyr4(p[n-4-((n>>3)<<2):])
			case n > 0:
				a = wyr3(p, n)
				b = 0
			default:
				a, b = 0, 0
			}
		default:
			i := n
			q := p
			if i > 48 {
				s1, s2 := s, s
				for i > 48 {
					s = wymum(wyr8(q)^wyp1, wyr8(q[8:])^s)
					s1 = wymum(wyr8(q[16:])^wyp2, wyr8(q[24:])^s1)
					s2 = wymum(wyr8(q[32:])^wyp3, wyr8(q[40:])^s2)
					q = q[48:]
					i -= 48
				}
				s ^= s1 ^ s2
			}
			for i > 16 {
				s = wymum(wyr8(q)^wyp1, wyr8(q[8:])^s)
				i -= 16
				q = q[16:]
			}
			a = wyr8(p[n-16:])
			b = wyr8(p[n-8:])
		}
		return wymum(wyp1^uint64(n), wymum(a^wyp1, b^s))
	}
}

// ---------------------------------------------------------------------------
// xxHash64 (https://github.com/Cyan4973/xxHash, XXH64)
// ---------------------------------------------------------------------------

const (
	xxPrime1 = 11400714785074694791
	xxPrime2 = 14029467366897019727
	xxPrime3 = 1609587929392839161
	xxPrime4 = 9650029242287828579
	xxPrime5 = 2870177450012600261
)

func xxRound(acc, input uint64) uint64 {
	acc += input * xxPrime2
	acc = bits.RotateLeft64(acc, 31)
	acc *= xxPrime1
	return acc
}

func xxMergeRound(acc, val uint64) uint64 {
	val = xxRound(0, val)
	acc ^= val
	acc = acc*xxPrime1 + xxPrime4
	return acc
}

func xxAvalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

// XX64Uint64 hashes an integer by running XXH64 over its 8 little-endian
// bytes with seed 0, matching XXH64(&x, 8, 0).
func XX64Uint64(x uint64) uint64 {
	h := uint64(xxPrime5) + 8
	h ^= xxRound(0, x)
	h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
	return xxAvalanche(h)
}

// XX64 returns an XXH64 function over byte strings with the given seed.
func XX64(seed uint64) FuncBytes {
	return func(p []byte) uint64 {
		n := len(p)
		var h uint64
		if n >= 32 {
			v1 := seed + xxPrime1 + xxPrime2
			v2 := seed + xxPrime2
			v3 := seed
			v4 := seed - xxPrime1
			q := p
			for len(q) >= 32 {
				v1 = xxRound(v1, wyr8(q))
				v2 = xxRound(v2, wyr8(q[8:]))
				v3 = xxRound(v3, wyr8(q[16:]))
				v4 = xxRound(v4, wyr8(q[24:]))
				q = q[32:]
			}
			h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
				bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
			h = xxMergeRound(h, v1)
			h = xxMergeRound(h, v2)
			h = xxMergeRound(h, v3)
			h = xxMergeRound(h, v4)
			p = q
		} else {
			h = seed + xxPrime5
		}
		h += uint64(n)
		for len(p) >= 8 {
			h ^= xxRound(0, wyr8(p))
			h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
			p = p[8:]
		}
		if len(p) >= 4 {
			h ^= wyr4(p) * xxPrime1
			h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
			p = p[4:]
		}
		for _, b := range p {
			h ^= uint64(b) * xxPrime5
			h = bits.RotateLeft64(h, 11) * xxPrime1
		}
		return xxAvalanche(h)
	}
}

// ---------------------------------------------------------------------------
// MurmurHash3 (x64 variants)
// ---------------------------------------------------------------------------

// Murmur3Fmix64 is MurmurHash3's 64-bit finalizer, the standard way to hash
// a single integer with Murmur3.
func Murmur3Fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// Murmur3Bytes returns the low 64 bits of MurmurHash3_x64_128 with the given
// seed.
func Murmur3Bytes(seed uint64) FuncBytes {
	const (
		c1 = 0x87c37b91114253d5
		c2 = 0x4cf5ad432745937f
	)
	return func(p []byte) uint64 {
		n := len(p)
		h1, h2 := seed, seed
		q := p
		for len(q) >= 16 {
			k1 := wyr8(q)
			k2 := wyr8(q[8:])
			k1 *= c1
			k1 = bits.RotateLeft64(k1, 31)
			k1 *= c2
			h1 ^= k1
			h1 = bits.RotateLeft64(h1, 27)
			h1 += h2
			h1 = h1*5 + 0x52dce729
			k2 *= c2
			k2 = bits.RotateLeft64(k2, 33)
			k2 *= c1
			h2 ^= k2
			h2 = bits.RotateLeft64(h2, 31)
			h2 += h1
			h2 = h2*5 + 0x38495ab5
			q = q[16:]
		}
		var k1, k2 uint64
		tail := q
		switch len(tail) & 15 {
		case 15:
			k2 ^= uint64(tail[14]) << 48
			fallthrough
		case 14:
			k2 ^= uint64(tail[13]) << 40
			fallthrough
		case 13:
			k2 ^= uint64(tail[12]) << 32
			fallthrough
		case 12:
			k2 ^= uint64(tail[11]) << 24
			fallthrough
		case 11:
			k2 ^= uint64(tail[10]) << 16
			fallthrough
		case 10:
			k2 ^= uint64(tail[9]) << 8
			fallthrough
		case 9:
			k2 ^= uint64(tail[8])
			k2 *= c2
			k2 = bits.RotateLeft64(k2, 33)
			k2 *= c1
			h2 ^= k2
			fallthrough
		case 8:
			if len(tail) >= 8 {
				k1 ^= uint64(tail[7]) << 56
			}
			fallthrough
		case 7:
			if len(tail) >= 7 {
				k1 ^= uint64(tail[6]) << 48
			}
			fallthrough
		case 6:
			if len(tail) >= 6 {
				k1 ^= uint64(tail[5]) << 40
			}
			fallthrough
		case 5:
			if len(tail) >= 5 {
				k1 ^= uint64(tail[4]) << 32
			}
			fallthrough
		case 4:
			if len(tail) >= 4 {
				k1 ^= uint64(tail[3]) << 24
			}
			fallthrough
		case 3:
			if len(tail) >= 3 {
				k1 ^= uint64(tail[2]) << 16
			}
			fallthrough
		case 2:
			if len(tail) >= 2 {
				k1 ^= uint64(tail[1]) << 8
			}
			fallthrough
		case 1:
			if len(tail) >= 1 {
				k1 ^= uint64(tail[0])
			}
			k1 *= c1
			k1 = bits.RotateLeft64(k1, 31)
			k1 *= c2
			h1 ^= k1
		}
		h1 ^= uint64(n)
		h2 ^= uint64(n)
		h1 += h2
		h2 += h1
		h1 = Murmur3Fmix64(h1)
		h2 = Murmur3Fmix64(h2)
		h1 += h2
		return h1
	}
}

// ---------------------------------------------------------------------------
// FNV-1a 64-bit
// ---------------------------------------------------------------------------

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// FNV1a64 hashes a byte string with 64-bit FNV-1a.
func FNV1a64(p []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// FNV1a64Uint64 hashes an integer by feeding its 8 little-endian bytes to
// FNV-1a.
func FNV1a64Uint64(x uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime64
		x >>= 8
	}
	return h
}
