package hashfn

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Modulo: "modulo", WyHash: "wyhash", XXHash64: "xxhash64",
		Murmur3: "murmur3", FNV1a: "fnv1a", Kind(99): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestFor64ModuloIsIdentity(t *testing.T) {
	f := For64(Modulo)
	for _, k := range []uint64{0, 1, 42, math.MaxUint64} {
		if f(k) != k {
			t.Fatalf("modulo For64(%d) = %d, want identity", k, f(k))
		}
	}
}

func TestFor64AllKindsDeterministic(t *testing.T) {
	for _, k := range []Kind{Modulo, WyHash, XXHash64, Murmur3, FNV1a} {
		f := For64(k)
		if f(12345) != f(12345) {
			t.Errorf("%v: nondeterministic", k)
		}
	}
}

func TestForBytesAllKindsDeterministic(t *testing.T) {
	key := []byte("the quick brown fox jumps over the lazy dog")
	for _, k := range []Kind{Modulo, WyHash, XXHash64, Murmur3, FNV1a} {
		f := ForBytes(k)
		if f(key) != f(key) {
			t.Errorf("%v: nondeterministic for bytes", k)
		}
	}
}

// Known-answer test for FNV-1a from the reference vectors.
func TestFNV1a64KnownAnswers(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xcbf29ce484222325},
		{"a", 0xaf63dc4c8601ec8c},
		{"foobar", 0x85944171f73967e8},
	}
	for _, c := range cases {
		if got := FNV1a64([]byte(c.in)); got != c.want {
			t.Errorf("FNV1a64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// Murmur3Fmix64 reference values (from the canonical fmix64).
func TestMurmur3Fmix64KnownAnswers(t *testing.T) {
	if got := Murmur3Fmix64(0); got != 0 {
		t.Errorf("fmix64(0) = %#x, want 0", got)
	}
	// fmix64(1) per the reference C++ implementation.
	if got := Murmur3Fmix64(1); got != 0xb456bcfc34c2cb2c {
		t.Errorf("fmix64(1) = %#x, want 0xb456bcfc34c2cb2c", got)
	}
}

// Integer hash and byte-string hash must agree with each other's structure:
// hashing the 8 LE bytes of x through FNV1a64 equals FNV1a64Uint64(x).
func TestFNV1aIntMatchesBytes(t *testing.T) {
	f := func(x uint64) bool {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		return FNV1a64(b[:]) == FNV1a64Uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXX64Uint64MatchesBytes(t *testing.T) {
	h := XX64(0)
	f := func(x uint64) bool {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], x)
		return h(b[:]) == XX64Uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// XXH64 known-answer vectors (seed 0).
func TestXX64KnownAnswers(t *testing.T) {
	h := XX64(0)
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"abc", 0x44bc2cf5ad770999},
	}
	for _, c := range cases {
		if got := h([]byte(c.in)); got != c.want {
			t.Errorf("XXH64(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

// wyhash must differ across nearby keys (avalanche sanity).
func TestWyHash64Avalanche(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		h := WyHash64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: WyHash64(%d) == WyHash64(%d) == %#x", i, prev, h)
		}
		seen[h] = i
	}
}

// All byte hashes must not collide trivially on length-extension pairs.
func TestBytesHashesDistinguishLengths(t *testing.T) {
	for _, k := range []Kind{WyHash, XXHash64, Murmur3, FNV1a} {
		f := ForBytes(k)
		a := f([]byte("aa"))
		b := f([]byte("aa\x00"))
		if a == b {
			t.Errorf("%v: hash ignores trailing NUL", k)
		}
	}
}

// Chi-squared uniformity test: hashing 0..n-1 into 256 bins must look
// uniform for the real hash functions (this is the paper's occupancy
// prerequisite: "given a state-of-the-art hash function").
func TestHashUniformity(t *testing.T) {
	const n = 1 << 16
	const bins = 256
	for _, k := range []Kind{WyHash, XXHash64, Murmur3, FNV1a} {
		f := For64(k)
		var counts [bins]int
		for i := uint64(0); i < n; i++ {
			counts[f(i)%bins]++
		}
		expected := float64(n) / bins
		chi2 := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 255 degrees of freedom; 99.9th percentile ~ 330.5. Anything under
		// 400 is comfortably uniform for this smoke check.
		if chi2 > 400 {
			t.Errorf("%v: chi2 = %.1f, distribution too skewed", k, chi2)
		}
	}
}

// wyhash over byte strings covers every internal branch: <=3, 4..16, 17..48,
// >48 bytes. Each size class must be deterministic and length-sensitive.
func TestWyHashBytesBranches(t *testing.T) {
	h := WyHashBytes(0)
	sizes := []int{0, 1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 48, 49, 96, 200}
	seen := map[uint64]int{}
	for _, n := range sizes {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i * 31)
		}
		v := h(buf)
		if v2 := h(buf); v2 != v {
			t.Fatalf("size %d: nondeterministic", n)
		}
		if prev, dup := seen[v]; dup && n > 0 {
			t.Errorf("size %d collides with size %d", n, prev)
		}
		seen[v] = n
	}
}

func TestMurmur3BytesBranchCoverage(t *testing.T) {
	h := Murmur3Bytes(0)
	// Cover all 16 tail lengths.
	seen := map[uint64]int{}
	for n := 0; n <= 33; n++ {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i + 1)
		}
		v := h(buf)
		if prev, dup := seen[v]; dup && n > 0 {
			t.Errorf("murmur3: size %d collides with size %d", n, prev)
		}
		seen[v] = n
	}
}

func BenchmarkWyHash64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += WyHash64(uint64(i))
	}
	sink = acc
}

func BenchmarkXX64Uint64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += XX64Uint64(uint64(i))
	}
	sink = acc
}

func BenchmarkMurmur3Fmix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += Murmur3Fmix64(uint64(i))
	}
	sink = acc
}

var sink uint64
