package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/cpuops"
)

// dwcas performs the paper's double-word CAS on a 16-byte slot.
func dwcas(kw *uint64, oldKey, oldVal, newKey, newVal uint64) bool {
	return cpuops.CompareAndSwap128(slotPair(kw), oldKey, oldVal, newKey, newVal)
}

// growthFactor implements §3.2.5: ×8 for small indexes (<4K bins), ×4 for
// medium (<64M bins), ×2 beyond.
func growthFactor(bins uint64) uint64 {
	switch {
	case bins < 4<<10:
		return 8
	case bins < 64<<20:
		return 4
	default:
		return 2
	}
}

// resizeOrFail either joins/starts a resize of ix and returns the successor
// index, or reports ErrFull when resizing is disabled.
func (t *Table) resizeOrFail(h *Handle, ix *index) (*index, error) {
	if !t.cfg.Resizable {
		return nil, ErrFull
	}
	return t.resize(h, ix), nil
}

// resize runs the §3.2.5 protocol from the perspective of a thread whose
// Insert could not find room in ix:
//
//  1. One thread wins the CAS and becomes the resizer: it allocates the new
//     index and publishes it. Everyone else becomes a helper.
//  2. Resizer and helpers claim 16K-bin chunks by fetch-and-add and
//     transfer them until none remain.
//  3. All participants wait for the transfer to complete, then retry their
//     Insert in the new index (the caller does the retry).
//
// The thread that swings the table's index pointer also performs the old
// index's GC: it waits until no per-thread announcement points at the old
// index, then marks it retired. Unlike the paper's resizer, the wait runs
// on a background goroutine so that no request thread ever blocks on
// quiescence — in Go the memory itself is reclaimed by the runtime GC, so
// the wait only exists to reproduce (and count) the protocol.
func (t *Table) resize(h *Handle, ix *index) *index {
	if ix.state.CompareAndSwap(idxNormal, idxAllocating) {
		nx := newIndex(ix.numBins*growthFactor(ix.numBins), t.cfg.LinkRatio, t.cfg.ChunkBins)
		ix.next.Store(nx)
		ix.state.Store(idxMigrating)
	} else {
		t.resizeHelpers.Add(1)
	}
	nx := ix.nextIndex()
	t.helpTransfer(h, ix, nx)
	for ix.chunksDone.Load() < ix.numChunks {
		runtime.Gosched()
	}
	if t.current.CompareAndSwap(ix, nx) {
		ix.state.Store(idxDrained)
		t.resizes.Add(1)
		if t.cfg.SingleThread {
			ix.state.Store(idxRetired)
		} else {
			go t.retireIndex(ix)
		}
	}
	return nx
}

// helpTransfer claims and transfers chunks until the cursor runs out.
func (t *Table) helpTransfer(h *Handle, ix, nx *index) {
	for {
		c := ix.chunkCursor.Add(1) - 1
		if c >= ix.numChunks {
			return
		}
		start := c * ix.chunkBins
		end := start + ix.chunkBins
		if end > ix.numBins {
			end = ix.numBins
		}
		for b := start; b < end; b++ {
			t.transferBin(h, ix, nx, b)
		}
		ix.chunksDone.Add(1)
		t.chunksMoved.Add(1)
	}
}

// transferBin migrates one bin: block it (InTransfer), hand each live slot
// off with a double-word CAS that plants the transfer key, re-insert the
// pair in the new index, then mark the bin DoneTransfer.
func (t *Table) transferBin(h *Handle, ix, nx *index, b uint64) {
	hdrAddr := ix.headerAddr(b)
	var hdr uint64
	for {
		hdr = atomic.LoadUint64(hdrAddr)
		next := bumpVersion(withBinState(hdr, binInTransfer))
		if atomic.CompareAndSwapUint64(hdrAddr, hdr, next) {
			hdr = next
			break
		}
	}
	meta := atomic.LoadUint64(ix.linkMetaAddr(b))
	limit := slotLimit(meta)
	tk := transferKeyFor(b)
	moved := uint64(0)
	for i := 0; i < limit; i++ {
		st := slotState(hdr, i)
		// Shadow entries are live locks held by in-flight transactions and
		// must survive the migration with their state intact.
		if st != slotValid && st != slotShadow {
			continue
		}
		kw := ix.slotKeyWord(b, meta, i)
		pair := slotPair(kw)
		for {
			k := atomic.LoadUint64(&pair[0])
			v := atomic.LoadUint64(&pair[1])
			// Inserts and Deletes are excluded by InTransfer, so only a
			// racing Put can change the slot, and only its value word; the
			// dw-CAS retry loop captures a stable (key, value) pair while
			// planting the transfer key that will defeat later Puts.
			if dwcas(kw, k, v, tk, v) {
				t.insertMigrated(h, nx, k, v, st)
				moved++
				break
			}
		}
	}
	for {
		cur := atomic.LoadUint64(hdrAddr)
		if atomic.CompareAndSwapUint64(hdrAddr, cur, bumpVersion(withBinState(cur, binDoneTransfer))) {
			break
		}
	}
	if moved != 0 {
		t.keysMoved.Add(moved)
	}
	if debugAsserts {
		t.assertBinChain(ix, b)
	}
}

// insertMigrated re-inserts a migrated slot (raw key and value words, with
// its original Valid/Shadow state) into the successor index. It is the
// Insert algorithm minus the Get phase: keys are unique while a migration
// is in flight, and in Allocator mode the key word is only a filter whose
// collisions would confuse an existence check. The destination bin a
// migrated key lands in may itself be under a nested migration, in which
// case the insert follows the chain.
func (t *Table) insertMigrated(h *Handle, ix *index, keyWord, valWord uint64, state uint64) {
	bin := func(ix *index) uint64 {
		if t.cfg.Mode == Allocator {
			// Re-derive the bin from the stored key material. For inlined
			// (≤8 B) keys the key word is the key itself; big keys must be
			// re-read from their block.
			return t.binForMigratedKV(ix, keyWord, valWord)
		}
		return t.binFor(ix, keyWord)
	}
indexLoop:
	for {
		b := bin(ix)
		for {
			hdrAddr := ix.headerAddr(b)
			hdr := atomic.LoadUint64(hdrAddr)
			if nx := ix.redirect(b, hdr); nx != nil {
				ix = nx
				continue indexLoop
			}
			i := firstInvalidSlot(hdr, slotsPerBin)
			if i < 0 {
				nx, err := t.resizeOrFail(h, ix)
				if err != nil {
					// Migration into a non-resizable table cannot happen:
					// migrations only exist when resizing is enabled.
					panic("dlht: migrated insert hit a full non-resizable index")
				}
				ix = nx
				continue indexLoop
			}
			if !atomic.CompareAndSwapUint64(hdrAddr, hdr, bumpVersion(withSlotState(hdr, i, slotTryInsert))) {
				continue
			}
			meta := atomic.LoadUint64(ix.linkMetaAddr(b))
			if need, field := slotNeedsChain(meta, i); need {
				newMeta, ok := t.chainBucket(ix, b, field)
				if !ok {
					t.releaseSlot(ix, b, i)
					nx, _ := t.resizeOrFail(h, ix)
					ix = nx
					continue indexLoop
				}
				meta = newMeta
			}
			ix.storeSlot(b, meta, i, keyWord, valWord)
			for {
				hdr2 := atomic.LoadUint64(hdrAddr)
				if binState(hdr2) != binNoTransfer {
					if binState(hdr2) == binInTransfer {
						ix.waitBinTransferred(b)
					}
					ix = ix.nextIndex()
					continue indexLoop
				}
				if atomic.CompareAndSwapUint64(hdrAddr, hdr2, bumpVersion(withSlotState(hdr2, i, state))) {
					if debugAsserts {
						t.assertBinChain(ix, b)
					}
					return
				}
			}
		}
	}
}

// binForMigratedKV recomputes the destination bin of an Allocator-mode slot
// from its stored words: namespace from the value word, key bytes either
// from the key word (inlined) or from the block (big keys).
func (t *Table) binForMigratedKV(ix *index, keyWord, valWord uint64) uint64 {
	ns := nsOf(valWord)
	code := keyCodeOf(valWord)
	if code != bigKeyCode {
		var buf [8]byte
		for i := 0; i < code; i++ {
			buf[i] = byte(keyWord >> (8 * uint(i)))
		}
		return t.binForKV(ix, buf[:code], ns)
	}
	ref := refOf(valWord)
	hdr := t.cfg.Alloc.Bytes(ref, kvBlockHeader)
	klen := int(getU32(hdr[0:]))
	key := t.cfg.Alloc.Bytes(ref, kvBlockHeader+klen)[kvBlockHeader:]
	return t.binForKV(ix, key, ns)
}

// retireIndex waits until no thread announcement references ix, then marks
// it retired (§3.2.5 "GC old index"). Runs asynchronously; the Go runtime
// reclaims the memory once the last reference drops.
func (t *Table) retireIndex(ix *index) {
	for i := range t.announces {
		slot := &t.announces[i].ptr
		for slot.Load() == ix {
			runtime.Gosched()
		}
	}
	ix.state.Store(idxRetired)
}

// waitRetired blocks until ix reaches the retired state; used by tests to
// assert the GC protocol completes.
func (ix *index) waitRetired() {
	for ix.state.Load() != idxRetired {
		runtime.Gosched()
	}
}
