package core

import (
	"errors"
	"sync"
	"testing"
)

func newInlined(t *testing.T, cfg Config) (*Table, *Handle) {
	t.Helper()
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Handle()
	if err != nil {
		t.Fatal(err)
	}
	return tb, h
}

func TestBasicInsertGetDelete(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 64})
	if _, ok := h.Get(1); ok {
		t.Fatal("empty table returned a value")
	}
	if _, err := h.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = (%d,%v), want (100,true)", v, ok)
	}
	if v, ok := h.Delete(1); !ok || v != 100 {
		t.Fatalf("Delete(1) = (%d,%v), want (100,true)", v, ok)
	}
	if _, ok := h.Get(1); ok {
		t.Fatal("deleted key still visible")
	}
	if _, ok := h.Delete(1); ok {
		t.Fatal("double delete reported success")
	}
}

func TestInsertDuplicateReturnsExisting(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 64})
	if _, err := h.Insert(7, 70); err != nil {
		t.Fatal(err)
	}
	v, err := h.Insert(7, 71)
	if !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	if v != 70 {
		t.Fatalf("existing value = %d, want 70", v)
	}
	// Original value unchanged.
	if got, _ := h.Get(7); got != 70 {
		t.Fatalf("value overwritten by failed insert: %d", got)
	}
}

func TestPutSemantics(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 64})
	if _, ok := h.Put(5, 50); ok {
		t.Fatal("Put on missing key must fail")
	}
	h.Insert(5, 50)
	old, ok := h.Put(5, 55)
	if !ok || old != 50 {
		t.Fatalf("Put = (%d,%v), want (50,true)", old, ok)
	}
	if v, _ := h.Get(5); v != 55 {
		t.Fatalf("value after Put = %d, want 55", v)
	}
}

func TestPutPanicsOutsideInlined(t *testing.T) {
	tb := MustNew(Config{Mode: HashSet, Bins: 16})
	h := tb.MustHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Put(1, 2)
}

func TestZeroKeyAndZeroValue(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 64})
	if _, err := h.Insert(0, 0); err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Get(0); !ok || v != 0 {
		t.Fatalf("Get(0) = (%d,%v), want (0,true)", v, ok)
	}
}

func TestReservedKeysRejected(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 64})
	for _, k := range []uint64{TransferKeyEven, TransferKeyOdd} {
		if _, err := h.Insert(k, 1); !errors.Is(err, ErrReservedKey) {
			t.Errorf("Insert(%#x) err = %v, want ErrReservedKey", k, err)
		}
	}
}

func TestHashSetMode(t *testing.T) {
	tb := MustNew(Config{Mode: HashSet, Bins: 64})
	h := tb.MustHandle()
	if h.Contains(9) {
		t.Fatal("empty set contains 9")
	}
	if _, err := h.Insert(9, 0); err != nil {
		t.Fatal(err)
	}
	if !h.Contains(9) {
		t.Fatal("set does not contain 9 after insert")
	}
	if _, ok := h.Delete(9); !ok {
		t.Fatal("delete failed")
	}
	if h.Contains(9) {
		t.Fatal("set contains 9 after delete")
	}
}

func TestBinChainingBeyondPrimaryBucket(t *testing.T) {
	// A single bin forces all keys into one chain: 15 inserts must succeed,
	// the 16th must fail with ErrFull (resizing disabled).
	_, h := newInlined(t, Config{Bins: 1, LinkRatio: 1})
	for i := uint64(0); i < slotsPerBin; i++ {
		if _, err := h.Insert(i, i*10); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := h.Insert(99, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("16th insert err = %v, want ErrFull", err)
	}
	// All 15 are retrievable (exercises all three chained buckets).
	for i := uint64(0); i < slotsPerBin; i++ {
		if v, ok := h.Get(i); !ok || v != i*10 {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", i, v, ok, i*10)
		}
	}
	// Deleting frees slots for reuse instantly.
	if _, ok := h.Delete(4); !ok {
		t.Fatal("delete failed")
	}
	if _, err := h.Insert(99, 990); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	if v, _ := h.Get(99); v != 990 {
		t.Fatal("reused slot lost value")
	}
}

func TestLinkExhaustionReturnsErrFull(t *testing.T) {
	// 4 bins but only 2 link buckets (ratio 2): the first bin to overflow
	// grabs link buckets; once they run out an overflowing insert fails.
	tb := MustNew(Config{Bins: 2, LinkRatio: 1})
	h := tb.MustHandle()
	// numLinks = max(bins/ratio, 2) = 2. Fill bin of key stream: keys
	// hashing to bin 0 are even keys under modulo.
	full := 0
	for i := uint64(0); i < 200; i += 2 {
		if _, err := h.Insert(i, i); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("unexpected err: %v", err)
			}
			full++
			break
		}
	}
	if full == 0 {
		t.Fatal("expected ErrFull after exhausting links")
	}
}

func TestShadowInsertLifecycle(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 64})
	if _, err := h.InsertShadow(3, 30); err != nil {
		t.Fatal(err)
	}
	// Hidden from Get/Put/Delete.
	if _, ok := h.Get(3); ok {
		t.Fatal("shadow key visible to Get")
	}
	if _, ok := h.Put(3, 31); ok {
		t.Fatal("shadow key visible to Put")
	}
	if _, ok := h.Delete(3); ok {
		t.Fatal("shadow key visible to Delete")
	}
	// Conflicting inserts see the lock.
	if _, err := h.Insert(3, 99); !errors.Is(err, ErrShadow) {
		t.Fatalf("insert on shadow key err = %v, want ErrShadow", err)
	}
	if _, err := h.InsertShadow(3, 99); !errors.Is(err, ErrShadow) {
		t.Fatalf("shadow insert on shadow key err = %v, want ErrShadow", err)
	}
	// Commit publishes.
	if !h.CommitShadow(3, true) {
		t.Fatal("commit failed")
	}
	if v, ok := h.Get(3); !ok || v != 30 {
		t.Fatalf("Get after commit = (%d,%v), want (30,true)", v, ok)
	}
	// Commit on a non-shadow key fails.
	if h.CommitShadow(3, true) {
		t.Fatal("commit on valid key must fail")
	}
}

func TestShadowAbortReclaimsSlot(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 64})
	h.InsertShadow(4, 40)
	if !h.CommitShadow(4, false) {
		t.Fatal("abort failed")
	}
	if _, ok := h.Get(4); ok {
		t.Fatal("aborted key visible")
	}
	if _, err := h.Insert(4, 44); err != nil {
		t.Fatalf("insert after abort: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{VariableKV: true}); err == nil {
		t.Error("VariableKV outside Allocator mode must fail")
	}
	if _, err := New(Config{Namespaces: true}); err == nil {
		t.Error("Namespaces outside Allocator mode must fail")
	}
}

func TestHandleLimit(t *testing.T) {
	tb := MustNew(Config{Bins: 16, MaxThreads: 2})
	if _, err := tb.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Handle(); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Handle(); !errors.Is(err, ErrTooManyHandles) {
		t.Fatalf("err = %v, want ErrTooManyHandles", err)
	}
}

func TestStatsOccupancy(t *testing.T) {
	tb := MustNew(Config{Bins: 8, LinkRatio: 8})
	h := tb.MustHandle()
	for i := uint64(0); i < 12; i++ {
		if _, err := h.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	s := tb.Stats()
	if s.Occupied != 12 {
		t.Fatalf("Occupied = %d, want 12", s.Occupied)
	}
	if s.Capacity == 0 || s.Occupancy <= 0 {
		t.Fatalf("bad capacity/occupancy: %+v", s)
	}
	if s.Bins != 8 {
		t.Fatalf("Bins = %d, want 8", s.Bins)
	}
}

func TestModeString(t *testing.T) {
	if Inlined.String() != "inlined" || Allocator.String() != "allocator" ||
		HashSet.String() != "hashset" || Mode(9).String() != "unknown" {
		t.Error("mode names")
	}
}

func TestManyKeysAcrossBins(t *testing.T) {
	_, h := newInlined(t, Config{Bins: 1 << 10})
	const n = 3000
	for i := uint64(0); i < n; i++ {
		if _, err := h.Insert(i, i^0xdead); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := h.Get(i); !ok || v != i^0xdead {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
	// Delete the odd keys, verify the even remain.
	for i := uint64(1); i < n; i += 2 {
		if _, ok := h.Delete(i); !ok {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		_, ok := h.Get(i)
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
}

func TestWyHashConfig(t *testing.T) {
	tb := MustNew(Config{Bins: 1 << 8, Hash: 1 /* WyHash */})
	h := tb.MustHandle()
	for i := uint64(0); i < 500; i++ {
		if _, err := h.Insert(i, i); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		if v, ok := h.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestHandleCloseRecyclesIDs(t *testing.T) {
	tb := MustNew(Config{Bins: 1 << 8, Resizable: true, MaxThreads: 2})
	h1 := tb.MustHandle()
	h2 := tb.MustHandle()
	if _, err := tb.Handle(); !errors.Is(err, ErrTooManyHandles) {
		t.Fatalf("err = %v, want ErrTooManyHandles", err)
	}
	// Closing a handle frees its id for the next taker — a server can cycle
	// through far more connections than MaxThreads.
	h1.Close()
	for i := 0; i < 100; i++ {
		h := tb.MustHandle()
		if _, err := h.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatalf("insert via recycled handle: %v", err)
		}
		h.Close()
	}
	if v, ok := h2.Get(42); !ok || v != 42 {
		t.Fatalf("Get(42) = (%d,%v), want (42,true)", v, ok)
	}
	h1.Close() // double Close is a no-op
}

func TestHandleCloseConcurrent(t *testing.T) {
	tb := MustNew(Config{Bins: 1 << 10, Resizable: true, MaxThreads: 8})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h := tb.MustHandle()
				k := uint64(g*1000 + i)
				h.Insert(k, k)
				if v, ok := h.Get(k); !ok || v != k {
					t.Errorf("Get(%d) = (%d,%v)", k, v, ok)
				}
				h.Close()
			}
		}(g)
	}
	wg.Wait()
}
