package core

import (
	"errors"
	"sync"
	"testing"
)

func TestBatchMixedKindsInOrder(t *testing.T) {
	tb := MustNew(Config{Bins: 64})
	h := tb.MustHandle()
	ops := []Op{
		{Kind: OpInsert, Key: 1, Value: 10},
		{Kind: OpGet, Key: 1},
		{Kind: OpPut, Key: 1, Value: 11},
		{Kind: OpGet, Key: 1},
		{Kind: OpDelete, Key: 1},
		{Kind: OpGet, Key: 1},
	}
	n := h.Exec(ops, false)
	if n != len(ops) {
		t.Fatalf("executed %d, want %d", n, len(ops))
	}
	if !ops[0].OK || !ops[1].OK || ops[1].Result != 10 {
		t.Fatalf("insert/get: %+v %+v", ops[0], ops[1])
	}
	if !ops[2].OK || ops[2].Result != 10 {
		t.Fatalf("put: %+v", ops[2])
	}
	if !ops[3].OK || ops[3].Result != 11 {
		t.Fatalf("get after put: %+v", ops[3])
	}
	if !ops[4].OK || ops[4].Result != 11 {
		t.Fatalf("delete: %+v", ops[4])
	}
	if ops[5].OK {
		t.Fatalf("get after delete must miss: %+v", ops[5])
	}
}

// Order preservation is the lock-manager guarantee (§3.3, §5.3.3): within a
// batch, an Insert followed by a Delete of the same key must leave the key
// absent, and a Delete followed by an Insert must leave it present.
func TestBatchOrderPreservation(t *testing.T) {
	tb := MustNew(Config{Bins: 64})
	h := tb.MustHandle()
	ops := []Op{
		{Kind: OpInsert, Key: 5, Value: 1},
		{Kind: OpDelete, Key: 5},
		{Kind: OpInsert, Key: 6, Value: 2},
	}
	h.Exec(ops, false)
	if _, ok := h.Get(5); ok {
		t.Fatal("insert→delete order violated")
	}
	if _, ok := h.Get(6); !ok {
		t.Fatal("key 6 missing")
	}
	ops2 := []Op{
		{Kind: OpDelete, Key: 6},
		{Kind: OpInsert, Key: 6, Value: 3},
	}
	h.Exec(ops2, false)
	if v, ok := h.Get(6); !ok || v != 3 {
		t.Fatalf("delete→insert order violated: (%d,%v)", v, ok)
	}
}

func TestBatchStopOnFail(t *testing.T) {
	tb := MustNew(Config{Bins: 64})
	h := tb.MustHandle()
	h.Insert(2, 20)
	ops := []Op{
		{Kind: OpInsert, Key: 1, Value: 1},
		{Kind: OpInsert, Key: 2, Value: 2}, // fails: exists
		{Kind: OpInsert, Key: 3, Value: 3}, // must not run
	}
	n := h.Exec(ops, true)
	if n != 2 {
		t.Fatalf("executed %d ops, want 2", n)
	}
	if !errors.Is(ops[1].Err, ErrExists) {
		t.Fatalf("op1 err = %v", ops[1].Err)
	}
	if _, ok := h.Get(3); ok {
		t.Fatal("op after failure was executed")
	}
}

func TestBatchShadowOps(t *testing.T) {
	tb := MustNew(Config{Mode: HashSet, Bins: 64})
	h := tb.MustHandle()
	lock := []Op{
		{Kind: OpInsertShadow, Key: 10},
		{Kind: OpInsertShadow, Key: 11},
	}
	if h.Exec(lock, true) != 2 || !lock[0].OK || !lock[1].OK {
		t.Fatalf("locks: %+v", lock)
	}
	// Conflicting lock attempt fails and stops.
	conflict := []Op{
		{Kind: OpInsertShadow, Key: 11},
		{Kind: OpInsertShadow, Key: 12},
	}
	if n := h.Exec(conflict, true); n != 1 {
		t.Fatalf("conflict executed %d ops, want 1", n)
	}
	// Release via commit-abort.
	unlock := []Op{
		{Kind: OpCommitShadow, Key: 10, Value: 0},
		{Kind: OpCommitShadow, Key: 11, Value: 0},
	}
	h.Exec(unlock, false)
	if !unlock[0].OK || !unlock[1].OK {
		t.Fatalf("unlock: %+v", unlock)
	}
	if h.Len() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestBatchPutWrongMode(t *testing.T) {
	tb := MustNew(Config{Mode: HashSet, Bins: 16})
	h := tb.MustHandle()
	ops := []Op{{Kind: OpPut, Key: 1, Value: 1}}
	h.Exec(ops, false)
	if ops[0].OK || !errors.Is(ops[0].Err, ErrWrongMode) {
		t.Fatalf("op = %+v", ops[0])
	}
}

func TestBatchAcrossResize(t *testing.T) {
	tb := MustNew(Config{Bins: 4, Resizable: true, ChunkBins: 2})
	h := tb.MustHandle()
	const batches = 100
	const per = 32
	k := uint64(0)
	for b := 0; b < batches; b++ {
		ops := make([]Op, per)
		for i := range ops {
			ops[i] = Op{Kind: OpInsert, Key: k, Value: k * 2}
			k++
		}
		h.Exec(ops, false)
		for i := range ops {
			if !ops[i].OK {
				t.Fatalf("batch %d op %d failed: %v", b, i, ops[i].Err)
			}
		}
	}
	if tb.Stats().Resizes == 0 {
		t.Fatal("expected resizes during batched population")
	}
	for i := uint64(0); i < k; i++ {
		if v, ok := h.Get(i); !ok || v != i*2 {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestBatchConcurrentWorkers(t *testing.T) {
	tb := MustNew(Config{Bins: 256, Resizable: true, ChunkBins: 64, MaxThreads: 16})
	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := tb.MustHandle()
			base := uint64(w) << 32
			for round := 0; round < 200; round++ {
				var ops [16]Op
				for i := range ops {
					ops[i] = Op{Kind: OpInsert, Key: base + uint64(round*16+i), Value: 1}
				}
				h.Exec(ops[:], false)
				for i := range ops {
					ops[i].Kind = OpDelete
				}
				h.Exec(ops[:], false)
				for i := range ops {
					if !ops[i].OK {
						t.Errorf("delete in batch failed")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := tb.MustHandle().Len(); n != 0 {
		t.Fatalf("%d entries left", n)
	}
}

func TestPrefetchKeyHarmless(t *testing.T) {
	tb := MustNew(Config{Bins: 64})
	h := tb.MustHandle()
	h.Insert(1, 2)
	h.PrefetchKey(1)
	h.PrefetchKey(999)
	if v, _ := h.Get(1); v != 2 {
		t.Fatal("prefetch corrupted state")
	}
}

func TestEmptyBatch(t *testing.T) {
	tb := MustNew(Config{Bins: 16})
	h := tb.MustHandle()
	if n := h.Exec(nil, true); n != 0 {
		t.Fatalf("empty batch executed %d ops", n)
	}
}
