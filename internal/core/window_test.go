package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPrefetchWindowResolution pins the Config.PrefetchWindow contract:
// 0 = default, negative = full batch, always clamped to the batch length.
func TestPrefetchWindowResolution(t *testing.T) {
	cases := []struct {
		cfg, n, want int
	}{
		{0, 4096, defaultPrefetchWindow},
		{0, 4, 4},
		{8, 4096, 8},
		{8, 3, 3},
		{-1, 4096, 4096},
		{1, 100, 1},
		{0, 0, 0},
	}
	for _, c := range cases {
		tb := MustNew(Config{Bins: 16, PrefetchWindow: c.cfg})
		if got := tb.prefetchWindow(c.n); got != c.want {
			t.Errorf("prefetchWindow(cfg=%d, n=%d) = %d, want %d", c.cfg, c.n, got, c.want)
		}
	}
}

// TestExecStopOnFailMidWindow places the failing op in the middle of an
// in-flight prefetch window: execution must stop exactly there even though
// later ops' bins were already prefetched and memoized.
func TestExecStopOnFailMidWindow(t *testing.T) {
	tb := MustNew(Config{Bins: 256, PrefetchWindow: 16})
	h := tb.MustHandle()
	if _, err := h.Insert(9999, 1); err != nil {
		t.Fatal(err)
	}
	const n = 64
	const failAt = 20 // window 2 of 4, position 4 of 16
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Key: uint64(i + 1), Value: uint64(i)}
	}
	ops[failAt] = Op{Kind: OpInsert, Key: 9999, Value: 2} // duplicate → fails
	if got := h.Exec(ops, true); got != failAt+1 {
		t.Fatalf("Exec executed %d ops, want %d", got, failAt+1)
	}
	if ops[failAt].OK || !errors.Is(ops[failAt].Err, ErrExists) || ops[failAt].Result != 1 {
		t.Fatalf("failing op = %+v", ops[failAt])
	}
	for i := 0; i < failAt; i++ {
		if !ops[i].OK {
			t.Fatalf("op %d before the failure did not run: %+v", i, ops[i])
		}
	}
	for i := failAt + 1; i < n; i++ {
		if ops[i].OK || ops[i].Err != nil {
			t.Fatalf("op %d after the failure was touched: %+v", i, ops[i])
		}
		if _, ok := h.Get(ops[i].Key); ok {
			t.Fatalf("op %d after the failure was executed", i)
		}
	}
}

// TestExecWindowCrossesConcurrentResize runs windowed Get batches much
// larger than the window while another handle's inserts force live index
// migrations: a bin memoized against the drained index must be recomputed
// against its successor, never read stale.
func TestExecWindowCrossesConcurrentResize(t *testing.T) {
	tb := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 4, PrefetchWindow: 4, MaxThreads: 8})
	h := tb.MustHandle()
	const prepop = 512
	for k := uint64(1); k <= prepop; k++ {
		if _, err := h.Insert(k, k^0xabcd); err != nil {
			t.Fatal(err)
		}
	}
	startResizes := tb.resizes.Load()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hw := tb.MustHandle()
		for k := uint64(prepop + 1); !stop.Load(); k++ {
			if _, err := hw.Insert(k, 1); err != nil {
				t.Errorf("background insert: %v", err)
				return
			}
		}
	}()
	reader := tb.MustHandle()
	ops := make([]Op, 128)
	for round := 0; tb.resizes.Load() < startResizes+3 && round < 1_000_000; round++ {
		for i := range ops {
			ops[i] = Op{Kind: OpGet, Key: uint64((round*len(ops)+i)%prepop) + 1}
		}
		reader.Exec(ops, false)
		for i := range ops {
			if !ops[i].OK || ops[i].Result != ops[i].Key^0xabcd {
				t.Errorf("round %d op %d: Get(%d) = %+v", round, i, ops[i].Key, ops[i])
				stop.Store(true)
				wg.Wait()
				t.FailNow()
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if tb.resizes.Load() < startResizes+3 {
		t.Fatal("background inserts never forced a resize")
	}
}

// oracleExec executes ops one at a time through the public per-request API,
// mirroring execOneAt's result mapping — the reference the windowed engine
// must match byte for byte.
func oracleExec(h *Handle, ops []Op, stopOnFail bool) int {
	done := 0
	for i := range ops {
		op := &ops[i]
		op.Err = nil
		switch op.Kind {
		case OpGet:
			op.Result, op.OK = h.Get(op.Key)
		case OpPut:
			op.Result, op.OK = h.Put(op.Key, op.Value)
		case OpInsert:
			op.Result, op.Err = h.Insert(op.Key, op.Value)
			op.OK = op.Err == nil
		case OpInsertShadow:
			op.Result, op.Err = h.InsertShadow(op.Key, op.Value)
			op.OK = op.Err == nil
		case OpDelete:
			op.Result, op.OK = h.Delete(op.Key)
		case OpCommitShadow:
			op.OK = h.CommitShadow(op.Key, op.Value != 0)
		}
		done++
		if stopOnFail && !op.OK {
			break
		}
	}
	return done
}

// TestExecWindowedMatchesOracle is the property test of the sliding-window
// engine: for random mixed-kind batches over a colliding keyspace, windowed
// Exec must produce results identical to sequential per-request execution —
// across window sizes, stopOnFail, resizable and single-thread tables.
func TestExecWindowedMatchesOracle(t *testing.T) {
	kinds := []OpKind{OpGet, OpPut, OpInsert, OpInsertShadow, OpDelete, OpCommitShadow}
	for _, st := range []bool{false, true} {
		for _, w := range []int{1, 3, 16, -1} {
			name := fmt.Sprintf("window=%d,singlethread=%v", w, st)
			rng := rand.New(rand.NewSource(int64(w)*7 + 1))
			// Tiny resizable tables so batches regularly cross migrations.
			mk := func(window int) *Table {
				return MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 4,
					PrefetchWindow: window, SingleThread: st})
			}
			wt, ot := mk(w), mk(1)
			wh, oh := wt.MustHandle(), ot.MustHandle()
			for round := 0; round < 60; round++ {
				n := 1 + rng.Intn(200)
				ops := make([]Op, n)
				for i := range ops {
					ops[i] = Op{
						Kind:  kinds[rng.Intn(len(kinds))],
						Key:   uint64(1 + rng.Intn(48)), // force collisions
						Value: uint64(rng.Intn(1000)),
					}
				}
				oops := append([]Op(nil), ops...)
				stopOnFail := round%4 == 0
				wn := wh.Exec(ops, stopOnFail)
				on := oracleExec(oh, oops, stopOnFail)
				if wn != on {
					t.Fatalf("%s round %d: windowed executed %d, oracle %d", name, round, wn, on)
				}
				for i := 0; i < wn; i++ {
					if ops[i].Result != oops[i].Result || ops[i].OK != oops[i].OK || !errors.Is(ops[i].Err, oops[i].Err) {
						t.Fatalf("%s round %d op %d (%v key=%d): windowed %+v, oracle %+v",
							name, round, i, ops[i].Kind, ops[i].Key, ops[i], oops[i])
					}
				}
			}
			// Final table contents must agree too.
			for k := uint64(1); k <= 48; k++ {
				wv, wok := wh.Get(k)
				ov, ook := oh.Get(k)
				if wv != ov || wok != ook {
					t.Fatalf("%s: final Get(%d): windowed (%d,%v), oracle (%d,%v)", name, k, wv, wok, ov, ook)
				}
			}
		}
	}
}

// TestGetKVBatchWindowSizes runs the two-level KV pipeline across window
// sizes (including degenerate w=1 and full-batch) with hits and misses
// interleaved, checking values against per-request GetKV.
func TestGetKVBatchWindowSizes(t *testing.T) {
	for _, w := range []int{1, 5, 16, -1} {
		tb := MustNew(Config{Mode: Allocator, Bins: 64, Resizable: true, ChunkBins: 16,
			PrefetchWindow: w, VariableKV: true})
		h := tb.MustHandle()
		const present = 200
		for i := 0; i < present; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i))
			val := []byte(fmt.Sprintf("value-%d", i*i))
			if err := h.InsertKV(0, key, val); err != nil {
				t.Fatal(err)
			}
		}
		reqs := make([]KVGet, 300)
		for i := range reqs {
			reqs[i].Key = []byte(fmt.Sprintf("key-%03d", i)) // i >= present miss
		}
		h.GetKVBatch(reqs)
		for i := range reqs {
			want, wantOK := h.GetKV(0, reqs[i].Key)
			if reqs[i].OK != wantOK || !bytes.Equal(reqs[i].Value, want) {
				t.Fatalf("w=%d req %d: batch (%q,%v), GetKV (%q,%v)",
					w, i, reqs[i].Value, reqs[i].OK, want, wantOK)
			}
		}
	}
}
