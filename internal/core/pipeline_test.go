package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPipelineWindowSemantics pins the completion contract: a request
// completes exactly when a full window of newer requests has been enqueued
// behind it, and Flush completes the remainder in order.
func TestPipelineWindowSemantics(t *testing.T) {
	tb := MustNew(Config{Bins: 256})
	h := tb.MustHandle()
	const w = 8
	var completed []uint64
	pl := h.Pipeline(PipelineOpts{Window: w, OnComplete: func(op *Op) {
		completed = append(completed, op.Key)
	}})
	if pl.Window() != w {
		t.Fatalf("Window() = %d, want %d", pl.Window(), w)
	}
	for k := uint64(0); k < w; k++ {
		pl.Insert(k, k*10)
	}
	if len(completed) != 0 || pl.InFlight() != w {
		t.Fatalf("after %d enqueues: %d completions, %d in flight", w, len(completed), pl.InFlight())
	}
	pl.Insert(w, w*10)
	if len(completed) != 1 || completed[0] != 0 || pl.InFlight() != w {
		t.Fatalf("after enqueue %d: completions %v, %d in flight", w+1, completed, pl.InFlight())
	}
	pl.Flush()
	if len(completed) != w+1 || pl.InFlight() != 0 {
		t.Fatalf("after Flush: %d completions, %d in flight", len(completed), pl.InFlight())
	}
	for i, k := range completed {
		if k != uint64(i) {
			t.Fatalf("completion %d is key %d: order not preserved (%v)", i, k, completed)
		}
	}
	// The inserts took effect.
	for k := uint64(0); k <= w; k++ {
		if v, ok := h.Get(k); !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d,%v)", k, v, ok)
		}
	}
	pl.Close()
	pl.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue after Close did not panic")
		}
	}()
	pl.Get(1)
}

// TestPipelineWindowResolution pins the PipelineOpts.Window contract: 0
// inherits the table's window, the table's full-batch setting falls back
// to the default, and explicit values win.
func TestPipelineWindowResolution(t *testing.T) {
	cases := []struct {
		cfgW, optW, want int
	}{
		{0, 0, defaultPrefetchWindow},
		{8, 0, 8},
		{-1, 0, defaultPrefetchWindow}, // full-batch has no streaming analogue
		{8, 32, 32},
		{0, -5, 1},
	}
	for _, c := range cases {
		tb := MustNew(Config{Bins: 16, PrefetchWindow: c.cfgW})
		pl := tb.MustHandle().Pipeline(PipelineOpts{Window: c.optW})
		if pl.Window() != c.want {
			t.Errorf("cfg=%d opts=%d: Window() = %d, want %d", c.cfgW, c.optW, pl.Window(), c.want)
		}
	}
}

// TestPipelineMatchesOracle is the streaming twin of
// TestExecWindowedMatchesOracle: random mixed-kind request streams fed one
// at a time through a Pipeline must complete in order with results
// identical to sequential per-request execution — across window sizes,
// burst patterns (Flush between bursts or a window kept primed across
// them), resizable and single-thread tables.
func TestPipelineMatchesOracle(t *testing.T) {
	kinds := []OpKind{OpGet, OpPut, OpInsert, OpInsertShadow, OpDelete, OpCommitShadow}
	for _, st := range []bool{false, true} {
		for _, w := range []int{1, 3, 16} {
			for _, flushBursts := range []bool{false, true} {
				name := fmt.Sprintf("window=%d,singlethread=%v,flush=%v", w, st, flushBursts)
				rng := rand.New(rand.NewSource(int64(w)*13 + 5))
				mk := func() *Table {
					return MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 4, SingleThread: st})
				}
				pt, ot := mk(), mk()
				oh := ot.MustHandle()
				var got []Op
				pl := pt.MustHandle().Pipeline(PipelineOpts{Window: w, OnComplete: func(op *Op) {
					got = append(got, *op)
				}})
				var want []Op
				for round := 0; round < 40; round++ {
					n := 1 + rng.Intn(120)
					for i := 0; i < n; i++ {
						op := Op{
							Kind:  kinds[rng.Intn(len(kinds))],
							Key:   uint64(1 + rng.Intn(48)), // force collisions
							Value: uint64(rng.Intn(1000)),
						}
						oops := []Op{op}
						oracleExec(oh, oops, false)
						want = append(want, oops[0])
						pl.Enqueue(op)
					}
					if flushBursts {
						pl.Flush()
						if len(got) != len(want) {
							t.Fatalf("%s round %d: %d completions, oracle %d", name, round, len(got), len(want))
						}
					}
				}
				pl.Close()
				if len(got) != len(want) {
					t.Fatalf("%s: %d completions, oracle %d", name, len(got), len(want))
				}
				for i := range got {
					g, o := got[i], want[i]
					if g.Kind != o.Kind || g.Key != o.Key || g.Result != o.Result || g.OK != o.OK || !errors.Is(g.Err, o.Err) {
						t.Fatalf("%s op %d (%v key=%d): pipeline %+v, oracle %+v", name, i, o.Kind, o.Key, g, o)
					}
				}
				// Final table contents must agree too.
				ph := pt.MustHandle()
				for k := uint64(1); k <= 48; k++ {
					pv, pok := ph.Get(k)
					ov, ook := oh.Get(k)
					if pv != ov || pok != ook {
						t.Fatalf("%s: final Get(%d): pipeline (%d,%v), oracle (%d,%v)", name, k, pv, pok, ov, ook)
					}
				}
			}
		}
	}
}

// TestPipelineReentrantEnqueue drives enqueues from inside OnComplete: each
// completed seed Get chains a follow-up Get. Re-entrant requests must be
// admitted (growing the engine ring past the window if needed), complete in
// global enqueue order, and not be dropped by Flush or Close.
func TestPipelineReentrantEnqueue(t *testing.T) {
	tb := MustNew(Config{Bins: 1 << 10})
	h := tb.MustHandle()
	const n = 500
	for k := uint64(0); k < 2*n; k++ {
		if _, err := h.Insert(k, k^0x5a5a); err != nil {
			t.Fatal(err)
		}
	}
	var order []uint64
	var pl *Pipeline
	pl = h.Pipeline(PipelineOpts{Window: 4, OnComplete: func(op *Op) {
		if !op.OK || op.Result != op.Key^0x5a5a {
			t.Errorf("Get(%d) = %+v", op.Key, op)
		}
		order = append(order, op.Key)
		if op.Key < n {
			pl.Get(op.Key + n) // chain a follow-up from inside the callback
		}
	}})
	for k := uint64(0); k < n; k++ {
		pl.Get(k)
	}
	pl.Flush()
	if len(order) != 2*n {
		t.Fatalf("completed %d ops, want %d", len(order), 2*n)
	}
	// Every seed key and every chained key completed exactly once.
	seen := make(map[uint64]int)
	for _, k := range order {
		seen[k]++
	}
	for k := uint64(0); k < 2*n; k++ {
		if seen[k] != 1 {
			t.Fatalf("key %d completed %d times", k, seen[k])
		}
	}
	// Order preservation: chained key k+n was enqueued at k's completion,
	// so it must appear after key k.
	pos := make(map[uint64]int)
	for i, k := range order {
		pos[k] = i
	}
	for k := uint64(0); k < n; k++ {
		if pos[k+n] <= pos[k] {
			t.Fatalf("chained key %d completed at %d, before its trigger %d at %d",
				k+n, pos[k+n], k, pos[k])
		}
	}
}

// TestPipelineReentrantStorm grows the ring far past the window from a
// single completion, exercising the grow path while entries are in flight.
func TestPipelineReentrantStorm(t *testing.T) {
	tb := MustNew(Config{Bins: 1 << 8})
	h := tb.MustHandle()
	for k := uint64(0); k < 300; k++ {
		h.Insert(k, k+7)
	}
	completions := 0
	var pl *Pipeline
	pl = h.Pipeline(PipelineOpts{Window: 2, OnComplete: func(op *Op) {
		if !op.OK || op.Result != op.Key+7 {
			t.Errorf("Get(%d) = %+v", op.Key, op)
		}
		completions++
		if op.Key == 0 {
			for k := uint64(100); k < 300; k++ {
				pl.Get(k) // burst of 200 from one callback, window 2
			}
		}
	}})
	for k := uint64(0); k < 10; k++ {
		pl.Get(k)
	}
	pl.Close()
	if completions != 210 {
		t.Fatalf("completed %d ops, want 210", completions)
	}
}

// TestPipelineCloseInsideCallback pins the documented contract that Flush
// and Close are no-ops from inside OnComplete: the pipeline stays open,
// later enqueues do not panic, and a later top-level Close still
// completes everything in flight.
func TestPipelineCloseInsideCallback(t *testing.T) {
	tb := MustNew(Config{Bins: 256})
	h := tb.MustHandle()
	completions := 0
	var pl *Pipeline
	pl = h.Pipeline(PipelineOpts{Window: 4, OnComplete: func(op *Op) {
		completions++
		pl.Close() // documented no-op
		pl.Flush() // likewise
	}})
	const n = 20
	for k := uint64(0); k < n; k++ {
		pl.Insert(k, k) // must not panic after the first completion
	}
	pl.Close()
	if completions != n {
		t.Fatalf("completed %d ops, want %d", completions, n)
	}
	for k := uint64(0); k < n; k++ {
		if _, ok := h.Get(k); !ok {
			t.Fatalf("key %d missing after Close", k)
		}
	}
}

// TestPipelineCrossesConcurrentResize keeps one long-lived pipeline
// streaming Gets while another handle's inserts force live index
// migrations: a bin memoized at enqueue time against an index that is
// drained before the op executes must be recomputed against its successor,
// never read stale.
func TestPipelineCrossesConcurrentResize(t *testing.T) {
	tb := MustNew(Config{Bins: 8, Resizable: true, ChunkBins: 4, MaxThreads: 8})
	h := tb.MustHandle()
	const prepop = 512
	for k := uint64(1); k <= prepop; k++ {
		if _, err := h.Insert(k, k^0xabcd); err != nil {
			t.Fatal(err)
		}
	}
	startResizes := tb.resizes.Load()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hw := tb.MustHandle()
		for k := uint64(prepop + 1); !stop.Load(); k++ {
			if _, err := hw.Insert(k, 1); err != nil {
				t.Errorf("background insert: %v", err)
				return
			}
		}
	}()
	reader := tb.MustHandle()
	failed := false
	pl := reader.Pipeline(PipelineOpts{Window: 4, OnComplete: func(op *Op) {
		if !op.OK || op.Result != op.Key^0xabcd {
			t.Errorf("Get(%d) = %+v", op.Key, op)
			failed = true
		}
	}})
	for i := 0; tb.resizes.Load() < startResizes+3 && i < 50_000_000 && !failed; i++ {
		pl.Get(uint64(i%prepop) + 1)
	}
	pl.Close()
	stop.Store(true)
	wg.Wait()
	if failed {
		t.FailNow()
	}
	if tb.resizes.Load() < startResizes+3 {
		t.Fatal("background inserts never forced a resize")
	}
}

// TestKVPipelineMatchesGetKV streams Allocator-mode lookups (hits and
// misses interleaved) through KVPipeline across window sizes, checking
// every completion against per-request GetKV and the in-order contract.
func TestKVPipelineMatchesGetKV(t *testing.T) {
	for _, w := range []int{1, 5, 16} {
		tb := MustNew(Config{Mode: Allocator, Bins: 64, Resizable: true, ChunkBins: 16,
			VariableKV: true})
		h := tb.MustHandle()
		const present = 200
		for i := 0; i < present; i++ {
			key := []byte(fmt.Sprintf("key-%03d", i))
			val := []byte(fmt.Sprintf("value-%d", i*i))
			if err := h.InsertKV(0, key, val); err != nil {
				t.Fatal(err)
			}
		}
		next := 0
		check := tb.MustHandle()
		pl := h.KVPipeline(KVPipelineOpts{Window: w, OnComplete: func(r *KVGet) {
			wantKey := []byte(fmt.Sprintf("key-%03d", next))
			if !bytes.Equal(r.Key, wantKey) {
				t.Fatalf("w=%d completion %d: key %q, want %q (order)", w, next, r.Key, wantKey)
			}
			want, wantOK := check.GetKV(0, r.Key)
			if r.OK != wantOK || !bytes.Equal(r.Value, want) {
				t.Fatalf("w=%d req %d: pipeline (%q,%v), GetKV (%q,%v)", w, next, r.Value, r.OK, want, wantOK)
			}
			next++
		}})
		keys := make([][]byte, 300)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%03d", i)) // i >= present miss
		}
		for _, k := range keys {
			pl.Get(0, k)
		}
		pl.Close()
		if next != len(keys) {
			t.Fatalf("w=%d: completed %d lookups, want %d", w, next, len(keys))
		}
	}
}

// TestKVPipelineWrongModePanics: KVPipeline requires Allocator mode.
func TestKVPipelineWrongModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KVPipeline on an Inlined table did not panic")
		}
	}()
	MustNew(Config{Bins: 16}).MustHandle().KVPipeline(KVPipelineOpts{})
}

// TestKVPipelineReentrantEnqueue chains a second lookup from inside
// OnComplete, covering the KV engine's grow path under in-flight entries.
func TestKVPipelineReentrantEnqueue(t *testing.T) {
	tb := MustNew(Config{Mode: Allocator, Bins: 256, VariableKV: true})
	h := tb.MustHandle()
	const n = 100
	for i := 0; i < 2*n; i++ {
		if err := h.InsertKV(0, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	chained := make([][]byte, 0, n)
	completions := 0
	var pl *KVPipeline
	pl = h.KVPipeline(KVPipelineOpts{Window: 3, OnComplete: func(r *KVGet) {
		if !r.OK {
			t.Errorf("lookup %q missed", r.Key)
		}
		completions++
		if completions <= n {
			key := []byte(fmt.Sprintf("k%04d", n+completions-1))
			chained = append(chained, key)
			pl.Get(0, key)
		}
	}})
	for i := 0; i < n; i++ {
		pl.Get(0, []byte(fmt.Sprintf("k%04d", i)))
	}
	pl.Flush()
	if completions != 2*n {
		t.Fatalf("completed %d lookups, want %d", completions, 2*n)
	}
}
