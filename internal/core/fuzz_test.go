package core

import (
	"bytes"
	"errors"
	"testing"
)

// Native fuzz targets. `go test` exercises the seed corpus; `go test -fuzz`
// explores further. Both drive the table against an exact model.

// FuzzInlinedOps interprets the input as an op tape over a small key space
// and checks every step against a map oracle, on a geometry that forces
// chaining and resizing.
func FuzzInlinedOps(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x13, 0x88, 0xff, 0x00, 0x23, 0x34})
	f.Add(bytes.Repeat([]byte{0xa5}, 64))
	f.Add([]byte("insert-delete-put-get-insert-delete"))
	f.Fuzz(func(t *testing.T, tape []byte) {
		tb := MustNew(Config{Bins: 2, Resizable: true, ChunkBins: 1})
		h := tb.MustHandle()
		model := map[uint64]uint64{}
		for i := 0; i+1 < len(tape); i += 2 {
			op, kb := tape[i], tape[i+1]
			k := uint64(kb) % 40
			v := uint64(op)<<8 | uint64(i)
			switch op % 4 {
			case 0:
				_, err := h.Insert(k, v)
				if _, exists := model[k]; exists != errors.Is(err, ErrExists) {
					t.Fatalf("step %d: insert(%d) err=%v exists=%v", i, k, err, exists)
				}
				if err == nil {
					model[k] = v
				}
			case 1:
				got, ok := h.Delete(k)
				want, exists := model[k]
				if ok != exists || (ok && got != want) {
					t.Fatalf("step %d: delete(%d)=(%d,%v) want (%d,%v)", i, k, got, ok, want, exists)
				}
				delete(model, k)
			case 2:
				old, ok := h.Put(k, v)
				want, exists := model[k]
				if ok != exists || (ok && old != want) {
					t.Fatalf("step %d: put(%d)=(%d,%v) want (%d,%v)", i, k, old, ok, want, exists)
				}
				if ok {
					model[k] = v
				}
			default:
				got, ok := h.Get(k)
				want, exists := model[k]
				if ok != exists || (ok && got != want) {
					t.Fatalf("step %d: get(%d)=(%d,%v) want (%d,%v)", i, k, got, ok, want, exists)
				}
			}
		}
		if h.Len() != len(model) {
			t.Fatalf("final len %d != model %d", h.Len(), len(model))
		}
	})
}

// FuzzKVOps drives Allocator mode with fuzzer-chosen keys and values,
// including keys straddling the 8-byte inline boundary.
func FuzzKVOps(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte("vvvv"), uint8(0))
	f.Add([]byte("a-key-longer-than-eight"), []byte{}, uint8(1))
	f.Add([]byte("12345678"), bytes.Repeat([]byte{7}, 100), uint8(2))
	f.Fuzz(func(t *testing.T, key, val []byte, opSel uint8) {
		if len(key) == 0 || len(key) > 200 || len(val) > 1<<12 {
			t.Skip()
		}
		tb := MustNew(Config{Mode: Allocator, Bins: 4, VariableKV: true, Resizable: true, ChunkBins: 1})
		h := tb.MustHandle()
		// A deterministic mini-scenario around the fuzzed pair.
		if err := h.InsertKV(0, key, val); err != nil {
			t.Fatalf("insert: %v", err)
		}
		got, ok := h.GetKV(0, key)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("get after insert: (%q,%v) want %q", got, ok, val)
		}
		if err := h.InsertKV(0, key, val); !errors.Is(err, ErrExists) {
			t.Fatalf("duplicate insert err = %v", err)
		}
		// A sibling key differing in length only.
		sibling := append(append([]byte{}, key...), 0)
		if len(sibling) <= 200 {
			if err := h.InsertKV(0, sibling, []byte("x")); err != nil {
				t.Fatalf("sibling insert: %v", err)
			}
			if v, ok := h.GetKV(0, sibling); !ok || string(v) != "x" {
				t.Fatalf("sibling get: (%q,%v)", v, ok)
			}
		}
		if !h.DeleteKV(0, key) {
			t.Fatal("delete failed")
		}
		if _, ok := h.GetKV(0, key); ok {
			t.Fatal("deleted key visible")
		}
	})
}

// FuzzHeaderAlgebra checks the bit-field laws on arbitrary words.
func FuzzHeaderAlgebra(f *testing.F) {
	f.Add(uint64(0), uint8(3), uint8(2))
	f.Add(^uint64(0), uint8(14), uint8(1))
	f.Fuzz(func(t *testing.T, hdr uint64, slot, state uint8) {
		i := int(slot) % slotsPerBin
		s := uint64(state) & 3
		out := withSlotState(hdr, i, s)
		if slotState(out, i) != s {
			t.Fatal("slot state not set")
		}
		if binState(out) != binState(hdr) || version(out) != version(hdr) {
			t.Fatal("collateral damage to bin state or version")
		}
		if version(bumpVersion(out)) != version(out)+1 {
			t.Fatal("version bump")
		}
	})
}
