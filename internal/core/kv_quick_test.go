package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// Model-based property test for Allocator mode: random op sequences over
// byte keys must agree with a map[string][]byte oracle, across geometries
// that force chaining, resizing, big keys and namespaces.
func TestQuickKVModelEquivalence(t *testing.T) {
	configs := []Config{
		{Mode: Allocator, Bins: 4, VariableKV: true},
		{Mode: Allocator, Bins: 4, VariableKV: true, Resizable: true, ChunkBins: 2},
		{Mode: Allocator, Bins: 16, VariableKV: true, Namespaces: true, Hash: 1},
		{Mode: Allocator, Bins: 8, ValueSize: 8},
	}
	keyFor := func(sel uint8, cfgVariable bool) []byte {
		// A small pool of keys, some sharing 8-byte prefixes, some > 8 B.
		pool := []string{
			"a", "b", "ab", "ab\x00", "longkey-1", "longkey-2",
			"prefix-share-AAAA", "prefix-share-BBBB", "k8bytes!",
		}
		if !cfgVariable {
			pool = []string{"a", "b", "c", "dd", "ee", "ff", "gg", "hh"}
		}
		return []byte(pool[int(sel)%len(pool)])
	}
	for ci, cfg := range configs {
		cfg := cfg
		f := func(ops []uint16) bool {
			tb := MustNew(cfg)
			h := tb.MustHandle()
			model := map[string][]byte{}
			mkVal := func(i int) []byte {
				if cfg.VariableKV {
					return bytes.Repeat([]byte{byte(i)}, 1+i%40)
				}
				v := make([]byte, 8)
				v[0] = byte(i)
				return v
			}
			var ns uint16
			for i, op := range ops {
				if cfg.Namespaces {
					ns = uint16(op>>8) % 3
				}
				key := keyFor(uint8(op), cfg.VariableKV)
				mkey := fmt.Sprintf("%d/%s", ns, key)
				switch op % 3 {
				case 0:
					err := h.InsertKV(ns, key, mkVal(i))
					_, exists := model[mkey]
					if exists != errors.Is(err, ErrExists) {
						t.Logf("cfg %d: insert(%q) err=%v exists=%v", ci, key, err, exists)
						return false
					}
					if err == nil {
						model[mkey] = mkVal(i)
					}
				case 1:
					ok := h.DeleteKV(ns, key)
					if _, exists := model[mkey]; ok != exists {
						t.Logf("cfg %d: delete(%q)=%v exists=%v", ci, key, ok, exists)
						return false
					}
					delete(model, mkey)
				default:
					got, ok := h.GetKV(ns, key)
					want, exists := model[mkey]
					if ok != exists || (ok && !bytes.Equal(got, want)) {
						t.Logf("cfg %d: get(%q)=(%q,%v) want (%q,%v)", ci, key, got, ok, want, exists)
						return false
					}
				}
			}
			// Final sweep.
			for mkey, want := range model {
				var ns uint16
				var key string
				fmt.Sscanf(mkey, "%d/", &ns)
				key = mkey[len(fmt.Sprintf("%d/", ns)):]
				got, ok := h.GetKV(ns, []byte(key))
				if !ok || !bytes.Equal(got, want) {
					t.Logf("cfg %d: final get(%q) = (%q,%v), want %q", ci, key, got, ok, want)
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("config %d: %v", ci, err)
		}
	}
}

// Epoch-GC view integrity: readers hold GetKV views across concurrent
// deletes and re-inserts; a view must keep its original contents until the
// reading handle advances its own epoch, because blocks cannot be recycled
// while any handle lags.
func TestKVEpochViewIntegrityUnderChurn(t *testing.T) {
	tb := MustNew(Config{
		Mode: Allocator, Bins: 256, ValueSize: 16,
		EpochGC: true, MaxThreads: 8,
	})
	const keys = 32
	loader := tb.MustHandle()
	val := func(gen byte) []byte { return bytes.Repeat([]byte{gen}, 16) }
	for i := 0; i < keys; i++ {
		if err := loader.InsertKV(0, []byte{byte(i)}, val(1)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Churner: delete + reinsert with a new generation byte, advancing its
	// epoch so blocks retire and recycle.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tb.MustHandle()
		gen := byte(2)
		for !stop.Load() {
			for i := 0; i < keys; i++ {
				h.DeleteKV(0, []byte{byte(i)})
				h.InsertKV(0, []byte{byte(i)}, val(gen))
			}
			h.AdvanceEpoch()
			gen++
			if gen == 0 {
				gen = 2
			}
		}
	}()
	// Readers: take a view, verify it is internally uniform (all 16 bytes
	// the same generation) now and after a pause, then advance.
	var violations atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			h := tb.MustHandle()
			for n := 0; n < 4000; n++ {
				v, ok := h.GetKV(0, []byte{byte(n % keys)})
				if !ok {
					continue // momentarily deleted
				}
				first := v[0]
				uniform := true
				for _, b := range v {
					if b != first {
						uniform = false
					}
				}
				if !uniform {
					violations.Add(1)
				}
				// Hold the view across some work, then re-check: without
				// the epoch pin a recycled block could mutate under us into
				// a mix of generations.
				for spin := 0; spin < 50; spin++ {
					_ = spin
				}
				for _, b := range v {
					if b != first {
						// The block was recycled for ANOTHER KEY while we
						// hold the view — only legal after OUR advance.
						violations.Add(1)
						break
					}
				}
				if n%64 == 0 {
					h.AdvanceEpoch()
				}
			}
		}(r)
	}
	readers.Wait()
	stop.Store(true)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d view integrity violations", v)
	}
}
