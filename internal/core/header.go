package core

// Bin header bit layout (§3.1 of the paper). The header is the first 8-byte
// word of every primary bucket and the synchronization point for all bin
// mutations:
//
//	bits  0..29  fifteen 2-bit slot states (slot i at bits 2i..2i+1)
//	bits 30..31  2-bit bin state
//	bits 32..63  32-bit version, incremented by every successful header CAS
//
// Packing all 15 slot states of a 4-bucket chain into one word is what lets
// Inserts and Deletes anywhere in the chain be a single CAS, and the
// version is both the seqlock for lock-free Gets and the ABA guard.

// Slot states.
const (
	slotInvalid   uint64 = 0 // empty, reusable
	slotTryInsert uint64 = 1 // claimed by an in-flight Insert, invisible
	slotValid     uint64 = 2 // holds a live key-value pair
	slotShadow    uint64 = 3 // inserted but hidden (transactional lock, §3.2.2)
)

// Bin states.
const (
	binNoTransfer   uint64 = 0 // normal operation
	binInTransfer   uint64 = 1 // resize is migrating this bin; ops wait
	binDoneTransfer uint64 = 2 // bin migrated; ops go to the next index
)

// slotsPerBin is the maximum number of slots in a fully chained bin:
// 3 in the primary bucket + 4 + 4 + 4 in the link buckets.
const slotsPerBin = 15

// Primary-bucket slot count.
const primarySlots = 3

const (
	binStateShift = 30
	versionShift  = 32
	slotStateMask = uint64(3)
	lowerMask     = (uint64(1) << versionShift) - 1
)

// slotState extracts the 2-bit state of slot i.
func slotState(hdr uint64, i int) uint64 {
	return (hdr >> (2 * uint(i))) & slotStateMask
}

// withSlotState returns hdr with slot i's state replaced. It does not bump
// the version; compose with bumpVersion for a CAS target.
func withSlotState(hdr uint64, i int, s uint64) uint64 {
	sh := 2 * uint(i)
	return (hdr &^ (slotStateMask << sh)) | (s << sh)
}

// binState extracts the 2-bit bin state.
func binState(hdr uint64) uint64 {
	return (hdr >> binStateShift) & slotStateMask
}

// withBinState returns hdr with the bin state replaced (version untouched).
func withBinState(hdr uint64, s uint64) uint64 {
	return (hdr &^ (slotStateMask << binStateShift)) | (s << binStateShift)
}

// version extracts the 32-bit header version.
func version(hdr uint64) uint32 {
	return uint32(hdr >> versionShift)
}

// bumpVersion returns hdr with the version incremented (mod 2^32).
func bumpVersion(hdr uint64) uint64 {
	return (hdr & lowerMask) | (uint64(version(hdr)+1) << versionShift)
}

// firstInvalidSlot returns the lowest slot index whose state is Invalid and
// which lies below limit, or -1 when the bin is full. limit restricts the
// search to slots reachable given the bin's chaining capacity (always
// slotsPerBin in resizable tables, since chains are grown on demand).
func firstInvalidSlot(hdr uint64, limit int) int {
	for i := 0; i < limit; i++ {
		if slotState(hdr, i) == slotInvalid {
			return i
		}
	}
	return -1
}

// countSlotsInState returns how many of the first limit slots are in state s.
func countSlotsInState(hdr uint64, s uint64, limit int) int {
	n := 0
	for i := 0; i < limit; i++ {
		if slotState(hdr, i) == s {
			n++
		}
	}
	return n
}

// Link-metadata word layout (second 8-byte word of a primary bucket):
// low 32 bits index one link bucket (slots 3..6), high 32 bits index the
// first of two consecutive link buckets (slots 7..14). Index 0 means
// "not chained".

// linkOne extracts the single-bucket link index.
func linkOne(meta uint64) uint32 { return uint32(meta) }

// linkTwo extracts the double-bucket link index.
func linkTwo(meta uint64) uint32 { return uint32(meta >> 32) }

// withLinkOne returns meta with the single-bucket index set.
func withLinkOne(meta uint64, idx uint32) uint64 {
	return (meta &^ 0xffffffff) | uint64(idx)
}

// withLinkTwo returns meta with the double-bucket index set.
func withLinkTwo(meta uint64, idx uint32) uint64 {
	return (meta & 0xffffffff) | uint64(idx)<<32
}

// slotLimit returns the number of slots addressable with the current
// chaining: 3 (no links), 7 (one link bucket), or 15 (all three).
func slotLimit(meta uint64) int {
	switch {
	case linkTwo(meta) != 0:
		return slotsPerBin
	case linkOne(meta) != 0:
		return 7
	default:
		return primarySlots
	}
}

// bucketForSlot maps a slot index (0..14) to its bucket: -1 for the primary
// bucket, otherwise the link-array bucket index derived from meta.
// The second return is the slot's position within that bucket.
func bucketForSlot(meta uint64, slot int) (bucket int64, pos int) {
	switch {
	case slot < primarySlots:
		return -1, slot
	case slot < 7:
		return int64(linkOne(meta)), slot - 3
	case slot < 11:
		return int64(linkTwo(meta)), slot - 7
	default:
		return int64(linkTwo(meta)) + 1, slot - 11
	}
}

// slotNeedsChain reports whether using the given slot requires a link
// bucket that is not yet chained, and which link field (1 or 2) it needs.
func slotNeedsChain(meta uint64, slot int) (need bool, field int) {
	switch {
	case slot < primarySlots:
		return false, 0
	case slot < 7:
		return linkOne(meta) == 0, 1
	default:
		return linkTwo(meta) == 0, 2
	}
}
